module bionicdb

go 1.22
