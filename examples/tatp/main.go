// TATP engine comparison: runs the standard TATP mix on the conventional,
// DORA and bionic engines and prints the paper's Figure 4 quantities —
// throughput, joules per transaction, and latency percentiles. Expect the
// bionic engine to cut joules/transaction the most while per-transaction
// latency stays flat or rises (the paper's asynchrony bet).
package main

import (
	"flag"
	"fmt"

	"bionicdb"
)

func main() {
	subscribers := flag.Int("subscribers", 20000, "TATP scale factor")
	measureMs := flag.Int("measure", 25, "measurement window, simulated ms")
	flag.Parse()

	wl := bionicdb.NewTATP(bionicdb.TATPConfig{Subscribers: *subscribers})
	cfg := bionicdb.RunConfig{
		Terminals: 64,
		Warmup:    bionicdb.Duration(10) * bionicdb.Millisecond,
		Measure:   bionicdb.Duration(*measureMs) * bionicdb.Millisecond,
		Seed:      42,
	}

	engines := []struct {
		name string
		mk   func(env *bionicdb.Env) bionicdb.Engine
	}{
		{"conventional", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewConventional(env, bionicdb.HC2(), wl.Tables())
		}},
		{"dora", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewDORA(env, bionicdb.HC2(), wl.Tables(), wl.Scheme(8))
		}},
		{"bionic", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewBionic(env, bionicdb.HC2(), wl.Tables(), wl.Scheme(8), bionicdb.AllOffloads(), 8)
		}},
	}

	fmt.Printf("TATP, %d subscribers, %d terminals, %dms window\n\n", *subscribers, cfg.Terminals, *measureMs)
	fmt.Printf("%-24s %10s %12s %10s %10s %10s\n", "engine", "tps", "uJ/txn", "p50", "p95", "p99")
	for _, e := range engines {
		res, err := bionicdb.Run(cfg, wl, e.mk)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-24s %10.0f %12.2f %10v %10v %10v\n",
			res.Engine, res.TPS, res.JoulesPerTxn*1e6,
			res.Latency.Percentile(50), res.Latency.Percentile(95), res.Latency.Percentile(99))
	}
	fmt.Println("\nNote: joules/txn is the paper's metric of merit; the bionic engine")
	fmt.Println("wins it even where raw latency does not improve (Section 3).")
}
