// YCSB on the engine family via the sweep API: declare a grid of the
// three engines against two YCSB mixes, fan it out across a worker pool,
// and print the table plus the structured JSON the grid emits. Parallel
// sweep results are bit-identical to serial ones — each point runs in its
// own simulation environment.
package main

import (
	"fmt"
	"os"

	"bionicdb"
)

func main() {
	workload := func(name string, cfg bionicdb.YCSBConfig) bionicdb.WorkloadSpec {
		cfg.Records = 20000
		return bionicdb.WorkloadSpec{Name: name, Make: func() bionicdb.Workload {
			return bionicdb.NewYCSB(cfg)
		}}
	}

	grid := bionicdb.SweepGrid{
		Engines: []bionicdb.EngineSpec{
			bionicdb.ConventionalSpec(),
			bionicdb.DORASpec(8),
			bionicdb.BionicSpec(8, bionicdb.AllOffloads(), 8),
		},
		Workloads: []bionicdb.WorkloadSpec{
			workload("ycsb-a", bionicdb.YCSBWorkloadA()),
			workload("ycsb-b", bionicdb.YCSBWorkloadB()),
		},
		Terminals: []int{32},
		Seeds:     []uint64{42},
		Warmup:    5 * bionicdb.Millisecond,
		Measure:   15 * bionicdb.Millisecond,
	}

	points := grid.Points()
	fmt.Printf("sweeping %d grid points...\n\n", len(points))
	results := bionicdb.Sweep(points, bionicdb.SweepOptions{}) // Parallel 0 = GOMAXPROCS

	fmt.Print(bionicdb.SweepTable(results).String())

	doc, err := bionicdb.SweepJSON(results[:1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nfirst result as JSON:\n%s\n", doc)
}
