// Crash recovery: run transactions on the bionic engine, take a sharp
// checkpoint, run more transactions, then "crash" — discard every volatile
// structure — and rebuild from the checkpoint images plus the durable log
// (Figure 4 keeps "log sync & recovery" in software). Committed effects
// must survive; the uncommitted insert must not.
package main

import (
	"bytes"
	"fmt"

	"bionicdb/internal/core"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

func main() {
	env := sim.NewEnv()
	tables := []core.TableDef{{ID: 1, Name: "ledger", Order: 64}}
	eng := core.NewBionic(env, platform.HC2(), tables, core.HashScheme(4), core.AllOffloads(), 8)

	key := func(i int) []byte { return storage.Uint64Key(uint64(i)) }
	val := func(s string) []byte { return []byte(s) }

	for i := 0; i < 1000; i++ {
		eng.Load(1, key(i), val(fmt.Sprintf("opening-%d", i)))
	}

	var meta core.CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: eng.Platform().Cores[0], R: sim.NewRand(1)}

		meta = core.Checkpoint(p, eng.Tables(), eng.DiskManager(), eng.LogStore())
		fmt.Printf("checkpoint complete at %v (log position %d)\n", p.Now(), meta.StartLSN)

		// Post-checkpoint work that only the log protects.
		for i := 0; i < 100; i++ {
			i := i
			eng.Submit(term, func(tx core.Tx) bool {
				return tx.Phase(core.Action{Table: 1, Key: key(i), Body: func(c core.AccessCtx) bool {
					return c.Update(1, key(i), val(fmt.Sprintf("updated-%d", i)))
				}})
			})
		}
		eng.Submit(term, func(tx core.Tx) bool {
			return tx.Phase(core.Action{Table: 1, Key: key(5000), Body: func(c core.AccessCtx) bool {
				return c.Insert(1, key(5000), val("committed-insert"))
			}})
		})
		// This one aborts: its insert must not survive recovery.
		eng.Submit(term, func(tx core.Tx) bool {
			tx.Phase(core.Action{Table: 1, Key: key(6000), Body: func(c core.AccessCtx) bool {
				return c.Insert(1, key(6000), val("doomed"))
			}})
			return false
		})
		fmt.Printf("ran 102 post-checkpoint transactions (1 aborted) by %v\n", p.Now())
		eng.Close()
	})
	if err := env.Run(); err != nil {
		panic(err)
	}

	fmt.Println("\n*** CRASH: volatile state discarded; rebooting from disk + log ***")

	env.Spawn("recovery", func(p *sim.Proc) {
		t0 := p.Now()
		trees, err := core.Recover(p, tables, meta, eng.DiskManager(), eng.LogStore().Bytes())
		if err != nil {
			panic(err)
		}
		fmt.Printf("recovery replayed the log in %v of simulated time\n", p.Now().Sub(t0))

		rec := trees[1]
		live := eng.Tables()[1]
		mismatches := 0
		live.Scan(nil, nil, nil, func(k, v []byte) bool {
			got, ok := rec.Get(k, nil)
			if !ok || !bytes.Equal(got, v) {
				mismatches++
			}
			return true
		})
		fmt.Printf("recovered %d rows; %d mismatches vs pre-crash state\n", rec.Size(), mismatches)
		if v, ok := rec.Get(key(42), nil); ok {
			fmt.Printf("row 42: %q (committed update survived)\n", v)
		}
		if _, ok := rec.Get(key(6000), nil); !ok {
			fmt.Println("row 6000 absent (aborted insert correctly not replayed)")
		}
	})
	if err := env.Run(); err != nil {
		panic(err)
	}
}
