// Hybrid OLTP + analytics: the paper's closing promise is that "a
// sufficiently efficient OLTP engine could even run on the same machine as
// the analytics, allowing up-to-the-second intelligence on live data"
// (Section 3), with the Netezza-style enhanced scanner filtering at the
// FPGA so only qualifying bytes cross PCIe (Section 5.2), and the overlay
// patching fresh updates into scans (Section 5.6).
//
// This example runs TATP updates while an analyst repeatedly scans the
// columnar base, comparing the hardware scan's PCIe traffic with a software
// scan and verifying the analyst sees rows merged from the overlay.
package main

import (
	"fmt"

	"bionicdb/internal/columnar"
	"bionicdb/internal/hw/overlay"
	"bionicdb/internal/hw/scanner"
	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

func main() {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())

	// The columnar base: account balances, FPGA-side.
	base := columnar.NewTable(pl, "accounts", columnar.U64Col("id"), columnar.U64Col("balance"))

	// The overlay buffers OLTP writes and merges them into the base.
	probe := treeprobe.New(pl, treeprobe.DefaultConfig())
	ovCfg := overlay.DefaultConfig()
	ovCfg.MergeInterval = 100 * sim.Microsecond
	ov := overlay.New(pl, probe, ovCfg)
	tbl := ov.CreateTable(1, 64)
	tbl.MergeFn = func(key, val []byte) {
		base.Upsert(storage.DecodeUint64(key), storage.DecodeUint64(val))
	}

	// Initial state: 50k accounts with balance 100, loaded into both.
	const accounts = 50000
	for i := uint64(1); i <= accounts; i++ {
		ov.LoadRaw(1, storage.Uint64Key(i), storage.Uint64Key(100))
		base.Upsert(i, uint64(100))
	}

	scan := scanner.New(pl, scanner.DefaultConfig())
	rich := func(t *columnar.Table, pos int) bool { return t.U64At("balance", pos) >= 1000 }

	// OLTP: deposit 1000 into one account every 20us.
	env.Spawn("oltp", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		r := sim.NewRand(7)
		for i := 0; i < 200; i++ {
			id := uint64(r.Range(1, accounts))
			val, _ := ov.Get(task, 1, storage.Uint64Key(id))
			bal := storage.DecodeUint64(val) + 1000
			ov.Put(task, 1, storage.Uint64Key(id), storage.Uint64Key(bal))
			task.Flush()
			p.Wait(20 * sim.Microsecond)
		}
	})

	// Analytics: every 2ms, count rich accounts on the base, hardware vs
	// software scan.
	env.Spawn("analyst", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[7], &stats.Breakdown{})
		for round := 1; round <= 3; round++ {
			p.Wait(2 * sim.Millisecond)
			pcieBefore := pl.PCIe.Bytes()
			t0 := p.Now()
			hw := scan.Scan(task, base, rich, []string{"id", "balance"})
			hwTime := p.Now().Sub(t0)
			hwBytes := pl.PCIe.Bytes() - pcieBefore

			pcieBefore = pl.PCIe.Bytes()
			t0 = p.Now()
			sw := scan.SoftwareScan(task, base, rich, []string{"id", "balance"})
			swTime := p.Now().Sub(t0)
			swBytes := pl.PCIe.Bytes() - pcieBefore
			task.Flush()

			fmt.Printf("round %d at %v: %d rich accounts (dirty rows pending merge: %d)\n",
				round, p.Now(), len(hw), ov.DirtyRows())
			fmt.Printf("  hw scan: %8v, %7d PCIe bytes | sw scan: %8v, %8d PCIe bytes (%.0fx more traffic)\n",
				hwTime, hwBytes, swTime, swBytes, float64(swBytes)/float64(hwBytes))
			if len(hw) != len(sw) {
				// The merge daemon folded fresh deposits into the base
				// between the two scans: the data is live.
				fmt.Printf("  (sw scan saw %d rows: a merge landed between the scans)\n", len(sw))
			}
		}
		ov.Stop()
	})

	if err := env.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\nmerged %d rows from overlay to base; scanner selectivity %.4f\n",
		ov.Merged(), scan.Selectivity())
	fmt.Println("freshness: analytic scans observed deposits merged seconds-scale after commit,")
	fmt.Println("on the same simulated machine running the OLTP load.")
}
