// Quickstart: open a bionic database, run a handful of hand-written
// transactions, and print what the simulation measured — throughput is not
// the point here; the transaction API and the energy/latency accounting
// are.
package main

import (
	"fmt"

	"bionicdb"
)

func main() {
	env := bionicdb.NewEnv()

	// One table: id -> greeting. The bionic engine offloads tree probes,
	// logging, queues and the overlay to modelled FPGA units.
	tables := []bionicdb.TableDef{{ID: 1, Name: "greetings", Order: 64}}
	eng := bionicdb.NewBionic(env, bionicdb.HC2(), tables, bionicdb.HashScheme(4), bionicdb.AllOffloads(), 8)

	key := func(i int) []byte {
		return []byte(fmt.Sprintf("key-%04d", i))
	}

	// A terminal is a simulated client process.
	env.Spawn("client", func(p *bionicdb.Proc) {
		term := &bionicdb.Terminal{ID: 0, P: p, Core: eng.Platform().Cores[0], R: bionicdb.NewRand(1)}

		// Insert fifty rows, one transaction each.
		for i := 0; i < 50; i++ {
			i := i
			committed := eng.Submit(term, func(tx bionicdb.Tx) bool {
				return tx.Phase(bionicdb.Action{Table: 1, Key: key(i), Body: func(c bionicdb.AccessCtx) bool {
					return c.Insert(1, key(i), []byte(fmt.Sprintf("hello #%d", i)))
				}})
			})
			if !committed {
				fmt.Printf("insert %d failed\n", i)
			}
		}

		// A read-modify-write transaction.
		eng.Submit(term, func(tx bionicdb.Tx) bool {
			return tx.Phase(bionicdb.Action{Table: 1, Key: key(7), Body: func(c bionicdb.AccessCtx) bool {
				v, ok := c.Read(1, key(7))
				if !ok {
					return false
				}
				return c.Update(1, key(7), append(v, []byte(" (updated)")...))
			}})
		})

		// A scan.
		count := 0
		eng.Submit(term, func(tx bionicdb.Tx) bool {
			return tx.Phase(bionicdb.Action{Table: 1, Key: key(0), Body: func(c bionicdb.AccessCtx) bool {
				c.Scan(1, key(10), key(20), func(k, v []byte) bool {
					count++
					return true
				})
				return true
			}})
		})
		fmt.Printf("scan saw %d rows in [10, 20)\n", count)

		eng.Close()
	})

	if err := env.Run(); err != nil {
		panic(err)
	}

	v, _ := eng.ReadRaw(1, key(7))
	fmt.Printf("row 7 is now: %q\n", v)
	fmt.Printf("simulated time elapsed: %v\n", env.Now())
	fmt.Printf("commits: %d\n", eng.Counters().Get("commits"))
	fmt.Println("\nCPU time by component (the paper's Figure 3 taxonomy):")
	for _, line := range bionicdb.BreakdownLines(eng.Breakdown()) {
		fmt.Println("  " + line)
	}
}
