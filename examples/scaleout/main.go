// Multi-socket scale-out on the TATP mix: runs the engine family on one
// socket and on a four-socket machine (weak scaling — clients and DORA
// partitions grow with the machine) and prints the scaling table plus the
// energy split of the 4-socket DORA run. On the sharded engines,
// transactions whose partitions all live on the coordinator's socket pay
// nothing new; transactions spanning sockets cross the modeled ring
// interconnect and commit through an RVP-based cross-shard decision round.
// Every number is a pure function of the seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"bionicdb"
)

func main() {
	subscribers := flag.Int("subscribers", 20000, "TATP scale factor")
	measureMs := flag.Int("measure", 15, "measurement window, simulated ms")
	flag.Parse()

	sweep := bionicdb.ScalingSweep{
		Sockets: []int{1, 4},
		Workloads: []bionicdb.WorkloadSpec{
			{Name: "tatp", Make: func() bionicdb.Workload {
				return bionicdb.NewTATP(bionicdb.TATPConfig{Subscribers: *subscribers})
			}},
		},
		TerminalsPerSocket: 16,
		Warmup:             5 * bionicdb.Millisecond,
		Measure:            bionicdb.Duration(*measureMs) * bionicdb.Millisecond,
	}

	points := sweep.Points()
	fmt.Printf("TATP on 1 and 4 sockets: %d runs (weak scaling, %d terminals/socket)...\n\n",
		len(points), sweep.TerminalsPerSocket)
	results := bionicdb.Sweep(points, bionicdb.SweepOptions{}) // parallel across GOMAXPROCS workers
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, r.Err)
			os.Exit(1)
		}
	}

	fmt.Print(bionicdb.ScalingTable(results).String())

	// The energy split of the 4-socket DORA point: the interconnect domain
	// is what cross-shard traffic costs; everything else is the same
	// machine four times over.
	for _, r := range results {
		if r.Point.Sockets == 4 && r.Point.Engine.Name == "dora" {
			e := r.Res.Energy
			fmt.Printf("\n4-socket dora energy split: %s\n", e.String())
			fmt.Printf("interconnect share: %.2f%% of %.1f mJ\n",
				e.Interconnect/e.Total()*100, e.Total()*1e3)
		}
	}
}
