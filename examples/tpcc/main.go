// TPC-C engine comparison: the full 45/43/4/4/4 mix on all three engines,
// with the Figure 3 component breakdown printed for each so the shift of
// index/log/queue time off the CPU is visible directly.
package main

import (
	"flag"
	"fmt"

	"bionicdb"
)

func main() {
	warehouses := flag.Int("warehouses", 2, "TPC-C scale factor")
	measureMs := flag.Int("measure", 25, "measurement window, simulated ms")
	flag.Parse()

	wl := bionicdb.NewTPCC(bionicdb.TPCCConfig{
		Warehouses:               *warehouses,
		Districts:                10,
		CustomersPerDistrict:     600,
		Items:                    20000,
		InitialOrdersPerDistrict: 50,
	})
	cfg := bionicdb.RunConfig{
		Terminals: *warehouses * 20,
		Warmup:    bionicdb.Duration(10) * bionicdb.Millisecond,
		Measure:   bionicdb.Duration(*measureMs) * bionicdb.Millisecond,
		Seed:      7,
	}

	engines := []struct {
		name string
		mk   func(env *bionicdb.Env) bionicdb.Engine
	}{
		{"conventional", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewConventional(env, bionicdb.HC2(), wl.Tables())
		}},
		{"dora", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewDORA(env, bionicdb.HC2(), wl.Tables(), wl.Scheme(8))
		}},
		{"bionic", func(env *bionicdb.Env) bionicdb.Engine {
			return bionicdb.NewBionic(env, bionicdb.HC2(), wl.Tables(), wl.Scheme(8), bionicdb.AllOffloads(), 8)
		}},
	}

	fmt.Printf("TPC-C, %d warehouses, %d terminals, %dms window\n", *warehouses, cfg.Terminals, *measureMs)
	for _, e := range engines {
		res, err := bionicdb.Run(cfg, wl, e.mk)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n=== %s: %.0f tps, %.2f uJ/txn, p95 %v\n",
			res.Engine, res.TPS, res.JoulesPerTxn*1e6, res.Latency.Percentile(95))
		fmt.Printf("    mix:")
		for _, name := range res.TxnNames() {
			fmt.Printf(" %s=%d", name, res.TxnCounts[name])
		}
		fmt.Println()
		for _, line := range bionicdb.BreakdownLines(&res.BD) {
			fmt.Println("    " + line)
		}
	}
}
