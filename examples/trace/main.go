// Flight-recorder walkthrough: runs TATP on the DORA engine at one and
// four sockets with the observability layer attached, writes the
// four-socket run's span trace (Chrome trace_event JSON — open it in
// chrome://tracing or Perfetto) and its telemetry time series, and prints
// the per-phase latency anatomy of each run. The recorder is strictly
// out-of-band: the commits, joules and latency numbers printed here are
// bit-identical to the same sweep with the recorder detached.
package main

import (
	"flag"
	"fmt"
	"os"

	"bionicdb"
	"bionicdb/internal/obs"
	"bionicdb/internal/stats"
)

func main() {
	sockets := flag.Int("sockets", 4, "socket count of the instrumented run")
	measureMs := flag.Int("measure", 5, "measurement window, simulated ms")
	traceOut := flag.String("trace-out", "trace.json", "span trace output path")
	metricsOut := flag.String("metrics-out", "metrics.csv", "telemetry output path (.json = JSON, else CSV)")
	flag.Parse()

	sweep := bionicdb.ScalingSweep{
		Sockets: []int{1, *sockets},
		Workloads: []bionicdb.WorkloadSpec{
			{Name: "tatp", Make: func() bionicdb.Workload {
				return bionicdb.NewTATP(bionicdb.TATPConfig{Subscribers: 20000})
			}},
		},
		Engines: []bionicdb.ScalingEngine{
			{Name: "dora", On: func(cfg *bionicdb.PlatformConfig, partitions, window int) bionicdb.EngineSpec {
				return bionicdb.DORASpecOn(cfg, partitions)
			}},
		},
		TerminalsPerSocket: 16,
		// Per-socket log devices: cross-socket transactions then flow
		// between kernel shards, which is what draws flow edges in the
		// trace. On the classic shared-log layout the whole engine lives
		// on shard 0 and the trace has a single busy lane.
		ShardedLog: true,
		Warmup:     1 * bionicdb.Millisecond,
		Measure:    bionicdb.Duration(*measureMs) * bionicdb.Millisecond,
		// The whole point: spans + telemetry on every point of the sweep.
		Obs: &obs.Options{Trace: true, Metrics: true},
	}

	points := sweep.Points()
	fmt.Printf("TATP on dora at 1 and %d sockets, flight recorder attached (%d runs)...\n\n",
		*sockets, len(points))
	results := bionicdb.Sweep(points, bionicdb.SweepOptions{})

	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s @%d sockets: %v\n", r.Point.Engine.Name, r.Point.Sockets, r.Err)
			os.Exit(1)
		}
	}

	// Per-phase latency anatomy of each run. Queue time dominates under
	// load; durability is the log device; cross-shard only appears once
	// transactions span sockets.
	for _, r := range results {
		res := r.Res
		fmt.Printf("%s @%d sockets: %d commits, %.0f tps\n",
			r.Point.Engine.Name, r.Point.Sockets, res.Commits, res.TPS)
		fmt.Printf("  %-12s %10s %10s %10s %10s\n", "phase", "samples", "p50(us)", "p99(us)", "share")
		total := 0.0
		for _, p := range stats.Phases() {
			total += res.Anatomy.Phase(p).Sum().Microseconds()
		}
		for _, p := range stats.Phases() {
			h := res.Anatomy.Phase(p)
			if h.Count() == 0 {
				continue
			}
			fmt.Printf("  %-12s %10d %10.1f %10.1f %9.1f%%\n",
				p.String(), h.Count(),
				h.Percentile(50).Microseconds(), h.Percentile(99).Microseconds(),
				100*h.Sum().Microseconds()/total)
		}
		fmt.Println()
	}

	// Export the multi-socket run's artifacts: one trace lane per socket,
	// cross-shard dispatches joined by flow arrows, and a fixed-tick
	// telemetry series (queue depths, log backlog, LLC/DRAM traffic).
	last := results[len(results)-1].Res
	if err := obs.WriteTraceFile(*traceOut, last.Trace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := last.Metrics.WriteMetricsFile(*metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spans := last.Trace.Merged()
	fmt.Printf("wrote %s (%d spans across %d kernel shards, %d dropped)\n",
		*traceOut, len(spans), last.Trace.NumShards(), last.Trace.Dropped())
	fmt.Printf("wrote %s (%d samples)\n", *metricsOut, len(last.Metrics.Samples()))
}
