// Package bufferpool implements the page cache used by the software
// baselines. It is a timing-model component: tree nodes live in Go memory,
// and the pool decides whether touching a page costs a hash probe (hit) or
// a disk read plus possible dirty write-back (miss). Its bookkeeping costs
// — hash, latch, pin counts, clock hand — are what Figure 3 charges to
// "Bpool mgmt"; the bionic engine replaces the pool with the FPGA-side
// overlay (§5.6).
package bufferpool

import (
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// Config tunes the pool.
type Config struct {
	// Frames is the number of page frames (pool capacity in pages).
	Frames int
	// FixInstr is the instruction cost of one fix: hash probe, latch
	// acquire/release, pin-count update.
	FixInstr int
	// UnfixInstr is the instruction cost of one unfix.
	UnfixInstr int
	// PageSize is the transfer size for misses and write-backs.
	PageSize int
}

// DefaultConfig returns the calibrated baseline costs.
func DefaultConfig(frames, pageSize int) Config {
	return Config{Frames: frames, FixInstr: 80, UnfixInstr: 20, PageSize: pageSize}
}

type frame struct {
	id     storage.PageID
	pins   int
	dirty  bool
	refbit bool
}

// Pool is a clock-replacement page cache over one storage device.
type Pool struct {
	cfg   Config
	dev   *platform.Device
	latch *sim.Resource

	resident map[storage.PageID]*frame
	ring     []*frame
	hand     int

	tableAddr uint64 // timing address of the hash table

	hits       int64
	misses     int64
	writebacks int64
}

// New creates a pool caching pages of dev.
func New(pl *platform.Platform, dev *platform.Device, cfg Config) *Pool {
	if cfg.Frames < 1 {
		panic("bufferpool: need at least one frame")
	}
	return &Pool{
		cfg:       cfg,
		dev:       dev,
		latch:     sim.NewResource(pl.Env, "bpool-latch", 1),
		resident:  make(map[storage.PageID]*frame, cfg.Frames),
		tableAddr: pl.AllocHost(cfg.Frames * 64),
	}
}

// Confine homes the pool's latch on the given kernel shard, so a per-socket
// pool may be fixed only from its socket's shard on a concurrent
// environment. Call at setup time, before running.
func (bp *Pool) Confine(shard int) *Pool {
	bp.latch.OnShard(shard)
	return bp
}

// Fix pins page id, charging the hit path or the miss path (victim
// write-back if dirty, then a page read). It returns whether the page was
// resident. Fixes of pages already being read by another process are
// treated as independent misses — rare and conservatively costed.
func (bp *Pool) Fix(t *platform.Task, id storage.PageID) (hit bool) {
	t.Exec(stats.CompBpool, bp.cfg.FixInstr)
	t.Access(stats.CompBpool, bp.tableAddr+(uint64(id)*64)%uint64(bp.cfg.Frames*64), 16)
	t.Flush()
	bp.latch.Acquire(t.P)
	f, ok := bp.resident[id]
	if ok {
		f.pins++
		f.refbit = true
		bp.hits++
		bp.latch.Release()
		return true
	}
	bp.misses++
	victimDirty := false
	if len(bp.resident) >= bp.cfg.Frames {
		victimDirty = bp.evict(t)
	}
	f = &frame{id: id, pins: 1, refbit: true}
	bp.resident[id] = f
	bp.ring = append(bp.ring, f)
	bp.latch.Release()
	// I/O happens outside the latch so other fixes proceed.
	if victimDirty {
		bp.writebacks++
		bp.dev.Transfer(t.P, bp.cfg.PageSize)
	}
	bp.dev.Transfer(t.P, bp.cfg.PageSize)
	return false
}

// evict advances the clock hand to a victim and removes it, reporting
// whether it was dirty. Called with the latch held.
func (bp *Pool) evict(t *platform.Task) (wasDirty bool) {
	for spins := 0; spins < 4*len(bp.ring); spins++ {
		if bp.hand >= len(bp.ring) {
			bp.hand = 0
		}
		f := bp.ring[bp.hand]
		if f.pins > 0 {
			bp.hand++
			continue
		}
		if f.refbit {
			f.refbit = false
			bp.hand++
			continue
		}
		delete(bp.resident, f.id)
		bp.ring = append(bp.ring[:bp.hand], bp.ring[bp.hand+1:]...)
		return f.dirty
	}
	panic("bufferpool: all frames pinned")
}

// Unfix releases a pin; dirty marks the page modified (write-back on evict).
func (bp *Pool) Unfix(t *platform.Task, id storage.PageID, dirty bool) {
	t.Exec(stats.CompBpool, bp.cfg.UnfixInstr)
	f, ok := bp.resident[id]
	if !ok || f.pins <= 0 {
		panic("bufferpool: unfix of unpinned page")
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// Prewarm installs page id in a frame without charging time or I/O, for
// post-population cache warming. It is a no-op when the page is already
// resident or the pool is full.
func (bp *Pool) Prewarm(id storage.PageID) {
	if _, ok := bp.resident[id]; ok || len(bp.resident) >= bp.cfg.Frames {
		return
	}
	f := &frame{id: id, refbit: true}
	bp.resident[id] = f
	bp.ring = append(bp.ring, f)
}

// Resident reports whether a page occupies a frame (no cost charged).
func (bp *Pool) Resident(id storage.PageID) bool { _, ok := bp.resident[id]; return ok }

// Hits returns the number of fix hits.
func (bp *Pool) Hits() int64 { return bp.hits }

// Misses returns the number of fix misses.
func (bp *Pool) Misses() int64 { return bp.misses }

// Writebacks returns the number of dirty-victim write-backs.
func (bp *Pool) Writebacks() int64 { return bp.writebacks }

// HitRatio returns hits/(hits+misses), or 0 before any fix.
func (bp *Pool) HitRatio() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}
