package bufferpool

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

func fixture(frames int) (*sim.Env, *platform.Platform, *Pool) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	bp := New(pl, pl.Disk, DefaultConfig(frames, pl.Cfg.PageSize))
	return env, pl, bp
}

func run(t *testing.T, env *sim.Env) {
	t.Helper()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFixMissThenHit(t *testing.T) {
	env, pl, bp := fixture(4)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		if hit := bp.Fix(task, 1); hit {
			t.Error("cold fix reported hit")
		}
		bp.Unfix(task, 1, false)
		if hit := bp.Fix(task, 1); !hit {
			t.Error("warm fix reported miss")
		}
		bp.Unfix(task, 1, false)
		task.Flush()
	})
	run(t, env)
	if bp.Hits() != 1 || bp.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", bp.Hits(), bp.Misses())
	}
	if r := bp.HitRatio(); r != 0.5 {
		t.Fatalf("ratio=%v", r)
	}
}

func TestMissChargesDiskLatency(t *testing.T) {
	env, pl, bp := fixture(4)
	var took sim.Duration
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		start := p.Now()
		bp.Fix(task, 1)
		task.Flush()
		took = p.Now().Sub(start)
		bp.Unfix(task, 1, false)
	})
	run(t, env)
	if took < 5*sim.Millisecond {
		t.Fatalf("miss took %v, want >= disk seek", took)
	}
}

func TestEvictionPrefersUnreferenced(t *testing.T) {
	env, pl, bp := fixture(2)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		bp.Fix(task, 1)
		bp.Unfix(task, 1, false)
		bp.Fix(task, 2)
		bp.Unfix(task, 2, false)
		bp.Fix(task, 3) // evicts one of 1/2
		bp.Unfix(task, 3, false)
		task.Flush()
	})
	run(t, env)
	if bp.Resident(1) && bp.Resident(2) {
		t.Fatal("no eviction happened")
	}
	if !bp.Resident(3) {
		t.Fatal("newly fixed page not resident")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	env, pl, bp := fixture(1)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		bp.Fix(task, 1)
		bp.Unfix(task, 1, true) // dirty
		bp.Fix(task, 2)         // must write back page 1
		bp.Unfix(task, 2, false)
		task.Flush()
	})
	run(t, env)
	if bp.Writebacks() != 1 {
		t.Fatalf("writebacks=%d, want 1", bp.Writebacks())
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	env, pl, bp := fixture(2)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		bp.Fix(task, 1) // pinned throughout
		bp.Fix(task, 2)
		bp.Unfix(task, 2, false)
		bp.Fix(task, 3) // must evict 2, not pinned 1
		bp.Unfix(task, 3, false)
		bp.Unfix(task, 1, false)
		task.Flush()
	})
	run(t, env)
	if !bp.Resident(1) {
		t.Fatal("pinned page was evicted")
	}
	if bp.Resident(2) {
		t.Fatal("unpinned page survived over pinned")
	}
}

func TestAllPinnedPanics(t *testing.T) {
	env, pl, bp := fixture(1)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		bp.Fix(task, 1)
		bp.Fix(task, 2) // no evictable frame
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected panic error when all frames pinned")
	}
}

func TestUnfixUnpinnedPanics(t *testing.T) {
	env, pl, bp := fixture(2)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		bp.Unfix(task, 99, false)
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected panic error for bad unfix")
	}
}

func TestFixChargesBpoolComponent(t *testing.T) {
	env, pl, bp := fixture(4)
	bd := &stats.Breakdown{}
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], bd)
		bp.Fix(task, 1)
		bp.Unfix(task, 1, false)
		task.Flush()
	})
	run(t, env)
	if bd.Get(stats.CompBpool) == 0 {
		t.Fatal("no Bpool time charged")
	}
}

func TestWorkingSetBeyondPoolThrashes(t *testing.T) {
	env, pl, bp := fixture(8)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for round := 0; round < 3; round++ {
			for id := storage.PageID(1); id <= 16; id++ {
				bp.Fix(task, id)
				bp.Unfix(task, id, false)
			}
		}
		task.Flush()
	})
	run(t, env)
	if bp.HitRatio() > 0.5 {
		t.Fatalf("hit ratio %v for working set 2x pool size", bp.HitRatio())
	}
}
