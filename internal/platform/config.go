// Package platform models the paper's Figure 2 machine: a commodity CPU
// socket coupled to an FPGA over PCIe, with host DRAM, scatter-gather DRAM
// on the FPGA side, a SAS disk array behind the FPGA and an SSD behind the
// CPU. It provides the cost and energy model every engine charges against:
// CPU cores with a set-associative cache hierarchy, latency/bandwidth
// devices, FPGA hardware units, and joules accounting. Config.Sockets
// scales the machine out to N identical sockets joined by a modeled
// interconnect (ring, mesh or crossbar; latency and energy per hop) — the
// substrate for the scale-out experiments. One socket reproduces the
// paper's machine exactly: no interconnect exists and nothing pays for it.
package platform

import (
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Config holds every calibration constant of the machine model. Defaults
// come from HC2(), which transcribes Figure 2 verbatim for links and
// devices and uses 2011-2013-era engineering estimates (documented per
// field) elsewhere. Absolute values shift absolute results; the experiment
// shapes under test are robust to them.
type Config struct {
	// --- CPU socket ---

	// Cores is the number of general-purpose cores per socket.
	Cores int
	// Sockets is the number of CPU sockets (0 or 1 models the paper's
	// single-socket machine exactly; >1 joins identical sockets by the
	// interconnect below). Each socket has its own Cores cores and its own
	// LLC; L1/L2/L3 parameters apply per socket.
	Sockets int
	// CPUFreqGHz is the core clock. 2.5 GHz is a typical 2012 Xeon.
	CPUFreqGHz float64
	// CPI is the average cycles retired per instruction for cache-resident
	// OLTP code, excluding memory stalls (those are charged by the cache
	// model). OLTP code is branchy; ~1.0 matches the measurements in
	// Ailamaki et al., "DBMSs on a modern processor" [1].
	CPI float64

	// Cache hierarchy: sizes in bytes, latencies as absolute time.
	// 32KB/256KB/20MB with a 1.2ns/4.8ns/16ns/100ns ladder matches a
	// Westmere-EP-class part. The 100ns cached-path DRAM penalty is the
	// row-buffer-friendly load-to-use latency; the 400ns figure on the
	// DRAM modules in Figure 2 is the uncached random round trip as seen
	// by a scatter-gather requester, which is what HostDRAM/SGDRAM model.
	LineSize                  int
	L1Size, L2Size, L3Size    int
	L1Assoc, L2Assoc, L3Assoc int
	L1Lat, L2Lat, L3Lat       sim.Duration
	DRAMMissLat               sim.Duration

	// --- Figure 2 links and devices (verbatim from the figure) ---

	// HostDRAMBWGBps/HostDRAMLat: "DDR3 DRAM, 20 GBps / 400 ns".
	HostDRAMBWGBps float64
	HostDRAMLat    sim.Duration
	HostDRAMChans  int
	// SGDRAMBWGBps/SGDRAMLat: "DDR3 SG-DRAM, 80 GBps / 400 ns", random
	// 64-bit requests; 16 scatter-gather memory controllers.
	SGDRAMBWGBps float64
	SGDRAMLat    sim.Duration
	SGDRAMChans  int
	// PCIeBWGBps/PCIeLat: "8x PCI-e, 4 GBps / 2 us" — 2 us is the round
	// trip the paper quotes, so the one-way message latency is half.
	PCIeBWGBps float64
	PCIeLat    sim.Duration // one-way
	// DiskBWGBps/DiskLat: "2x SAS, 12 Gbps / 5 ms". 12 Gb/s = 1.5 GB/s
	// aggregate over two controllers.
	DiskBWGBps float64
	DiskLat    sim.Duration
	DiskChans  int
	// SSDBWGBps/SSDLat: "1x SSD, 500 MBps / 20 us".
	SSDBWGBps float64
	SSDLat    sim.Duration
	SSDChans  int
	// LogDevPerSocket gives every socket of a multi-socket machine its own
	// log SSD (and its own FPGA log link), the device substrate of the
	// sharded durability subsystem: engines then keep one log stream per
	// socket instead of funnelling every record to socket 0's single SSD.
	// On a single-socket machine the flag is inert — the paper's machine
	// keeps exactly its one SSD and nothing new is built or paid for.
	LogDevPerSocket bool

	// --- Log replication (replicated configurations only) ---

	// Replicas is the number of replica machines the durable log ships to.
	// Zero (the default) disables replication: no link, no replica devices,
	// no shipping daemons — the single-machine model is untouched.
	Replicas int
	// ReplMode is how the commit path waits for replica acknowledgements:
	// async (not at all), sync (every replica), quorum (a majority of
	// primary + replicas). Inert while Replicas is zero.
	ReplMode stats.ReplMode
	// ReplLinkGBps is the primary's egress bandwidth toward the replicas —
	// one 10 GbE port (1.25 GB/s), the commodity inter-machine link of the
	// era. All replicas share it, so sync (all acks) pays the serialization
	// that quorum (first ack) hides.
	ReplLinkGBps float64
	// ReplLinkLat is the one-way message latency to a replica: NIC, kernel
	// stack and a switch hop. ~25 us matches 2012-era TCP round trips of
	// ~50 us within a rack.
	ReplLinkLat sim.Duration
	// ReplPJPerByte is the transfer energy per byte across the link — both
	// NIC ends plus the switch port. A 10 GbE port burns ~5 W at 1.25 GB/s
	// line rate, so ~4 nJ/B per end; 3000 pJ/B covers one end plus a shared
	// switch.
	ReplPJPerByte float64

	// --- Socket interconnect (multi-socket configurations only) ---

	// ICTopology is how sockets are wired: a full crossbar, a
	// bidirectional ring, or a 2D mesh. Hop counts (and so latency and
	// energy per message) follow the topology; one socket never pays.
	ICTopology Topology
	// ICLinkGBps is the egress bandwidth of one socket's interconnect
	// port. 12.8 GB/s is one QPI link at 6.4 GT/s, the 2012-era part.
	ICLinkGBps float64
	// ICHopLat is the per-hop message latency. ~40 ns matches measured
	// QPI socket-to-socket adder over local DRAM access.
	ICHopLat sim.Duration
	// ICPJPerByte is the transfer energy per byte per hop (serdes +
	// routing), same order as PCIe serdes cost.
	ICPJPerByte float64

	// --- FPGA ---

	// FPGAFreqMHz is the fabric clock; 150 MHz is the HC-2 application
	// engine clock.
	FPGAFreqMHz float64

	// --- Power model ---
	// Per-core and per-unit figures bracket the measurements in
	// Tsirogiannis et al. [14] (a loaded 2010 server splits ~55W of
	// dynamic CPU power over cores) and FAWN-style wimpy-node numbers [2].

	CoreActiveW     float64 // a core running flat out
	CoreIdleW       float64 // a clock-gated idle core
	FPGAUnitActiveW float64 // one busy FPGA engine (probe, log, queue, scan)
	FPGAUnitIdleW   float64 // a configured but idle FPGA engine
	DRAMPJPerByte   float64 // DDR3 access energy, ~60-70 pJ/bit incl. I/O
	PCIePJPerByte   float64 // serdes + protocol overhead
	DiskActiveW     float64 // spindle+controller while transferring
	SSDActiveW      float64

	// PageSize is the database page size in bytes.
	PageSize int
}

// HC2 returns the default configuration: the Convey HC-2-class machine of
// Figure 2 with an 8-core host.
func HC2() *Config {
	return &Config{
		Cores:      8,
		CPUFreqGHz: 2.5,
		CPI:        1.0,

		LineSize: 64,
		L1Size:   32 << 10, L2Size: 256 << 10, L3Size: 20 << 20,
		L1Assoc: 8, L2Assoc: 8, L3Assoc: 16,
		L1Lat:       1200 * sim.Picosecond, // 3 cycles
		L2Lat:       4800 * sim.Picosecond, // 12 cycles
		L3Lat:       16 * sim.Nanosecond,   // 40 cycles
		DRAMMissLat: 100 * sim.Nanosecond,

		HostDRAMBWGBps: 20, HostDRAMLat: 400 * sim.Nanosecond, HostDRAMChans: 4,
		SGDRAMBWGBps: 80, SGDRAMLat: 400 * sim.Nanosecond, SGDRAMChans: 16,
		PCIeBWGBps: 4, PCIeLat: 1 * sim.Microsecond,
		DiskBWGBps: 1.5, DiskLat: 5 * sim.Millisecond, DiskChans: 2,
		SSDBWGBps: 0.5, SSDLat: 20 * sim.Microsecond, SSDChans: 1,

		ReplLinkGBps:  1.25,
		ReplLinkLat:   25 * sim.Microsecond,
		ReplPJPerByte: 3000,

		ICTopology:  TopoRing,
		ICLinkGBps:  12.8,
		ICHopLat:    40 * sim.Nanosecond,
		ICPJPerByte: 60,

		FPGAFreqMHz: 150,

		CoreActiveW:     10,
		CoreIdleW:       2,
		FPGAUnitActiveW: 5,
		FPGAUnitIdleW:   0.5,
		DRAMPJPerByte:   500,
		PCIePJPerByte:   60,
		DiskActiveW:     10,
		SSDActiveW:      3,

		PageSize: 8 << 10,
	}
}

// HC2Scaled returns the HC2 configuration scaled out to n identical
// sockets joined by the default ring interconnect — the platform the
// fig-scaling sweep measures.
func HC2Scaled(sockets int) *Config {
	cfg := HC2()
	cfg.Sockets = sockets
	return cfg
}

// HC2ScaledSharded returns HC2Scaled(n) with per-socket log devices: the
// machine the sharded-log scaling and recovery experiments run on.
func HC2ScaledSharded(sockets int) *Config {
	cfg := HC2Scaled(sockets)
	cfg.LogDevPerSocket = true
	return cfg
}

// HC2Replicated returns HC2Scaled(n) shipping its durable log to the given
// number of replica machines under the given commit-wait mode — the
// platform the fig-failover sweep measures (add LogDevPerSocket for the
// sharded-log variant).
func HC2Replicated(sockets, replicas int, mode stats.ReplMode) *Config {
	cfg := HC2Scaled(sockets)
	cfg.Replicas = replicas
	cfg.ReplMode = mode
	return cfg
}

// Replicated reports whether this machine ships its log to replicas. A
// config with Replicas == 0 or ReplMode == ReplNone builds none of the
// replication machinery — the standing no-feature invariant.
func (c *Config) Replicated() bool { return c.Replicas > 0 && c.ReplMode != stats.ReplNone }

// ReplAckNeed returns how many replica acknowledgements a commit must wait
// for under the configured mode: 0 (async), all replicas (sync), or enough
// replicas to form a majority of primary + replicas (quorum).
func (c *Config) ReplAckNeed() int {
	if !c.Replicated() {
		return 0
	}
	switch c.ReplMode {
	case stats.ReplSync:
		return c.Replicas
	case stats.ReplQuorum:
		// Majority of the replication group (primary + R replicas); the
		// primary's own durable write is one vote, so a group of R+1 needs
		// floor((R+1)/2)+1 votes, i.e. floor((R+1)/2) replica acks.
		return (c.Replicas + 1) / 2
	default:
		return 0
	}
}

// ShardedLog reports whether this machine shards its durable log: one log
// device per socket. Requires more than one socket; a single-socket config
// never shards, so the paper's machine is untouched by the flag.
func (c *Config) ShardedLog() bool { return c.LogDevPerSocket && c.NumSockets() > 1 }

// NumSockets returns the effective socket count (a zero config field means
// one socket).
func (c *Config) NumSockets() int {
	if c.Sockets < 1 {
		return 1
	}
	return c.Sockets
}

// TotalCores returns the core count across all sockets.
func (c *Config) TotalCores() int { return c.Cores * c.NumSockets() }

// CycleTime returns the CPU core cycle time.
func (c *Config) CycleTime() sim.Duration {
	return sim.Duration(1000.0 / c.CPUFreqGHz) // ps per cycle
}

// FPGACycle returns the FPGA fabric cycle time.
func (c *Config) FPGACycle() sim.Duration {
	return sim.Duration(1e6 / c.FPGAFreqMHz) // ps per cycle
}

// InstrTime returns the core-local time to retire n instructions.
func (c *Config) InstrTime(n int) sim.Duration {
	return sim.Duration(float64(n) * c.CPI * float64(c.CycleTime()))
}

// transferTime returns bytes / (gbps GB/s) as a duration.
func transferTime(bytes int64, gbps float64) sim.Duration {
	if bytes <= 0 || gbps <= 0 {
		return 0
	}
	// gbps GB/s == gbps bytes/ns.
	return sim.Duration(float64(bytes) / gbps * float64(sim.Nanosecond))
}
