package platform

import (
	"testing"

	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func TestReplLinkTiming(t *testing.T) {
	env := sim.NewEnv()
	cfg := HC2Replicated(1, 1, stats.ReplAsync)
	pl := New(env, cfg)
	if pl.ReplLink == nil {
		t.Fatal("replicated config built no ReplLink")
	}
	const chunk = 125000 // 100us of serialization at 1.25 GB/s
	serial := transferTime(chunk, cfg.ReplLinkGBps)
	var single, second sim.Duration
	env.Spawn("a", func(p *sim.Proc) {
		single = pl.ReplLink.Transfer(p, chunk)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := serial + cfg.ReplLinkLat
	if single != want {
		t.Errorf("uncontended transfer took %v, want serialization %v + latency %v", single, serial, cfg.ReplLinkLat)
	}
	// Burst: two streams on the one-channel NIC serialize — the second pays
	// the first's full serialization as queueing, but latency pipelines.
	env.Spawn("b1", func(p *sim.Proc) { pl.ReplLink.Transfer(p, chunk) })
	env.Spawn("b2", func(p *sim.Proc) {
		p.Wait(1 * sim.Nanosecond) // lose the channel race deterministically
		second = pl.ReplLink.Transfer(p, chunk)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	wantSecond := 2*serial + cfg.ReplLinkLat - 1*sim.Nanosecond
	if second != wantSecond {
		t.Errorf("queued transfer took %v, want %v (own serialization + predecessor's)", second, wantSecond)
	}
}

func TestReplDevicesPerReplicaPerShard(t *testing.T) {
	env := sim.NewEnv()
	cfg := HC2Replicated(2, 2, stats.ReplSync)
	cfg.LogDevPerSocket = true
	pl := New(env, cfg)
	if pl.Replicas() != 2 {
		t.Fatalf("Replicas() = %d", pl.Replicas())
	}
	seen := map[*Device]bool{}
	for r := 0; r < 2; r++ {
		for s := 0; s < cfg.NumSockets(); s++ {
			d := pl.ReplSSD(r, s)
			if d == nil || seen[d] {
				t.Fatalf("replica %d shard %d: missing or shared device", r, s)
			}
			seen[d] = true
		}
	}
}

func TestReplEnergyDomain(t *testing.T) {
	env := sim.NewEnv()
	cfg := HC2Replicated(1, 1, stats.ReplAsync)
	pl := New(env, cfg)
	before := pl.Snapshot()
	const chunk = 1 << 20
	env.Spawn("ship", func(p *sim.Proc) {
		pl.ReplLink.Transfer(p, chunk)
		pl.ReplSSD(0, 0).Transfer(p, chunk)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	after := pl.Snapshot()
	if after.ReplBytes-before.ReplBytes != chunk {
		t.Errorf("ReplBytes delta %d, want %d", after.ReplBytes-before.ReplBytes, chunk)
	}
	if after.ReplSSDBusy <= before.ReplSSDBusy {
		t.Error("replica SSD busy time did not advance")
	}
	r := pl.Energy(before, after)
	wantLink := float64(chunk) * cfg.ReplPJPerByte * 1e-12
	if r.Replication <= wantLink {
		t.Errorf("Replication = %v J, want > link bytes alone (%v J: the replica device term is missing)",
			r.Replication, wantLink)
	}
	if total := r.Total(); total < r.Replication {
		t.Errorf("Total() %v excludes Replication %v", total, r.Replication)
	}
}

// TestUnreplicatedBuildsNothing is the no-feature guard at the platform
// layer: the paper machine must be byte-for-byte unchanged with replication
// off.
func TestUnreplicatedBuildsNothing(t *testing.T) {
	env := sim.NewEnv()
	cfg := HC2()
	if cfg.Replicated() {
		t.Fatal("HC2 is replicated by default")
	}
	pl := New(env, cfg)
	if pl.ReplLink != nil || pl.Replicas() != 0 {
		t.Error("unreplicated platform built replication devices")
	}
	s := pl.Snapshot()
	if s.ReplBytes != 0 || s.ReplSSDBusy != 0 {
		t.Error("unreplicated snapshot carries replication counters")
	}
	if r := pl.Energy(s, pl.Snapshot()); r.Replication != 0 {
		t.Errorf("unreplicated Replication energy = %v", r.Replication)
	}
}

func TestReplAckNeed(t *testing.T) {
	cases := []struct {
		mode     stats.ReplMode
		replicas int
		want     int
	}{
		{stats.ReplAsync, 2, 0},
		{stats.ReplSync, 1, 1},
		{stats.ReplSync, 2, 2},
		{stats.ReplSync, 3, 3},
		{stats.ReplQuorum, 1, 1}, // group of 2: majority is 2 votes, 1 replica ack
		{stats.ReplQuorum, 2, 1}, // group of 3: majority is 2 votes, 1 replica ack
		{stats.ReplQuorum, 3, 2}, // group of 4: majority is 3 votes, 2 replica acks
		{stats.ReplQuorum, 4, 2}, // group of 5: majority is 3 votes, 2 replica acks
	}
	for _, c := range cases {
		cfg := HC2Replicated(1, c.replicas, c.mode)
		if got := cfg.ReplAckNeed(); got != c.want {
			t.Errorf("%s x%d: need %d, want %d", c.mode, c.replicas, got, c.want)
		}
	}
	if got := HC2().ReplAckNeed(); got != 0 {
		t.Errorf("unreplicated need %d", got)
	}
}
