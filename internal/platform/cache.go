package platform

// cacheLevel is a set-associative cache with true-LRU replacement, tracked
// at cache-line granularity. It stores tags only: the simulation keeps data
// in ordinary Go structures and uses the cache purely as a timing model.
type cacheLevel struct {
	lineShift uint
	setMask   uint64
	assoc     int
	sets      [][]uint64 // each set is an MRU-ordered tag list
	hits      int64
	misses    int64
}

func newCacheLevel(size, assoc, lineSize int) *cacheLevel {
	nSets := size / (assoc * lineSize)
	if nSets < 1 {
		nSets = 1
	}
	// Round down to a power of two so the set index is a mask.
	for nSets&(nSets-1) != 0 {
		nSets &^= nSets & -nSets
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	c := &cacheLevel{
		lineShift: shift,
		setMask:   uint64(nSets - 1),
		assoc:     assoc,
		sets:      make([][]uint64, nSets),
	}
	return c
}

// access probes the cache for the line containing addr, installing it on a
// miss (evicting the LRU way). It returns whether the probe hit.
func (c *cacheLevel) access(lineAddr uint64) bool {
	set := c.sets[lineAddr&c.setMask]
	for i, tag := range set {
		if tag == lineAddr {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = lineAddr
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.assoc {
		set = append(set, 0)
		c.sets[lineAddr&c.setMask] = set
	}
	copy(set[1:], set)
	set[0] = lineAddr
	return false
}

// lineOf returns the line address (addr with offset bits cleared... shifted).
func (c *cacheLevel) lineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Hits returns the number of hits recorded so far.
func (c *cacheLevel) Hits() int64 { return c.hits }

// Misses returns the number of misses recorded so far.
func (c *cacheLevel) Misses() int64 { return c.misses }

// CacheStats summarizes hierarchy behaviour for reports and tests.
type CacheStats struct {
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	L3Hits, L3Misses int64
}

// MissRatio returns LLC misses per L1 access, the fraction of accesses that
// reached DRAM.
func (s CacheStats) MissRatio() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L3Misses) / float64(total)
}
