package platform

import (
	"testing"

	"bionicdb/internal/sim"
)

// TestCharacterizeMatchesFigure2 is the F2 acceptance test: the measured
// platform must realize the configured (paper) numbers within modelling
// tolerance — bandwidth within 5% (disk excepted: seeks eat into large
// transfers) and latency within 10%.
func TestCharacterizeMatchesFigure2(t *testing.T) {
	rows := Characterize(HC2())
	if len(rows) != 5 {
		t.Fatalf("%d components characterized", len(rows))
	}
	for _, r := range rows {
		bwTol := 0.05
		if r.Name == "sas-disk" {
			bwTol = 0.35
		}
		if r.MeasGBps < r.SpecGBps*(1-bwTol) || r.MeasGBps > r.SpecGBps*(1+bwTol) {
			t.Errorf("%s: measured %.2f GB/s vs spec %.2f", r.Name, r.MeasGBps, r.SpecGBps)
		}
		lo := float64(r.SpecLat) * 0.9
		hi := float64(r.SpecLat) * 1.1
		if float64(r.MeasLat) < lo || float64(r.MeasLat) > hi {
			t.Errorf("%s: measured latency %v vs spec %v", r.Name, r.MeasLat, r.SpecLat)
		}
	}
}

// TestCharacterizeRespectsOverrides ensures custom platforms characterize
// to their own numbers (the hc2sim -pcie-us flag path).
func TestCharacterizeRespectsOverrides(t *testing.T) {
	cfg := HC2()
	cfg.PCIeLat = 4 * sim.Microsecond
	cfg.PCIeBWGBps = 8
	for _, r := range Characterize(cfg) {
		if r.Name != "pcie" {
			continue
		}
		if r.SpecLat != 4*sim.Microsecond || r.MeasLat < 4*sim.Microsecond {
			t.Errorf("override latency not honored: %+v", r)
		}
		if r.MeasGBps < 7.5 {
			t.Errorf("override bandwidth not honored: %+v", r)
		}
	}
}
