package platform

import "bionicdb/internal/sim"

// CharRow is one Figure 2 component: its configured (spec) numbers and the
// latency/bandwidth measured against the simulated device.
type CharRow struct {
	Name     string
	SpecGBps float64
	SpecLat  sim.Duration
	MeasGBps float64
	MeasLat  sim.Duration
}

// Characterize runs microbenchmarks against every Figure 2 component of a
// fresh platform and reports measured vs configured latency and bandwidth:
// latency from a single dependent access, bandwidth from 64 concurrent
// streams of large transfers. It validates that the machine model
// faithfully realizes the figure's numbers.
func Characterize(cfg *Config) []CharRow {
	type devSpec struct {
		name    string
		gbps    float64
		lat     sim.Duration
		latSize int // bytes for the latency probe
		bwSize  int // bytes per bandwidth-stream transfer
		pick    func(pl *Platform) *Device
	}
	specs := []devSpec{
		{"host-dram", cfg.HostDRAMBWGBps, cfg.HostDRAMLat, 64, 1 << 20, func(pl *Platform) *Device { return pl.HostDRAM }},
		{"sg-dram", cfg.SGDRAMBWGBps, cfg.SGDRAMLat, 8, 1 << 20, func(pl *Platform) *Device { return pl.SGDRAM }},
		{"pcie", cfg.PCIeBWGBps, cfg.PCIeLat, 64, 1 << 20, func(pl *Platform) *Device { return pl.PCIe }},
		{"sas-disk", cfg.DiskBWGBps, cfg.DiskLat, 0, 8 << 20, func(pl *Platform) *Device { return pl.Disk }},
		{"ssd", cfg.SSDBWGBps, cfg.SSDLat, 0, 4 << 20, func(pl *Platform) *Device { return pl.SSD }},
	}
	out := make([]CharRow, 0, len(specs))
	for _, s := range specs {
		row := CharRow{Name: s.name, SpecGBps: s.gbps, SpecLat: s.lat}

		// Latency: one minimal access on an idle device.
		env := sim.NewEnv()
		pl := New(env, cfg)
		dev := s.pick(pl)
		env.Spawn("lat", func(p *sim.Proc) {
			row.MeasLat = dev.Transfer(p, s.latSize)
		})
		if err := env.Run(); err != nil {
			panic(err)
		}

		// Bandwidth: 64 concurrent streams, 8 transfers each.
		env = sim.NewEnv()
		pl = New(env, cfg)
		dev = s.pick(pl)
		var bytes int64
		for i := 0; i < 64; i++ {
			env.Spawn("bw", func(p *sim.Proc) {
				for j := 0; j < 8; j++ {
					dev.Transfer(p, s.bwSize)
					bytes += int64(s.bwSize)
				}
			})
		}
		if err := env.Run(); err != nil {
			panic(err)
		}
		elapsed := sim.Duration(env.Now())
		if elapsed > 0 {
			row.MeasGBps = float64(bytes) / elapsed.Nanoseconds()
		}
		out = append(out, row)
	}
	return out
}
