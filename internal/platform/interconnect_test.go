package platform

import (
	"testing"

	"bionicdb/internal/sim"
)

func TestTopologyHops(t *testing.T) {
	cases := []struct {
		topo    Topology
		a, b, n int
		want    int
	}{
		{TopoFull, 0, 0, 8, 0},
		{TopoFull, 0, 7, 8, 1},
		{TopoFull, 3, 5, 16, 1},
		{TopoRing, 0, 1, 8, 1},
		{TopoRing, 0, 4, 8, 4},   // antipode
		{TopoRing, 0, 7, 8, 1},   // shorter way around
		{TopoRing, 1, 15, 16, 2}, // wraps
		{TopoMesh, 0, 5, 16, 2},  // (0,0) -> (1,1) on a 4-wide grid
		{TopoMesh, 0, 15, 16, 6}, // corner to corner
		{TopoMesh, 0, 1, 2, 1},
	}
	for _, c := range cases {
		if got := c.topo.Hops(c.a, c.b, c.n); got != c.want {
			t.Errorf("%v.Hops(%d,%d,n=%d) = %d, want %d", c.topo, c.a, c.b, c.n, got, c.want)
		}
		// Hops must be symmetric: messages and replies cost the same.
		if got, back := c.topo.Hops(c.a, c.b, c.n), c.topo.Hops(c.b, c.a, c.n); got != back {
			t.Errorf("%v hops asymmetric: %d->%d=%d but %d->%d=%d", c.topo, c.a, c.b, got, c.b, c.a, back)
		}
	}
	if d := TopoRing.Diameter(16); d != 8 {
		t.Errorf("ring-16 diameter = %d, want 8", d)
	}
	if d := TopoFull.Diameter(16); d != 1 {
		t.Errorf("full-16 diameter = %d, want 1", d)
	}
}

func TestSocketLayout(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	cfg := HC2Scaled(4)
	pl := New(env, cfg)
	if pl.NumSockets() != 4 || len(pl.Sockets) != 4 {
		t.Fatalf("expected 4 sockets, got %d", pl.NumSockets())
	}
	if len(pl.Cores) != 32 {
		t.Fatalf("expected 32 cores total, got %d", len(pl.Cores))
	}
	for i, c := range pl.Cores {
		if want := i / cfg.Cores; c.SocketID() != want {
			t.Errorf("core %d on socket %d, want %d", i, c.SocketID(), want)
		}
	}
	if pl.IC == nil {
		t.Fatal("4-socket platform has no interconnect")
	}

	// One socket: the paper's machine, no interconnect.
	single := New(env, HC2())
	if single.IC != nil {
		t.Error("single-socket platform built an interconnect")
	}
	if single.NumSockets() != 1 || len(single.Cores) != 8 {
		t.Errorf("single socket layout wrong: %d sockets, %d cores", single.NumSockets(), len(single.Cores))
	}
}

// TestPerSocketLLC proves each socket has a private LLC: the same line
// misses once per socket, not once per machine.
func TestPerSocketLLC(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	pl := New(env, HC2Scaled(2))
	addr := pl.AllocHost(64)
	c0, c1 := pl.Cores[0], pl.Cores[8] // one per socket

	c0.access(addr, 8)
	stats := pl.CacheStats()
	if stats.L3Misses != 1 {
		t.Fatalf("first access: %d LLC misses, want 1", stats.L3Misses)
	}
	c1.access(addr, 8)
	stats = pl.CacheStats()
	if stats.L3Misses != 2 {
		t.Errorf("remote-socket access hit the other socket's LLC: %d misses, want 2", stats.L3Misses)
	}
}

// TestInterconnectTiming pins the fabric cost model: serialization on the
// sender's egress port plus one hop latency per topology hop.
func TestInterconnectTiming(t *testing.T) {
	cfg := HC2Scaled(8) // ring of 8
	env := sim.NewEnv()
	defer env.Close()
	pl := New(env, cfg)

	ser := func(bytes int) sim.Duration {
		return sim.Duration(float64(bytes) / cfg.ICLinkGBps * float64(sim.Nanosecond))
	}
	var oneHop, threeHop sim.Duration
	env.Spawn("sender", func(p *sim.Proc) {
		oneHop = pl.IC.Transfer(p, 0, 1, 64)
		threeHop = pl.IC.Transfer(p, 0, 3, 64)
		if d := pl.IC.Transfer(p, 2, 2, 64); d != 0 {
			t.Errorf("same-socket transfer cost %v, want free", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	wantOne := ser(64) + cfg.ICHopLat
	wantThree := ser(64) + 3*cfg.ICHopLat
	if oneHop != wantOne {
		t.Errorf("1-hop 64B transfer took %v, want %v", oneHop, wantOne)
	}
	if threeHop != wantThree {
		t.Errorf("3-hop 64B transfer took %v, want %v", threeHop, wantThree)
	}
	if got := pl.IC.Messages(); got != 2 {
		t.Errorf("message count %d, want 2 (same-socket sends are not messages)", got)
	}
}

// TestInterconnectQueueing: two concurrent senders on one socket serialize
// on its egress port; senders on different sockets overlap fully.
func TestInterconnectQueueing(t *testing.T) {
	cfg := HC2Scaled(4)
	env := sim.NewEnv()
	defer env.Close()
	pl := New(env, cfg)

	ser := sim.Duration(float64(4096) / cfg.ICLinkGBps * float64(sim.Nanosecond))
	var sameEnd, crossEnd sim.Time
	env.Spawn("a", func(p *sim.Proc) { pl.IC.Transfer(p, 0, 1, 4096); sameEnd = p.Now() })
	env.Spawn("b", func(p *sim.Proc) { pl.IC.Transfer(p, 0, 1, 4096); sameEnd = p.Now() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(2*ser + cfg.ICHopLat); sameEnd != want {
		t.Errorf("same-port senders finished at %v, want serialized %v", sameEnd, want)
	}

	env2 := sim.NewEnv()
	defer env2.Close()
	pl2 := New(env2, cfg)
	env2.Spawn("a", func(p *sim.Proc) { pl2.IC.Transfer(p, 0, 1, 4096); crossEnd = p.Now() })
	env2.Spawn("b", func(p *sim.Proc) { pl2.IC.Transfer(p, 2, 1, 4096); crossEnd = p.Now() })
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(ser + cfg.ICHopLat); crossEnd != want {
		t.Errorf("distinct-port senders finished at %v, want overlapped %v", crossEnd, want)
	}
}

// TestInterconnectEnergy checks the bytes x hops energy integrand and that
// the idle-power term scales with the total core count.
func TestInterconnectEnergy(t *testing.T) {
	cfg := HC2Scaled(8)
	env := sim.NewEnv()
	defer env.Close()
	pl := New(env, cfg)

	before := pl.Snapshot()
	env.Spawn("sender", func(p *sim.Proc) {
		pl.IC.Transfer(p, 0, 1, 256) // 1 hop
		pl.IC.Transfer(p, 0, 4, 128) // 4 hops on a ring of 8
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	after := pl.Snapshot()

	wantHopBytes := int64(256*1 + 128*4)
	if got := after.ICHopBytes - before.ICHopBytes; got != wantHopBytes {
		t.Errorf("hop-bytes = %d, want %d", got, wantHopBytes)
	}
	rep := pl.Energy(before, after)
	wantJ := float64(wantHopBytes) * cfg.ICPJPerByte * 1e-12
	if rep.Interconnect != wantJ {
		t.Errorf("interconnect joules = %g, want %g", rep.Interconnect, wantJ)
	}
	if rep.Total() < rep.Interconnect {
		t.Error("total energy does not include the interconnect domain")
	}
	// Idle power covers all 64 cores, not one socket's 8.
	secs := rep.Window.Seconds()
	if want := cfg.CoreIdleW * 64 * secs; rep.CPUIdle != want {
		t.Errorf("CPU idle joules = %g, want %g (64 cores)", rep.CPUIdle, want)
	}
}
