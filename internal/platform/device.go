package platform

import "bionicdb/internal/sim"

// Device is a latency + bandwidth component: a memory module, a link, or a
// storage device. It has a number of parallel channels; each transfer
// occupies one channel for bytes/perChannelBandwidth and then experiences
// the device's pipelined latency without holding the channel, so concurrent
// requesters overlap latency but share bandwidth. This is the standard
// queueing model for every box and arrow in Figure 2.
type Device struct {
	name    string
	chans   *sim.Resource
	perChan float64      // GB/s per channel
	latency sim.Duration // pipelined: experienced after the channel is released
	holdLat sim.Duration // seek-style: occupies the channel (disks, SSD)

	bytes int64
	ops   int64
}

// NewDevice creates a device with aggregate bandwidth gbps split over the
// given number of channels and a fixed pipelined latency.
func NewDevice(env *sim.Env, name string, gbps float64, latency sim.Duration, channels int) *Device {
	if channels < 1 {
		channels = 1
	}
	return &Device{
		name:    name,
		chans:   sim.NewResource(env, name, channels),
		perChan: gbps / float64(channels),
		latency: latency,
	}
}

// Transfer moves bytes through the device: it occupies one channel for the
// serialization time, then waits the pipelined latency. It returns the total
// time the calling process spent in the device (including queueing).
func (d *Device) Transfer(p *sim.Proc, bytes int) sim.Duration {
	start := p.Now()
	d.ops++
	d.bytes += int64(bytes)
	d.chans.Acquire(p)
	p.Wait(d.holdLat + transferTime(int64(bytes), d.perChan))
	d.chans.Release()
	p.Wait(d.latency)
	return p.Now().Sub(start)
}

// TransferAsync begins a transfer and fires done (with nil) when it
// completes, without blocking the caller. The spawned mover process models
// the device's own DMA engine.
func (d *Device) TransferAsync(env *sim.Env, bytes int, done *sim.Signal) {
	env.Spawn(d.name+".dma", func(p *sim.Proc) {
		d.Transfer(p, bytes)
		done.Fire(nil)
	})
}

// OnShard rebinds the device's channel resource to the given kernel shard,
// confining it there: on a concurrent environment only processes on that
// shard may Transfer through it. Call at setup time, before running.
func (d *Device) OnShard(shard int) *Device {
	d.chans.OnShard(shard)
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Latency returns the configured per-access latency (pipelined or holding).
func (d *Device) Latency() sim.Duration { return d.latency + d.holdLat }

// Bytes returns the total bytes transferred.
func (d *Device) Bytes() int64 { return d.bytes }

// Ops returns the number of transfers.
func (d *Device) Ops() int64 { return d.ops }

// BusyTime returns channel-seconds of serialization consumed.
func (d *Device) BusyTime() sim.Duration { return d.chans.BusyTime() }

// Utilization returns fraction of aggregate bandwidth consumed so far.
func (d *Device) Utilization() float64 { return d.chans.Utilization() }
