package platform

import (
	"fmt"

	"bionicdb/internal/sim"
)

// Snapshot captures the cumulative activity counters of a platform at one
// instant, so energy and utilization can be computed over a measurement
// window (Report subtracts two snapshots).
type Snapshot struct {
	At            sim.Time
	CoreBusy      sim.Duration // summed across cores
	UnitBusy      sim.Duration // summed slot-time across FPGA units
	UnitSlotCount int          // total FPGA pipeline slots configured
	DRAMBytes     int64        // host DRAM + SG-DRAM + cached-path fills
	PCIeBytes     int64
	ICHopBytes    int64 // interconnect bytes x hops (zero on one socket)
	DiskBusy      sim.Duration
	SSDBusy       sim.Duration
	ReplBytes     int64        // bytes shipped over the inter-machine link
	ReplSSDBusy   sim.Duration // replica machines' log-device busy time
}

// Snapshot reads the current cumulative counters.
func (pl *Platform) Snapshot() Snapshot {
	s := Snapshot{At: pl.Env.Now()}
	for _, c := range pl.Cores {
		s.CoreBusy += c.res.BusyTime()
	}
	for _, u := range pl.units {
		s.UnitBusy += u.slots.BusyTime()
		s.UnitSlotCount += u.nSlots
	}
	s.DRAMBytes = pl.HostDRAM.bytes + pl.SGDRAM.bytes + pl.dramLineTotal()
	s.PCIeBytes = pl.PCIe.bytes
	if pl.IC != nil {
		s.ICHopBytes = pl.IC.HopBytes()
	}
	s.DiskBusy = pl.Disk.BusyTime()
	// Confined platforms: index 0 aliases Disk and is already counted.
	if pl.dataDisks != nil {
		for _, d := range pl.dataDisks[1:] {
			s.DiskBusy += d.BusyTime()
		}
	}
	s.SSDBusy = pl.SSD.BusyTime()
	// Sharded-log devices: index 0 aliases SSD/PCIe and is already counted.
	for _, d := range pl.logSSDs[1:] {
		s.SSDBusy += d.BusyTime()
	}
	for _, d := range pl.logLinks[1:] {
		s.PCIeBytes += d.bytes
	}
	if pl.ReplLink != nil {
		s.ReplBytes = pl.ReplLink.bytes
		for _, row := range pl.replSSDs {
			for _, d := range row {
				s.ReplSSDBusy += d.BusyTime()
			}
		}
	}
	return s
}

// EnergyReport is the joules spent in a measurement window, split by
// hardware domain. The paper's metric of merit is joules/operation; divide
// Total by the operation count of the window.
type EnergyReport struct {
	Window       sim.Duration
	CPUDynamic   float64 // (active-idle) watts over busy core time
	CPUIdle      float64 // idle watts over all core-time in the window
	FPGA         float64 // unit idle floor + dynamic over busy slot time
	DRAM         float64 // per-byte access energy, all DRAM kinds
	PCIe         float64 // per-byte link energy
	Interconnect float64 // socket fabric, per byte per hop (multi-socket)
	Storage      float64 // disk + SSD active power over busy time
	Replication  float64 // inter-machine link per byte + replica log devices (replicated only)
}

// Total returns the sum over all domains, in joules.
func (r EnergyReport) Total() float64 {
	return r.CPUDynamic + r.CPUIdle + r.FPGA + r.DRAM + r.PCIe + r.Interconnect + r.Storage + r.Replication
}

// String summarizes the report in millijoules.
func (r EnergyReport) String() string {
	return fmt.Sprintf("total=%.3fmJ cpuDyn=%.3f cpuIdle=%.3f fpga=%.3f dram=%.3f pcie=%.3f ic=%.3f storage=%.3f repl=%.3f",
		r.Total()*1e3, r.CPUDynamic*1e3, r.CPUIdle*1e3, r.FPGA*1e3, r.DRAM*1e3, r.PCIe*1e3, r.Interconnect*1e3, r.Storage*1e3, r.Replication*1e3)
}

// Energy computes the joules spent between two snapshots of this platform.
// The model: cores draw CoreIdleW always and an extra (CoreActiveW -
// CoreIdleW) while busy; FPGA units draw FPGAUnitIdleW per unit always and
// an extra (FPGAUnitActiveW - FPGAUnitIdleW) prorated over busy slot time;
// DRAM and PCIe cost energy per byte moved; storage draws active watts only
// while transferring or seeking.
func (pl *Platform) Energy(from, to Snapshot) EnergyReport {
	cfg := pl.Cfg
	window := to.At.Sub(from.At)
	secs := window.Seconds()

	r := EnergyReport{Window: window}
	coreBusy := (to.CoreBusy - from.CoreBusy).Seconds()
	r.CPUDynamic = (cfg.CoreActiveW - cfg.CoreIdleW) * coreBusy
	r.CPUIdle = cfg.CoreIdleW * float64(len(pl.Cores)) * secs

	nUnits := len(pl.units)
	unitBusy := (to.UnitBusy - from.UnitBusy).Seconds()
	slots := to.UnitSlotCount
	if slots > 0 {
		// Prorate dynamic power by slot occupancy so a unit with a deep
		// pipeline is not charged more than one unit's active power.
		perSlotDyn := (cfg.FPGAUnitActiveW - cfg.FPGAUnitIdleW) / float64(slots) * float64(nUnits)
		r.FPGA = perSlotDyn * unitBusy
	}
	r.FPGA += cfg.FPGAUnitIdleW * float64(nUnits) * secs

	r.DRAM = float64(to.DRAMBytes-from.DRAMBytes) * cfg.DRAMPJPerByte * 1e-12
	r.PCIe = float64(to.PCIeBytes-from.PCIeBytes) * cfg.PCIePJPerByte * 1e-12
	r.Interconnect = float64(to.ICHopBytes-from.ICHopBytes) * cfg.ICPJPerByte * 1e-12
	r.Storage = cfg.DiskActiveW*(to.DiskBusy-from.DiskBusy).Seconds() +
		cfg.SSDActiveW*(to.SSDBusy-from.SSDBusy).Seconds()
	r.Replication = float64(to.ReplBytes-from.ReplBytes)*cfg.ReplPJPerByte*1e-12 +
		cfg.SSDActiveW*(to.ReplSSDBusy-from.ReplSSDBusy).Seconds()
	return r
}
