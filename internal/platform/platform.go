package platform

import (
	"fmt"

	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Platform is one instantiated machine: one or more CPU sockets — each a
// set of cores with private L1/L2 and a socket-shared LLC — joined by a
// modeled interconnect when there is more than one, plus the five Figure 2
// devices and any number of FPGA hardware units. All simulated state lives
// in one Env; a Platform is single-run and never shared across
// environments.
type Platform struct {
	Env *sim.Env
	Cfg *Config

	// Cores is the flat list across all sockets: socket 0's cores first,
	// then socket 1's, and so on. Core i lives on socket i / Cfg.Cores.
	Cores   []*Core
	Sockets []*Socket
	// IC is the socket interconnect; nil on a single-socket platform, so
	// the one-socket machine pays exactly the paper's costs and nothing
	// more.
	IC *Interconnect

	// The Figure 2 components (the FPGA complex attaches to socket 0).
	HostDRAM *Device // CPU-attached DDR3 (uncached/DMA path)
	SGDRAM   *Device // FPGA-attached scatter-gather DDR3
	PCIe     *Device // host<->FPGA link (latency is one-way)
	Disk     *Device // SAS array behind the FPGA
	SSD      *Device // SSD behind the CPU (log device)

	// Sharded-log devices (Cfg.ShardedLog() only): one log SSD and one
	// FPGA log link per socket, indexed by socket. Entry 0 aliases SSD and
	// PCIe — socket 0 keeps exactly the paper's devices — so a non-sharded
	// machine has len-1 slices and pays for nothing new.
	logSSDs  []*Device
	logLinks []*Device

	// Replication devices (Cfg.Replicated() only): the primary's one egress
	// NIC toward the replica machines, and each replica machine's log
	// devices, indexed [replica][shard]. Both stay nil with replication off,
	// so an unreplicated machine builds and pays for nothing new.
	ReplLink *Device
	replSSDs [][]*Device

	units []*HWUnit

	// Per-socket data disks (Confine only): socket 0 keeps the Figure 2
	// SAS array, every other socket gets its own so buffer-pool traffic
	// stays shard-local. nil on an unconfined platform.
	dataDisks []*Device
	confined  bool

	hostBrk  uint64
	sockBrks []uint64 // per-socket host arenas (AllocHostOn)
	fpgaBrk  uint64
}

// Socket is one CPU package: a block of cores sharing one LLC. Instruction
// and DRAM-fill counters live here, not on the platform, so cores on
// different kernel shards never contend on one counter; platform-wide reads
// sum the sockets.
type Socket struct {
	ID    int
	Cores []*Core
	l3    *cacheLevel

	instructions  int64
	dramLineBytes int64 // cached-path DRAM traffic (LLC miss fills)
}

// Address-space bases; the top bit distinguishes FPGA-side memory. Each
// socket additionally owns a private host arena of hostArena bytes starting
// at hostBase + (socket+1)*hostArena, so runtime allocations from confined
// engine code (B-tree page addresses on splits) never touch a shared break.
const (
	hostBase  = uint64(0x0000_1000_0000_0000)
	hostArena = uint64(1) << 42
	fpgaBase  = uint64(0x8000_0000_0000_0000)
)

// New builds a platform on env from cfg. cfg must not be modified afterward.
func New(env *sim.Env, cfg *Config) *Platform {
	pl := &Platform{
		Env: env,
		Cfg: cfg,

		HostDRAM: NewDevice(env, "host-dram", cfg.HostDRAMBWGBps, cfg.HostDRAMLat, cfg.HostDRAMChans),
		SGDRAM:   NewDevice(env, "sg-dram", cfg.SGDRAMBWGBps, cfg.SGDRAMLat, cfg.SGDRAMChans),
		PCIe:     NewDevice(env, "pcie", cfg.PCIeBWGBps, cfg.PCIeLat, 1),
		Disk:     newHoldingDevice(env, "sas-disk", cfg.DiskBWGBps, cfg.DiskLat, cfg.DiskChans),
		SSD:      newHoldingDevice(env, "ssd", cfg.SSDBWGBps, cfg.SSDLat, cfg.SSDChans),

		hostBrk: hostBase,
		fpgaBrk: fpgaBase,
	}
	nSock := cfg.NumSockets()
	for s := 0; s < nSock; s++ {
		sock := &Socket{ID: s, l3: newCacheLevel(cfg.L3Size, cfg.L3Assoc, cfg.LineSize)}
		for c := 0; c < cfg.Cores; c++ {
			i := len(pl.Cores)
			core := &Core{
				ID:   i,
				plat: pl,
				sock: sock,
				res:  sim.NewResource(env, fmt.Sprintf("core%d", i), 1),
				l1:   newCacheLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
				l2:   newCacheLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
			}
			sock.Cores = append(sock.Cores, core)
			pl.Cores = append(pl.Cores, core)
		}
		pl.Sockets = append(pl.Sockets, sock)
	}
	if nSock > 1 {
		pl.IC = newInterconnect(env, cfg, nSock)
	}
	pl.logSSDs = []*Device{pl.SSD}
	pl.logLinks = []*Device{pl.PCIe}
	if cfg.ShardedLog() {
		for s := 1; s < nSock; s++ {
			pl.logSSDs = append(pl.logSSDs,
				newHoldingDevice(env, fmt.Sprintf("ssd%d", s), cfg.SSDBWGBps, cfg.SSDLat, cfg.SSDChans))
			pl.logLinks = append(pl.logLinks,
				NewDevice(env, fmt.Sprintf("log-link%d", s), cfg.PCIeBWGBps, cfg.PCIeLat, 1))
		}
	}
	if cfg.Replicated() {
		pl.ReplLink = NewDevice(env, "repl-link", cfg.ReplLinkGBps, cfg.ReplLinkLat, 1)
		for r := 0; r < cfg.Replicas; r++ {
			row := make([]*Device, len(pl.logSSDs))
			for s := range row {
				row[s] = newHoldingDevice(env, fmt.Sprintf("repl%d-ssd%d", r, s),
					cfg.SSDBWGBps, cfg.SSDLat, cfg.SSDChans)
			}
			pl.replSSDs = append(pl.replSSDs, row)
		}
	}
	return pl
}

// Replicas returns how many replica machines the platform ships its log to
// (zero with replication off).
func (pl *Platform) Replicas() int { return len(pl.replSSDs) }

// ReplSSD returns the given replica machine's log device for the given
// shard. Replica machines mirror the primary's log-device layout: one
// device per shard.
func (pl *Platform) ReplSSD(replica, shard int) *Device { return pl.replSSDs[replica][shard] }

// LogShards returns how many per-socket log shards the machine carries: the
// socket count under Cfg.ShardedLog(), otherwise 1 (the single SSD).
func (pl *Platform) LogShards() int { return len(pl.logSSDs) }

// LogSSD returns the log device of the given socket. On a non-sharded
// machine every socket shares the one Figure 2 SSD.
func (pl *Platform) LogSSD(socket int) *Device {
	if len(pl.logSSDs) == 1 {
		return pl.SSD
	}
	return pl.logSSDs[socket]
}

// LogLink returns the host<->FPGA link the given socket's hardware log
// shard crosses. Socket 0 (and every socket of a non-sharded machine) uses
// the Figure 2 PCIe link; sharded sockets get their own.
func (pl *Platform) LogLink(socket int) *Device {
	if len(pl.logLinks) == 1 {
		return pl.PCIe
	}
	return pl.logLinks[socket]
}

// NumSockets returns the socket count of the built machine.
func (pl *Platform) NumSockets() int { return len(pl.Sockets) }

// KernelShards reports the machine's parallel event-kernel shape: one shard
// per socket, with the interconnect per-hop latency as the conservative
// lookahead — no cross-socket interaction can land sooner than one hop, so
// a shard may safely run that far ahead of its neighbors. A single-socket
// machine has no interconnect and no parallel shape: (1, 0).
func (pl *Platform) KernelShards() (shards int, lookahead sim.Duration) {
	if pl.IC == nil {
		return 1, 0
	}
	return pl.NumSockets(), pl.Cfg.ICHopLat
}

// ShardOf maps a socket to its event-kernel shard. The mapping is the
// identity — shard i simulates socket i — kept behind a name so code
// confining work to shards never hard-codes the layout.
func (pl *Platform) ShardOf(socket int) int { return socket }

// ShardOfCore maps a core to the event-kernel shard of its socket.
func (pl *Platform) ShardOfCore(c *Core) int { return pl.ShardOf(c.sock.ID) }

// newHoldingDevice builds a Device whose latency occupies the channel
// (seek-style devices), by folding the latency into per-transfer hold time.
func newHoldingDevice(env *sim.Env, name string, gbps float64, latency sim.Duration, channels int) *Device {
	d := NewDevice(env, name, gbps, 0, channels)
	d.holdLat = latency
	return d
}

// AllocHost reserves size bytes of host address space (timing-model
// addresses only; data lives in Go structures).
func (pl *Platform) AllocHost(size int) uint64 {
	a := pl.hostBrk
	pl.hostBrk += uint64(size+63) &^ 63
	if pl.hostBrk >= hostBase+hostArena {
		panic("platform: shared host break overflowed into the socket arenas")
	}
	return a
}

// AllocHostOn reserves size bytes from the given socket's private host
// arena. Confined engine code must allocate here, never through the shared
// break: arena allocation is a plain per-socket bump touched only by that
// socket's shard, so concurrent shards never race on an allocator.
func (pl *Platform) AllocHostOn(socket, size int) uint64 {
	if pl.sockBrks == nil {
		pl.sockBrks = make([]uint64, pl.NumSockets())
		for s := range pl.sockBrks {
			pl.sockBrks[s] = hostBase + uint64(s+1)*hostArena
		}
	}
	a := pl.sockBrks[socket]
	pl.sockBrks[socket] += uint64(size+63) &^ 63
	if pl.sockBrks[socket] >= hostBase+uint64(socket+2)*hostArena {
		panic("platform: socket host arena exhausted")
	}
	return a
}

// AllocFPGA reserves size bytes of FPGA-side (SG-DRAM) address space.
func (pl *Platform) AllocFPGA(size int) uint64 {
	a := pl.fpgaBrk
	pl.fpgaBrk += uint64(size+63) &^ 63
	return a
}

// IsFPGAAddr reports whether addr is in FPGA-side memory.
func IsFPGAAddr(addr uint64) bool { return addr >= fpgaBase }

// Instructions returns total instructions retired across all cores.
func (pl *Platform) Instructions() int64 {
	var n int64
	for _, sock := range pl.Sockets {
		n += sock.instructions
	}
	return n
}

// dramLineTotal sums cached-path DRAM fill traffic across sockets.
func (pl *Platform) dramLineTotal() int64 {
	var n int64
	for _, sock := range pl.Sockets {
		n += sock.dramLineBytes
	}
	return n
}

// Confine homes every per-socket platform structure on its socket's kernel
// shard: it shapes the environment (sim.Env.Shape — windows still execute
// inline until the run enables concurrency), rebinds each core's resource
// and each socket's log device onto its shard, gives every socket its own
// data disk (socket 0 keeps the Figure 2 SAS array) and puts the
// interconnect ports on their owning shards. Engines that distribute
// themselves over the kernel call this once at construction, before
// spawning any confined process. Single-socket machines are a no-op.
// Confine is idempotent.
func (pl *Platform) Confine() {
	if pl.confined {
		return
	}
	shards, la := pl.KernelShards()
	if shards <= 1 {
		return
	}
	pl.Env.Shape(shards, la)
	pl.confined = true
	if pl.sockBrks == nil {
		pl.AllocHostOn(0, 0)
	}
	cfg := pl.Cfg
	pl.dataDisks = []*Device{pl.Disk}
	for s := 1; s < pl.NumSockets(); s++ {
		pl.dataDisks = append(pl.dataDisks,
			newHoldingDevice(pl.Env, fmt.Sprintf("sas-disk%d", s), cfg.DiskBWGBps, cfg.DiskLat, cfg.DiskChans))
	}
	for s, d := range pl.dataDisks {
		d.OnShard(pl.ShardOf(s))
	}
	for s := range pl.logSSDs {
		pl.logSSDs[s].OnShard(pl.ShardOf(s))
	}
	for _, sock := range pl.Sockets {
		sh := pl.ShardOf(sock.ID)
		for _, c := range sock.Cores {
			c.res.OnShard(sh)
		}
	}
	if pl.IC != nil {
		pl.IC.confine(pl)
	}
}

// Confined reports whether Confine has homed the platform's per-socket
// structures on their kernel shards.
func (pl *Platform) Confined() bool { return pl.confined }

// DataDisk returns the data disk buffer-pool traffic for the given socket
// goes to: the per-socket disk on a confined platform, the shared Figure 2
// SAS array otherwise.
func (pl *Platform) DataDisk(socket int) *Device {
	if pl.dataDisks == nil {
		return pl.Disk
	}
	return pl.dataDisks[socket]
}

// CacheStats aggregates hit/miss counts across the hierarchy (LLC counts
// sum over all sockets' LLCs).
func (pl *Platform) CacheStats() CacheStats {
	var s CacheStats
	for _, c := range pl.Cores {
		s.L1Hits += c.l1.hits
		s.L1Misses += c.l1.misses
		s.L2Hits += c.l2.hits
		s.L2Misses += c.l2.misses
	}
	for _, sock := range pl.Sockets {
		s.L3Hits += sock.l3.hits
		s.L3Misses += sock.l3.misses
	}
	return s
}

// SocketCounters returns one socket's cumulative hardware counters:
// instructions retired, cached-path DRAM fill bytes, and LLC hits/misses.
// All four live on the Socket, so on a confined platform they are owned by
// that socket's kernel shard — the telemetry sampler reads them from there.
func (pl *Platform) SocketCounters(socket int) (instructions, dramBytes, llcHits, llcMisses int64) {
	sock := pl.Sockets[socket]
	return sock.instructions, sock.dramLineBytes, sock.l3.hits, sock.l3.misses
}

// EgressBusy returns the cumulative serialization busy time of one socket's
// interconnect egress port, or 0 on a single-socket machine (no
// interconnect is built).
func (pl *Platform) EgressBusy(socket int) sim.Duration {
	if pl.IC == nil {
		return 0
	}
	return pl.IC.ports[socket].BusyTime()
}

// Core is one general-purpose CPU core: a capacity-1 resource plus private
// L1/L2 caches, belonging to one socket. Engine code does not use Core
// directly; it charges through a Task bound to a core.
type Core struct {
	ID   int
	plat *Platform
	sock *Socket
	res  *sim.Resource
	l1   *cacheLevel
	l2   *cacheLevel
}

// SocketID returns the socket this core belongs to.
func (c *Core) SocketID() int { return c.sock.ID }

// BusyTime returns how long the core has been executing charged work.
func (c *Core) BusyTime() sim.Duration { return c.res.BusyTime() }

// Utilization returns the busy fraction of this core so far.
func (c *Core) Utilization() float64 { return c.res.Utilization() }

// access charges one memory reference through the cache hierarchy and
// returns its latency. It also accounts DRAM fill traffic for the energy
// model.
func (c *Core) access(addr uint64, size int) sim.Duration {
	cfg := c.plat.Cfg
	var d sim.Duration
	first := addr >> c.l1.lineShift
	last := (addr + uint64(size) - 1) >> c.l1.lineShift
	if size <= 0 {
		last = first
	}
	for line := first; line <= last; line++ {
		switch {
		case c.l1.access(line):
			d += cfg.L1Lat
		case c.l2.access(line):
			d += cfg.L2Lat
		case c.sock.l3.access(line):
			d += cfg.L3Lat
		default:
			d += cfg.DRAMMissLat
			c.sock.dramLineBytes += int64(cfg.LineSize)
		}
	}
	return d
}

// Task is an execution context bound to a core: the handle engine code uses
// to charge instructions, memory references and raw time, attributed to a
// Figure 3 component. Charges accumulate locally and are applied to the
// core when Flush is called (or when the accumulated burst exceeds
// maxBurst); engine code must Flush before blocking on queues, locks or
// hardware completions so simulated time stays causal.
type Task struct {
	P    *sim.Proc
	BD   *stats.Breakdown
	core *Core

	pending sim.Duration
}

// maxBurst caps how much charged time may accumulate before the task is
// forced onto its core; it approximates an OS scheduling quantum and keeps
// core contention realistic without per-charge context switches.
const maxBurst = 2 * sim.Microsecond

// NewTask binds process p to core and attributes its charges to bd.
func (pl *Platform) NewTask(p *sim.Proc, core *Core, bd *stats.Breakdown) *Task {
	return &Task{P: p, BD: bd, core: core}
}

// Core returns the core this task charges.
func (t *Task) Core() *Core { return t.core }

// Exec charges n instructions of CPU work to component comp.
func (t *Task) Exec(comp stats.Component, n int) {
	d := t.core.plat.Cfg.InstrTime(n)
	t.core.sock.instructions += int64(n)
	t.charge(comp, d)
}

// Access charges one memory reference of size bytes at addr through the
// core's cache hierarchy, attributed to comp.
func (t *Task) Access(comp stats.Component, addr uint64, size int) {
	t.charge(comp, t.core.access(addr, size))
}

// ChargeTime charges a raw duration of CPU-held time to comp (for modelled
// costs that are neither instructions nor cache accesses).
func (t *Task) ChargeTime(comp stats.Component, d sim.Duration) { t.charge(comp, d) }

func (t *Task) charge(comp stats.Component, d sim.Duration) {
	if t.BD != nil {
		t.BD.Add(comp, d)
	}
	t.pending += d
	if t.pending >= maxBurst {
		t.Flush()
	}
}

// Flush applies accumulated charges: the task occupies its core for the
// pending duration. Call before any blocking operation and at action
// boundaries.
func (t *Task) Flush() {
	if t.pending == 0 {
		return
	}
	d := t.pending
	t.pending = 0
	t.core.res.Acquire(t.P)
	t.P.Wait(d)
	t.core.res.Release()
}

// Block flushes pending work and then waits d off-core (an asynchronous
// wait: the core is free for other tasks).
func (t *Task) Block(d sim.Duration) {
	t.Flush()
	t.P.Wait(d)
}

// HWUnit is an FPGA engine: a pipeline with a fixed number of concurrent
// slots running at the fabric clock. Units register with the platform for
// energy accounting.
type HWUnit struct {
	Name   string
	plat   *Platform
	slots  *sim.Resource
	nSlots int
	ops    int64
}

// NewHWUnit configures an FPGA engine with the given pipeline parallelism.
func (pl *Platform) NewHWUnit(name string, slots int) *HWUnit {
	u := &HWUnit{
		Name:   name,
		plat:   pl,
		slots:  sim.NewResource(pl.Env, name, slots),
		nSlots: slots,
	}
	pl.units = append(pl.units, u)
	return u
}

// Work occupies one pipeline slot for the given number of fabric cycles.
func (u *HWUnit) Work(p *sim.Proc, cycles int) {
	u.ops++
	u.slots.Use(p, sim.Duration(cycles)*u.plat.Cfg.FPGACycle())
}

// Acquire claims a pipeline slot (for multi-step occupancy); pair with Release.
func (u *HWUnit) Acquire(p *sim.Proc) { u.ops++; u.slots.Acquire(p) }

// Release frees a pipeline slot.
func (u *HWUnit) Release() { u.slots.Release() }

// Ops returns the number of operations accepted by the unit.
func (u *HWUnit) Ops() int64 { return u.ops }

// BusyTime returns slot-time consumed.
func (u *HWUnit) BusyTime() sim.Duration { return u.slots.BusyTime() }

// Utilization returns the busy fraction of the unit's pipeline.
func (u *HWUnit) Utilization() float64 { return u.slots.Utilization() }
