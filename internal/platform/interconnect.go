package platform

import (
	"fmt"

	"bionicdb/internal/sim"
)

// Topology is how the sockets of a multi-socket platform are wired. It
// determines the hop count between any socket pair, and with it the
// latency and energy of every cross-socket message.
type Topology int

const (
	// TopoRing is a bidirectional ring: messages take the shorter way
	// around, so the worst pair of an n-socket machine is n/2 hops. This
	// is the default — large 2012-era multi-socket machines (and the
	// QPI glueless 8-socket designs) are rings or twisted rings.
	TopoRing Topology = iota
	// TopoFull is a full crossbar: every socket pair is one hop. Real up
	// to ~4 sockets, where every socket has a direct link to every other.
	TopoFull
	// TopoMesh is a 2D mesh on a near-square grid: hop count is the
	// Manhattan distance between the sockets' grid positions.
	TopoMesh
)

// String names the topology for tables and config dumps.
func (t Topology) String() string {
	switch t {
	case TopoRing:
		return "ring"
	case TopoFull:
		return "full"
	case TopoMesh:
		return "mesh"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// Hops returns the number of interconnect hops a message from socket a to
// socket b crosses on an n-socket machine (0 when a == b).
func (t Topology) Hops(a, b, n int) int {
	if a == b {
		return 0
	}
	switch t {
	case TopoFull:
		return 1
	case TopoMesh:
		w := meshWidth(n)
		dx := a%w - b%w
		if dx < 0 {
			dx = -dx
		}
		dy := a/w - b/w
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	default: // TopoRing
		d := a - b
		if d < 0 {
			d = -d
		}
		if rest := n - d; rest < d {
			d = rest
		}
		return d
	}
}

// meshWidth returns the row width of the near-square grid n sockets are
// laid out on (the largest w with w*w <= n).
func meshWidth(n int) int {
	w := 1
	for (w+1)*(w+1) <= n {
		w++
	}
	return w
}

// Diameter returns the worst-case hop count on an n-socket machine.
func (t Topology) Diameter(n int) int {
	max := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if h := t.Hops(a, b, n); h > max {
				max = h
			}
		}
	}
	return max
}

// Interconnect is the modeled socket-to-socket fabric: one egress port per
// socket (a bandwidth channel) plus a pipelined per-hop latency. Senders
// serialize on their own socket's port and then experience hop latency
// without holding it, so concurrent senders from different sockets overlap
// fully and senders on one socket share its egress bandwidth — the same
// queueing model as every other Figure 2 device. Energy is charged per
// byte per hop.
type Interconnect struct {
	Topo  Topology
	plat  *Platform
	ports []*Device

	msgs     int64
	hopBytes int64 // sum over messages of bytes * hops, for energy
	hopLat   sim.Duration

	// Per-source-socket counters (confined platforms): each socket's shard
	// bumps only its own slot, so concurrent shards never contend; readers
	// sum. nil until confine.
	portMsgs     []int64
	portHopBytes []int64
}

// newInterconnect wires n socket ports. Only built for n > 1; one-socket
// platforms have no interconnect (Platform.IC is nil).
func newInterconnect(env *sim.Env, cfg *Config, n int) *Interconnect {
	ic := &Interconnect{Topo: cfg.ICTopology, hopLat: cfg.ICHopLat}
	for i := 0; i < n; i++ {
		ic.ports = append(ic.ports, NewDevice(env, fmt.Sprintf("ic-port%d", i), cfg.ICLinkGBps, 0, 1))
	}
	return ic
}

// Transfer sends a message of the given size from socket `from` to socket
// `to`: serialization on the sender's egress port, then one pipelined hop
// latency per topology hop. Same-socket sends are free. It returns the
// time the calling process spent in the fabric.
func (ic *Interconnect) Transfer(p *sim.Proc, from, to, bytes int) sim.Duration {
	hops := ic.Topo.Hops(from, to, len(ic.ports))
	if hops == 0 {
		return 0
	}
	ic.msgs++
	ic.hopBytes += int64(bytes) * int64(hops)
	start := p.Now()
	ic.ports[from].Transfer(p, bytes) // ports carry zero pipelined latency
	p.Wait(sim.Duration(hops) * ic.hopLat)
	return p.Now().Sub(start)
}

// confine homes each egress port on its socket's kernel shard and sizes the
// per-source counter arrays. Called from Platform.Confine only.
func (ic *Interconnect) confine(pl *Platform) {
	for s, port := range ic.ports {
		port.OnShard(pl.ShardOf(s))
	}
	ic.portMsgs = make([]int64, len(ic.ports))
	ic.portHopBytes = make([]int64, len(ic.ports))
}

// Send is the posted-message fabric edge for confined engines: the sender
// serializes the message on its own socket's egress port (which Confine
// homed on the sender's shard) and Send returns the simulated arrival time
// at the destination — port release plus one pipelined hop latency per
// topology hop — without blocking the sender through the hop latency. The
// caller delivers the message with Proc.CrossAt(targetShard, arrival, ...);
// arrival is always at least one hop (= the kernel lookahead) ahead, so the
// post is legal by construction. Same-socket sends return the current time.
func (ic *Interconnect) Send(p *sim.Proc, from, to, bytes int) sim.Time {
	hops := ic.Topo.Hops(from, to, len(ic.ports))
	if hops == 0 {
		return p.Now()
	}
	ic.portMsgs[from]++
	ic.portHopBytes[from] += int64(bytes) * int64(hops)
	ic.ports[from].Transfer(p, bytes) // ports carry zero pipelined latency
	return p.Now().Add(sim.Duration(hops) * ic.hopLat)
}

// NoteSend accounts a message on the fabric counters without modeling port
// serialization — for acknowledgement hops issued from scheduler callbacks,
// which have no process to serialize with. from must be the socket whose
// shard the caller is executing on.
func (ic *Interconnect) NoteSend(from, to, bytes int) {
	hops := ic.Topo.Hops(from, to, len(ic.ports))
	if hops == 0 {
		return
	}
	ic.portMsgs[from]++
	ic.portHopBytes[from] += int64(bytes) * int64(hops)
}

// Messages returns how many cross-socket messages have been sent.
func (ic *Interconnect) Messages() int64 {
	n := ic.msgs
	for _, m := range ic.portMsgs {
		n += m
	}
	return n
}

// HopBytes returns cumulative bytes x hops moved (the energy integrand).
func (ic *Interconnect) HopBytes() int64 {
	n := ic.hopBytes
	for _, b := range ic.portHopBytes {
		n += b
	}
	return n
}

// BusyTime returns summed egress-port serialization time.
func (ic *Interconnect) BusyTime() sim.Duration {
	var d sim.Duration
	for _, port := range ic.ports {
		d += port.BusyTime()
	}
	return d
}

// PortUtilization returns the busy fraction of one socket's egress port.
func (ic *Interconnect) PortUtilization(socket int) float64 {
	return ic.ports[socket].Utilization()
}
