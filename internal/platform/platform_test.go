package platform

import (
	"testing"

	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func newTestPlatform() (*sim.Env, *Platform) {
	env := sim.NewEnv()
	return env, New(env, HC2())
}

func TestConfigCycleTimes(t *testing.T) {
	cfg := HC2()
	if ct := cfg.CycleTime(); ct != 400*sim.Picosecond {
		t.Errorf("2.5GHz cycle = %v, want 400ps", ct)
	}
	if fc := cfg.FPGACycle(); fc < 6600 || fc > 6700 {
		t.Errorf("150MHz FPGA cycle = %dps, want ~6667ps", fc)
	}
	if it := cfg.InstrTime(100); it != 40*sim.Nanosecond {
		t.Errorf("100 instr = %v, want 40ns", it)
	}
}

func TestTransferTime(t *testing.T) {
	// 4 GB/s: 4096 bytes should take ~1.024us... 4096B / 4B-per-ns = 1024ns.
	if d := transferTime(4096, 4); d != 1024*sim.Nanosecond {
		t.Errorf("4KB over 4GB/s = %v, want 1.024us", d)
	}
	if d := transferTime(0, 4); d != 0 {
		t.Errorf("0 bytes = %v", d)
	}
}

func TestCacheLevelHitMiss(t *testing.T) {
	c := newCacheLevel(32<<10, 8, 64) // 64 sets
	if c.access(1) {
		t.Fatal("cold access hit")
	}
	if !c.access(1) {
		t.Fatal("warm access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLevelLRUEviction(t *testing.T) {
	c := newCacheLevel(8*64, 8, 64) // one set, 8 ways
	for i := uint64(0); i < 8; i++ {
		c.access(i)
	}
	c.access(0)  // touch 0, making 1 the LRU
	c.access(99) // evicts 1
	if !c.access(0) {
		t.Error("recently used line evicted")
	}
	if c.access(1) {
		t.Error("LRU line not evicted")
	}
}

func TestCacheSetConflicts(t *testing.T) {
	c := newCacheLevel(32<<10, 8, 64) // 64 sets, 8 ways
	// 9 lines mapping to set 0: line addresses multiples of 64.
	for i := uint64(0); i < 9; i++ {
		c.access(i * 64)
	}
	if c.access(0) {
		t.Error("conflict-evicted line still present")
	}
	if !c.access(8 * 64) {
		t.Error("most recent conflicting line missing")
	}
}

func TestDeviceBandwidthAndLatency(t *testing.T) {
	env, pl := newTestPlatform()
	var took sim.Duration
	env.Spawn("xfer", func(p *sim.Proc) {
		took = pl.PCIe.Transfer(p, 4096)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1024*sim.Nanosecond + 1*sim.Microsecond // serialization + latency
	if took != want {
		t.Errorf("PCIe 4KB transfer = %v, want %v", took, want)
	}
	if pl.PCIe.Bytes() != 4096 || pl.PCIe.Ops() != 1 {
		t.Errorf("bytes=%d ops=%d", pl.PCIe.Bytes(), pl.PCIe.Ops())
	}
}

func TestDevicePipelinedLatencyOverlaps(t *testing.T) {
	env, pl := newTestPlatform()
	// 16 concurrent 8-byte SG-DRAM reads should take ~one latency, not 16.
	for i := 0; i < 16; i++ {
		env.Spawn("rd", func(p *sim.Proc) {
			pl.SGDRAM.Transfer(p, 8)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() > sim.Time(500*sim.Nanosecond) {
		t.Errorf("16 parallel SG reads took %v, want ~400ns", env.Now())
	}
}

func TestHoldingDeviceSerializes(t *testing.T) {
	env, pl := newTestPlatform()
	// Two 0-byte SSD ops on 1 channel: 20us each, serialized = 40us.
	for i := 0; i < 2; i++ {
		env.Spawn("wr", func(p *sim.Proc) {
			pl.SSD.Transfer(p, 0)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != sim.Time(40*sim.Microsecond) {
		t.Errorf("2 serialized SSD ops finished at %v, want 40us", env.Now())
	}
}

func TestDiskSeekDominates(t *testing.T) {
	env, pl := newTestPlatform()
	var took sim.Duration
	env.Spawn("rd", func(p *sim.Proc) {
		took = pl.Disk.Transfer(p, 8192)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took < 5*sim.Millisecond || took > 6*sim.Millisecond {
		t.Errorf("disk page read = %v, want ~5ms", took)
	}
}

func TestTaskExecChargesCoreAndBreakdown(t *testing.T) {
	env, pl := newTestPlatform()
	var bd stats.Breakdown
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &bd)
		task.Exec(stats.CompBtree, 1000)
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 400 * sim.Nanosecond // 1000 instr × 400ps
	if got := bd.Get(stats.CompBtree); got != want {
		t.Errorf("breakdown charge %v, want %v", got, want)
	}
	if got := pl.Cores[0].BusyTime(); got != want {
		t.Errorf("core busy %v, want %v", got, want)
	}
	if pl.Instructions() != 1000 {
		t.Errorf("instructions = %d", pl.Instructions())
	}
}

func TestTaskAccessWarmVsCold(t *testing.T) {
	env, pl := newTestPlatform()
	var bd stats.Breakdown
	var coldTime, warmTime sim.Duration
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &bd)
		addr := pl.AllocHost(64)
		task.Access(stats.CompOther, addr, 8)
		coldTime = bd.Get(stats.CompOther)
		task.Access(stats.CompOther, addr, 8)
		warmTime = bd.Get(stats.CompOther) - coldTime
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if coldTime != pl.Cfg.DRAMMissLat {
		t.Errorf("cold access %v, want %v", coldTime, pl.Cfg.DRAMMissLat)
	}
	if warmTime != pl.Cfg.L1Lat {
		t.Errorf("warm access %v, want %v", warmTime, pl.Cfg.L1Lat)
	}
}

func TestTaskAccessSpansLines(t *testing.T) {
	env, pl := newTestPlatform()
	var bd stats.Breakdown
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &bd)
		addr := pl.AllocHost(256)
		task.Access(stats.CompOther, addr, 128) // exactly 2 lines
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := bd.Get(stats.CompOther); got != 2*pl.Cfg.DRAMMissLat {
		t.Errorf("2-line access charged %v, want %v", got, 2*pl.Cfg.DRAMMissLat)
	}
}

func TestTaskFlushBurstCap(t *testing.T) {
	env, pl := newTestPlatform()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], nil)
		// 10us of work must flush at least at the burst cap without an
		// explicit Flush in between.
		for i := 0; i < 10; i++ {
			task.Exec(stats.CompOther, 2500) // 1us each
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := pl.Cores[0].BusyTime(); got != 10*sim.Microsecond {
		t.Errorf("core busy %v, want 10us", got)
	}
}

func TestTwoTasksShareCore(t *testing.T) {
	env, pl := newTestPlatform()
	for i := 0; i < 2; i++ {
		env.Spawn("w", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Cores[0], nil)
			task.Exec(stats.CompOther, 2500) // 1us
			task.Flush()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != sim.Time(2*sim.Microsecond) {
		t.Errorf("2 tasks on one core finished at %v, want 2us", env.Now())
	}
}

func TestHWUnitPipelineParallelism(t *testing.T) {
	env, pl := newTestPlatform()
	unit := pl.NewHWUnit("probe", 4)
	for i := 0; i < 8; i++ {
		env.Spawn("op", func(p *sim.Proc) {
			unit.Work(p, 150) // 1us at 150MHz
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 ops, 4 slots, ~1us each → ~2us (FPGA cycle rounds to whole ps).
	if env.Now() < sim.Time(1990*sim.Nanosecond) || env.Now() > sim.Time(2010*sim.Nanosecond) {
		t.Errorf("8 ops on 4 slots finished at %v, want ~2us", env.Now())
	}
	if unit.Ops() != 8 {
		t.Errorf("ops=%d", unit.Ops())
	}
}

func TestAllocSeparatesDomains(t *testing.T) {
	_, pl := newTestPlatform()
	h := pl.AllocHost(100)
	f := pl.AllocFPGA(100)
	if IsFPGAAddr(h) {
		t.Error("host address classified as FPGA")
	}
	if !IsFPGAAddr(f) {
		t.Error("FPGA address classified as host")
	}
	h2 := pl.AllocHost(1)
	if h2 <= h {
		t.Error("allocator did not advance")
	}
	if h2%64 != h%64 {
		t.Error("allocations not 64-byte aligned")
	}
}

func TestEnergyReportWindow(t *testing.T) {
	env, pl := newTestPlatform()
	s0 := pl.Snapshot()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], nil)
		task.Exec(stats.CompOther, 2500000) // 1ms of CPU
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	r := pl.Energy(s0, pl.Snapshot())
	if r.Window != sim.Duration(1*sim.Millisecond) {
		t.Fatalf("window %v", r.Window)
	}
	// 1ms busy at (10-2)W dynamic = 8mJ; idle 8 cores × 2W × 1ms = 16mJ.
	if r.CPUDynamic < 7.9e-3 || r.CPUDynamic > 8.1e-3 {
		t.Errorf("CPUDynamic = %v J, want ~8e-3", r.CPUDynamic)
	}
	if r.CPUIdle < 15.9e-3 || r.CPUIdle > 16.1e-3 {
		t.Errorf("CPUIdle = %v J, want ~16e-3", r.CPUIdle)
	}
	if r.Total() <= 0 {
		t.Error("empty total")
	}
}

func TestEnergyDRAMAndPCIeBytes(t *testing.T) {
	env, pl := newTestPlatform()
	s0 := pl.Snapshot()
	env.Spawn("w", func(p *sim.Proc) {
		pl.PCIe.Transfer(p, 1<<20)
		pl.SGDRAM.Transfer(p, 1<<20)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	r := pl.Energy(s0, pl.Snapshot())
	wantPCIe := float64(1<<20) * pl.Cfg.PCIePJPerByte * 1e-12
	if r.PCIe < wantPCIe*0.99 || r.PCIe > wantPCIe*1.01 {
		t.Errorf("PCIe energy %v, want %v", r.PCIe, wantPCIe)
	}
	wantDRAM := float64(1<<20) * pl.Cfg.DRAMPJPerByte * 1e-12
	if r.DRAM < wantDRAM*0.99 || r.DRAM > wantDRAM*1.01 {
		t.Errorf("DRAM energy %v, want %v", r.DRAM, wantDRAM)
	}
}

func TestCacheStatsAggregation(t *testing.T) {
	env, pl := newTestPlatform()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], nil)
		a := pl.AllocHost(64)
		task.Access(stats.CompOther, a, 8)
		task.Access(stats.CompOther, a, 8)
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := pl.CacheStats()
	if s.L1Hits != 1 || s.L1Misses != 1 || s.L3Misses != 1 {
		t.Errorf("stats %+v", s)
	}
	if r := s.MissRatio(); r != 0.5 {
		t.Errorf("miss ratio %v, want 0.5", r)
	}
}
