// Package treeprobe models the paper's §5.3 hardware B+Tree probe engine: a
// pipelined unit on the FPGA with direct (cache-bypassing) access to
// scatter-gather DRAM. Requests arrive asynchronously over PCIe; the unit
// walks the tree one node per memory round trip, overlapping many probes;
// the "load-compare-branch" comparator work costs a few fabric cycles per
// node. Probes that touch a non-resident node abort so software can fetch
// and retry — concurrency control, SMOs and space allocation stay in
// software, exactly as the paper prescribes.
package treeprobe

import (
	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// Config tunes the engine.
type Config struct {
	// Window is the number of outstanding probe requests the unit tracks
	// (its MSHR-like request table).
	Window int
	// VisitCycles is the comparator pipeline occupancy per node visit, in
	// FPGA fabric cycles. With the HC-2's 150 MHz fabric and 400 ns
	// SG-DRAM, 6 cycles makes the unit saturate at roughly a dozen
	// outstanding probes — the paper's §5.3 estimate.
	VisitCycles int
	// ReqBytes/RespBytes size the PCIe messages.
	ReqBytes, RespBytes int
	// CPUIssueInstr/CPUCompleteInstr are the host-side marshalling costs.
	CPUIssueInstr, CPUCompleteInstr int
}

// DefaultConfig returns the calibrated engine parameters.
func DefaultConfig() Config {
	return Config{
		Window:           64,
		VisitCycles:      6,
		ReqBytes:         64,
		RespBytes:        64,
		CPUIssueInstr:    80,
		CPUCompleteInstr: 60,
	}
}

// Engine is one hardware tree-probe unit.
type Engine struct {
	cfg    Config
	pl     *platform.Platform
	window *platform.HWUnit // request-table slots (held per probe)
	pipe   *platform.HWUnit // comparator pipeline (held per node visit)

	// Resident reports whether a node page is in overlay memory; nil
	// means always resident. Probes touching a non-resident page abort.
	Resident func(id storage.PageID) bool

	probes int64
	aborts int64
	traces btree.TracePool
}

// New creates a probe engine on pl.
func New(pl *platform.Platform, cfg Config) *Engine {
	return &Engine{
		cfg:    cfg,
		pl:     pl,
		window: pl.NewHWUnit("treeprobe-window", cfg.Window),
		pipe:   pl.NewHWUnit("treeprobe-pipe", 1),
	}
}

// Probes returns the number of accepted probe requests.
func (e *Engine) Probes() int64 { return e.probes }

// Aborts returns the number of probes aborted on non-resident nodes.
func (e *Engine) Aborts() int64 { return e.aborts }

// Result reports a completed probe.
type Result struct {
	Val     []byte
	Found   bool
	Aborted bool // non-resident node: caller must fetch and retry in software
}

// Probe looks key up in tree through the hardware unit. The calling task
// flushes its CPU work and blocks for the PCIe round trip and the walk;
// because the core is released, sibling actions in the partition window
// keep it busy — the asynchrony §5.2 calls for. Host-side costs are charged
// to the Btree component (it is still index time, just cheaper).
func (e *Engine) Probe(t *platform.Task, tree *btree.Tree, key []byte) Result {
	// Host side: marshal and send the request descriptor.
	t.Exec(stats.CompBtree, e.cfg.CPUIssueInstr)
	t.Flush()
	e.pl.PCIe.Transfer(t.P, e.cfg.ReqBytes)

	// Hardware side: walk the real tree, charging SG-DRAM and pipeline
	// time per visited node.
	tr := e.traces.Get()
	val, found := tree.Get(key, tr)
	res := e.walk(t, tr)
	e.traces.Put(tr)
	if !res.Aborted {
		res.Val, res.Found = val, found
	}

	// Completion descriptor back to the host.
	e.pl.PCIe.Transfer(t.P, e.cfg.RespBytes+len(res.Val))
	t.Exec(stats.CompBtree, e.cfg.CPUCompleteInstr)
	return res
}

// walk charges the hardware time for a traced traversal and applies the
// residency check. The walk stops at the first non-resident node, like the
// real unit would.
func (e *Engine) walk(t *platform.Task, tr *btree.Trace) Result { return e.walkP(t.P, tr) }

func (e *Engine) walkP(p *sim.Proc, tr *btree.Trace) Result {
	e.probes++
	e.window.Acquire(p)
	defer e.window.Release()
	for _, v := range tr.Visits {
		if e.Resident != nil && !e.Resident(v.ID) {
			e.aborts++
			return Result{Aborted: true}
		}
		// Dependent pointer chase: SG-DRAM round trip for the node's
		// examined bytes, then the comparator pipeline.
		e.pl.SGDRAM.Transfer(p, v.Bytes)
		e.pipe.Work(p, e.cfg.VisitCycles)
	}
	return Result{}
}

// ProbeLocal runs a probe as seen from inside the FPGA — no PCIe crossing
// and no host CPU cost. This is the measurement §5.3 makes when it argues
// the unit "saturates using only perhaps a dozen outstanding requests":
// the window is counted at the unit's request table, with the walk latency
// (height × SG-DRAM round trips) against the comparator pipeline's issue
// rate setting the knee.
func (e *Engine) ProbeLocal(p *sim.Proc, tree *btree.Tree, key []byte) Result {
	tr := e.traces.Get()
	val, found := tree.Get(key, tr)
	res := e.walkP(p, tr)
	e.traces.Put(tr)
	if !res.Aborted {
		res.Val, res.Found = val, found
	}
	return res
}

// WalkTrace charges the unit's time for an already-collected trace from an
// FPGA-side requester (no PCIe, no host CPU): the overlay's posted-write
// path runs it from the asynchronous completion process.
func (e *Engine) WalkTrace(p *sim.Proc, tr *btree.Trace) Result { return e.walkP(p, tr) }

// ProbeTrace charges hardware time for an already-collected trace (used by
// the overlay's write path, where the functional tree operation and the
// timing are driven by the caller). It returns false if a visited node was
// non-resident.
func (e *Engine) ProbeTrace(t *platform.Task, tr *btree.Trace) (resident bool) {
	t.Exec(stats.CompBtree, e.cfg.CPUIssueInstr)
	t.Flush()
	e.pl.PCIe.Transfer(t.P, e.cfg.ReqBytes)
	res := e.walk(t, tr)
	e.pl.PCIe.Transfer(t.P, e.cfg.RespBytes)
	t.Exec(stats.CompBtree, e.cfg.CPUCompleteInstr)
	return !res.Aborted
}

// Utilization reports the comparator pipeline's busy fraction — the
// saturation metric of experiment C1.
func (e *Engine) Utilization() float64 { return e.pipe.Utilization() }
