package treeprobe

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

func fixture() (*sim.Env, *platform.Platform, *Engine, *btree.Tree) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	e := New(pl, DefaultConfig())
	tree := btree.New(btree.Config{
		AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocFPGA(8 << 10) },
	})
	for i := 0; i < 50000; i++ {
		tree.Put(storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("row%d", i)), nil)
	}
	return env, pl, e, tree
}

func TestProbeReturnsValue(t *testing.T) {
	env, pl, e, tree := fixture()
	env.Spawn("p", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		res := e.Probe(task, tree, storage.Uint64Key(123))
		if res.Aborted || !res.Found || !bytes.Equal(res.Val, []byte("row123")) {
			t.Errorf("probe result %+v", res)
		}
		res = e.Probe(task, tree, storage.Uint64Key(999999))
		if res.Found || res.Aborted {
			t.Errorf("absent key result %+v", res)
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Probes() != 2 {
		t.Fatalf("probes=%d", e.Probes())
	}
}

func TestProbeLatencyDominatedByPCIeAndSGDRAM(t *testing.T) {
	env, pl, e, tree := fixture()
	var took sim.Duration
	env.Spawn("p", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		start := p.Now()
		e.Probe(task, tree, storage.Uint64Key(1))
		task.Flush()
		took = p.Now().Sub(start)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 2us PCIe round trip + height × ~440ns walks.
	min := 2 * sim.Microsecond
	max := 2*sim.Microsecond + sim.Duration(tree.Height()+2)*500*sim.Nanosecond
	if took < min || took > max {
		t.Fatalf("probe latency %v, want in [%v, %v] (height %d)", took, min, max, tree.Height())
	}
}

func TestProbeAbortsOnNonResident(t *testing.T) {
	env, pl, e, tree := fixture()
	// Mark every page non-resident: first visit must abort.
	e.Resident = func(id storage.PageID) bool { return false }
	env.Spawn("p", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		res := e.Probe(task, tree, storage.Uint64Key(1))
		if !res.Aborted {
			t.Error("expected abort")
		}
		if res.Found {
			t.Error("aborted probe must not return data")
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Aborts() != 1 {
		t.Fatalf("aborts=%d", e.Aborts())
	}
}

// TestSaturationNearDozenOutstanding reproduces experiment C1: throughput
// scales with the outstanding-request window and flattens around a dozen,
// the paper's §5.3 estimate.
func TestSaturationNearDozenOutstanding(t *testing.T) {
	throughput := func(window int) float64 {
		env, _, e, tree := fixture()
		const probesPerStream = 200
		r := sim.NewRand(7)
		keys := make([][]byte, window*probesPerStream)
		for i := range keys {
			keys[i] = storage.Uint64Key(uint64(r.Intn(50000)))
		}
		done := 0
		for w := 0; w < window; w++ {
			w := w
			env.Spawn("stream", func(p *sim.Proc) {
				for i := 0; i < probesPerStream; i++ {
					e.ProbeLocal(p, tree, keys[w*probesPerStream+i])
					done++
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.PerSecond(int64(done), sim.Duration(env.Now()))
	}
	t1 := throughput(1)
	t12 := throughput(12)
	t24 := throughput(24)
	if t12 < 5*t1 {
		t.Fatalf("window 12 should be >5x window 1: %.0f vs %.0f", t12, t1)
	}
	// Beyond saturation, little additional gain.
	if t24 > 1.2*t12 {
		t.Fatalf("window 24 (%.0f) should be within 20%% of window 12 (%.0f): pipeline not saturating", t24, t12)
	}
}

func TestProbeChargesBtreeComponentOnly(t *testing.T) {
	env, pl, e, tree := fixture()
	bd := &stats.Breakdown{}
	env.Spawn("p", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], bd)
		e.Probe(task, tree, storage.Uint64Key(5))
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.CompBtree) == 0 {
		t.Fatal("no Btree time charged")
	}
	// The CPU-side Btree charge must be small: most time is off-CPU.
	if bd.Get(stats.CompBtree) > sim.Duration(500)*sim.Nanosecond {
		t.Fatalf("CPU-side probe cost %v too high", bd.Get(stats.CompBtree))
	}
}

func TestProbeTraceResidency(t *testing.T) {
	env, pl, e, tree := fixture()
	env.Spawn("p", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		var tr btree.Trace
		tree.Get(storage.Uint64Key(7), &tr)
		if !e.ProbeTrace(task, &tr) {
			t.Error("resident trace reported non-resident")
		}
		e.Resident = func(id storage.PageID) bool { return false }
		if e.ProbeTrace(task, &tr) {
			t.Error("non-resident trace reported resident")
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoreFreeDuringProbe(t *testing.T) {
	env, pl, e, tree := fixture()
	env.Spawn("prober", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		e.Probe(task, tree, storage.Uint64Key(3))
		task.Flush()
	})
	var gotCore sim.Time
	env.Spawn("cpu-work", func(p *sim.Proc) {
		p.Wait(200 * sim.Nanosecond) // probe is mid-flight by now
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		task.Exec(stats.CompOther, 100)
		task.Flush()
		gotCore = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The sibling got the core long before the probe finished (~2us+).
	if gotCore > sim.Time(1*sim.Microsecond) {
		t.Fatalf("core was held during hardware probe: sibling ran at %v", gotCore)
	}
}
