// Package scanner models the Netezza-style "enhanced scanner" of Figure 4:
// selection and projection evaluated on the FPGA against the columnar base
// at SG-DRAM streaming bandwidth, so only qualifying projected bytes cross
// the PCIe bus. The package also provides the software comparison point —
// a CPU scan that must pull every row over PCIe first — which is the
// bandwidth-pressure contrast the paper draws.
package scanner

import (
	"bionicdb/internal/columnar"
	"bionicdb/internal/platform"
	"bionicdb/internal/stats"
)

// Config tunes the scanner.
type Config struct {
	// Slots is the number of concurrent scan streams.
	Slots int
	// CyclesPerValue is the predicate/projection pipeline occupancy per
	// scanned value (the fabric evaluates one value per cycle per lane;
	// >1 models narrower lanes).
	CyclesPerValue int
	// CPUPerRowInstr is the software-scan per-row evaluation cost.
	CPUPerRowInstr int
}

// DefaultConfig returns the calibrated parameters.
func DefaultConfig() Config {
	return Config{Slots: 2, CyclesPerValue: 1, CPUPerRowInstr: 24}
}

// Engine is the hardware scanner.
type Engine struct {
	cfg  Config
	pl   *platform.Platform
	unit *platform.HWUnit

	scans    int64
	rowsIn   int64
	rowsOut  int64
	pcieSent int64
}

// New creates a scanner engine on pl.
func New(pl *platform.Platform, cfg Config) *Engine {
	return &Engine{cfg: cfg, pl: pl, unit: pl.NewHWUnit("scanner", cfg.Slots)}
}

// Pred is a row predicate over a columnar table position.
type Pred func(t *columnar.Table, pos int) bool

// Scan filters table with pred on the FPGA and returns the qualifying row
// positions. Timing: the scanned column bytes stream from SG-DRAM, the
// unit spends CyclesPerValue per row, and only the projected bytes of
// qualifying rows (projCols) cross PCIe. The calling task is blocked but
// off-core for the duration.
func (e *Engine) Scan(t *platform.Task, table *columnar.Table, pred Pred, projCols []string) []int {
	e.scans++
	t.Exec(stats.CompOther, 200) // descriptor setup
	t.Flush()
	e.pl.PCIe.Transfer(t.P, 64) // scan descriptor

	var out []int
	rows := table.Rows()
	e.rowsIn += int64(rows)

	// Stream the predicate columns from SG-DRAM. We charge the full
	// column footprint: the scanner reads at sequential bandwidth.
	scanBytes := rows * 8 // key column is always read
	for pos := 0; pos < rows; pos++ {
		if pred == nil || pred(table, pos) {
			out = append(out, pos)
		}
	}
	e.pl.SGDRAM.Transfer(t.P, scanBytes)
	e.unit.Work(t.P, rows*e.cfg.CyclesPerValue)

	// Only qualifying projected bytes cross the bus.
	projWidth := 0
	for _, name := range projCols {
		if c := table.Column(name); c != nil {
			projWidth += c.Width()
		}
	}
	if projWidth == 0 {
		projWidth = 8
	}
	outBytes := len(out) * projWidth
	e.rowsOut += int64(len(out))
	e.pcieSent += int64(outBytes)
	e.pl.PCIe.Transfer(t.P, 64+outBytes)
	t.Exec(stats.CompOther, 60+len(out)/8)
	return out
}

// SoftwareScan is the baseline: the CPU pulls every row's predicate and
// projection bytes across PCIe (the base lives FPGA-side) and evaluates the
// predicate itself. It returns the same positions as Scan.
func (e *Engine) SoftwareScan(t *platform.Task, table *columnar.Table, pred Pred, projCols []string) []int {
	rows := table.Rows()
	rowBytes := table.RowWidth()
	// Everything crosses the bus first.
	e.pl.PCIe.Transfer(t.P, 64+rows*rowBytes)
	var out []int
	for pos := 0; pos < rows; pos++ {
		if pred == nil || pred(table, pos) {
			out = append(out, pos)
		}
	}
	t.Exec(stats.CompOther, rows*e.cfg.CPUPerRowInstr)
	return out
}

// HostScan is the conventional machine's analytical path: the projection
// lives in host DRAM, so nothing crosses PCIe — the CPU streams the rows
// from memory and evaluates predicate and projection itself. It is a free
// function rather than an Engine method because a conventional machine has
// no scanner unit to idle (creating an Engine would charge phantom FPGA
// power). It returns the same positions as Scan and SoftwareScan.
func HostScan(t *platform.Task, pl *platform.Platform, table *columnar.Table, pred Pred, projCols []string, cfg Config) []int {
	rows := table.Rows()
	var out []int
	for pos := 0; pos < rows; pos++ {
		if pred == nil || pred(table, pos) {
			out = append(out, pos)
		}
	}
	// Plan/setup cost mirrors the hardware path's descriptor build, so an
	// empty-table scan still advances simulated time.
	t.Exec(stats.CompOther, 200)
	t.Exec(stats.CompOther, rows*cfg.CPUPerRowInstr)
	t.Flush()
	// The swept rows stream from host memory at sequential bandwidth.
	pl.HostDRAM.Transfer(t.P, rows*table.RowWidth())
	return out
}

// Scans returns the number of hardware scans run.
func (e *Engine) Scans() int64 { return e.scans }

// Selectivity returns output rows / input rows across all scans.
func (e *Engine) Selectivity() float64 {
	if e.rowsIn == 0 {
		return 0
	}
	return float64(e.rowsOut) / float64(e.rowsIn)
}

// PCIeBytesSent returns the qualifying bytes shipped over the bus.
func (e *Engine) PCIeBytesSent() int64 { return e.pcieSent }
