package scanner

import (
	"testing"

	"bionicdb/internal/columnar"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func fixture(rows int) (*sim.Env, *platform.Platform, *Engine, *columnar.Table) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	e := New(pl, DefaultConfig())
	tbl := columnar.NewTable(pl, "stock",
		columnar.U64Col("id"), columnar.U64Col("qty"), columnar.BytesCol("name"))
	for i := 0; i < rows; i++ {
		tbl.Upsert(uint64(i), uint64(i%100), []byte("item"))
	}
	return env, pl, e, tbl
}

func lowQty(t *columnar.Table, pos int) bool { return t.U64At("qty", pos) < 10 }

func TestScanReturnsQualifyingRows(t *testing.T) {
	env, pl, e, tbl := fixture(1000)
	env.Spawn("q", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		out := e.Scan(task, tbl, lowQty, []string{"id", "qty"})
		if len(out) != 100 { // qty < 10 hits 10% of i%100
			t.Errorf("qualifying rows = %d, want 100", len(out))
		}
		for _, pos := range out {
			if tbl.U64At("qty", pos) >= 10 {
				t.Error("non-qualifying row returned")
				break
			}
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Selectivity() != 0.1 {
		t.Fatalf("selectivity %v", e.Selectivity())
	}
}

func TestHardwareScanMovesFewerPCIeBytes(t *testing.T) {
	env, pl, e, tbl := fixture(100000)
	var hwBytes, swBytes int64
	env.Spawn("q", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		before := pl.PCIe.Bytes()
		e.Scan(task, tbl, lowQty, []string{"id"})
		hwBytes = pl.PCIe.Bytes() - before
		before = pl.PCIe.Bytes()
		e.SoftwareScan(task, tbl, lowQty, []string{"id"})
		swBytes = pl.PCIe.Bytes() - before
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if hwBytes*3 > swBytes {
		t.Fatalf("hw scan moved %d PCIe bytes vs sw %d; want far fewer", hwBytes, swBytes)
	}
}

func TestScansAgree(t *testing.T) {
	env, pl, e, tbl := fixture(5000)
	env.Spawn("q", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		hw := e.Scan(task, tbl, lowQty, nil)
		sw := e.SoftwareScan(task, tbl, lowQty, nil)
		if len(hw) != len(sw) {
			t.Errorf("hw %d rows, sw %d rows", len(hw), len(sw))
			return
		}
		for i := range hw {
			if hw[i] != sw[i] {
				t.Error("scan results diverge")
				return
			}
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilPredicateScansAll(t *testing.T) {
	env, pl, e, tbl := fixture(50)
	env.Spawn("q", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		out := e.Scan(task, tbl, nil, nil)
		if len(out) != 50 {
			t.Errorf("got %d rows", len(out))
		}
		task.Flush()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnarUpsertReplaces(t *testing.T) {
	_, _, _, tbl := fixture(10)
	tbl.Upsert(3, uint64(999), []byte("replaced"))
	pos, ok := tbl.Get(3)
	if !ok {
		t.Fatal("key 3 missing")
	}
	if tbl.U64At("qty", pos) != 999 || string(tbl.BytesAt("name", pos)) != "replaced" {
		t.Fatal("upsert did not replace in place")
	}
	if tbl.Rows() != 10 {
		t.Fatalf("rows=%d after replace", tbl.Rows())
	}
	tbl.Upsert(100, uint64(1), []byte("new"))
	if tbl.Rows() != 11 {
		t.Fatalf("rows=%d after append", tbl.Rows())
	}
}

func TestColumnarSchemaValidation(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-u64 key column")
		}
	}()
	columnar.NewTable(pl, "bad", columnar.BytesCol("key"))
}

func TestColumnarWidths(t *testing.T) {
	_, _, _, tbl := fixture(100)
	if w := tbl.Column("id").Width(); w != 8 {
		t.Errorf("u64 width %d", w)
	}
	if w := tbl.Column("name").Width(); w != len("item")+2 {
		t.Errorf("bytes width %d", w)
	}
	if tbl.RowWidth() < 16 {
		t.Errorf("row width %d", tbl.RowWidth())
	}
}
