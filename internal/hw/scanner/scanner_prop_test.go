package scanner

import (
	"fmt"
	"testing"

	"bionicdb/internal/columnar"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// oracle is the naive row-loop the scan paths must agree with.
func oracle(t *columnar.Table, pred Pred) []int {
	var out []int
	for pos := 0; pos < t.Rows(); pos++ {
		if pred == nil || pred(t, pos) {
			out = append(out, pos)
		}
	}
	return out
}

func sameRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomTable builds a randomized table: random row count (including empty),
// a random number of uint64 columns, random values.
func randomTable(pl *platform.Platform, r *sim.Rand, name string) *columnar.Table {
	rowChoices := []int{0, 1, 2, 17, 100, 1000}
	rows := rowChoices[r.Intn(len(rowChoices))]
	ncols := 1 + r.Intn(3) // measure columns beyond the key
	cols := []*columnar.Column{columnar.U64Col("key")}
	for c := 0; c < ncols; c++ {
		cols = append(cols, columnar.U64Col(fmt.Sprintf("c%d", c)))
	}
	tbl := columnar.NewTable(pl, name, cols...)
	vals := make([]any, ncols)
	for i := 0; i < rows; i++ {
		for c := range vals {
			vals[c] = r.Uint64() % 1000
		}
		tbl.Upsert(uint64(i), vals...)
	}
	return tbl
}

// randomPred draws a predicate: nil (all rows), none-match, all-match, or a
// random threshold on a random column.
func randomPred(t *columnar.Table, r *sim.Rand) Pred {
	switch r.Intn(4) {
	case 0:
		return nil
	case 1:
		return func(*columnar.Table, int) bool { return false }
	case 2:
		return func(*columnar.Table, int) bool { return true }
	default:
		ncols := len(t.Columns()) - 1
		col := fmt.Sprintf("c%d", r.Intn(ncols))
		thresh := r.Uint64() % 1000
		return func(t *columnar.Table, pos int) bool {
			return t.U64At(col, pos) < thresh
		}
	}
}

// randomProjection draws a projected column subset: nil, empty, all columns,
// a random subset, or a set including an unknown column name.
func randomProjection(t *columnar.Table, r *sim.Rand) []string {
	switch r.Intn(5) {
	case 0:
		return nil
	case 1:
		return []string{}
	case 2:
		var all []string
		for _, c := range t.Columns() {
			all = append(all, c.Name)
		}
		return all
	case 3:
		return []string{"no-such-column"}
	default:
		var some []string
		for _, c := range t.Columns() {
			if r.Intn(2) == 0 {
				some = append(some, c.Name)
			}
		}
		return some
	}
}

// TestScanPathsAgreeWithOracle pins Engine.Scan ≡ Engine.SoftwareScan ≡
// HostScan ≡ the naive row loop over randomized tables, predicates and
// projections — the projection and the device charges differ per path, the
// qualifying row set must not.
func TestScanPathsAgreeWithOracle(t *testing.T) {
	root := sim.NewRand(7)
	for trial := 0; trial < 60; trial++ {
		trial := trial
		r := root.Split()
		env := sim.NewEnv()
		pl := platform.New(env, platform.HC2())
		e := New(pl, DefaultConfig())
		tbl := randomTable(pl, r, fmt.Sprintf("t%d", trial))
		pred := randomPred(tbl, r)
		proj := randomProjection(tbl, r)
		want := oracle(tbl, pred)

		env.Spawn("q", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
			hw := e.Scan(task, tbl, pred, proj)
			sw := e.SoftwareScan(task, tbl, pred, proj)
			host := HostScan(task, pl, tbl, pred, proj, DefaultConfig())
			task.Flush()
			if !sameRows(hw, want) {
				t.Errorf("trial %d (rows=%d): hw scan %d rows, oracle %d", trial, tbl.Rows(), len(hw), len(want))
			}
			if !sameRows(sw, want) {
				t.Errorf("trial %d (rows=%d): sw scan %d rows, oracle %d", trial, tbl.Rows(), len(sw), len(want))
			}
			if !sameRows(host, want) {
				t.Errorf("trial %d (rows=%d): host scan %d rows, oracle %d", trial, tbl.Rows(), len(host), len(want))
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHostScanChargesNoPCIe pins the conventional-path contract: scanning
// host-resident projections touches host memory only — no PCIe descriptor
// traffic, no FPGA unit — so a conventional machine's scan energy never
// includes phantom accelerator idle power.
func TestHostScanChargesNoPCIe(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	tbl := columnar.NewTable(pl, "t", columnar.U64Col("key"), columnar.U64Col("c0"))
	for i := 0; i < 1000; i++ {
		tbl.Upsert(uint64(i), uint64(i))
	}
	env.Spawn("q", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		pcieBefore, hostBefore := pl.PCIe.Bytes(), pl.HostDRAM.Bytes()
		out := HostScan(task, pl, tbl, nil, nil, DefaultConfig())
		task.Flush()
		if len(out) != 1000 {
			t.Errorf("host scan returned %d rows, want 1000", len(out))
		}
		if got := pl.PCIe.Bytes() - pcieBefore; got != 0 {
			t.Errorf("host scan moved %d PCIe bytes, want 0", got)
		}
		if got := pl.HostDRAM.Bytes() - hostBefore; got <= 0 {
			t.Errorf("host scan moved %d host-DRAM bytes, want > 0", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
