// Package overlay implements the paper's §5.6 overlay database: the bionic
// engine's replacement for the buffer pool. The overlay is a set of
// index-organized tables living entirely in FPGA-side SG-DRAM ("the overlay
// will consist entirely of various indexes that can be probed by the
// hardware engine"). It caches reads, buffers writes, and bulk-merges
// dirty rows back to the columnar base; leaves that fall out of the
// configured capacity are evicted to the FPGA-side database files, and a
// probe touching an evicted leaf aborts to software, which faults the leaf
// back in and retries (§5.3's abort-and-retry contract).
package overlay

import (
	"fmt"
	"sort"

	"bionicdb/internal/btree"
	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// Config tunes the overlay.
type Config struct {
	// CapacityRows bounds the overlay's resident row count; above it the
	// store evicts cold leaves. Zero means unbounded (fully resident).
	CapacityRows int
	// EvictBatch is how many leaves one eviction pass retires.
	EvictBatch int
	// MergeInterval is the bulk-merge daemon cadence.
	MergeInterval sim.Duration
	// MergeBatchRows caps rows merged per pass.
	MergeBatchRows int
	// WriteCycles is the overlay-manager unit occupancy per write.
	WriteCycles int
	// MgmtInstr is the CPU-side bookkeeping per overlay operation.
	MgmtInstr int
}

// DefaultConfig returns the calibrated overlay parameters.
func DefaultConfig() Config {
	return Config{
		CapacityRows:   0,
		EvictBatch:     8,
		MergeInterval:  10 * sim.Millisecond,
		MergeBatchRows: 65536,
		WriteCycles:    8,
		MgmtInstr:      60,
	}
}

// Table is one overlay index.
type Table struct {
	ID   uint16
	Tree *btree.Tree
	// MergeFn, when set, applies a merged row to the columnar base. The
	// key and value are the tree's images.
	MergeFn func(key, val []byte)

	dirty map[string]struct{}
}

// Store is the overlay database.
type Store struct {
	cfg   Config
	pl    *platform.Platform
	probe *treeprobe.Engine
	unit  *platform.HWUnit

	tables map[uint16]*Table

	// AfterMerge, when set, runs at the end of every bulk-merge pass —
	// including passes that found nothing dirty — after the pass's device
	// charges. The HTAP projection mirror uses it to charge its columnar
	// write-back and stamp the projections' freshness each merge interval.
	AfterMerge func(p *sim.Proc)

	nextPage  storage.PageID
	evicted   map[storage.PageID]bool
	leafTouch map[storage.PageID]sim.Time // leaves only, last probe time
	rows      int

	faults    int64
	evictions int64
	merged    int64
	stopped   bool
	traces    btree.TracePool

	idleWriters []*writeWorker           // pooled posted-write completion processes
	rowsPool    sim.ScratchPool[scanRow] // pooled scan materialization buffers

	// rec, when non-nil, records one overlay-merge span per non-empty
	// bulk-merge pass (SetRecorder). Host-side only.
	rec *obs.ShardRec
}

// SetRecorder attaches the flight recorder's ring for the kernel shard the
// merge daemon runs on. Attaching it changes no simulated behavior.
func (s *Store) SetRecorder(rec *obs.ShardRec) { s.rec = rec }

// scanRow is one materialized scan result row.
type scanRow struct{ k, v []byte }

// writeWorker is one pooled posted-write completion process: a single
// goroutine serving many hardware write completions, parked in the store's
// idle list between jobs. Its visits buffer is reused across jobs, so the
// steady-state write path snapshots the caller's trace without allocating.
type writeWorker struct {
	proc     *sim.Proc
	visits   []btree.Visit
	valBytes int
	quit     bool
}

// New creates an overlay store whose probes run on probe. The merge daemon
// is spawned immediately.
func New(pl *platform.Platform, probe *treeprobe.Engine, cfg Config) *Store {
	s := &Store{
		cfg:       cfg,
		pl:        pl,
		probe:     probe,
		unit:      pl.NewHWUnit("overlay-mgr", 4),
		tables:    make(map[uint16]*Table),
		nextPage:  1,
		evicted:   make(map[storage.PageID]bool),
		leafTouch: make(map[storage.PageID]sim.Time),
	}
	probe.Resident = func(id storage.PageID) bool { return !s.evicted[id] }
	pl.Env.Spawn("overlay-merge", func(p *sim.Proc) { s.mergeLoop(p) })
	return s
}

// CreateTable registers an overlay index with the given B+Tree order.
func (s *Store) CreateTable(id uint16, order int) *Table {
	if _, dup := s.tables[id]; dup {
		panic(fmt.Sprintf("overlay: duplicate table %d", id))
	}
	t := &Table{
		ID:    id,
		dirty: make(map[string]struct{}),
	}
	t.Tree = btree.New(btree.Config{
		Order: order,
		NextID: func() storage.PageID {
			id := s.nextPage
			s.nextPage++
			return id
		},
		AddrOf: func(id storage.PageID, size int) uint64 { return s.pl.AllocFPGA(8 << 10) },
	})
	s.tables[id] = t
	return t
}

// TableByID returns a registered table.
func (s *Store) TableByID(id uint16) *Table { return s.tables[id] }

// Get probes the overlay through the hardware engine; a probe that hits an
// evicted leaf aborts, software faults the leaf in (a database-file read on
// the FPGA side), and the probe retries — charged to Bpool like the buffer
// pool it replaces.
func (s *Store) Get(t *platform.Task, tableID uint16, key []byte) (val []byte, ok bool) {
	tbl := s.tables[tableID]
	for attempt := 0; ; attempt++ {
		res := s.probe.Probe(t, tbl.Tree, key)
		if !res.Aborted {
			s.touch(tbl.Tree, key)
			return res.Val, res.Found
		}
		s.fault(t, tbl.Tree, key)
		if attempt > 4 {
			panic("overlay: probe kept aborting after faults")
		}
	}
}

// Put inserts or replaces a row. The functional update runs immediately;
// timing is a hardware probe for positioning plus overlay-manager write
// work, with splits (SMOs) charged to software as §5.3 requires.
func (s *Store) Put(t *platform.Task, tableID uint16, key, val []byte) (prev []byte, existed bool) {
	tbl := s.tables[tableID]
	tr := s.traces.Get()
	prev, existed = tbl.Tree.Put(key, val, tr)
	s.chargeWrite(t, tbl, tr, len(val))
	s.traces.Put(tr)
	if !existed {
		s.rows++
		s.maybeEvict(t)
	}
	if _, dirty := tbl.dirty[string(key)]; !dirty {
		tbl.dirty[string(key)] = struct{}{}
	}
	return prev, existed
}

// Delete removes a row (a tombstone merge to the base).
func (s *Store) Delete(t *platform.Task, tableID uint16, key []byte) (val []byte, ok bool) {
	tbl := s.tables[tableID]
	tr := s.traces.Get()
	val, ok = tbl.Tree.Delete(key, tr)
	s.chargeWrite(t, tbl, tr, 0)
	s.traces.Put(tr)
	if ok {
		s.rows--
		delete(tbl.dirty, string(key))
	}
	return val, ok
}

// ScanRange streams [from, to) from the overlay: a hardware descent plus
// sequential SG-DRAM leaf reads, returning the rows via fn. Rows are
// materialized before fn runs, so fn may safely perform further (parking)
// operations without racing tree mutations.
func (s *Store) ScanRange(t *platform.Task, tableID uint16, from, to []byte, fn func(key, val []byte) bool) {
	tbl := s.tables[tableID]
	tr := s.traces.Get()
	defer s.traces.Put(tr)
	t.Exec(stats.CompBtree, 100)
	t.Flush()
	s.pl.PCIe.Transfer(t.P, 64)
	rows := s.rowsPool.Get()
	defer func() { s.rowsPool.Put(rows) }()
	rowBytes := 0
	tbl.Tree.Scan(from, to, tr, func(k, v []byte) bool {
		rows = append(rows, scanRow{k, v})
		rowBytes += len(k) + len(v)
		return true
	})
	for _, v := range tr.Visits {
		s.pl.SGDRAM.Transfer(t.P, v.Bytes)
		if v.Leaf {
			s.leafTouch[v.ID] = t.P.Now()
		}
	}
	s.unit.Work(t.P, len(rows)+len(tr.Visits)*2)
	s.pl.PCIe.Transfer(t.P, 64+rowBytes)
	t.Exec(stats.CompBtree, 60+len(rows)/4)
	for _, r := range rows {
		if !fn(r.k, r.v) {
			return
		}
	}
}

// LoadRaw inserts a row during population: no timing, no dirty marking
// (freshly loaded data is considered merged).
func (s *Store) LoadRaw(tableID uint16, key, val []byte) {
	tbl := s.tables[tableID]
	_, existed := tbl.Tree.Put(key, val, nil)
	if !existed {
		s.rows++
	}
}

// chargeWrite accounts a mutating tree operation. Writes are POSTED: the
// CPU builds a descriptor and rings a doorbell (a posted PCIe write — no
// round trip), then the hardware walks, writes and completes on its own
// time in a spawned completion process. Durability is the log's job, so
// nothing on the transaction's critical path waits for the overlay write —
// the paper's asynchronous-medium argument applied to the write path.
// Splits (SMOs) stay synchronous in software, as §5.3 prescribes.
func (s *Store) chargeWrite(t *platform.Task, tbl *Table, tr *btree.Trace, valBytes int) {
	// Descriptor build + doorbell: tens of instructions, no PCIe wait.
	t.Exec(stats.CompBpool, s.cfg.MgmtInstr)
	if tr.Splits > 0 {
		// SMOs run in software: descriptors cross PCIe, node builds hit
		// SG-DRAM, CPU does the bookkeeping.
		t.Exec(stats.CompBtree, 1200*tr.Splits)
		t.Flush()
		s.pl.PCIe.Transfer(t.P, 256*tr.Splits)
		s.pl.SGDRAM.Transfer(t.P, s.pl.Cfg.PageSize*tr.Splits)
	}
	for _, v := range tr.Visits {
		if v.Leaf {
			s.leafTouch[v.ID] = t.P.Now()
		}
	}
	// The hardware's half of the write, off the critical path, on a pooled
	// completion process. The trace is snapshotted into the worker's
	// reusable buffer because the caller may reuse it. A pool Resume and a
	// fresh Spawn each push exactly one wake event at the current time, so
	// pooling never changes the event schedule.
	if n := len(s.idleWriters); n > 0 {
		w := s.idleWriters[n-1]
		s.idleWriters = s.idleWriters[:n-1]
		w.visits = append(w.visits[:0], tr.Visits...)
		w.valBytes = valBytes
		s.pl.Env.Resume(w.proc)
		return
	}
	w := &writeWorker{visits: append([]btree.Visit(nil), tr.Visits...), valBytes: valBytes}
	w.proc = s.pl.Env.Spawn("overlay.write", func(p *sim.Proc) {
		for {
			valBytes := w.valBytes
			s.pl.PCIe.Transfer(p, 64+valBytes)
			snap := btree.Trace{Visits: w.visits}
			res := s.probe.WalkTrace(p, &snap)
			if res.Aborted {
				// The write path faults like the read path.
				s.faults++
				s.pl.Disk.Transfer(p, s.pl.Cfg.PageSize)
				s.clearEvicted(&snap)
			}
			s.unit.Work(p, s.cfg.WriteCycles+valBytes/8)
			s.pl.SGDRAM.Transfer(p, 64+valBytes)
			if s.stopped {
				return
			}
			s.idleWriters = append(s.idleWriters, w)
			p.Suspend()
			if w.quit {
				return
			}
		}
	})
}

// touch refreshes recency for the leaf that served key.
func (s *Store) touch(tree *btree.Tree, key []byte) {
	tr := s.traces.Get()
	defer s.traces.Put(tr)
	tree.Get(key, tr) // structural re-walk, no timing: bookkeeping only
	for _, v := range tr.Visits {
		if v.Leaf {
			s.leafTouch[v.ID] = s.pl.Env.Now()
		}
	}
}

// fault brings the evicted leaf for key back: a database-file read on the
// FPGA side plus an SG-DRAM install.
func (s *Store) fault(t *platform.Task, tree *btree.Tree, key []byte) {
	s.faults++
	t.Exec(stats.CompBpool, 400) // software fetch-and-retry handler
	t.Flush()
	s.pl.Disk.Transfer(t.P, s.pl.Cfg.PageSize)
	s.pl.SGDRAM.Transfer(t.P, s.pl.Cfg.PageSize)
	tr := s.traces.Get()
	tree.Get(key, tr)
	s.clearEvicted(tr)
	s.traces.Put(tr)
}

func (s *Store) clearEvicted(tr *btree.Trace) {
	for _, v := range tr.Visits {
		if s.evicted[v.ID] {
			delete(s.evicted, v.ID)
			s.leafTouch[v.ID] = s.pl.Env.Now()
		}
	}
}

// maybeEvict retires the coldest leaves once the overlay exceeds capacity.
// Inner nodes are never evicted — §5.3's "inodes tend to still fit
// comfortably". Each eviction charges one page write-back to the database
// files.
func (s *Store) maybeEvict(t *platform.Task) {
	if s.cfg.CapacityRows <= 0 || s.rows <= s.cfg.CapacityRows {
		return
	}
	for i := 0; i < s.cfg.EvictBatch; i++ {
		var coldest storage.PageID
		var coldestAt sim.Time = 1<<62 - 1
		for id, at := range s.leafTouch {
			// Tie-break on the page id so the victim never depends on map
			// iteration order.
			if !s.evicted[id] && (at < coldestAt || (at == coldestAt && id < coldest)) {
				coldest, coldestAt = id, at
			}
		}
		if coldest == 0 {
			return
		}
		s.evicted[coldest] = true
		s.evictions++
		s.pl.Disk.Transfer(t.P, s.pl.Cfg.PageSize)
	}
}

// mergeLoop is the bulk-merge daemon: every interval it folds dirty rows
// into the columnar base in batches, charging sequential SG-DRAM reads and
// database-file writes.
func (s *Store) mergeLoop(p *sim.Proc) {
	for {
		p.Wait(s.cfg.MergeInterval)
		if s.stopped {
			s.mergeOnce(p) // final drain
			return
		}
		s.mergeOnce(p)
	}
}

func (s *Store) mergeOnce(p *sim.Proc) {
	mergeStart := p.Now()
	budget := s.cfg.MergeBatchRows
	totalBytes := 0
	// Tables and dirty keys merge in sorted order: which rows a pass picks
	// decides its I/O timing, so the choice must be a pure function of
	// simulation state, never Go's randomized map order.
	ids := make([]int, 0, len(s.tables))
	for id := range s.tables {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		tbl := s.tables[uint16(id)]
		if budget <= 0 {
			break
		}
		keys := smallestDirty(tbl.dirty, budget)
		if len(keys) == 0 {
			continue
		}
		for _, k := range keys {
			val, ok := tbl.Tree.Get([]byte(k), nil)
			if ok && tbl.MergeFn != nil {
				tbl.MergeFn([]byte(k), val)
			}
			totalBytes += len(k) + len(val)
			delete(tbl.dirty, k)
			s.merged++
		}
		budget -= len(keys)
	}
	if totalBytes != 0 {
		// One coalesced sequential pass: read the batch from SG-DRAM, write
		// one run to the database files (a single seek, not one per table).
		s.pl.SGDRAM.Transfer(p, totalBytes)
		s.pl.Disk.Transfer(p, totalBytes)
	}
	if s.AfterMerge != nil {
		s.AfterMerge(p)
	}
	if end := p.Now(); end > mergeStart {
		s.rec.Record(obs.Span{Start: mergeStart, End: end, Kind: obs.KindMerge})
	}
}

// smallestDirty returns the budget lexicographically-smallest dirty keys
// in sorted order. A bounded max-heap keeps the scan O(D log budget)
// instead of sorting the whole dirty set, which can be far larger than
// one merge pass's budget.
func smallestDirty(dirty map[string]struct{}, budget int) []string {
	if budget <= 0 {
		return nil
	}
	// h is a max-heap: h[0] is the largest of the budget smallest so far.
	h := make([]string, 0, budget)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && h[l] > h[big] {
				big = l
			}
			if r < len(h) && h[r] > h[big] {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for k := range dirty {
		if len(h) < budget {
			h = append(h, k)
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if h[parent] >= h[i] {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
		} else if k < h[0] {
			h[0] = k
			siftDown(0)
		}
	}
	sort.Strings(h)
	return h
}

// Stop quiesces the merge daemon after a final drain and releases the
// pooled write-completion processes.
func (s *Store) Stop() {
	s.stopped = true
	for _, w := range s.idleWriters {
		w.quit = true
		s.pl.Env.Resume(w.proc)
	}
	s.idleWriters = nil
}

// Faults returns the number of abort-and-fault round trips.
func (s *Store) Faults() int64 { return s.faults }

// Evictions returns the number of leaves retired to the base.
func (s *Store) Evictions() int64 { return s.evictions }

// Merged returns the number of rows bulk-merged to the base.
func (s *Store) Merged() int64 { return s.merged }

// Rows returns the resident row count across tables.
func (s *Store) Rows() int { return s.rows }

// DirtyRows returns rows awaiting merge.
func (s *Store) DirtyRows() int {
	n := 0
	for _, tbl := range s.tables {
		n += len(tbl.dirty)
	}
	return n
}
