package overlay

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

func fixture(cfg Config) (*sim.Env, *platform.Platform, *Store) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	probe := treeprobe.New(pl, treeprobe.DefaultConfig())
	s := New(pl, probe, cfg)
	return env, pl, s
}

func key(i int) []byte { return storage.Uint64Key(uint64(i)) }
func row(i int) []byte { return []byte(fmt.Sprintf("row-%d", i)) }

func TestPutGetDeleteRoundTrip(t *testing.T) {
	env, pl, s := fixture(DefaultConfig())
	s.CreateTable(1, 64)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 500; i++ {
			s.Put(task, 1, key(i), row(i))
		}
		for i := 0; i < 500; i++ {
			v, ok := s.Get(task, 1, key(i))
			if !ok || !bytes.Equal(v, row(i)) {
				t.Errorf("key %d: %q %v", i, v, ok)
				return
			}
		}
		if v, ok := s.Delete(task, 1, key(7)); !ok || !bytes.Equal(v, row(7)) {
			t.Error("delete failed")
		}
		if _, ok := s.Get(task, 1, key(7)); ok {
			t.Error("deleted key still present")
		}
		task.Flush()
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 499 {
		t.Fatalf("rows=%d", s.Rows())
	}
}

func TestDirtyTrackingAndMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MergeInterval = 50 * sim.Microsecond
	env, pl, s := fixture(cfg)
	tbl := s.CreateTable(1, 64)
	merged := map[string]string{}
	tbl.MergeFn = func(k, v []byte) { merged[string(k)] = string(v) }
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 100; i++ {
			s.Put(task, 1, key(i), row(i))
		}
		if s.DirtyRows() == 0 {
			t.Error("no dirty rows tracked")
		}
		task.Flush()
		// Merge passes include database-file writes (5ms seeks), so allow
		// a few of them.
		p.Wait(20 * sim.Millisecond)
		if s.DirtyRows() != 0 {
			t.Errorf("dirty=%d after merge window", s.DirtyRows())
		}
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 100 {
		t.Fatalf("merged %d rows", len(merged))
	}
	if merged[string(key(5))] != string(row(5)) {
		t.Fatal("merged wrong value")
	}
	if s.Merged() != 100 {
		t.Fatalf("Merged()=%d", s.Merged())
	}
}

func TestEvictionAndFaultPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityRows = 200
	cfg.EvictBatch = 4
	env, pl, s := fixture(cfg)
	s.CreateTable(1, 16) // small order: many leaves
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 600; i++ {
			s.Put(task, 1, key(i), row(i))
		}
		if s.Evictions() == 0 {
			t.Error("no evictions despite exceeding capacity")
		}
		// Every row must still be readable; evicted leaves fault in.
		for i := 0; i < 600; i++ {
			v, ok := s.Get(task, 1, key(i))
			if !ok || !bytes.Equal(v, row(i)) {
				t.Errorf("key %d unreadable after eviction", i)
				return
			}
		}
		if s.Faults() == 0 {
			t.Error("reads of evicted leaves did not fault")
		}
		task.Flush()
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCostsDatabaseFileRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityRows = 100
	cfg.EvictBatch = 16
	env, pl, s := fixture(cfg)
	s.CreateTable(1, 16)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 400; i++ {
			s.Put(task, 1, key(i), row(i))
		}
		task.Flush()
		diskReadsBefore := pl.Disk.Ops()
		start := p.Now()
		// Probe keys until one faults (cold leaf).
		faultsBefore := s.Faults()
		for i := 0; i < 400 && s.Faults() == faultsBefore; i++ {
			s.Get(task, 1, key(i))
			task.Flush()
		}
		if s.Faults() == faultsBefore {
			t.Error("no faulting probe found")
			return
		}
		if pl.Disk.Ops() == diskReadsBefore {
			t.Error("fault did not read database files")
		}
		if p.Now().Sub(start) < 5*sim.Millisecond {
			t.Errorf("faulting path took %v, expected a disk seek", p.Now().Sub(start))
		}
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRangeStreamsRows(t *testing.T) {
	env, pl, s := fixture(DefaultConfig())
	s.CreateTable(1, 32)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 300; i++ {
			s.Put(task, 1, key(i), row(i))
		}
		var got []int
		s.ScanRange(task, 1, key(100), key(120), func(k, v []byte) bool {
			got = append(got, int(storage.DecodeUint64(k)))
			return true
		})
		if len(got) != 20 || got[0] != 100 || got[19] != 119 {
			t.Errorf("scan got %v", got)
		}
		task.Flush()
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesChargeBpoolComponent(t *testing.T) {
	env, pl, s := fixture(DefaultConfig())
	s.CreateTable(1, 64)
	bd := &stats.Breakdown{}
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], bd)
		s.Put(task, 1, key(1), row(1))
		task.Flush()
		s.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.CompBpool) == 0 {
		t.Fatal("overlay write charged nothing to Bpool")
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	env, _, s := fixture(DefaultConfig())
	s.CreateTable(1, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		_ = env
	}()
	s.CreateTable(1, 64)
}

// TestSmallestDirty checks the bounded selection matches a full sort's
// prefix for budgets below, at, and above the set size.
func TestSmallestDirty(t *testing.T) {
	r := sim.NewRand(11)
	dirty := make(map[string]struct{})
	for i := 0; i < 500; i++ {
		dirty[fmt.Sprintf("k%06d", r.Intn(1000000))] = struct{}{}
	}
	all := make([]string, 0, len(dirty))
	for k := range dirty {
		all = append(all, k)
	}
	sort.Strings(all)
	for _, budget := range []int{0, 1, 7, 100, len(all), len(all) + 50} {
		got := smallestDirty(dirty, budget)
		want := all
		if budget < len(all) {
			want = all[:budget]
		}
		if budget <= 0 {
			want = nil
		}
		if len(got) != len(want) {
			t.Fatalf("budget %d: got %d keys, want %d", budget, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("budget %d: key %d is %q, want %q", budget, i, got[i], want[i])
			}
		}
	}
}
