// Package queueengine models the paper's §5.5 hardware queue-management
// support: QOLB-style on-chip queue primitives that make enqueue and
// dequeue nearly free of coherence traffic. The engine is deliberately
// thin — the paper itself notes hardware "will not magically solve the
// scheduling problem", so scheduling stays in software (package dora) and
// this unit only removes the per-operation overhead.
package queueengine

import "bionicdb/internal/platform"

// Config tunes the unit.
type Config struct {
	// Slots is the number of concurrent queue operations the engine
	// pipelines.
	Slots int
	// OpCycles is the fabric occupancy of one enqueue or dequeue.
	OpCycles int
}

// DefaultConfig returns the calibrated parameters: a 4-wide pipeline at a
// few cycles per operation.
func DefaultConfig() Config { return Config{Slots: 4, OpCycles: 3} }

// Engine is the hardware queue manager.
type Engine struct {
	cfg  Config
	Unit *platform.HWUnit
}

// New creates the queue engine on pl.
func New(pl *platform.Platform, cfg Config) *Engine {
	return &Engine{cfg: cfg, Unit: pl.NewHWUnit("queue-engine", cfg.Slots)}
}

// OpCycles returns the per-operation fabric occupancy for partitions to
// charge.
func (e *Engine) OpCycles() int { return e.cfg.OpCycles }

// Ops returns the number of queue operations served.
func (e *Engine) Ops() int64 { return e.Unit.Ops() }
