package queueengine

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
)

func TestEngineServesOps(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	e := New(pl, DefaultConfig())
	for i := 0; i < 10; i++ {
		env.Spawn("op", func(p *sim.Proc) {
			e.Unit.Work(p, e.OpCycles())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Ops() != 10 {
		t.Fatalf("ops=%d", e.Ops())
	}
	// 10 ops, 4 slots, 3 cycles (~20ns) each: ~3 waves.
	if env.Now() > sim.Time(100*sim.Nanosecond) {
		t.Fatalf("queue ops took %v", env.Now())
	}
}

func TestOpCyclesConfigurable(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	e := New(pl, Config{Slots: 1, OpCycles: 30})
	if e.OpCycles() != 30 {
		t.Fatalf("op cycles %d", e.OpCycles())
	}
	env.Spawn("op", func(p *sim.Proc) { e.Unit.Work(p, e.OpCycles()) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 30 * pl.Cfg.FPGACycle()
	if sim.Duration(env.Now()) != want {
		t.Fatalf("one op took %v, want %v", env.Now(), want)
	}
}
