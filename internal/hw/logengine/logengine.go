// Package logengine models the paper's §5.4 hardware log-insertion engine.
// Worker cores append records to core-private staging buffers — no central
// latch, a fraction of the software insert cost. A software log-sync daemon
// (Figure 4 keeps "log sync & recovery" on the CPU) periodically, or when a
// commit kicks it, collects all staging buffers, ships them over the
// engine's link to the FPGA where the unit arbitrates them into a single
// ordered stream, and writes the ordered batch to the CPU-side SSD.
// Per-socket aggregation and hardware arbitration replace the lock-free
// consolidation machinery of software logs [7].
//
// On a sharded-log machine each socket runs its own engine shard (NewShard):
// its own arbitration unit, staging set, sync daemon, log link and SSD —
// which removes the socket-0 funnel a single engine imposes on a scaled-out
// machine.
package logengine

import (
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// Config tunes the engine.
type Config struct {
	// AppendInstr is the CPU cost of one staged append (thread-local, no
	// latch): descriptor write plus record encode bookkeeping.
	AppendInstr int
	// CopyInstrPerByte is the per-byte staging copy cost.
	CopyInstrPerByte float64
	// ArbCyclesPerRecord is the FPGA arbitration cost per record.
	ArbCyclesPerRecord int
	// SyncInterval is the periodic log-sync cadence; commits kick an
	// immediate sync as well.
	SyncInterval sim.Duration
	// SyncCPUInstr is the daemon's per-collection CPU cost per core buffer.
	SyncCPUInstr int
}

// DefaultConfig returns the calibrated engine parameters.
func DefaultConfig() Config {
	return Config{
		AppendInstr:        70,
		CopyInstrPerByte:   0.25,
		ArbCyclesPerRecord: 2,
		SyncInterval:       30 * sim.Microsecond,
		SyncCPUInstr:       120,
	}
}

// Engine implements wal.Appender over the hardware path.
//
// LSNs returned by Append are durability horizons measured in staged bytes
// (monotone, byte-denominated like the software manager's, though the
// arbitration unit assigns the final intra-epoch byte order when it
// collects an epoch). An epoch collects every staging buffer atomically, so
// by the time an epoch is durable, every record appended before the
// collection — in particular everything a committing transaction staged
// from any core — is durable with it, and the engine's durable horizon
// equals its store's byte length. Recovery reads the Store's byte stream
// and compares horizons against its length, exactly as for a software
// shard.
type Engine struct {
	cfg   Config
	pl    *platform.Platform
	store *wal.Store
	unit  *platform.HWUnit
	link  *platform.Device // host->FPGA->host crossing for epoch batches
	home  *platform.Core   // core the log-sync daemon runs on

	staging   [][]byte // per-core staged record bytes (global core index)
	stageAddr []uint64
	counts    []int // records per staging buffer

	handle  wal.LSN // horizon of the last staged record, in bytes
	durable wal.LSN // horizons <= durable are on the SSD

	waiters []hwWaiter
	kick    *sim.Queue[struct{}]
	stopped bool

	spareBatch []byte // retired epoch batch, reused for the next epoch
	appends    int64
	syncs      int64
}

type hwWaiter struct {
	h    wal.LSN
	done *sim.Signal
}

// New creates the whole-machine hardware log engine — one arbitration unit
// and one sync daemon for every core, the paper's single-socket
// configuration — and spawns its log-sync daemon.
func New(pl *platform.Platform, store *wal.Store, cfg Config) *Engine {
	return newEngine(pl, store, cfg, "log-insert", pl.Cores[len(pl.Cores)-1], pl.PCIe)
}

// NewShard creates one socket's engine shard: its own arbitration unit,
// its sync daemon on the socket's last core, and the socket's log link and
// store. Any core may stage into it (a coordinator on another socket
// writing a commit record to this shard), but in steady state only the
// socket's own cores do.
func NewShard(pl *platform.Platform, store *wal.Store, cfg Config, socket int) *Engine {
	sock := pl.Sockets[socket]
	return newEngine(pl, store, cfg, fmt.Sprintf("log-insert-s%d", socket),
		sock.Cores[len(sock.Cores)-1], pl.LogLink(socket))
}

func newEngine(pl *platform.Platform, store *wal.Store, cfg Config, name string, home *platform.Core, link *platform.Device) *Engine {
	e := &Engine{
		cfg:     cfg,
		pl:      pl,
		store:   store,
		unit:    pl.NewHWUnit(name, 4),
		link:    link,
		home:    home,
		staging: make([][]byte, len(pl.Cores)),
		counts:  make([]int, len(pl.Cores)),
		handle:  store.Durable(),
		durable: store.Durable(),
		kick:    sim.NewQueue[struct{}](pl.Env, name+"-kick", 1),
	}
	for i := 0; i < len(pl.Cores); i++ {
		e.stageAddr = append(e.stageAddr, pl.AllocHost(64<<10))
	}
	pl.Env.Spawn(name+"-sync", func(p *sim.Proc) { e.syncLoop(p) })
	return e
}

// Append implements wal.Appender: a latch-free staged insert on the
// caller's core. Commit records kick an immediate sync so group-commit
// latency stays bounded.
func (e *Engine) Append(t *platform.Task, rec *wal.Record) wal.LSN {
	e.appends++
	core := t.Core().ID
	size := rec.EncodedSize()
	t.Exec(stats.CompLog, e.cfg.AppendInstr+int(float64(size)*e.cfg.CopyInstrPerByte))
	t.Access(stats.CompLog, e.stageAddr[core]+uint64(len(e.staging[core])%(64<<10)), size)
	e.handle += wal.LSN(size)
	rec.LSN = e.handle
	e.staging[core] = rec.Encode(e.staging[core])
	e.counts[core]++
	if rec.Type == wal.RecCommit || rec.Type == wal.RecAbort || len(e.staging[core]) >= 16<<10 {
		e.kick.TryPut(struct{}{})
	}
	return e.handle
}

// CommitDurable implements wal.Appender against staged-byte horizons.
func (e *Engine) CommitDurable(h wal.LSN, done *sim.Signal) {
	if h <= e.durable {
		done.Fire(nil)
		return
	}
	e.waiters = append(e.waiters, hwWaiter{h: h, done: done})
}

// Durable implements wal.Appender (staged-byte watermark).
func (e *Engine) Durable() wal.LSN { return e.durable }

// Appends returns the number of records staged.
func (e *Engine) Appends() int64 { return e.appends }

// Syncs returns the number of collection epochs flushed.
func (e *Engine) Syncs() int64 { return e.syncs }

// ShardStats reports the shard's sync count; every hardware sync is one
// arbitration epoch.
func (e *Engine) ShardStats() (syncs, epochs int64) { return e.syncs, e.syncs }

// Stop quiesces the sync daemon after draining staged records.
func (e *Engine) Stop() {
	e.stopped = true
	if !e.kick.Closed() {
		e.kick.TryPut(struct{}{})
	}
}

func (e *Engine) syncLoop(p *sim.Proc) {
	// The daemon runs on the engine's home core: Figure 4's "log sync" box
	// (the socket's last core for a shard).
	for {
		if e.kick.Len() == 0 {
			p.Wait(e.cfg.SyncInterval)
		}
		e.kick.TryGet()
		e.syncOnce(p, e.home)
		if e.stopped && e.pending() == 0 {
			return
		}
	}
}

func (e *Engine) pending() int {
	total := 0
	for _, s := range e.staging {
		total += len(s)
	}
	return total
}

// syncOnce collects one epoch: all staging buffers, one link push to the
// unit for arbitration, then the ordered batch to the SSD.
func (e *Engine) syncOnce(p *sim.Proc, core *platform.Core) {
	// The staging buffers and the epoch batch are reused across epochs:
	// the batch append copies staged bytes out synchronously, so the
	// truncated staging arrays are free for new appends even while the
	// epoch's device write is still in flight.
	batch := e.spareBatch[:0]
	e.spareBatch = nil
	records := 0
	task := e.pl.NewTask(p, core, nil)
	for i := range e.staging {
		if len(e.staging[i]) == 0 {
			continue
		}
		task.Exec(stats.CompLog, e.cfg.SyncCPUInstr)
		batch = append(batch, e.staging[i]...)
		records += e.counts[i]
		e.staging[i] = e.staging[i][:0]
		e.counts[i] = 0
	}
	epochHandle := e.handle // everything staged before this point is in the batch
	task.Flush()
	if len(batch) == 0 {
		e.spareBatch = batch[:0]
		return
	}
	e.syncs++
	// Host -> FPGA: the staged records cross the link once, batched.
	e.link.Transfer(p, len(batch))
	// Arbitration: the unit merges the per-core streams into final order.
	e.unit.Work(p, records*e.cfg.ArbCyclesPerRecord)
	// FPGA -> host -> SSD: the ordered epoch lands in the log file.
	e.link.Transfer(p, len(batch))
	e.store.Write(p, batch)
	e.spareBatch = batch[:0]
	e.durable = epochHandle
	kept := e.waiters[:0]
	for _, w := range e.waiters {
		if w.h <= e.durable {
			w.done.Fire(nil)
		} else {
			kept = append(kept, w)
		}
	}
	e.waiters = kept
}
