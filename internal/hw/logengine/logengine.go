// Package logengine models the paper's §5.4 hardware log-insertion engine.
// Worker cores append records to core-private staging buffers — no central
// latch, a fraction of the software insert cost. A software log-sync daemon
// (Figure 4 keeps "log sync & recovery" on the CPU) periodically, or when a
// commit kicks it, collects all staging buffers, ships them over PCIe to
// the FPGA where the unit arbitrates them into a single ordered stream, and
// writes the ordered batch to the CPU-side SSD. Per-socket aggregation and
// hardware arbitration replace the lock-free consolidation machinery of
// software logs [7].
package logengine

import (
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// Config tunes the engine.
type Config struct {
	// AppendInstr is the CPU cost of one staged append (thread-local, no
	// latch): descriptor write plus record encode bookkeeping.
	AppendInstr int
	// CopyInstrPerByte is the per-byte staging copy cost.
	CopyInstrPerByte float64
	// ArbCyclesPerRecord is the FPGA arbitration cost per record.
	ArbCyclesPerRecord int
	// SyncInterval is the periodic log-sync cadence; commits kick an
	// immediate sync as well.
	SyncInterval sim.Duration
	// SyncCPUInstr is the daemon's per-collection CPU cost per core buffer.
	SyncCPUInstr int
}

// DefaultConfig returns the calibrated engine parameters.
func DefaultConfig() Config {
	return Config{
		AppendInstr:        70,
		CopyInstrPerByte:   0.25,
		ArbCyclesPerRecord: 2,
		SyncInterval:       30 * sim.Microsecond,
		SyncCPUInstr:       120,
	}
}

// Engine implements wal.Appender over the hardware path.
//
// LSNs returned by Append are durability handles (monotone record sequence
// numbers), not byte offsets: final byte order is assigned when the unit
// arbitrates a collection epoch. An epoch collects every staging buffer
// atomically, so by the time an epoch is durable, every record appended
// before the collection — in particular everything a committing
// transaction staged from any core — is durable with it. Recovery reads
// the Store's byte stream and never sees handles.
type Engine struct {
	cfg   Config
	pl    *platform.Platform
	store *wal.Store
	unit  *platform.HWUnit

	staging   [][]byte // per-core staged record bytes
	stageAddr []uint64
	counts    []int // records per staging buffer

	handle  wal.LSN // next record handle (1-based)
	durable wal.LSN // handles <= durable are on the SSD

	waiters []hwWaiter
	kick    *sim.Queue[struct{}]
	stopped bool

	spareBatch []byte // retired epoch batch, reused for the next epoch
	appends    int64
	syncs      int64
}

type hwWaiter struct {
	h    wal.LSN
	done *sim.Signal
}

// New creates the hardware log engine and spawns its log-sync daemon.
func New(pl *platform.Platform, store *wal.Store, cfg Config) *Engine {
	e := &Engine{
		cfg:     cfg,
		pl:      pl,
		store:   store,
		unit:    pl.NewHWUnit("log-insert", 4),
		staging: make([][]byte, len(pl.Cores)),
		counts:  make([]int, len(pl.Cores)),
		kick:    sim.NewQueue[struct{}](pl.Env, "logengine-kick", 1),
	}
	for i := 0; i < len(pl.Cores); i++ {
		e.stageAddr = append(e.stageAddr, pl.AllocHost(64<<10))
	}
	pl.Env.Spawn("log-sync", func(p *sim.Proc) { e.syncLoop(p) })
	return e
}

// Append implements wal.Appender: a latch-free staged insert on the
// caller's core. Commit records kick an immediate sync so group-commit
// latency stays bounded.
func (e *Engine) Append(t *platform.Task, rec *wal.Record) wal.LSN {
	e.appends++
	core := t.Core().ID
	size := rec.EncodedSize()
	t.Exec(stats.CompLog, e.cfg.AppendInstr+int(float64(size)*e.cfg.CopyInstrPerByte))
	t.Access(stats.CompLog, e.stageAddr[core]+uint64(len(e.staging[core])%(64<<10)), size)
	e.handle++
	rec.LSN = e.handle
	e.staging[core] = rec.Encode(e.staging[core])
	e.counts[core]++
	if rec.Type == wal.RecCommit || rec.Type == wal.RecAbort || len(e.staging[core]) >= 16<<10 {
		e.kick.TryPut(struct{}{})
	}
	return e.handle
}

// CommitDurable implements wal.Appender against record handles.
func (e *Engine) CommitDurable(h wal.LSN, done *sim.Signal) {
	if h <= e.durable {
		done.Fire(nil)
		return
	}
	e.waiters = append(e.waiters, hwWaiter{h: h, done: done})
}

// Durable implements wal.Appender (handle watermark).
func (e *Engine) Durable() wal.LSN { return e.durable }

// Appends returns the number of records staged.
func (e *Engine) Appends() int64 { return e.appends }

// Syncs returns the number of collection epochs flushed.
func (e *Engine) Syncs() int64 { return e.syncs }

// Stop quiesces the sync daemon after draining staged records.
func (e *Engine) Stop() {
	e.stopped = true
	if !e.kick.Closed() {
		e.kick.TryPut(struct{}{})
	}
}

func (e *Engine) syncLoop(p *sim.Proc) {
	// The daemon runs on the last core: Figure 4's "log sync" box.
	core := e.pl.Cores[len(e.pl.Cores)-1]
	for {
		if e.kick.Len() == 0 {
			p.Wait(e.cfg.SyncInterval)
		}
		e.kick.TryGet()
		e.syncOnce(p, core)
		if e.stopped && e.pending() == 0 {
			return
		}
	}
}

func (e *Engine) pending() int {
	total := 0
	for _, s := range e.staging {
		total += len(s)
	}
	return total
}

// syncOnce collects one epoch: all staging buffers, one PCIe push to the
// unit for arbitration, then the ordered batch to the SSD.
func (e *Engine) syncOnce(p *sim.Proc, core *platform.Core) {
	// The staging buffers and the epoch batch are reused across epochs:
	// the batch append copies staged bytes out synchronously, so the
	// truncated staging arrays are free for new appends even while the
	// epoch's device write is still in flight.
	batch := e.spareBatch[:0]
	e.spareBatch = nil
	records := 0
	task := e.pl.NewTask(p, core, nil)
	for i := range e.staging {
		if len(e.staging[i]) == 0 {
			continue
		}
		task.Exec(stats.CompLog, e.cfg.SyncCPUInstr)
		batch = append(batch, e.staging[i]...)
		records += e.counts[i]
		e.staging[i] = e.staging[i][:0]
		e.counts[i] = 0
	}
	epochHandle := e.handle // everything staged before this point is in the batch
	task.Flush()
	if len(batch) == 0 {
		e.spareBatch = batch[:0]
		return
	}
	e.syncs++
	// Host -> FPGA: the staged records cross PCIe once, batched.
	e.pl.PCIe.Transfer(p, len(batch))
	// Arbitration: the unit merges the per-core streams into final order.
	e.unit.Work(p, records*e.cfg.ArbCyclesPerRecord)
	// FPGA -> host -> SSD: the ordered epoch lands in the log file.
	e.pl.PCIe.Transfer(p, len(batch))
	e.store.Write(p, batch)
	e.spareBatch = batch[:0]
	e.durable = epochHandle
	kept := e.waiters[:0]
	for _, w := range e.waiters {
		if w.h <= e.durable {
			w.done.Fire(nil)
		} else {
			kept = append(kept, w)
		}
	}
	e.waiters = kept
}
