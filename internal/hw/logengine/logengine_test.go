package logengine

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

func fixture() (*sim.Env, *platform.Platform, *wal.Store, *Engine) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	store := wal.NewStore(pl.SSD)
	e := New(pl, store, DefaultConfig())
	return env, pl, store, e
}

func TestAppendAndCommitDurable(t *testing.T) {
	env, pl, store, e := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		rec := wal.Record{Txn: 1, Type: wal.RecInsert, Key: []byte("k"), After: []byte("v")}
		e.Append(task, &rec)
		commit := wal.Record{Txn: 1, Type: wal.RecCommit}
		h := e.Append(task, &commit)
		task.Flush()
		done := sim.NewSignal(env)
		e.CommitDurable(h, done)
		done.Await(p)
		if e.Durable() < h {
			t.Error("durable watermark behind commit")
		}
		e.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The durable stream must decode to both records.
	var types []wal.RecType
	if err := wal.Scan(store.Bytes(), 0, func(r wal.Record) bool {
		types = append(types, r.Type)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != wal.RecInsert || types[1] != wal.RecCommit {
		t.Fatalf("durable types %v", types)
	}
}

func TestCrossCoreRecordsDurableWithCommit(t *testing.T) {
	// Records staged on different cores must all be durable once a later
	// commit (on yet another core) acks — the epoch-collection guarantee.
	env, pl, store, e := fixture()
	var handles []wal.LSN
	env.Spawn("worker0", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		rec := wal.Record{Txn: 7, Type: wal.RecInsert, Key: []byte("a"), After: []byte("x")}
		handles = append(handles, e.Append(task, &rec))
		task.Flush()
	})
	env.Spawn("worker1", func(p *sim.Proc) {
		p.Wait(sim.Microsecond)
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rec := wal.Record{Txn: 7, Type: wal.RecUpdate, Key: []byte("b"), After: []byte("y")}
		handles = append(handles, e.Append(task, &rec))
		task.Flush()
	})
	env.Spawn("coordinator", func(p *sim.Proc) {
		p.Wait(2 * sim.Microsecond)
		task := pl.NewTask(p, pl.Cores[2], &stats.Breakdown{})
		commit := wal.Record{Txn: 7, Type: wal.RecCommit}
		h := e.Append(task, &commit)
		task.Flush()
		done := sim.NewSignal(env)
		e.CommitDurable(h, done)
		done.Await(p)
		// All earlier handles must be durable now.
		for _, prior := range handles {
			if prior > e.Durable() {
				t.Errorf("handle %d not durable at commit ack", prior)
			}
		}
		e.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := wal.Scan(store.Bytes(), 0, func(r wal.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("durable records = %d, want 3", n)
	}
}

func TestNoLatchCheaperThanSoftware(t *testing.T) {
	// The hardware append path must charge materially less CPU than the
	// software log manager for the same record.
	rec := func() wal.Record {
		return wal.Record{Txn: 1, Type: wal.RecInsert, Key: []byte("key"), After: make([]byte, 120)}
	}
	hwCPU := func() sim.Duration {
		env, pl, _, e := fixture()
		bd := &stats.Breakdown{}
		env.Spawn("w", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Cores[0], bd)
			r := rec()
			e.Append(task, &r)
			task.Flush()
			e.Stop()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return bd.Get(stats.CompLog)
	}()
	swCPU := func() sim.Duration {
		env := sim.NewEnv()
		pl := platform.New(env, platform.HC2())
		store := wal.NewStore(pl.SSD)
		m := wal.NewManager(pl, store, wal.DefaultManagerConfig())
		bd := &stats.Breakdown{}
		env.Spawn("w", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Cores[0], bd)
			r := rec()
			m.Append(task, &r)
			task.Flush()
			m.Stop()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return bd.Get(stats.CompLog)
	}()
	if hwCPU >= swCPU {
		t.Fatalf("hardware append CPU %v not below software %v", hwCPU, swCPU)
	}
}

func TestPeriodicSyncWithoutCommit(t *testing.T) {
	env, pl, store, e := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		rec := wal.Record{Txn: 1, Type: wal.RecInsert, Key: []byte("k"), After: []byte("v")}
		e.Append(task, &rec)
		task.Flush()
		p.Wait(100 * sim.Microsecond) // > SyncInterval
		if store.Durable() == 0 {
			t.Error("periodic sync did not flush")
		}
		e.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Syncs() < 1 {
		t.Fatalf("syncs=%d", e.Syncs())
	}
}

func TestManyWritersNoLatchQueueing(t *testing.T) {
	// Eight cores appending concurrently should see no cross-core stalls:
	// makespan ~= per-core serial cost, not 8x.
	env, pl, _, e := fixture()
	const perCore = 100
	for c := 0; c < 8; c++ {
		c := c
		env.Spawn("w", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Cores[c], &stats.Breakdown{})
			for i := 0; i < perCore; i++ {
				rec := wal.Record{Txn: uint64(c), Type: wal.RecInsert, Key: []byte("key"), After: make([]byte, 100)}
				e.Append(task, &rec)
			}
			task.Flush()
		})
	}
	if err := env.RunUntil(sim.Time(10 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if e.Appends() != 800 {
		t.Fatalf("appends=%d", e.Appends())
	}
}
