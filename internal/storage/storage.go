// Package storage provides the durable substrate shared by every engine:
// page identity, a disk manager that keeps durable page images on a
// simulated device, order-preserving key encodings, and a compact record
// encoder. Volatile structures (B+Trees, the overlay) live in ordinary Go
// memory; durability comes from checkpointed page images plus the WAL.
package storage

import (
	"encoding/binary"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
)

// PageID names a durable page.
type PageID uint64

// InvalidPage is the zero PageID, never allocated.
const InvalidPage PageID = 0

// DiskManager owns the durable page images of one device (the SAS array or
// the SSD). Reads and writes charge the device's latency and bandwidth.
// Images are copied on both paths, so a crash test can discard all volatile
// state and trust the manager's contents.
type DiskManager struct {
	dev      *platform.Device
	pageSize int
	pages    map[PageID][]byte
	nextID   PageID
	reads    int64
	writes   int64
}

// NewDiskManager creates a disk manager for pages of pageSize bytes on dev.
func NewDiskManager(dev *platform.Device, pageSize int) *DiskManager {
	return &DiskManager{
		dev:      dev,
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		nextID:   1,
	}
}

// PageSize returns the configured page size.
func (dm *DiskManager) PageSize() int { return dm.pageSize }

// Allocate reserves a new page identity (no I/O is charged).
func (dm *DiskManager) Allocate() PageID {
	id := dm.nextID
	dm.nextID++
	return id
}

// AllocatorOn returns a page-identity allocator private to one socket of an
// nSockets-socket machine: socket s draws from the strided sequence
// 1+s, 1+s+nSockets, 1+s+2*nSockets, ... so per-socket tree structures on
// concurrent kernel shards never contend on (or race over) one counter, and
// no two sockets can allocate the same identity. Engines using AllocatorOn
// must not mix in calls to Allocate on the same manager.
func (dm *DiskManager) AllocatorOn(socket, nSockets int) func() PageID {
	next := PageID(1 + socket)
	return func() PageID {
		id := next
		next += PageID(nSockets)
		return id
	}
}

// spanPages returns how many on-device pages an image of n bytes occupies
// (at least one; a wide B+Tree node's checkpoint image may span several).
func (dm *DiskManager) spanPages(n int) int {
	pages := (n + dm.pageSize - 1) / dm.pageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// SpanBytes returns the on-device footprint of an image of n bytes (whole
// pages).
func (dm *DiskManager) SpanBytes(n int) int { return dm.spanPages(n) * dm.pageSize }

// Write stores a durable copy of data as page id, charging one device write
// per page the image spans.
func (dm *DiskManager) Write(p *sim.Proc, id PageID, data []byte) {
	dm.writes++
	dm.dev.Transfer(p, dm.spanPages(len(data))*dm.pageSize)
	img := make([]byte, len(data))
	copy(img, data)
	dm.pages[id] = img
}

// Read returns a copy of page id's durable image, charging one device read
// per page the image spans. Reading a never-written page returns nil.
func (dm *DiskManager) Read(p *sim.Proc, id PageID) []byte {
	dm.reads++
	img, ok := dm.pages[id]
	if !ok {
		dm.dev.Transfer(p, dm.pageSize)
		return nil
	}
	dm.dev.Transfer(p, dm.spanPages(len(img))*dm.pageSize)
	out := make([]byte, len(img))
	copy(out, img)
	return out
}

// Store installs a durable copy of data as page id without charging I/O —
// for bulk writers (the sharp checkpointer) that stream many pages and
// account the device time as one sequential transfer via Device().
func (dm *DiskManager) Store(id PageID, data []byte) {
	dm.writes++
	img := make([]byte, len(data))
	copy(img, data)
	dm.pages[id] = img
}

// ReadRaw returns page id's durable image without charging I/O — for
// recovery paths that account their device time in bulk (a boot restores
// the checkpoint with one sequential scan, not a random read per page).
func (dm *DiskManager) ReadRaw(id PageID) []byte {
	img, ok := dm.pages[id]
	if !ok {
		return nil
	}
	out := make([]byte, len(img))
	copy(out, img)
	return out
}

// Device returns the device this manager charges.
func (dm *DiskManager) Device() *platform.Device { return dm.dev }

// Rebind returns a disk manager over the same durable page images charging
// a different device — how a recovery boot on a fresh platform reads the
// page images that survived a crash. The images are shared, not copied;
// the rebound manager is for read-mostly recovery use.
func (dm *DiskManager) Rebind(dev *platform.Device) *DiskManager {
	return &DiskManager{dev: dev, pageSize: dm.pageSize, pages: dm.pages, nextID: dm.nextID}
}

// Exists reports whether page id has a durable image (no I/O charged).
func (dm *DiskManager) Exists(id PageID) bool { _, ok := dm.pages[id]; return ok }

// Reads returns the number of page reads issued.
func (dm *DiskManager) Reads() int64 { return dm.reads }

// Writes returns the number of page writes issued.
func (dm *DiskManager) Writes() int64 { return dm.writes }

// --- Order-preserving key encodings ---
//
// B+Tree keys are byte strings compared lexicographically. These helpers
// encode fixed-width integers so that byte order matches numeric order.

// EncodeUint64 appends an order-preserving encoding of v to dst.
func EncodeUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// Uint64Key returns a fresh order-preserving key for v.
func Uint64Key(v uint64) []byte { return EncodeUint64(nil, v) }

// DecodeUint64 reads an order-preserving uint64 from the front of b.
func DecodeUint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// CompositeKey builds an order-preserving key from fixed-width integer
// parts, for multi-column primary keys like (warehouse, district, order).
func CompositeKey(parts ...uint64) []byte {
	out := make([]byte, 0, 8*len(parts))
	for _, p := range parts {
		out = EncodeUint64(out, p)
	}
	return out
}

// --- Record encoding ---
//
// Rows are encoded as a sequence of typed fields. The format is
// length-prefixed per string field and fixed-width for integers, written
// with encoding/binary; it is compact, deterministic and self-contained so
// WAL before/after images can round-trip rows.

// RecordWriter builds one encoded row.
type RecordWriter struct {
	buf []byte
}

// NewRecordWriter returns a writer with an optional initial capacity.
func NewRecordWriter(capacity int) *RecordWriter {
	return &RecordWriter{buf: make([]byte, 0, capacity)}
}

// Uint64 appends a fixed-width integer field.
func (w *RecordWriter) Uint64(v uint64) *RecordWriter {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Uint32 appends a fixed-width 32-bit field.
func (w *RecordWriter) Uint32(v uint32) *RecordWriter {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
	return w
}

// Bytes appends a length-prefixed variable-width field (max 64 KiB).
func (w *RecordWriter) Bytes(v []byte) *RecordWriter {
	if len(v) > 1<<16-1 {
		panic("storage: record field exceeds 64KiB")
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(v)))
	w.buf = append(w.buf, b[:]...)
	w.buf = append(w.buf, v...)
	return w
}

// String appends a length-prefixed string field.
func (w *RecordWriter) String(v string) *RecordWriter { return w.Bytes([]byte(v)) }

// Finish returns the encoded row. The writer can be reused after Reset.
func (w *RecordWriter) Finish() []byte { return w.buf }

// Len returns the current encoded size.
func (w *RecordWriter) Len() int { return len(w.buf) }

// Reset clears the writer for reuse.
func (w *RecordWriter) Reset() { w.buf = w.buf[:0] }

// RecordReader decodes a row written by RecordWriter in field order.
type RecordReader struct {
	buf []byte
	off int
}

// NewRecordReader wraps an encoded row.
func NewRecordReader(buf []byte) *RecordReader { return &RecordReader{buf: buf} }

// Uint64 reads the next fixed-width integer field.
func (r *RecordReader) Uint64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Uint32 reads the next fixed-width 32-bit field.
func (r *RecordReader) Uint32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Bytes reads the next variable-width field (a view into the record).
func (r *RecordReader) Bytes() []byte {
	n := int(binary.LittleEndian.Uint16(r.buf[r.off:]))
	r.off += 2
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// String reads the next variable-width field as a string.
func (r *RecordReader) String() string { return string(r.Bytes()) }

// Remaining returns the number of unread bytes.
func (r *RecordReader) Remaining() int { return len(r.buf) - r.off }
