package storage

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
)

func TestUint64KeyOrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		ka, kb := Uint64Key(a), Uint64Key(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		}
		return cmp == 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64KeyRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 255, 1 << 32, ^uint64(0)} {
		if DecodeUint64(Uint64Key(v)) != v {
			t.Errorf("round trip failed for %d", v)
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	keys := [][]byte{
		CompositeKey(1, 1), CompositeKey(1, 2), CompositeKey(1, 10),
		CompositeKey(2, 0), CompositeKey(2, 1), CompositeKey(10, 0),
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	for i := range keys {
		if !bytes.Equal(keys[i], sorted[i]) {
			t.Fatalf("composite keys not in numeric order at %d", i)
		}
	}
}

func TestRecordWriterReaderRoundTrip(t *testing.T) {
	w := NewRecordWriter(64)
	w.Uint64(42).Uint32(7).String("hello").Bytes([]byte{1, 2, 3}).Uint64(9)
	buf := w.Finish()
	r := NewRecordReader(buf)
	if r.Uint64() != 42 || r.Uint32() != 7 || r.String() != "hello" {
		t.Fatal("scalar fields corrupted")
	}
	if !bytes.Equal(r.Bytes(), []byte{1, 2, 3}) {
		t.Fatal("bytes field corrupted")
	}
	if r.Uint64() != 9 || r.Remaining() != 0 {
		t.Fatal("trailing field corrupted")
	}
}

func TestRecordWriterReset(t *testing.T) {
	w := NewRecordWriter(16)
	w.Uint64(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	w.Uint32(5)
	if NewRecordReader(w.Finish()).Uint32() != 5 {
		t.Fatal("reuse after reset failed")
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(a uint64, b uint32, s string, raw []byte) bool {
		if len(s) > 60000 {
			s = s[:60000]
		}
		if len(raw) > 60000 {
			raw = raw[:60000]
		}
		buf := NewRecordWriter(0).Uint64(a).Uint32(b).String(s).Bytes(raw).Finish()
		r := NewRecordReader(buf)
		return r.Uint64() == a && r.Uint32() == b && r.String() == s && bytes.Equal(r.Bytes(), raw)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskManagerReadWrite(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	dm := NewDiskManager(pl.Disk, 8192)
	id := dm.Allocate()
	if id == InvalidPage {
		t.Fatal("allocated invalid page id")
	}
	env.Spawn("io", func(p *sim.Proc) {
		dm.Write(p, id, []byte("payload"))
		got := dm.Read(p, id)
		if !bytes.Equal(got, []byte("payload")) {
			t.Errorf("read %q", got)
		}
		// Copies must be independent.
		got[0] = 'X'
		again := dm.Read(p, id)
		if again[0] == 'X' {
			t.Error("disk image aliased with returned slice")
		}
		if dm.Read(p, 999) != nil {
			t.Error("read of unwritten page returned data")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dm.Reads() != 3 || dm.Writes() != 1 {
		t.Fatalf("reads=%d writes=%d", dm.Reads(), dm.Writes())
	}
	if !dm.Exists(id) || dm.Exists(999) {
		t.Fatal("existence wrong")
	}
}

func TestDiskManagerChargesDevice(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	dm := NewDiskManager(pl.Disk, 8192)
	id := dm.Allocate()
	env.Spawn("io", func(p *sim.Proc) {
		dm.Write(p, id, make([]byte, 8192))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() < sim.Time(5*sim.Millisecond) {
		t.Fatalf("page write took %v, want >= one seek", env.Now())
	}
}

func TestDiskManagerWideImageSpansPages(t *testing.T) {
	// A checkpoint image wider than one page (a fat B+Tree node) spans
	// multiple on-device pages: it round-trips intact and charges the
	// device for every page it touches.
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	dm := NewDiskManager(pl.Disk, 128)
	img := make([]byte, 300) // 3 pages
	for i := range img {
		img[i] = byte(i)
	}
	id := dm.Allocate()
	var narrow, wide sim.Duration
	env.Spawn("io", func(p *sim.Proc) {
		t0 := p.Now()
		dm.Write(p, dm.Allocate(), make([]byte, 100))
		narrow = p.Now().Sub(t0)
		t0 = p.Now()
		dm.Write(p, id, img)
		wide = p.Now().Sub(t0)
		got := dm.Read(p, id)
		if len(got) != len(img) {
			t.Errorf("read %d bytes, want %d", len(got), len(img))
		}
		for i := range img {
			if got[i] != img[i] {
				t.Errorf("byte %d diverged", i)
				break
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dm.SpanBytes(300) != 3*128 {
		t.Errorf("SpanBytes(300)=%d", dm.SpanBytes(300))
	}
	if wide <= narrow {
		t.Errorf("3-page write (%v) not charged above 1-page write (%v)", wide, narrow)
	}
}
