package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Txn: 1, Type: RecBegin},
		{Txn: 2, Type: RecInsert, Table: 3, Key: []byte("k1"), After: []byte("row-bytes")},
		{Txn: 2, Type: RecUpdate, Table: 3, Key: []byte("k1"), Before: []byte("old"), After: []byte("new")},
		{Txn: 2, Type: RecDelete, Table: 7, Key: []byte("gone"), Before: []byte("victim")},
		{Txn: 2, Type: RecCommit},
		{Txn: 9, Type: RecAbort},
		{Txn: 0, Type: RecCheckpoint},
	}
	var data []byte
	for i := range recs {
		data = recs[i].Encode(data)
	}
	var got []Record
	if err := Scan(data, 0, func(r Record) bool {
		got = append(got, Record{
			LSN: r.LSN, Txn: r.Txn, Type: r.Type, Table: r.Table,
			Key: append([]byte(nil), r.Key...), Before: append([]byte(nil), r.Before...), After: append([]byte(nil), r.After...),
		})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	off := 0
	for i, r := range got {
		w := recs[i]
		if r.Txn != w.Txn || r.Type != w.Type || r.Table != w.Table ||
			!bytes.Equal(r.Key, w.Key) || !bytes.Equal(r.Before, w.Before) || !bytes.Equal(r.After, w.After) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, w)
		}
		if r.LSN != LSN(off) {
			t.Fatalf("record %d LSN %d, want %d", i, r.LSN, off)
		}
		off += w.EncodedSize()
	}
}

func TestRecordEncodedSizeMatches(t *testing.T) {
	if err := quick.Check(func(txn uint64, table uint16, key, before, after []byte) bool {
		if len(key) > 1000 {
			key = key[:1000]
		}
		r := Record{Txn: txn, Type: RecUpdate, Table: table, Key: key, Before: before, After: after}
		return len(r.Encode(nil)) == r.EncodedSize()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestScanTornTail(t *testing.T) {
	r1 := Record{Txn: 1, Type: RecInsert, Key: []byte("a"), After: []byte("x")}
	r2 := Record{Txn: 1, Type: RecCommit}
	data := r2.Encode(r1.Encode(nil))
	// Simulate a torn write: drop the last 3 bytes.
	torn := data[:len(data)-3]
	var seen []RecType
	if err := Scan(torn, 0, func(r Record) bool {
		seen = append(seen, r.Type)
		return true
	}); err != nil {
		t.Fatalf("torn tail should not error: %v", err)
	}
	if len(seen) != 1 || seen[0] != RecInsert {
		t.Fatalf("seen %v, want just the intact first record", seen)
	}
}

func TestScanFromOffset(t *testing.T) {
	r1 := Record{Txn: 1, Type: RecBegin}
	r2 := Record{Txn: 1, Type: RecCommit}
	data := r2.Encode(r1.Encode(nil))
	var seen []RecType
	if err := Scan(data, LSN(r1.EncodedSize()), func(r Record) bool {
		seen = append(seen, r.Type)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != RecCommit {
		t.Fatalf("seen %v", seen)
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, rt := range []RecType{RecBegin, RecCommit, RecAbort, RecInsert, RecUpdate, RecDelete, RecCheckpoint} {
		if s := rt.String(); s == "" || s[0] == 'R' && s != "RecType(99)" && len(s) < 3 {
			t.Errorf("bad name for %d: %q", rt, s)
		}
	}
	if RecType(99).String() != "RecType(99)" {
		t.Error("unknown type name")
	}
}

func newLogFixture() (*sim.Env, *platform.Platform, *Store, *Manager) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	store := NewStore(pl.SSD)
	m := NewManager(pl, store, DefaultManagerConfig())
	return env, pl, store, m
}

func TestManagerAppendAssignsMonotonicLSNs(t *testing.T) {
	env, pl, _, m := newLogFixture()
	var lsns []LSN
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		for i := 0; i < 10; i++ {
			rec := Record{Txn: 1, Type: RecInsert, Key: []byte("k"), After: []byte("v")}
			lsns = append(lsns, m.Append(task, &rec))
		}
		task.Flush()
		m.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not increasing: %v", lsns)
		}
	}
	if m.Appends() != 10 {
		t.Fatalf("appends = %d", m.Appends())
	}
}

func TestGroupCommitFlushesAndWakes(t *testing.T) {
	env, pl, store, m := newLogFixture()
	var commitAt sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		rec := Record{Txn: 1, Type: RecCommit}
		lsn := m.Append(task, &rec)
		task.Flush()
		done := sim.NewSignal(env)
		m.CommitDurable(lsn, done)
		done.Await(p)
		commitAt = p.Now()
		m.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if store.Durable() == 0 {
		t.Fatal("nothing flushed")
	}
	// Group commit means durability arrives on the flush-interval scale.
	if commitAt < sim.Time(20*sim.Microsecond) || commitAt > sim.Time(200*sim.Microsecond) {
		t.Fatalf("commit became durable at %v, want tens of us", commitAt)
	}
}

func TestCommitDurableAlreadyDurable(t *testing.T) {
	env, pl, _, m := newLogFixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		rec := Record{Txn: 1, Type: RecCommit}
		lsn := m.Append(task, &rec)
		task.Flush()
		d1 := sim.NewSignal(env)
		m.CommitDurable(lsn, d1)
		d1.Await(p)
		// Now the LSN is durable; a second waiter must fire immediately.
		d2 := sim.NewSignal(env)
		m.CommitDurable(lsn, d2)
		if !d2.Fired() {
			t.Error("already-durable commit did not fire immediately")
		}
		m.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyFlushOnBytesThreshold(t *testing.T) {
	env, pl, store, m := newLogFixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		big := make([]byte, 4096)
		for i := 0; i < 10; i++ { // 10 × >4KB > 32KB threshold
			rec := Record{Txn: 1, Type: RecInsert, Key: []byte("k"), After: big}
			m.Append(task, &rec)
		}
		task.Flush()
		m.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Flushes() < 1 {
		t.Fatal("no flush")
	}
	if int(store.Durable()) < 10*4096 {
		t.Fatalf("durable %d bytes", store.Durable())
	}
	// Verify the stream decodes.
	n := 0
	if err := Scan(store.Bytes(), 0, func(r Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("decoded %d records", n)
	}
}

func TestLogLatchContentionGrowsWithWriters(t *testing.T) {
	run := func(writers int) sim.Duration {
		env := sim.NewEnv()
		pl := platform.New(env, platform.HC2())
		store := NewStore(pl.SSD)
		m := NewManager(pl, store, DefaultManagerConfig())
		for w := 0; w < writers; w++ {
			w := w
			env.Spawn("w", func(p *sim.Proc) {
				task := pl.NewTask(p, pl.Cores[w%len(pl.Cores)], &stats.Breakdown{})
				for i := 0; i < 200; i++ {
					rec := Record{Txn: uint64(w), Type: RecInsert, Key: []byte("key"), After: make([]byte, 100)}
					m.Append(task, &rec)
				}
				task.Flush()
			})
		}
		env.At(sim.Time(sim.Second), func() {})
		if err := env.RunUntil(sim.Time(sim.Second)); err != nil {
			t.Fatal(err)
		}
		m.Stop()
		return m.LatchWait()
	}
	one := run(1)
	eight := run(8)
	if eight <= one {
		t.Fatalf("latch wait with 8 writers (%v) not above 1 writer (%v)", eight, one)
	}
}

func TestManagerChargesLogComponent(t *testing.T) {
	env, pl, _, m := newLogFixture()
	bd := &stats.Breakdown{}
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], bd)
		rec := Record{Txn: 1, Type: RecInsert, Key: []byte("k"), After: make([]byte, 200)}
		m.Append(task, &rec)
		task.Flush()
		m.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.CompLog) == 0 {
		t.Fatal("no Log mgmt time charged")
	}
	if bd.Get(stats.CompBtree) != 0 {
		t.Fatal("log append charged to wrong component")
	}
}
