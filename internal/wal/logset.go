package wal

import (
	"fmt"
	"sort"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// ShardLSN names one log shard's durability horizon: records appended to
// shard Shard are durable there once the shard's Durable() reaches LSN.
// A transaction's durable point is a vector of these, one per shard it
// logged to.
type ShardLSN struct {
	Shard int
	LSN   LSN
}

// LogShard is one stream of the sharded log: an appender (software manager
// or hardware log engine), its durable store, and the socket it serves.
type LogShard struct {
	App    Appender
	Store  *Store
	Socket int
}

// LogSet is the sharded durable log: one LogShard per socket (or exactly
// one, the classic central log). It is the layer between transaction
// management and the appenders — it routes appends to the caller's
// socket-local shard and turns per-shard durability into the vector durable
// point: a commit is durable only when every shard the transaction touched
// has reached its vector entry.
//
// A single-shard LogSet adds nothing to the simulation: appends route to
// shard 0 with no extra charges and durability waits pass straight through
// to the one appender, so non-sharded runs are bit-identical to the
// pre-LogSet code.
type LogSet struct {
	pl     *platform.Platform
	shards []LogShard
	// repl is the attached replication machinery; nil on an unreplicated
	// machine, where the commit path below is exactly the single-machine
	// code.
	repl *ReplicaSet
	// confined marks an engine-sharded set: every shard's appender lives on
	// its socket's kernel shard, appends must be socket-local, and the
	// vector durable point fans out through CrossAt (CommitDurableFrom).
	confined bool
}

// NewLogSet builds a log set over the given shards. Shard i must serve
// socket i when there is more than one (appends route by the caller's
// socket).
func NewLogSet(pl *platform.Platform, shards []LogShard) *LogSet {
	if len(shards) == 0 {
		panic("wal: LogSet needs at least one shard")
	}
	for i, sh := range shards {
		if len(shards) > 1 && sh.Socket != i {
			panic(fmt.Sprintf("wal: shard %d serves socket %d; sharded sets must be socket-indexed", i, sh.Socket))
		}
	}
	return &LogSet{pl: pl, shards: shards}
}

// NumShards returns the shard count.
func (ls *LogSet) NumShards() int { return len(ls.shards) }

// Shard returns shard i's appender.
func (ls *LogSet) Shard(i int) Appender { return ls.shards[i].App }

// Store returns shard i's durable store.
func (ls *LogSet) Store(i int) *Store { return ls.shards[i].Store }

// ShardFor returns the shard a task's appends route to: the task's socket
// on a sharded set, shard 0 otherwise.
func (ls *LogSet) ShardFor(t *platform.Task) int {
	if len(ls.shards) == 1 {
		return 0
	}
	return t.Core().SocketID()
}

// logMsgBytes is the modeled size of a remote log append descriptor: the
// record header plus a pointer to the payload, one cache line.
const logMsgBytes = 64

// Append routes rec to the given shard, charging the caller's task. On a
// sharded set an append to another socket's shard (a coordinator writing
// its commit record to the transaction's anchor shard) additionally pays
// one interconnect message to carry the record descriptor there;
// socket-local appends — every data record, by construction — pay nothing
// new.
func (ls *LogSet) Append(t *platform.Task, shard int, rec *Record) LSN {
	sh := ls.shards[shard]
	if len(ls.shards) > 1 && ls.pl.IC != nil {
		if from := t.Core().SocketID(); from != sh.Socket {
			if ls.confined {
				// Engine-sharded sets anchor commit records on the caller's
				// socket, so every append is local by construction; a remote
				// append would touch a foreign shard's log buffer directly.
				panic(fmt.Sprintf("wal: cross-socket append (socket %d -> shard %d) on a confined log set", from, shard))
			}
			t.Flush()
			ls.pl.IC.Transfer(t.P, from, sh.Socket, logMsgBytes)
		}
	}
	return sh.App.Append(t, rec)
}

// Durable returns shard i's durable horizon.
func (ls *LogSet) Durable(i int) LSN { return ls.shards[i].App.Durable() }

// DurableVector returns every shard's current durable horizon.
func (ls *LogSet) DurableVector() []LSN {
	out := make([]LSN, len(ls.shards))
	for i, sh := range ls.shards {
		out[i] = sh.App.Durable()
	}
	return out
}

// Confine marks the set engine-sharded: each shard's appender is confined
// to its socket's kernel shard (the engine built them with NewManagerOn),
// appends must be socket-local, and commits use CommitDurableFrom. A
// replicated set cannot be confined — the shippers drain every shard's
// store from shard 0.
func (ls *LogSet) Confine() {
	if ls.repl != nil {
		panic("wal: cannot confine a replicated log set")
	}
	ls.confined = true
}

// Confined reports whether Confine marked this set engine-sharded.
func (ls *LogSet) Confined() bool { return ls.confined }

// AttachReplication wires rs into the commit path: under sync/quorum
// modes CommitDurable waits for replica acknowledgements after the local
// vector durable point. Engines attach at construction, gated on
// Config.Replicated().
func (ls *LogSet) AttachReplication(rs *ReplicaSet) {
	if ls.confined {
		panic("wal: cannot replicate a confined log set")
	}
	ls.repl = rs
}

// Replication returns the attached replica set (nil when unreplicated).
func (ls *LogSet) Replication() *ReplicaSet { return ls.repl }

// CommitDurable fires done once every entry of vec is durable on its shard
// — the vector durable point. A single-entry vector delegates directly to
// the shard's appender (today's group-commit handshake, unchanged); a
// multi-entry vector joins the per-shard completions with no extra
// processes or events.
//
// With replication attached under a waiting mode (sync/quorum), the vector
// durable point extends across machines: done fires only after enough
// replicas have also acknowledged every vector entry. Async mode (and no
// replication) keeps the local-only wait.
func (ls *LogSet) CommitDurable(vec []ShardLSN, done *sim.Signal) {
	if ls.repl != nil && ls.repl.AckNeed() > 0 {
		local := sim.NewSignal(ls.pl.Env)
		local.OnFire(func(any) { ls.repl.AckWaitVec(vec, done) })
		ls.commitLocal(vec, local)
		return
	}
	ls.commitLocal(vec, done)
}

// CommitDurableFrom is CommitDurable for a confined set: the calling task's
// socket is the fan-in point. Each remote vector entry costs one posted
// interconnect message carrying the wait registration to the entry's shard
// (serialized on the sender's own egress port, delivered via CrossAt one
// hop later) and one acknowledgement hop back once the entry is durable;
// done must be homed on the caller's shard and fires there when every entry
// has acknowledged. Socket-local entries register directly, exactly like
// the classic path. On an unconfined set it is CommitDurable unchanged.
func (ls *LogSet) CommitDurableFrom(t *platform.Task, vec []ShardLSN, done *sim.Signal) {
	if !ls.confined {
		ls.CommitDurable(vec, done)
		return
	}
	if len(vec) == 0 {
		done.Fire(nil)
		return
	}
	home := t.Core().SocketID()
	if len(vec) == 1 && vec[0].Shard == home {
		ls.shards[home].App.CommitDurable(vec[0].LSN, done)
		return
	}
	env := ls.pl.Env
	homeShard := ls.pl.ShardOf(home)
	hopLat := ls.pl.Cfg.ICHopLat
	nSock := ls.pl.NumSockets()
	remaining := len(vec)
	dec := func() {
		remaining--
		if remaining == 0 {
			done.Fire(nil)
		}
	}
	t.Flush()
	for _, e := range vec {
		if e.Shard == home {
			sub := sim.NewSignal(env).OnShard(homeShard)
			sub.OnFire(func(any) { dec() })
			ls.shards[e.Shard].App.CommitDurable(e.LSN, sub)
			continue
		}
		e := e
		target := ls.pl.ShardOf(ls.shards[e.Shard].Socket)
		hops := ls.pl.IC.Topo.Hops(e.Shard, home, nSock)
		arrival := ls.pl.IC.Send(t.P, home, e.Shard, logMsgBytes)
		t.P.CrossAt(target, arrival, func() {
			sub := sim.NewSignal(env).OnShard(target)
			sub.OnFire(func(any) {
				// The ack hop back to the fan-in point: counters only — a
				// scheduler callback has no process to serialize a port with.
				ls.pl.IC.NoteSend(e.Shard, home, logMsgBytes)
				at := env.ShardNow(target).Add(sim.Duration(hops) * hopLat)
				env.CrossFrom(target, homeShard, at, dec)
			})
			ls.shards[e.Shard].App.CommitDurable(e.LSN, sub)
		})
	}
}

// commitLocal is the single-machine vector durable point.
func (ls *LogSet) commitLocal(vec []ShardLSN, done *sim.Signal) {
	if len(vec) == 0 {
		done.Fire(nil) // nothing was logged; durable by definition
		return
	}
	if len(vec) == 1 {
		ls.shards[vec[0].Shard].App.CommitDurable(vec[0].LSN, done)
		return
	}
	remaining := len(vec)
	for _, e := range vec {
		sub := sim.NewSignal(ls.pl.Env)
		sub.OnFire(func(any) {
			remaining--
			if remaining == 0 {
				done.Fire(nil)
			}
		})
		ls.shards[e.Shard].App.CommitDurable(e.LSN, sub)
	}
}

// Datas returns every shard's durable byte stream, shard-indexed — the
// crash image recovery replays.
func (ls *LogSet) Datas() [][]byte {
	out := make([][]byte, len(ls.shards))
	for i, sh := range ls.shards {
		out[i] = sh.Store.Bytes()
	}
	return out
}

// StartLSNs returns every shard's current durable horizon as a checkpoint
// start vector.
func (ls *LogSet) StartLSNs() []LSN { return ls.DurableVector() }

// shardStatser is implemented by appenders that report sync/epoch counts.
type shardStatser interface {
	ShardStats() (syncs, epochs int64)
}

// backlogger is implemented by appenders that expose a flush backlog (the
// software Manager; the hardware log engine buffers inside the model and
// reports none).
type backlogger interface {
	Backlog() int
}

// Backlog returns shard i's appended-but-not-yet-flushed byte count, or 0
// when the appender exposes none — the telemetry sampler's flush-backlog
// gauge.
func (ls *LogSet) Backlog(i int) int {
	if b, ok := ls.shards[i].App.(backlogger); ok {
		return b.Backlog()
	}
	return 0
}

// Stats reports per-shard cumulative activity counters (socket, durable
// bytes, syncs, arbitration epochs).
func (ls *LogSet) Stats() []stats.LogShardStats {
	out := make([]stats.LogShardStats, len(ls.shards))
	for i, sh := range ls.shards {
		st := stats.LogShardStats{Shard: sh.Socket, Bytes: int64(sh.Store.Len())}
		if ss, ok := sh.App.(shardStatser); ok {
			st.Syncs, st.Epochs = ss.ShardStats()
		}
		out[i] = st
	}
	return out
}

// --- Shard vectors on commit records ---
//
// A cross-shard transaction's commit record carries its shard vector (the
// durability horizon of its data records on every shard it wrote), encoded
// in the record's After field. Recovery validates the vector against each
// shard's recovered length: if any entry lies beyond what survived the
// crash, the transaction was never acknowledged — its commit waited on the
// vector durable point — and is treated as uncommitted. This is what lets
// the prepare phase stay free: the phase RVPs already collected the votes,
// and the vector makes partial durability detectable, so no per-shard
// prepare record or extra log force is ever written.

// shardVecEntrySize is the wire size of one vector entry: u16 shard + u64 LSN.
const shardVecEntrySize = 10

// EncodeShardVec appends the wire form of vec to dst, sorted by shard so
// the bytes are a pure function of the vector's content.
func EncodeShardVec(dst []byte, vec []ShardLSN) []byte {
	sorted := make([]ShardLSN, len(vec))
	copy(sorted, vec)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	for _, e := range sorted {
		dst = append(dst, byte(e.Shard), byte(e.Shard>>8))
		v := uint64(e.LSN)
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return dst
}

// DecodeShardVec parses a commit record's shard vector payload.
func DecodeShardVec(b []byte) ([]ShardLSN, error) {
	if len(b)%shardVecEntrySize != 0 {
		return nil, fmt.Errorf("wal: shard vector payload of %d bytes", len(b))
	}
	out := make([]ShardLSN, 0, len(b)/shardVecEntrySize)
	for off := 0; off < len(b); off += shardVecEntrySize {
		shard := int(b[off]) | int(b[off+1])<<8
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[off+2+i]) << (8 * i)
		}
		out = append(out, ShardLSN{Shard: shard, LSN: LSN(v)})
	}
	return out, nil
}
