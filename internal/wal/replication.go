package wal

import (
	"fmt"

	"bionicdb/internal/obs"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// shipInterval is the shipper daemon's poll period: how often each
// (shard, replica) stream checks for new durable bytes to ship. Short
// against the group-commit flush interval (30 us) so a flushed batch is
// picked up promptly, long enough that idle polling stays cheap.
const shipInterval = 10 * sim.Microsecond

// ackWaiter is one commit waiting for replica acknowledgements of a shard
// prefix: fn runs once enough replicas have acknowledged lsn.
type ackWaiter struct {
	lsn LSN
	fn  func()
}

// ReplicaSet ships every shard of a LogSet's durable stream to R modeled
// replica machines and tracks, per shard, how far each replica has
// acknowledged — the state the commit path's sync/quorum waits check
// against and failover recovers from.
//
// One shipper daemon runs per (replica, shard) pair. Each tick it takes
// whatever the primary shard has made durable beyond the replica's copy,
// pushes it through the primary's one egress NIC (platform.ReplLink: all
// streams share its serialization), writes it to the replica's own log
// device, then waits one more link crossing for the acknowledgement.
// Shipping is prefix-ordered by construction — a replica's store is always
// a literal byte prefix of the primary shard's stream — which is what makes
// failover recovery a plain replay of the longest surviving copy.
//
// Fault hooks (SetLinkDown, SetLagFactor, SetStalled) model partitions,
// congestion and stuck replicas; a healed partition drains its backlog in
// one burst through the shared NIC.
type ReplicaSet struct {
	ls   *LogSet
	need int // replica acks a commit waits for (0 = async)

	// repl[r][s] is replica r's copy of shard s; acked[r][s] is how far
	// replica r has acknowledged shard s back to the primary.
	repl  [][]*Store
	acked [][]LSN

	waiters [][]ackWaiter // per shard, commits awaiting acks
	st      []stats.ReplicationStats

	linkDown  bool
	lagFactor float64 // link latency multiplier; 1 = nominal
	stalled   []bool  // per replica

	stopped bool

	// Flight-recorder hooks (SetObs): host-side only, nil when untraced.
	// Replication machinery always lives on kernel shard 0 (a replicated
	// log set cannot be confined), so both are written from that shard.
	obsRec *obs.ShardRec
	obsAn  *stats.Anatomy
}

// NewReplicaSet builds the shipping machinery for ls on its platform's
// replica devices and spawns the shipper daemons. The platform must be
// replicated (Cfg.Replicated()); engines gate construction on that, so an
// unreplicated run never reaches here.
func NewReplicaSet(ls *LogSet) *ReplicaSet {
	pl := ls.pl
	cfg := pl.Cfg
	if !cfg.Replicated() {
		panic("wal: NewReplicaSet on an unreplicated platform")
	}
	nShards := ls.NumShards()
	rs := &ReplicaSet{
		ls:        ls,
		need:      cfg.ReplAckNeed(),
		waiters:   make([][]ackWaiter, nShards),
		st:        make([]stats.ReplicationStats, nShards),
		lagFactor: 1,
		stalled:   make([]bool, cfg.Replicas),
	}
	for s := 0; s < nShards; s++ {
		rs.st[s] = stats.ReplicationStats{Shard: ls.shards[s].Socket, Mode: cfg.ReplMode}
	}
	for r := 0; r < cfg.Replicas; r++ {
		stores := make([]*Store, nShards)
		lsns := make([]LSN, nShards)
		for s := 0; s < nShards; s++ {
			stores[s] = NewStore(pl.ReplSSD(r, s))
		}
		rs.repl = append(rs.repl, stores)
		rs.acked = append(rs.acked, lsns)
	}
	for r := 0; r < cfg.Replicas; r++ {
		for s := 0; s < nShards; s++ {
			r, s := r, s
			pl.Env.Spawn(fmt.Sprintf("repl%d.ship%d", r, s), func(p *sim.Proc) {
				rs.ship(p, r, s)
			})
		}
	}
	return rs
}

// ship is the (replica r, shard s) shipper daemon body.
func (rs *ReplicaSet) ship(p *sim.Proc, r, s int) {
	pl := rs.ls.pl
	primary := rs.ls.shards[s].Store
	replica := rs.repl[r][s]
	for {
		p.Wait(shipInterval)
		if rs.stopped {
			return
		}
		durable := primary.Durable()
		sent := LSN(replica.Len())
		if lag := int64(durable - sent); lag > rs.st[s].LagBytesMax {
			rs.st[s].LagBytesMax = lag
		}
		if durable <= sent || rs.linkDown || rs.stalled[r] {
			continue
		}
		chunk := primary.Bytes()[sent:durable]
		pickup := p.Now()
		pl.ReplLink.Transfer(p, len(chunk))
		if rs.lagFactor > 1 {
			// Congestion stretches the link's propagation delay; the extra
			// one-way latency is charged on top of the nominal transfer.
			p.Wait(sim.Duration((rs.lagFactor - 1) * float64(pl.Cfg.ReplLinkLat)))
		}
		replica.Write(p, chunk)
		rs.st[s].ShippedBytes += int64(len(chunk))
		rs.st[s].Ships++
		// The acknowledgement crosses the link back; a 64-byte ack pays
		// propagation, not serialization.
		p.Wait(sim.Duration(rs.lagFactor * float64(pl.Cfg.ReplLinkLat)))
		if rs.stopped {
			return
		}
		rtt := p.Now().Sub(pickup)
		rs.st[s].AckRTTs++
		rs.st[s].LagTimeSum += rtt
		if rtt > rs.st[s].LagTimeMax {
			rs.st[s].LagTimeMax = rtt
		}
		rs.advanceAck(r, s, durable)
	}
}

// advanceAck records replica r's acknowledgement of shard s up to lsn and
// wakes every commit whose ack requirement is now met, in registration
// order (deterministic).
func (rs *ReplicaSet) advanceAck(r, s int, lsn LSN) {
	if lsn <= rs.acked[r][s] {
		return
	}
	rs.acked[r][s] = lsn
	kept := rs.waiters[s][:0]
	for _, w := range rs.waiters[s] {
		if rs.ackedCount(s, w.lsn) >= rs.need {
			w.fn()
		} else {
			kept = append(kept, w)
		}
	}
	rs.waiters[s] = kept
}

// ackedCount returns how many replicas have acknowledged shard s through lsn.
func (rs *ReplicaSet) ackedCount(s int, lsn LSN) int {
	n := 0
	for r := range rs.acked {
		if rs.acked[r][s] >= lsn {
			n++
		}
	}
	return n
}

// AckNeed returns how many replica acks a commit waits for (0 = async).
func (rs *ReplicaSet) AckNeed() int { return rs.need }

// AckWaitVec fires done once every entry of vec has been acknowledged by
// enough replicas for the configured mode. The caller guarantees the
// entries are already locally durable (the commit path chains this after
// the vector durable point).
func (rs *ReplicaSet) AckWaitVec(vec []ShardLSN, done *sim.Signal) {
	if rs.need == 0 || len(vec) == 0 {
		done.Fire(nil)
		return
	}
	if rs.obsRec != nil || rs.obsAn != nil {
		// Out-of-band measurement of the ack wait: an OnFire hook runs
		// inline when done fires, so this registers no events and cannot
		// change the schedule. A wait satisfied immediately records nothing.
		t0 := rs.ls.pl.Env.ShardNow(0)
		done.OnFire(func(any) {
			end := rs.ls.pl.Env.ShardNow(0)
			if end <= t0 {
				return
			}
			if rs.obsAn != nil {
				rs.obsAn.Record(stats.PhaseRepl, end.Sub(t0))
			}
			rs.obsRec.Record(obs.Span{Start: t0, End: end, Kind: obs.KindReplWait})
		})
	}
	remaining := len(vec)
	dec := func() {
		remaining--
		if remaining == 0 {
			done.Fire(nil)
		}
	}
	for _, e := range vec {
		if rs.ackedCount(e.Shard, e.LSN) >= rs.need {
			dec()
			continue
		}
		rs.waiters[e.Shard] = append(rs.waiters[e.Shard], ackWaiter{lsn: e.LSN, fn: dec})
	}
}

// SetLinkDown partitions (true) or heals (false) the inter-machine link.
// While down nothing ships; on heal the backlog drains in one burst.
func (rs *ReplicaSet) SetLinkDown(down bool) { rs.linkDown = down }

// SetLagFactor stretches the link's propagation latency by f (1 = nominal).
func (rs *ReplicaSet) SetLagFactor(f float64) {
	if f < 1 {
		f = 1
	}
	rs.lagFactor = f
}

// SetStalled freezes (true) or revives (false) replica r: a stalled
// replica neither persists nor acknowledges shipped bytes.
func (rs *ReplicaSet) SetStalled(r int, stalled bool) { rs.stalled[r] = stalled }

// AckedVector returns replica r's acknowledged horizon per shard.
func (rs *ReplicaSet) AckedVector(r int) []LSN {
	out := make([]LSN, len(rs.acked[r]))
	copy(out, rs.acked[r])
	return out
}

// Replicas returns the replica machine count.
func (rs *ReplicaSet) Replicas() int { return len(rs.repl) }

// ReplicaStore returns replica r's copy of shard s (its durable store).
func (rs *ReplicaSet) ReplicaStore(r, s int) *Store { return rs.repl[r][s] }

// CrashImage returns the log image failover recovers from after losing the
// primary: per shard, the longest replica copy — every copy is a byte
// prefix of the same stream, so the longest one subsumes any acknowledged
// prefix (sync and quorum commits therefore survive in full). It also
// returns the surviving byte count and the lost tail: primary-durable
// bytes no replica had yet persisted.
func (rs *ReplicaSet) CrashImage() (logs [][]byte, replicaBytes, lostTail int64) {
	nShards := rs.ls.NumShards()
	logs = make([][]byte, nShards)
	for s := 0; s < nShards; s++ {
		best := rs.repl[0][s]
		for r := 1; r < len(rs.repl); r++ {
			if rs.repl[r][s].Len() > best.Len() {
				best = rs.repl[r][s]
			}
		}
		logs[s] = best.Bytes()
		replicaBytes += int64(best.Len())
		lostTail += int64(rs.ls.shards[s].Store.Len() - best.Len())
	}
	return logs, replicaBytes, lostTail
}

// SetObs attaches the flight recorder's hooks: commit-path ack waits are
// recorded as KindReplWait spans into rec and PhaseRepl anatomy samples
// into an. Both are host-side observers; attaching them changes no
// simulated behavior. Either may be nil.
func (rs *ReplicaSet) SetObs(rec *obs.ShardRec, an *stats.Anatomy) {
	rs.obsRec = rec
	rs.obsAn = an
}

// CurLagBytes returns the instantaneous worst replication lag: the largest
// primary-durable lead over any replica's acknowledged horizon, across
// shards, in log bytes — the telemetry sampler's replica-lag gauge.
func (rs *ReplicaSet) CurLagBytes() int64 {
	var worst int64
	for s := range rs.ls.shards {
		durable := int64(rs.ls.shards[s].Store.Durable())
		for r := range rs.acked {
			if lag := durable - int64(rs.acked[r][s]); lag > worst {
				worst = lag
			}
		}
	}
	return worst
}

// Stats reports per-shard cumulative shipping counters.
func (rs *ReplicaSet) Stats() []stats.ReplicationStats {
	out := make([]stats.ReplicationStats, len(rs.st))
	copy(out, rs.st)
	return out
}

// Stop halts the shipper daemons; each exits at its next tick. Called from
// engine Close so the post-drain event queue runs dry.
func (rs *ReplicaSet) Stop() { rs.stopped = true }
