package wal

import (
	"bytes"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// replFixture builds a one-socket machine shipping its central log to the
// given replica count under mode, with one software log manager.
func replFixture(t *testing.T, replicas int, mode stats.ReplMode) (*sim.Env, *platform.Platform, *LogSet, *ReplicaSet) {
	t.Helper()
	env := sim.NewEnv()
	cfg := platform.HC2Replicated(1, replicas, mode)
	pl := platform.New(env, cfg)
	st := NewStore(pl.LogSSD(0))
	m := NewManager(pl, st, DefaultManagerConfig())
	ls := NewLogSet(pl, []LogShard{{App: m, Store: st, Socket: 0}})
	rs := NewReplicaSet(ls)
	ls.AttachReplication(rs)
	return env, pl, ls, rs
}

func appendOne(pl *platform.Platform, ls *LogSet, p *sim.Proc, txn uint64) LSN {
	task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
	rec := Record{Txn: txn, Type: RecInsert, Key: []byte{byte(txn)}, After: []byte("payload")}
	lsn := ls.Append(task, 0, &rec)
	task.Flush()
	return lsn
}

func TestReplicationShipsPrefixesAndAcks(t *testing.T) {
	env, pl, ls, rs := replFixture(t, 2, stats.ReplSync)
	env.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			appendOne(pl, ls, p, uint64(i+1))
			p.Wait(50 * sim.Microsecond)
		}
	})
	// Writes end ~1ms in; by 5ms the shippers have long caught up.
	if err := env.RunUntil(sim.Time(5 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	primary := ls.Store(0)
	durable := primary.Durable()
	if durable == 0 {
		t.Fatal("nothing became durable")
	}
	for r := 0; r < rs.Replicas(); r++ {
		rep := rs.ReplicaStore(r, 0)
		if !bytes.Equal(rep.Bytes(), primary.Bytes()[:durable]) {
			t.Errorf("replica %d is not the primary's durable prefix (%d vs %d bytes)",
				r, rep.Len(), int(durable))
		}
		if got := rs.AckedVector(r)[0]; got != durable {
			t.Errorf("replica %d acked %d, want %d", r, got, durable)
		}
	}
	st := rs.Stats()
	if len(st) != 1 {
		t.Fatalf("%d stat shards", len(st))
	}
	if st[0].Mode != stats.ReplSync || st[0].Shard != 0 {
		t.Errorf("stat identity %+v", st[0])
	}
	// Every shard byte ships once per replica.
	if st[0].ShippedBytes != 2*int64(durable) {
		t.Errorf("shipped %d bytes, want %d", st[0].ShippedBytes, 2*int64(durable))
	}
	if st[0].Ships == 0 || st[0].AckRTTs != st[0].Ships {
		t.Errorf("ships=%d ackRTTs=%d, want equal and nonzero", st[0].Ships, st[0].AckRTTs)
	}
	if st[0].LagBytesMax <= 0 {
		t.Error("no ship lag observed under a 50us write cadence")
	}
	// A round trip pays at least the transfer's propagation out and the
	// acknowledgement's propagation back.
	cfg := pl.Cfg
	if st[0].LagTimeMax < 2*cfg.ReplLinkLat {
		t.Errorf("max RTT %v under two link crossings (%v)", st[0].LagTimeMax, 2*cfg.ReplLinkLat)
	}
	if mean := st[0].LagTimeMean(); mean <= 0 || mean > st[0].LagTimeMax {
		t.Errorf("mean RTT %v outside (0, %v]", mean, st[0].LagTimeMax)
	}
}

// commitLatency measures one commit's wait from CommitDurable to signal
// fire under the given mode with two replicas.
func commitLatency(t *testing.T, mode stats.ReplMode) sim.Duration {
	t.Helper()
	env, pl, ls, _ := replFixture(t, 2, mode)
	var start, fired sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		lsn := appendOne(pl, ls, p, 1)
		start = p.Now()
		done := sim.NewSignal(env)
		ls.CommitDurable([]ShardLSN{{Shard: 0, LSN: lsn}}, done)
		done.Await(p)
		fired = p.Now()
	})
	if err := env.RunUntil(sim.Time(5 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatalf("%s commit never acknowledged", mode)
	}
	return fired.Sub(start)
}

// TestCommitWaitOrdering pins the replication tax ordering the modes exist
// for: async pays only the local flush, quorum adds the first replica's
// round trip, sync waits for the slower one (the two ships serialize on the
// primary's one egress NIC, so the second ack is strictly later).
func TestCommitWaitOrdering(t *testing.T) {
	async := commitLatency(t, stats.ReplAsync)
	quorum := commitLatency(t, stats.ReplQuorum)
	sync := commitLatency(t, stats.ReplSync)
	if !(async < quorum && quorum < sync) {
		t.Errorf("commit wait async=%v quorum=%v sync=%v, want async < quorum < sync", async, quorum, sync)
	}
}

func TestPartitionHoldsBacklogThenDrains(t *testing.T) {
	env, pl, ls, rs := replFixture(t, 2, stats.ReplAsync)
	rs.SetLinkDown(true)
	env.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			appendOne(pl, ls, p, uint64(i+1))
			p.Wait(20 * sim.Microsecond)
		}
	})
	if err := env.RunUntil(sim.Time(2 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	durable := ls.Store(0).Durable()
	for r := 0; r < 2; r++ {
		if rs.ReplicaStore(r, 0).Len() != 0 {
			t.Errorf("replica %d received bytes through a partitioned link", r)
		}
	}
	st := rs.Stats()
	if st[0].LagBytesMax != int64(durable) {
		t.Errorf("partition lag %d, want the full durable stream %d", st[0].LagBytesMax, int64(durable))
	}
	// Heal: the whole backlog drains, one burst per replica.
	rs.SetLinkDown(false)
	if err := env.RunUntil(sim.Time(3 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if got := LSN(rs.ReplicaStore(r, 0).Len()); got != durable {
			t.Errorf("replica %d drained to %d, want %d", r, got, durable)
		}
	}
	if st := rs.Stats(); st[0].Ships != 2 {
		t.Errorf("%d ships after heal, want one burst per replica", st[0].Ships)
	}
}

func TestReplicaStallAndSyncCommitBlocked(t *testing.T) {
	env, pl, ls, rs := replFixture(t, 2, stats.ReplSync)
	rs.SetStalled(0, true)
	done := sim.NewSignal(env)
	env.Spawn("w", func(p *sim.Proc) {
		lsn := appendOne(pl, ls, p, 1)
		ls.CommitDurable([]ShardLSN{{Shard: 0, LSN: lsn}}, done)
	})
	if err := env.RunUntil(sim.Time(2 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	durable := ls.Store(0).Durable()
	if rs.ReplicaStore(0, 0).Len() != 0 {
		t.Error("stalled replica persisted bytes")
	}
	if got := LSN(rs.ReplicaStore(1, 0).Len()); got != durable {
		t.Errorf("healthy replica holds %d, want %d", got, durable)
	}
	if done.Fired() {
		t.Error("sync commit acknowledged with one replica stalled")
	}
	// The surviving image is still the healthy replica's full copy.
	logs, replicaBytes, lostTail := rs.CrashImage()
	if LSN(len(logs[0])) != durable || replicaBytes != int64(durable) || lostTail != 0 {
		t.Errorf("crash image %d bytes, lost %d, want %d and 0", replicaBytes, lostTail, int64(durable))
	}
	// Revive: the stalled replica catches up and the commit completes.
	rs.SetStalled(0, false)
	if err := env.RunUntil(sim.Time(3 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if got := LSN(rs.ReplicaStore(0, 0).Len()); got != durable {
		t.Errorf("revived replica holds %d, want %d", got, durable)
	}
	if !done.Fired() {
		t.Error("sync commit still blocked after the stalled replica caught up")
	}
}
