// Package wal implements write-ahead logging: typed logical log records
// (the paper's §5.3 notes B+Tree operations are logically logged), a
// durable log store on the simulated SSD, and the software log manager with
// a latched central buffer and group commit — the component whose latch and
// copy costs the hardware log-insertion engine (§5.4) eliminates. Recovery
// replays committed logical records against checkpointed trees.
package wal

import (
	"encoding/binary"
	"fmt"
)

// LSN is a log sequence number: the byte offset of a record in the log
// stream, so ordering and durability comparisons are plain integer
// comparisons.
type LSN uint64

// RecType distinguishes log record kinds.
type RecType uint8

// Log record kinds. Data records (Insert/Update/Delete) carry logical
// table+key images; recovery replays them for committed transactions only,
// so no undo pass or CLRs are needed (runtime aborts roll back in memory).
const (
	RecBegin RecType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecUpdate
	RecDelete
	RecCheckpoint // marks a fuzzy checkpoint completion; recovery starts after it
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is one logical log record.
type Record struct {
	LSN    LSN    // assigned at append
	Txn    uint64 // transaction id
	Type   RecType
	Table  uint16 // catalog table id (data records)
	Key    []byte // primary key image (data records)
	Before []byte // pre-image (updates/deletes; used by runtime rollback)
	After  []byte // post-image (inserts/updates)
}

// EncodedSize returns the exact on-log size of the record.
func (r *Record) EncodedSize() int {
	return 4 + 8 + 1 + 2 + 2 + len(r.Key) + 4 + len(r.Before) + 4 + len(r.After)
}

// Encode appends the record's wire image to dst and returns the result.
// Layout: u32 totalLen, u64 txn, u8 type, u16 table, u16 keyLen, key,
// u32 beforeLen, before, u32 afterLen, after.
func (r *Record) Encode(dst []byte) []byte {
	total := r.EncodedSize()
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(total))
	dst = append(dst, b8[:4]...)
	binary.LittleEndian.PutUint64(b8[:], r.Txn)
	dst = append(dst, b8[:]...)
	dst = append(dst, byte(r.Type))
	binary.LittleEndian.PutUint16(b8[:2], r.Table)
	dst = append(dst, b8[:2]...)
	binary.LittleEndian.PutUint16(b8[:2], uint16(len(r.Key)))
	dst = append(dst, b8[:2]...)
	dst = append(dst, r.Key...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(r.Before)))
	dst = append(dst, b8[:4]...)
	dst = append(dst, r.Before...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(r.After)))
	dst = append(dst, b8[:4]...)
	dst = append(dst, r.After...)
	return dst
}

// Decode parses one record starting at data[off]; the record's LSN is set
// to off. It returns the offset just past the record.
func Decode(data []byte, off int) (Record, int, error) {
	if off+17 > len(data) {
		return Record{}, 0, fmt.Errorf("wal: truncated record header at %d", off)
	}
	total := int(binary.LittleEndian.Uint32(data[off:]))
	if total < 17 || off+total > len(data) {
		return Record{}, 0, fmt.Errorf("wal: corrupt record length %d at %d", total, off)
	}
	r := Record{LSN: LSN(off)}
	p := off + 4
	r.Txn = binary.LittleEndian.Uint64(data[p:])
	p += 8
	r.Type = RecType(data[p])
	p++
	r.Table = binary.LittleEndian.Uint16(data[p:])
	p += 2
	kl := int(binary.LittleEndian.Uint16(data[p:]))
	p += 2
	r.Key = data[p : p+kl]
	p += kl
	bl := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	r.Before = data[p : p+bl]
	p += bl
	al := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	r.After = data[p : p+al]
	p += al
	if p != off+total {
		return Record{}, 0, fmt.Errorf("wal: record at %d decodes to %d bytes, header says %d", off, p-off, total)
	}
	return r, p, nil
}

// Scan iterates every complete record in data starting at offset from,
// calling fn; fn returning false stops the scan. A trailing partial record
// (torn write) ends the scan without error.
func Scan(data []byte, from LSN, fn func(Record) bool) error {
	off := int(from)
	for off < len(data) {
		rec, next, err := Decode(data, off)
		if err != nil {
			// A partial trailing record is a normal crash artifact.
			if off+4 > len(data) {
				return nil
			}
			total := int(binary.LittleEndian.Uint32(data[off:]))
			if off+total > len(data) {
				return nil
			}
			return err
		}
		if !fn(rec) {
			return nil
		}
		off = next
	}
	return nil
}
