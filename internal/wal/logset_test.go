package wal

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func TestStoreGrowthDoublesNotPerWrite(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	store := NewStore(pl.SSD)
	var want []byte
	env.Spawn("w", func(p *sim.Proc) {
		chunk := make([]byte, 1000)
		reallocs := 0
		lastCap := cap(store.Bytes())
		for i := 0; i < 500; i++ {
			for j := range chunk {
				chunk[j] = byte(i + j)
			}
			want = append(want, chunk...)
			store.Write(p, chunk)
			if c := cap(store.Bytes()); c != lastCap {
				if lastCap >= storeInitCap && c < 2*lastCap {
					t.Errorf("write %d: cap grew %d -> %d, want at least doubling", i, lastCap, c)
				}
				lastCap = c
				reallocs++
			}
		}
		// 500KB through a doubling buffer from 64KB: a handful of copies.
		if reallocs > 5 {
			t.Errorf("%d reallocations for 500 writes, want amortized-constant", reallocs)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(store.Bytes(), want) {
		t.Error("store content diverged from writes")
	}
	if store.Len() != len(want) || store.Durable() != LSN(len(want)) {
		t.Errorf("Len=%d Durable=%d want %d", store.Len(), store.Durable(), len(want))
	}
	if store.Writes() != 500 {
		t.Errorf("writes=%d", store.Writes())
	}
}

func TestShardVecRoundTripSorted(t *testing.T) {
	vec := []ShardLSN{{Shard: 3, LSN: 1 << 40}, {Shard: 0, LSN: 7}, {Shard: 12, LSN: 0}}
	enc := EncodeShardVec(nil, vec)
	if len(enc) != 3*shardVecEntrySize {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	got, err := DecodeShardVec(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardLSN{{Shard: 0, LSN: 7}, {Shard: 3, LSN: 1 << 40}, {Shard: 12, LSN: 0}}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: %+v want %+v", i, got[i], want[i])
		}
	}
	if _, err := DecodeShardVec(enc[:len(enc)-1]); err == nil {
		t.Error("truncated vector decoded without error")
	}
}

// shardedFixture builds a 2-socket sharded-log machine with one software
// manager per socket.
func shardedFixture(t *testing.T) (*sim.Env, *platform.Platform, *LogSet, []*Manager) {
	t.Helper()
	env := sim.NewEnv()
	cfg := platform.HC2ScaledSharded(2)
	pl := platform.New(env, cfg)
	var shards []LogShard
	var mgrs []*Manager
	for s := 0; s < 2; s++ {
		st := NewStore(pl.LogSSD(s))
		m := NewManager(pl, st, DefaultManagerConfig())
		mgrs = append(mgrs, m)
		shards = append(shards, LogShard{App: m, Store: st, Socket: s})
	}
	return env, pl, NewLogSet(pl, shards), mgrs
}

func TestLogSetRoutesBySocket(t *testing.T) {
	env, pl, ls, mgrs := shardedFixture(t)
	env.Spawn("w", func(p *sim.Proc) {
		for s := 0; s < 2; s++ {
			core := pl.Sockets[s].Cores[0]
			task := pl.NewTask(p, core, &stats.Breakdown{})
			if got := ls.ShardFor(task); got != s {
				t.Errorf("ShardFor(socket %d core) = %d", s, got)
			}
			rec := Record{Txn: uint64(s + 1), Type: RecInsert, Key: []byte{byte(s)}, After: []byte("v")}
			ls.Append(task, s, &rec)
			task.Flush()
		}
		for _, m := range mgrs {
			m.Stop()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		n := 0
		var txn uint64
		if err := Scan(ls.Store(s).Bytes(), 0, func(r Record) bool { n++; txn = r.Txn; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 1 || txn != uint64(s+1) {
			t.Errorf("shard %d holds %d records (txn %d)", s, n, txn)
		}
	}
}

func TestLogSetVectorDurablePoint(t *testing.T) {
	env, pl, ls, mgrs := shardedFixture(t)
	var firedAt sim.Time
	var shard1Durable sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		t0 := pl.NewTask(p, pl.Sockets[0].Cores[0], &stats.Breakdown{})
		rec0 := Record{Txn: 1, Type: RecInsert, Key: []byte("a"), After: []byte("x")}
		l0 := ls.Append(t0, 0, &rec0)
		t0.Flush()
		// Shard 1's record is appended later, so its flush lands later:
		// the vector signal must wait for the slower shard.
		p.Wait(40 * sim.Microsecond)
		t1 := pl.NewTask(p, pl.Sockets[1].Cores[0], &stats.Breakdown{})
		rec1 := Record{Txn: 1, Type: RecUpdate, Key: []byte("b"), After: []byte("y")}
		l1 := ls.Append(t1, 1, &rec1)
		t1.Flush()
		done := sim.NewSignal(env)
		ls.CommitDurable([]ShardLSN{{Shard: 0, LSN: l0}, {Shard: 1, LSN: l1}}, done)
		done.Await(p)
		firedAt = p.Now()
		if ls.Durable(0) < l0 || ls.Durable(1) < l1 {
			t.Error("vector fired before both shards durable")
		}
		sub := sim.NewSignal(env)
		ls.Shard(1).CommitDurable(l1, sub)
		if !sub.Fired() {
			t.Error("shard 1 not durable at vector fire")
		}
		shard1Durable = p.Now()
		for _, m := range mgrs {
			m.Stop()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt == 0 || firedAt < shard1Durable {
		t.Errorf("vector durable point at %v, shard1 durable at %v", firedAt, shard1Durable)
	}
}

func TestLogSetStats(t *testing.T) {
	env, pl, ls, mgrs := shardedFixture(t)
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Sockets[1].Cores[0], &stats.Breakdown{})
		rec := Record{Txn: 1, Type: RecInsert, Key: []byte("k"), After: []byte("v")}
		ls.Append(task, 1, &rec)
		task.Flush()
		for _, m := range mgrs {
			m.Stop()
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := ls.Stats()
	if len(st) != 2 {
		t.Fatalf("%d stat entries", len(st))
	}
	if st[0].Bytes != 0 || st[1].Bytes == 0 {
		t.Errorf("bytes per shard: %+v", st)
	}
	if st[1].Syncs == 0 || st[1].Epochs != 0 {
		t.Errorf("software shard counters: %+v", st[1])
	}
	for s, e := range st {
		if e.Shard != s {
			t.Errorf("entry %d names shard %d", s, e.Shard)
		}
	}
}

func TestSignalOnFireJoin(t *testing.T) {
	env := sim.NewEnv()
	fired := []string{}
	done := sim.NewSignal(env)
	remaining := 3
	subs := make([]*sim.Signal, 3)
	for i := range subs {
		i := i
		subs[i] = sim.NewSignal(env)
		subs[i].OnFire(func(any) {
			fired = append(fired, fmt.Sprintf("sub%d", i))
			remaining--
			if remaining == 0 {
				done.Fire(nil)
			}
		})
	}
	env.Spawn("w", func(p *sim.Proc) {
		subs[2].Fire(nil)
		subs[0].Fire(nil)
		if done.Fired() {
			t.Error("join fired early")
		}
		subs[1].Fire(nil)
		if !done.Fired() {
			t.Error("join did not fire on last arrival")
		}
		// OnFire on an already-fired signal runs immediately.
		ran := false
		subs[0].OnFire(func(any) { ran = true })
		if !ran {
			t.Error("OnFire on fired signal did not run")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[0] != "sub2" || fired[1] != "sub0" || fired[2] != "sub1" {
		t.Errorf("fire order %v", fired)
	}
}
