package wal

import (
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Store is the durable log file on the simulated SSD. Both the software log
// manager and the hardware log-insertion path write through a Store, so
// recovery is identical for every engine. Bytes returned by Bytes survive a
// "crash"; anything not yet written here is lost.
type Store struct {
	dev    *platform.Device
	data   []byte
	writes int64
}

// storeInitCap is the initial backing-buffer capacity of a written-to Store.
const storeInitCap = 64 << 10

// NewStore creates an empty durable log on dev.
func NewStore(dev *platform.Device) *Store { return &Store{dev: dev} }

// Write durably appends chunk, charging one device write of its size. The
// backing buffer grows by explicit doubling (never by append's reallocation
// heuristics), so a long run settles into a handful of copies total instead
// of reallocating on the append path.
func (s *Store) Write(p *sim.Proc, chunk []byte) {
	if len(chunk) == 0 {
		return
	}
	s.writes++
	s.dev.Transfer(p, len(chunk))
	if need := len(s.data) + len(chunk); need > cap(s.data) {
		newCap := cap(s.data)
		if newCap < storeInitCap {
			newCap = storeInitCap
		}
		for newCap < need {
			newCap *= 2
		}
		grown := make([]byte, len(s.data), newCap)
		copy(grown, s.data)
		s.data = grown
	}
	s.data = append(s.data, chunk...)
}

// Durable returns the LSN up to which the log is durable.
func (s *Store) Durable() LSN { return LSN(len(s.data)) }

// Bytes returns the durable log image — what recovery scans. The slice is
// the store's live backing array; callers must not mutate it.
func (s *Store) Bytes() []byte { return s.data }

// Len returns the durable log size in bytes.
func (s *Store) Len() int { return len(s.data) }

// Writes returns how many device writes (flushes/epochs) landed here.
func (s *Store) Writes() int64 { return s.writes }

// Device returns the device this store writes to.
func (s *Store) Device() *platform.Device { return s.dev }

// Appender is the log interface transactions use; the software Manager and
// the hardware log engine both satisfy it.
type Appender interface {
	// Append buffers rec, assigns its LSN, and charges the caller's
	// insertion cost. It does not wait for durability. The returned value
	// is the record's durability horizon: once Durable() reaches it, the
	// record is on stable storage (for the software manager that is the
	// byte offset just past the record; the hardware engine returns its
	// record handle).
	Append(t *platform.Task, rec *Record) LSN
	// CommitDurable registers done to fire once lsn is durable. The
	// caller decides whether to block on it (synchronous commit) or move
	// on (the DORA flusher-notifies-client pattern).
	CommitDurable(lsn LSN, done *sim.Signal)
	// Durable reports the current durable horizon.
	Durable() LSN
}

// ManagerConfig tunes the software log manager.
type ManagerConfig struct {
	// FlushInterval is the group-commit timer period.
	FlushInterval sim.Duration
	// FlushBytes triggers an early flush once this much is buffered.
	FlushBytes int
	// InsertBaseInstr is the instruction cost of one insertion excluding
	// the copy: LSN arithmetic, buffer bookkeeping, latch handoff. Taken
	// from the Aether/consolidation-array measurements in [7].
	InsertBaseInstr int
	// CopyInstrPerByte is the per-byte cost of the buffer copy.
	CopyInstrPerByte float64
}

// DefaultManagerConfig returns the calibrated software-log costs.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		FlushInterval:    30 * sim.Microsecond,
		FlushBytes:       32 << 10,
		InsertBaseInstr:  300,
		CopyInstrPerByte: 0.5,
	}
}

// Manager is the software log: a central buffer protected by a latch, with
// a group-commit flush daemon. Its costs are what Figure 3 charges to "Log
// mgmt": record encode, latch acquisition (contention grows with cores) and
// the buffer copy; flush waits are asynchronous and charged to commit
// latency, not CPU.
type Manager struct {
	cfg   ManagerConfig
	store *Store
	latch *sim.Resource
	buf   []byte
	base  LSN // LSN of buf[0]

	bufAddr uint64 // timing address of the buffer (cache-modelled copies)

	waiters []commitWaiter
	kick    *sim.Queue[struct{}]
	spare   []byte // retired flush buffer, reused for the next fill
	stopped bool

	appends int64
	flushes int64
}

type commitWaiter struct {
	lsn  LSN
	done *sim.Signal
}

// NewManager creates a software log manager writing to store. The flush
// daemon is spawned immediately on pl.Env.
func NewManager(pl *platform.Platform, store *Store, cfg ManagerConfig) *Manager {
	m := &Manager{
		cfg:     cfg,
		store:   store,
		latch:   sim.NewResource(pl.Env, "log-latch", 1),
		base:    store.Durable(),
		bufAddr: pl.AllocHost(cfg.FlushBytes * 2),
		kick:    sim.NewQueue[struct{}](pl.Env, "log-kick", 1),
	}
	pl.Env.Spawn("log-flusher", func(p *sim.Proc) { m.flusherLoop(p) })
	return m
}

// NewManagerOn creates a software log manager confined to one socket's
// kernel shard: its latch, kick queue and flush daemon all live on that
// shard and its buffer address comes from the socket's private arena, so on
// a concurrent environment the manager may be appended to only from its own
// socket. Everything else — costs, group commit, the durability handshake —
// is NewManager exactly.
func NewManagerOn(pl *platform.Platform, store *Store, cfg ManagerConfig, socket int) *Manager {
	sh := pl.ShardOf(socket)
	m := &Manager{
		cfg:     cfg,
		store:   store,
		latch:   sim.NewResource(pl.Env, fmt.Sprintf("log-latch%d", socket), 1).OnShard(sh),
		base:    store.Durable(),
		bufAddr: pl.AllocHostOn(socket, cfg.FlushBytes*2),
		kick:    sim.NewQueue[struct{}](pl.Env, fmt.Sprintf("log-kick%d", socket), 1).OnShard(sh),
	}
	pl.Env.SpawnOn(sh, fmt.Sprintf("log-flusher%d", socket), func(p *sim.Proc) { m.flusherLoop(p) })
	return m
}

// Append implements Appender: encode, latch, copy, release.
func (m *Manager) Append(t *platform.Task, rec *Record) LSN {
	m.appends++
	// Record construction happens outside the latch.
	size := rec.EncodedSize()
	t.Exec(stats.CompLog, m.cfg.InsertBaseInstr+int(float64(size)*m.cfg.CopyInstrPerByte))
	// The central buffer insert holds the latch for the copy; this is the
	// serialization point the paper's hardware log engine removes.
	t.Flush()
	m.latch.Acquire(t.P)
	lsn := m.base + LSN(len(m.buf))
	rec.LSN = lsn
	m.buf = rec.Encode(m.buf)
	t.Access(stats.CompLog, m.bufAddr+uint64(int(lsn-m.base)%m.cfg.FlushBytes), size)
	t.Flush()
	m.latch.Release()
	if len(m.buf) >= m.cfg.FlushBytes {
		m.kick.TryPut(struct{}{})
	}
	return lsn + LSN(size)
}

// CommitDurable implements Appender.
func (m *Manager) CommitDurable(lsn LSN, done *sim.Signal) {
	if m.store.Durable() >= lsn {
		done.Fire(nil)
		return
	}
	m.waiters = append(m.waiters, commitWaiter{lsn: lsn, done: done})
}

// Durable implements Appender.
func (m *Manager) Durable() LSN { return m.store.Durable() }

// Appends returns the number of records appended.
func (m *Manager) Appends() int64 { return m.appends }

// Flushes returns the number of device flushes issued.
func (m *Manager) Flushes() int64 { return m.flushes }

// LatchWait returns cumulative time processes queued on the log latch.
func (m *Manager) LatchWait() sim.Duration { return m.latch.WaitTime() }

// ShardStats reports the software shard's sync count; a software log has no
// arbitration epochs.
func (m *Manager) ShardStats() (syncs, epochs int64) { return m.flushes, 0 }

// Backlog returns the bytes appended but not yet handed to the device — the
// flush-backlog gauge the telemetry sampler reads.
func (m *Manager) Backlog() int { return len(m.buf) }

// Stop quiesces the flush daemon after the current pass; pending bytes are
// flushed first.
func (m *Manager) Stop() {
	m.stopped = true
	if !m.kick.Closed() {
		m.kick.TryPut(struct{}{})
	}
}

func (m *Manager) flusherLoop(p *sim.Proc) {
	for {
		// Wait for a kick or the group-commit timer, whichever first. The
		// timer is modelled by polling the kick queue with TryGet after a
		// sleep; a kick arriving mid-sleep is handled on wake.
		if m.kick.Len() == 0 {
			p.Wait(m.cfg.FlushInterval)
		}
		m.kick.TryGet()
		m.flushOnce(p)
		if m.stopped && len(m.buf) == 0 {
			return
		}
	}
}

func (m *Manager) flushOnce(p *sim.Proc) {
	if len(m.buf) == 0 {
		return
	}
	// Double-buffer: appends landing while the device write is in flight
	// go to the spare, and the flushed buffer becomes the next spare once
	// the store has copied it. Steady-state flush cycles reuse two buffers
	// instead of reallocating the insert buffer every interval.
	chunk := m.buf
	m.buf = m.spare[:0]
	m.spare = nil
	m.base += LSN(len(chunk))
	m.flushes++
	m.store.Write(p, chunk)
	m.spare = chunk[:0]
	m.wakeWaiters()
}

func (m *Manager) wakeWaiters() {
	durable := m.store.Durable()
	kept := m.waiters[:0]
	for _, w := range m.waiters {
		if w.lsn <= durable {
			w.done.Fire(nil)
		} else {
			kept = append(kept, w)
		}
	}
	m.waiters = kept
}
