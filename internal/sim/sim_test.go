package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{400 * Picosecond, "400ps"},
		{Nanosecond, "1.000ns"},
		{1500 * Nanosecond, "1.500us"},
		{2 * Microsecond, "2.000us"},
		{5 * Millisecond, "5.000ms"},
		{3 * Second, "3.000s"},
		{-2 * Microsecond, "-2.000us"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

func TestPerSecond(t *testing.T) {
	if got := PerSecond(1000, Second); got != 1000 {
		t.Errorf("PerSecond(1000, 1s) = %v", got)
	}
	if got := PerSecond(10, 0); got != 0 {
		t.Errorf("PerSecond over empty span = %v, want 0", got)
	}
	if got := PerSecond(500, 500*Millisecond); got != 1000 {
		t.Errorf("PerSecond(500, 0.5s) = %v", got)
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	env := NewEnv()
	var at Time
	env.Spawn("w", func(p *Proc) {
		p.Wait(5 * Microsecond)
		at = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", at)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		env := NewEnv()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			env.Spawn("p", func(p *Proc) {
				p.Wait(Duration(10-i) * Nanosecond)
				order = append(order, i)
				p.Wait(Nanosecond) // same wake time for several procs: seq breaks ties
				order = append(order, i+100)
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("runs incomplete: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
	// Earliest deadline first: proc 9 waits 1ns, so it runs first.
	if a[0] != 9 {
		t.Fatalf("expected proc 9 first, got %v", a[:3])
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			p.Wait(Nanosecond)
			order = append(order, i)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestAtCallback(t *testing.T) {
	env := NewEnv()
	var fired []Time
	env.At(3*Time(Nanosecond), func() { fired = append(fired, env.Now()) })
	env.At(Time(Nanosecond), func() { fired = append(fired, env.Now()) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != Time(Nanosecond) || fired[1] != 3*Time(Nanosecond) {
		t.Fatalf("callbacks fired at %v", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	count := 0
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(Microsecond)
			count++
		}
	})
	if err := env.RunUntil(Time(10 * Microsecond)); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("ticks within horizon = %d, want 10", count)
	}
	if env.Now() != Time(10*Microsecond) {
		t.Fatalf("clock at %v", env.Now())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	env := NewEnv()
	env.Spawn("boom", func(p *Proc) {
		p.Wait(Nanosecond)
		panic("kaboom")
	})
	err := env.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "latch", 1)
	holders := 0
	maxHolders := 0
	for i := 0; i < 4; i++ {
		env.Spawn("u", func(p *Proc) {
			res.Acquire(p)
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			p.Wait(10 * Nanosecond)
			holders--
			res.Release()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxHolders != 1 {
		t.Fatalf("capacity-1 resource held by %d at once", maxHolders)
	}
	if env.Now() != Time(40*Nanosecond) {
		t.Fatalf("serialized holds should end at 40ns, got %v", env.Now())
	}
}

func TestResourceCapacityAndUtilization(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "cores", 2)
	for i := 0; i < 4; i++ {
		env.Spawn("u", func(p *Proc) {
			res.Use(p, 10*Nanosecond)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs × 10ns on 2 slots = 20ns makespan.
	if env.Now() != Time(20*Nanosecond) {
		t.Fatalf("makespan %v, want 20ns", env.Now())
	}
	if got := res.BusyTime(); got != 40*Nanosecond {
		t.Fatalf("busy time %v, want 40ns", got)
	}
	if u := res.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %v, want ~1.0", u)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("u", func(p *Proc) {
			p.Wait(Duration(i) * Nanosecond) // arrive in index order
			res.Acquire(p)
			order = append(order, i)
			p.Wait(100 * Nanosecond)
			res.Release()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	var got []bool
	env.Spawn("a", func(p *Proc) {
		if !res.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		got = append(got, res.TryAcquire()) // should fail: full
		res.Release()
		got = append(got, res.TryAcquire()) // should succeed
		res.Release()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryAcquire sequence = %v, want [false true]", got)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	env.Spawn("bad", func(p *Proc) { res.Release() })
	if err := env.Run(); err == nil {
		t.Fatal("expected panic error for releasing idle resource")
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	var got []int
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed early")
				return
			}
			got = append(got, v)
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(Microsecond)
			q.Put(p, i)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueBoundedBlocksPutter(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 1)
	var putDone Time
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks until consumer takes item 1
		putDone = p.Now()
	})
	env.Spawn("consumer", func(p *Proc) {
		p.Wait(5 * Microsecond)
		if v, ok := q.Get(p); !ok || v != 1 {
			t.Errorf("got %v, %v", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != Time(5*Microsecond) {
		t.Fatalf("second Put completed at %v, want 5us", putDone)
	}
}

func TestQueueCloseReleasesGetters(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	drained := 0
	closedSeen := 0
	for i := 0; i < 3; i++ {
		env.Spawn("consumer", func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					closedSeen++
					return
				}
				drained++
			}
		})
	}
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		p.Wait(Microsecond)
		q.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if drained != 2 || closedSeen != 3 {
		t.Fatalf("drained=%d closedSeen=%d", drained, closedSeen)
	}
	if env.Live() != 0 {
		t.Fatalf("%d processes leaked", env.Live())
	}
}

func TestQueueStats(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Spawn("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		p.Wait(10 * Nanosecond)
		q.TryGet()
		q.TryGet()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Puts() != 2 || q.MaxLen() != 2 {
		t.Fatalf("puts=%d maxlen=%d", q.Puts(), q.MaxLen())
	}
	if q.ResidenceTime() != 20*Nanosecond {
		t.Fatalf("residence %v, want 20ns", q.ResidenceTime())
	}
}

func TestSignalAwaitBeforeAndAfterFire(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	var got []any
	env.Spawn("early", func(p *Proc) { got = append(got, s.Await(p)) })
	env.Spawn("firer", func(p *Proc) {
		p.Wait(Microsecond)
		s.Fire(42)
	})
	env.Spawn("late", func(p *Proc) {
		p.Wait(2 * Microsecond)
		got = append(got, s.Await(p))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 42 || got[1] != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	env.Spawn("p", func(p *Proc) {
		s.Fire(1)
		s.Fire(2)
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected double-fire panic error")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d/100", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	if err := quick.Check(func(span uint16) bool {
		n := int(span%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of bounds: %v", f)
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(42)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Fatalf("bucket %d has %d of %d draws", b, c, n)
		}
	}
}

func TestRandPermAndShuffle(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(9)
	const n = 200000
	var sum Duration
	for i := 0; i < n; i++ {
		sum += r.Exp(10 * Microsecond)
	}
	mean := float64(sum) / n
	want := float64(10 * Microsecond)
	if mean < want*0.97 || mean > want*1.03 {
		t.Fatalf("Exp mean %v, want ~%v", Duration(mean), Duration(want))
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(5)
	s := r.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == s.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split streams collided %d times", matches)
	}
}

// TestOverlappingWaitsThroughResource checks the core pattern used by the
// engines: CPU work holds a core, device waits do not, so device latency
// overlaps across processes.
func TestOverlappingWaitsThroughResource(t *testing.T) {
	env := NewEnv()
	core := NewResource(env, "core", 1)
	done := 0
	for i := 0; i < 4; i++ {
		env.Spawn("txn", func(p *Proc) {
			core.Use(p, 10*Nanosecond) // CPU burst
			p.Wait(Microsecond)        // async device wait, core free
			core.Use(p, 10*Nanosecond) // completion processing
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done=%d", done)
	}
	// If the device waits serialized on the core, makespan would exceed 4us.
	// Overlapped: ~1us + 8×10ns.
	if env.Now() > Time(2*Microsecond) {
		t.Fatalf("device waits failed to overlap: makespan %v", env.Now())
	}
}

func TestQueuePutFrontJumpsBacklog(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.PutFront(99)
		for i := 0; i < 3; i++ {
			v, _ := q.Get(p)
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 99 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want [99 1 2]", got)
	}
}

func TestQueuePutFrontWakesGetter(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env, "q", 0)
	var got string
	env.Spawn("consumer", func(p *Proc) {
		got, _ = q.Get(p)
	})
	env.Spawn("producer", func(p *Proc) {
		p.Wait(Microsecond)
		q.PutFront("hi")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hi" {
		t.Fatalf("got %v", got)
	}
}
