package sim

import (
	"fmt"
	"testing"
)

// FuzzShardedKernel drives random push/pop/PutFront interleavings across a
// sharded environment and checks the kernel's ordering invariants:
//
//   - per shard, executed events observe a non-decreasing clock (the (time,
//     seq) heap key is a total order, so time can never run backwards);
//   - queue contents follow exact FIFO/PutFront order against a model deque
//     maintained in simulation order;
//   - a cross-shard event is never delivered before its send horizon
//     (send time + lookahead).
//
// The op stream is interpreted deterministically from the fuzz input, so
// any failure reproduces from its corpus entry alone.
func FuzzShardedKernel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("queue-order"))
	f.Add([]byte{2, 2, 2, 3, 3, 3, 4, 4, 0, 0, 1, 1, 4, 4, 4})
	f.Add([]byte{255, 254, 253, 4, 4, 4, 4, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const la = Duration(100)
		nShards := 2 + int(data[0])%3 // 2..4
		env := NewEnv()
		defer env.Close()
		env.EnableParallel(nShards, la)

		queues := make([]*Queue[uint64], nShards)
		model := make([][]uint64, nShards) // expected queue contents, per shard
		lastT := make([]Time, nShards)     // per-shard clock floor
		for s := 0; s < nShards; s++ {
			queues[s] = NewQueue[uint64](env, fmt.Sprintf("fq%d", s), 0).OnShard(s)
		}
		observe := func(s int, now Time) {
			if now < lastT[s] {
				t.Errorf("shard %d clock ran backwards: %v after %v", s, now, lastT[s])
			}
			lastT[s] = now
		}
		popModel := func(s int) uint64 {
			v := model[s][0]
			model[s] = model[s][1:]
			return v
		}
		for s := 0; s < nShards; s++ {
			s := s
			var nextVal uint64 // per-shard counter: values stay race-free and unique
			// Each shard interprets its own slice of the op stream.
			ops := data[s*len(data)/nShards : (s+1)*len(data)/nShards]
			env.SpawnOn(s, fmt.Sprintf("fuzz%d", s), func(p *Proc) {
				for i, op := range ops {
					observe(s, p.Now())
					switch op % 5 {
					case 0: // wait a data-derived stride
						p.Wait(Duration(1 + int(op)%37))
					case 1: // push back
						nextVal++
						v := uint64(s)<<32 | nextVal
						queues[s].Put(p, v)
						model[s] = append(model[s], v)
					case 2: // push front (the priority path)
						nextVal++
						v := uint64(s)<<32 | nextVal
						queues[s].PutFront(v)
						model[s] = append([]uint64{v}, model[s]...)
					case 3: // pop
						if v, ok := queues[s].TryGet(); ok {
							if want := popModel(s); v != want {
								t.Errorf("shard %d dequeue order broken: got %d, want %d", s, v, want)
							}
						} else if len(model[s]) != 0 {
							t.Errorf("shard %d queue empty but model holds %d items", s, len(model[s]))
						}
					case 4: // cross-shard post at exactly the send horizon
						dst := (s + 1 + int(op)%(nShards-1)) % nShards
						sendT := p.Now()
						at := sendT.Add(la + Duration(int(op)%29))
						p.CrossAt(dst, at, func() {
							got := env.shs[dst].now
							if got < sendT.Add(la) {
								t.Errorf("cross event from shard %d delivered at %v, before send horizon %v",
									s, got, sendT.Add(la))
							}
							if got != at {
								t.Errorf("cross event ran at %v, scheduled for %v", got, at)
							}
							observe(dst, got)
						})
						_ = i
					}
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("fuzz program failed: %v", err)
		}
		for s := 0; s < nShards; s++ {
			// Drain what's left so FIFO order is checked end to end.
			for {
				v, ok := queues[s].TryGet()
				if !ok {
					break
				}
				if want := popModel(s); v != want {
					t.Errorf("shard %d residual dequeue order broken: got %d, want %d", s, v, want)
				}
			}
			if len(model[s]) != 0 {
				t.Errorf("shard %d left %d modeled items undelivered", s, len(model[s]))
			}
		}
	})
}
