package sim

// waitRing is a FIFO of parked processes backed by a power-of-two ring
// buffer. Kernel primitives (queues, resources) go through repeated
// fill-and-drain cycles on their waiter lists; a plain slice popped with
// s = s[1:] loses its front capacity and reallocates every cycle, while the
// ring reaches steady state and never allocates again.
type waitRing struct {
	buf  []*Proc
	head int
	n    int
}

func (w *waitRing) len() int { return w.n }

func (w *waitRing) push(p *Proc) {
	if w.n == len(w.buf) {
		w.buf = growRing(w.buf, w.head, w.n)
		w.head = 0
	}
	w.buf[(w.head+w.n)&(len(w.buf)-1)] = p
	w.n++
}

// growRing doubles a power-of-two ring (minimum 8 slots), unwrapping the n
// live items starting at head to the front of the new buffer.
func growRing[T any](buf []T, head, n int) []T {
	newCap := len(buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	mask := len(buf) - 1
	for i := 0; i < n; i++ {
		nb[i] = buf[(head+i)&mask]
	}
	return nb
}

// ScratchPool is a free list of reusable element slices for
// simulation-confined scratch buffers (materialized scan rows and the
// like). Get returns an empty slice with whatever capacity a previous user
// grew; Put zeroes the elements (releasing their references) and keeps the
// storage. Pools are not safe for concurrent use from multiple goroutines,
// matching the simulator's one-process-at-a-time execution model: each
// owner confines its pool to one environment.
type ScratchPool[T any] struct{ free [][]T }

// Get returns an empty reusable slice.
func (p *ScratchPool[T]) Get() []T {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return nil
}

// Put returns s to the pool. The caller must not use it afterwards.
func (p *ScratchPool[T]) Put(s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
	p.free = append(p.free, s[:0])
}

// pop removes and returns the longest-waiting process; nil when empty.
func (w *waitRing) pop() *Proc {
	if w.n == 0 {
		return nil
	}
	p := w.buf[w.head]
	w.buf[w.head] = nil
	w.head = (w.head + 1) & (len(w.buf) - 1)
	w.n--
	return p
}
