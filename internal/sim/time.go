// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. All engine and hardware-model code in bionicdb runs on
// this kernel: simulated processes are goroutines that execute strictly one
// at a time under a virtual clock, so simulations are reproducible
// bit-for-bit for a given seed and shared state needs no locking.
//
// The virtual clock counts picoseconds. Sub-nanosecond resolution matters
// because a single CPU cycle at 2.5 GHz is 400 ps and the cost model charges
// individual instruction and cache events.
package sim

import "fmt"

// Time is an absolute simulation timestamp in picoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String renders the duration with an auto-selected unit, e.g. "1.50us".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	}
	return fmt.Sprintf("%dps", int64(d))
}

// String renders the timestamp like a Duration measured from time zero.
func (t Time) String() string { return Duration(t).String() }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the timestamp t + d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// PerSecond converts an event count over a span into an events-per-second
// rate. It returns 0 for an empty span.
func PerSecond(events int64, span Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(events) / span.Seconds()
}
