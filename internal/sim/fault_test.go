package sim

import (
	"reflect"
	"testing"
)

func TestFaultPlanDeterministic(t *testing.T) {
	start, end := Time(20*Millisecond), Time(70*Millisecond)
	a := NewFaultPlan(NewRand(7), start, end, 2, true)
	b := NewFaultPlan(NewRand(7), start, end, 2, true)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := NewFaultPlan(NewRand(8), start, end, 2, true)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestFaultPlanShape(t *testing.T) {
	start, end := Time(0), Time(100*Millisecond)
	for seed := uint64(1); seed <= 20; seed++ {
		p := tplan(seed, start, end, 3, true)
		kill, ok := p.KillTime()
		if !ok {
			t.Fatalf("seed %d: no primary kill", seed)
		}
		// The kill lands in the 60-80% stretch of the window.
		lo, hi := start.Add(Duration(0.60*float64(end.Sub(start)))), start.Add(Duration(0.80*float64(end.Sub(start))))
		if kill < lo || kill > hi {
			t.Errorf("seed %d: kill at %v, want within [%v, %v]", seed, kill, lo, hi)
		}
		if len(p.Faults) != 4 {
			t.Fatalf("seed %d: %d faults, want 4", seed, len(p.Faults))
		}
		for i, f := range p.Faults {
			if i > 0 && f.At < p.Faults[i-1].At {
				t.Errorf("seed %d: faults not time-ordered", seed)
			}
			switch f.Kind {
			case FaultPrimaryKill:
				continue
			case FaultLinkLag:
				if f.Factor < 4 || f.Factor > 8 {
					t.Errorf("seed %d: lag factor %v out of [4, 8]", seed, f.Factor)
				}
			case FaultReplicaStall:
				if f.Replica < 0 || f.Replica >= 3 {
					t.Errorf("seed %d: stall targets replica %d of 3", seed, f.Replica)
				}
			}
			if f.Until <= f.At {
				t.Errorf("seed %d: %s window [%v, %v) is empty", seed, f.Kind, f.At, f.Until)
			}
			if f.Until >= kill {
				t.Errorf("seed %d: %s window ends at %v, after the kill at %v", seed, f.Kind, f.Until, kill)
			}
		}
	}
	// Without windows the plan is the kill alone.
	p := tplan(1, start, end, 3, false)
	if len(p.Faults) != 1 || p.Faults[0].Kind != FaultPrimaryKill {
		t.Errorf("windowless plan: %+v", p.Faults)
	}
}

func tplan(seed uint64, start, end Time, replicas int, windows bool) FaultPlan {
	return NewFaultPlan(NewRand(seed), start, end, replicas, windows)
}

func TestFaultPlanSchedule(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	start, end := Time(0), Time(10*Millisecond)
	p := tplan(3, start, end, 2, true)
	type event struct {
		kind  FaultKind
		begin bool
		at    Time
	}
	var got []event
	p.Schedule(env,
		func(f Fault) { got = append(got, event{f.Kind, true, env.Now()}) },
		func(f Fault) { got = append(got, event{f.Kind, false, env.Now()}) })
	kill, _ := p.KillTime()
	if err := env.RunUntil(kill); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 { // 3 windows x begin+end; the kill is not scheduled
		t.Fatalf("%d schedule events, want 6: %+v", len(got), got)
	}
	for i, e := range got {
		if i > 0 && e.at < got[i-1].at {
			t.Errorf("events out of time order: %+v", got)
		}
		if e.kind == FaultPrimaryKill {
			t.Error("primary kill was scheduled as an event")
		}
	}
	// Each window's begin precedes its end at the planned instants.
	for _, f := range p.Faults {
		if f.Kind == FaultPrimaryKill {
			continue
		}
		var beginAt, endAt Time
		for _, e := range got {
			if e.kind != f.Kind {
				continue
			}
			if e.begin {
				beginAt = e.at
			} else {
				endAt = e.at
			}
		}
		if beginAt != f.At || endAt != f.Until {
			t.Errorf("%s fired at [%v, %v], planned [%v, %v]", f.Kind, beginAt, endAt, f.At, f.Until)
		}
	}
}
