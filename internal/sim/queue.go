package sim

// Queue is a FIFO message queue between simulated processes, the building
// block for DORA action queues and software/hardware request channels. A
// zero capacity means unbounded. Get blocks while the queue is empty; Put
// blocks while a bounded queue is full.
//
// Closing a queue releases all blocked getters (Get returns ok=false once
// drained) so engines can shut workers down deterministically.
type Queue struct {
	env      *Env
	name     string
	capacity int // 0 = unbounded
	items    []any
	getters  []*Proc
	putters  []*Proc
	closed   bool

	puts    int64
	maxLen  int
	sumWait Duration // total residence time of dequeued items
	stamps  []Time   // enqueue timestamps, parallel to items
}

// NewQueue returns a queue with the given capacity; capacity 0 is unbounded.
func NewQueue(env *Env, name string, capacity int) *Queue {
	return &Queue{env: env, name: name, capacity: capacity}
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// MaxLen reports the high-water mark of the queue length.
func (q *Queue) MaxLen() int { return q.maxLen }

// Puts reports the number of items ever enqueued.
func (q *Queue) Puts() int64 { return q.puts }

// ResidenceTime reports the cumulative time dequeued items spent queued.
func (q *Queue) ResidenceTime() Duration { return q.sumWait }

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool { return q.closed }

// Put enqueues v, blocking while a bounded queue is full. Put panics if the
// queue is closed: producers must be quiesced before Close.
func (q *Queue) Put(p *Proc, v any) {
	for q.capacity > 0 && len(q.items) >= q.capacity {
		if q.closed {
			panic("sim: put on closed queue " + q.name)
		}
		q.putters = append(q.putters, p)
		p.park()
	}
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	q.enqueue(v)
}

// TryPut enqueues v only if the queue has room right now.
func (q *Queue) TryPut(v any) bool {
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	if q.capacity > 0 && len(q.items) >= q.capacity {
		return false
	}
	q.enqueue(v)
	return true
}

// PutFront enqueues v at the head of the queue, ahead of waiting items —
// for priority messages (lock releases, completions) that must not convoy
// behind a backlog. It never blocks.
func (q *Queue) PutFront(v any) {
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	q.items = append([]any{v}, q.items...)
	q.stamps = append([]Time{q.env.now}, q.stamps...)
	q.puts++
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.getters) > 0 {
		w := q.getters[0]
		q.getters = q.getters[1:]
		q.env.scheduleWake(w, q.env.now)
	}
}

func (q *Queue) enqueue(v any) {
	q.items = append(q.items, v)
	q.stamps = append(q.stamps, q.env.now)
	q.puts++
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.getters) > 0 {
		w := q.getters[0]
		q.getters = q.getters[1:]
		q.env.scheduleWake(w, q.env.now)
	}
}

// Get dequeues the oldest item, blocking while the queue is empty. It
// returns ok=false only when the queue is closed and drained.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.getters = append(q.getters, p)
		p.park()
	}
	return q.dequeue(), true
}

// TryGet dequeues the oldest item only if one is available right now.
func (q *Queue) TryGet() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	return q.dequeue(), true
}

func (q *Queue) dequeue() any {
	v := q.items[0]
	q.items = q.items[1:]
	q.sumWait += q.env.now.Sub(q.stamps[0])
	q.stamps = q.stamps[1:]
	if len(q.putters) > 0 {
		w := q.putters[0]
		q.putters = q.putters[1:]
		q.env.scheduleWake(w, q.env.now)
	}
	return v
}

// Close marks the queue closed and wakes every blocked getter; they drain
// remaining items and then observe ok=false.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.getters {
		q.env.scheduleWake(w, q.env.now)
	}
	q.getters = nil
}

// Signal is a one-shot completion event carrying a value: the handshake for
// asynchronous hardware requests. Await blocks until Fire; once fired,
// Await returns immediately. Multiple processes may await one signal.
type Signal struct {
	env     *Env
	fired   bool
	val     any
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fire completes the signal with value v and wakes all waiters. Firing an
// already-fired signal panics: completions must be delivered exactly once.
func (s *Signal) Fire(v any) {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	s.val = v
	for _, w := range s.waiters {
		s.env.scheduleWake(w, s.env.now)
	}
	s.waiters = nil
}

// Fired reports whether the signal has completed.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the fired value (nil before Fire).
func (s *Signal) Value() any { return s.val }

// Await blocks until the signal fires and returns its value.
func (s *Signal) Await(p *Proc) any {
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	return s.val
}
