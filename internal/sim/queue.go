package sim

// Queue is a FIFO message queue between simulated processes, the building
// block for DORA action queues and software/hardware request channels. A
// zero capacity means unbounded. Get blocks while the queue is empty; Put
// blocks while a bounded queue is full.
//
// Items live in a typed power-of-two ring buffer: steady-state Put/Get pairs
// allocate nothing, and PutFront — the priority path lock releases take so
// they never convoy behind a backlog — is O(1) instead of a double prepend.
//
// Closing a queue releases all blocked getters (Get returns ok=false once
// drained) so engines can shut workers down deterministically.
type Queue[T any] struct {
	env      *Env
	sh       *shard // owner shard: clock source and confinement domain
	name     string
	capacity int       // 0 = unbounded
	buf      []slot[T] // ring; len is 0 or a power of two
	head     int       // index of the oldest item
	n        int       // live items
	getters  waitRing
	putters  waitRing
	closed   bool

	puts    int64
	maxLen  int
	sumWait Duration // total residence time of dequeued items
}

// slot pairs an item with its enqueue timestamp for residence accounting.
type slot[T any] struct {
	v     T
	stamp Time
}

// NewQueue returns a queue with the given capacity; capacity 0 is unbounded.
// The queue is bound to shard 0; see OnShard.
func NewQueue[T any](env *Env, name string, capacity int) *Queue[T] {
	return &Queue[T]{env: env, sh: env.shs[0], name: name, capacity: capacity}
}

// OnShard rebinds the queue to the given shard and returns it. On a parallel
// environment every blocking use of a queue must come from a process on the
// queue's shard; binding is a setup-time act.
func (q *Queue[T]) OnShard(i int) *Queue[T] {
	q.sh = q.env.shs[i]
	return q
}

// confine panics when a process on a parallel environment blocks on a queue
// owned by another shard — that is a cross-shard data race, not a wait.
func (q *Queue[T]) confine(p *Proc) {
	if q.env.parallel && p.sh != q.sh {
		panic("sim: process " + p.name + " blocks on queue " + q.name + " owned by another shard")
	}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// MaxLen reports the high-water mark of the queue length.
func (q *Queue[T]) MaxLen() int { return q.maxLen }

// Puts reports the number of items ever enqueued.
func (q *Queue[T]) Puts() int64 { return q.puts }

// ResidenceTime reports the cumulative time dequeued items spent queued.
func (q *Queue[T]) ResidenceTime() Duration { return q.sumWait }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// grow doubles the ring, unwrapping items to the front.
func (q *Queue[T]) grow() {
	q.buf = growRing(q.buf, q.head, q.n)
	q.head = 0
}

func (q *Queue[T]) bumpStats() {
	q.puts++
	if q.n > q.maxLen {
		q.maxLen = q.n
	}
	if w := q.getters.pop(); w != nil {
		q.env.scheduleWake(w, q.sh.now)
	}
}

// Put enqueues v, blocking while a bounded queue is full. Put panics if the
// queue is closed: producers must be quiesced before Close.
func (q *Queue[T]) Put(p *Proc, v T) {
	q.confine(p)
	for q.capacity > 0 && q.n >= q.capacity {
		if q.closed {
			panic("sim: put on closed queue " + q.name)
		}
		q.putters.push(p)
		p.park()
	}
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	q.enqueue(v)
}

// TryPut enqueues v only if the queue has room right now.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	if q.capacity > 0 && q.n >= q.capacity {
		return false
	}
	q.enqueue(v)
	return true
}

// PutFront enqueues v at the head of the queue, ahead of waiting items —
// for priority messages (lock releases, completions) that must not convoy
// behind a backlog. It never blocks.
func (q *Queue[T]) PutFront(v T) {
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = slot[T]{v: v, stamp: q.sh.now}
	q.n++
	q.bumpStats()
}

func (q *Queue[T]) enqueue(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = slot[T]{v: v, stamp: q.sh.now}
	q.n++
	q.bumpStats()
}

// Get dequeues the oldest item, blocking while the queue is empty. It
// returns ok=false only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	q.confine(p)
	for q.n == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.getters.push(p)
		p.park()
	}
	return q.dequeue(), true
}

// TryGet dequeues the oldest item only if one is available right now.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.dequeue(), true
}

func (q *Queue[T]) dequeue() T {
	s := q.buf[q.head]
	q.buf[q.head] = slot[T]{} // release the item reference
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.sumWait += q.sh.now.Sub(s.stamp)
	if w := q.putters.pop(); w != nil {
		q.env.scheduleWake(w, q.sh.now)
	}
	return s.v
}

// Close marks the queue closed and wakes every blocked getter; they drain
// remaining items and then observe ok=false.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for w := q.getters.pop(); w != nil; w = q.getters.pop() {
		q.env.scheduleWake(w, q.sh.now)
	}
}

// Signal is a one-shot completion event carrying a value: the handshake for
// asynchronous hardware requests. Await blocks until Fire; once fired,
// Await returns immediately. Multiple processes may await one signal.
type Signal struct {
	env     *Env
	sh      *shard // owner shard: clock source and confinement domain
	fired   bool
	val     any
	waiters []*Proc
	onFire  []func(any)
}

// NewSignal returns an unfired signal, bound to shard 0; see OnShard.
func NewSignal(env *Env) *Signal { return &Signal{env: env, sh: env.shs[0]} }

// OnShard rebinds the signal to the given shard and returns it. On a
// parallel environment Await and Fire must come from the signal's shard (a
// CrossAt callback delivered to that shard counts).
func (s *Signal) OnShard(i int) *Signal {
	s.sh = s.env.shs[i]
	return s
}

// Fire completes the signal with value v, runs OnFire callbacks, and wakes
// all waiters. Firing an already-fired signal panics: completions must be
// delivered exactly once.
func (s *Signal) Fire(v any) {
	if s.fired {
		panic("sim: signal fired twice")
	}
	s.fired = true
	s.val = v
	for _, fn := range s.onFire {
		fn(v)
	}
	s.onFire = nil
	for _, w := range s.waiters {
		s.env.scheduleWake(w, s.sh.now)
	}
	s.waiters = nil
}

// OnFire registers fn to run synchronously, in registration order, when the
// signal fires (before waiters wake). If the signal already fired, fn runs
// immediately. Callbacks must not block; they exist so completion fan-in
// (e.g. joining several sub-completions into one) needs no extra process —
// and with it no extra event — per join.
func (s *Signal) OnFire(fn func(any)) {
	if s.fired {
		fn(s.val)
		return
	}
	s.onFire = append(s.onFire, fn)
}

// Fired reports whether the signal has completed.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the fired value (nil before Fire).
func (s *Signal) Value() any { return s.val }

// Await blocks until the signal fires and returns its value.
func (s *Signal) Await(p *Proc) any {
	if s.env.parallel && p.sh != s.sh {
		panic("sim: process " + p.name + " awaits a signal owned by another shard")
	}
	for !s.fired {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	return s.val
}
