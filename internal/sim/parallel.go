package sim

import (
	"fmt"
	"sort"
)

// This file is the parallel half of the kernel: a conservative-lookahead
// ("null-message-free window") parallel discrete-event scheduler over the
// shards declared in env.go.
//
// The contract:
//
//   - Every process and every primitive (Queue, Resource, Signal) is
//     confined to exactly one shard. Within a shard, execution is the
//     serial baton-passed kernel, bit for bit.
//   - The only cross-shard edge is Proc.CrossAt(target, t, fn), and t must
//     be at least lookahead beyond the sender's clock. The lookahead is the
//     modeled interconnect per-hop latency: no message can take effect on
//     another socket sooner than one hop.
//   - The driver alternates windows and barriers. At each barrier it drains
//     every shard's inbox into its heap in a deterministic order (sorted by
//     (at, source shard, source ticket)), then computes, for each shard s
//     with pending events, the window bound
//
//         limit(s) = min(horizon, min over other busy shards t of
//                        top(t) + lookahead - 1)
//
//     Shard s may execute every event at or before limit(s) without ever
//     seeing a late arrival: any message another shard could still send has
//     effect no earlier than top(t) + lookahead. Shards whose next event
//     lies inside their bound run concurrently, one host goroutine each;
//     the shard holding the globally minimal event always qualifies, so
//     every window makes progress.
//
// Determinism: window boundaries are a pure function of heap state, which
// is a pure function of prior windows and the deterministic inbox merge —
// never of host scheduling. So the event order on every shard, and hence
// every simulated result, is identical at GOMAXPROCS=1 and GOMAXPROCS=N,
// and identical to the serial kernel whenever the program's cross-shard
// sends are themselves deterministic. A single-shard parallel environment
// degenerates to one full-horizon window: the serial kernel with one extra
// channel handoff per RunUntil, and byte-identical event order.

// crossEvent is one cross-shard arrival parked in a shard's inbox until the
// next barrier. src/srcSeq make the merge order a total order independent
// of host timing: arrivals are sorted by (at, src, srcSeq) before local
// sequence numbers are assigned.
type crossEvent struct {
	at     Time
	src    int
	srcSeq uint64
	fn     func()
}

// Shape reshapes the environment into shards serial kernels driven by the
// conservative window protocol, without starting any host concurrency: until
// SetConcurrent(true), RunUntil executes the very same windows inline, one
// shard at a time, in shard order. Shards interact only through inboxes
// drained at barriers, so the event order on every shard — and hence every
// simulated result — is byte-identical between the inline and concurrent
// modes. Shaping lets engines confine their processes and primitives to
// shards at construction time and decide later (per run flag) whether the
// windows also execute on parallel host goroutines.
//
// Shape must be called before the first RunUntil. Calling it again with the
// same shape is a no-op; a different shard count or lookahead panics.
// shards <= 1 leaves the environment serial.
func (e *Env) Shape(shards int, lookahead Duration) {
	if shards <= 1 {
		return
	}
	if e.parallel {
		if shards != len(e.shs) || lookahead != e.lookahead {
			panic(fmt.Sprintf("sim: Shape(%d, %v) conflicts with existing shape (%d, %v)",
				shards, lookahead, len(e.shs), e.lookahead))
		}
		return
	}
	if e.closed || e.dead {
		panic("sim: Shape on a closed environment")
	}
	if lookahead < 1 {
		panic("sim: Shape needs a positive lookahead")
	}
	e.parallel = true
	e.lookahead = lookahead
	for i := len(e.shs); i < shards; i++ {
		e.shs = append(e.shs, &shard{env: e, id: i, parked: make(chan struct{})})
	}
}

// SetConcurrent selects how a shaped environment executes its windows:
// inline on the driver goroutine (false, the default — the golden serial
// reference) or one host goroutine per shard (true). The first enable spawns
// the per-shard window workers. Results are bit-identical either way; this
// is purely a host-execution knob. On an unshaped environment it is a no-op.
func (e *Env) SetConcurrent(on bool) {
	if !e.parallel {
		return
	}
	if on && !e.workers {
		if e.closed || e.dead {
			panic("sim: SetConcurrent on a closed environment")
		}
		e.workers = true
		for _, s := range e.shs {
			s.start = make(chan struct{})
			go s.windowWorker()
		}
	}
	e.concurrent = on
}

// EnableParallel shapes the environment into shards serial kernels AND turns
// on concurrent window execution: Shape(shards, lookahead) followed by
// SetConcurrent(true). It must be called before the first RunUntil. On an
// environment already shaped identically (an engine confined itself at
// construction) it just enables concurrency; a conflicting shape panics.
// shards <= 1 leaves the environment serial.
func (e *Env) EnableParallel(shards int, lookahead Duration) {
	if shards <= 1 {
		return
	}
	e.Shape(shards, lookahead)
	e.SetConcurrent(true)
}

// Parallel reports whether EnableParallel has reshaped this environment.
func (e *Env) Parallel() bool { return e.parallel }

// NumShards reports the shard count (1 on a serial environment).
func (e *Env) NumShards() int { return len(e.shs) }

// Lookahead reports the cross-shard scheduling distance (0 when serial).
func (e *Env) Lookahead() Duration {
	if !e.parallel {
		return 0
	}
	return e.lookahead
}

// windowWorker runs one shard's share of each window: the same baton
// dispatch the serial driver performs, bounded by the shard horizon the
// coordinator computed. It exits when Close closes the start channel.
func (s *shard) windowWorker() {
	e := s.env
	for range s.start {
		if s.dispatch(nil) == batonHanded {
			<-s.parked
		}
		e.windowWG.Done()
	}
}

// runParallel is RunUntil for a shaped environment: alternate windows and
// barriers until no shard holds an event at or before the horizon. When the
// environment is not concurrent each window runs inline on the driver
// goroutine in shard order; windows within one barrier round are independent
// (shards interact only via inboxes drained at the next barrier), so the
// per-shard event streams are identical in both modes.
func (e *Env) runParallel(horizon Time) error {
	const inf = Time(1<<63 - 1)
	la := Time(e.lookahead)
	for !e.failed.Load() {
		e.drainInboxes()
		// Find the two smallest heap tops; min over other shards' tops is
		// then O(1) per shard.
		min1, min2 := inf, inf
		var min1s *shard
		busy := 0
		for _, s := range e.shs {
			if len(s.events) == 0 {
				continue
			}
			busy++
			top := s.events[0].at
			if top < min1 {
				min2 = min1
				min1, min1s = top, s
			} else if top < min2 {
				min2 = top
			}
		}
		if busy == 0 || min1 > horizon {
			break
		}
		for _, s := range e.shs {
			if len(s.events) == 0 {
				continue
			}
			lim := horizon
			if busy > 1 {
				other := min1
				if s == min1s {
					other = min2
				}
				if b := other + la - 1; b < lim {
					lim = b
				}
			}
			if s.events[0].at > lim {
				s.stalls++
				continue
			}
			s.horizon = lim
			s.windows++
			if !e.concurrent {
				if s.dispatch(nil) == batonHanded {
					<-s.parked
				}
				continue
			}
			e.windowWG.Add(1)
			s.start <- struct{}{}
		}
		if e.concurrent {
			e.windowWG.Wait()
		}
	}
	e.drainInboxes()
	if err := e.firstErr(); err != nil {
		e.closed = true
		return err
	}
	return nil
}

// drainInboxes merges every shard's cross-shard arrivals into its heap in
// deterministic (at, src, srcSeq) order, assigning local sequence numbers
// in that order. It runs only at barriers, when no shard is executing, so
// the heaps are safe to touch.
func (e *Env) drainInboxes() {
	for _, s := range e.shs {
		s.inboxMu.Lock()
		pend := s.inbox
		s.inbox = nil
		s.inboxMu.Unlock()
		if len(pend) == 0 {
			continue
		}
		sort.Slice(pend, func(i, j int) bool {
			a, b := pend[i], pend[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.srcSeq < b.srcSeq
		})
		for _, ce := range pend {
			s.push(event{at: ce.at, fn: ce.fn})
		}
	}
}

// CrossAt schedules fn to run on the target shard at time t — the only
// legal cross-shard edge on a parallel environment. t must be at least the
// environment lookahead beyond the sender's clock; violating that panics,
// because a closer delivery could land in the target's already-executed
// past. fn runs as a scheduler callback on the target shard (it must not
// block) and may freely touch that shard's primitives: fire signals, post
// to queues, resume that shard's processes.
//
// On a serial environment (or to the caller's own shard) CrossAt is AtOn:
// the same program runs on both kernels, which is what the equivalence
// tests exercise.
func (p *Proc) CrossAt(target int, t Time, fn func()) {
	e := p.env
	s := p.sh
	tg := e.shs[target]
	if !e.parallel || tg == s {
		if t < s.now {
			t = s.now
		}
		tg.push(event{at: t, fn: fn})
		return
	}
	if t < s.now.Add(e.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard post from shard %d at %v for shard %d at %v violates lookahead %v",
			s.id, s.now, target, t, e.lookahead))
	}
	s.crossSeq++
	tg.inboxMu.Lock()
	tg.inbox = append(tg.inbox, crossEvent{at: t, src: s.id, srcSeq: s.crossSeq, fn: fn})
	tg.inboxMu.Unlock()
	// No window adjustment is needed: arrivals sit in the inbox until the
	// next barrier, and any send from a window (issued at or after the
	// sender's heap top) lands at top + lookahead or later — strictly past
	// every other shard's window bound of top + lookahead - 1. A shard can
	// therefore never merge an arrival into its executed past.
}

// CrossFrom is CrossAt for code that executes on a shard without a process
// of its own — scheduler callbacks (signal OnFire hooks, CrossAt deliveries)
// that need to post back to another shard. src names the shard the caller is
// currently executing on; the same lookahead rule applies relative to that
// shard's clock. On a serial environment (or to the caller's own shard) it
// degenerates to AtOn, exactly like CrossAt.
func (e *Env) CrossFrom(src, target int, t Time, fn func()) {
	s := e.shs[src]
	tg := e.shs[target]
	if !e.parallel || tg == s {
		if t < s.now {
			t = s.now
		}
		tg.push(event{at: t, fn: fn})
		return
	}
	if t < s.now.Add(e.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard post from shard %d at %v for shard %d at %v violates lookahead %v",
			s.id, s.now, target, t, e.lookahead))
	}
	s.crossSeq++
	tg.inboxMu.Lock()
	tg.inbox = append(tg.inbox, crossEvent{at: t, src: s.id, srcSeq: s.crossSeq, fn: fn})
	tg.inboxMu.Unlock()
}

// ShardNow returns the given shard's clock. Outside a running window it is
// only meaningful from the driver (between RunUntil calls) or from code
// executing on that shard.
func (e *Env) ShardNow(shard int) Time { return e.shs[shard].now }

// ShardExecuted returns a snapshot of per-shard executed-event counts. The
// off-shard-0 entries are the proof that engine work really runs on foreign
// shards; the engine-sharding tests assert they are nonzero.
func (e *Env) ShardExecuted() []uint64 {
	out := make([]uint64, len(e.shs))
	for i, s := range e.shs {
		out[i] = s.executed
	}
	return out
}

// ShardWindows returns a snapshot of per-shard window-round counts: how
// many barrier rounds each shard ran a window in. Zero on the serial
// kernel, where RunUntil is one unbounded window.
func (e *Env) ShardWindows() []uint64 {
	out := make([]uint64, len(e.shs))
	for i, s := range e.shs {
		out[i] = s.windows
	}
	return out
}

// ShardStalls returns a snapshot of per-shard barrier-stall counts: rounds
// where the shard held pending events but its next event lay beyond the
// conservative window bound, so it sat the round out waiting on another
// shard's progress.
func (e *Env) ShardStalls() []uint64 {
	out := make([]uint64, len(e.shs))
	for i, s := range e.shs {
		out[i] = s.stalls
	}
	return out
}
