package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The storm is the parallel kernel's reference program: nShards logical
// shards, each with its own procs, resource, queue and pre-split random
// stream, exchanging cross-shard callbacks through CrossAt. It is built so
// no two shards ever produce events at the same timestamp (local events
// land on multiples of quantum, arrivals from shard s land at s*8+3 mod
// quantum), which makes the serial projection argument exact: running the
// whole program on one shard and running it sharded must produce identical
// per-logical-shard traces.
const (
	stormQuantum   = 1000 // ps; all local activity aligns to this
	stormLookahead = Duration(stormQuantum)
)

type stormRec struct {
	at    Time
	kind  uint8 // 0 local step, 1 resource release, 2 cross arrival, 3 dequeue
	shard uint8
	proc  uint8
	val   uint64
}

// runStorm executes the storm and returns a digest of the per-logical-shard
// traces. place maps a logical shard to a physical shard: identity for the
// sharded run, all-zeros for the serial reference.
func runStorm(t *testing.T, env *Env, nShards, nProcs, nSteps int, place func(int) int) string {
	t.Helper()
	traces := make([][]stormRec, nShards)
	ress := make([]*Resource, nShards)
	queues := make([]*Queue[uint64], nShards)
	rands := NewRand(7).SplitN(nShards)
	for s := 0; s < nShards; s++ {
		ress[s] = NewResource(env, fmt.Sprintf("res%d", s), 2).OnShard(place(s))
		queues[s] = NewQueue[uint64](env, fmt.Sprintf("q%d", s), 0).OnShard(place(s))
	}
	for s := 0; s < nShards; s++ {
		s := s
		for k := 0; k < nProcs; k++ {
			k := k
			r := rands[s].Split()
			env.SpawnOn(place(s), fmt.Sprintf("storm%d.%d", s, k), func(p *Proc) {
				for i := 0; i < nSteps; i++ {
					p.Wait(Duration(stormQuantum * (1 + (k+i)%5)))
					draw := r.Uint64()
					traces[s] = append(traces[s], stormRec{p.Now(), 0, uint8(s), uint8(k), draw})
					ress[s].Use(p, Duration(stormQuantum*(1+k%3)))
					traces[s] = append(traces[s], stormRec{p.Now(), 1, uint8(s), uint8(k), 0})
					queues[s].Put(p, draw)
					if v, ok := queues[s].TryGet(); ok {
						traces[s] = append(traces[s], stormRec{p.Now(), 3, uint8(s), uint8(k), v})
					}
					if i%4 == 3 && nShards > 1 {
						dst := (s + 1) % nShards
						at := p.Now().Add(stormLookahead + Duration(s*8+3))
						val := draw ^ uint64(i)
						p.CrossAt(place(dst), at, func() {
							traces[dst] = append(traces[dst], stormRec{at, 2, uint8(s), uint8(k), val})
						})
					}
				}
			})
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("storm failed: %v", err)
	}
	h := sha256.New()
	var buf [8]byte
	for s := 0; s < nShards; s++ {
		for _, rec := range traces[s] {
			binary.LittleEndian.PutUint64(buf[:], uint64(rec.at))
			h.Write(buf[:])
			h.Write([]byte{rec.kind, rec.shard, rec.proc})
			binary.LittleEndian.PutUint64(buf[:], rec.val)
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestParallelStormMatchesSerial pins the tentpole contract at the kernel
// level: the sharded windowed execution reproduces the serial kernel's
// per-shard event orders bit for bit.
func TestParallelStormMatchesSerial(t *testing.T) {
	for _, nShards := range []int{2, 4, 8} {
		serialEnv := NewEnv()
		serial := runStorm(t, serialEnv, nShards, 6, 40, func(int) int { return 0 })
		serialEnv.Close()

		parEnv := NewEnv()
		parEnv.EnableParallel(nShards, stormLookahead)
		if got := parEnv.NumShards(); got != nShards {
			t.Fatalf("NumShards = %d, want %d", got, nShards)
		}
		par := runStorm(t, parEnv, nShards, 6, 40, func(i int) int { return i })
		if par != serial {
			t.Errorf("%d shards: parallel storm diverged from serial:\n got  %s\n want %s", nShards, par, serial)
		}
		if parEnv.Executed() == 0 {
			t.Errorf("%d shards: no events executed", nShards)
		}
		for i, s := range parEnv.shs {
			if s.executed == 0 {
				t.Errorf("%d shards: shard %d executed nothing — windows never reached it", nShards, i)
			}
		}
		parEnv.Close()
	}
}

// TestParallelStormDeterministicAcrossGOMAXPROCS pins determinism against
// host scheduling: the same sharded program produces the same digest
// whether shard windows get one OS thread or many.
func TestParallelStormDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() string {
		env := NewEnv()
		defer env.Close()
		env.EnableParallel(4, stormLookahead)
		return runStorm(t, env, 4, 6, 60, func(i int) int { return i })
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	many := run()
	runtime.GOMAXPROCS(prev)
	if one != many {
		t.Errorf("digest depends on GOMAXPROCS:\n 1: %s\n 8: %s", one, many)
	}
}

// TestCrossAtEnforcesLookahead pins the conservative rule: a cross-shard
// post closer than the lookahead is a protocol violation and must panic
// (surfacing as the run's error), because it could land in the target's
// already-executed past.
func TestCrossAtEnforcesLookahead(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	env.EnableParallel(2, stormLookahead)
	env.SpawnOn(0, "violator", func(p *Proc) {
		p.Wait(5 * stormQuantum)
		p.CrossAt(1, p.Now().Add(stormLookahead-1), func() {})
	})
	env.SpawnOn(1, "peer", func(p *Proc) { p.Wait(stormQuantum) })
	err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("lookahead violation not detected: err = %v", err)
	}
}

// TestCloseReapsAllShards is the leak fix's regression test: processes left
// blocked on primitives owned by shards other than shard 0 must still be
// reaped by Close, and the per-shard window workers must exit with them —
// the goroutine count returns to its pre-environment baseline.
func TestCloseReapsAllShards(t *testing.T) {
	baseline := runtime.NumGoroutine()
	env := NewEnv()
	const nShards = 4
	env.EnableParallel(nShards, stormLookahead)
	sigs := make([]*Signal, nShards)
	for s := 0; s < nShards; s++ {
		s := s
		sigs[s] = NewSignal(env).OnShard(s)
		env.SpawnOn(s, fmt.Sprintf("stuck%d", s), func(p *Proc) {
			p.Wait(Duration(stormQuantum * (s + 1)))
			sigs[s].Await(p) // never fired: blocked until Close
		})
	}
	if err := env.RunUntil(Time(100 * stormQuantum)); err != nil {
		t.Fatal(err)
	}
	if live := env.Live(); live != nShards {
		t.Fatalf("expected %d blocked processes before Close, have %d", nShards, live)
	}
	env.Close()
	if live := env.Live(); live != 0 {
		t.Errorf("Close left %d processes live", live)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked across Close: baseline %d, now %d", baseline, n)
	}
}

// TestSerialEnvRejectsShardAPIs pins the degenerate cases: a serial
// environment has one shard, zero lookahead, and CrossAt to shard 0 behaves
// as AtOn.
func TestSerialEnvRejectsShardAPIs(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	if env.Parallel() {
		t.Error("fresh env claims to be parallel")
	}
	if n := env.NumShards(); n != 1 {
		t.Errorf("fresh env has %d shards", n)
	}
	if la := env.Lookahead(); la != 0 {
		t.Errorf("serial env has lookahead %v", la)
	}
	ran := false
	env.Spawn("self-cross", func(p *Proc) {
		p.CrossAt(0, p.Now().Add(stormQuantum), func() { ran = true })
		p.Wait(2 * stormQuantum)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("CrossAt to own shard never ran")
	}
	// EnableParallel with <= 1 shard is a no-op, not an error.
	env2 := NewEnv()
	defer env2.Close()
	env2.EnableParallel(1, stormLookahead)
	if env2.Parallel() {
		t.Error("EnableParallel(1) turned the env parallel")
	}
}
