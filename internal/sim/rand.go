package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift64*). Simulations must draw all randomness from
// a Rand seeded by the harness so runs are reproducible; math/rand's global
// state is never used.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed via splitmix64, so nearby
// seeds give unrelated streams.
func NewRand(seed uint64) *Rand {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &Rand{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Range64 returns a uniform int64 in [lo, hi] inclusive.
func (r *Rand) Range64(lo, hi int64) int64 {
	if hi < lo {
		panic("sim: Range64 with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split returns a new generator with a stream derived from, but independent
// of, this one. Use it to give each simulated process its own stream.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

// SplitN returns n generators pre-split from this one in index order. On a
// parallel environment each shard must own one pre-split stream, fixed at
// setup time: randomness consumption then stays confined per shard and
// results remain a pure function of the seed regardless of how the host
// interleaves shard windows.
func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Exp returns an exponentially distributed duration with the given mean,
// for arrival-process modelling. The result is at least 1 ps.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	d := Duration(-float64(mean) * math.Log(u))
	if d < 1 {
		d = 1
	}
	return d
}
