package sim

import (
	"fmt"
	"sort"
)

// FaultKind names one injectable failure of the replicated-machine model.
type FaultKind uint8

const (
	// FaultPrimaryKill stops the primary machine dead at Fault.At: the
	// harness runs the simulation to exactly that instant and fails over.
	FaultPrimaryKill FaultKind = iota
	// FaultLinkLag stretches the inter-machine link's latency by
	// Fault.Factor for the window [At, Until).
	FaultLinkLag
	// FaultLinkPartition drops the inter-machine link entirely for the
	// window [At, Until); shipping resumes (and drains its backlog) at
	// Until.
	FaultLinkPartition
	// FaultReplicaStall freezes replica Fault.Replica — it neither writes
	// nor acknowledges — for the window [At, Until).
	FaultReplicaStall
)

// String names the kind for logs and tables.
func (k FaultKind) String() string {
	switch k {
	case FaultPrimaryKill:
		return "primary-kill"
	case FaultLinkLag:
		return "link-lag"
	case FaultLinkPartition:
		return "link-partition"
	case FaultReplicaStall:
		return "replica-stall"
	default:
		return fmt.Sprintf("fault(%d)", k)
	}
}

// Fault is one scheduled failure: a point event (FaultPrimaryKill) or a
// window [At, Until).
type Fault struct {
	Kind    FaultKind
	At      Time
	Until   Time    // window end; unused by FaultPrimaryKill
	Replica int     // FaultReplicaStall target
	Factor  float64 // FaultLinkLag latency multiplier
}

// FaultPlan is a deterministic failure schedule: a pure function of the
// Rand it was derived from, so a sweep's fault times are reproduced
// bit-identically on every run, serial or parallel.
type FaultPlan struct {
	Faults []Fault
}

// NewFaultPlan derives a plan from r for the measurement window
// [start, end): always one primary kill in the 60-80% stretch of the
// window, and — with windows set — a link-lag window, a link partition and
// a replica stall, all ending before the kill so their effects are visible
// in the measured run, not just truncated by it. All r draws happen in a
// fixed order: the same seed always yields the same plan.
func NewFaultPlan(r *Rand, start, end Time, replicas int, windows bool) FaultPlan {
	span := end.Sub(start)
	at := func(frac float64) Time { return start.Add(Duration(frac * float64(span))) }
	var p FaultPlan
	kill := 0.60 + 0.20*r.Float64()
	lagFactor := 4 + 4*r.Float64()
	partEnd := 0.38 + 0.04*r.Float64()
	stallTarget := 0
	if replicas > 1 {
		stallTarget = r.Intn(replicas)
	}
	if windows {
		p.Faults = append(p.Faults,
			Fault{Kind: FaultLinkLag, At: at(0.10), Until: at(0.25), Factor: lagFactor},
			Fault{Kind: FaultLinkPartition, At: at(0.30), Until: at(partEnd)},
			Fault{Kind: FaultReplicaStall, At: at(0.45), Until: at(0.55), Replica: stallTarget},
		)
	}
	p.Faults = append(p.Faults, Fault{Kind: FaultPrimaryKill, At: at(kill)})
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].At < p.Faults[j].At })
	return p
}

// KillTime returns the primary-kill instant, if the plan has one.
func (p FaultPlan) KillTime() (Time, bool) {
	for _, f := range p.Faults {
		if f.Kind == FaultPrimaryKill {
			return f.At, true
		}
	}
	return 0, false
}

// Schedule installs the plan's windowed faults on env: begin(f) fires at
// f.At and end(f) at f.Until, in time order. The primary kill is not
// scheduled — it is the harness's stopping point (RunUntil(KillTime())),
// not an in-simulation event.
func (p FaultPlan) Schedule(env *Env, begin, end func(Fault)) {
	for _, f := range p.Faults {
		if f.Kind == FaultPrimaryKill {
			continue
		}
		f := f
		env.At(f.At, func() { begin(f) })
		if f.Until > f.At {
			env.At(f.Until, func() { end(f) })
		}
	}
}
