package sim

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Env is a discrete-event simulation environment: a virtual clock plus an
// event queue. Processes spawned on an Env run strictly one at a time per
// shard; every wake-up is mediated by the event queue with ties broken by
// insertion order, so a simulation is deterministic for a given program and
// seed.
//
// An Env must be created with NewEnv and driven from a single goroutine via
// Run or RunUntil.
//
// The environment owns one or more shards, each a complete serial event
// kernel: its own clock, sequence counter and heap. NewEnv creates exactly
// one shard and everything runs on it — the serial kernel, unchanged.
// EnableParallel (parallel.go) adds shards that execute concurrently on host
// goroutines under a conservative-lookahead window protocol; processes and
// primitives are confined to one shard each, and the only cross-shard edge
// is Proc.CrossAt, which must respect the lookahead.
type Env struct {
	shs []*shard

	parallel   bool     // Shape ran: RunUntil uses the window protocol
	concurrent bool     // windows run on per-shard host goroutines, not inline
	workers    bool     // window workers have been spawned (first SetConcurrent(true))
	lookahead  Duration // minimum cross-shard scheduling distance (parallel only)

	spawnMu sync.Mutex // guards procs and live (proc exits race across shards)
	procs   []*Proc
	live    int // processes that have been spawned and not yet finished

	errMu  sync.Mutex  // guards err (process panics race across shards)
	err    error       // first process panic, adorned with a stack trace
	failed atomic.Bool // mirrors err != nil for lock-free dispatch checks

	closed bool
	dead   bool // Close ran: parked processes are being (or have been) reaped

	windowWG sync.WaitGroup // tracks in-flight shard windows (parallel only)
}

// shard is one serial event kernel: a clock, a sequence counter and a flat
// binary min-heap over []event keyed by (at, seq). Because seq is unique the
// key is a total order, so the pop sequence is independent of heap layout
// details — and unlike container/heap there is no interface boxing on push
// or type assertion on pop, which keeps the steady-state event loop
// allocation-free. All shard state except the inbox is touched only by the
// shard's own baton chain (or the driver between windows).
type shard struct {
	env      *Env
	id       int
	now      Time
	seq      uint64
	events   []event // binary min-heap ordered by (at, seq)
	cur      *Proc
	parked   chan struct{}
	horizon  Time   // active window bound; fast-path waits must not pass it
	executed uint64 // events executed, including fast-path waits

	// Parallel-mode fields (see parallel.go).
	start    chan struct{} // driver -> worker: run one window
	inboxMu  sync.Mutex
	inbox    []crossEvent // cross-shard arrivals, merged at the next barrier
	crossSeq uint64       // ticket counter for posts ORIGINATING on this shard
	windows  uint64       // window rounds this shard ran (parallel only)
	stalls   uint64       // barrier rounds this shard sat out on its bound

	// Host-side sampler hook (see SetSampler). The hook fires whenever the
	// shard clock crosses obsNext — checked at the two places the clock
	// advances (dispatch and the Wait fast path) — so sampling schedules no
	// kernel events and cannot perturb the event order.
	obsTick Duration
	obsNext Time
	obsFn   func(now Time)
}

type event struct {
	at  Time
	seq uint64
	p   *Proc  // process to wake, or
	fn  func() // callback to run in the scheduler
}

// NewEnv returns an empty single-shard environment with the clock at zero.
func NewEnv() *Env {
	e := &Env{}
	e.shs = []*shard{{env: e, id: 0, parked: make(chan struct{})}}
	return e
}

// Now returns the current simulated time: the shard clock on a serial
// environment, and the maximum shard clock on a parallel one (the time the
// whole machine has provably reached when the driver observes it between
// RunUntil calls).
func (e *Env) Now() Time {
	if !e.parallel {
		return e.shs[0].now
	}
	var m Time
	for _, s := range e.shs {
		if s.now > m {
			m = s.now
		}
	}
	return m
}

// Executed reports how many events the environment has executed so far
// (timer wakes, callbacks, and fast-path clock advances), summed over all
// shards. It is the denominator for kernel events/sec measurements.
func (e *Env) Executed() uint64 {
	var n uint64
	for _, s := range e.shs {
		n += s.executed
	}
	return n
}

// At schedules fn to run in the scheduler goroutine at time t (clamped to
// the present) on shard 0. Callbacks must not block; they are for
// lightweight bookkeeping such as statistics sampling. Consecutive due
// callbacks run back-to-back in the scheduler with no goroutine handoff.
func (e *Env) At(t Time, fn func()) { e.AtOn(0, t, fn) }

// AtOn schedules fn at time t on the given shard, clamped to that shard's
// present. It must be called from the driver between runs or from a process
// confined to the same shard; cross-shard scheduling from a running process
// must go through Proc.CrossAt, which enforces the lookahead.
func (e *Env) AtOn(shard int, t Time, fn func()) {
	s := e.shs[shard]
	if t < s.now {
		t = s.now
	}
	s.push(event{at: t, fn: fn})
}

// push assigns the next sequence number and sifts the event up the heap.
func (s *shard) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.events = append(s.events, ev)
	i := len(s.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := s.events[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		s.events[i] = p
		i = parent
	}
	s.events[i] = ev
}

// pop removes and returns the minimum event.
func (s *shard) pop() event {
	top := s.events[0]
	n := len(s.events) - 1
	last := s.events[n]
	s.events[n] = event{} // drop fn/p references for the collector
	s.events = s.events[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n {
				if s.events[r].at < s.events[c].at ||
					(s.events[r].at == s.events[c].at && s.events[r].seq < s.events[c].seq) {
					c = r
				}
			}
			if last.at < s.events[c].at || (last.at == s.events[c].at && last.seq < s.events[c].seq) {
				break
			}
			s.events[i] = s.events[c]
			i = c
		}
		s.events[i] = last
	}
	return top
}

// scheduleWake arranges for p to resume at time t on p's shard. Exactly one
// wake may be outstanding per parked process; double wakes are a kernel bug.
// t is clamped to the shard's present so a wake computed from a slightly
// stale clock can never drag the shard backwards in time.
func (e *Env) scheduleWake(p *Proc, t Time) {
	if p.waking {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.waking = true
	if t < p.sh.now {
		t = p.sh.now
	}
	p.sh.push(event{at: t, p: p})
}

// setErr records the first process panic; later panics are dropped.
func (e *Env) setErr(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
		e.failed.Store(true)
	}
	e.errMu.Unlock()
}

// firstErr returns the recorded process panic, if any.
func (e *Env) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// Run executes events until none remain or a process panics. Processes left
// blocked on queues, resources or signals when the event queue drains are
// abandoned; use Close on queues and Fire on signals to release them for a
// clean shutdown, or Env.Close to reap whatever remains. Run returns the
// first process panic as an error.
func (e *Env) Run() error { return e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps not after horizon. The clock
// stops at the last executed event (it does not jump to the horizon).
//
// Control is baton-passed: the driver dispatches the first event, and from
// then on each parking (or finishing) process pops the next event and wakes
// its target directly. A classic central scheduler costs two goroutine
// handoffs per event (process -> scheduler -> next process); the baton
// costs one, and the event order — hence every simulated result — is
// byte-for-byte the same.
//
// On a parallel environment RunUntil runs the conservative window protocol
// (parallel.go) instead; within each shard the baton discipline and event
// order are identical to the serial kernel.
func (e *Env) RunUntil(horizon Time) error {
	if e.closed {
		return fmt.Errorf("sim: environment already closed")
	}
	if e.parallel {
		return e.runParallel(horizon)
	}
	s := e.shs[0]
	s.horizon = horizon
	if s.dispatch(nil) == batonHanded {
		<-s.parked
	}
	if err := e.firstErr(); err != nil {
		e.closed = true
		return err
	}
	return nil
}

// baton reports where dispatch left control.
type baton int

const (
	batonIdle   baton = iota // nothing runnable: the caller still holds the baton
	batonHanded              // another process was woken; the caller must block
	batonSelf                // the caller's own wake came up: keep running
)

// dispatch executes ready events until one hands the baton to a process or
// nothing remains within the shard's horizon. self is the dispatching
// process (nil for the driver or window worker); popping self's own wake
// returns batonSelf so the caller continues without any channel handoff at
// all. Callback events run inline in the dispatching goroutine — batched
// back-to-back with no handoff.
func (s *shard) dispatch(self *Proc) baton {
	e := s.env
	s.cur = nil
	for {
		if e.dead || e.failed.Load() || len(s.events) == 0 || s.events[0].at > s.horizon {
			return batonIdle
		}
		ev := s.pop()
		s.now = ev.at
		s.executed++
		if s.obsFn != nil && s.now >= s.obsNext {
			s.fireObs()
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.p
		p.waking = false
		s.cur = p
		if p == self {
			return batonSelf
		}
		p.wake <- struct{}{}
		return batonHanded
	}
}

// procKilled is the panic sentinel Close injects into parked processes so
// their goroutines unwind and exit; Spawn's recovery treats it as a normal
// termination, not a process error.
type procKilled struct{}

// Close reaps every process still blocked in the environment — processes
// left parked when RunUntil returned early on a panic, or blocked forever
// on queues and resources no one will ever signal — on every shard, not
// just shard 0. Each is woken once and unwound via a panic sentinel, so its
// goroutine exits and Live drops to zero; on a parallel environment the
// per-shard window workers are then shut down too. The environment is
// unusable afterwards; Close is idempotent and must be called from the
// driving goroutine, never from a process.
func (e *Env) Close() {
	if e.dead {
		return
	}
	e.dead = true
	e.closed = true
	for _, p := range e.procs {
		if p.done.Load() {
			continue
		}
		p.wake <- struct{}{}
		// The unwinding process dispatches on its own shard, finds the
		// environment dead, and parks the baton there — which is the receipt
		// that its goroutine has passed its last observable action.
		<-p.sh.parked
	}
	e.procs = nil
	for _, s := range e.shs {
		s.events = nil
		if s.start != nil {
			// Close the channel but leave the field set: the worker's own
			// read of s.start (its range setup) has no ordering edge back to
			// this goroutine if it never ran a window, so nilling the field
			// here would race with it. e.dead already makes Close idempotent.
			close(s.start) // window worker exits
		}
	}
}

// Spawn starts a new simulated process executing fn on shard 0. The process
// begins at the current simulated time, after the caller parks or returns.
// The name appears in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc { return e.SpawnOn(0, name, fn) }

// SpawnOn starts a new simulated process confined to the given shard. On a
// parallel environment a process must only touch primitives bound to its
// own shard (see Queue.OnShard, Resource.OnShard, Signal.OnShard) and talk
// to other shards through Proc.CrossAt. Spawning onto a foreign shard while
// that shard is running is a data race; spawn at setup time, from the
// driver, or onto the caller's own shard.
func (e *Env) SpawnOn(shard int, name string, fn func(p *Proc)) *Proc {
	s := e.shs[shard]
	p := &Proc{env: e, sh: s, name: name, wake: make(chan struct{})}
	e.spawnMu.Lock()
	e.live++
	// procs exists so Close can reap; drop finished entries once they
	// dominate, so long runs with many short-lived processes stay O(live).
	if len(e.procs) >= 64 && len(e.procs) >= 2*e.live {
		kept := e.procs[:0]
		for _, old := range e.procs {
			if !old.done.Load() {
				kept = append(kept, old)
			}
		}
		for i := len(kept); i < len(e.procs); i++ {
			e.procs[i] = nil
		}
		e.procs = kept
	}
	e.procs = append(e.procs, p)
	e.spawnMu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(procKilled); !killed {
					e.setErr(fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack()))
				}
			}
			p.done.Store(true)
			e.spawnMu.Lock()
			e.live--
			e.spawnMu.Unlock()
			if s.dispatch(nil) == batonIdle {
				s.parked <- struct{}{}
			}
		}()
		<-p.wake
		if e.dead {
			panic(procKilled{})
		}
		fn(p)
	}()
	e.scheduleWake(p, s.now)
	return p
}

// Live reports the number of spawned processes that have not finished.
func (e *Env) Live() int {
	e.spawnMu.Lock()
	defer e.spawnMu.Unlock()
	return e.live
}

// Proc is a simulated process: a goroutine that runs only when the scheduler
// wakes it and must park (via Wait or a blocking kernel primitive) or return
// to yield control. All Proc methods must be called from the process's own
// goroutine. A process is confined to the shard it was spawned on.
type Proc struct {
	env    *Env
	sh     *shard
	name   string
	wake   chan struct{}
	waking bool
	done   atomic.Bool
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Shard returns the shard index the process is confined to.
func (p *Proc) Shard() int { return p.sh.id }

// Now returns the current simulated time on the process's shard.
func (p *Proc) Now() Time { return p.sh.now }

// park yields the baton and blocks until some event wakes p. The caller
// must have arranged a wake (a timer event or registration on a
// queue/resource/signal waiter list) before parking. The parking goroutine
// dispatches the next event itself; the baton returns to the driver (or the
// shard's window worker) only when nothing is runnable.
func (p *Proc) park() {
	if p.env.dead {
		panic(procKilled{})
	}
	switch p.sh.dispatch(p) {
	case batonSelf:
		// Our own wake was the next event: continue without blocking.
	case batonHanded:
		<-p.wake
	case batonIdle:
		p.sh.parked <- struct{}{}
		<-p.wake
	}
	if p.env.dead {
		panic(procKilled{})
	}
}

// Wait advances the process's local time by d without consuming any modelled
// resource. Negative durations are treated as zero.
//
// When the wake this Wait would schedule is provably the next event — no
// queued event precedes it and it stays inside the shard's horizon — the
// clock advances directly: no heap push, no park, no scheduler round trip.
// The schedule is bit-identical to the slow path because the skipped event
// would have been popped immediately with nothing able to run in between.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sh
	t := s.now.Add(d)
	if s.cur == p && t <= s.horizon && (len(s.events) == 0 || s.events[0].at > t) {
		s.now = t
		s.executed++
		if s.obsFn != nil && s.now >= s.obsNext {
			s.fireObs()
		}
		return
	}
	p.env.scheduleWake(p, t)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// runnable event at this timestamp execute first.
func (p *Proc) Yield() { p.Wait(0) }

// Suspend parks the process indefinitely. The caller must have registered
// the process somewhere a later Resume will find it — Suspend/Resume is the
// primitive behind worker pools that reuse one process (and its goroutine)
// for many units of work instead of spawning per unit. A Resume costs
// exactly what a Spawn's initial wake costs (one event at the current
// time), so pooling changes allocation behavior, never the event schedule.
func (p *Proc) Suspend() { p.park() }

// Resume schedules suspended process p to continue at the current time on
// p's shard. Resuming a process that is not suspended (or already has a
// wake pending) panics. On a parallel environment Resume must come from p's
// own shard (or a CrossAt callback delivered to it).
func (e *Env) Resume(p *Proc) { e.scheduleWake(p, p.sh.now) }

// SetSampler installs a host-side observation hook on a shard: fn runs, on
// that shard's executing goroutine, the first time the shard clock reaches
// each multiple of tick. The hook is out of band — it is invoked from the
// clock-advance path rather than from a scheduled event, so installing it
// pushes nothing onto the heap, allocates no sequence numbers and cannot
// change the event order, window bounds or any simulated result. fn must
// only read simulation state (and write host-side records); it runs with
// the shard mid-event, must not block and must not touch kernel
// primitives. A nil fn removes the hook. tick must be positive.
func (e *Env) SetSampler(shard int, tick Duration, fn func(now Time)) {
	s := e.shs[shard]
	if fn == nil {
		s.obsFn = nil
		return
	}
	if tick <= 0 {
		panic("sim: SetSampler needs a positive tick")
	}
	s.obsTick = tick
	s.obsNext = s.now.Add(tick)
	s.obsFn = fn
}

// fireObs invokes the sampler for the tick boundary the clock just crossed,
// then advances the next boundary past the present — one sample per tick
// while the shard is busy, a single catch-up sample (at the last crossed
// boundary) after an idle jump. The cadence is a pure function of the
// shard's event times, so it is identical on the serial and concurrent
// kernels.
func (s *shard) fireObs() {
	t := s.obsNext
	tick := Time(s.obsTick)
	if behind := s.now - t; behind >= tick {
		k := behind / tick
		t += k * tick
	}
	s.obsNext = t + tick
	s.obsFn(t)
}

// ShardCounters returns one shard's cumulative kernel counters: events
// executed (including fast-path clock advances), window rounds run and
// barrier rounds sat out (both zero on the serial kernel). Safe from the
// driver between runs or from code executing on that shard.
func (e *Env) ShardCounters(shard int) (executed, windows, stalls uint64) {
	s := e.shs[shard]
	return s.executed, s.windows, s.stalls
}
