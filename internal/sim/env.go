package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
)

// Env is a discrete-event simulation environment: a virtual clock plus an
// event queue. Processes spawned on an Env run strictly one at a time; every
// wake-up is mediated by the event queue with ties broken by insertion
// order, so a simulation is deterministic for a given program and seed.
//
// An Env must be created with NewEnv and driven from a single goroutine via
// Run or RunUntil.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	cur    *Proc
	parked chan struct{}
	live   int   // processes that have been spawned and not yet finished
	err    error // first process panic, adorned with a stack trace
	closed bool
}

type event struct {
	at  Time
	seq uint64
	p   *Proc  // process to wake, or
	fn  func() // callback to run in the scheduler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Env) Now() Time { return e.now }

// At schedules fn to run in the scheduler goroutine at time t (clamped to
// the present). Callbacks must not block; they are for lightweight
// bookkeeping such as statistics sampling.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(event{at: t, fn: fn})
}

func (e *Env) push(ev event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// scheduleWake arranges for p to resume at time t. Exactly one wake may be
// outstanding per parked process; double wakes are a kernel bug.
func (e *Env) scheduleWake(p *Proc, t Time) {
	if p.waking {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.waking = true
	e.push(event{at: t, p: p})
}

// Run executes events until none remain or a process panics. Processes left
// blocked on queues, resources or signals when the event queue drains are
// abandoned; use Close on queues and Fire on signals to release them for a
// clean shutdown. Run returns the first process panic as an error.
func (e *Env) Run() error { return e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps not after horizon. The clock
// stops at the last executed event (it does not jump to the horizon).
func (e *Env) RunUntil(horizon Time) error {
	if e.closed {
		return fmt.Errorf("sim: environment already closed")
	}
	for len(e.events) > 0 {
		if e.events[0].at > horizon {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.p
		p.waking = false
		e.cur = p
		p.wake <- struct{}{}
		<-e.parked
		e.cur = nil
		if e.err != nil {
			e.closed = true
			return e.err
		}
	}
	return nil
}

// Spawn starts a new simulated process executing fn. The process begins at
// the current simulated time, after the caller parks or returns. The name
// appears in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.live++
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if e.err == nil {
					e.err = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.done = true
			e.live--
			e.parked <- struct{}{}
		}()
		fn(p)
	}()
	e.scheduleWake(p, e.now)
	return p
}

// Live reports the number of spawned processes that have not finished.
func (e *Env) Live() int { return e.live }

// Proc is a simulated process: a goroutine that runs only when the scheduler
// wakes it and must park (via Wait or a blocking kernel primitive) or return
// to yield control. All Proc methods must be called from the process's own
// goroutine.
type Proc struct {
	env    *Env
	name   string
	wake   chan struct{}
	waking bool
	done   bool
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.env.now }

// park yields to the scheduler and blocks until some event wakes p. The
// caller must have arranged a wake (a timer event or registration on a
// queue/resource/signal waiter list) before parking.
func (p *Proc) park() {
	p.env.parked <- struct{}{}
	<-p.wake
}

// Wait advances the process's local time by d without consuming any modelled
// resource. Negative durations are treated as zero.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.scheduleWake(p, p.env.now.Add(d))
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// runnable event at this timestamp execute first.
func (p *Proc) Yield() { p.Wait(0) }
