package sim

import (
	"fmt"
	"runtime/debug"
)

// Env is a discrete-event simulation environment: a virtual clock plus an
// event queue. Processes spawned on an Env run strictly one at a time; every
// wake-up is mediated by the event queue with ties broken by insertion
// order, so a simulation is deterministic for a given program and seed.
//
// An Env must be created with NewEnv and driven from a single goroutine via
// Run or RunUntil.
//
// The event queue is a hand-specialized binary min-heap over a flat []event
// keyed by (at, seq). Because seq is unique the key is a total order, so the
// pop sequence is independent of heap layout details — and unlike
// container/heap there is no interface boxing on push or type assertion on
// pop, which keeps the steady-state event loop allocation-free.
type Env struct {
	now      Time
	seq      uint64
	events   []event // binary min-heap ordered by (at, seq)
	cur      *Proc
	parked   chan struct{}
	live     int   // processes that have been spawned and not yet finished
	err      error // first process panic, adorned with a stack trace
	closed   bool
	dead     bool // Close ran: parked processes are being (or have been) reaped
	horizon  Time // active RunUntil bound; fast-path waits must not pass it
	procs    []*Proc
	executed uint64 // events executed, including fast-path waits
}

type event struct {
	at  Time
	seq uint64
	p   *Proc  // process to wake, or
	fn  func() // callback to run in the scheduler
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current simulated time.
func (e *Env) Now() Time { return e.now }

// Executed reports how many events the environment has executed so far
// (timer wakes, callbacks, and fast-path clock advances). It is the
// denominator for kernel events/sec measurements.
func (e *Env) Executed() uint64 { return e.executed }

// At schedules fn to run in the scheduler goroutine at time t (clamped to
// the present). Callbacks must not block; they are for lightweight
// bookkeeping such as statistics sampling. Consecutive due callbacks run
// back-to-back in the scheduler with no goroutine handoff.
func (e *Env) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(event{at: t, fn: fn})
}

// push assigns the next sequence number and sifts the event up the heap.
func (e *Env) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := e.events[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		e.events[i] = p
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the minimum event.
func (e *Env) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{} // drop fn/p references for the collector
	e.events = e.events[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n {
				if e.events[r].at < e.events[c].at ||
					(e.events[r].at == e.events[c].at && e.events[r].seq < e.events[c].seq) {
					c = r
				}
			}
			if last.at < e.events[c].at || (last.at == e.events[c].at && last.seq < e.events[c].seq) {
				break
			}
			e.events[i] = e.events[c]
			i = c
		}
		e.events[i] = last
	}
	return top
}

// scheduleWake arranges for p to resume at time t. Exactly one wake may be
// outstanding per parked process; double wakes are a kernel bug.
func (e *Env) scheduleWake(p *Proc, t Time) {
	if p.waking {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.waking = true
	e.push(event{at: t, p: p})
}

// Run executes events until none remain or a process panics. Processes left
// blocked on queues, resources or signals when the event queue drains are
// abandoned; use Close on queues and Fire on signals to release them for a
// clean shutdown, or Env.Close to reap whatever remains. Run returns the
// first process panic as an error.
func (e *Env) Run() error { return e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps not after horizon. The clock
// stops at the last executed event (it does not jump to the horizon).
//
// Control is baton-passed: the driver dispatches the first event, and from
// then on each parking (or finishing) process pops the next event and wakes
// its target directly. A classic central scheduler costs two goroutine
// handoffs per event (process -> scheduler -> next process); the baton
// costs one, and the event order — hence every simulated result — is
// byte-for-byte the same.
func (e *Env) RunUntil(horizon Time) error {
	if e.closed {
		return fmt.Errorf("sim: environment already closed")
	}
	e.horizon = horizon
	if e.dispatch(nil) == batonHanded {
		<-e.parked
	}
	if e.err != nil {
		e.closed = true
		return e.err
	}
	return nil
}

// baton reports where dispatch left control.
type baton int

const (
	batonIdle   baton = iota // nothing runnable: the caller still holds the baton
	batonHanded              // another process was woken; the caller must block
	batonSelf                // the caller's own wake came up: keep running
)

// dispatch executes ready events until one hands the baton to a process or
// nothing remains within the horizon. self is the dispatching process (nil
// for the driver); popping self's own wake returns batonSelf so the caller
// continues without any channel handoff at all. Callback events run inline
// in the dispatching goroutine — batched back-to-back with no handoff.
func (e *Env) dispatch(self *Proc) baton {
	e.cur = nil
	for {
		if e.dead || e.err != nil || len(e.events) == 0 || e.events[0].at > e.horizon {
			return batonIdle
		}
		ev := e.pop()
		e.now = ev.at
		e.executed++
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.p
		p.waking = false
		e.cur = p
		if p == self {
			return batonSelf
		}
		p.wake <- struct{}{}
		return batonHanded
	}
}

// procKilled is the panic sentinel Close injects into parked processes so
// their goroutines unwind and exit; Spawn's recovery treats it as a normal
// termination, not a process error.
type procKilled struct{}

// Close reaps every process still blocked in the environment — processes
// left parked when RunUntil returned early on a panic, or blocked forever
// on queues and resources no one will ever signal. Each is woken once and
// unwound via a panic sentinel, so its goroutine exits and Live drops to
// zero. The environment is unusable afterwards; Close is idempotent and
// must be called from the driving goroutine, never from a process.
func (e *Env) Close() {
	if e.dead {
		return
	}
	e.dead = true
	e.closed = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.wake <- struct{}{}
		<-e.parked
	}
	e.procs = nil
	e.events = nil
}

// Spawn starts a new simulated process executing fn. The process begins at
// the current simulated time, after the caller parks or returns. The name
// appears in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.live++
	// procs exists so Close can reap; drop finished entries once they
	// dominate, so long runs with many short-lived processes stay O(live).
	if len(e.procs) >= 64 && len(e.procs) >= 2*e.live {
		kept := e.procs[:0]
		for _, old := range e.procs {
			if !old.done {
				kept = append(kept, old)
			}
		}
		for i := len(kept); i < len(e.procs); i++ {
			e.procs[i] = nil
		}
		e.procs = kept
	}
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(procKilled); !killed && e.err == nil {
					e.err = fmt.Errorf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.done = true
			e.live--
			if e.dispatch(nil) == batonIdle {
				e.parked <- struct{}{}
			}
		}()
		<-p.wake
		if e.dead {
			panic(procKilled{})
		}
		fn(p)
	}()
	e.scheduleWake(p, e.now)
	return p
}

// Live reports the number of spawned processes that have not finished.
func (e *Env) Live() int { return e.live }

// Proc is a simulated process: a goroutine that runs only when the scheduler
// wakes it and must park (via Wait or a blocking kernel primitive) or return
// to yield control. All Proc methods must be called from the process's own
// goroutine.
type Proc struct {
	env    *Env
	name   string
	wake   chan struct{}
	waking bool
	done   bool
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.env.now }

// park yields the baton and blocks until some event wakes p. The caller
// must have arranged a wake (a timer event or registration on a
// queue/resource/signal waiter list) before parking. The parking goroutine
// dispatches the next event itself; the baton returns to the driver only
// when nothing is runnable.
func (p *Proc) park() {
	if p.env.dead {
		panic(procKilled{})
	}
	switch p.env.dispatch(p) {
	case batonSelf:
		// Our own wake was the next event: continue without blocking.
	case batonHanded:
		<-p.wake
	case batonIdle:
		p.env.parked <- struct{}{}
		<-p.wake
	}
	if p.env.dead {
		panic(procKilled{})
	}
}

// Wait advances the process's local time by d without consuming any modelled
// resource. Negative durations are treated as zero.
//
// When the wake this Wait would schedule is provably the next event — no
// queued event precedes it and it stays inside the driver's horizon — the
// clock advances directly: no heap push, no park, no scheduler round trip.
// The schedule is bit-identical to the slow path because the skipped event
// would have been popped immediately with nothing able to run in between.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	t := e.now.Add(d)
	if e.cur == p && t <= e.horizon && (len(e.events) == 0 || e.events[0].at > t) {
		e.now = t
		e.executed++
		return
	}
	e.scheduleWake(p, t)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// runnable event at this timestamp execute first.
func (p *Proc) Yield() { p.Wait(0) }

// Suspend parks the process indefinitely. The caller must have registered
// the process somewhere a later Resume will find it — Suspend/Resume is the
// primitive behind worker pools that reuse one process (and its goroutine)
// for many units of work instead of spawning per unit. A Resume costs
// exactly what a Spawn's initial wake costs (one event at the current
// time), so pooling changes allocation behavior, never the event schedule.
func (p *Proc) Suspend() { p.park() }

// Resume schedules suspended process p to continue at the current time.
// Resuming a process that is not suspended (or already has a wake pending)
// panics.
func (e *Env) Resume(p *Proc) { e.scheduleWake(p, e.now) }
