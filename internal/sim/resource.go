package sim

// Resource models a server pool with a fixed number of identical slots and a
// FIFO wait queue: CPU cores, memory channels, a log device, a latch
// (capacity 1). Acquire blocks the calling process while all slots are busy.
//
// Resource also accumulates busy time so harnesses can report utilization.
type Resource struct {
	env      *Env
	sh       *shard // owner shard: clock source and confinement domain
	name     string
	capacity int
	inUse    int
	waiters  waitRing

	busy      Duration // integral of inUse over time
	lastStamp Time
	acquires  int64
	waited    Duration // total time processes spent queued
}

// NewResource returns a resource with the given number of slots.
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, sh: env.shs[0], name: name, capacity: capacity}
}

// OnShard rebinds the resource to the given shard and returns it. On a
// parallel environment every use of a resource must come from a process on
// the resource's shard; binding is a setup-time act.
func (r *Resource) OnShard(i int) *Resource {
	r.sh = r.env.shs[i]
	return r
}

func (r *Resource) stamp() {
	now := r.sh.now
	r.busy += Duration(now-r.lastStamp) * Duration(r.inUse)
	r.lastStamp = now
}

// Acquire claims one slot, blocking in FIFO order while none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.env.parallel && p.sh != r.sh {
		panic("sim: process " + p.name + " acquires resource " + r.name + " owned by another shard")
	}
	r.acquires++
	start := r.sh.now
	for r.inUse >= r.capacity {
		r.waiters.push(p)
		p.park()
	}
	r.waited += r.sh.now.Sub(start)
	r.stamp()
	r.inUse++
}

// TryAcquire claims a slot only if one is free right now.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.acquires++
	r.stamp()
	r.inUse++
	return true
}

// Release frees one slot and wakes the longest-waiting process, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.stamp()
	r.inUse--
	if w := r.waiters.pop(); w != nil {
		r.env.scheduleWake(w, r.sh.now)
	}
}

// Use acquires a slot, holds it for d, then releases it. It is the common
// pattern for charging service time at a contended resource.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// InUse reports the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes blocked in Acquire.
func (r *Resource) QueueLen() int { return r.waiters.len() }

// BusyTime returns the slot-time integral consumed so far (slots × time).
func (r *Resource) BusyTime() Duration { r.stamp(); return r.busy }

// WaitTime returns the total time processes have spent queued.
func (r *Resource) WaitTime() Duration { return r.waited }

// Acquires returns the number of successful or pending Acquire/TryAcquire calls.
func (r *Resource) Acquires() int64 { return r.acquires }

// Utilization returns busy slot-time divided by capacity × elapsed, in [0,1].
func (r *Resource) Utilization() float64 {
	elapsed := Duration(r.sh.now)
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / (float64(elapsed) * float64(r.capacity))
}
