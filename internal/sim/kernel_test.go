package sim

import "testing"

// TestQueueAccountingWithPutFront pins the accounting contract across both
// enqueue paths: Puts counts every enqueue, MaxLen tracks the high-water
// mark, and ResidenceTime integrates queue time for normal and priority
// items alike.
func TestQueueAccountingWithPutFront(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Spawn("p", func(p *Proc) {
		q.Put(p, 1)   // resident 30ns
		q.PutFront(2) // resident 30ns, at the head
		p.Wait(10 * Nanosecond)
		q.Put(p, 3) // resident 20ns
		p.Wait(20 * Nanosecond)
		if v, _ := q.TryGet(); v != 2 {
			t.Errorf("head = %v, want the PutFront item 2", v)
		}
		q.TryGet()
		q.TryGet()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Puts() != 3 {
		t.Errorf("Puts = %d, want 3 (PutFront must count)", q.Puts())
	}
	if q.MaxLen() != 3 {
		t.Errorf("MaxLen = %d, want 3", q.MaxLen())
	}
	if want := 80 * Nanosecond; q.ResidenceTime() != want {
		t.Errorf("ResidenceTime = %v, want %v", q.ResidenceTime(), want)
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

// TestQueuePutFrontAheadOfWaitingItems checks that a priority item passes
// every item already waiting in the queue, including across ring growth.
func TestQueuePutFrontAheadOfWaitingItems(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	var got []int
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 20; i++ { // force several ring growths
			q.Put(p, i)
		}
		q.PutFront(100)
		q.PutFront(101) // most recent priority item first
		for {
			v, ok := q.TryGet()
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 22 || got[0] != 101 || got[1] != 100 {
		t.Fatalf("priority items did not jump the backlog: %v", got)
	}
	for i := 0; i < 20; i++ {
		if got[i+2] != i {
			t.Fatalf("backlog order disturbed: %v", got)
		}
	}
}

// TestQueueRingWraparound cycles a bounded queue far past its ring capacity
// in both FIFO and priority directions, checking order survives wraps.
func TestQueueRingWraparound(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	env.Spawn("p", func(p *Proc) {
		next := 0
		for round := 0; round < 50; round++ {
			for i := 0; i < 3; i++ {
				q.Put(p, round*10+i)
			}
			for i := 0; i < 3; i++ {
				v, ok := q.TryGet()
				if !ok || v != round*10+i {
					t.Errorf("round %d: got %v ok=%v, want %d", round, v, ok, round*10+i)
					return
				}
				next++
			}
		}
		if q.Len() != 0 {
			t.Errorf("queue not empty after cycles: %d", q.Len())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseReapsParkedProcesses is the goroutine-leak regression test: a
// process panic ends the run while other processes are still parked on a
// queue nobody will ever close; Env.Close must unwind and reap them all.
func TestCloseReapsParkedProcesses(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	for i := 0; i < 3; i++ {
		env.Spawn("blocked", func(p *Proc) {
			q.Get(p) // parks forever: no producer, never closed
		})
	}
	env.Spawn("boom", func(p *Proc) {
		p.Wait(Nanosecond)
		panic("kaboom")
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected the process panic as an error")
	}
	if env.Live() == 0 {
		t.Fatal("expected parked processes to be live before Close")
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Close left %d processes parked", env.Live())
	}
	env.Close() // idempotent
	if err := env.RunUntil(Time(Second)); err == nil {
		t.Fatal("closed environment must refuse to run")
	}
}

// TestCloseReapsCleanRunLeftovers checks Close also reaps processes that a
// clean (error-free) run left blocked on kernel primitives.
func TestCloseReapsCleanRunLeftovers(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, "r", 1)
	env.Spawn("holder", func(p *Proc) {
		res.Acquire(p) // acquired and never released
	})
	env.Spawn("waiter", func(p *Proc) {
		p.Wait(Nanosecond)
		res.Acquire(p) // parks forever
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Live() != 1 {
		t.Fatalf("Live = %d, want 1 parked waiter", env.Live())
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Close left %d processes", env.Live())
	}
}

// TestWaitFastPathRespectsCallbacks checks the direct-advance fast path
// never skips over a scheduled callback: the callback must observe its own
// timestamp, strictly before the waiting process resumes.
func TestWaitFastPathRespectsCallbacks(t *testing.T) {
	env := NewEnv()
	var cbAt, wakeAt Time
	env.At(3*Time(Nanosecond), func() { cbAt = env.Now() })
	env.Spawn("w", func(p *Proc) {
		p.Wait(5 * Nanosecond) // must take the slow path: callback intervenes
		wakeAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if cbAt != 3*Time(Nanosecond) {
		t.Errorf("callback ran at %v, want 3ns", cbAt)
	}
	if wakeAt != 5*Time(Nanosecond) {
		t.Errorf("process resumed at %v, want 5ns", wakeAt)
	}
}

// TestWaitFastPathStopsAtHorizon checks the fast path cannot run the clock
// past a RunUntil horizon (the slow path parks the process instead).
func TestWaitFastPathStopsAtHorizon(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(Nanosecond) // sole runnable: eligible for the fast path
			ticks++
		}
	})
	if err := env.RunUntil(Time(7 * Nanosecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 7 {
		t.Fatalf("ticks = %d, want 7 (fast path overran the horizon)", ticks)
	}
	if env.Now() != Time(7*Nanosecond) {
		t.Fatalf("clock at %v, want 7ns", env.Now())
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Fatalf("ticks = %d after Run, want 100", ticks)
	}
}

// TestSuspendResume checks the worker-pool primitive: a suspended process
// resumes at the current time, after already-queued same-time events.
func TestSuspendResume(t *testing.T) {
	env := NewEnv()
	var worker *Proc
	var order []string
	idle := false
	env.Spawn("worker", func(p *Proc) {
		worker = p
		for round := 0; round < 2; round++ {
			idle = true
			p.Suspend()
			order = append(order, "work")
		}
	})
	env.Spawn("feeder", func(p *Proc) {
		for i := 0; i < 2; i++ {
			p.Wait(Microsecond)
			if !idle {
				t.Error("feeder ran before worker went idle")
			}
			idle = false
			order = append(order, "feed")
			p.Env().Resume(worker)
			p.Wait(Microsecond / 2)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"feed", "work", "feed", "work"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestExecutedCountsEvents checks the events/sec denominator includes both
// scheduled wakes and fast-path advances.
func TestExecutedCountsEvents(t *testing.T) {
	env := NewEnv()
	env.Spawn("w", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(Nanosecond)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 spawn wake + 10 waits.
	if got := env.Executed(); got != 11 {
		t.Fatalf("Executed = %d, want 11", got)
	}
}

// BenchmarkKernelEventLoop measures the steady-state event loop: a closed
// set of processes timer-stepping through interleaved waits, the hot path
// under every simulated measurement. Run with -benchmem: the loop must not
// allocate per event (the container/heap kernel paid two boxing
// allocations per event plus waiter-slice churn).
func BenchmarkKernelEventLoop(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	const procs = 16
	for i := 0; i < procs; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				p.Wait(Duration(1 + (i+j)%7))
			}
		})
	}
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Executed())/float64(b.N), "events/op")
}

// BenchmarkKernelQueuePingPong measures a producer/consumer pair through a
// Queue — the DORA action-queue shape — including a PutFront per round.
func BenchmarkKernelQueuePingPong(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	q := NewQueue[int](env, "q", 0)
	done := 0
	env.Spawn("consumer", func(p *Proc) {
		for {
			_, ok := q.Get(p)
			if !ok {
				return
			}
			done++
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(p, i)
			q.PutFront(i)
			p.Wait(Nanosecond)
		}
		q.Close()
	})
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	if done != 2*b.N {
		b.Fatalf("done = %d, want %d", done, 2*b.N)
	}
}
