package txn

import (
	"bytes"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

func fixture() (*sim.Env, *platform.Platform, *wal.Store, *wal.Manager, *Manager) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	store := wal.NewStore(pl.SSD)
	lm := wal.NewManager(pl, store, wal.DefaultManagerConfig())
	ls := wal.NewLogSet(pl, []wal.LogShard{{App: lm, Store: store}})
	tm := NewManager(env, ls, DefaultConfig())
	return env, pl, store, lm, tm
}

func TestBeginAssignsDistinctIDs(t *testing.T) {
	env, pl, _, lm, tm := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		a := tm.Begin(task)
		b := tm.Begin(task)
		if a.ID == b.ID {
			t.Error("duplicate txn ids")
		}
		if a.State != Active || b.State != Active {
			t.Error("not active")
		}
		task.Flush()
		lm.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Begins() != 2 {
		t.Fatalf("begins=%d", tm.Begins())
	}
}

func TestCommitBecomesDurableAndLogged(t *testing.T) {
	env, pl, store, lm, tm := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		tx := tm.Begin(task)
		tm.LogInsert(task, tx, 5, []byte("key"), []byte("row"))
		done := tm.Commit(task, tx)
		task.Flush()
		done.Await(p)
		if tx.State != Committed {
			t.Error("state not committed")
		}
		lm.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	var types []wal.RecType
	if err := wal.Scan(store.Bytes(), 0, func(r wal.Record) bool {
		types = append(types, r.Type)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []wal.RecType{wal.RecBegin, wal.RecInsert, wal.RecCommit}
	if len(types) != len(want) {
		t.Fatalf("log types %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("log types %v, want %v", types, want)
		}
	}
}

func TestAbortAppliesUndoInReverse(t *testing.T) {
	env, pl, _, lm, tm := fixture()
	var undone []string
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		tx := tm.Begin(task)
		tm.LogInsert(task, tx, 1, []byte("a"), []byte("va"))
		tm.LogUpdate(task, tx, 1, []byte("b"), []byte("old"), []byte("new"))
		tm.LogDelete(task, tx, 1, []byte("c"), []byte("vc"))
		tm.Abort(task, tx, func(u UndoRec) {
			undone = append(undone, string(u.Key))
		})
		if tx.State != Aborted {
			t.Error("state not aborted")
		}
		task.Flush()
		lm.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(undone) != 3 || undone[0] != "c" || undone[1] != "b" || undone[2] != "a" {
		t.Fatalf("undo order %v, want reverse", undone)
	}
	if tm.Aborts() != 1 {
		t.Fatalf("aborts=%d", tm.Aborts())
	}
}

func TestUndoCarriesBeforeImages(t *testing.T) {
	env, pl, _, lm, tm := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		tx := tm.Begin(task)
		tm.LogUpdate(task, tx, 1, []byte("k"), []byte("before-img"), []byte("after-img"))
		tm.Abort(task, tx, func(u UndoRec) {
			if u.Type != wal.RecUpdate || !bytes.Equal(u.Before, []byte("before-img")) {
				t.Errorf("undo rec %+v", u)
			}
		})
		task.Flush()
		lm.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOperationsOnFinishedTxnPanic(t *testing.T) {
	env, pl, _, _, tm := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], &stats.Breakdown{})
		tx := tm.Begin(task)
		tm.Commit(task, tx)
		tm.LogInsert(task, tx, 1, []byte("x"), []byte("y")) // must panic
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected panic error")
	}
}

func TestXctComponentCharged(t *testing.T) {
	env, pl, _, lm, tm := fixture()
	bd := &stats.Breakdown{}
	env.Spawn("w", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[0], bd)
		tx := tm.Begin(task)
		tm.Commit(task, tx)
		task.Flush()
		lm.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(stats.CompXct) == 0 {
		t.Fatal("no Xct mgmt time charged")
	}
	if bd.Get(stats.CompLog) == 0 {
		t.Fatal("log records should charge Log mgmt")
	}
}
