// Package txn provides transaction lifecycle management shared by all
// engines: id assignment, begin/commit/abort with logical WAL records,
// in-memory undo for runtime rollback, and the group-commit handshake (the
// commit signal fires when the commit record is durable, so workers hand
// off and move on — the paper's "software can continue with something else
// rather than blocking").
//
// On a sharded log (wal.LogSet with one shard per socket) every data record
// lands on the shard of the partition that produced it, the commit record
// lands on the transaction's anchor shard, and the commit signal fires at
// the vector durable point: only when every touched shard has reached the
// transaction's horizon there. A single-shard log degenerates to the
// classic central-log behavior exactly.
//
// With log replication attached (wal.ReplicaSet) the vector durable point
// extends across machines: under sync and quorum modes the commit signal
// additionally waits for enough replica acknowledgements of every vector
// entry, so acknowledged commits survive a primary failure. Async mode and
// unreplicated runs keep the local-only wait — this package is oblivious
// to the difference, which lives entirely behind LogSet.CommitDurable.
package txn

import (
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota + 1
	Committed
	Aborted
)

// UndoRec is one in-memory undo entry; Apply-ing undo records in reverse
// order rolls a transaction back without touching the log.
type UndoRec struct {
	Table  uint16
	Type   wal.RecType // the forward operation being undone
	Key    []byte
	Before []byte // pre-image for updates/deletes
}

// Txn is one transaction.
type Txn struct {
	ID      uint64
	State   State
	Undo    []UndoRec
	LastLSN wal.LSN
	// Shards is the transaction's durability vector: the log shards its
	// data records landed on, each with the horizon of its last record
	// there, kept sorted by shard. Single-shard transactions (and every
	// transaction on a central log) have at most one entry.
	Shards []wal.ShardLSN
}

// note records that a data record reached horizon lsn on shard, keeping the
// vector sorted by shard id (a pure function of the shards touched).
func (tx *Txn) note(shard int, lsn wal.LSN) {
	tx.LastLSN = lsn
	tx.Shards = noteVec(tx.Shards, shard, lsn, false)
}

// noteVec inserts (shard, lsn) into a sorted durability vector. With max
// set, an existing entry only ever rises — merge order then cannot matter,
// which is what lets per-action scratch vectors merge in any fixed order.
func noteVec(vec []wal.ShardLSN, shard int, lsn wal.LSN, max bool) []wal.ShardLSN {
	for i, e := range vec {
		if e.Shard == shard {
			if !max || lsn > e.LSN {
				vec[i].LSN = lsn
			}
			return vec
		}
		if e.Shard > shard {
			vec = append(vec, wal.ShardLSN{})
			copy(vec[i+1:], vec[i:])
			vec[i] = wal.ShardLSN{Shard: shard, LSN: lsn}
			return vec
		}
	}
	return append(vec, wal.ShardLSN{Shard: shard, LSN: lsn})
}

// Writes is a per-action write buffer for engines whose actions execute
// concurrently on behalf of one transaction (the engine-sharded DORA
// kernel): each action logs through its own Writes instead of mutating the
// shared Txn, and the transaction's owner merges the buffers back — in
// action order, at the phase barrier — with MergeWrites. Per-shard LSNs are
// merged by maximum, so the merged vector is identical to what serial
// execution's overwrite-in-order would have produced (per-shard horizons
// are monotone).
type Writes struct {
	Undo   []UndoRec
	Shards []wal.ShardLSN
}

// MergeWrites folds one action's write buffer into the transaction: undo
// records append in buffer order, vector entries merge by max LSN.
func (tx *Txn) MergeWrites(w *Writes) {
	tx.Undo = append(tx.Undo, w.Undo...)
	for _, e := range w.Shards {
		tx.Shards = noteVec(tx.Shards, e.Shard, e.LSN, true)
	}
}

// Config tunes the CPU costs of transaction management (the Figure 3
// "Xct mgmt" component).
type Config struct {
	BeginInstr  int // context allocation, timestamp, registration
	CommitInstr int // state transitions, release preparation
	AbortInstr  int // per-abort fixed cost (undo is charged by the applier)
}

// DefaultConfig returns calibrated Shore-MT-like costs.
func DefaultConfig() Config {
	return Config{BeginInstr: 350, CommitInstr: 450, AbortInstr: 500}
}

// Manager hands out transactions and drives their lifecycle against a log
// set.
type Manager struct {
	cfg    Config
	log    *wal.LogSet
	env    *sim.Env
	nextID uint64

	begins  int64
	commits int64
	aborts  int64

	// Per-socket mode (ShardPerSocket): id assignment and lifecycle
	// counters stride by socket so terminals on concurrent kernel shards
	// never touch a shared counter, and commit/abort records anchor on the
	// caller's socket so every append stays shard-local.
	nSock     int
	nextIDs   []uint64
	beginsBy  []int64
	commitsBy []int64
	abortsBy  []int64
}

// NewManager creates a transaction manager appending to log.
func NewManager(env *sim.Env, log *wal.LogSet, cfg Config) *Manager {
	return &Manager{cfg: cfg, log: log, env: env, nextID: 1}
}

// ShardPerSocket switches the manager to per-socket operation for an
// engine-sharded run on an nSockets-socket machine: socket s draws
// transaction ids from the strided sequence 1+s, 1+s+nSockets, ... (unique
// across sockets, no shared counter), lifecycle counters split per socket,
// and commit/abort records anchor on the committing terminal's own socket
// instead of the lowest touched data shard — the caller's log shard is the
// one shard a confined terminal may append to. Call once at construction.
func (m *Manager) ShardPerSocket(nSockets int) {
	m.nSock = nSockets
	m.nextIDs = make([]uint64, nSockets)
	for s := range m.nextIDs {
		m.nextIDs[s] = uint64(1 + s)
	}
	m.beginsBy = make([]int64, nSockets)
	m.commitsBy = make([]int64, nSockets)
	m.abortsBy = make([]int64, nSockets)
}

// LogSet returns the log set the manager appends to.
func (m *Manager) LogSet() *wal.LogSet { return m.log }

// Begin starts a transaction, logging a BEGIN record on the caller's shard.
// Begin records are not part of the durability vector: recovery never needs
// them, so losing one in a crash is harmless.
func (m *Manager) Begin(t *platform.Task) *Txn {
	var tx *Txn
	if m.nextIDs != nil {
		s := t.Core().SocketID()
		m.beginsBy[s]++
		tx = &Txn{ID: m.nextIDs[s], State: Active}
		m.nextIDs[s] += uint64(m.nSock)
	} else {
		m.begins++
		tx = &Txn{ID: m.nextID, State: Active}
		m.nextID++
	}
	t.Exec(stats.CompXct, m.cfg.BeginInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecBegin}
	tx.LastLSN = m.log.Append(t, m.log.ShardFor(t), &rec)
	return tx
}

// logData appends one data record on the caller's socket-local shard and
// folds its horizon into the transaction's durability vector.
func (m *Manager) logData(t *platform.Task, tx *Txn, rec *wal.Record) {
	shard := m.log.ShardFor(t)
	tx.note(shard, m.log.Append(t, shard, rec))
}

// LogInsert records an insert of key into table with the given post-image
// and remembers how to undo it.
func (m *Manager) LogInsert(t *platform.Task, tx *Txn, table uint16, key, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecInsert, Table: table, Key: key, After: after}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecInsert, Key: key})
}

// LogUpdate records an update with before and after images.
func (m *Manager) LogUpdate(t *platform.Task, tx *Txn, table uint16, key, before, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecUpdate, Table: table, Key: key, Before: before, After: after}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecUpdate, Key: key, Before: before})
}

// LogDelete records a delete with its pre-image.
func (m *Manager) LogDelete(t *platform.Task, tx *Txn, table uint16, key, before []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecDelete, Table: table, Key: key, Before: before}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecDelete, Key: key, Before: before})
}

// LogInsertW, LogUpdateW and LogDeleteW are the Writes-buffered data-record
// paths for actions executing concurrently on behalf of txnID: identical
// charges and records, but the durability note and undo entry land in the
// action's private buffer instead of a shared Txn. The owner merges buffers
// at the phase barrier (Txn.MergeWrites).
func (m *Manager) LogInsertW(t *platform.Task, txnID uint64, w *Writes, table uint16, key, after []byte) {
	rec := wal.Record{Txn: txnID, Type: wal.RecInsert, Table: table, Key: key, After: after}
	shard := m.log.ShardFor(t)
	w.Shards = noteVec(w.Shards, shard, m.log.Append(t, shard, &rec), false)
	w.Undo = append(w.Undo, UndoRec{Table: table, Type: wal.RecInsert, Key: key})
}

// LogUpdateW is the Writes-buffered LogUpdate; see LogInsertW.
func (m *Manager) LogUpdateW(t *platform.Task, txnID uint64, w *Writes, table uint16, key, before, after []byte) {
	rec := wal.Record{Txn: txnID, Type: wal.RecUpdate, Table: table, Key: key, Before: before, After: after}
	shard := m.log.ShardFor(t)
	w.Shards = noteVec(w.Shards, shard, m.log.Append(t, shard, &rec), false)
	w.Undo = append(w.Undo, UndoRec{Table: table, Type: wal.RecUpdate, Key: key, Before: before})
}

// LogDeleteW is the Writes-buffered LogDelete; see LogInsertW.
func (m *Manager) LogDeleteW(t *platform.Task, txnID uint64, w *Writes, table uint16, key, before []byte) {
	rec := wal.Record{Txn: txnID, Type: wal.RecDelete, Table: table, Key: key, Before: before}
	shard := m.log.ShardFor(t)
	w.Shards = noteVec(w.Shards, shard, m.log.Append(t, shard, &rec), false)
	w.Undo = append(w.Undo, UndoRec{Table: table, Type: wal.RecDelete, Key: key, Before: before})
}

// anchorShard is where a transaction's commit and abort records go: its
// lowest touched data shard (deterministic in the shards touched), so the
// commit record always follows the anchor's data records in that shard's
// stream. A transaction that logged nothing anchors on the caller's shard.
// In per-socket mode the anchor is always the caller's shard — a confined
// terminal may only append locally — and the commit record's shard vector
// covers the difference.
func (m *Manager) anchorShard(t *platform.Task, tx *Txn) int {
	if m.nextIDs == nil && len(tx.Shards) > 0 {
		return tx.Shards[0].Shard
	}
	return m.log.ShardFor(t)
}

// Commit appends the commit record to the transaction's anchor shard and
// returns a signal that fires at the vector durable point: when the commit
// record and every shard's data records are durable. Cross-shard commit
// records carry the shard vector so recovery can detect — and discard —
// transactions whose durability vector did not fully survive a crash. The
// caller chooses whether to await the signal (synchronous commit latency)
// or hand it to a terminal (lazy commit, the DORA pattern).
func (m *Manager) Commit(t *platform.Task, tx *Txn) *sim.Signal {
	m.mustBeActive(tx)
	if m.commitsBy != nil {
		m.commitsBy[t.Core().SocketID()]++
	} else {
		m.commits++
	}
	t.Exec(stats.CompXct, m.cfg.CommitInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecCommit}
	anchor := m.anchorShard(t, tx)
	// The commit record carries the shard vector whenever recovery will
	// need it: any transaction whose data records live on a shard other
	// than the anchor. With the classic lowest-shard anchor that is exactly
	// the multi-shard case; with a per-socket (caller-shard) anchor a
	// single remote data shard needs it too.
	if len(tx.Shards) > 1 || (len(tx.Shards) == 1 && tx.Shards[0].Shard != anchor) {
		rec.After = wal.EncodeShardVec(nil, tx.Shards)
	}
	lsn := m.log.Append(t, anchor, &rec)
	tx.note(anchor, lsn) // the anchor entry now covers the commit record
	tx.State = Committed
	tx.Undo = nil
	done := sim.NewSignal(m.env)
	if m.nextIDs != nil {
		done.OnShard(t.P.Shard())
	}
	m.log.CommitDurableFrom(t, tx.Shards, done)
	return done
}

// Abort rolls the transaction back: apply is called for each undo record in
// reverse order (the engine routes it to the right table), then an ABORT
// record is appended to the anchor shard. Abort does not wait for
// durability.
func (m *Manager) Abort(t *platform.Task, tx *Txn, apply func(u UndoRec)) {
	m.mustBeActive(tx)
	if m.abortsBy != nil {
		m.abortsBy[t.Core().SocketID()]++
	} else {
		m.aborts++
	}
	t.Exec(stats.CompXct, m.cfg.AbortInstr)
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		apply(tx.Undo[i])
	}
	rec := wal.Record{Txn: tx.ID, Type: wal.RecAbort}
	tx.LastLSN = m.log.Append(t, m.anchorShard(t, tx), &rec)
	tx.State = Aborted
	tx.Undo = nil
}

func (m *Manager) mustBeActive(tx *Txn) {
	if tx.State != Active {
		panic(fmt.Sprintf("txn: operation on non-active transaction %d (state %d)", tx.ID, tx.State))
	}
}

// Begins returns the number of transactions started.
func (m *Manager) Begins() int64 { return m.begins + sum(m.beginsBy) }

// Commits returns the number of commit records appended.
func (m *Manager) Commits() int64 { return m.commits + sum(m.commitsBy) }

// Aborts returns the number of aborted transactions.
func (m *Manager) Aborts() int64 { return m.aborts + sum(m.abortsBy) }

func sum(v []int64) int64 {
	var n int64
	for _, x := range v {
		n += x
	}
	return n
}
