// Package txn provides transaction lifecycle management shared by all
// engines: id assignment, begin/commit/abort with logical WAL records,
// in-memory undo for runtime rollback, and the group-commit handshake (the
// commit signal fires when the commit record is durable, so workers hand
// off and move on — the paper's "software can continue with something else
// rather than blocking").
package txn

import (
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota + 1
	Committed
	Aborted
)

// UndoRec is one in-memory undo entry; Apply-ing undo records in reverse
// order rolls a transaction back without touching the log.
type UndoRec struct {
	Table  uint16
	Type   wal.RecType // the forward operation being undone
	Key    []byte
	Before []byte // pre-image for updates/deletes
}

// Txn is one transaction.
type Txn struct {
	ID      uint64
	State   State
	Undo    []UndoRec
	LastLSN wal.LSN
}

// Config tunes the CPU costs of transaction management (the Figure 3
// "Xct mgmt" component).
type Config struct {
	BeginInstr  int // context allocation, timestamp, registration
	CommitInstr int // state transitions, release preparation
	AbortInstr  int // per-abort fixed cost (undo is charged by the applier)
}

// DefaultConfig returns calibrated Shore-MT-like costs.
func DefaultConfig() Config {
	return Config{BeginInstr: 350, CommitInstr: 450, AbortInstr: 500}
}

// Manager hands out transactions and drives their lifecycle against a log.
type Manager struct {
	cfg    Config
	log    wal.Appender
	env    *sim.Env
	nextID uint64

	begins  int64
	commits int64
	aborts  int64
}

// NewManager creates a transaction manager appending to log.
func NewManager(env *sim.Env, log wal.Appender, cfg Config) *Manager {
	return &Manager{cfg: cfg, log: log, env: env, nextID: 1}
}

// Begin starts a transaction, logging a BEGIN record.
func (m *Manager) Begin(t *platform.Task) *Txn {
	m.begins++
	tx := &Txn{ID: m.nextID, State: Active}
	m.nextID++
	t.Exec(stats.CompXct, m.cfg.BeginInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecBegin}
	tx.LastLSN = m.log.Append(t, &rec)
	return tx
}

// LogInsert records an insert of key into table with the given post-image
// and remembers how to undo it.
func (m *Manager) LogInsert(t *platform.Task, tx *Txn, table uint16, key, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecInsert, Table: table, Key: key, After: after}
	tx.LastLSN = m.log.Append(t, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecInsert, Key: key})
}

// LogUpdate records an update with before and after images.
func (m *Manager) LogUpdate(t *platform.Task, tx *Txn, table uint16, key, before, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecUpdate, Table: table, Key: key, Before: before, After: after}
	tx.LastLSN = m.log.Append(t, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecUpdate, Key: key, Before: before})
}

// LogDelete records a delete with its pre-image.
func (m *Manager) LogDelete(t *platform.Task, tx *Txn, table uint16, key, before []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecDelete, Table: table, Key: key, Before: before}
	tx.LastLSN = m.log.Append(t, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecDelete, Key: key, Before: before})
}

// Commit appends the commit record and returns a signal that fires when it
// is durable. The caller chooses whether to await it (synchronous commit
// latency) or hand it to a terminal (lazy commit, the DORA pattern).
func (m *Manager) Commit(t *platform.Task, tx *Txn) *sim.Signal {
	m.mustBeActive(tx)
	m.commits++
	t.Exec(stats.CompXct, m.cfg.CommitInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecCommit}
	lsn := m.log.Append(t, &rec)
	tx.LastLSN = lsn
	tx.State = Committed
	tx.Undo = nil
	done := sim.NewSignal(m.env)
	m.log.CommitDurable(lsn, done)
	return done
}

// Abort rolls the transaction back: apply is called for each undo record in
// reverse order (the engine routes it to the right table), then an ABORT
// record is appended. Abort does not wait for durability.
func (m *Manager) Abort(t *platform.Task, tx *Txn, apply func(u UndoRec)) {
	m.mustBeActive(tx)
	m.aborts++
	t.Exec(stats.CompXct, m.cfg.AbortInstr)
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		apply(tx.Undo[i])
	}
	rec := wal.Record{Txn: tx.ID, Type: wal.RecAbort}
	tx.LastLSN = m.log.Append(t, &rec)
	tx.State = Aborted
	tx.Undo = nil
}

func (m *Manager) mustBeActive(tx *Txn) {
	if tx.State != Active {
		panic(fmt.Sprintf("txn: operation on non-active transaction %d (state %d)", tx.ID, tx.State))
	}
}

// Begins returns the number of transactions started.
func (m *Manager) Begins() int64 { return m.begins }

// Commits returns the number of commit records appended.
func (m *Manager) Commits() int64 { return m.commits }

// Aborts returns the number of aborted transactions.
func (m *Manager) Aborts() int64 { return m.aborts }
