// Package txn provides transaction lifecycle management shared by all
// engines: id assignment, begin/commit/abort with logical WAL records,
// in-memory undo for runtime rollback, and the group-commit handshake (the
// commit signal fires when the commit record is durable, so workers hand
// off and move on — the paper's "software can continue with something else
// rather than blocking").
//
// On a sharded log (wal.LogSet with one shard per socket) every data record
// lands on the shard of the partition that produced it, the commit record
// lands on the transaction's anchor shard, and the commit signal fires at
// the vector durable point: only when every touched shard has reached the
// transaction's horizon there. A single-shard log degenerates to the
// classic central-log behavior exactly.
//
// With log replication attached (wal.ReplicaSet) the vector durable point
// extends across machines: under sync and quorum modes the commit signal
// additionally waits for enough replica acknowledgements of every vector
// entry, so acknowledged commits survive a primary failure. Async mode and
// unreplicated runs keep the local-only wait — this package is oblivious
// to the difference, which lives entirely behind LogSet.CommitDurable.
package txn

import (
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	Active State = iota + 1
	Committed
	Aborted
)

// UndoRec is one in-memory undo entry; Apply-ing undo records in reverse
// order rolls a transaction back without touching the log.
type UndoRec struct {
	Table  uint16
	Type   wal.RecType // the forward operation being undone
	Key    []byte
	Before []byte // pre-image for updates/deletes
}

// Txn is one transaction.
type Txn struct {
	ID      uint64
	State   State
	Undo    []UndoRec
	LastLSN wal.LSN
	// Shards is the transaction's durability vector: the log shards its
	// data records landed on, each with the horizon of its last record
	// there, kept sorted by shard. Single-shard transactions (and every
	// transaction on a central log) have at most one entry.
	Shards []wal.ShardLSN
}

// note records that a data record reached horizon lsn on shard, keeping the
// vector sorted by shard id (a pure function of the shards touched).
func (tx *Txn) note(shard int, lsn wal.LSN) {
	tx.LastLSN = lsn
	for i, e := range tx.Shards {
		if e.Shard == shard {
			tx.Shards[i].LSN = lsn
			return
		}
		if e.Shard > shard {
			tx.Shards = append(tx.Shards, wal.ShardLSN{})
			copy(tx.Shards[i+1:], tx.Shards[i:])
			tx.Shards[i] = wal.ShardLSN{Shard: shard, LSN: lsn}
			return
		}
	}
	tx.Shards = append(tx.Shards, wal.ShardLSN{Shard: shard, LSN: lsn})
}

// Config tunes the CPU costs of transaction management (the Figure 3
// "Xct mgmt" component).
type Config struct {
	BeginInstr  int // context allocation, timestamp, registration
	CommitInstr int // state transitions, release preparation
	AbortInstr  int // per-abort fixed cost (undo is charged by the applier)
}

// DefaultConfig returns calibrated Shore-MT-like costs.
func DefaultConfig() Config {
	return Config{BeginInstr: 350, CommitInstr: 450, AbortInstr: 500}
}

// Manager hands out transactions and drives their lifecycle against a log
// set.
type Manager struct {
	cfg    Config
	log    *wal.LogSet
	env    *sim.Env
	nextID uint64

	begins  int64
	commits int64
	aborts  int64
}

// NewManager creates a transaction manager appending to log.
func NewManager(env *sim.Env, log *wal.LogSet, cfg Config) *Manager {
	return &Manager{cfg: cfg, log: log, env: env, nextID: 1}
}

// LogSet returns the log set the manager appends to.
func (m *Manager) LogSet() *wal.LogSet { return m.log }

// Begin starts a transaction, logging a BEGIN record on the caller's shard.
// Begin records are not part of the durability vector: recovery never needs
// them, so losing one in a crash is harmless.
func (m *Manager) Begin(t *platform.Task) *Txn {
	m.begins++
	tx := &Txn{ID: m.nextID, State: Active}
	m.nextID++
	t.Exec(stats.CompXct, m.cfg.BeginInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecBegin}
	tx.LastLSN = m.log.Append(t, m.log.ShardFor(t), &rec)
	return tx
}

// logData appends one data record on the caller's socket-local shard and
// folds its horizon into the transaction's durability vector.
func (m *Manager) logData(t *platform.Task, tx *Txn, rec *wal.Record) {
	shard := m.log.ShardFor(t)
	tx.note(shard, m.log.Append(t, shard, rec))
}

// LogInsert records an insert of key into table with the given post-image
// and remembers how to undo it.
func (m *Manager) LogInsert(t *platform.Task, tx *Txn, table uint16, key, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecInsert, Table: table, Key: key, After: after}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecInsert, Key: key})
}

// LogUpdate records an update with before and after images.
func (m *Manager) LogUpdate(t *platform.Task, tx *Txn, table uint16, key, before, after []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecUpdate, Table: table, Key: key, Before: before, After: after}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecUpdate, Key: key, Before: before})
}

// LogDelete records a delete with its pre-image.
func (m *Manager) LogDelete(t *platform.Task, tx *Txn, table uint16, key, before []byte) {
	m.mustBeActive(tx)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecDelete, Table: table, Key: key, Before: before}
	m.logData(t, tx, &rec)
	tx.Undo = append(tx.Undo, UndoRec{Table: table, Type: wal.RecDelete, Key: key, Before: before})
}

// anchorShard is where a transaction's commit and abort records go: its
// lowest touched data shard (deterministic in the shards touched), so the
// commit record always follows the anchor's data records in that shard's
// stream. A transaction that logged nothing anchors on the caller's shard.
func (m *Manager) anchorShard(t *platform.Task, tx *Txn) int {
	if len(tx.Shards) > 0 {
		return tx.Shards[0].Shard
	}
	return m.log.ShardFor(t)
}

// Commit appends the commit record to the transaction's anchor shard and
// returns a signal that fires at the vector durable point: when the commit
// record and every shard's data records are durable. Cross-shard commit
// records carry the shard vector so recovery can detect — and discard —
// transactions whose durability vector did not fully survive a crash. The
// caller chooses whether to await the signal (synchronous commit latency)
// or hand it to a terminal (lazy commit, the DORA pattern).
func (m *Manager) Commit(t *platform.Task, tx *Txn) *sim.Signal {
	m.mustBeActive(tx)
	m.commits++
	t.Exec(stats.CompXct, m.cfg.CommitInstr)
	rec := wal.Record{Txn: tx.ID, Type: wal.RecCommit}
	if len(tx.Shards) > 1 {
		rec.After = wal.EncodeShardVec(nil, tx.Shards)
	}
	anchor := m.anchorShard(t, tx)
	lsn := m.log.Append(t, anchor, &rec)
	tx.note(anchor, lsn) // the anchor entry now covers the commit record
	tx.State = Committed
	tx.Undo = nil
	done := sim.NewSignal(m.env)
	m.log.CommitDurable(tx.Shards, done)
	return done
}

// Abort rolls the transaction back: apply is called for each undo record in
// reverse order (the engine routes it to the right table), then an ABORT
// record is appended to the anchor shard. Abort does not wait for
// durability.
func (m *Manager) Abort(t *platform.Task, tx *Txn, apply func(u UndoRec)) {
	m.mustBeActive(tx)
	m.aborts++
	t.Exec(stats.CompXct, m.cfg.AbortInstr)
	for i := len(tx.Undo) - 1; i >= 0; i-- {
		apply(tx.Undo[i])
	}
	rec := wal.Record{Txn: tx.ID, Type: wal.RecAbort}
	tx.LastLSN = m.log.Append(t, m.anchorShard(t, tx), &rec)
	tx.State = Aborted
	tx.Undo = nil
}

func (m *Manager) mustBeActive(tx *Txn) {
	if tx.State != Active {
		panic(fmt.Sprintf("txn: operation on non-active transaction %d (state %d)", tx.ID, tx.State))
	}
}

// Begins returns the number of transactions started.
func (m *Manager) Begins() int64 { return m.begins }

// Commits returns the number of commit records appended.
func (m *Manager) Commits() int64 { return m.commits }

// Aborts returns the number of aborted transactions.
func (m *Manager) Aborts() int64 { return m.aborts }
