package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"bionicdb/internal/sim"
)

// TestScalingPointsExpansion checks the sweep's shape: ordering, load and
// partition scaling, and the socket annotation on every point.
func TestScalingPointsExpansion(t *testing.T) {
	spec := ScalingSpec{
		Sockets:            []int{1, 2, 4},
		Workloads:          []WorkloadSpec{smallTATP(), smallYCSB()},
		TerminalsPerSocket: 8,
		Seeds:              []uint64{1, 2},
	}
	points := spec.Points()
	if want := 2 * 3 * 3 * 2; len(points) != want { // workloads x sockets x engines x seeds
		t.Fatalf("expected %d points, got %d", want, len(points))
	}
	// Workload outermost, sockets next, then the engine axis.
	if points[0].Workload.Name != "tatp" || points[len(points)/2].Workload.Name != "ycsb" {
		t.Errorf("unexpected workload order: %s, %s", points[0].Workload.Name, points[len(points)/2].Workload.Name)
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if p.Group != "fig-scaling" {
			t.Errorf("point %d group = %q", i, p.Group)
		}
		if p.Sockets == 0 {
			t.Errorf("point %d has no socket annotation", i)
		}
		if p.Terminals != 8*p.Sockets {
			t.Errorf("point %d: %d terminals at %d sockets, want load scaled with the machine", i, p.Terminals, p.Sockets)
		}
	}
	// First socket block is 1, engine order conventional/dora/bionic.
	if points[0].Sockets != 1 || points[0].Engine.Name != "conventional" {
		t.Errorf("first point: sockets=%d engine=%s", points[0].Sockets, points[0].Engine.Name)
	}
	if points[3*2].Sockets != 2 { // 3 engines x 2 seeds per socket block
		t.Errorf("second socket block starts with sockets=%d, want 2", points[3*2].Sockets)
	}
}

// TestScalingParallelMatchesSerial extends the subsystem's core guarantee
// to multi-socket points.
func TestScalingParallelMatchesSerial(t *testing.T) {
	spec := ScalingSpec{
		Sockets:            []int{1, 2},
		Workloads:          []WorkloadSpec{smallYCSB()},
		TerminalsPerSocket: 4,
		Seeds:              []uint64{7},
		Warmup:             1 * sim.Millisecond,
		Measure:            2 * sim.Millisecond,
	}
	points := spec.Points()
	serial := Run(points, Options{Parallel: 1})
	par := Run(points, Options{Parallel: 4})
	if ds, dp := Digest(serial), Digest(par); ds != dp {
		t.Errorf("scaling sweep digests diverge: serial %s vs parallel %s", ds, dp)
	}
}

// TestScalingJSONCarriesSockets checks the emitted document distinguishes
// socket counts, reports interconnect energy on multi-socket points, and
// that the scaling table renders a row per point.
func TestScalingJSONCarriesSockets(t *testing.T) {
	spec := ScalingSpec{
		Sockets:            []int{1, 2},
		Workloads:          []WorkloadSpec{smallTATP()},
		Engines:            DefaultScalingEngines()[1:2], // dora only
		TerminalsPerSocket: 4,
		Seeds:              []uint64{3},
		Warmup:             1 * sim.Millisecond,
		Measure:            2 * sim.Millisecond,
	}
	results := spec.Run(Options{Parallel: 2})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/x%d failed: %v", r.Point.Engine.Name, r.Point.Sockets, r.Err)
		}
	}
	b, err := JSON(results)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Name     string  `json:"name"`
			Sockets  int     `json:"sockets"`
			TPS      float64 `json:"tps"`
			ICJoules float64 `json:"interconnect_joules"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("expected 2 results, got %d", len(doc.Results))
	}
	if doc.Results[0].Sockets != 1 || doc.Results[1].Sockets != 2 {
		t.Errorf("socket counts not carried: %+v", doc.Results)
	}
	if !strings.Contains(doc.Results[1].Name, "/x2") {
		t.Errorf("multi-socket result name %q lacks the socket suffix", doc.Results[1].Name)
	}
	if doc.Results[0].ICJoules != 0 {
		t.Errorf("single-socket run reports interconnect energy %g", doc.Results[0].ICJoules)
	}
	if doc.Results[1].ICJoules <= 0 {
		t.Error("2-socket TATP run reports no interconnect energy (cross-shard traffic must pay)")
	}

	table := ScalingTable(results).String()
	for _, want := range []string{"sockets", "speedup", "dora"} {
		if !strings.Contains(table, want) {
			t.Errorf("scaling table missing %q:\n%s", want, table)
		}
	}
}

// TestScalingThroughputGrows is the sweep's reason to exist: under weak
// scaling the sharded engine's throughput must grow with sockets (the
// simulated machine is deterministic, so this is a stable property, not a
// flaky performance assertion).
func TestScalingThroughputGrows(t *testing.T) {
	spec := ScalingSpec{
		Sockets:            []int{1, 4},
		Workloads:          []WorkloadSpec{smallTATP()},
		Engines:            DefaultScalingEngines()[1:2], // dora
		TerminalsPerSocket: 8,
		Seeds:              []uint64{42},
		Warmup:             1 * sim.Millisecond,
		Measure:            4 * sim.Millisecond,
	}
	results := spec.Run(Options{Parallel: 2})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%v", r.Err)
		}
	}
	one, four := results[0].Res.TPS, results[1].Res.TPS
	if four < 2*one {
		t.Errorf("dora TATP throughput at 4 sockets = %.0f tps, want at least 2x the 1-socket %.0f", four, one)
	}
}

// TestScalingShardedLogAxis pins the sharded-log axis: sharded points are
// annotated (except at 1 socket, where sharding is structurally absent and
// the run must be bit-identical to the central baseline), digests keep the
// two layouts apart, and the sharded engines actually beat their
// centralized selves where the log is the wall.
func TestScalingShardedLogAxis(t *testing.T) {
	mk := func(sharded bool) ScalingSpec {
		return ScalingSpec{
			Sockets:            []int{1, 2},
			Workloads:          []WorkloadSpec{smallYCSB()},
			Engines:            DefaultScalingEngines()[1:2], // dora
			TerminalsPerSocket: 4,
			Seeds:              []uint64{7},
			Warmup:             1 * sim.Millisecond,
			Measure:            2 * sim.Millisecond,
			ShardedLog:         sharded,
		}
	}
	central := mk(false).Points()
	sharded := mk(true).Points()
	if sharded[0].ShardedLog {
		t.Error("1-socket point annotated sharded; the flag is structurally inert there")
	}
	if !sharded[1].ShardedLog {
		t.Error("2-socket sharded point not annotated")
	}
	cres := Run(central, Options{Parallel: 2})
	sres := Run(sharded, Options{Parallel: 2})
	for _, rs := range [][]Result{cres, sres} {
		for _, r := range rs {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	// 1-socket runs are bit-identical with the flag on or off.
	if d1, d2 := Digest(cres[:1]), Digest(sres[:1]); d1 != d2 {
		t.Errorf("1-socket sharded run diverged from central: %s vs %s", d1, d2)
	}
	// 2-socket digests must differ in annotation (and almost surely in
	// results); a combined document keeps both rows addressable.
	if d1, d2 := Digest(cres), Digest(sres); d1 == d2 {
		t.Error("sharded axis digests identically to central")
	}
	b, err := JSON(append(append([]Result{}, cres...), sres...))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Name       string `json:"name"`
			ShardedLog bool   `json:"sharded_log"`
			LogShards  []struct {
				Shard int   `json:"shard"`
				Bytes int64 `json:"bytes"`
				Syncs int64 `json:"syncs"`
			} `json:"log_shards"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	last := doc.Results[len(doc.Results)-1]
	if !last.ShardedLog || !strings.Contains(last.Name, "/slog") {
		t.Errorf("sharded point emitted as %q sharded=%v", last.Name, last.ShardedLog)
	}
	if len(last.LogShards) != 2 {
		t.Fatalf("sharded 2-socket point reports %d log shards", len(last.LogShards))
	}
	both := 0
	for _, sh := range last.LogShards {
		if sh.Bytes > 0 && sh.Syncs > 0 {
			both++
		}
	}
	if both != 2 {
		t.Errorf("both shards should carry log traffic: %+v", last.LogShards)
	}
	if len(doc.Results[0].LogShards) != 1 {
		t.Errorf("central point reports %d log shards, want 1", len(doc.Results[0].LogShards))
	}
	table := ScalingTable(append(append([]Result{}, cres...), sres...)).String()
	for _, want := range []string{"central", "sharded", "log"} {
		if !strings.Contains(table, want) {
			t.Errorf("scaling table missing %q:\n%s", want, table)
		}
	}
}

// TestRecoverySweepSmall runs the fig-recovery experiment at 1 and 2
// sockets on a small YCSB database: every point must recover without error
// (the point itself cross-checks serial vs parallel replay content) and
// report a sane shape.
func TestRecoverySweepSmall(t *testing.T) {
	spec := RecoverySpec{
		Sockets:            []int{1, 2},
		Workload:           func(n int) WorkloadSpec { return smallYCSB() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	results := spec.RunRecovery(Options{Parallel: 2})
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("x%d: %v", r.Sockets, r.Err)
		}
		if r.Rows == 0 || r.Txns == 0 || r.LogBytes == 0 {
			t.Errorf("x%d recovered nothing: %+v", r.Sockets, r)
		}
		if r.TotalSim <= 0 || r.Joules <= 0 {
			t.Errorf("x%d missing cost accounting: total=%v joules=%g", r.Sockets, r.TotalSim, r.Joules)
		}
	}
	if results[0].Shards != 1 || results[1].Shards != 2 {
		t.Errorf("shard counts %d/%d, want 1/2", results[0].Shards, results[1].Shards)
	}
	table := RecoveryTable(results).String()
	if !strings.Contains(table, "par replay") {
		t.Errorf("recovery table malformed:\n%s", table)
	}
	if _, err := RecoveryJSON(results); err != nil {
		t.Fatal(err)
	}
}
