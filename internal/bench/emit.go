package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"bionicdb/internal/stats"
)

// Table renders sweep results as the standard figure table: one row per
// point in grid order.
func Table(results []Result) *stats.Table {
	t := stats.NewTable("workload", "engine", ">terminals", ">seed",
		">tps", ">uJ/txn", ">p50", ">p95", ">commits", ">aborts")
	for _, r := range results {
		p := r.Point
		if r.Err != nil {
			t.Row(p.Workload.Name, p.Engine.Name,
				fmt.Sprintf("%d", p.Terminals), fmt.Sprintf("%d", p.Seed),
				"error: "+r.Err.Error(), "", "", "", "", "")
			continue
		}
		t.Row(p.Workload.Name, p.Engine.Name,
			fmt.Sprintf("%d", p.Terminals), fmt.Sprintf("%d", p.Seed),
			fmt.Sprintf("%.0f", r.Res.TPS),
			fmt.Sprintf("%.1f", r.Res.JoulesPerTxn*1e6),
			r.Res.Latency.Percentile(50).String(),
			r.Res.Latency.Percentile(95).String(),
			fmt.Sprintf("%d", r.Res.Commits),
			fmt.Sprintf("%d", r.Res.Aborts))
	}
	return t
}

// jsonResult is the flat per-point record the JSON document carries.
type jsonResult struct {
	Name       string `json:"name"`
	Group      string `json:"experiment,omitempty"`
	Workload   string `json:"workload"`
	Engine     string `json:"engine"`
	Terminals  int    `json:"terminals"`
	Seed       uint64 `json:"seed"`
	Sockets    int    `json:"sockets,omitempty"`
	ShardedLog bool   `json:"sharded_log,omitempty"`
	Repl       string `json:"replication,omitempty"`
	// KernelParallel records which event kernel executed the point. It is a
	// host-execution detail: every simulated field below is bit-identical
	// either way (the equivalence test matrix enforces this).
	KernelParallel bool `json:"kernel_parallel,omitempty"`

	WarmupMs  float64 `json:"warmup_ms"`
	MeasureMs float64 `json:"measure_ms"`

	TPS          float64 `json:"tps"`
	Commits      int64   `json:"commits"`
	Aborts       int64   `json:"aborts"`
	JoulesPerTxn float64 `json:"joules_per_txn"`
	P50us        float64 `json:"p50_us"`
	P95us        float64 `json:"p95_us"`
	P99us        float64 `json:"p99_us"`
	CPUJoules    float64 `json:"cpu_joules"`
	FPGAJoules   float64 `json:"fpga_joules"`
	ICJoules     float64 `json:"interconnect_joules,omitempty"`

	// Events is the kernel event count of the run — a model-coverage
	// indicator, deliberately outside the sweep digest like WallMs.
	Events    uint64           `json:"events,omitempty"`
	TxnCounts map[string]int64 `json:"txn_counts,omitempty"`
	LogShards []logShardJSON   `json:"log_shards,omitempty"`
	Scan      *scanJSON        `json:"scan,omitempty"`
	ReplStats []replShardJSON  `json:"repl_shards,omitempty"`

	// Anatomy is the per-phase latency breakdown of the point's committed
	// transactions (one entry per phase with samples). Like Events it is a
	// reporting field outside the sweep digest.
	Anatomy []phaseJSON `json:"anatomy,omitempty"`
	// WindowsByShard / StallsByShard are the parallel kernel's per-shard
	// self-observability counters, present only on KernelParallel points.
	// Host-execution detail, outside the digest like WallMs.
	WindowsByShard []uint64 `json:"windows_by_shard,omitempty"`
	StallsByShard  []uint64 `json:"stalls_by_shard,omitempty"`

	WallMs float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// phaseJSON is one latency-anatomy phase in the JSON document.
type phaseJSON struct {
	Phase  string  `json:"phase"`
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// anatomyJSON renders the phases that saw samples, in phase order.
func anatomyJSON(an *stats.Anatomy) []phaseJSON {
	var out []phaseJSON
	for ph := stats.Phase(0); ph < stats.NumPhases; ph++ {
		h := an.Phase(ph)
		if h.Count() == 0 {
			continue
		}
		out = append(out, phaseJSON{
			Phase:  ph.String(),
			Count:  h.Count(),
			MeanUs: h.Mean().Microseconds(),
			P50us:  h.Percentile(50).Microseconds(),
			P99us:  h.Percentile(99).Microseconds(),
			MaxUs:  h.Max().Microseconds(),
		})
	}
	return out
}

// replShardJSON is one log shard's window shipping counters in the JSON
// document, present only on replicated points.
type replShardJSON struct {
	Shard         int     `json:"shard"`
	ShippedBytes  int64   `json:"shipped_bytes"`
	Ships         int64   `json:"ships"`
	AckRTTs       int64   `json:"ack_rtts"`
	LagBytesMax   int64   `json:"lag_bytes_max"`
	LagTimeMaxUs  float64 `json:"lag_time_max_us"`
	LagTimeMeanUs float64 `json:"lag_time_mean_us"`
}

// scanJSON is the analytical half's window statistics in the JSON document,
// present only on HTAP points.
type scanJSON struct {
	Scans          int64   `json:"scans"`
	Rows           int64   `json:"rows"`
	RowsOut        int64   `json:"rows_out"`
	ScanMBps       float64 `json:"scan_mbps"`
	StaleMaxUs     float64 `json:"stale_max_us"`
	StaleMeanUs    float64 `json:"stale_mean_us"`
	Refreshes      int64   `json:"refreshes"`
	SnapViolations int64   `json:"snap_violations"`
}

// logShardJSON is one log shard's window counters in the JSON document.
type logShardJSON struct {
	Shard  int   `json:"shard"`
	Bytes  int64 `json:"bytes"`
	Syncs  int64 `json:"syncs"`
	Epochs int64 `json:"epochs,omitempty"`
}

// replLabel renders the replication mode for JSON: empty when off, so the
// field is omitted and unreplicated documents keep their exact shape.
func replLabel(m stats.ReplMode) string {
	if m == stats.ReplNone {
		return ""
	}
	return m.String()
}

// jsonDoc is the emitted document shape.
type jsonDoc struct {
	Suite   string       `json:"suite"`
	Results []jsonResult `json:"results"`
}

// JSON marshals sweep results as an indented BENCH_*.json-style document:
// {"suite": "bionicbench", "results": [...]}.
func JSON(results []Result) ([]byte, error) {
	doc := jsonDoc{Suite: "bionicbench", Results: make([]jsonResult, 0, len(results))}
	for _, r := range results {
		p := r.Point
		name := fmt.Sprintf("%s/%s/t%d/s%d", p.Workload.Name, p.Engine.Name, p.Terminals, p.Seed)
		if p.Sockets > 0 {
			name = fmt.Sprintf("%s/x%d", name, p.Sockets)
		}
		if p.ShardedLog {
			name += "/slog"
		}
		if p.Repl != 0 {
			name += "/" + p.Repl.String()
		}
		if p.Group != "" {
			name = p.Group + "/" + name
		}
		jr := jsonResult{
			Name:           name,
			Group:          p.Group,
			Workload:       p.Workload.Name,
			Engine:         p.Engine.Name,
			Terminals:      p.Terminals,
			Seed:           p.Seed,
			Sockets:        p.Sockets,
			ShardedLog:     p.ShardedLog,
			Repl:           replLabel(p.Repl),
			KernelParallel: p.KernelParallel,
			WarmupMs:       p.Warmup.Seconds() * 1e3,
			MeasureMs:      p.Measure.Seconds() * 1e3,
			WallMs:         float64(r.Wall.Nanoseconds()) / 1e6,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		} else {
			res := r.Res
			jr.TPS = res.TPS
			jr.Commits = res.Commits
			jr.Aborts = res.Aborts
			jr.JoulesPerTxn = res.JoulesPerTxn
			jr.P50us = res.Latency.Percentile(50).Microseconds()
			jr.P95us = res.Latency.Percentile(95).Microseconds()
			jr.P99us = res.Latency.Percentile(99).Microseconds()
			jr.CPUJoules = res.Energy.CPUDynamic + res.Energy.CPUIdle
			jr.FPGAJoules = res.Energy.FPGA
			jr.ICJoules = res.Energy.Interconnect
			jr.Events = res.Events
			jr.TxnCounts = res.TxnCounts
			jr.Anatomy = anatomyJSON(&res.Anatomy)
			jr.WindowsByShard = res.WindowsByShard
			jr.StallsByShard = res.StallsByShard
			for _, sh := range res.LogShards {
				jr.LogShards = append(jr.LogShards, logShardJSON{
					Shard: sh.Shard, Bytes: sh.Bytes, Syncs: sh.Syncs, Epochs: sh.Epochs,
				})
			}
			for _, rp := range res.Repl {
				jr.ReplStats = append(jr.ReplStats, replShardJSON{
					Shard:         rp.Shard,
					ShippedBytes:  rp.ShippedBytes,
					Ships:         rp.Ships,
					AckRTTs:       rp.AckRTTs,
					LagBytesMax:   rp.LagBytesMax,
					LagTimeMaxUs:  rp.LagTimeMax.Microseconds(),
					LagTimeMeanUs: rp.LagTimeMean().Microseconds(),
				})
			}
			if sc := res.Scan; sc != nil {
				jr.Scan = &scanJSON{
					Scans:          sc.Scans,
					Rows:           sc.Rows,
					RowsOut:        sc.RowsOut,
					ScanMBps:       float64(sc.Bytes) / 1e6 / p.Measure.Seconds(),
					StaleMaxUs:     sc.StaleMax.Microseconds(),
					StaleMeanUs:    sc.StaleMean().Microseconds(),
					Refreshes:      sc.Refreshes,
					SnapViolations: sc.SnapViolations,
				}
			}
		}
		doc.Results = append(doc.Results, jr)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteJSONFile writes the JSON document to path.
func WriteJSONFile(path string, results []Result) error {
	b, err := JSON(results)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
