package bench

import (
	"reflect"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// This file pins the engine-on-shard execution contract: a sharded-log DORA
// machine homes each socket's partitions, trees, pool, locks and log shard
// on that socket's kernel shard, and the only legal cross-shard edges are
// posted interconnect messages. The tests prove three things: the digests
// are bit-identical between the serial and concurrent kernels (and against
// a pinned golden), the engine work really executes off shard 0 (a run
// that quietly fell back to shard-0 execution would still be bit-identical
// — speedup needs the witness), and the crash/recovery and failover
// families stay DeepEqual across kernels at 2/4/8 sockets.

// engineShardGoldenDigest is the pinned sweep digest of engineShardSpec
// below at 2, 4 and 8 sockets on the serial kernel. The concurrent kernel
// must reproduce it bit for bit.
const engineShardGoldenDigest = "a71002e29396f8ea02fe0ec1686af613db92253a89d669b6af66d5ef400eacf3"

// engineShardSpec is the DORA-only sharded-log scaling spec every test
// here runs: at 2+ sockets with no offloads, no replication and window 1,
// these points take the engine-sharded path.
func engineShardSpec(sockets []int) ScalingSpec {
	return ScalingSpec{
		Sockets:   sockets,
		Workloads: []WorkloadSpec{smallYCSB()},
		Engines: []ScalingEngine{{Name: "dora", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return DORAOn(cfg, partitions)
		}}},
		TerminalsPerSocket: 4,
		ShardedLog:         true,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
}

// TestEngineShardGoldenDigest pins engine-on-shard execution at 2, 4 and 8
// sockets: serial and concurrent kernels must both reproduce the recorded
// golden digest, and every concurrent point must show kernel events on at
// least two shards with work off shard 0 — the witness that the engines
// actually moved, not just that the results agree.
func TestEngineShardGoldenDigest(t *testing.T) {
	points := engineShardSpec([]int{2, 4, 8}).Points()
	serial := mustRun(t, "engine-shard/serial", withKernel(points, false), Options{Parallel: 2})
	if got := Digest(serial); got != engineShardGoldenDigest {
		t.Errorf("serial engine-shard digest drifted:\n got  %s\n want %s", got, engineShardGoldenDigest)
	}
	par := mustRun(t, "engine-shard/parallel", withKernel(points, true), Options{Parallel: 2})
	if got := Digest(par); got != engineShardGoldenDigest {
		t.Errorf("concurrent kernel diverged from golden:\n got  %s\n want %s", got, engineShardGoldenDigest)
	}
	for _, r := range par {
		by := r.Res.EventsByShard
		if len(by) != r.Point.Sockets {
			t.Fatalf("x%d: EventsByShard has %d shards", r.Point.Sockets, len(by))
		}
		busy := 0
		var offZero uint64
		for s, n := range by {
			if n > 0 {
				busy++
			}
			if s > 0 {
				offZero += n
			}
		}
		if offZero == 0 {
			t.Errorf("x%d: no kernel events off shard 0 — engines did not shard", r.Point.Sockets)
		}
		if busy < 2 {
			t.Errorf("x%d: engine work on %d shard(s), want >= 2", r.Point.Sockets, busy)
		}
	}
}

// TestEngineShardRecoveryEquivalence runs the crash/recovery family on
// engine-sharded machines at 2, 4 and 8 sockets and requires the full
// result structs — crash image, replayed content, timings, energy — to be
// DeepEqual between the serial and concurrent kernels.
func TestEngineShardRecoveryEquivalence(t *testing.T) {
	spec := RecoverySpec{
		Sockets:            []int{2, 4, 8},
		Workload:           func(n int) WorkloadSpec { return smallYCSB() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	serial := spec.RunRecovery(Options{Parallel: 2})
	spec.KernelParallel = true
	par := spec.RunRecovery(Options{Parallel: 2})
	for i := range serial {
		if serial[i].Err != nil || par[i].Err != nil {
			t.Fatalf("x%d: serial err %v, parallel err %v", serial[i].Sockets, serial[i].Err, par[i].Err)
		}
		if serial[i].Rows == 0 {
			t.Errorf("x%d: recovered no rows", serial[i].Sockets)
		}
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("engine-shard recovery diverges between kernels:\nserial   %+v\nparallel %+v", serial, par)
	}
}

// TestEngineShardFailoverSteadyEquivalence covers the failover family's
// engine-sharded rows: replication forces the classic layout, so only the
// unreplicated steady-state baselines take the engine-on-shard path — at
// 2, 4 and 8 sockets they must be DeepEqual between kernels.
func TestEngineShardFailoverSteadyEquivalence(t *testing.T) {
	spec := FailoverSpec{
		Sockets:            []int{2, 4, 8},
		Modes:              []stats.ReplMode{stats.ReplNone},
		Workload:           func(sockets int) WorkloadSpec { return smallYCSB() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	serialFo, serialSteady := spec.RunFailover(Options{Parallel: 2})
	spec.KernelParallel = true
	parFo, parSteady := spec.RunFailover(Options{Parallel: 2})
	for i := range serialFo {
		if serialFo[i].Err != nil || parFo[i].Err != nil {
			t.Fatalf("x%d: serial err %v, parallel err %v", serialFo[i].Sockets, serialFo[i].Err, parFo[i].Err)
		}
	}
	if !reflect.DeepEqual(serialFo, parFo) {
		t.Errorf("engine-shard failover rows diverge between kernels:\nserial   %+v\nparallel %+v", serialFo, parFo)
	}
	if ds, dp := Digest(serialSteady), Digest(parSteady); ds != dp {
		t.Errorf("steady-state digests diverge between kernels: serial %s vs parallel %s", ds, dp)
	}
}

// FuzzEngineShard drives the engine-on-shard equivalence with fuzzed
// socket counts and seeds: any input where the serial and concurrent
// kernels disagree on the sweep digest is a crasher.
func FuzzEngineShard(f *testing.F) {
	f.Add(uint8(0), uint64(42))
	f.Add(uint8(1), uint64(7))
	f.Add(uint8(2), uint64(1234))
	f.Fuzz(func(t *testing.T, rawSockets uint8, seed uint64) {
		n := 2 << (int(rawSockets) % 3) // 2, 4 or 8 sockets
		spec := engineShardSpec([]int{n})
		spec.Seeds = []uint64{seed%100000 + 1}
		spec.Measure = 2 * sim.Millisecond
		serial := Run(withKernel(spec.Points(), false), Options{Parallel: 1})
		par := Run(withKernel(spec.Points(), true), Options{Parallel: 1})
		for i := range serial {
			if serial[i].Err != nil || par[i].Err != nil {
				t.Fatalf("x%d seed %d: serial err %v, parallel err %v", n, spec.Seeds[0], serial[i].Err, par[i].Err)
			}
		}
		if ds, dp := Digest(serial), Digest(par); ds != dp {
			t.Errorf("x%d seed %d: kernels diverge: serial %s vs parallel %s", n, spec.Seeds[0], ds, dp)
		}
	})
}
