package bench

import (
	"testing"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// goldenDigest pins the simulated output of the golden grid, bit for bit.
// The value was recorded on the pre-optimization event kernel (PR 2); any
// kernel or engine change that alters simulated results — event ordering,
// random-stream consumption, cost charging — changes this digest and must
// be treated as a behavior change, not a perf win. Perf work must keep it
// stable.
//
// To re-pin after an intentional behavior change, run
//
//	go test ./internal/bench -run TestGoldenSweepDigest -v
//
// and copy the printed digest here, noting the change in the PR.
const goldenDigest = "41bd8e7bcf4ecc652811fc909fb8bb95cfeef155894515b7335489f51fb05164"

// goldenGrid covers all three engines and all three workloads: TATP
// (single-partition actions), TPC-C (cross-partition fan-out, rollbacks,
// PutFront lock-release traffic) and YCSB (scans without entity locks).
func goldenGrid() Grid {
	return Grid{
		Group:     "golden",
		Engines:   []EngineSpec{Conventional(), DORA(4), Bionic(4, core.AllOffloads(), 8)},
		Workloads: []WorkloadSpec{smallTATP(), smallTPCC(), smallYCSB()},
		Terminals: []int{8},
		Seeds:     []uint64{42},
		Warmup:    1 * sim.Millisecond,
		Measure:   3 * sim.Millisecond,
	}
}

// TestGoldenSweepDigest proves the kernel reproduces the recorded sweep
// results exactly, on both serial and parallel executions.
func TestGoldenSweepDigest(t *testing.T) {
	grid := goldenGrid()
	points := grid.Points()
	serial := Run(points, Options{Parallel: 1})
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("%s/%s failed: %v", r.Point.Workload.Name, r.Point.Engine.Name, r.Err)
		}
	}
	got := Digest(serial)
	t.Logf("serial digest: %s", got)
	if got != goldenDigest {
		t.Errorf("serial sweep digest diverged from golden:\n got  %s\n want %s", got, goldenDigest)
	}
	par := Run(points, Options{Parallel: 4})
	if pd := Digest(par); pd != got {
		t.Errorf("parallel sweep digest diverged from serial:\n got  %s\n want %s", pd, got)
	}
}

// TestGoldenNoReplication is the replication subsystem's no-feature guard:
// a replication-disabled run must build none of the new machinery, so every
// golden point hashes exactly as it did before the subsystem existed (the
// three golden digests in this file prove that bit for bit). This test pins
// the structural half the digests imply: unreplicated results carry no
// replication statistics, spend no replication energy, and hash without any
// replication markers.
func TestGoldenNoReplication(t *testing.T) {
	g := goldenGrid()
	p := g.Points()[0]
	if p.Repl != stats.ReplNone {
		t.Fatalf("golden point annotated with replication mode %v", p.Repl)
	}
	r := p.Run()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Res.Repl != nil {
		t.Errorf("unreplicated run reported replication stats: %+v", r.Res.Repl)
	}
	if r.Res.Energy.Replication != 0 {
		t.Errorf("unreplicated run spent %v J in the replication domain", r.Res.Energy.Replication)
	}
	// The digest of an unreplicated result must be insensitive to the
	// replication code path existing at all: hashing the same result twice
	// is trivially stable, and the golden constants above pin it against
	// the pre-replication recordings.
	if d1, d2 := Digest([]Result{r}), Digest([]Result{r}); d1 != d2 {
		t.Errorf("digest not stable: %s vs %s", d1, d2)
	}
}

// goldenScalingDigest pins the multi-socket sweep bit for bit: all three
// engines on all three workloads at 2 and 4 sockets — the cross-shard
// commit path, the interconnect timing/energy model, and the conventional
// engine's lock-table NUMA tax are all under this digest. Re-pin exactly
// as for goldenDigest, treating any change as a behavior change.
const goldenScalingDigest = "7ae119e4b063984d1bb67c3afcf3facbc7ee88298ed78e62b4770a7e4ab05ff7"

// goldenScalingSpec is the pinned multi-socket grid.
func goldenScalingSpec() ScalingSpec {
	return ScalingSpec{
		Sockets:            []int{2, 4},
		Workloads:          []WorkloadSpec{smallTATP(), smallTPCC(), smallYCSB()},
		TerminalsPerSocket: 4,
		Seeds:              []uint64{42},
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
}

// TestGoldenScalingDigest proves multi-socket runs are as reproducible as
// single-socket ones: the recorded digest holds, serial and parallel.
func TestGoldenScalingDigest(t *testing.T) {
	points := goldenScalingSpec().Points()
	serial := Run(points, Options{Parallel: 1})
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("%s/%s/x%d failed: %v", r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets, r.Err)
		}
		if r.Res.Commits == 0 {
			t.Errorf("%s/%s/x%d committed nothing", r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets)
		}
	}
	got := Digest(serial)
	t.Logf("serial scaling digest: %s", got)
	if got != goldenScalingDigest {
		t.Errorf("scaling digest diverged from golden:\n got  %s\n want %s", got, goldenScalingDigest)
	}
	par := Run(points, Options{Parallel: 4})
	if pd := Digest(par); pd != got {
		t.Errorf("parallel scaling digest diverged from serial:\n got  %s\n want %s", pd, got)
	}
}

// goldenHTAPDigest pins the hybrid sweep bit for bit: conventional and
// bionic at 1, 2 and 4 sockets on both mixed workloads, with the
// analytical half attached — projection maintenance (host refresh vs
// overlay merge-fed), scan scheduling, and the freshness metric are all
// under this digest. This PR introduces the HTAP subsystem; goldenDigest
// and goldenScalingDigest above are untouched by it (nil Analytics runs
// are bit-identical to the pre-HTAP harness), which their tests prove.
// Re-pin exactly as for goldenDigest.
const goldenHTAPDigest = "4246c08b6a2de4e97f1d07f5ccff5e9fe3c9aea2e995aaa6ae4f9104b65b2397"

// goldenHTAPSpec is the pinned hybrid grid.
func goldenHTAPSpec() HTAPSpec {
	return HTAPSpec{
		Sockets:            []int{1, 2, 4},
		Workloads:          []WorkloadSpec{smallHTAPYCSB(), smallHTAPTPCC()},
		TerminalsPerSocket: 4,
		ShardedLog:         true,
		Seeds:              []uint64{42},
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
}

// TestGoldenHTAPDigest proves hybrid runs are as reproducible as pure-OLTP
// ones: the recorded digest holds, serial and parallel.
func TestGoldenHTAPDigest(t *testing.T) {
	points := goldenHTAPSpec().Points()
	serial := Run(points, Options{Parallel: 1})
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("%s/%s/x%d failed: %v", r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets, r.Err)
		}
		if r.Res.Scan == nil || r.Res.Scan.Scans == 0 {
			t.Errorf("%s/%s/x%d ran no analytical scans", r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets)
		}
		if r.Res.Scan != nil && r.Res.Scan.SnapViolations != 0 {
			t.Errorf("%s/%s/x%d saw %d snapshot violations", r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets, r.Res.Scan.SnapViolations)
		}
	}
	got := Digest(serial)
	t.Logf("serial htap digest: %s", got)
	if got != goldenHTAPDigest {
		t.Errorf("htap digest diverged from golden:\n got  %s\n want %s", got, goldenHTAPDigest)
	}
	par := Run(points, Options{Parallel: 4})
	if pd := Digest(par); pd != got {
		t.Errorf("parallel htap sweep diverged from serial:\n got  %s\n want %s", pd, got)
	}
}
