package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"bionicdb/internal/btree"
	"bionicdb/internal/core"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
)

// RecoverySpec declares the fig-recovery experiment: run a workload on a
// sharded-log machine, crash it cold at the end of the measurement window
// (no drain, no clean shutdown — whatever the log devices hold is the crash
// image), then boot a fresh machine and replay the shards, serially and in
// parallel, under the cost model. The figure is recovery time and joules
// versus socket count: N log shards replay from N devices on N sockets, so
// parallel recovery is the durability subsystem's read-side payoff.
type RecoverySpec struct {
	// Sockets are the socket counts to measure (default 1, 2, 4, 8, 16).
	Sockets []int
	// Workload builds the (socket-scaled) workload for one point; required.
	Workload func(sockets int) WorkloadSpec
	// Engine builds the engine under test for one scaled config (default
	// DORA — the software sharded log). The engine must be checkpointable.
	Engine func(cfg *platform.Config, partitions, window int) EngineSpec
	// ShardedLog gives the machine per-socket log devices (default in
	// RunRecovery callers; false measures the centralized baseline).
	ShardedLog bool
	// KernelParallel runs the crash phase and both recovery boots on the
	// parallel event kernel (see core.RunConfig.KernelParallel); results
	// stay bit-identical.
	KernelParallel bool

	// TerminalsPerSocket is the offered load (default 32).
	TerminalsPerSocket int
	// PartitionsPerSocket is the DORA partition count per socket (default:
	// cores per socket).
	PartitionsPerSocket int
	// Window is the bionic in-flight window (default 8).
	Window int

	Seed    uint64
	Warmup  sim.Duration
	Measure sim.Duration
}

// RecoveryResult is one crash/recovery measurement.
type RecoveryResult struct {
	Sockets    int
	Shards     int
	ShardedLog bool
	Engine     string
	Workload   string

	Commits  int64 // transactions acknowledged before the crash
	LogBytes int64 // durable log bytes replayed (sum over shards)
	Txns     int64 // committed transactions recovered from the log tail
	Records  int64 // data records replayed

	RestoreSim     sim.Duration // checkpoint-image scan (shared device, serial)
	SerialReplay   sim.Duration // log replay, one process walking all shards
	ParallelReplay sim.Duration // log replay, one process per shard
	TotalSim       sim.Duration // the parallel boot end to end
	Joules         float64      // energy of the parallel recovery boot
	Rows           int64        // rows in the recovered tables

	Err error
}

// checkpointable is the engine surface the crash harness needs. TableSets
// is the socket-indexed checkpoint surface: one set per socket on an
// engine-sharded machine, a single-element slice otherwise.
type checkpointable interface {
	core.Engine
	TableSets() []map[uint16]*btree.Tree
	DiskManager() *storage.DiskManager
	LogSet() *wal.LogSet
}

// RunRecovery executes the spec, fanning points out across the worker pool.
// Each point runs its crash phase and both recovery boots in private
// environments, so parallel execution is bit-identical to serial.
func (s RecoverySpec) RunRecovery(opt Options) []RecoveryResult {
	sockets := s.Sockets
	if len(sockets) == 0 {
		sockets = DefaultScalingSockets()
	}
	engine := s.Engine
	if engine == nil {
		engine = func(cfg *platform.Config, partitions, window int) EngineSpec {
			return DORAOn(cfg, partitions)
		}
	}
	tps := s.TerminalsPerSocket
	if tps <= 0 {
		tps = 32
	}
	window := s.Window
	if window <= 0 {
		window = 8
	}
	seed := s.Seed
	if seed == 0 {
		seed = core.DefaultRunConfig().Seed
	}
	warmup, measure := s.Warmup, s.Measure
	if warmup <= 0 {
		warmup = core.DefaultRunConfig().Warmup
	}
	if measure <= 0 {
		measure = core.DefaultRunConfig().Measure
	}

	out := make([]RecoveryResult, len(sockets))
	ForEach(len(sockets), opt.Parallel, func(i int) {
		n := sockets[i]
		cfg := platform.HC2Scaled(n)
		cfg.LogDevPerSocket = s.ShardedLog
		pps := s.PartitionsPerSocket
		if pps <= 0 {
			pps = cfg.Cores
		}
		wl := s.Workload(n)
		spec := engine(cfg, pps*n, window)
		out[i] = runRecoveryPoint(cfg, spec, wl, tps*n, seed, warmup, measure, s.KernelParallel)
		out[i].Sockets = n
		out[i].ShardedLog = cfg.ShardedLog()
		if opt.OnResult != nil {
			// Recovery points are not sweep Results; observers only need
			// progress, so report a husk carrying the point index.
			opt.OnResult(Result{Point: Point{Index: i, Group: "fig-recovery"}})
		}
	})
	return out
}

// runRecoveryPoint is one crash + two recovery boots.
func runRecoveryPoint(cfg *platform.Config, spec EngineSpec, wlSpec WorkloadSpec, terminals int, seed uint64, warmup, measure sim.Duration, kernelParallel bool) RecoveryResult {
	res := RecoveryResult{Engine: spec.Name, Workload: wlSpec.Name}

	// --- Crash phase: populate, checkpoint sharp, run the window, stop cold.
	env := sim.NewEnv()
	defer env.Close()
	wl := wlSpec.Make()
	eng := spec.Make(env, wl)
	enableParallelKernel(env, eng.Platform(), kernelParallel)
	ck, ok := eng.(checkpointable)
	if !ok {
		res.Err = fmt.Errorf("engine %s is not checkpointable", spec.Name)
		return res
	}
	root := sim.NewRand(seed)
	wl.Populate(eng.Load, root.Split())
	if warmer, ok := eng.(interface{ Warm() }); ok {
		warmer.Warm()
	}
	// Checkpoint sharp before any terminal exists. The checkpoint's
	// simulated duration is not known up front, and engine daemons tick
	// forever (an unbounded Run would never return), so the host steps the
	// environment in adaptive chunks until the checkpointer reports done:
	// chunks double while no event lands inside one (RunUntil never
	// advances the clock past the last executed event) and reset once
	// progress resumes. Only idle daemons share the clock with the
	// checkpointer here, so overshooting its completion instant is free.
	var meta core.CheckpointMeta
	ckDone := false
	sets := ck.TableSets()
	shardedEng := len(sets) > 1
	if shardedEng {
		// Engine-on-shard machine: no single process may walk every socket's
		// trees, so capture the image host-side right here — the kernel has
		// not started, which is the strongest barrier there is — and charge
		// the captured spans to the (shard-0) checkpoint device from a
		// shard-0 process.
		var spans []int
		meta, spans = core.CheckpointAllSetsHost(sets, ck.DiskManager(), ck.LogSet())
		env.SpawnOn(0, "checkpointer", func(p *sim.Proc) {
			for _, span := range spans {
				ck.DiskManager().Device().Transfer(p, span)
			}
			ckDone = true
		})
	} else {
		env.Spawn("checkpointer", func(p *sim.Proc) {
			meta = core.CheckpointAllSets(p, sets, ck.DiskManager(), ck.LogSet())
			ckDone = true
		})
	}
	step := sim.Time(1 * sim.Millisecond)
	for !ckDone {
		before := env.Executed()
		if err := env.RunUntil(env.Now() + step); err != nil {
			res.Err = err
			return res
		}
		if env.Executed() == before {
			step *= 2
		} else {
			step = sim.Time(1 * sim.Millisecond)
		}
	}
	// Open the terminals for exactly warmup+measure, then crash: stop the
	// world mid-flight. No drain, no Close — staged and buffered log bytes
	// die with the machine; only the stores' durable bytes survive.
	endT := env.Now() + sim.Time(warmup) + sim.Time(measure)
	pl := eng.Platform()
	for i := 0; i < terminals; i++ {
		i := i
		tr := root.Split()
		tcore := pl.Cores[i%len(pl.Cores)]
		body := func(tp *sim.Proc) {
			term := &core.Terminal{ID: i, P: tp, Core: tcore, R: tr}
			for {
				_, logic := wl.NextTxn(term.R)
				eng.Submit(term, logic)
			}
		}
		if shardedEng {
			env.SpawnOn(pl.ShardOfCore(tcore), fmt.Sprintf("terminal%d", i), body)
		} else {
			env.Spawn(fmt.Sprintf("terminal%d", i), body)
		}
	}
	if err := env.RunUntil(endT); err != nil {
		res.Err = err
		return res
	}
	res.Commits = eng.Counters().Get("commits")
	logs := ck.LogSet().Datas()
	res.Shards = len(logs)
	defs := wl.Tables()

	// --- Recovery boots: serial then parallel, each on a fresh machine.
	boot := func(parallel bool) (core.RecoveryStats, *platform.Platform, []map[uint16]*btree.Tree, error) {
		env2 := sim.NewEnv()
		defer env2.Close()
		pl2 := platform.New(env2, cfg)
		enableParallelKernel(env2, pl2, kernelParallel)
		dm2 := ck.DiskManager().Rebind(pl2.Disk)
		var st core.RecoveryStats
		var recovered []map[uint16]*btree.Tree
		var err error
		env2.Spawn("recovery", func(p *sim.Proc) {
			recovered, st, err = core.RecoverMeasured(p, pl2, defs, meta, dm2, logs, parallel)
		})
		if runErr := env2.Run(); runErr != nil {
			return st, pl2, nil, runErr
		}
		return st, pl2, recovered, err
	}

	serial, _, serialSets, err := boot(false)
	if err != nil {
		res.Err = err
		return res
	}
	par, pl2, parSets, err := boot(true)
	if err != nil {
		res.Err = err
		return res
	}
	if d1, d2 := core.ContentDigestSets(serialSets), core.ContentDigestSets(parSets); d1 != d2 {
		res.Err = fmt.Errorf("serial and parallel replay diverged: %s vs %s", d1, d2)
		return res
	}
	res.LogBytes = par.LogBytes
	res.Txns = par.Txns
	res.Records = par.Records
	res.RestoreSim = par.Restore
	res.SerialReplay = serial.Replay
	res.ParallelReplay = par.Replay
	res.TotalSim = par.SimTime
	res.Joules = pl2.Energy(platform.Snapshot{}, pl2.Snapshot()).Total()
	for _, set := range parSets {
		for _, tree := range set {
			res.Rows += int64(tree.Size())
		}
	}
	return res
}

// enableParallelKernel switches a raw driver environment onto the parallel
// event kernel when requested and the machine has a parallel shape — the
// same selection core.Run performs for harness-driven runs.
func enableParallelKernel(env *sim.Env, pl *platform.Platform, on bool) {
	if !on {
		return
	}
	if shards, la := pl.KernelShards(); shards > 1 && la > 0 {
		env.EnableParallel(shards, la)
	}
}

// RecoveryTable renders recovery results as the fig-recovery table. The
// replay speedup column is serial over parallel replay — the restore scan
// is a shared-device floor both boots pay identically.
func RecoveryTable(results []RecoveryResult) *stats.Table {
	t := stats.NewTable("workload", "engine", "log", ">sockets", ">shards",
		">log KB", ">txns", ">restore", ">ser replay", ">par replay", ">speedup", ">total", ">mJ", ">rows")
	for _, r := range results {
		if r.Err != nil {
			t.Row(r.Workload, r.Engine, logLabel(r.ShardedLog), fmt.Sprintf("%d", r.Sockets),
				"error: "+r.Err.Error(), "", "", "", "", "", "", "", "", "")
			continue
		}
		speedup := 0.0
		if r.ParallelReplay > 0 {
			speedup = float64(r.SerialReplay) / float64(r.ParallelReplay)
		}
		t.Row(r.Workload, r.Engine, logLabel(r.ShardedLog),
			fmt.Sprintf("%d", r.Sockets),
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.0f", float64(r.LogBytes)/1024),
			fmt.Sprintf("%d", r.Txns),
			r.RestoreSim.String(),
			r.SerialReplay.String(),
			r.ParallelReplay.String(),
			fmt.Sprintf("%.2fx", speedup),
			r.TotalSim.String(),
			fmt.Sprintf("%.3f", r.Joules*1e3),
			fmt.Sprintf("%d", r.Rows))
	}
	return t
}

// recoveryJSON is the flat per-point record of the recovery JSON document.
type recoveryJSON struct {
	Name             string  `json:"name"`
	Workload         string  `json:"workload"`
	Engine           string  `json:"engine"`
	Sockets          int     `json:"sockets"`
	Shards           int     `json:"shards"`
	ShardedLog       bool    `json:"sharded_log"`
	Commits          int64   `json:"commits_before_crash"`
	LogBytes         int64   `json:"log_bytes"`
	Txns             int64   `json:"txns_recovered"`
	Records          int64   `json:"records_replayed"`
	RestoreUs        float64 `json:"restore_us"`
	SerialReplayUs   float64 `json:"serial_replay_us"`
	ParallelReplayUs float64 `json:"parallel_replay_us"`
	TotalUs          float64 `json:"total_us"`
	Joules           float64 `json:"joules"`
	Rows             int64   `json:"rows"`
	Error            string  `json:"error,omitempty"`
}

// RecoveryJSON marshals recovery results as an indented
// BENCH_recovery.json-style document.
func RecoveryJSON(results []RecoveryResult) ([]byte, error) {
	doc := struct {
		Suite   string         `json:"suite"`
		Results []recoveryJSON `json:"results"`
	}{Suite: "bionicbench-recovery"}
	for _, r := range results {
		jr := recoveryJSON{
			Name:             fmt.Sprintf("fig-recovery/%s/%s/x%d", r.Workload, r.Engine, r.Sockets),
			Workload:         r.Workload,
			Engine:           r.Engine,
			Sockets:          r.Sockets,
			Shards:           r.Shards,
			ShardedLog:       r.ShardedLog,
			Commits:          r.Commits,
			LogBytes:         r.LogBytes,
			Txns:             r.Txns,
			Records:          r.Records,
			RestoreUs:        r.RestoreSim.Microseconds(),
			SerialReplayUs:   r.SerialReplay.Microseconds(),
			ParallelReplayUs: r.ParallelReplay.Microseconds(),
			TotalUs:          r.TotalSim.Microseconds(),
			Joules:           r.Joules,
			Rows:             r.Rows,
		}
		if r.ShardedLog {
			jr.Name += "/slog"
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		doc.Results = append(doc.Results, jr)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteRecoveryJSONFile writes the recovery document to path.
func WriteRecoveryJSONFile(path string, results []RecoveryResult) error {
	b, err := RecoveryJSON(results)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
