package bench

import (
	"fmt"

	"bionicdb/internal/core"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// ScalingSpec declares the fig-scaling sweep: the three engines on every
// workload at every socket count, with offered load (terminals) and DORA
// partition count scaling with the machine. Zero fields get defaults, so
// only the axes under study need declaring.
//
// This is weak scaling — load grows with the machine — so a perfectly
// scalable engine shows throughput proportional to sockets at flat
// joules/txn, while a centralized engine flattens as the interconnect and
// its shared structures saturate.
type ScalingSpec struct {
	// Sockets are the socket counts to measure (default 1, 2, 4, 8, 16).
	Sockets []int
	// Workloads is the workload axis (required).
	Workloads []WorkloadSpec
	// Engines optionally replaces the default engine axis. Each entry is
	// instantiated per socket count via its On constructor.
	Engines []ScalingEngine

	// TerminalsPerSocket is the closed-loop clients per socket (default 32).
	TerminalsPerSocket int
	// PartitionsPerSocket is the DORA/bionic partitions per socket
	// (default: the config's cores per socket, one partition per core).
	PartitionsPerSocket int
	// Window is the bionic in-flight window (default 8).
	Window int
	// ShardedLog runs every point on a machine with per-socket log devices
	// (the sharded durability subsystem). Single-socket points are
	// structurally unaffected — the flag only bites at 2+ sockets — so the
	// 1-socket row still anchors the speedup column.
	ShardedLog bool
	// KernelParallel runs every point on the parallel event kernel (see
	// core.RunConfig.KernelParallel); results stay bit-identical.
	KernelParallel bool
	// Obs attaches the flight recorder to every point (see
	// core.RunConfig.Obs); results stay bit-identical.
	Obs *obs.Options

	Seeds   []uint64
	Warmup  sim.Duration
	Measure sim.Duration
	Drain   sim.Duration
}

// ScalingEngine builds one engine spec for a given scaled platform config
// and total partition count.
type ScalingEngine struct {
	Name string
	On   func(cfg *platform.Config, partitions, window int) EngineSpec
}

// DefaultScalingEngines returns the standard engine axis: conventional,
// DORA and the fully-offloaded bionic engine.
func DefaultScalingEngines() []ScalingEngine {
	return []ScalingEngine{
		{Name: "conventional", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return ConventionalOn(cfg)
		}},
		{Name: "dora", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return DORAOn(cfg, partitions)
		}},
		{Name: "bionic", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return BionicOn(cfg, partitions, core.AllOffloads(), window)
		}},
	}
}

// DefaultScalingSockets is the 1 -> 16 socket axis of the fig-scaling
// figure.
func DefaultScalingSockets() []int { return []int{1, 2, 4, 8, 16} }

// Points expands the spec into grid points in deterministic order:
// workload outermost, then socket count, engine, seed — so each
// workload's scaling curves print together, engine by engine.
func (s ScalingSpec) Points() []Point {
	sockets := s.Sockets
	if len(sockets) == 0 {
		sockets = DefaultScalingSockets()
	}
	engines := s.Engines
	if len(engines) == 0 {
		engines = DefaultScalingEngines()
	}
	tps := s.TerminalsPerSocket
	if tps <= 0 {
		tps = 32
	}
	window := s.Window
	if window <= 0 {
		window = 8
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{core.DefaultRunConfig().Seed}
	}
	warmup, measure := s.Warmup, s.Measure
	if warmup <= 0 {
		warmup = core.DefaultRunConfig().Warmup
	}
	if measure <= 0 {
		measure = core.DefaultRunConfig().Measure
	}

	var out []Point
	for _, wl := range s.Workloads {
		for _, n := range sockets {
			cfg := platform.HC2Scaled(n)
			cfg.LogDevPerSocket = s.ShardedLog
			pps := s.PartitionsPerSocket
			if pps <= 0 {
				pps = cfg.Cores
			}
			partitions := pps * n
			for _, eng := range engines {
				spec := eng.On(cfg, partitions, window)
				spec.Name = eng.Name // rows name the curve ("bionic"), not the offload list
				for _, seed := range seeds {
					out = append(out, Point{
						Index: len(out), Group: "fig-scaling",
						Engine: spec, Workload: wl,
						Terminals: tps * n, Seed: seed, Sockets: n,
						ShardedLog:     cfg.ShardedLog(),
						KernelParallel: s.KernelParallel, Obs: s.Obs,
						Warmup: warmup, Measure: measure, Drain: s.Drain,
					})
				}
			}
		}
	}
	return out
}

// Run executes the scaling sweep; see Run.
func (s ScalingSpec) Run(opt Options) []Result { return Run(s.Points(), opt) }

// logLabel names a point's durability layout in tables.
func logLabel(sharded bool) string {
	if sharded {
		return "sharded"
	}
	return "central"
}

// ScalingTable renders scaling results as the fig-scaling table: one row
// per point with a speedup column relative to the same engine and
// workload at the lowest measured socket count. Sharded-log rows share
// that baseline — a 1-socket machine is identical with the flag on or off
// — so central and sharded curves of one engine are directly comparable.
func ScalingTable(results []Result) *stats.Table {
	t := stats.NewTable("workload", "engine", "log", ">sockets", ">terminals",
		">tps", ">speedup", ">uJ/txn", ">p50", ">p95", ">commits")
	// Baseline tps per (workload, engine): the lowest measured socket
	// count with a usable result, regardless of row order or log layout.
	type curve struct{ wl, eng string }
	type baseline struct {
		sockets int
		tps     float64
	}
	base := map[curve]baseline{}
	for _, r := range results {
		if r.Err != nil || r.Res.TPS <= 0 {
			continue
		}
		k := curve{r.Point.Workload.Name, r.Point.Engine.Name}
		if b, ok := base[k]; !ok || r.Point.Sockets < b.sockets {
			base[k] = baseline{r.Point.Sockets, r.Res.TPS}
		}
	}
	for _, r := range results {
		p := r.Point
		if r.Err != nil {
			t.Row(p.Workload.Name, p.Engine.Name, logLabel(p.ShardedLog), fmt.Sprintf("%d", p.Sockets),
				fmt.Sprintf("%d", p.Terminals), "error: "+r.Err.Error(), "", "", "", "", "")
			continue
		}
		speedup := 0.0
		if b := base[curve{p.Workload.Name, p.Engine.Name}]; b.tps > 0 {
			speedup = r.Res.TPS / b.tps
		}
		t.Row(p.Workload.Name, p.Engine.Name, logLabel(p.ShardedLog),
			fmt.Sprintf("%d", p.Sockets),
			fmt.Sprintf("%d", p.Terminals),
			fmt.Sprintf("%.0f", r.Res.TPS),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f", r.Res.JoulesPerTxn*1e6),
			r.Res.Latency.Percentile(50).String(),
			r.Res.Latency.Percentile(95).String(),
			fmt.Sprintf("%d", r.Res.Commits))
	}
	return t
}
