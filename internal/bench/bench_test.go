package bench

import (
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/workload/htap"
	"bionicdb/internal/workload/tatp"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"
)

func smallTATP() WorkloadSpec {
	return WorkloadSpec{Name: "tatp", Make: func() core.Workload {
		return tatp.New(tatp.Config{Subscribers: 1000})
	}}
}

func smallYCSB() WorkloadSpec {
	return WorkloadSpec{Name: "ycsb", Make: func() core.Workload {
		cfg := ycsb.WorkloadA()
		cfg.Records = 2000
		return ycsb.New(cfg)
	}}
}

// smallTPCC matters for determinism coverage: TPC-C transactions span
// partitions, which exercises the rollback/lock-release fan-out paths.
func smallTPCC() WorkloadSpec {
	return WorkloadSpec{Name: "tpcc", Make: func() core.Workload {
		return tpcc.New(tpcc.SmallConfig())
	}}
}

func smallGrid() Grid {
	return Grid{
		Engines:   []EngineSpec{DORA(4), Bionic(4, core.AllOffloads(), 8)},
		Workloads: []WorkloadSpec{smallTATP(), smallYCSB(), smallTPCC()},
		Terminals: []int{8},
		Seeds:     []uint64{1, 2},
		Warmup:    1 * sim.Millisecond,
		Measure:   3 * sim.Millisecond,
	}
}

// TestPointsExpansion checks the grid cross product, ordering and
// defaulting.
func TestPointsExpansion(t *testing.T) {
	g := smallGrid()
	points := g.Points()
	if len(points) != 3*2*1*2 {
		t.Fatalf("expected 12 points, got %d", len(points))
	}
	// Workload outermost, then engine, then seed.
	if points[0].Workload.Name != "tatp" || points[4].Workload.Name != "ycsb" {
		t.Fatalf("unexpected workload order: %s, %s", points[0].Workload.Name, points[4].Workload.Name)
	}
	if points[0].Seed != 1 || points[1].Seed != 2 {
		t.Fatalf("unexpected seed order: %d, %d", points[0].Seed, points[1].Seed)
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
	}

	defaulted := Grid{Engines: []EngineSpec{DORA(4)}, Workloads: []WorkloadSpec{smallTATP()}}
	dp := defaulted.Points()
	want := core.DefaultRunConfig()
	if len(dp) != 1 || dp[0].Terminals != want.Terminals || dp[0].Seed != want.Seed ||
		dp[0].Warmup != want.Warmup || dp[0].Measure != want.Measure {
		t.Fatalf("defaults not applied: %+v", dp[0])
	}
}

// TestParallelMatchesSerial is the subsystem's core guarantee: a sweep fanned
// out across workers produces bit-identical measurements to the same grid
// run serially, because every point owns its environment, workload and
// random streams.
func TestParallelMatchesSerial(t *testing.T) {
	g := smallGrid()
	points := g.Points()
	serial := Run(points, Options{Parallel: 1})
	par := Run(points, Options{Parallel: 4})
	if len(serial) != len(par) {
		t.Fatalf("result count mismatch: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("point %d errored: serial=%v parallel=%v", i, s.Err, p.Err)
		}
		if s.Res.Engine != p.Res.Engine || s.Res.Workload != p.Res.Workload {
			t.Fatalf("point %d identity mismatch: %s/%s vs %s/%s",
				i, s.Res.Workload, s.Res.Engine, p.Res.Workload, p.Res.Engine)
		}
		if s.Res.Commits != p.Res.Commits || s.Res.Aborts != p.Res.Aborts {
			t.Errorf("point %d commits/aborts diverge: %d/%d vs %d/%d",
				i, s.Res.Commits, s.Res.Aborts, p.Res.Commits, p.Res.Aborts)
		}
		if s.Res.TPS != p.Res.TPS || s.Res.JoulesPerTxn != p.Res.JoulesPerTxn {
			t.Errorf("point %d tps/energy diverge: %v/%v vs %v/%v",
				i, s.Res.TPS, s.Res.JoulesPerTxn, p.Res.TPS, p.Res.JoulesPerTxn)
		}
		if s.Res.BD != p.Res.BD {
			t.Errorf("point %d component breakdown diverges", i)
		}
		if s.Res.Latency.Percentile(50) != p.Res.Latency.Percentile(50) ||
			s.Res.Latency.Percentile(95) != p.Res.Latency.Percentile(95) {
			t.Errorf("point %d latency percentiles diverge", i)
		}
		if !reflect.DeepEqual(s.Res.TxnCounts, p.Res.TxnCounts) {
			t.Errorf("point %d txn counts diverge: %v vs %v", i, s.Res.TxnCounts, p.Res.TxnCounts)
		}
	}
}

// TestYCSBAllEngines smoke-runs the YCSB workload on every engine through
// a grid and checks each run commits work of every requested kind.
func TestYCSBAllEngines(t *testing.T) {
	cfg := ycsb.Config{Records: 2000, ReadPct: 40, UpdatePct: 30, ScanPct: 15, RMWPct: 15, MaxScanLen: 20}
	g := Grid{
		Engines: []EngineSpec{Conventional(), DORA(4), Bionic(4, core.AllOffloads(), 8)},
		Workloads: []WorkloadSpec{{Name: "ycsb", Make: func() core.Workload {
			return ycsb.New(cfg)
		}}},
		Terminals: []int{8},
		Seeds:     []uint64{7},
		Warmup:    1 * sim.Millisecond,
		Measure:   4 * sim.Millisecond,
	}
	for _, r := range g.Run(Options{Parallel: 2}) {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.Point.Engine.Name, r.Err)
		}
		if r.Res.Commits == 0 {
			t.Errorf("%s committed nothing", r.Point.Engine.Name)
		}
		for _, op := range []string{"Read", "Update", "Scan", "ReadModifyWrite"} {
			if r.Res.TxnCounts[op] == 0 {
				t.Errorf("%s ran no %s operations", r.Point.Engine.Name, op)
			}
		}
	}
}

// TestForEach checks the pool covers every index exactly once at any
// parallelism, including degenerate sizes.
func TestForEach(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 16} {
		const n = 57
		var hits [n]atomic.Int64
		ForEach(n, parallel, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: index %d executed %d times", parallel, i, got)
			}
		}
	}
	ForEach(0, 4, func(i int) { t.Fatal("fn called for empty range") })
}

// TestJSONEmission checks the document shape and that errors carry through.
func TestJSONEmission(t *testing.T) {
	g := Grid{
		Engines:   []EngineSpec{DORA(4)},
		Workloads: []WorkloadSpec{smallYCSB()},
		Terminals: []int{4},
		Seeds:     []uint64{3},
		Warmup:    1 * sim.Millisecond,
		Measure:   2 * sim.Millisecond,
	}
	results := g.Run(Options{Parallel: 1})
	b, err := JSON(results)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Suite   string `json:"suite"`
		Results []struct {
			Name    string  `json:"name"`
			Engine  string  `json:"engine"`
			TPS     float64 `json:"tps"`
			Commits int64   `json:"commits"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if doc.Suite != "bionicbench" || len(doc.Results) != 1 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	jr := doc.Results[0]
	if jr.Name != "ycsb/dora/t4/s3" || jr.Engine != "dora" {
		t.Errorf("unexpected result identity: %+v", jr)
	}
	if jr.Commits != results[0].Res.Commits || jr.TPS != results[0].Res.TPS {
		t.Errorf("JSON numbers diverge from result: %+v vs %+v", jr, results[0].Res)
	}
}

func smallHTAPYCSB() WorkloadSpec {
	return WorkloadSpec{Name: "htap-ycsb", Make: func() core.Workload {
		cfg := ycsb.WorkloadA()
		cfg.Records = 2000
		return htap.NewYCSB(cfg, htap.DefaultParams())
	}}
}

func smallHTAPTPCC() WorkloadSpec {
	return WorkloadSpec{Name: "htap-tpcc", Make: func() core.Workload {
		return htap.NewTPCC(tpcc.SmallConfig(), htap.DefaultParams())
	}}
}
