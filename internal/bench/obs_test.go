package bench

import (
	"reflect"
	"runtime"
	"testing"

	"bionicdb/internal/obs"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// This file is the observability equivalence matrix: the flight recorder
// (span tracing + time-series telemetry) is strictly out-of-band, so every
// pinned golden digest must be bit-identical with it on or off, on both
// event kernels, at any GOMAXPROCS. A recorder that consumed simulated
// time, energy, or a random draw would shift a digest and fail here.

// fullObs returns the everything-on recorder options the matrix runs under.
func fullObs() *obs.Options {
	return &obs.Options{Trace: true, Metrics: true}
}

// withObs returns the points with the recorder options overridden.
func withObs(points []Point, o *obs.Options) []Point {
	out := make([]Point, len(points))
	for i, p := range points {
		p.Obs = o
		out[i] = p
	}
	return out
}

// TestSpecsPropagateObs pins the options plumbing: every spec type that
// expands to points must carry its Obs into each of them, and Point.Run
// must hand it to the harness (witnessed by the trace and telemetry
// artifacts coming back on the result).
func TestSpecsPropagateObs(t *testing.T) {
	o := fullObs()
	grid := goldenGrid()
	grid.Obs = o
	scaling := goldenScalingSpec()
	scaling.Obs = o
	htap := goldenHTAPSpec()
	htap.Obs = o
	for name, points := range map[string][]Point{
		"grid":    grid.Points(),
		"scaling": scaling.Points(),
		"htap":    htap.Points(),
	} {
		if len(points) == 0 {
			t.Fatalf("%s: no points", name)
		}
		for _, p := range points {
			if p.Obs != o {
				t.Errorf("%s: point %s/%s dropped Obs", name, p.Workload.Name, p.Engine.Name)
			}
		}
	}
	g := goldenGrid()
	r := g.Points()[0]
	r.Obs = o
	res := r.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Res.Trace == nil || len(res.Res.Trace.Merged()) == 0 {
		t.Error("traced run returned no spans")
	}
	if res.Res.Metrics == nil || len(res.Res.Metrics.Samples()) == 0 {
		t.Error("sampled run returned no telemetry")
	}
	if res.Res.Anatomy.Samples() == 0 {
		t.Error("run recorded no latency anatomy")
	}
}

// TestObsEquivalenceMatrix asserts every pinned golden digest — the quick
// grid, the multi-socket scaling sweep, the hybrid sweep and the
// engine-on-shard sweep — is reproduced bit for bit with tracing and
// telemetry enabled, on both the serial and the parallel kernel. The
// recorder artifacts must also be non-empty, so a silently detached
// recorder cannot pass as zero perturbation.
func TestObsEquivalenceMatrix(t *testing.T) {
	quick := goldenGrid()
	families := []struct {
		name   string
		points []Point
		golden string
	}{
		{"fig3-fig4-quick", quick.Points(), goldenDigest},
		{"scaling-golden", goldenScalingSpec().Points(), goldenScalingDigest},
		{"htap-golden", goldenHTAPSpec().Points(), goldenHTAPDigest},
		{"engine-shard", engineShardSpec([]int{2, 4, 8}).Points(), engineShardGoldenDigest},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for _, kernel := range []struct {
				name     string
				parallel bool
			}{{"serial", false}, {"parallel", true}} {
				points := withObs(withKernel(fam.points, kernel.parallel), fullObs())
				results := mustRun(t, fam.name+"/"+kernel.name, points, Options{Parallel: 4})
				if got := Digest(results); got != fam.golden {
					t.Errorf("%s kernel with recorder on diverged from golden:\n got  %s\n want %s",
						kernel.name, got, fam.golden)
				}
				for _, r := range results {
					if r.Res.Trace == nil || len(r.Res.Trace.Merged()) == 0 {
						t.Errorf("%s/%s x%d: traced run returned no spans",
							r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets)
					}
					if r.Res.Metrics == nil || len(r.Res.Metrics.Samples()) == 0 {
						t.Errorf("%s/%s x%d: sampled run returned no telemetry",
							r.Point.Workload.Name, r.Point.Engine.Name, r.Point.Sockets)
					}
				}
			}
		})
	}
}

// TestObsGOMAXPROCSInvariance asserts the recorder changes nothing under
// host-parallelism changes either: the parallel kernel with tracing and
// telemetry on produces the golden scaling digest at GOMAXPROCS=1 and
// GOMAXPROCS=8 alike.
func TestObsGOMAXPROCSInvariance(t *testing.T) {
	points := withObs(withKernel(goldenScalingSpec().Points(), true), fullObs())
	prev := runtime.GOMAXPROCS(1)
	one := Digest(mustRun(t, "obs-gomaxprocs1", points, Options{Parallel: 1}))
	runtime.GOMAXPROCS(8)
	many := Digest(mustRun(t, "obs-gomaxprocs8", points, Options{Parallel: 1}))
	runtime.GOMAXPROCS(prev)
	if one != many {
		t.Errorf("recorder digest depends on GOMAXPROCS:\n 1: %s\n N: %s", one, many)
	}
	if one != goldenScalingDigest {
		t.Errorf("parallel kernel with recorder on diverged from golden:\n got  %s\n want %s",
			one, goldenScalingDigest)
	}
}

// TestObsEquivalenceFailover asserts the replication/failover family is
// untouched by the recorder: the full per-point failover measurements are
// DeepEqual and the steady-state digests identical with it on vs off.
func TestObsEquivalenceFailover(t *testing.T) {
	spec := FailoverSpec{
		Sockets:            []int{1, 2},
		Modes:              []stats.ReplMode{stats.ReplNone, stats.ReplSync},
		Replicas:           2,
		Workload:           func(sockets int) WorkloadSpec { return smallTPCC() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	offFo, offSteady := spec.RunFailover(Options{Parallel: 2})
	spec.Obs = fullObs()
	onFo, onSteady := spec.RunFailover(Options{Parallel: 2})
	for i := range offFo {
		if offFo[i].Err != nil || onFo[i].Err != nil {
			t.Fatalf("x%d/%v: off err %v, on err %v",
				offFo[i].Sockets, offFo[i].Mode, offFo[i].Err, onFo[i].Err)
		}
	}
	if !reflect.DeepEqual(offFo, onFo) {
		t.Errorf("failover results diverge with the recorder on:\noff %+v\non  %+v", offFo, onFo)
	}
	if doff, don := Digest(offSteady), Digest(onSteady); doff != don {
		t.Errorf("steady-state digests diverge with the recorder on: off %s vs on %s", doff, don)
	}
}
