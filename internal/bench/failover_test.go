package bench

import (
	"reflect"
	"strings"
	"testing"

	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func smallFailoverSpec() FailoverSpec {
	return FailoverSpec{
		Sockets:  []int{1, 2},
		Modes:    []stats.ReplMode{stats.ReplNone, stats.ReplAsync, stats.ReplSync},
		Replicas: 2,
		Workload: func(sockets int) WorkloadSpec { return smallTPCC() },

		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
}

// TestFailoverSerialParallelIdentical pins the sweep's determinism: the
// fault plan, the kill instant, the surviving image and the recovered
// content must be bit-identical whether points run serially or fanned out.
func TestFailoverSerialParallelIdentical(t *testing.T) {
	spec := smallFailoverSpec()
	serialFo, serialSteady := spec.RunFailover(Options{Parallel: 1})
	parFo, parSteady := spec.RunFailover(Options{Parallel: 4})
	if !reflect.DeepEqual(serialFo, parFo) {
		t.Errorf("failover results diverge between serial and parallel runs:\n%+v\n%+v", serialFo, parFo)
	}
	if ds, dp := Digest(serialSteady), Digest(parSteady); ds != dp {
		t.Errorf("steady-state digests diverge: serial %s vs parallel %s", ds, dp)
	}
	for _, r := range serialFo {
		if r.Err != nil {
			t.Fatalf("x%d/%s failed: %v", r.Sockets, r.Mode, r.Err)
		}
		if r.TPS <= 0 {
			t.Errorf("x%d/%s measured no throughput", r.Sockets, r.Mode)
		}
		if r.Mode == stats.ReplNone {
			if r.CommitsAcked != 0 || r.TimeToServing != 0 {
				t.Errorf("baseline row carries failover fields: %+v", r)
			}
			continue
		}
		if !r.DigestOK {
			t.Errorf("x%d/%s replica content diverged", r.Sockets, r.Mode)
		}
		if r.CommitsAcked == 0 || r.TxnsRecovered == 0 || r.TimeToServing <= 0 {
			t.Errorf("x%d/%s empty failover measurement: %+v", r.Sockets, r.Mode, r)
		}
		if r.OverheadP50 <= 0 {
			t.Errorf("x%d/%s missing overhead vs baseline", r.Sockets, r.Mode)
		}
		if r.Mode == stats.ReplSync && r.LostTxns != 0 {
			t.Errorf("sync lost %d acknowledged commits", r.LostTxns)
		}
		if r.ShippedBytes == 0 {
			t.Errorf("x%d/%s shipped nothing in steady state", r.Sockets, r.Mode)
		}
	}
}

func TestFailoverDefaults(t *testing.T) {
	if got := DefaultFailoverSockets(); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Errorf("default sockets %v", got)
	}
	want := []stats.ReplMode{stats.ReplNone, stats.ReplAsync, stats.ReplSync, stats.ReplQuorum}
	if got := DefaultFailoverModes(); !reflect.DeepEqual(got, want) {
		t.Errorf("default modes %v", got)
	}
}

func TestFailoverTableAndJSON(t *testing.T) {
	results := []FailoverResult{
		{Sockets: 1, Mode: stats.ReplNone, Engine: "dora", Workload: "tpcc", TPS: 1000},
		{Sockets: 1, Shards: 1, Mode: stats.ReplQuorum, Replicas: 2, Engine: "dora", Workload: "tpcc",
			TPS: 800, P50: 100 * sim.Microsecond, OverheadP50: 1.5,
			CommitsAcked: 50, TxnsRecovered: 50, TimeToServing: 2 * sim.Millisecond, DigestOK: true},
	}
	tbl := FailoverTable(results).String()
	for _, want := range []string{"none", "quorum", "1.50x", "2.000ms"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	b, err := FailoverJSON(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"suite": "bionicbench-failover"`,
		`"name": "fig-failover/tpcc/dora/x1/quorum"`,
		`"replication": "none"`,
		`"digest_ok": true`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}
