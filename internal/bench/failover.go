package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"bionicdb/internal/core"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// FailoverSpec declares the fig-failover experiment. Each (sockets, mode)
// point measures two things. First, steady state: a normal measured run
// with the log shipped to replica machines under the mode, so the table
// shows what each commit-wait discipline costs in latency and throughput
// against the unreplicated baseline. Second, failover: a crash-harness run
// with a seed-deterministic fault plan — link-lag and partition windows, a
// replica stall, then a primary kill mid-measure — after which the replica
// boots through the measured parallel-recovery path. The figure is the
// replication tax versus what it buys: time-to-serving and how many
// acknowledged transactions survive per mode.
type FailoverSpec struct {
	// Sockets are the socket counts to measure (default 1, 2, 4).
	Sockets []int
	// Modes are the replication modes to measure; ReplNone rows are
	// steady-state baselines only (default none, async, sync, quorum).
	Modes []stats.ReplMode
	// Replicas is the replica machine count (default 2: sync waits both,
	// quorum needs one — the modes separate).
	Replicas int
	// Workload builds the (socket-scaled) workload for one point; required.
	Workload func(sockets int) WorkloadSpec
	// Engine builds the engine under test (default DORA). Must be
	// checkpointable and replicated for the failover phase.
	Engine func(cfg *platform.Config, partitions, window int) EngineSpec
	// ShardedLog gives the machine per-socket log devices.
	ShardedLog bool
	// KernelParallel runs the steady-state and crash phases on the parallel
	// event kernel (see core.RunConfig.KernelParallel); results stay
	// bit-identical.
	KernelParallel bool
	// Obs attaches the flight recorder to every steady-state run (see
	// core.RunConfig.Obs); results stay bit-identical. The crash phase runs
	// uninstrumented — it stops mid-flight, so there is no window to trace.
	Obs *obs.Options

	// TerminalsPerSocket is the offered load (default 32).
	TerminalsPerSocket int
	// PartitionsPerSocket is the DORA partition count per socket (default:
	// cores per socket).
	PartitionsPerSocket int
	// Window is the bionic in-flight window (default 8).
	Window int
	// Detect is the modeled failure-detector delay before the replica
	// starts recovery (default core.DefaultDetect).
	Detect sim.Duration
	// NoFaultWindows drops the lag/partition/stall windows from the fault
	// plan, leaving only the primary kill (the windows are on by default —
	// the fault machinery should be exercised by the figure it exists for).
	NoFaultWindows bool

	Seed    uint64
	Warmup  sim.Duration
	Measure sim.Duration
}

// FailoverResult is one (sockets, mode) measurement.
type FailoverResult struct {
	Sockets    int
	Shards     int
	Mode       stats.ReplMode
	Replicas   int
	ShardedLog bool
	Engine     string
	Workload   string

	// Steady state (measured run with replication attached).
	TPS          float64
	P50, P95     sim.Duration
	OverheadP50  float64 // p50 ratio vs the same-socket ReplNone row (1 = free; 0 on baselines)
	ShippedBytes int64   // window bytes shipped, summed over shards and replicas
	LagBytesMax  int64   // largest observed ship lag across shards
	AckRTTs      int64   // window ack round trips

	// Failover (replicated modes; zero on ReplNone baselines).
	KillAt        sim.Duration // kill instant, relative to terminal start
	CommitsAcked  int64        // transactions acknowledged before the kill
	TxnsRecovered int64        // committed transactions replayed on the replica
	LostTxns      int64        // acknowledged commits the replica could not recover
	LostTailBytes int64        // primary-durable bytes no replica had persisted
	ReplicaBytes  int64        // surviving log bytes (longest copy per shard)
	RestoreSim    sim.Duration // checkpoint restore on the replica boot
	ReplaySim     sim.Duration // parallel log replay on the replica boot
	TimeToServing sim.Duration // detect + restore + replay
	DigestOK      bool         // replica content == recovery of the primary's shipped prefix

	Err error
}

// replicated is the engine surface the failover harness needs beyond
// checkpointable.
type replicated interface {
	Replicator() *wal.ReplicaSet
}

// DefaultFailoverSockets returns the default socket axis.
func DefaultFailoverSockets() []int { return []int{1, 2, 4} }

// DefaultFailoverModes returns the default mode axis.
func DefaultFailoverModes() []stats.ReplMode {
	return []stats.ReplMode{stats.ReplNone, stats.ReplAsync, stats.ReplSync, stats.ReplQuorum}
}

// RunFailover executes the spec, fanning points out across the worker pool;
// every point runs its steady-state and crash phases in private
// environments, so parallel execution is bit-identical to serial. It
// returns the per-point failover measurements plus the steady-state sweep
// results (for the shared JSON/digest pipeline).
func (s FailoverSpec) RunFailover(opt Options) ([]FailoverResult, []Result) {
	sockets := s.Sockets
	if len(sockets) == 0 {
		sockets = DefaultFailoverSockets()
	}
	modes := s.Modes
	if len(modes) == 0 {
		modes = DefaultFailoverModes()
	}
	replicas := s.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	engine := s.Engine
	if engine == nil {
		engine = func(cfg *platform.Config, partitions, window int) EngineSpec {
			return DORAOn(cfg, partitions)
		}
	}
	tps := s.TerminalsPerSocket
	if tps <= 0 {
		tps = 32
	}
	window := s.Window
	if window <= 0 {
		window = 8
	}
	detect := s.Detect
	if detect <= 0 {
		detect = core.DefaultDetect
	}
	seed := s.Seed
	if seed == 0 {
		seed = core.DefaultRunConfig().Seed
	}
	warmup, measure := s.Warmup, s.Measure
	if warmup <= 0 {
		warmup = core.DefaultRunConfig().Warmup
	}
	if measure <= 0 {
		measure = core.DefaultRunConfig().Measure
	}

	type pt struct {
		sockets int
		mode    stats.ReplMode
	}
	var pts []pt
	for _, n := range sockets {
		for _, m := range modes {
			pts = append(pts, pt{n, m})
		}
	}
	out := make([]FailoverResult, len(pts))
	steady := make([]Result, len(pts))
	ForEach(len(pts), opt.Parallel, func(i int) {
		n, mode := pts[i].sockets, pts[i].mode
		cfg := platform.HC2Scaled(n)
		cfg.LogDevPerSocket = s.ShardedLog
		if mode != stats.ReplNone {
			cfg.Replicas = replicas
			cfg.ReplMode = mode
		}
		pps := s.PartitionsPerSocket
		if pps <= 0 {
			pps = cfg.Cores
		}
		wl := s.Workload(n)
		spec := engine(cfg, pps*n, window)
		out[i], steady[i] = runFailoverPoint(cfg, spec, wl, mode, s.KernelParallel, s.Obs,
			tps*n, seed, warmup, measure, detect, !s.NoFaultWindows)
		out[i].Sockets = n
		out[i].ShardedLog = cfg.ShardedLog()
		out[i].Replicas = cfg.Replicas
		if opt.OnResult != nil {
			opt.OnResult(Result{Point: Point{Index: i, Group: "fig-failover"}})
		}
	})
	// Overhead against the same-socket unreplicated baseline — host-side
	// arithmetic over the finished grid, identical in any execution order.
	for i := range out {
		if out[i].Mode == stats.ReplNone || out[i].Err != nil {
			continue
		}
		for j := range out {
			if out[j].Sockets == out[i].Sockets && out[j].Mode == stats.ReplNone &&
				out[j].Err == nil && out[j].P50 > 0 {
				out[i].OverheadP50 = float64(out[i].P50) / float64(out[j].P50)
				break
			}
		}
	}
	return out, steady
}

// runFailoverPoint measures one (config, mode): a steady-state run, then —
// for replicated modes — a faulted crash run and the replica's failover
// boot.
func runFailoverPoint(cfg *platform.Config, spec EngineSpec, wlSpec WorkloadSpec, mode stats.ReplMode, kernelParallel bool, obsOpt *obs.Options,
	terminals int, seed uint64, warmup, measure sim.Duration, detect sim.Duration, windows bool) (FailoverResult, Result) {
	res := FailoverResult{Engine: spec.Name, Workload: wlSpec.Name, Mode: mode, DigestOK: true}

	// --- Steady state: the replication tax under normal operation.
	p := Point{
		Group: "fig-failover", Engine: spec, Workload: wlSpec,
		Terminals: terminals, Seed: seed,
		Sockets: cfg.NumSockets(), ShardedLog: cfg.ShardedLog(), Repl: mode,
		KernelParallel: kernelParallel, Obs: obsOpt,
		Warmup: warmup, Measure: measure,
	}
	sr := p.Run()
	if sr.Err != nil {
		res.Err = sr.Err
		return res, sr
	}
	res.TPS = sr.Res.TPS
	res.P50 = sr.Res.Latency.Percentile(50)
	res.P95 = sr.Res.Latency.Percentile(95)
	for _, rst := range sr.Res.Repl {
		res.ShippedBytes += rst.ShippedBytes
		res.AckRTTs += rst.AckRTTs
		if rst.LagBytesMax > res.LagBytesMax {
			res.LagBytesMax = rst.LagBytesMax
		}
	}
	if mode == stats.ReplNone {
		return res, sr
	}

	// --- Crash phase: populate, checkpoint sharp, run under the fault
	// plan, stop the world at the primary kill.
	env := sim.NewEnv()
	defer env.Close()
	wl := wlSpec.Make()
	eng := spec.Make(env, wl)
	enableParallelKernel(env, eng.Platform(), kernelParallel)
	ck, ok := eng.(checkpointable)
	if !ok {
		res.Err = fmt.Errorf("engine %s is not checkpointable", spec.Name)
		return res, sr
	}
	repl, ok := eng.(replicated)
	if !ok || repl.Replicator() == nil {
		res.Err = fmt.Errorf("engine %s built no replication machinery", spec.Name)
		return res, sr
	}
	rs := repl.Replicator()
	root := sim.NewRand(seed)
	wl.Populate(eng.Load, root.Split())
	faultR := root.Split()
	if warmer, ok := eng.(interface{ Warm() }); ok {
		warmer.Warm()
	}
	// Checkpoint sharp before any terminal exists (see runRecoveryPoint for
	// the adaptive stepping rationale).
	var meta core.CheckpointMeta
	ckDone := false
	// A replicated engine never shards itself over the kernel, so the set
	// slice here is always single-element and this is exactly CheckpointAll.
	env.Spawn("checkpointer", func(p *sim.Proc) {
		meta = core.CheckpointAllSets(p, ck.TableSets(), ck.DiskManager(), ck.LogSet())
		ckDone = true
	})
	step := sim.Time(1 * sim.Millisecond)
	for !ckDone {
		before := env.Executed()
		if err := env.RunUntil(env.Now() + step); err != nil {
			res.Err = err
			return res, sr
		}
		if env.Executed() == before {
			step *= 2
		} else {
			step = sim.Time(1 * sim.Millisecond)
		}
	}
	// The fault plan covers the measurement window; its kill is the run's
	// stopping point and its windowed faults drive the ReplicaSet hooks.
	startT := env.Now()
	plan := sim.NewFaultPlan(faultR, startT.Add(warmup), startT.Add(warmup).Add(measure), rs.Replicas(), windows)
	plan.Schedule(env,
		func(f sim.Fault) {
			switch f.Kind {
			case sim.FaultLinkLag:
				rs.SetLagFactor(f.Factor)
			case sim.FaultLinkPartition:
				rs.SetLinkDown(true)
			case sim.FaultReplicaStall:
				rs.SetStalled(f.Replica, true)
			}
		},
		func(f sim.Fault) {
			switch f.Kind {
			case sim.FaultLinkLag:
				rs.SetLagFactor(1)
			case sim.FaultLinkPartition:
				rs.SetLinkDown(false)
			case sim.FaultReplicaStall:
				rs.SetStalled(f.Replica, false)
			}
		})
	for i := 0; i < terminals; i++ {
		i := i
		tr := root.Split()
		env.Spawn(fmt.Sprintf("terminal%d", i), func(tp *sim.Proc) {
			term := &core.Terminal{ID: i, P: tp, Core: eng.Platform().Cores[i%len(eng.Platform().Cores)], R: tr}
			for {
				_, logic := wl.NextTxn(term.R)
				eng.Submit(term, logic)
			}
		})
	}
	killT, _ := plan.KillTime()
	if err := env.RunUntil(killT); err != nil {
		res.Err = err
		return res, sr
	}
	res.KillAt = killT.Sub(startT)
	res.CommitsAcked = eng.Counters().Get("commits")
	primary := ck.LogSet().Datas()
	replicaLogs, replicaBytes, lostTail := rs.CrashImage()
	res.Shards = len(replicaLogs)
	res.ReplicaBytes = replicaBytes
	res.LostTailBytes = lostTail
	// Every replica copy must be a literal byte prefix of its primary
	// shard — the property the whole failover guarantee rests on.
	truncated := make([][]byte, len(primary))
	for s := range primary {
		if len(replicaLogs[s]) > len(primary[s]) || !bytes.Equal(replicaLogs[s], primary[s][:len(replicaLogs[s])]) {
			res.Err = fmt.Errorf("shard %d replica copy is not a prefix of the primary stream", s)
			return res, sr
		}
		truncated[s] = primary[s][:len(replicaLogs[s])]
	}
	defs := wl.Tables()

	// --- Failover: boot the replica through measured parallel recovery.
	trees, fst, err := core.Failover(cfg, defs, meta, ck.DiskManager(), replicaLogs, detect, true)
	if err != nil {
		res.Err = err
		return res, sr
	}
	res.TxnsRecovered = fst.Recovery.Txns
	if lost := res.CommitsAcked - res.TxnsRecovered; lost > 0 {
		res.LostTxns = lost
	}
	res.RestoreSim = fst.Recovery.Restore
	res.ReplaySim = fst.Recovery.Replay
	res.TimeToServing = fst.TimeToServing
	_ = trees

	// Oracle: recovering the primary's shipped prefix directly must yield
	// the same content digest the replica serves.
	_, ofst, err := core.Failover(cfg, defs, meta, ck.DiskManager(), truncated, 0, true)
	if err != nil {
		res.Err = err
		return res, sr
	}
	res.DigestOK = fst.Digest == ofst.Digest
	if !res.DigestOK {
		res.Err = fmt.Errorf("replica content diverged from the primary's shipped prefix: %s vs %s", fst.Digest, ofst.Digest)
	}
	return res, sr
}

// FailoverTable renders failover results as the fig-failover table.
func FailoverTable(results []FailoverResult) *stats.Table {
	t := stats.NewTable("workload", "engine", ">sockets", "mode",
		">tps", ">p50", ">p95", ">tax", ">acked", ">recovered", ">lost", ">lost KB", ">serving")
	for _, r := range results {
		if r.Err != nil {
			t.Row(r.Workload, r.Engine, fmt.Sprintf("%d", r.Sockets), r.Mode.String(),
				"error: "+r.Err.Error(), "", "", "", "", "", "", "", "")
			continue
		}
		tax, acked, rec, lost, lostKB, serving := "", "", "", "", "", ""
		if r.Mode != stats.ReplNone {
			tax = fmt.Sprintf("%.2fx", r.OverheadP50)
			acked = fmt.Sprintf("%d", r.CommitsAcked)
			rec = fmt.Sprintf("%d", r.TxnsRecovered)
			lost = fmt.Sprintf("%d", r.LostTxns)
			lostKB = fmt.Sprintf("%.1f", float64(r.LostTailBytes)/1024)
			serving = r.TimeToServing.String()
		}
		t.Row(r.Workload, r.Engine, fmt.Sprintf("%d", r.Sockets), r.Mode.String(),
			fmt.Sprintf("%.0f", r.TPS), r.P50.String(), r.P95.String(),
			tax, acked, rec, lost, lostKB, serving)
	}
	return t
}

// failoverJSON is the flat per-point record of the failover JSON document.
type failoverJSON struct {
	Name          string  `json:"name"`
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Sockets       int     `json:"sockets"`
	Shards        int     `json:"shards,omitempty"`
	Mode          string  `json:"replication"`
	Replicas      int     `json:"replicas,omitempty"`
	ShardedLog    bool    `json:"sharded_log,omitempty"`
	TPS           float64 `json:"tps"`
	P50us         float64 `json:"p50_us"`
	P95us         float64 `json:"p95_us"`
	OverheadP50   float64 `json:"p50_overhead,omitempty"`
	ShippedBytes  int64   `json:"shipped_bytes,omitempty"`
	LagBytesMax   int64   `json:"lag_bytes_max,omitempty"`
	AckRTTs       int64   `json:"ack_rtts,omitempty"`
	KillAtUs      float64 `json:"kill_at_us,omitempty"`
	CommitsAcked  int64   `json:"commits_acked,omitempty"`
	TxnsRecovered int64   `json:"txns_recovered,omitempty"`
	LostTxns      int64   `json:"lost_txns"`
	LostTailBytes int64   `json:"lost_tail_bytes"`
	ReplicaBytes  int64   `json:"replica_bytes,omitempty"`
	RestoreUs     float64 `json:"restore_us,omitempty"`
	ReplayUs      float64 `json:"replay_us,omitempty"`
	ServingUs     float64 `json:"time_to_serving_us,omitempty"`
	DigestOK      bool    `json:"digest_ok"`
	Error         string  `json:"error,omitempty"`
}

// FailoverJSON marshals failover results as an indented
// BENCH_failover.json-style document.
func FailoverJSON(results []FailoverResult) ([]byte, error) {
	doc := struct {
		Suite   string         `json:"suite"`
		Results []failoverJSON `json:"results"`
	}{Suite: "bionicbench-failover"}
	for _, r := range results {
		jr := failoverJSON{
			Name:          fmt.Sprintf("fig-failover/%s/%s/x%d/%s", r.Workload, r.Engine, r.Sockets, r.Mode),
			Workload:      r.Workload,
			Engine:        r.Engine,
			Sockets:       r.Sockets,
			Shards:        r.Shards,
			Mode:          r.Mode.String(),
			Replicas:      r.Replicas,
			ShardedLog:    r.ShardedLog,
			TPS:           r.TPS,
			P50us:         r.P50.Microseconds(),
			P95us:         r.P95.Microseconds(),
			OverheadP50:   r.OverheadP50,
			ShippedBytes:  r.ShippedBytes,
			LagBytesMax:   r.LagBytesMax,
			AckRTTs:       r.AckRTTs,
			KillAtUs:      r.KillAt.Microseconds(),
			CommitsAcked:  r.CommitsAcked,
			TxnsRecovered: r.TxnsRecovered,
			LostTxns:      r.LostTxns,
			LostTailBytes: r.LostTailBytes,
			ReplicaBytes:  r.ReplicaBytes,
			RestoreUs:     r.RestoreSim.Microseconds(),
			ReplayUs:      r.ReplaySim.Microseconds(),
			ServingUs:     r.TimeToServing.Microseconds(),
			DigestOK:      r.DigestOK,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		doc.Results = append(doc.Results, jr)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteFailoverJSONFile writes the failover document to path.
func WriteFailoverJSONFile(path string, results []FailoverResult) error {
	b, err := FailoverJSON(results)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
