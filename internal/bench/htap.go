package bench

import (
	"fmt"

	"bionicdb/internal/core"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// HTAPSpec declares the fig-htap sweep: hybrid (transactions + analytical
// scans) workloads on the conventional and bionic machines at every socket
// count. Each workload's Make must return a core.Analytics implementation
// (the htap mixed workloads); the point attaches it as the run's analytical
// half, so both machines pay for projection maintenance and scans — the
// conventional one out of host memory on OLTP cores, the bionic one on the
// FPGA side off the overlay merge path.
//
// Like the scaling sweep this is weak scaling: offered load and database
// size grow with the machine.
type HTAPSpec struct {
	// Sockets are the socket counts to measure (default 1, 2, 4, 8, 16).
	Sockets []int
	// Workloads is the hybrid workload axis (required).
	Workloads []WorkloadSpec
	// Engines optionally replaces the default engine axis (conventional
	// and bionic — the figure's two machines).
	Engines []ScalingEngine

	// TerminalsPerSocket is the closed-loop OLTP clients per socket
	// (default 32; the analytical clients are the workload's own knob).
	TerminalsPerSocket int
	// PartitionsPerSocket is the bionic partitions per socket (default:
	// the config's cores per socket).
	PartitionsPerSocket int
	// Window is the bionic in-flight window (default 8).
	Window int
	// ShardedLog runs every point on a machine with per-socket log
	// devices, so the freshness vector has one entry per socket.
	ShardedLog bool
	// KernelParallel runs every point on the parallel event kernel (see
	// core.RunConfig.KernelParallel); results stay bit-identical.
	KernelParallel bool
	// Obs attaches the flight recorder to every point (see
	// core.RunConfig.Obs); results stay bit-identical.
	Obs *obs.Options

	Seeds   []uint64
	Warmup  sim.Duration
	Measure sim.Duration
	Drain   sim.Duration
}

// HTAPEngines returns the fig-htap engine axis: the two machines the paper
// contrasts, conventional and fully-offloaded bionic.
func HTAPEngines() []ScalingEngine {
	return []ScalingEngine{
		{Name: "conventional", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return ConventionalOn(cfg)
		}},
		{Name: "bionic", On: func(cfg *platform.Config, partitions, window int) EngineSpec {
			return BionicOn(cfg, partitions, core.AllOffloads(), window)
		}},
	}
}

// Points expands the spec in deterministic order: workload outermost, then
// socket count, engine, seed — the same shape as the scaling sweep.
func (s HTAPSpec) Points() []Point {
	sockets := s.Sockets
	if len(sockets) == 0 {
		sockets = DefaultScalingSockets()
	}
	engines := s.Engines
	if len(engines) == 0 {
		engines = HTAPEngines()
	}
	tps := s.TerminalsPerSocket
	if tps <= 0 {
		tps = 32
	}
	window := s.Window
	if window <= 0 {
		window = 8
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{core.DefaultRunConfig().Seed}
	}
	warmup, measure := s.Warmup, s.Measure
	if warmup <= 0 {
		warmup = core.DefaultRunConfig().Warmup
	}
	if measure <= 0 {
		measure = core.DefaultRunConfig().Measure
	}

	var out []Point
	for _, wl := range s.Workloads {
		for _, n := range sockets {
			cfg := platform.HC2Scaled(n)
			cfg.LogDevPerSocket = s.ShardedLog
			pps := s.PartitionsPerSocket
			if pps <= 0 {
				pps = cfg.Cores
			}
			partitions := pps * n
			for _, eng := range engines {
				spec := eng.On(cfg, partitions, window)
				spec.Name = eng.Name
				for _, seed := range seeds {
					out = append(out, Point{
						Index: len(out), Group: "fig-htap",
						Engine: spec, Workload: wl,
						Terminals: tps * n, Seed: seed, Sockets: n,
						ShardedLog: cfg.ShardedLog(), HTAP: true,
						KernelParallel: s.KernelParallel, Obs: s.Obs,
						Warmup: warmup, Measure: measure, Drain: s.Drain,
					})
				}
			}
		}
	}
	return out
}

// Run executes the HTAP sweep; see Run.
func (s HTAPSpec) Run(opt Options) []Result { return Run(s.Points(), opt) }

// HTAPTable renders HTAP results as the fig-htap table: transactional
// throughput and energy next to scan bandwidth and freshness, one row per
// point.
func HTAPTable(results []Result) *stats.Table {
	t := stats.NewTable("workload", "engine", ">sockets", ">terminals",
		">tps", ">uJ/txn", ">scans", ">scan MB/s", ">stale max", ">stale mean", ">commits")
	for _, r := range results {
		p := r.Point
		if r.Err != nil {
			t.Row(p.Workload.Name, p.Engine.Name, fmt.Sprintf("%d", p.Sockets),
				fmt.Sprintf("%d", p.Terminals), "error: "+r.Err.Error(), "", "", "", "", "", "")
			continue
		}
		res := r.Res
		scans, mbps, staleMax, staleMean := "-", "-", "-", "-"
		if sc := res.Scan; sc != nil {
			scans = fmt.Sprintf("%d", sc.Scans)
			mbps = fmt.Sprintf("%.1f", float64(sc.Bytes)/1e6/p.Measure.Seconds())
			staleMax = sc.StaleMax.String()
			staleMean = sc.StaleMean().String()
		}
		t.Row(p.Workload.Name, p.Engine.Name,
			fmt.Sprintf("%d", p.Sockets),
			fmt.Sprintf("%d", p.Terminals),
			fmt.Sprintf("%.0f", res.TPS),
			fmt.Sprintf("%.1f", res.JoulesPerTxn*1e6),
			scans, mbps, staleMax, staleMean,
			fmt.Sprintf("%d", res.Commits))
	}
	return t
}
