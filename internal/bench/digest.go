package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bionicdb/internal/stats"
)

// Digest folds every simulation-determined field of a result set into one
// SHA-256 hex string: the bit patterns of throughput and energy, commit and
// abort counts, the full component breakdown, the latency distribution
// summary, and per-transaction-type counts. Host-dependent fields (wall
// clock) are excluded, so two runs of the same grid on any machine, at any
// parallelism, under any kernel implementation must produce the same
// digest — the golden tests use it to pin that optimizations never change
// simulated output.
func Digest(results []Result) string {
	h := sha256.New()
	w64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	for _, r := range results {
		p := r.Point
		fmt.Fprintf(h, "%s/%s/%s/t%d/s%d;", p.Group, p.Workload.Name, p.Engine.Name, p.Terminals, p.Seed)
		if p.Sockets > 0 {
			// Socket-annotated points (scaling sweeps) carry the count;
			// unannotated points hash exactly as they always did.
			fmt.Fprintf(h, "x%d;", p.Sockets)
		}
		if p.ShardedLog {
			// Sharded-log points carry the layout so a sharded curve can
			// never collide with its central-log twin; central points
			// hash exactly as they always did.
			fmt.Fprintf(h, "slog;")
		}
		if p.HTAP {
			// Hybrid points carry the marker so an HTAP curve can never
			// collide with its pure-OLTP twin.
			fmt.Fprintf(h, "htap;")
		}
		if p.Repl != stats.ReplNone {
			// Replicated points carry the mode so a replicated curve can
			// never collide with its unreplicated twin; unreplicated points
			// hash exactly as they always did.
			fmt.Fprintf(h, "repl=%s;", p.Repl)
		}
		if r.Err != nil {
			fmt.Fprintf(h, "err=%s;", r.Err)
			continue
		}
		res := r.Res
		w64(uint64(res.Commits))
		w64(uint64(res.Aborts))
		wf(res.TPS)
		wf(res.JoulesPerTxn)
		wf(res.Energy.CPUDynamic)
		wf(res.Energy.CPUIdle)
		wf(res.Energy.FPGA)
		for _, c := range stats.Components() {
			w64(uint64(res.BD.Get(c)))
		}
		lat := res.Latency
		w64(uint64(lat.Count()))
		w64(uint64(lat.Sum()))
		w64(uint64(lat.Min()))
		w64(uint64(lat.Max()))
		w64(uint64(lat.Percentile(50)))
		w64(uint64(lat.Percentile(95)))
		w64(uint64(lat.Percentile(99)))
		names := make([]string, 0, len(res.TxnCounts))
		for n := range res.TxnCounts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "%s=%d;", n, res.TxnCounts[n])
		}
		if res.Scan != nil {
			// The analytical half's window statistics, present only on
			// HTAP runs — pure-OLTP results hash exactly as they always
			// did.
			sc := res.Scan
			w64(uint64(sc.Scans))
			w64(uint64(sc.Rows))
			w64(uint64(sc.RowsOut))
			w64(uint64(sc.Bytes))
			w64(uint64(sc.ScanTime))
			w64(uint64(sc.Refreshes))
			w64(uint64(sc.RefreshRows))
			w64(uint64(sc.StaleSum))
			w64(uint64(sc.StaleMax))
			w64(uint64(sc.GapMax))
			w64(uint64(sc.LagBytesMax))
			w64(uint64(sc.SnapViolations))
		}
		// Per-shard shipping counters, present only on replicated runs —
		// unreplicated results hash exactly as they always did.
		for _, rp := range res.Repl {
			w64(uint64(rp.Shard))
			w64(uint64(rp.Mode))
			w64(uint64(rp.ShippedBytes))
			w64(uint64(rp.Ships))
			w64(uint64(rp.AckRTTs))
			w64(uint64(rp.LagBytesMax))
			w64(uint64(rp.LagTimeSum))
			w64(uint64(rp.LagTimeMax))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
