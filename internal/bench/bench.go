// Package bench is the experiment-sweep subsystem: a declarative grid of
// engine constructor x workload x terminals x seed that expands into
// measurement points and fans them out across a worker pool. Every point
// runs core.Run in its own sim.Env, so a parallel sweep is bit-identical
// to the same grid run serially — the pool changes wall-clock time, never
// results. cmd/bionicbench's figure generators, the ablation, the
// saturation sweep and the multi-socket scaling sweep (ScalingSpec,
// scaling.go) all execute through it; results render as tables
// (stats.Table) or structured JSON (emit.go).
package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bionicdb/internal/core"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// EngineSpec names one engine constructor in the grid. Make is called once
// per run with that run's private environment and workload; it must build
// everything (including the platform config) fresh so runs share no state.
type EngineSpec struct {
	Name string
	Make func(env *sim.Env, wl core.Workload) core.Engine
}

// Conventional returns the shared-everything 2PL baseline spec.
func Conventional() EngineSpec { return ConventionalOn(platform.HC2()) }

// ConventionalOn returns the 2PL baseline spec on a specific platform
// configuration (the scaling sweep passes multi-socket configs). cfg is
// read-only after construction, so one config may back many grid points.
func ConventionalOn(cfg *platform.Config) EngineSpec {
	return EngineSpec{Name: "conventional", Make: func(env *sim.Env, wl core.Workload) core.Engine {
		return core.NewConventional(env, cfg, wl.Tables())
	}}
}

// DORA returns the software data-oriented engine spec.
func DORA(partitions int) EngineSpec { return DORAOn(platform.HC2(), partitions) }

// DORAOn returns the DORA spec on a specific platform configuration.
func DORAOn(cfg *platform.Config, partitions int) EngineSpec {
	return EngineSpec{Name: "dora", Make: func(env *sim.Env, wl core.Workload) core.Engine {
		return core.NewDORA(env, cfg, wl.Tables(), wl.Scheme(partitions))
	}}
}

// Bionic returns a bionic engine spec with the given offload subset and
// in-flight window.
func Bionic(partitions int, off core.Offloads, window int) EngineSpec {
	return BionicOn(platform.HC2(), partitions, off, window)
}

// BionicOn returns the bionic spec on a specific platform configuration.
func BionicOn(cfg *platform.Config, partitions int, off core.Offloads, window int) EngineSpec {
	return EngineSpec{Name: "bionic[" + off.String() + "]", Make: func(env *sim.Env, wl core.Workload) core.Engine {
		return core.NewBionic(env, cfg, wl.Tables(), wl.Scheme(partitions), off, window)
	}}
}

// WorkloadSpec names one workload constructor in the grid. Make is called
// once per run so every run owns a private workload instance (workload
// state like TPC-C's partition memo must not be shared across the pool).
type WorkloadSpec struct {
	Name string
	Make func() core.Workload
}

// Grid declares a sweep: the cross product of every axis. Zero axes get
// defaults (Terminals {64}, Seeds {42}) and zero windows get the
// DefaultRunConfig windows, so only the interesting axes need declaring.
type Grid struct {
	// Group names the experiment the grid belongs to; it prefixes JSON
	// result names so points from different grids stay distinguishable
	// when one invocation collects several experiments.
	Group string

	Engines   []EngineSpec
	Workloads []WorkloadSpec
	Terminals []int
	Seeds     []uint64

	// Repl annotates every point with the log-replication mode the engine
	// specs were built with (reporting metadata, like Point.Repl).
	Repl stats.ReplMode

	// KernelParallel runs every point on the parallel event kernel (see
	// core.RunConfig.KernelParallel). Results stay bit-identical; only host
	// execution changes.
	KernelParallel bool

	// Obs attaches the flight recorder to every point (see
	// core.RunConfig.Obs). Strictly out-of-band: digests are bit-identical
	// with it on or off, which the observability equivalence test pins.
	Obs *obs.Options

	// Measurement windows shared by every point.
	Warmup  sim.Duration
	Measure sim.Duration
	Drain   sim.Duration
}

// Point is one expanded measurement: a fully-specified core.Run.
type Point struct {
	Index     int    // position in the expanded grid
	Group     string // owning experiment (may be empty)
	Engine    EngineSpec
	Workload  WorkloadSpec
	Terminals int
	Seed      uint64

	// Sockets annotates the platform socket count the engine spec was
	// built for (scaling sweeps; 0 = unannotated single-socket grids).
	// It is reporting metadata: the socket count itself lives in the
	// platform config captured by Engine.Make.
	Sockets int

	// ShardedLog annotates that the engine spec was built on a machine
	// with per-socket log devices (the sharded durability subsystem).
	// Reporting metadata like Sockets: the knob itself lives in the
	// platform config captured by Engine.Make.
	ShardedLog bool

	// HTAP attaches the workload as the run's analytical half (the
	// workload must implement core.Analytics — the htap mixed workloads
	// do). Plain OLTP points leave it false and run exactly as before.
	HTAP bool

	// Repl annotates the log-replication mode the engine spec was built
	// with (stats.ReplNone = unreplicated). Reporting metadata like
	// Sockets: the mode itself lives in the platform config captured by
	// Engine.Make.
	Repl stats.ReplMode

	// KernelParallel selects the parallel event kernel for this run (see
	// core.RunConfig.KernelParallel). It is a host-execution knob: results
	// and digests are bit-identical with it on or off, which is exactly what
	// the kernel equivalence tests pin.
	KernelParallel bool

	// Obs attaches the flight recorder to this run (see core.RunConfig.Obs).
	// Out-of-band like KernelParallel: every simulated field of the result is
	// bit-identical with it on or off.
	Obs *obs.Options

	Warmup  sim.Duration
	Measure sim.Duration
	Drain   sim.Duration
}

// Points expands the grid in deterministic order: workload outermost, then
// engine, terminals, seed — the row order the figure tables print in.
func (g *Grid) Points() []Point {
	terminals := g.Terminals
	if len(terminals) == 0 {
		terminals = []int{core.DefaultRunConfig().Terminals}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{core.DefaultRunConfig().Seed}
	}
	warmup, measure := g.Warmup, g.Measure
	if warmup <= 0 {
		warmup = core.DefaultRunConfig().Warmup
	}
	if measure <= 0 {
		measure = core.DefaultRunConfig().Measure
	}
	var out []Point
	for _, wl := range g.Workloads {
		for _, eng := range g.Engines {
			for _, t := range terminals {
				for _, seed := range seeds {
					out = append(out, Point{
						Index: len(out), Group: g.Group, Engine: eng, Workload: wl,
						Terminals: t, Seed: seed, Repl: g.Repl,
						KernelParallel: g.KernelParallel, Obs: g.Obs,
						Warmup: warmup, Measure: measure, Drain: g.Drain,
					})
				}
			}
		}
	}
	return out
}

// Run executes the whole grid; see Run.
func (g *Grid) Run(opt Options) []Result { return Run(g.Points(), opt) }

// Result is one point's outcome: the point that produced it, the
// measurement (nil on error) and the host wall-clock the run took.
type Result struct {
	Point Point
	Res   *core.Result
	Err   error
	Wall  time.Duration
}

// Run executes one point in a fresh environment.
func (p Point) Run() Result {
	wl := p.Workload.Make()
	cfg := core.RunConfig{
		Terminals:      p.Terminals,
		Warmup:         p.Warmup,
		Measure:        p.Measure,
		Drain:          p.Drain,
		Seed:           p.Seed,
		KernelParallel: p.KernelParallel,
		Obs:            p.Obs,
	}
	if p.HTAP {
		if a, ok := wl.(core.Analytics); ok {
			cfg.Analytics = a
		}
	}
	start := time.Now()
	res, err := core.Run(cfg, wl, func(env *sim.Env) core.Engine {
		return p.Engine.Make(env, wl)
	})
	return Result{Point: p, Res: res, Err: err, Wall: time.Since(start)}
}

// Options shapes a sweep execution.
type Options struct {
	// Parallel is the worker-pool size; <= 0 uses GOMAXPROCS.
	Parallel int
	// OnResult, when set, observes each result as it completes (calls are
	// serialized but arrive in completion order, not grid order).
	OnResult func(Result)
}

// Run fans the points out across the pool and returns results in grid
// order. Each point's Index is rewritten to its slice position, so
// concatenated point lists stay addressable.
func Run(points []Point, opt Options) []Result {
	out := make([]Result, len(points))
	var mu sync.Mutex
	ForEach(len(points), opt.Parallel, func(i int) {
		p := points[i]
		p.Index = i
		r := p.Run()
		out[i] = r
		if opt.OnResult != nil {
			mu.Lock()
			opt.OnResult(r)
			mu.Unlock()
		}
	})
	return out
}

// ForEach runs fn(0..n-1) across a pool of parallel workers (<= 0 uses
// GOMAXPROCS) and returns when all calls complete. It is the primitive
// under Run, exposed for sweeps that are not core.Run-shaped (the probe
// saturation microbenchmark); fn must confine its effects to slot i.
func ForEach(n, parallel int, fn func(i int)) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
