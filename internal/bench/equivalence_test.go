package bench

import (
	"reflect"
	"runtime"
	"testing"

	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// This file is the kernel equivalence matrix: every experiment family runs
// on both event kernels and must produce bit-identical simulated results.
// The parallel kernel is a host-execution strategy, never a model change —
// these tests are the contract that keeps it that way.

// withKernel returns the points with the kernel selection overridden.
func withKernel(points []Point, parallel bool) []Point {
	out := make([]Point, len(points))
	for i, p := range points {
		p.KernelParallel = parallel
		out[i] = p
	}
	return out
}

// mustRun executes points and fails the test on any per-point error.
func mustRun(t *testing.T, name string, points []Point, opt Options) []Result {
	t.Helper()
	results := Run(points, opt)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %s/%s failed: %v", name, r.Point.Workload.Name, r.Point.Engine.Name, r.Err)
		}
	}
	return results
}

// TestSpecsPropagateKernelParallel pins the flag plumbing: every spec type
// that expands to points must carry its KernelParallel into each of them —
// a silently dropped flag would run serial while claiming parallel (the
// equivalence matrix below overrides points directly, so it alone would
// not catch that).
func TestSpecsPropagateKernelParallel(t *testing.T) {
	grid := goldenGrid()
	grid.KernelParallel = true
	scaling := goldenScalingSpec()
	scaling.KernelParallel = true
	htap := goldenHTAPSpec()
	htap.KernelParallel = true
	for name, points := range map[string][]Point{
		"grid":    grid.Points(),
		"scaling": scaling.Points(),
		"htap":    htap.Points(),
	} {
		if len(points) == 0 {
			t.Fatalf("%s: no points", name)
		}
		for _, p := range points {
			if !p.KernelParallel {
				t.Errorf("%s: point %s/%s dropped KernelParallel", name, p.Workload.Name, p.Engine.Name)
			}
		}
	}
}

// TestKernelEquivalenceMatrix asserts serial kernel == parallel kernel for
// the sweep families (fig3/fig4 quick grid, weak scaling, HTAP) at 1, 2 and
// 4 sockets. Where a family is one of the pinned golden specs, the parallel
// digest is compared against the recorded golden constant directly — the
// serial half of that equality is already pinned by golden_test.go — so the
// goldens are proven bit-identical under -kernel-parallel, not merely
// self-consistent.
func TestKernelEquivalenceMatrix(t *testing.T) {
	scaling124 := goldenScalingSpec()
	scaling124.Sockets = []int{1, 2, 4}
	quick := goldenGrid()
	families := []struct {
		name   string
		points []Point
		golden string // pinned serial digest when the family is a golden spec
	}{
		{"fig3-fig4-quick", quick.Points(), goldenDigest},
		{"scaling-x1x2x4", scaling124.Points(), ""},
		{"scaling-golden", goldenScalingSpec().Points(), goldenScalingDigest},
		{"htap-x1x2x4", goldenHTAPSpec().Points(), goldenHTAPDigest},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			want := fam.golden
			if want == "" {
				want = Digest(mustRun(t, fam.name+"/serial", withKernel(fam.points, false), Options{Parallel: 4}))
			}
			par := mustRun(t, fam.name+"/parallel", withKernel(fam.points, true), Options{Parallel: 4})
			if got := Digest(par); got != want {
				t.Errorf("parallel kernel diverged from serial on %s:\n got  %s\n want %s", fam.name, got, want)
			}
			for _, r := range par {
				if r.Res.Events == 0 {
					t.Errorf("%s: %s/%s reported no kernel events", fam.name, r.Point.Workload.Name, r.Point.Engine.Name)
				}
			}
		})
	}
}

// TestKernelParallelGOMAXPROCSInvariance asserts the other determinism leg:
// the parallel kernel at GOMAXPROCS=1 and at GOMAXPROCS=N produce the same
// digest on the multi-socket golden spec — simulated results never depend
// on how many OS threads the host grants.
func TestKernelParallelGOMAXPROCSInvariance(t *testing.T) {
	points := withKernel(goldenScalingSpec().Points(), true)
	prev := runtime.GOMAXPROCS(1)
	one := Digest(mustRun(t, "gomaxprocs1", points, Options{Parallel: 1}))
	runtime.GOMAXPROCS(8)
	many := Digest(mustRun(t, "gomaxprocs8", points, Options{Parallel: 1}))
	runtime.GOMAXPROCS(prev)
	if one != many {
		t.Errorf("parallel kernel digest depends on GOMAXPROCS:\n 1: %s\n N: %s", one, many)
	}
	if one != goldenScalingDigest {
		t.Errorf("parallel kernel at GOMAXPROCS=1 diverged from golden:\n got  %s\n want %s", one, goldenScalingDigest)
	}
}

// TestKernelEquivalenceRecovery asserts serial kernel == parallel kernel
// for the crash/recovery family at 1, 2 and 4 sockets: the crash image,
// the replayed content, the recovery timings and the energy must all be
// bit-identical.
func TestKernelEquivalenceRecovery(t *testing.T) {
	spec := RecoverySpec{
		Sockets:            []int{1, 2, 4},
		Workload:           func(n int) WorkloadSpec { return smallYCSB() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	serial := spec.RunRecovery(Options{Parallel: 2})
	spec.KernelParallel = true
	par := spec.RunRecovery(Options{Parallel: 2})
	for i := range serial {
		if serial[i].Err != nil || par[i].Err != nil {
			t.Fatalf("x%d: serial err %v, parallel err %v", serial[i].Sockets, serial[i].Err, par[i].Err)
		}
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("recovery results diverge between kernels:\nserial   %+v\nparallel %+v", serial, par)
	}
}

// TestKernelEquivalenceFailover asserts serial kernel == parallel kernel
// for the replication/failover family: the fault plan, the kill instant,
// the surviving replica image and the recovered content are all under the
// comparison.
func TestKernelEquivalenceFailover(t *testing.T) {
	spec := FailoverSpec{
		Sockets:            []int{1, 2},
		Modes:              []stats.ReplMode{stats.ReplNone, stats.ReplSync},
		Replicas:           2,
		Workload:           func(sockets int) WorkloadSpec { return smallTPCC() },
		ShardedLog:         true,
		TerminalsPerSocket: 4,
		Seed:               42,
		Warmup:             1 * sim.Millisecond,
		Measure:            3 * sim.Millisecond,
	}
	serialFo, serialSteady := spec.RunFailover(Options{Parallel: 2})
	spec.KernelParallel = true
	parFo, parSteady := spec.RunFailover(Options{Parallel: 2})
	for i := range serialFo {
		if serialFo[i].Err != nil || parFo[i].Err != nil {
			t.Fatalf("x%d/%v: serial err %v, parallel err %v",
				serialFo[i].Sockets, serialFo[i].Mode, serialFo[i].Err, parFo[i].Err)
		}
	}
	if !reflect.DeepEqual(serialFo, parFo) {
		t.Errorf("failover results diverge between kernels:\nserial   %+v\nparallel %+v", serialFo, parFo)
	}
	if ds, dp := Digest(serialSteady), Digest(parSteady); ds != dp {
		t.Errorf("steady-state digests diverge between kernels: serial %s vs parallel %s", ds, dp)
	}
}
