package dora

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func fixture(window int) (*sim.Env, *platform.Platform, *Partition, *stats.Breakdown) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	bd := &stats.Breakdown{}
	pt := NewPartition(pl, NewRegistry(), 0, pl.Cores[0], DefaultCosts(), window, bd)
	pt.Start()
	return env, pl, pt, bd
}

func TestRVPJoinsVotes(t *testing.T) {
	env := sim.NewEnv()
	rvp := NewRVP(env, 3)
	var result bool
	env.Spawn("waiter", func(p *sim.Proc) {
		result = rvp.Await(p)
	})
	env.Spawn("arrivals", func(p *sim.Proc) {
		rvp.Arrive(true)
		p.Wait(sim.Microsecond)
		rvp.Arrive(true)
		p.Wait(sim.Microsecond)
		rvp.Arrive(true)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !result {
		t.Fatal("unanimous true votes should succeed")
	}
}

func TestRVPAbortVote(t *testing.T) {
	env := sim.NewEnv()
	rvp := NewRVP(env, 2)
	var result bool
	env.Spawn("waiter", func(p *sim.Proc) { result = rvp.Await(p) })
	env.Spawn("arrivals", func(p *sim.Proc) {
		rvp.Arrive(true)
		rvp.Arrive(false)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if result {
		t.Fatal("abort vote ignored")
	}
}

func TestRVPOverArrivePanics(t *testing.T) {
	env := sim.NewEnv()
	rvp := NewRVP(env, 1)
	env.Spawn("p", func(p *sim.Proc) {
		rvp.Arrive(true)
		rvp.Arrive(true)
	})
	if err := env.Run(); err == nil {
		t.Fatal("expected over-arrive panic")
	}
}

func TestPartitionExecutesActionsInOrder(t *testing.T) {
	env, pl, pt, _ := fixture(1)
	var order []int
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 3)
		for i := 0; i < 3; i++ {
			i := i
			pt.Enqueue(task, &Action{TxnID: 1, RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
				order = append(order, i)
				t.Exec(stats.CompOther, 100)
				return true
			}})
		}
		task.Flush()
		if !rvp.Await(p) {
			t.Error("vote failed")
		}
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order %v", order)
	}
	if pt.Done() != 3 {
		t.Fatalf("done=%d", pt.Done())
	}
}

func TestWindowOneSerializesBlockingActions(t *testing.T) {
	// With window 1, a blocked action stalls the whole partition.
	env, pl, pt, _ := fixture(1)
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 2)
		for i := 0; i < 2; i++ {
			pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
				t.Block(10 * sim.Microsecond) // async hardware-style wait
				return true
			}})
		}
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() < sim.Time(20*sim.Microsecond) {
		t.Fatalf("window-1 overlapped blocking actions: %v", env.Now())
	}
}

func TestWindowedPartitionOverlapsBlockedActions(t *testing.T) {
	env, pl, pt, _ := fixture(8)
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 8)
		for i := 0; i < 8; i++ {
			pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
				t.Block(10 * sim.Microsecond)
				return true
			}})
		}
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 × 10us waits overlapped should finish well under 80us serial time.
	if env.Now() > sim.Time(30*sim.Microsecond) {
		t.Fatalf("windowed partition failed to overlap: %v", env.Now())
	}
}

func TestWindowCapsInflight(t *testing.T) {
	env, pl, pt, _ := fixture(2)
	inflight, maxInflight := 0, 0
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 6)
		for i := 0; i < 6; i++ {
			pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
				inflight++
				if inflight > maxInflight {
					maxInflight = inflight
				}
				t.Block(5 * sim.Microsecond)
				inflight--
				return true
			}})
		}
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInflight > 2 {
		t.Fatalf("window 2 exceeded: %d in flight", maxInflight)
	}
}

// sendLocked enqueues a locking action for txn and returns its RVP.
func sendLocked(env *sim.Env, task *platform.Task, pt *Partition, txn uint64, key string, body func(t *platform.Task) bool) *RVP {
	rvp := NewRVP(env, 1)
	pt.Enqueue(task, &Action{TxnID: txn, LockKey: key, RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
		if body == nil {
			return true
		}
		return body(t)
	}})
	return rvp
}

// release enqueues a lock-release action for txn.
func release(env *sim.Env, task *platform.Task, pt *Partition, txn uint64) *RVP {
	rvp := NewRVP(env, 1)
	pt.Enqueue(task, &Action{TxnID: txn, RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
		w.ReleaseLocks(t, txn)
		return true
	}})
	return rvp
}

func TestEntityLockDefersConflicts(t *testing.T) {
	env, pl, pt, _ := fixture(1)
	var events []string
	env.Spawn("coord", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		// T1 takes the entity and keeps it across a phase boundary.
		r1 := sendLocked(env, task, pt, 1, "entity-5", func(t *platform.Task) bool {
			events = append(events, "t1-run")
			return true
		})
		task.Flush()
		r1.Await(p)
		// T2 conflicts: its action must be deferred, not run.
		r2 := sendLocked(env, task, pt, 2, "entity-5", func(t *platform.Task) bool {
			events = append(events, "t2-run")
			return true
		})
		task.Flush()
		p.Wait(20 * sim.Microsecond)
		if pt.Defers() != 1 {
			t.Errorf("defers=%d", pt.Defers())
		}
		if len(events) != 1 {
			t.Errorf("t2 ran while t1 held the entity: %v", events)
		}
		// Release T1: T2's deferred action must now run.
		release(env, task, pt, 1)
		task.Flush()
		r2.Await(p)
		if len(events) != 2 || events[1] != "t2-run" {
			t.Errorf("events %v", events)
		}
		if !pt.HoldsLock("entity-5", 2) {
			t.Error("entity not handed to T2")
		}
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReentrantEntityLock(t *testing.T) {
	env, pl, pt, _ := fixture(1)
	env.Spawn("coord", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		r1 := sendLocked(env, task, pt, 1, "e", nil)
		task.Flush()
		r1.Await(p)
		// Same transaction locks the same entity in a later phase: runs.
		r2 := sendLocked(env, task, pt, 1, "e", nil)
		task.Flush()
		if !r2.Await(p) {
			t.Error("reentrant lock voted abort")
		}
		if pt.Defers() != 0 {
			t.Errorf("defers=%d", pt.Defers())
		}
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntityCycleVotesAbort(t *testing.T) {
	// T1 holds A and wants B; T2 holds B and wants A. The second defer
	// attempt must abort-vote instead of deferring.
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	bd := &stats.Breakdown{}
	reg := NewRegistry()
	pa := NewPartition(pl, reg, 0, pl.Cores[0], DefaultCosts(), 1, bd)
	pb := NewPartition(pl, reg, 1, pl.Cores[1], DefaultCosts(), 1, bd)
	pa.Start()
	pb.Start()
	env.Spawn("coord", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[2], &stats.Breakdown{})
		// Phase 1: each grabs its first entity.
		r1 := sendLocked(env, task, pa, 1, "A", nil)
		r2 := sendLocked(env, task, pb, 2, "B", nil)
		task.Flush()
		r1.Await(p)
		r2.Await(p)
		// Phase 2: crossed requests.
		ra := sendLocked(env, task, pb, 1, "B", nil) // T1 wants B (deferred)
		task.Flush()
		p.Wait(5 * sim.Microsecond)
		rb := sendLocked(env, task, pa, 2, "A", nil) // T2 wants A: cycle!
		task.Flush()
		if rb.Await(p) {
			t.Error("cycle-closing action did not vote abort")
		}
		if reg.Deadlocks() != 1 {
			t.Errorf("deadlocks=%d", reg.Deadlocks())
		}
		// T2 aborts: release its lock so T1's deferred action proceeds.
		release(env, task, pb, 2)
		task.Flush()
		if !ra.Await(p) {
			t.Error("T1's deferred action should eventually run")
		}
		release(env, task, pa, 1)
		release(env, task, pb, 1)
		task.Flush()
		pa.Close()
		pb.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueChargesDoraComponent(t *testing.T) {
	env, pl, pt, bd := fixture(1)
	senderBD := &stats.Breakdown{}
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], senderBD)
		rvp := NewRVP(env, 1)
		pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool { return true }})
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if senderBD.Get(stats.CompDora) == 0 {
		t.Fatal("enqueue charged nothing to Dora")
	}
	if bd.Get(stats.CompDora) == 0 {
		t.Fatal("dequeue charged nothing to Dora")
	}
}

func TestHWQueuePathUsesUnit(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	bd := &stats.Breakdown{}
	pt := NewPartition(pl, NewRegistry(), 0, pl.Cores[0], DefaultCosts(), 1, bd)
	pt.HWQueue = pl.NewHWUnit("queue-engine", 4)
	pt.HWQueueCycles = 3
	pt.Start()
	senderBD := &stats.Breakdown{}
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], senderBD)
		rvp := NewRVP(env, 1)
		pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool { return true }})
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if pt.HWQueue.Ops() != 2 { // one enqueue + one dequeue
		t.Fatalf("hw queue ops = %d", pt.HWQueue.Ops())
	}
	// The CPU-side cost must be well below the software enqueue cost.
	if senderBD.Get(stats.CompDora) >= sim.Duration(DefaultCosts().EnqueueInstr)*400 {
		t.Fatalf("hw enqueue charged %v of CPU", senderBD.Get(stats.CompDora))
	}
}

func TestPartitionCloseDrains(t *testing.T) {
	env, pl, pt, _ := fixture(4)
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 10)
		for i := 0; i < 10; i++ {
			pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
				t.Block(2 * sim.Microsecond)
				return true
			}})
		}
		task.Flush()
		pt.Close() // close before completion: worker must drain all 10
		rvp.Await(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if pt.Done() != 10 {
		t.Fatalf("done=%d after close-drain", pt.Done())
	}
	if env.Live() != 0 {
		t.Fatalf("%d processes leaked", env.Live())
	}
}

func TestPriorityActionJumpsQueue(t *testing.T) {
	env, pl, pt, _ := fixture(1)
	var order []string
	env.Spawn("sender", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		rvp := NewRVP(env, 3)
		// A slow action occupies the worker; two more queue behind it.
		pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
			t.Block(10 * sim.Microsecond)
			order = append(order, "slow")
			return true
		}})
		pt.Enqueue(task, &Action{RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
			order = append(order, "normal")
			return true
		}})
		pt.Enqueue(task, &Action{Priority: true, RVP: rvp, Run: func(t *platform.Task, w *Partition) bool {
			order = append(order, "priority")
			return true
		}})
		task.Flush()
		rvp.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "slow" || order[1] != "priority" || order[2] != "normal" {
		t.Fatalf("order %v, want priority before normal", order)
	}
}

func TestReleaseHandsOffToDeferred(t *testing.T) {
	env, pl, pt, _ := fixture(4)
	env.Spawn("coord", func(p *sim.Proc) {
		task := pl.NewTask(p, pl.Cores[1], &stats.Breakdown{})
		r1 := sendLocked(env, task, pt, 1, "e", nil)
		task.Flush()
		r1.Await(p)
		// Three transactions defer behind T1.
		var rvps []*RVP
		for txn := uint64(2); txn <= 4; txn++ {
			rvps = append(rvps, sendLocked(env, task, pt, txn, "e", nil))
		}
		task.Flush()
		p.Wait(10 * sim.Microsecond)
		// Release T1: T2 must own the entity; T3/T4 re-defer behind it.
		release(env, task, pt, 1)
		task.Flush()
		if !rvps[0].Await(p) {
			t.Error("first deferred action failed")
		}
		if !pt.HoldsLock("e", 2) {
			t.Error("handoff skipped FIFO order")
		}
		for txn := uint64(2); txn <= 4; txn++ {
			release(env, task, pt, txn)
		}
		task.Flush()
		for _, r := range rvps[1:] {
			if !r.Await(p) {
				t.Error("chained deferred action failed")
			}
		}
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
