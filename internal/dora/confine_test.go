package dora

import (
	"strings"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// confinedFixture builds a 2-socket sharded-log platform, confines it, and
// homes one window-1 partition on socket 1's kernel shard.
func confinedFixture(t *testing.T) (*sim.Env, *platform.Platform, *Partition) {
	t.Helper()
	env := sim.NewEnv()
	cfg := platform.HC2Scaled(2)
	cfg.LogDevPerSocket = true
	pl := platform.New(env, cfg)
	pl.Confine()
	if !pl.Confined() {
		t.Fatal("platform did not confine")
	}
	pt := NewPartition(pl, NewRegistry(), 0, pl.Sockets[1].Cores[0], DefaultCosts(), 1, &stats.Breakdown{})
	pt.Confine()
	pt.Start()
	return env, pl, pt
}

// TestConfinedPartitionRejectsForeignTouch pins the confinement contract
// from both sides. A shard-0 process that touches the partition's input
// queue directly — the engine structure, not the posted Enqueue edge — must
// die on the kernel's ownership check; the same process going through
// Enqueue (which crosses shards as a posted interconnect message via
// CrossAt) must get its action executed and its vote home.
func TestConfinedPartitionRejectsForeignTouch(t *testing.T) {
	t.Run("direct-touch-panics", func(t *testing.T) {
		env, _, pt := confinedFixture(t)
		defer env.Close()
		env.SpawnOn(0, "intruder", func(p *sim.Proc) {
			pt.in.Put(p, &Action{}) // bypasses the CrossAt edge
		})
		err := env.Run()
		if err == nil || !strings.Contains(err.Error(), "owned by another shard") {
			t.Fatalf("foreign direct queue touch survived: %v", err)
		}
	})
	t.Run("posted-enqueue-delivers", func(t *testing.T) {
		env, pl, pt := confinedFixture(t)
		defer env.Close()
		ran := false
		env.SpawnOn(0, "coordinator", func(p *sim.Proc) {
			task := pl.NewTask(p, pl.Sockets[0].Cores[1], &stats.Breakdown{})
			rvp := NewRVPOn(env, 1, 0)
			pt.Enqueue(task, &Action{TxnID: 1, RVP: rvp, ReplySocket: 0,
				Run: func(wt *platform.Task, w *Partition) bool {
					ran = true
					wt.Exec(stats.CompOther, 100)
					return true
				}})
			task.Flush()
			if !rvp.Await(p) {
				t.Error("cross-shard vote failed")
			}
			pt.Close()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("posted action never executed")
		}
		if pt.Done() != 1 {
			t.Fatalf("done=%d", pt.Done())
		}
	})
}

// TestConfinedWaitRuleRefusesForeignWaiter pins the engine-sharded
// deadlock policy: a confined partition only lets an action wait on a held
// entity lock when the waiter, the partition and the holder all live on
// the partition's home socket; a cross-socket conflict is refused
// immediately (an abort vote with Refused set) instead of parked where no
// local cycle check could see it.
func TestConfinedWaitRuleRefusesForeignWaiter(t *testing.T) {
	env, pl, pt := confinedFixture(t)
	defer env.Close()
	env.SpawnOn(1, "driver", func(p *sim.Proc) {
		// Txn 1, homed on the partition's socket, takes entity lock "k".
		// Entity locks are two-phase — held past the action until a release
		// — so the lock stays up after the vote comes back.
		task := pl.NewTask(p, pl.Sockets[1].Cores[1], &stats.Breakdown{})
		hold := NewRVPOn(env, 1, pl.ShardOf(1))
		pt.Enqueue(task, &Action{TxnID: 1, LockKey: "k", RVP: hold, ReplySocket: 1,
			Run: func(wt *platform.Task, w *Partition) bool { return true }})
		task.Flush()
		if !hold.Await(p) {
			t.Error("home-socket lock acquisition failed")
		}
		// A socket-0 coordinator now conflicts on "k": the home-socket wait
		// rule must refuse it rather than defer it.
		done := sim.NewSignal(env).OnShard(pl.ShardOf(1))
		foreign := &Action{TxnID: 2, LockKey: "k", RVP: NewRVPOn(env, 1, 0), ReplySocket: 0,
			Run: func(wt *platform.Task, w *Partition) bool { return true }}
		env.SpawnOn(0, "foreign-waiter", func(fp *sim.Proc) {
			ftask := pl.NewTask(fp, pl.Sockets[0].Cores[0], &stats.Breakdown{})
			pt.Enqueue(ftask, foreign)
			ftask.Flush()
			if foreign.RVP.Await(fp) {
				t.Error("foreign conflicting action committed; want refusal")
			}
			if !foreign.Refused {
				t.Error("foreign conflicting action was not marked Refused")
			}
			done.Fire(nil)
		})
		done.Await(p)
		pt.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if pt.reg.Deadlocks() == 0 {
		t.Error("cross-socket refusal was not counted")
	}
}
