// Package dora implements data-oriented transaction execution [10, 11]: the
// database is split into logical partitions, each owned by one worker bound
// to one core; transactions are decomposed into per-partition actions that
// flow through input queues and synchronize at rendezvous points (RVPs).
// Ownership makes centralized locking and page latching unnecessary. A
// partition-local lock table keyed by the action's routing entity preserves
// isolation across a transaction's phases; conflicting actions are parked
// on a deferred list (never blocking the worker) and re-dispatched when the
// holder releases — DORA's deferred-action mechanism. A waits-for registry
// turns would-be cross-entity cycles into abort votes at defer time.
//
// On a multi-socket platform the partitions shard across sockets: an
// action enqueued from another socket carries a cache-line-sized message
// across the interconnect, and its vote pays the return hop to the
// coordinator's RVP. Same-socket traffic — and every action on a
// single-socket machine — pays exactly nothing new, which is what lets
// socket-local transactions keep single-machine costs under scale-out.
package dora

import (
	"fmt"
	"sort"

	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Costs parameterizes the CPU cost of queue and local-lock management (the
// Figure 3 "Dora" component). The hardware queue engine (§5.5) is modelled
// by the engine substituting smaller costs plus a unit charge.
type Costs struct {
	EnqueueInstr   int // route + queue insert on the sender side
	DequeueInstr   int // queue remove + action setup on the worker side
	LocalLockInstr int // partition-local lock acquire or release
	RVPInstr       int // per-arrival rendezvous bookkeeping
}

// DefaultCosts returns the software queue costs (coherence misses between
// producer and consumer cores are charged via queue-slot Accesses on top).
func DefaultCosts() Costs {
	return Costs{EnqueueInstr: 160, DequeueInstr: 120, LocalLockInstr: 60, RVPInstr: 90}
}

// Action is one unit of partition-confined work.
//
// If LockKey is non-empty the partition acquires the (entity-granularity)
// local lock for TxnID before running Body; the lock is held until the
// transaction's ReleaseLocks action. A conflicting action is deferred, not
// blocked; if deferring would close a waits-for cycle the action instead
// arrives at its RVP with a false (abort) vote and Body never runs.
type Action struct {
	TxnID   uint64
	LockKey string // "" = no locking (undo, release, single-phase reads)
	// RVP may be nil for fire-and-forget actions (lock releases) whose
	// completion nobody awaits.
	RVP *RVP
	Run func(t *platform.Task, pt *Partition) bool

	// ReplySocket is the socket of the coordinator awaiting this action's
	// RVP. On a multi-socket platform the partition pays an interconnect
	// message to carry its vote home when it differs from the partition's
	// own socket; engines set it wherever they set RVP. Ignored when RVP
	// is nil or on single-socket platforms.
	ReplySocket int

	// Priority actions (lock releases, undo) jump the input queue so they
	// never convoy behind a backlog of actions waiting for the very locks
	// they release.
	Priority bool

	// Refused is set by the partition when the action was abort-voted at
	// defer time because waiting would close a deadlock cycle; Body never
	// ran. Coordinators use it to distinguish engine aborts (retry) from
	// user aborts (do not retry).
	Refused bool

	// Flight-recorder stamps, maintained by the partition as the action
	// moves through queue, lock and execution stages. The durations
	// accumulate across re-dispatches (a deferred action re-enters the
	// queue); coordinators fold them into the transaction's latency
	// anatomy after the RVP. Flow links a cross-socket enqueue to its
	// dequeue in the trace. All host-side: never read by simulated logic.
	EnqAt     sim.Time
	QueueWait sim.Duration
	LockWait  sim.Duration
	ExecTime  sim.Duration
	Flow      uint64

	defAt sim.Time // when parked on a deferred list; lock wait starts here
}

// ResetStamps clears the flight-recorder stamps so a pooled Action can be
// reused without leaking the previous transaction's timings.
func (a *Action) ResetStamps() {
	a.EnqAt, a.defAt = 0, 0
	a.QueueWait, a.LockWait, a.ExecTime = 0, 0, 0
	a.Flow = 0
}

// RVP is a rendezvous point: the join of a fan-out of actions. The signal
// fires when all arrivals are in; the value is true only if every action
// voted to continue.
type RVP struct {
	remaining int
	ok        bool
	sig       *sim.Signal
}

// NewRVP creates a rendezvous expecting n arrivals.
func NewRVP(env *sim.Env, n int) *RVP {
	if n < 1 {
		panic("dora: RVP needs at least one arrival")
	}
	return &RVP{remaining: n, ok: true, sig: sim.NewSignal(env)}
}

// NewRVPOn creates a rendezvous homed on the given kernel shard — the
// coordinator's. Local partitions arrive directly; remote partitions'
// votes are carried over via CrossAt and arrive as scheduler callbacks on
// the home shard, so every Arrive (and the final Fire) executes there.
func NewRVPOn(env *sim.Env, n, shard int) *RVP {
	if n < 1 {
		panic("dora: RVP needs at least one arrival")
	}
	return &RVP{remaining: n, ok: true, sig: sim.NewSignal(env).OnShard(shard)}
}

// Arrive registers one arrival with its vote; the last arrival fires the
// signal.
func (r *RVP) Arrive(vote bool) {
	if r.remaining <= 0 {
		panic("dora: RVP over-arrived")
	}
	if !vote {
		r.ok = false
	}
	r.remaining--
	if r.remaining == 0 {
		r.sig.Fire(r.ok)
	}
}

// Await blocks until all arrivals are in and reports whether every action
// voted to continue.
func (r *RVP) Await(p *sim.Proc) bool {
	return r.sig.Await(p).(bool)
}

// Registry is the waits-for graph shared by a set of partitions. All
// updates happen from simulated processes (one at a time), so plain maps
// suffice.
type Registry struct {
	waits     map[uint64]map[uint64]struct{} // txn -> txns it waits for
	deadlocks int64
}

// NewRegistry returns an empty waits-for registry.
func NewRegistry() *Registry {
	return &Registry{waits: make(map[uint64]map[uint64]struct{})}
}

// Deadlocks returns how many defer attempts were refused as cycles.
func (r *Registry) Deadlocks() int64 { return r.deadlocks }

// wouldCycle reports whether adding waiter->holder closes a cycle.
func (r *Registry) wouldCycle(waiter, holder uint64) bool {
	seen := map[uint64]bool{}
	var dfs func(id uint64) bool
	dfs = func(id uint64) bool {
		if id == waiter {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for next := range r.waits[id] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(holder)
}

func (r *Registry) add(waiter, holder uint64) {
	m := r.waits[waiter]
	if m == nil {
		m = make(map[uint64]struct{})
		r.waits[waiter] = m
	}
	m[holder] = struct{}{}
}

func (r *Registry) remove(waiter, holder uint64) {
	if m := r.waits[waiter]; m != nil {
		delete(m, holder)
		if len(m) == 0 {
			delete(r.waits, waiter)
		}
	}
}

// Partition is one logical partition: an input queue, an owning worker on a
// dedicated core, and a local lock table. Window controls how many actions
// may be in flight at once (1 = strictly serial, the software DORA
// configuration; >1 enables the overlap the bionic engine needs for
// asynchronous hardware requests).
type Partition struct {
	ID     int
	Core   *platform.Core
	Costs  Costs
	Window int

	pl    *platform.Platform
	reg   *Registry
	in    *sim.Queue[*Action]
	locks map[string]*entityLock
	bd    *stats.Breakdown

	qAddr  uint64 // queue slots, for coherence-miss charging
	socket int    // the socket Core lives on, cached for the message path

	// confined marks the partition as homed on its socket's kernel shard:
	// the worker, input queue and queue slots live there, remote enqueues
	// arrive as posted interconnect messages via CrossAt, and waits are
	// restricted to the home socket (see dispatch). Set by Confine.
	confined bool
	shard    int // kernel shard of socket, valid when confined

	inflight   int
	slotFree   *sim.Signal
	done       int64
	defers     int64
	actionName string         // spawn name for windowed child actions, built once
	idle       []*actionChild // pooled child processes awaiting work

	// HWQueue, when non-nil, is the hardware queue-management engine: the
	// enqueue/dequeue path charges it instead of the software costs.
	HWQueue *platform.HWUnit
	// HWQueueCycles is the unit occupancy per queue operation.
	HWQueueCycles int

	// Flight recorder (SetRecorder): recs spans all shards for cross-shard
	// flow edges, rec is this partition's home-shard ring. Nil when
	// untraced; action stamps are maintained regardless (they cost a few
	// clock reads and feed the always-on latency anatomy).
	recs *obs.Recorder
	rec  *obs.ShardRec
}

type entityLock struct {
	owner uint64
	// ownerHome is the owner's coordinator socket (Action.ReplySocket at
	// acquire), recorded so a confined partition can apply the home-socket
	// wait rule without consulting a foreign shard.
	ownerHome int
	deferred  []*Action
}

// NewPartition creates a partition owned by core, sharing reg for deadlock
// avoidance. Call Start to spawn its worker.
func NewPartition(pl *platform.Platform, reg *Registry, id int, core *platform.Core, costs Costs, window int, bd *stats.Breakdown) *Partition {
	if window < 1 {
		window = 1
	}
	return &Partition{
		ID:         id,
		Core:       core,
		Costs:      costs,
		Window:     window,
		pl:         pl,
		reg:        reg,
		in:         sim.NewQueue[*Action](pl.Env, fmt.Sprintf("part%d.in", id), 0),
		locks:      make(map[string]*entityLock),
		bd:         bd,
		qAddr:      pl.AllocHost(64 * 1024),
		socket:     core.SocketID(),
		actionName: fmt.Sprintf("part%d.action", id),
	}
}

// Socket returns the socket this partition's owning core lives on.
func (pt *Partition) Socket() int { return pt.socket }

// SetRecorder attaches the flight recorder. The partition records
// queue-wait, lock-wait and action-execution spans into its own kernel
// shard's ring; cross-socket enqueues and votes additionally record
// flow-edge markers into the sending and receiving shards' rings (each
// ring is written only from its own shard's goroutine, so the recorder
// stays race-free under the parallel kernel). Host-side only: attaching a
// recorder changes no simulated behavior. Call after Confine.
func (pt *Partition) SetRecorder(rec *obs.Recorder) {
	pt.recs = rec
	sh := 0
	if pt.confined {
		sh = pt.shard
	}
	pt.rec = rec.Shard(sh)
}

// Confine homes the partition on its socket's kernel shard: the input
// queue moves onto the shard, the queue slots move into the socket's
// private arena, and Start will spawn the worker there. Call at setup
// time, before Start and before any Enqueue.
func (pt *Partition) Confine() *Partition {
	pt.confined = true
	pt.shard = pt.pl.ShardOf(pt.socket)
	pt.in.OnShard(pt.shard)
	pt.qAddr = pt.pl.AllocHostOn(pt.socket, 64*1024)
	return pt
}

// actionMsgBytes is the modeled size of one cross-socket action message —
// a cache-line-sized descriptor (routing key, txn id, body pointer) — and
// of the vote carried back to the coordinator's RVP.
const actionMsgBytes = 64

// Enqueue routes an action into the partition, charging the sender's task.
// On a multi-socket platform a sender on another socket additionally pays
// one interconnect message to carry the action descriptor to the
// partition's socket; same-socket sends pay nothing new.
func (pt *Partition) Enqueue(t *platform.Task, a *Action) {
	if pt.confined {
		if from := t.Core().SocketID(); from != pt.socket {
			// Posted cross-shard send: the sender pays the routing cost and
			// the interconnect transfer on its own shard, then the descriptor
			// travels as a scheduler message and lands in the queue on the
			// partition's shard after the hop latency. The sender never
			// touches the remote queue slots.
			t.Exec(stats.CompDora, pt.Costs.EnqueueInstr)
			t.Flush()
			if sRec := pt.recs.Shard(pt.pl.ShardOf(from)); sRec != nil {
				// Flow edge: an instant marker on the sender's shard, tied
				// by id to the queue-wait span on the partition's shard.
				a.Flow = sRec.NextFlow()
				now := t.P.Now()
				sRec.Record(obs.Span{Start: now, End: now, Kind: obs.KindDispatch,
					Socket: int32(from), Txn: a.TxnID, Flow: a.Flow, FlowOut: true})
			}
			arrival := pt.pl.IC.Send(t.P, from, pt.socket, actionMsgBytes)
			a.EnqAt = arrival
			t.P.CrossAt(pt.shard, arrival, func() {
				if pt.in.Closed() {
					return // machine shut down while the descriptor was in flight
				}
				if a.Priority {
					pt.in.PutFront(a)
				} else {
					pt.in.TryPut(a)
				}
			})
			return
		}
	}
	if pt.HWQueue != nil {
		// Doorbell write + hardware enqueue: minimal CPU, unit does the rest.
		t.Exec(stats.CompDora, pt.Costs.EnqueueInstr/4)
		t.Flush()
		pt.HWQueue.Work(t.P, pt.HWQueueCycles)
	} else {
		t.Exec(stats.CompDora, pt.Costs.EnqueueInstr)
		// Producer-side coherence traffic on the queue slot.
		t.Access(stats.CompDora, pt.qAddr+uint64(pt.in.Puts()%1024)*64, 64)
		t.Flush()
	}
	if ic := pt.pl.IC; ic != nil {
		if from := t.Core().SocketID(); from != pt.socket {
			ic.Transfer(t.P, from, pt.socket, actionMsgBytes)
		}
	}
	a.EnqAt = t.P.Now()
	if a.Priority {
		pt.in.PutFront(a)
		return
	}
	pt.in.Put(t.P, a)
}

// QueueLen reports the current backlog.
func (pt *Partition) QueueLen() int { return pt.in.Len() }

// Done reports how many actions have completed (including abort votes).
func (pt *Partition) Done() int64 { return pt.done }

// Defers reports how often a conflicting action was parked.
func (pt *Partition) Defers() int64 { return pt.defers }

// Start spawns the partition worker. With Window == 1 the worker runs each
// action to completion itself; with a larger window it dispatches actions
// to child processes that share the partition's core, so an action blocked
// on asynchronous hardware leaves the core free for its siblings.
func (pt *Partition) Start() {
	body := func(p *sim.Proc) {
		for {
			a, ok := pt.in.Get(p)
			if !ok {
				for pt.inflight > 0 {
					pt.slotFree = sim.NewSignal(p.Env())
					pt.slotFree.Await(p)
				}
				// Drained: release the pooled child processes so they
				// exit and the partition leaves nothing parked behind.
				for _, c := range pt.idle {
					c.quit = true
					pt.pl.Env.Resume(c.proc)
				}
				pt.idle = nil
				return
			}
			if pt.Window == 1 {
				task := pt.pl.NewTask(p, pt.Core, pt.bd)
				pt.dispatch(task, a)
				continue
			}
			for pt.inflight >= pt.Window {
				pt.slotFree = sim.NewSignal(p.Env())
				pt.slotFree.Await(p)
			}
			pt.inflight++
			pt.startAction(a)
		}
	}
	name := fmt.Sprintf("part%d.worker", pt.ID)
	if pt.confined {
		pt.pl.Env.SpawnOn(pt.shard, name, body)
		return
	}
	pt.pl.Env.Spawn(name, body)
}

// actionChild is one pooled windowed-action process: a single goroutine
// serving many actions across its lifetime, parked in the partition's idle
// list between actions.
type actionChild struct {
	proc *sim.Proc
	next *Action
	quit bool
}

// startAction hands a to a pooled child process, spawning a fresh one only
// when the pool is empty. A pool Resume and a fresh Spawn each push exactly
// one wake event at the current time, so reuse changes per-action
// allocation (no Proc, no goroutine), never the event schedule.
func (pt *Partition) startAction(a *Action) {
	if n := len(pt.idle); n > 0 {
		c := pt.idle[n-1]
		pt.idle = pt.idle[:n-1]
		c.next = a
		pt.pl.Env.Resume(c.proc)
		return
	}
	c := &actionChild{next: a}
	c.proc = pt.pl.Env.Spawn(pt.actionName, func(cp *sim.Proc) {
		for {
			a := c.next
			c.next = nil
			task := pt.pl.NewTask(cp, pt.Core, pt.bd)
			pt.dispatch(task, a)
			pt.inflight--
			if pt.slotFree != nil && !pt.slotFree.Fired() {
				pt.slotFree.Fire(nil)
			}
			pt.idle = append(pt.idle, c)
			cp.Suspend()
			if c.quit {
				return
			}
		}
	})
}

// dispatch charges the dequeue, resolves the local lock, and either runs,
// defers, or abort-votes the action.
func (pt *Partition) dispatch(task *platform.Task, a *Action) {
	if at := task.P.Now(); a.defAt != 0 {
		// Re-dispatch of a deferred action: the park-to-grant gap (plus the
		// re-queue hop) is lock wait, not queue wait.
		if at > a.defAt {
			a.LockWait += at.Sub(a.defAt)
			pt.rec.Record(obs.Span{Start: a.defAt, End: at, Kind: obs.KindLockWait,
				Socket: int32(pt.socket), Txn: a.TxnID})
		}
		a.defAt = 0
	} else if a.EnqAt != 0 {
		if at > a.EnqAt {
			a.QueueWait += at.Sub(a.EnqAt)
		}
		// Recorded even at zero width so a cross-socket flow edge always
		// has its receiving end.
		pt.rec.Record(obs.Span{Start: a.EnqAt, End: at, Kind: obs.KindQueueWait,
			Socket: int32(pt.socket), Txn: a.TxnID, Flow: a.Flow})
	}
	if pt.HWQueue != nil {
		task.Exec(stats.CompDora, pt.Costs.DequeueInstr/4)
		task.Flush()
		pt.HWQueue.Work(task.P, pt.HWQueueCycles)
	} else {
		task.Exec(stats.CompDora, pt.Costs.DequeueInstr)
		task.Access(stats.CompDora, pt.qAddr+uint64(pt.done%1024)*64, 64)
	}
	if a.LockKey != "" {
		task.Exec(stats.CompDora, pt.Costs.LocalLockInstr)
		l := pt.locks[a.LockKey]
		if l == nil {
			l = &entityLock{owner: a.TxnID, ownerHome: a.ReplySocket}
			pt.locks[a.LockKey] = l
		} else if l.owner != a.TxnID {
			// Home-socket wait rule on a confined partition: a transaction
			// may defer only in partitions of its own socket, and only
			// behind a holder homed there too. This keeps every waits-for
			// edge inside one per-socket registry — each shard sees every
			// cycle it could be part of without reading foreign state — at
			// the price of refusing (abort-voting) the rarer cross-socket
			// conflicts, which the coordinator retries like any deadlock.
			if pt.confined && (a.ReplySocket != pt.socket || l.ownerHome != pt.socket) {
				pt.reg.deadlocks++
				a.Refused = true
				pt.finish(task, a, false)
				return
			}
			// Conflict: defer unless that would close a cycle.
			if pt.reg.wouldCycle(a.TxnID, l.owner) {
				pt.reg.deadlocks++
				a.Refused = true
				pt.finish(task, a, false)
				return
			}
			pt.reg.add(a.TxnID, l.owner)
			pt.defers++
			a.defAt = task.P.Now()
			l.deferred = append(l.deferred, a)
			return
		}
	}
	pt.run(task, a)
}

func (pt *Partition) run(task *platform.Task, a *Action) {
	t0 := task.P.Now()
	vote := a.Run(task, pt)
	if t1 := task.P.Now(); t1 > t0 {
		a.ExecTime += t1.Sub(t0)
		pt.rec.Record(obs.Span{Start: t0, End: t1, Kind: obs.KindAction,
			Socket: int32(pt.socket), Txn: a.TxnID})
	}
	pt.finish(task, a, vote)
}

func (pt *Partition) finish(task *platform.Task, a *Action, vote bool) {
	task.Exec(stats.CompDora, pt.Costs.RVPInstr)
	task.Flush()
	pt.done++
	if a.RVP != nil {
		// Carry the vote back to a coordinator on another socket.
		if pt.confined && a.ReplySocket != pt.socket {
			// Posted send: the vote crosses the interconnect and arrives at
			// the coordinator's RVP — homed on its shard — after the hop
			// latency, without this worker blocking through the transfer.
			rvp := a.RVP
			var flow uint64
			txn, replySocket := a.TxnID, a.ReplySocket
			if pt.rec != nil {
				flow = pt.rec.NextFlow()
				now := task.P.Now()
				pt.rec.Record(obs.Span{Start: now, End: now, Kind: obs.KindDispatch,
					Socket: int32(pt.socket), Txn: txn, Flow: flow, FlowOut: true})
			}
			arrival := pt.pl.IC.Send(task.P, pt.socket, replySocket, actionMsgBytes)
			home := pt.pl.ShardOf(replySocket)
			task.P.CrossAt(home, arrival, func() {
				if flow != 0 {
					// The action itself may be recycled by now; the captured
					// stamps are all the callback touches.
					pt.recs.Shard(home).Record(obs.Span{Start: arrival, End: arrival,
						Kind: obs.KindDispatch, Socket: int32(replySocket), Txn: txn, Flow: flow})
				}
				rvp.Arrive(vote)
			})
			return
		}
		if ic := pt.pl.IC; ic != nil && a.ReplySocket != pt.socket {
			ic.Transfer(task.P, pt.socket, a.ReplySocket, actionMsgBytes)
		}
		a.RVP.Arrive(vote)
	}
}

// ReleaseLocks frees every local lock txnID holds in this partition and
// re-dispatches deferred actions by re-enqueueing them. It is called from a
// release action's body, on the partition's own worker.
func (pt *Partition) ReleaseLocks(task *platform.Task, txnID uint64) {
	// Release in sorted key order: the order decides when deferred actions
	// re-enter the queue, so it must not follow randomized map iteration.
	var owned []string
	for key, l := range pt.locks {
		if l.owner == txnID {
			owned = append(owned, key)
		}
	}
	sort.Strings(owned)
	for _, key := range owned {
		l := pt.locks[key]
		task.Exec(stats.CompDora, pt.Costs.LocalLockInstr)
		if len(l.deferred) == 0 {
			delete(pt.locks, key)
			continue
		}
		// Hand the entity to the first deferred action's transaction and
		// re-enqueue every deferred action whose transaction now owns it;
		// others re-defer when dispatched.
		next := l.deferred[0]
		l.owner = next.TxnID
		l.ownerHome = next.ReplySocket
		rest := l.deferred
		l.deferred = nil
		// Re-dispatch at the queue head: deferred actions were admitted
		// before anything currently queued.
		for i := len(rest) - 1; i >= 0; i-- {
			d := rest[i]
			pt.reg.remove(d.TxnID, txnID)
			pt.in.PutFront(d)
		}
	}
}

// Close shuts the input queue; the worker exits after draining.
func (pt *Partition) Close() { pt.in.Close() }

// HeldLocks reports how many entity locks are currently owned (diagnostics).
func (pt *Partition) HeldLocks() int { return len(pt.locks) }

// DeferredActions reports actions parked on entity locks (diagnostics).
func (pt *Partition) DeferredActions() int {
	n := 0
	for _, l := range pt.locks {
		n += len(l.deferred)
	}
	return n
}

// Inflight reports actions currently executing (diagnostics).
func (pt *Partition) Inflight() int { return pt.inflight }

// HoldsLock reports whether txnID owns the entity lock for key (testing
// hook).
func (pt *Partition) HoldsLock(key string, txnID uint64) bool {
	l := pt.locks[key]
	return l != nil && l.owner == txnID
}

// DumpLocks reports every held entity lock as "key owner [deferred txns]"
// lines (diagnostics).
func (pt *Partition) DumpLocks() []string {
	var out []string
	for key, l := range pt.locks {
		line := fmt.Sprintf("%s owner=%d deferred=[", key, l.owner)
		for _, d := range l.deferred {
			line += fmt.Sprintf("%d ", d.TxnID)
		}
		out = append(out, line+"]")
	}
	return out
}
