package core

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// TestFailoverCrashRecovery is the replication subsystem's end-to-end
// guarantee, pinned at 1, 2 and 4 sockets for every commit-wait mode: kill
// the primary mid-run, promote the surviving replica image through the
// measured recovery path, and the replica must serve exactly the primary's
// shipped prefix — with zero lost acknowledged commits under sync and
// quorum, and an async loss window bounded by the observed replication lag.
func TestFailoverCrashRecovery(t *testing.T) {
	for _, sockets := range []int{1, 2, 4} {
		for _, mode := range []stats.ReplMode{stats.ReplAsync, stats.ReplSync, stats.ReplQuorum} {
			sockets, mode := sockets, mode
			t.Run(fmt.Sprintf("x%d-%s", sockets, mode), func(t *testing.T) {
				cfg := platform.HC2ScaledSharded(sockets)
				cfg.Replicas = 2
				cfg.ReplMode = mode
				env := sim.NewEnv()
				defer env.Close()
				e := NewDORA(env, cfg, kvTables(), HashScheme(cfg.TotalCores()))
				rs := e.Replicator()
				if rs == nil {
					t.Fatal("replicated engine built no ReplicaSet")
				}
				for i := 0; i < 400; i++ {
					e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("base-%d", i)))
				}
				// Warm like the harness does: a cold buffer pool pays the
				// modeled disk latency per first touch and starves the short
				// crash window of commits.
				e.Warm()
				// Checkpoint sharp before any terminal exists.
				var meta CheckpointMeta
				ckDone := false
				env.Spawn("checkpointer", func(p *sim.Proc) {
					meta = CheckpointAll(p, e.Tables(), e.DiskManager(), e.LogSet())
					ckDone = true
				})
				for !ckDone {
					if err := env.RunUntil(env.Now() + sim.Time(sim.Millisecond)); err != nil {
						t.Fatal(err)
					}
				}
				// Terminals run forever; the cold crash is the stopping point.
				for i := 0; i < 2*sockets; i++ {
					i := i
					tr := sim.NewRand(uint64(100 + i))
					env.Spawn(fmt.Sprintf("terminal%d", i), func(tp *sim.Proc) {
						term := &Terminal{ID: i, P: tp, Core: e.Platform().Cores[i%len(e.Platform().Cores)], R: tr}
						for n := 0; ; n++ {
							k1 := storage.Uint64Key(uint64(term.R.Intn(400)))
							k2 := storage.Uint64Key(uint64(term.R.Intn(400)))
							v := []byte(fmt.Sprintf("mut-%d-%d", i, n))
							if n%3 == 0 && !bytes.Equal(k1, k2) {
								e.Submit(term, func(tx Tx) bool {
									return tx.Phase(
										Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool {
											c.Update(1, k1, v)
											return true
										}},
										Action{Table: 1, Key: k2, Body: func(c AccessCtx) bool {
											c.Update(1, k2, v)
											return true
										}})
								})
								continue
							}
							e.Submit(term, func(tx Tx) bool {
								return tx.Phase(Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool {
									if !c.Update(1, k1, v) {
										c.Insert(1, k1, v)
									}
									return true
								}})
							})
						}
					})
				}
				if err := env.RunUntil(env.Now() + sim.Time(3*sim.Millisecond)); err != nil {
					t.Fatal(err)
				}
				acked := e.Counters().Get("commits")
				if acked == 0 {
					t.Fatal("no transactions acknowledged before the kill")
				}
				primary := e.LogSet().Datas()
				replicaLogs, replicaBytes, lostTail := rs.CrashImage()

				// Every surviving copy is a literal byte prefix of its shard.
				truncated := make([][]byte, len(primary))
				for s := range primary {
					if len(replicaLogs[s]) > len(primary[s]) ||
						!bytes.Equal(replicaLogs[s], primary[s][:len(replicaLogs[s])]) {
						t.Fatalf("shard %d replica copy is not a primary prefix", s)
					}
					truncated[s] = primary[s][:len(replicaLogs[s])]
				}
				if replicaBytes == 0 {
					t.Fatal("no bytes survived on any replica")
				}

				// The promoted replica and a direct recovery of the shipped
				// prefix must serve identical content.
				_, fst, err := Failover(cfg, kvTables(), meta, e.DiskManager(), replicaLogs, DefaultDetect, true)
				if err != nil {
					t.Fatal(err)
				}
				_, oracle, err := Failover(cfg, kvTables(), meta, e.DiskManager(), truncated, 0, true)
				if err != nil {
					t.Fatal(err)
				}
				if fst.Digest != oracle.Digest {
					t.Errorf("replica content diverged from the primary's shipped prefix:\n got  %s\n want %s",
						fst.Digest, oracle.Digest)
				}
				if fst.TimeToServing < DefaultDetect || fst.Recovery.Shards != len(replicaLogs) {
					t.Errorf("failover stats %+v", fst)
				}

				lost := acked - fst.Recovery.Txns
				switch mode {
				case stats.ReplSync, stats.ReplQuorum:
					// Every acknowledged commit waited for enough replica
					// acks, so the surviving image replays all of them.
					if lost > 0 {
						t.Errorf("%s lost %d of %d acknowledged commits", mode, lost, acked)
					}
				case stats.ReplAsync:
					// Async may lose the unshipped tail, but never more than
					// the lag the shippers actually ran at: the lost bytes are
					// the crash-instant lag, bounded by each shard's observed
					// maximum plus one inter-tick write burst of slack.
					var lagSum int64
					for _, st := range rs.Stats() {
						lagSum += st.LagBytesMax
					}
					if lostTail > lagSum+64<<10 {
						t.Errorf("async lost %d tail bytes, above the observed lag bound %d",
							lostTail, lagSum+64<<10)
					}
				}
			})
		}
	}
}

// TestFailoverServesWrites promotes a replica and verifies the recovered
// tree actually holds a mutated row — the failover image is usable state,
// not just a digest.
func TestFailoverServesWrites(t *testing.T) {
	cfg := platform.HC2ScaledSharded(2)
	cfg.Replicas = 2
	cfg.ReplMode = stats.ReplSync
	env := sim.NewEnv()
	defer env.Close()
	e := NewDORA(env, cfg, kvTables(), HashScheme(cfg.TotalCores()))
	k := storage.Uint64Key(7)
	e.Load(1, k, []byte("before"))
	var meta CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		meta = CheckpointAll(p, e.Tables(), e.DiskManager(), e.LogSet())
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		if !e.Submit(term, func(tx Tx) bool {
			return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
				return c.Update(1, k, []byte("after"))
			}})
		}) {
			t.Error("update did not commit")
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	logs, _, _ := e.Replicator().CrashImage()
	sets, fst, err := Failover(cfg, kvTables(), meta, e.DiskManager(), logs, DefaultDetect, true)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sets[0][1].Get(k, nil); !ok || !bytes.Equal(v, []byte("after")) {
		t.Errorf("promoted replica serves %q, want the sync-acknowledged update", v)
	}
	if fst.Mode != stats.ReplSync {
		t.Errorf("failover mode %v", fst.Mode)
	}
}
