package core

import (
	"sort"

	"bionicdb/internal/btree"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
)

// CheckpointMeta is the recovery anchor: the root page of every table's
// checkpoint image plus the log position recovery replays from. Figure 4
// keeps "log sync & recovery" in software; this is that box.
type CheckpointMeta struct {
	Roots    map[uint16]storage.PageID
	StartLSN wal.LSN
}

// Checkpoint writes every table's pages durably through dm and returns the
// metadata Recover needs. The engine must be quiesced (no active
// transactions): bionicdb checkpoints are sharp, not fuzzy.
func Checkpoint(p *sim.Proc, tables map[uint16]*btree.Tree, dm *storage.DiskManager, log *wal.Store) CheckpointMeta {
	meta := CheckpointMeta{Roots: make(map[uint16]storage.PageID)}
	ids := make([]int, 0, len(tables))
	for id := range tables {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		tree := tables[uint16(id)]
		meta.Roots[uint16(id)] = tree.RootID()
		tree.Checkpoint(func(pid storage.PageID, img []byte) {
			dm.Write(p, pid, img)
		})
	}
	meta.StartLSN = log.Durable()
	return meta
}

// Recover rebuilds every table from its checkpoint image and replays the
// logical log: committed transactions' data records after meta.StartLSN are
// applied in log order; records of transactions without a commit record are
// ignored (runtime aborts rolled back in memory, so redo-only logical
// recovery suffices). It returns the recovered trees keyed by table id.
func Recover(p *sim.Proc, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager, logData []byte) (map[uint16]*btree.Tree, error) {
	trees := make(map[uint16]*btree.Tree, len(defs))
	for _, def := range defs {
		tree, err := btree.Load(btree.Config{Order: def.Order}, meta.Roots[def.ID],
			func(id storage.PageID) []byte { return dm.Read(p, id) })
		if err != nil {
			return nil, err
		}
		trees[def.ID] = tree
	}
	// Pass 1: which transactions committed?
	committed := make(map[uint64]bool)
	if err := wal.Scan(logData, meta.StartLSN, func(r wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
		return true
	}); err != nil {
		return nil, err
	}
	// Pass 2: redo committed work in log order. Record fields are views
	// into logData, so images are copied before installation.
	if err := wal.Scan(logData, meta.StartLSN, func(r wal.Record) bool {
		if !committed[r.Txn] {
			return true
		}
		tree, ok := trees[r.Table]
		if !ok && (r.Type == wal.RecInsert || r.Type == wal.RecUpdate || r.Type == wal.RecDelete) {
			return true // table not part of this recovery set
		}
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate:
			key := append([]byte(nil), r.Key...)
			val := append([]byte(nil), r.After...)
			tree.Put(key, val, nil)
		case wal.RecDelete:
			tree.Delete(r.Key, nil)
		}
		return true
	}); err != nil {
		return nil, err
	}
	return trees, nil
}
