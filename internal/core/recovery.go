package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
)

// CheckpointMeta is the recovery anchor: the root page of every table's
// checkpoint image plus the log positions recovery replays from. Figure 4
// keeps "log sync & recovery" in software; this is that box. On a sharded
// log the start position is a vector, one entry per shard; StartLSN remains
// shard 0's entry for single-shard callers.
type CheckpointMeta struct {
	Roots     map[uint16]storage.PageID
	StartLSN  wal.LSN
	StartLSNs []wal.LSN

	// SocketRoots is the per-socket root map of an engine-sharded
	// checkpoint (socket-indexed; every socket owns a disjoint key range of
	// every table). Nil for the classic single-tree-per-table layout, whose
	// anchor stays in Roots — old metas recover exactly as before.
	SocketRoots []map[uint16]storage.PageID
}

// startLSN returns the replay start position for shard.
func (m CheckpointMeta) startLSN(shard int) wal.LSN {
	if shard < len(m.StartLSNs) {
		return m.StartLSNs[shard]
	}
	if shard == 0 {
		return m.StartLSN
	}
	return 0
}

// Checkpoint writes every table's pages durably through dm and anchors
// recovery at the single log's current durable point. The engine must be
// quiesced (no active transactions): bionicdb checkpoints are sharp, not
// fuzzy.
func Checkpoint(p *sim.Proc, tables map[uint16]*btree.Tree, dm *storage.DiskManager, log *wal.Store) CheckpointMeta {
	meta := checkpointPages(p, tables, dm)
	meta.StartLSN = log.Durable()
	meta.StartLSNs = []wal.LSN{meta.StartLSN}
	return meta
}

// CheckpointAll is Checkpoint over a sharded log: the recovery anchor is
// the per-shard start-LSN vector of every shard's durable point.
func CheckpointAll(p *sim.Proc, tables map[uint16]*btree.Tree, dm *storage.DiskManager, ls *wal.LogSet) CheckpointMeta {
	meta := checkpointPages(p, tables, dm)
	meta.StartLSNs = ls.StartLSNs()
	meta.StartLSN = meta.StartLSNs[0]
	return meta
}

// CheckpointAllSets is CheckpointAll over socket-indexed tree sets (the
// engine-sharded layout). A single-set slice produces exactly the classic
// meta; multiple sets anchor each socket's roots in SocketRoots. Page IDs
// are globally unique across sockets, so every set shares one page store.
func CheckpointAllSets(p *sim.Proc, sets []map[uint16]*btree.Tree, dm *storage.DiskManager, ls *wal.LogSet) CheckpointMeta {
	if len(sets) == 1 {
		return CheckpointAll(p, sets[0], dm, ls)
	}
	meta := CheckpointMeta{SocketRoots: make([]map[uint16]storage.PageID, len(sets))}
	for s, set := range sets {
		meta.SocketRoots[s] = checkpointPages(p, set, dm).Roots
	}
	meta.Roots = meta.SocketRoots[0]
	meta.StartLSNs = ls.StartLSNs()
	meta.StartLSN = meta.StartLSNs[0]
	return meta
}

// CheckpointAllSetsHost is CheckpointAllSets split at the device boundary.
// Page capture runs entirely host-side — no simulated charges — so it is
// legal at a kernel barrier, where no shard is executing; an engine-sharded
// machine has no single process allowed to walk every socket's trees, so
// its crash harness checkpoints there. The returned spans are the bulk
// transfers the in-simulation path would have charged (one per table per
// set, in capture order); the caller replays them on the checkpoint device
// from a process of its choosing.
func CheckpointAllSetsHost(sets []map[uint16]*btree.Tree, dm *storage.DiskManager, ls *wal.LogSet) (CheckpointMeta, []int) {
	meta := CheckpointMeta{SocketRoots: make([]map[uint16]storage.PageID, len(sets))}
	var spans []int
	for s, set := range sets {
		roots := make(map[uint16]storage.PageID, len(set))
		for _, id := range sortedKeys(set) {
			tree := set[id]
			roots[id] = tree.RootID()
			written := 0
			tree.Checkpoint(func(pid storage.PageID, img []byte) {
				dm.Store(pid, img)
				written += dm.SpanBytes(len(img))
			})
			spans = append(spans, written)
		}
		meta.SocketRoots[s] = roots
	}
	meta.Roots = meta.SocketRoots[0]
	meta.StartLSNs = ls.StartLSNs()
	meta.StartLSN = meta.StartLSNs[0]
	return meta, spans
}

func checkpointPages(p *sim.Proc, tables map[uint16]*btree.Tree, dm *storage.DiskManager) CheckpointMeta {
	meta := CheckpointMeta{Roots: make(map[uint16]storage.PageID)}
	ids := make([]int, 0, len(tables))
	for id := range tables {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	// A sharp checkpoint streams: pages are written sequentially, so the
	// device is charged one bulk transfer per table, not one seek per page.
	for _, id := range ids {
		tree := tables[uint16(id)]
		meta.Roots[uint16(id)] = tree.RootID()
		written := 0
		tree.Checkpoint(func(pid storage.PageID, img []byte) {
			dm.Store(pid, img)
			written += dm.SpanBytes(len(img))
		})
		dm.Device().Transfer(p, written)
	}
	return meta
}

// scanCommits collects every commit record in one shard's log after start:
// the transaction ids and, for cross-shard commits, their durability
// vectors.
func scanCommits(data []byte, start wal.LSN, out map[uint64][]wal.ShardLSN) error {
	return wal.Scan(data, start, func(r wal.Record) bool {
		if r.Type == wal.RecCommit {
			if len(r.After) > 0 {
				vec, err := wal.DecodeShardVec(r.After)
				if err != nil {
					return true // malformed vector: unverifiable, not committed
				}
				out[r.Txn] = vec
			} else {
				out[r.Txn] = nil // single-shard commit: no vector needed
			}
		}
		return true
	})
}

// committedSet merges per-shard commit scans into the set of transactions
// recovery may replay. A cross-shard commit qualifies only if every entry
// of its durability vector survived the crash — the commit was never
// acknowledged otherwise, so dropping it is exactly what the client
// observed. Single-shard commits carry no vector: the commit record's own
// presence already orders it after the transaction's data on that shard.
func committedSet(perShard []map[uint64][]wal.ShardLSN, durable []wal.LSN) map[uint64]bool {
	committed := make(map[uint64]bool)
	for _, m := range perShard {
		for txn, vec := range m {
			ok := true
			for _, e := range vec {
				if e.Shard >= len(durable) || e.LSN > durable[e.Shard] {
					ok = false
					break
				}
			}
			if ok {
				committed[txn] = true
			}
		}
	}
	return committed
}

// applyShard replays one shard's committed data records, in shard-log
// order, into trees. Record fields are views into the log bytes, so images
// are copied before installation.
func applyShard(trees map[uint16]*btree.Tree, data []byte, start wal.LSN, committed map[uint64]bool) (records int64, err error) {
	err = wal.Scan(data, start, func(r wal.Record) bool {
		if !committed[r.Txn] {
			return true
		}
		tree, ok := trees[r.Table]
		if !ok {
			return true // table not part of this recovery set
		}
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate:
			key := append([]byte(nil), r.Key...)
			val := append([]byte(nil), r.After...)
			tree.Put(key, val, nil)
			records++
		case wal.RecDelete:
			tree.Delete(r.Key, nil)
			records++
		}
		return true
	})
	return records, err
}

// rootSets returns the checkpoint's root maps as a slice: the per-socket
// sets of an engine-sharded checkpoint, or the single classic map.
func (m CheckpointMeta) rootSets() []map[uint16]storage.PageID {
	if m.SocketRoots != nil {
		return m.SocketRoots
	}
	return []map[uint16]storage.PageID{m.Roots}
}

// loadTreeSets rebuilds every table of every root set from its checkpoint
// image.
func loadTreeSets(p *sim.Proc, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager) ([]map[uint16]*btree.Tree, error) {
	rootSets := meta.rootSets()
	sets := make([]map[uint16]*btree.Tree, len(rootSets))
	for s, roots := range rootSets {
		trees := make(map[uint16]*btree.Tree, len(defs))
		for _, def := range defs {
			tree, err := btree.Load(btree.Config{Order: def.Order}, roots[def.ID],
				func(id storage.PageID) []byte { return dm.Read(p, id) })
			if err != nil {
				return nil, err
			}
			trees[def.ID] = tree
		}
		sets[s] = trees
	}
	return sets, nil
}

// Recover rebuilds every table from its checkpoint image and replays the
// logical logs: committed transactions' data records after the per-shard
// start positions are applied in shard-log order, shard by shard; records
// of transactions without a (vector-complete) commit record are ignored
// (runtime aborts rolled back in memory, so redo-only logical recovery
// suffices). Pass one log for the classic central stream or one per shard
// for a sharded set. Shards hold disjoint key sets — data-oriented routing
// sends every record for a key to that key's home socket — so the merged
// state is independent of shard order. It returns the recovered trees
// keyed by table id.
func Recover(p *sim.Proc, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager, logs ...[]byte) (map[uint16]*btree.Tree, error) {
	if meta.SocketRoots != nil {
		return nil, fmt.Errorf("core: engine-sharded checkpoint; use RecoverSets")
	}
	sets, err := RecoverSets(p, defs, meta, dm, logs...)
	if err != nil {
		return nil, err
	}
	return sets[0], nil
}

// RecoverSets is Recover for either checkpoint layout. It returns the
// recovered socket-indexed tree sets: one set per socket for an
// engine-sharded checkpoint (shard s replays into socket s's set — the
// shard's keys are exactly that socket's), or a single-element slice for
// the classic layout.
func RecoverSets(p *sim.Proc, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager, logs ...[]byte) ([]map[uint16]*btree.Tree, error) {
	sets, err := loadTreeSets(p, defs, meta, dm)
	if err != nil {
		return nil, err
	}
	setFor := func(s int) map[uint16]*btree.Tree {
		if len(sets) > 1 {
			return sets[s]
		}
		return sets[0]
	}
	// Pass 1: which transactions committed, with complete vectors?
	perShard := make([]map[uint64][]wal.ShardLSN, len(logs))
	durable := make([]wal.LSN, len(logs))
	for s, data := range logs {
		perShard[s] = make(map[uint64][]wal.ShardLSN)
		durable[s] = wal.LSN(len(data))
		if err := scanCommits(data, meta.startLSN(s), perShard[s]); err != nil {
			return nil, err
		}
	}
	committed := committedSet(perShard, durable)
	// Pass 2: redo committed work, shard by shard in log order.
	for s, data := range logs {
		if _, err := applyShard(setFor(s), data, meta.startLSN(s), committed); err != nil {
			return nil, err
		}
	}
	return sets, nil
}

// ContentDigest folds a table set's full key/value content into one
// SHA-256 hex string, in (table, key) order. Two recoveries are equivalent
// iff their digests match — the identity the crash tests pin serial and
// parallel replay to, independent of tree page layout.
func ContentDigest(trees map[uint16]*btree.Tree) string {
	h := sha256.New()
	var b4 [4]byte
	ids := make([]int, 0, len(trees))
	for id := range trees {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		binary.LittleEndian.PutUint32(b4[:], uint32(id))
		h.Write(b4[:])
		trees[uint16(id)].Scan(nil, nil, nil, func(k, v []byte) bool {
			binary.LittleEndian.PutUint32(b4[:], uint32(len(k)))
			h.Write(b4[:])
			h.Write(k)
			binary.LittleEndian.PutUint32(b4[:], uint32(len(v)))
			h.Write(b4[:])
			h.Write(v)
			return true
		})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ContentDigestSets is ContentDigest over socket-indexed tree sets: rows
// of every set merge into one (table, key) order before hashing, so the
// digest of an engine-sharded state is comparable with (and formatted
// identically to) the single-tree digest of the same content.
func ContentDigestSets(sets []map[uint16]*btree.Tree) string {
	if len(sets) == 1 {
		return ContentDigest(sets[0])
	}
	h := sha256.New()
	var b4 [4]byte
	for _, id := range sortedKeys(sets[0]) {
		binary.LittleEndian.PutUint32(b4[:], uint32(id))
		h.Write(b4[:])
		var rows []kvPair
		for _, set := range sets {
			set[id].Scan(nil, nil, nil, func(k, v []byte) bool {
				rows = append(rows, kvPair{append([]byte(nil), k...), append([]byte(nil), v...)})
				return true
			})
		}
		sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].k, rows[j].k) < 0 })
		for _, r := range rows {
			binary.LittleEndian.PutUint32(b4[:], uint32(len(r.k)))
			h.Write(b4[:])
			h.Write(r.k)
			binary.LittleEndian.PutUint32(b4[:], uint32(len(r.v)))
			h.Write(b4[:])
			h.Write(r.v)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// RecoveryStats describes one measured recovery: how much log was replayed
// and where the boot's simulated time went. Restore is the checkpoint-image
// scan — sequential bandwidth on the one checkpoint device, the floor no
// amount of sharding lowers; Replay is the log work the sharded subsystem
// parallelizes across sockets.
type RecoveryStats struct {
	Shards   int
	LogBytes int64 // bytes scanned across all shards (after the start vector)
	Records  int64 // committed data records replayed
	Txns     int64 // committed transactions replayed
	Restore  sim.Duration
	Replay   sim.Duration
	SimTime  sim.Duration
}

// Modeled replay costs (CPU-bound log work; device time comes from the
// per-shard log read and the checkpoint page reads).
const (
	recScanInstrPerRec  = 60  // pass-1 record decode + commit-table probe
	recApplyInstrPerRec = 450 // pass-2 redo dispatch + tree maintenance
)

const recInstrPerByte = 0.25 // per-byte decode/copy cost, both passes

// RecoverMeasured is Recover under the machine's cost model: each shard's
// log is read from its socket's log device and its records are scanned and
// replayed on that socket's cores, with one recovery process per shard when
// parallel is true (the sharded subsystem's parallel-recovery path) or a
// single process walking the shards in order when false. Parallel replay is
// safe because shards hold disjoint key sets; the recovered content is
// identical to serial replay (tree page layout may differ — ingestion
// order across tables interleaves — but every table's key/value state is
// the same). The caller's process drives the phases and observes the
// completion; pl must be a freshly-booted platform matching the crashed
// machine's config.
func RecoverMeasured(p *sim.Proc, pl *platform.Platform, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager, logs [][]byte, parallel bool) ([]map[uint16]*btree.Tree, RecoveryStats, error) {
	start := p.Now()
	st := RecoveryStats{Shards: len(logs)}
	// Checkpoint restore: load the page images without per-page charges and
	// pay for them as one sequential scan of the checkpoint file — how a
	// boot actually reads it — instead of a random seek per page.
	restored := 0
	rootSets := meta.rootSets()
	sets := make([]map[uint16]*btree.Tree, len(rootSets))
	for s, roots := range rootSets {
		trees := make(map[uint16]*btree.Tree, len(defs))
		for _, def := range defs {
			tree, err := btree.Load(btree.Config{Order: def.Order}, roots[def.ID],
				func(id storage.PageID) []byte {
					img := dm.ReadRaw(id)
					restored += dm.SpanBytes(len(img))
					return img
				})
			if err != nil {
				return nil, st, err
			}
			trees[def.ID] = tree
		}
		sets[s] = trees
	}
	setFor := func(s int) map[uint16]*btree.Tree {
		if len(sets) > 1 {
			return sets[s]
		}
		return sets[0]
	}
	dm.Device().Transfer(p, restored)
	st.Restore = p.Now().Sub(start)

	// shardCore pins shard s's recovery work to its socket's first core
	// (socket-indexed shards; a single central log recovers on core 0).
	shardCore := func(s int) *platform.Core {
		if len(logs) > 1 && s < len(pl.Sockets) {
			return pl.Sockets[s].Cores[0]
		}
		return pl.Cores[0]
	}
	perShard := make([]map[uint64][]wal.ShardLSN, len(logs))
	durable := make([]wal.LSN, len(logs))
	var firstErr error
	noteErr := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Phase 1 per shard: read the shard's log from its device and scan for
	// commit records, charging the scan on the shard's socket.
	analyze := func(ps *sim.Proc, s int) {
		data := logs[s]
		tail := len(data) - int(meta.startLSN(s))
		if tail < 0 {
			tail = 0
		}
		pl.LogSSD(s).Transfer(ps, tail)
		task := pl.NewTask(ps, shardCore(s), nil)
		perShard[s] = make(map[uint64][]wal.ShardLSN)
		durable[s] = wal.LSN(len(data))
		noteErr(scanCommits(data, meta.startLSN(s), perShard[s]))
		task.Exec(stats.CompLog, len(perShard[s])*recScanInstrPerRec+int(float64(tail)*recInstrPerByte))
		task.Flush()
		st.LogBytes += int64(tail)
	}
	// Phase 2 per shard: replay the shard's committed records on its socket.
	var committed map[uint64]bool
	replay := func(ps *sim.Proc, s int) {
		task := pl.NewTask(ps, shardCore(s), nil)
		n, err := applyShard(setFor(s), logs[s], meta.startLSN(s), committed)
		noteErr(err)
		tail := len(logs[s]) - int(meta.startLSN(s))
		if tail < 0 {
			tail = 0
		}
		task.Exec(stats.CompLog, int(n)*recApplyInstrPerRec+int(float64(tail)*recInstrPerByte))
		task.Flush()
		st.Records += n
	}

	runPhase := func(fn func(ps *sim.Proc, s int)) {
		if !parallel || len(logs) == 1 {
			for s := range logs {
				fn(p, s)
			}
			return
		}
		done := sim.NewSignal(p.Env())
		remaining := len(logs)
		for s := range logs {
			s := s
			p.Env().Spawn(fmt.Sprintf("recover-shard%d", s), func(ps *sim.Proc) {
				fn(ps, s)
				remaining--
				if remaining == 0 {
					done.Fire(nil)
				}
			})
		}
		done.Await(p)
	}

	runPhase(analyze)
	if firstErr != nil {
		return nil, st, firstErr
	}
	committed = committedSet(perShard, durable)
	st.Txns = int64(len(committed))
	runPhase(replay)
	if firstErr != nil {
		return nil, st, firstErr
	}
	st.SimTime = p.Now().Sub(start)
	st.Replay = st.SimTime - st.Restore
	return sets, st, nil
}
