// Package core composes the substrates into the three engines the
// experiments compare: Conventional (shared-everything 2PL), DORA (the
// Figure 3 software baseline) and Bionic (DORA plus any subset of the
// paper's four hardware offloads), together with the workload harness that
// produces throughput, joules/transaction, latency and Figure 3 component
// breakdowns from one run.
//
// All three engines run unchanged on a multi-socket platform
// (platform.Config.Sockets > 1). The DORA engines shard their partitions
// across sockets and commit transactions that span sockets through an
// RVP-based cross-shard decision round (socket-local transactions pay
// single-machine costs); the conventional engine stays shared-everything
// and pays a NUMA round trip to its socket-0 lock table from every other
// socket.
package core

// TableDef declares one table: an index-organized primary B+Tree. Secondary
// indexes are ordinary tables whose values are primary keys.
type TableDef struct {
	ID    uint16
	Name  string
	Order int // B+Tree order; 0 uses the btree default
}

// PartitionScheme tells the DORA engines how to route and isolate work.
// Workloads provide one (TATP partitions by subscriber, TPC-C by
// warehouse).
type PartitionScheme struct {
	// Partitions is the number of logical partitions (one worker each).
	Partitions int
	// Route maps a table and key to a partition in [0, Partitions).
	Route func(table uint16, key []byte) int
	// Entity names the local-lock entity for a key ("" = no entity lock).
	// Entities are the DORA isolation granule: the district in TPC-C, the
	// subscriber in TATP.
	Entity func(table uint16, key []byte) string
}

// HashScheme returns a generic scheme: route by hash of the first eight key
// bytes, entity = whole key. Workload-specific schemes colocate related
// rows instead.
func HashScheme(n int) PartitionScheme {
	return PartitionScheme{
		Partitions: n,
		Route: func(table uint16, key []byte) int {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(key) && i < 8; i++ {
				h ^= uint64(key[i])
				h *= 1099511628211
			}
			return int(h % uint64(n))
		},
		Entity: func(table uint16, key []byte) string {
			return string(key)
		},
	}
}

// Offloads selects which hardware units a Bionic engine uses; the zero
// value is pure software (the DORA baseline). The C2 ablation sweeps these.
type Offloads struct {
	Tree    bool // §5.3 hardware tree-probe engine
	Log     bool // §5.4 hardware log insertion
	Queue   bool // §5.5 hardware queue management
	Overlay bool // §5.6 overlay database instead of the buffer pool
}

// All returns every offload enabled — the full bionic configuration.
func AllOffloads() Offloads { return Offloads{Tree: true, Log: true, Queue: true, Overlay: true} }

// Any reports whether at least one offload is enabled.
func (o Offloads) Any() bool { return o.Tree || o.Log || o.Queue || o.Overlay }

// String names the configuration for tables and ablation rows.
func (o Offloads) String() string {
	if !o.Any() {
		return "none"
	}
	s := ""
	add := func(on bool, name string) {
		if on {
			if s != "" {
				s += "+"
			}
			s += name
		}
	}
	add(o.Tree, "tree")
	add(o.Log, "log")
	add(o.Queue, "queue")
	add(o.Overlay, "overlay")
	return s
}
