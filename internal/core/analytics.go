package core

import (
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Analytics is the attachment point for a hybrid (HTAP) run's analytical
// half. When RunConfig.Analytics is set, Run calls Attach once, after the
// engine is populated and warmed but before any terminal exists, on a
// private random stream split from the run's root — so a pure-OLTP run
// (nil Analytics) consumes exactly the random numbers and schedules exactly
// the events it always did.
//
// Attach builds the analytical subsystem around the live engine: columnar
// projections of the row store, their maintenance path (merge-fed on an
// overlay engine, a refresh daemon elsewhere), and the scan machinery. It
// may spawn daemon processes immediately; scan clients wait for Start.
type Analytics interface {
	Attach(env *sim.Env, eng Engine, r *sim.Rand) AnalyticsRun
}

// AnalyticsRun is one run's attached analytical subsystem.
type AnalyticsRun interface {
	// Start spawns the analytical scan clients. They must stop issuing new
	// scans once *stop is true (the same flag the OLTP terminals watch).
	Start(stop *bool)
	// Snapshot returns the cumulative scan statistics; the harness windows
	// them like every other metric.
	Snapshot() stats.ScanStats
	// Close quiesces analytical daemons. It is called after the drain,
	// before the engine closes.
	Close()
}
