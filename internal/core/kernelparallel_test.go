package core

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
)

// TestKernelParallelMatchesSerial pins the kernel-selection contract at the
// harness level: RunConfig.KernelParallel changes host execution only, so
// every measured quantity — commits, latency shape, energy, component
// breakdown, even the kernel event count — is bit-identical to the serial
// kernel at every socket count. This test (and the engine paths it drives)
// is what the -race CI job runs with the parallel kernel enabled.
func TestKernelParallelMatchesSerial(t *testing.T) {
	for _, sockets := range []int{1, 2, 4} {
		run := func(parallel bool) *Result {
			cfg := RunConfig{
				Terminals: 4 * sockets,
				Warmup:    sim.Millisecond, Measure: 5 * sim.Millisecond,
				Seed:           11,
				KernelParallel: parallel,
			}
			res, err := Run(cfg, kvWorkload{}, func(env *sim.Env) Engine {
				return NewDORA(env, platform.HC2Scaled(sockets), kvTables(), HashScheme(8*sockets))
			})
			if err != nil {
				t.Fatalf("x%d parallel=%v: %v", sockets, parallel, err)
			}
			return res
		}
		serial, par := run(false), run(true)
		if serial.Commits != par.Commits || serial.Aborts != par.Aborts {
			t.Errorf("x%d: commit/abort counts diverge: %d/%d vs %d/%d",
				sockets, serial.Commits, serial.Aborts, par.Commits, par.Aborts)
		}
		if serial.TPS != par.TPS {
			t.Errorf("x%d: tps diverges: %v vs %v", sockets, serial.TPS, par.TPS)
		}
		if serial.JoulesPerTxn != par.JoulesPerTxn {
			t.Errorf("x%d: joules/txn diverges: %v vs %v", sockets, serial.JoulesPerTxn, par.JoulesPerTxn)
		}
		if serial.BD.Total() != par.BD.Total() {
			t.Errorf("x%d: breakdowns diverge: %v vs %v", sockets, serial.BD.Total(), par.BD.Total())
		}
		for _, pct := range []float64{50, 95, 99} {
			if s, p := serial.Latency.Percentile(pct), par.Latency.Percentile(pct); s != p {
				t.Errorf("x%d: p%.0f diverges: %v vs %v", sockets, pct, s, p)
			}
		}
		if serial.Events != par.Events {
			t.Errorf("x%d: kernel event counts diverge: %d vs %d", sockets, serial.Events, par.Events)
		}
		if serial.Events == 0 {
			t.Errorf("x%d: no kernel events recorded", sockets)
		}
	}
}
