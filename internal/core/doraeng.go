package core

import (
	"bytes"
	"sort"

	"bionicdb/internal/btree"
	"bionicdb/internal/bufferpool"
	"bionicdb/internal/dora"
	"bionicdb/internal/hw/logengine"
	"bionicdb/internal/hw/overlay"
	"bionicdb/internal/hw/queueengine"
	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/txn"
	"bionicdb/internal/wal"
)

// DORAEngine is the data-oriented engine: logical partitions, per-partition
// workers, RVPs, entity locks. With no offloads it is the Figure 3 software
// baseline; Offloads layer the paper's hardware units on top, turning it
// into the bionic engine of Figure 4.
type DORAEngine struct {
	name   string
	pl     *platform.Platform
	defs   map[uint16]TableDef
	scheme PartitionScheme
	off    Offloads
	window int

	// Software data path (Overlay off).
	trees map[uint16]*btree.Tree
	pool  *bufferpool.Pool

	// Engine-on-shard state (engineSharded true): every engine-side
	// structure a partition worker touches is replicated per socket and
	// homed on that socket's kernel shard, so the parallel kernel can run
	// the sockets concurrently. Socket-indexed throughout.
	engineSharded bool
	nSock         int
	treeSets      []map[uint16]*btree.Tree
	pools         []*bufferpool.Pool
	regs          []*dora.Registry
	bds           []*stats.Breakdown
	ctrs          []*stats.Counter
	tracesBy      []btree.TracePool
	kvsBy         []sim.ScratchPool[kvPair]

	// Hardware data path (Overlay on).
	ov    *overlay.Store
	probe *treeprobe.Engine

	qeng *queueengine.Engine

	reg   *dora.Registry
	parts []*dora.Partition

	tm      *txn.Manager
	logSet  *wal.LogSet
	logMgrs []*wal.Manager      // per-shard software managers (Log offload off)
	hwLogs  []*logengine.Engine // per-shard hardware engines (Log offload on)
	sharded bool                // more than one log shard (cfg.ShardedLog())
	dm      *storage.DiskManager

	bd     *stats.Breakdown
	ctr    *stats.Counter
	traces btree.TracePool
	kvs    sim.ScratchPool[kvPair]
}

// NewDORA builds the software data-oriented baseline (window 1, no
// offloads).
func NewDORA(env *sim.Env, cfg *platform.Config, tables []TableDef, scheme PartitionScheme) *DORAEngine {
	return newDataOriented(env, cfg, tables, scheme, Offloads{}, 1, "dora")
}

// NewBionic builds the bionic engine: DORA plus the selected hardware
// offloads and an in-flight window per partition so asynchronous hardware
// requests overlap.
func NewBionic(env *sim.Env, cfg *platform.Config, tables []TableDef, scheme PartitionScheme, off Offloads, window int) *DORAEngine {
	name := "bionic[" + off.String() + "]"
	if window < 1 {
		window = 8
	}
	return newDataOriented(env, cfg, tables, scheme, off, window, name)
}

func newDataOriented(env *sim.Env, cfg *platform.Config, tables []TableDef, scheme PartitionScheme, off Offloads, window int, name string) *DORAEngine {
	pl := platform.New(env, cfg)
	e := &DORAEngine{
		name:   name,
		pl:     pl,
		defs:   make(map[uint16]TableDef),
		scheme: scheme,
		off:    off,
		window: window,
		reg:    dora.NewRegistry(),
		bd:     &stats.Breakdown{},
		ctr:    stats.NewCounter(),
	}
	e.dm = storage.NewDiskManager(pl.Disk, cfg.PageSize)
	// Durable log: one shard per socket when the machine shards its log
	// (per-socket managers or hardware engine shards, each on its own
	// device), otherwise the classic single central stream — structurally
	// identical to the pre-sharding engine.
	e.sharded = cfg.ShardedLog()
	// Engine-on-shard gate: the pure-software data-oriented engine on a
	// multi-socket machine with a per-socket log and no replication homes
	// each socket's partitions, trees, pool, locks and log shard on that
	// socket's kernel shard. The gate is a pure function of the config, so
	// it is active identically under serial and concurrent execution —
	// which is what keeps serial and parallel digests bit-identical. Every
	// other configuration keeps the classic shard-0 layout untouched.
	e.engineSharded = e.sharded && pl.NumSockets() > 1 && off == (Offloads{}) &&
		window == 1 && !cfg.Replicated()
	if e.engineSharded {
		e.nSock = pl.NumSockets()
		pl.Confine()
	}
	nShards := 1
	if e.sharded {
		nShards = pl.NumSockets()
	}
	shards := make([]wal.LogShard, nShards)
	for s := 0; s < nShards; s++ {
		st := wal.NewStore(pl.LogSSD(s))
		var app wal.Appender
		if off.Log {
			var hw *logengine.Engine
			if e.sharded {
				hw = logengine.NewShard(pl, st, logengine.DefaultConfig(), s)
			} else {
				hw = logengine.New(pl, st, logengine.DefaultConfig())
			}
			e.hwLogs = append(e.hwLogs, hw)
			app = hw
		} else {
			var m *wal.Manager
			if e.engineSharded {
				m = wal.NewManagerOn(pl, st, wal.DefaultManagerConfig(), s)
			} else {
				m = wal.NewManager(pl, st, wal.DefaultManagerConfig())
			}
			e.logMgrs = append(e.logMgrs, m)
			app = m
		}
		shards[s] = wal.LogShard{App: app, Store: st, Socket: s}
	}
	e.logSet = wal.NewLogSet(pl, shards)
	if cfg.Replicated() {
		e.logSet.AttachReplication(wal.NewReplicaSet(e.logSet))
	}
	if e.engineSharded {
		e.logSet.Confine()
	}
	e.tm = txn.NewManager(env, e.logSet, txn.DefaultConfig())
	if e.engineSharded {
		e.tm.ShardPerSocket(e.nSock)
	}

	if off.Overlay || off.Tree {
		e.probe = treeprobe.New(pl, treeprobe.DefaultConfig())
	}
	if off.Overlay {
		e.ov = overlay.New(pl, e.probe, overlay.DefaultConfig())
		for _, def := range tables {
			e.defs[def.ID] = def
			e.ov.CreateTable(def.ID, def.Order)
		}
	} else if e.engineSharded {
		// One tree set, pool, waits-for registry, breakdown, counter and
		// scratch pool per socket. Page IDs stride by socket (one shared
		// allocator per socket across its tables) so they stay globally
		// unique without a shared counter; node addresses come from the
		// socket's private arena.
		e.treeSets = make([]map[uint16]*btree.Tree, e.nSock)
		e.pools = make([]*bufferpool.Pool, e.nSock)
		e.regs = make([]*dora.Registry, e.nSock)
		e.bds = make([]*stats.Breakdown, e.nSock)
		e.ctrs = make([]*stats.Counter, e.nSock)
		e.tracesBy = make([]btree.TracePool, e.nSock)
		e.kvsBy = make([]sim.ScratchPool[kvPair], e.nSock)
		for s := 0; s < e.nSock; s++ {
			s := s
			e.pools[s] = bufferpool.New(pl, pl.DataDisk(s), bufferpool.DefaultConfig(1<<18, cfg.PageSize)).Confine(pl.ShardOf(s))
			e.regs[s] = dora.NewRegistry()
			e.bds[s] = &stats.Breakdown{}
			e.ctrs[s] = stats.NewCounter()
			alloc := e.dm.AllocatorOn(s, e.nSock)
			set := make(map[uint16]*btree.Tree, len(tables))
			for _, def := range tables {
				def := def
				e.defs[def.ID] = def
				set[def.ID] = btree.New(btree.Config{
					Order:  def.Order,
					NextID: alloc,
					AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocHostOn(s, cfg.PageSize) },
				})
			}
			e.treeSets[s] = set
		}
	} else {
		e.pool = bufferpool.New(pl, pl.Disk, bufferpool.DefaultConfig(1<<18, cfg.PageSize))
		e.trees = make(map[uint16]*btree.Tree)
		for _, def := range tables {
			def := def
			e.defs[def.ID] = def
			e.trees[def.ID] = btree.New(btree.Config{
				Order:  def.Order,
				NextID: e.dm.Allocate,
				AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocHost(cfg.PageSize) },
			})
		}
	}

	if off.Queue {
		e.qeng = queueengine.New(pl, queueengine.DefaultConfig())
	}
	// Partition placement: round-robin over the flat core list, which
	// blocks consecutive partitions onto consecutive sockets (cores are
	// listed socket 0 first). With partitions == total cores, partition i
	// owns core i and socket i/CoresPerSocket — the shard layout the
	// cross-shard commit path and the scaling sweep assume.
	for i := 0; i < scheme.Partitions; i++ {
		core := pl.Cores[i%len(pl.Cores)]
		reg, bd := e.reg, e.bd
		if e.engineSharded {
			reg, bd = e.regs[core.SocketID()], e.bds[core.SocketID()]
		}
		pt := dora.NewPartition(pl, reg, i, core, dora.DefaultCosts(), window, bd)
		if e.qeng != nil {
			pt.HWQueue = e.qeng.Unit
			pt.HWQueueCycles = e.qeng.OpCycles()
		}
		if e.engineSharded {
			pt.Confine()
		}
		pt.Start()
		e.parts = append(e.parts, pt)
	}
	return e
}

// EngineSharded reports whether the engine homes its per-socket state on
// the kernel shards (the engine-on-shard execution mode).
func (e *DORAEngine) EngineSharded() bool { return e.engineSharded }

// Name implements Engine.
func (e *DORAEngine) Name() string { return e.name }

// Platform implements Engine.
func (e *DORAEngine) Platform() *platform.Platform { return e.pl }

// Breakdown implements Engine. On an engine-sharded run it returns a fresh
// merge of the per-socket breakdowns, summed in socket order; callers
// snapshot the value, so the fresh allocation is invisible to them.
func (e *DORAEngine) Breakdown() *stats.Breakdown {
	if !e.engineSharded {
		return e.bd
	}
	out := &stats.Breakdown{}
	out.AddAll(e.bd)
	for _, bd := range e.bds {
		out.AddAll(bd)
	}
	return out
}

// Counters implements Engine. Engine-sharded runs merge the per-socket
// counters in socket order.
func (e *DORAEngine) Counters() *stats.Counter {
	if !e.engineSharded {
		return e.ctr
	}
	out := stats.NewCounter()
	for _, name := range e.ctr.Names() {
		out.Inc(name, e.ctr.Get(name))
	}
	for _, c := range e.ctrs {
		for _, name := range c.Names() {
			out.Inc(name, c.Get(name))
		}
	}
	return out
}

// Offloads reports the enabled hardware units.
func (e *DORAEngine) Offloads() Offloads { return e.off }

// Overlay exposes the overlay store (nil when the offload is off).
func (e *DORAEngine) Overlay() *overlay.Store { return e.ov }

// ProbeEngine exposes the tree-probe unit (nil when unused).
func (e *DORAEngine) ProbeEngine() *treeprobe.Engine { return e.probe }

// LogStore exposes shard 0's durable log (the whole log on a non-sharded
// engine); sharded recovery goes through LogSet.
func (e *DORAEngine) LogStore() *wal.Store { return e.logSet.Store(0) }

// LogSet exposes the full sharded log for checkpointing and recovery.
func (e *DORAEngine) LogSet() *wal.LogSet { return e.logSet }

// LogStats reports per-shard log activity (bytes, syncs, epochs).
func (e *DORAEngine) LogStats() []stats.LogShardStats { return e.logSet.Stats() }

// Replicator exposes the log-shipping machinery (nil when unreplicated).
func (e *DORAEngine) Replicator() *wal.ReplicaSet { return e.logSet.Replication() }

// ReplStats reports per-shard log-shipping activity; nil when unreplicated.
func (e *DORAEngine) ReplStats() []stats.ReplicationStats {
	if rs := e.logSet.Replication(); rs != nil {
		return rs.Stats()
	}
	return nil
}

// DiskManager exposes the checkpoint page store.
func (e *DORAEngine) DiskManager() *storage.DiskManager { return e.dm }

// Tables exposes the primary trees for checkpointing (overlay or host). An
// engine-sharded engine has no single tree per table; use TableSets.
func (e *DORAEngine) Tables() map[uint16]*btree.Tree {
	if e.engineSharded {
		panic("core: Tables() on an engine-sharded engine; use TableSets")
	}
	if e.ov == nil {
		return e.trees
	}
	out := make(map[uint16]*btree.Tree, len(e.defs))
	for id := range e.defs {
		out[id] = e.ov.TableByID(id).Tree
	}
	return out
}

// TableSets exposes the socket-indexed tree sets of an engine-sharded
// engine. On any other engine it returns the single table set at index 0.
func (e *DORAEngine) TableSets() []map[uint16]*btree.Tree {
	if e.engineSharded {
		return e.treeSets
	}
	return []map[uint16]*btree.Tree{e.Tables()}
}

// socketOf returns the socket owning table/key's partition.
func (e *DORAEngine) socketOf(table uint16, key []byte) int {
	return e.parts[e.scheme.Route(table, key)].Socket()
}

// Registry exposes the waits-for registry (deadlock statistics).
func (e *DORAEngine) Registry() *dora.Registry { return e.reg }

// Warm marks every tree page buffer-pool resident (software data path; the
// overlay is resident by construction). The harness calls it after
// population so measurements start from a warm cache.
func (e *DORAEngine) Warm() {
	if e.engineSharded {
		for s, set := range e.treeSets {
			pool := e.pools[s]
			for _, id := range sortedKeys(set) {
				set[id].Pages(func(id storage.PageID, leaf bool) { pool.Prewarm(id) })
			}
		}
		return
	}
	if e.pool == nil {
		return
	}
	for _, id := range sortedKeys(e.trees) {
		e.trees[id].Pages(func(id storage.PageID, leaf bool) { e.pool.Prewarm(id) })
	}
}

// sortedKeys returns a map's keys in ascending order. Simulation-visible
// iteration must never follow Go's randomized map order: the event
// schedule it produces has to be a pure function of the seed, or runs stop
// being reproducible and parallel sweeps stop matching serial ones.
func sortedKeys[K interface {
	~int | ~uint16 | ~uint64
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Load implements Engine. Engine-sharded engines route each row to its
// owning partition's socket tree.
func (e *DORAEngine) Load(table uint16, key, val []byte) {
	if e.engineSharded {
		e.treeSets[e.socketOf(table, key)][table].Put(key, val, nil)
		return
	}
	if e.ov != nil {
		e.ov.LoadRaw(table, key, val)
		return
	}
	e.trees[table].Put(key, val, nil)
}

// ReadRaw implements Engine.
func (e *DORAEngine) ReadRaw(table uint16, key []byte) ([]byte, bool) {
	if e.engineSharded {
		return e.treeSets[e.socketOf(table, key)][table].Get(key, nil)
	}
	return e.Tables()[table].Get(key, nil)
}

// ScanRaw implements Engine. An engine-sharded engine's rows are spread
// over disjoint per-socket trees, so the scan collects from every socket
// and merges by key before yielding — the global key order callers expect.
func (e *DORAEngine) ScanRaw(table uint16, from, to []byte, fn func(k, v []byte) bool) {
	if e.engineSharded {
		var rows []kvPair
		for _, set := range e.treeSets {
			set[table].Scan(from, to, nil, func(k, v []byte) bool {
				rows = append(rows, kvPair{k, v})
				return true
			})
		}
		sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i].k, rows[j].k) < 0 })
		for _, r := range rows {
			if !fn(r.k, r.v) {
				return
			}
		}
		return
	}
	e.Tables()[table].Scan(from, to, nil, fn)
}

// Close implements Engine.
func (e *DORAEngine) Close() {
	for _, pt := range e.parts {
		pt.Close()
	}
	for _, m := range e.logMgrs {
		m.Stop()
	}
	for _, hw := range e.hwLogs {
		hw.Stop()
	}
	if rs := e.logSet.Replication(); rs != nil {
		rs.Stop()
	}
	if e.ov != nil {
		e.ov.Stop()
	}
}

// Submit implements Engine.
func (e *DORAEngine) Submit(term *Terminal, logic TxnLogic) bool {
	term.Ph = [stats.NumPhases]sim.Duration{}
	start := term.P.Now()
	committed, txid := e.submit(term, logic)
	if end := term.P.Now(); end > start {
		term.Rec.Record(obs.Span{Start: start, End: end, Kind: obs.KindSubmit,
			Socket: int32(term.Core.SocketID()), Txn: txid})
	}
	return committed
}

func (e *DORAEngine) submit(term *Terminal, logic TxnLogic) (bool, uint64) {
	bd, ctr := e.bd, e.ctr
	if e.engineSharded {
		soc := term.Core.SocketID()
		bd, ctr = e.bds[soc], e.ctrs[soc]
	}
	for attempt := 0; ; attempt++ {
		task := e.pl.NewTask(term.P, term.Core, bd)
		task.Exec(stats.CompFrontEnd, frontEndInstr)
		tx := e.tm.Begin(task)
		dtx := &doraTx{e: e, task: task, tx: tx, term: term}
		ok := logic(dtx)
		if dtx.refused {
			e.rollback(term, task, dtx)
			ctr.Inc("aborts.deadlock", 1)
			if attempt < maxRetries {
				continue
			}
			ctr.Inc("aborts.giveup", 1)
			return false, tx.ID
		}
		if !ok {
			e.rollback(term, task, dtx)
			ctr.Inc("aborts.user", 1)
			return false, tx.ID
		}
		sig := e.tm.Commit(task, tx)
		task.Flush()
		// Sharded log, cross-shard write set: the decision round must not
		// acknowledge (and locks must not release) before the vector
		// durable point. With per-shard streams there is no global LSN
		// ordering dependent commits across sockets, so a remote shard's
		// entity locks anchor the ordering instead: they hold until every
		// shard of this transaction's vector is durable, and only then
		// does the decision broadcast let dependents proceed. Transactions
		// whose writes stay on one shard keep the early-release fast path
		// — same-shard group commit orders their dependents for free.
		tDur0 := term.P.Now()
		if e.sharded && len(tx.Shards) > 1 {
			sig.Await(term.P)
		}
		tCross0 := term.P.Now()
		e.crossShardDecision(term, task, dtx, true)
		tCross1 := term.P.Now()
		e.releaseLocks(task, dtx)
		tWait0 := term.P.Now()
		sig.Await(term.P)
		tWait1 := term.P.Now()
		soc := int32(term.Core.SocketID())
		if tCross0 > tDur0 {
			term.Ph[stats.PhaseDur] += tCross0.Sub(tDur0)
			term.Rec.Record(obs.Span{Start: tDur0, End: tCross0, Kind: obs.KindDurability, Socket: soc, Txn: tx.ID})
		}
		if tCross1 > tCross0 {
			term.Ph[stats.PhaseCross] += tCross1.Sub(tCross0)
			term.Rec.Record(obs.Span{Start: tCross0, End: tCross1, Kind: obs.KindCross, Socket: soc, Txn: tx.ID})
		}
		if tWait1 > tWait0 {
			term.Ph[stats.PhaseDur] += tWait1.Sub(tWait0)
			term.Rec.Record(obs.Span{Start: tWait0, End: tWait1, Kind: obs.KindDurability, Socket: soc, Txn: tx.ID})
		}
		ctr.Inc("commits", 1)
		return true, tx.ID
	}
}

// newRVP builds a rendezvous for a fan-out coordinated by term: homed on
// the coordinator's kernel shard when the engine is sharded (remote votes
// arrive as cross-shard messages), the classic unhomed RVP otherwise.
func (e *DORAEngine) newRVP(term *Terminal, n int) *dora.RVP {
	if e.engineSharded {
		return dora.NewRVPOn(e.pl.Env, n, e.pl.ShardOf(term.Core.SocketID()))
	}
	return dora.NewRVP(e.pl.Env, n)
}

// crossShardSockets returns the distinct sockets of the transaction's
// involved partitions when they span more than one — a genuinely
// cross-shard transaction. Single-socket transactions (including every
// transaction on a single-socket platform) return nil: they pay nothing.
func (e *DORAEngine) crossShardSockets(dtx *doraTx) []int {
	if e.pl.IC == nil {
		return nil
	}
	var sockets []int
	for _, pidx := range dtx.involved {
		s := e.parts[pidx].Socket()
		found := false
		for _, v := range sockets {
			if v == s {
				found = true
				break
			}
		}
		if !found {
			sockets = append(sockets, s) // involved is sorted, so this order is deterministic
		}
	}
	if len(sockets) < 2 {
		return nil
	}
	return sockets
}

// crossShardDecision is the decision phase of the RVP-based cross-shard
// commit protocol. The prepare votes were already collected by the phase
// RVPs (every action voted before the coordinator reached this point), so
// what remains of two-phase commit is the decision broadcast: the
// coordinator sends the outcome to one representative partition per
// involved socket other than its own and awaits their acknowledgements
// through one more RVP before any entity lock is released. Transactions
// confined to one socket skip all of it.
func (e *DORAEngine) crossShardDecision(term *Terminal, task *platform.Task, dtx *doraTx, commit bool) {
	sockets := e.crossShardSockets(dtx)
	if sockets == nil {
		return
	}
	home := term.Core.SocketID()
	var reps []int // one involved partition per remote socket, in involved order
	for _, s := range sockets {
		if s == home {
			continue
		}
		for _, pidx := range dtx.involved {
			if e.parts[pidx].Socket() == s {
				reps = append(reps, pidx)
				break
			}
		}
	}
	ctr := e.ctr
	if e.engineSharded {
		ctr = e.ctrs[home]
	}
	if commit {
		ctr.Inc("crossshard.commits", 1)
	} else {
		ctr.Inc("crossshard.aborts", 1)
	}
	if len(reps) == 0 {
		return // every involved socket is the coordinator's own
	}
	rvp := e.newRVP(term, len(reps))
	for _, pidx := range reps {
		e.parts[pidx].Enqueue(task, &dora.Action{
			TxnID:       dtx.tx.ID,
			Priority:    true,
			RVP:         rvp,
			ReplySocket: home,
			Run: func(wt *platform.Task, pt *dora.Partition) bool {
				// Apply the decision: mark the outcome in the shard-local
				// transaction table (a constant bookkeeping charge).
				wt.Exec(stats.CompDora, decisionApplyInstr)
				return true
			},
		})
	}
	task.Flush()
	rvp.Await(term.P)
}

// decisionApplyInstr is the shard-side cost of recording a cross-shard
// commit/abort decision.
const decisionApplyInstr = 120

// rollback routes undo records back to their owning partitions (reverse
// order within each), appends the abort record, and releases entity locks.
func (e *DORAEngine) rollback(term *Terminal, task *platform.Task, dtx *doraTx) {
	undo := dtx.tx.Undo
	if len(undo) > 0 {
		groups := make(map[int][]txn.UndoRec)
		for i := len(undo) - 1; i >= 0; i-- {
			u := undo[i]
			pidx := e.scheme.Route(u.Table, u.Key)
			groups[pidx] = append(groups[pidx], u)
		}
		rvp := e.newRVP(term, len(groups))
		for _, pidx := range sortedKeys(groups) {
			recs := groups[pidx]
			e.parts[pidx].Enqueue(task, &dora.Action{TxnID: dtx.tx.ID, Priority: true, RVP: rvp, ReplySocket: term.Core.SocketID(), Run: func(wt *platform.Task, pt *dora.Partition) bool {
				for _, u := range recs {
					e.applyUndoRaw(wt, u, pt.Socket())
				}
				return true
			}})
		}
		task.Flush()
		rvp.Await(term.P)
	}
	e.tm.Abort(task, dtx.tx, func(u txn.UndoRec) {}) // undo already applied above
	task.Flush()
	// Cross-shard transactions broadcast the abort decision and collect
	// acks before locks release, mirroring the commit path.
	e.crossShardDecision(term, task, dtx, false)
	e.releaseLocks(task, dtx)
}

// releaseLocks sends fire-and-forget release actions (no RVP: nobody
// awaits them) to every involved partition, in partition order.
func (e *DORAEngine) releaseLocks(task *platform.Task, dtx *doraTx) {
	txnID := dtx.tx.ID
	for _, pidx := range dtx.involved {
		e.parts[pidx].Enqueue(task, &dora.Action{TxnID: txnID, Priority: true, Run: func(wt *platform.Task, pt *dora.Partition) bool {
			pt.ReleaseLocks(wt, txnID)
			return true
		}})
	}
	task.Flush()
}

// applyUndoRaw reverses one operation without logging, charged on the
// partition worker; soc is the worker's socket (its tree set and pool on
// an engine-sharded run).
func (e *DORAEngine) applyUndoRaw(task *platform.Task, u txn.UndoRec, soc int) {
	if e.ov != nil {
		switch u.Type {
		case wal.RecInsert:
			e.ov.Delete(task, u.Table, u.Key)
		case wal.RecUpdate, wal.RecDelete:
			e.ov.Put(task, u.Table, u.Key, u.Before)
		}
		return
	}
	tree := e.treeFor(soc, u.Table)
	tp := e.tracesFor(soc)
	tr := tp.Get()
	switch u.Type {
	case wal.RecInsert:
		tree.Delete(u.Key, tr)
	case wal.RecUpdate, wal.RecDelete:
		tree.Put(u.Key, u.Before, tr)
	}
	e.chargeVisits(task, e.poolFor(soc), tr, true)
	tp.Put(tr)
}

// treeFor returns table's tree for a worker on socket soc.
func (e *DORAEngine) treeFor(soc int, table uint16) *btree.Tree {
	if e.engineSharded {
		return e.treeSets[soc][table]
	}
	return e.trees[table]
}

// poolFor returns the buffer pool for a worker on socket soc.
func (e *DORAEngine) poolFor(soc int) *bufferpool.Pool {
	if e.engineSharded {
		return e.pools[soc]
	}
	return e.pool
}

// tracesFor returns the trace scratch pool for a worker on socket soc.
func (e *DORAEngine) tracesFor(soc int) *btree.TracePool {
	if e.engineSharded {
		return &e.tracesBy[soc]
	}
	return &e.traces
}

// kvsFor returns the scan scratch pool for a worker on socket soc.
func (e *DORAEngine) kvsFor(soc int) *sim.ScratchPool[kvPair] {
	if e.engineSharded {
		return &e.kvsBy[soc]
	}
	return &e.kvs
}

// chargeVisits is the software data path (no page latches — PLP): a
// buffer-pool fix plus the node search per visit. A binary search over a
// wide node touches several cache lines, one per probe pair.
func (e *DORAEngine) chargeVisits(task *platform.Task, pool *bufferpool.Pool, tr *btree.Trace, write bool) {
	for _, v := range tr.Visits {
		pool.Fix(task, v.ID)
		task.Access(stats.CompBtree, v.Addr, 64)
		for i := 1; i < (v.Cmps+1)/2; i++ {
			task.Access(stats.CompBtree, v.Addr+uint64(64*i), 16)
		}
		task.Exec(stats.CompBtree, 60+14*v.Cmps)
		if v.Leaf {
			// Record locate/copy and slot bookkeeping at the leaf.
			task.Exec(stats.CompBtree, 110)
		}
		pool.Unfix(task, v.ID, write && v.Leaf)
	}
	for _, id := range tr.NewPages {
		// Pages born by splits enter the pool without I/O.
		pool.Prewarm(id)
	}
	if tr.Splits > 0 {
		task.Exec(stats.CompBtree, 1500*tr.Splits)
	}
	if tr.Merges+tr.Borrows > 0 {
		task.Exec(stats.CompBtree, 900*(tr.Merges+tr.Borrows))
	}
}

// swProbeFPGA is the Tree-off/Overlay-on ablation read path: the CPU walks
// a tree whose nodes live in SG-DRAM, paying a PCIe round trip per node —
// the paper's warning that the units only pay off co-designed.
func (e *DORAEngine) swProbeFPGA(task *platform.Task, tr *btree.Trace) {
	for _, v := range tr.Visits {
		task.Exec(stats.CompBtree, 40+8*v.Cmps)
		task.Flush()
		e.pl.PCIe.Transfer(task.P, 64)
		e.pl.PCIe.Transfer(task.P, v.Bytes)
	}
}

// hwProbeHost is the Tree-on/Overlay-off ablation read path: the probe
// engine walks host-resident nodes, paying the PCIe NUMA penalty per node
// instead of local SG-DRAM.
func (e *DORAEngine) hwProbeHost(task *platform.Task, tr *btree.Trace) {
	task.Exec(stats.CompBtree, 80)
	task.Flush()
	e.pl.PCIe.Transfer(task.P, 64)
	for _, v := range tr.Visits {
		e.pl.PCIe.Transfer(task.P, 64)
		e.pl.PCIe.Transfer(task.P, v.Bytes)
	}
	e.pl.PCIe.Transfer(task.P, 64)
	task.Exec(stats.CompBtree, 60)
}

// doraTx coordinates one transaction's phases from the terminal process.
type doraTx struct {
	e        *DORAEngine
	task     *platform.Task
	tx       *txn.Txn
	term     *Terminal
	involved []int // partitions touched, kept sorted and unique
	refused  bool
}

// involve records pidx in the sorted involved set. Releases iterate this
// set, so its order must be a pure function of the partitions touched —
// sorted insertion keeps it identical to the map+sort it replaces without
// the per-transaction map allocation.
func (t *doraTx) involve(pidx int) {
	for i, v := range t.involved {
		if v == pidx {
			return
		}
		if v > pidx {
			t.involved = append(t.involved, 0)
			copy(t.involved[i+1:], t.involved[i:])
			t.involved[i] = pidx
			return
		}
	}
	t.involved = append(t.involved, pidx)
}

// Phase implements Tx: fan the actions out to their partitions and await
// the rendezvous.
func (t *doraTx) Phase(actions ...Action) bool {
	if len(actions) == 0 {
		return true
	}
	e := t.e
	rvp := e.newRVP(t.term, len(actions))
	das := make([]*dora.Action, len(actions))
	// Engine-sharded: each action logs into a private write buffer on its
	// partition's shard instead of mutating the shared transaction, and the
	// coordinator merges the buffers in action order after the rendezvous —
	// a fan-out order independent of which shard finished first.
	var ws []*txn.Writes
	if e.engineSharded {
		ws = make([]*txn.Writes, len(actions))
	}
	for i, a := range actions {
		pidx := e.scheme.Route(a.Table, a.Key)
		t.involve(pidx)
		body := a.Body
		lockKey := ""
		if !a.NoLock {
			lockKey = e.scheme.Entity(a.Table, a.Key)
		}
		ctx := &doraCtx{e: e, tx: t.tx, soc: e.parts[pidx].Socket()}
		if e.engineSharded {
			ctx.w = &txn.Writes{}
			ws[i] = ctx.w
		}
		da := &dora.Action{
			TxnID:       t.tx.ID,
			LockKey:     lockKey,
			RVP:         rvp,
			ReplySocket: t.term.Core.SocketID(),
			Run: func(wt *platform.Task, pt *dora.Partition) bool {
				ctx.task = wt
				return body(ctx)
			},
		}
		das[i] = da
		e.parts[pidx].Enqueue(t.task, da)
	}
	t.task.Flush()
	ok := rvp.Await(t.term.P)
	if ws != nil {
		for _, w := range ws {
			t.tx.MergeWrites(w)
		}
	}
	// Fold the partition-side stamps into the transaction's anatomy. The
	// actions are all complete (the RVP fired through the kernel's
	// cross-shard handoff), so reading their stamps here is ordered even on
	// the concurrent kernel.
	for _, da := range das {
		t.term.Ph[stats.PhaseQueue] += da.QueueWait
		t.term.Ph[stats.PhaseLock] += da.LockWait
		t.term.Ph[stats.PhaseExec] += da.ExecTime
	}
	if !ok {
		for _, da := range das {
			if da.Refused {
				t.refused = true
			}
		}
	}
	return ok
}

// doraCtx is the partition-side AccessCtx. No hierarchical locks, no page
// latches: isolation came from routing plus the entity lock already held.
// On an engine-sharded run soc selects the worker's socket-local tree set,
// pool and scratch pools, and w (non-nil) buffers log writes per action so
// the shared transaction is never touched from a partition shard.
type doraCtx struct {
	e    *DORAEngine
	task *platform.Task
	tx   *txn.Txn
	soc  int
	w    *txn.Writes
}

// Read implements AccessCtx.
func (c *doraCtx) Read(table uint16, key []byte) ([]byte, bool) {
	e := c.e
	switch {
	case e.off.Overlay && e.off.Tree:
		return e.ov.Get(c.task, table, key)
	case e.off.Overlay:
		tr := e.traces.Get()
		val, ok := e.ov.TableByID(table).Tree.Get(key, tr)
		e.swProbeFPGA(c.task, tr)
		e.traces.Put(tr)
		return val, ok
	case e.off.Tree:
		tr := e.traces.Get()
		val, ok := e.trees[table].Get(key, tr)
		e.hwProbeHost(c.task, tr)
		e.traces.Put(tr)
		return val, ok
	default:
		tp := e.tracesFor(c.soc)
		tr := tp.Get()
		val, ok := e.treeFor(c.soc, table).Get(key, tr)
		e.chargeVisits(c.task, e.poolFor(c.soc), tr, false)
		tp.Put(tr)
		return val, ok
	}
}

// Update implements AccessCtx.
func (c *doraCtx) Update(table uint16, key, val []byte) bool {
	e := c.e
	if e.off.Overlay {
		prev, existed := e.ov.Put(c.task, table, key, val)
		if !existed {
			e.ov.Delete(c.task, table, key)
			return false
		}
		e.tm.LogUpdate(c.task, c.tx, table, key, prev, val)
		return true
	}
	tp := e.tracesFor(c.soc)
	tr := tp.Get()
	tree := e.treeFor(c.soc, table)
	prev, existed := tree.Put(key, val, tr)
	e.chargeVisits(c.task, e.poolFor(c.soc), tr, true)
	tp.Put(tr)
	if !existed {
		tree.Delete(key, nil)
		return false
	}
	if c.w != nil {
		e.tm.LogUpdateW(c.task, c.tx.ID, c.w, table, key, prev, val)
	} else {
		e.tm.LogUpdate(c.task, c.tx, table, key, prev, val)
	}
	return true
}

// Insert implements AccessCtx.
func (c *doraCtx) Insert(table uint16, key, val []byte) bool {
	e := c.e
	if e.off.Overlay {
		prev, existed := e.ov.Put(c.task, table, key, val)
		if existed {
			e.ov.Put(c.task, table, key, prev)
			return false
		}
		e.tm.LogInsert(c.task, c.tx, table, key, val)
		return true
	}
	tp := e.tracesFor(c.soc)
	tr := tp.Get()
	tree := e.treeFor(c.soc, table)
	prev, existed := tree.Put(key, val, tr)
	e.chargeVisits(c.task, e.poolFor(c.soc), tr, true)
	tp.Put(tr)
	if existed {
		tree.Put(key, prev, nil)
		return false
	}
	if c.w != nil {
		e.tm.LogInsertW(c.task, c.tx.ID, c.w, table, key, val)
	} else {
		e.tm.LogInsert(c.task, c.tx, table, key, val)
	}
	return true
}

// Delete implements AccessCtx.
func (c *doraCtx) Delete(table uint16, key []byte) bool {
	e := c.e
	if e.off.Overlay {
		val, ok := e.ov.Delete(c.task, table, key)
		if !ok {
			return false
		}
		e.tm.LogDelete(c.task, c.tx, table, key, val)
		return true
	}
	tp := e.tracesFor(c.soc)
	tr := tp.Get()
	val, ok := e.treeFor(c.soc, table).Delete(key, tr)
	e.chargeVisits(c.task, e.poolFor(c.soc), tr, true)
	tp.Put(tr)
	if !ok {
		return false
	}
	if c.w != nil {
		e.tm.LogDeleteW(c.task, c.tx.ID, c.w, table, key, val)
	} else {
		e.tm.LogDelete(c.task, c.tx, table, key, val)
	}
	return true
}

// Scan implements AccessCtx.
func (c *doraCtx) Scan(table uint16, from, to []byte, fn func(k, v []byte) bool) {
	e := c.e
	if e.off.Overlay {
		e.ov.ScanRange(c.task, table, from, to, fn)
		return
	}
	tp := e.tracesFor(c.soc)
	kp := e.kvsFor(c.soc)
	tr := tp.Get()
	rows := kp.Get()
	defer func() { kp.Put(rows) }()
	e.treeFor(c.soc, table).Scan(from, to, tr, func(k, v []byte) bool {
		rows = append(rows, kvPair{k, v})
		return true
	})
	e.chargeVisits(c.task, e.poolFor(c.soc), tr, false)
	tp.Put(tr)
	for _, r := range rows {
		c.task.Exec(stats.CompBtree, 20)
		if !fn(r.k, r.v) {
			return
		}
	}
}

// Partitions exposes the partition set (diagnostics).
func (e *DORAEngine) Partitions() []*dora.Partition { return e.parts }

// SetRecorder attaches the flight recorder to every layer this engine
// owns: the partitions (queue-wait, lock-wait, action and flow-edge spans)
// and the overlay merge daemon. Host-side only; the harness calls it after
// construction, before any terminal starts.
func (e *DORAEngine) SetRecorder(rec *obs.Recorder) {
	for _, pt := range e.parts {
		pt.SetRecorder(rec)
	}
	if e.ov != nil {
		e.ov.SetRecorder(rec.Shard(0))
	}
}

// ObsGauges implements the telemetry gauge surface: partition input-queue
// depth and deferred actions summed over the socket's partitions, the
// socket's log-shard flush backlog, and (socket 0, where replication
// lives) the worst replica lag. On an engine-sharded run each socket's
// gauges are read only by its own kernel shard's sampler.
func (e *DORAEngine) ObsGauges(socket int) obs.Gauges {
	var g obs.Gauges
	for _, pt := range e.parts {
		if pt.Socket() != socket {
			continue
		}
		g.QueueDepth += pt.QueueLen()
		g.Deferred += pt.DeferredActions()
	}
	if e.sharded {
		g.LogBacklog = e.logSet.Backlog(socket)
	} else if socket == 0 {
		g.LogBacklog = e.logSet.Backlog(0)
	}
	if socket == 0 {
		if rs := e.logSet.Replication(); rs != nil {
			g.ReplLag = rs.CurLagBytes()
		}
	}
	return g
}
