package core

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// kvWorkload is a minimal single-table workload for engine correctness
// tests.
type kvWorkload struct{}

func (kvWorkload) Name() string                 { return "kv" }
func (kvWorkload) Tables() []TableDef           { return []TableDef{{ID: 1, Name: "kv", Order: 32}} }
func (kvWorkload) Scheme(n int) PartitionScheme { return HashScheme(n) }
func (kvWorkload) Populate(load func(t uint16, k, v []byte), r *sim.Rand) {
	for i := 0; i < 2000; i++ {
		load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("init-%d", i)))
	}
}
func (kvWorkload) NextTxn(r *sim.Rand) (string, TxnLogic) {
	k := storage.Uint64Key(uint64(r.Intn(2000)))
	v := []byte(fmt.Sprintf("v-%d", r.Intn(1000)))
	return "put", func(tx Tx) bool {
		return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
			return c.Update(1, k, v)
		}})
	}
}

// engines under test.
func engineFactories(tables []TableDef, scheme PartitionScheme) map[string]func(env *sim.Env) Engine {
	return map[string]func(env *sim.Env) Engine{
		"conventional": func(env *sim.Env) Engine {
			return NewConventional(env, platform.HC2(), tables)
		},
		"dora": func(env *sim.Env) Engine {
			return NewDORA(env, platform.HC2(), tables, scheme)
		},
		"bionic": func(env *sim.Env) Engine {
			return NewBionic(env, platform.HC2(), tables, scheme, AllOffloads(), 8)
		},
	}
}

// runOne drives a single transaction through an engine inside a fresh env.
func runOne(t *testing.T, mk func(env *sim.Env) Engine, setup func(e Engine), logic TxnLogic) (Engine, bool) {
	t.Helper()
	env := sim.NewEnv()
	e := mk(env)
	if setup != nil {
		setup(e)
	}
	var committed bool
	env.Spawn("terminal", func(p *sim.Proc) {
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		committed = e.Submit(term, logic)
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return e, committed
}

func kvTables() []TableDef { return []TableDef{{ID: 1, Name: "kv", Order: 32}} }

func TestSubmitCommitVisibleOnAllEngines(t *testing.T) {
	for name, mk := range engineFactories(kvTables(), HashScheme(4)) {
		t.Run(name, func(t *testing.T) {
			key := storage.Uint64Key(7)
			e, committed := runOne(t, mk, nil, func(tx Tx) bool {
				return tx.Phase(Action{Table: 1, Key: key, Body: func(c AccessCtx) bool {
					return c.Insert(1, key, []byte("hello"))
				}})
			})
			if !committed {
				t.Fatal("commit failed")
			}
			if v, ok := e.ReadRaw(1, key); !ok || !bytes.Equal(v, []byte("hello")) {
				t.Fatalf("row not visible: %q %v", v, ok)
			}
		})
	}
}

func TestUserAbortRollsBackOnAllEngines(t *testing.T) {
	for name, mk := range engineFactories(kvTables(), HashScheme(4)) {
		t.Run(name, func(t *testing.T) {
			key := storage.Uint64Key(9)
			e, committed := runOne(t, mk, nil, func(tx Tx) bool {
				ok := tx.Phase(Action{Table: 1, Key: key, Body: func(c AccessCtx) bool {
					if !c.Insert(1, key, []byte("doomed")) {
						return false
					}
					return true
				}})
				if !ok {
					return false
				}
				return false // user abort after a successful phase
			})
			if committed {
				t.Fatal("abort reported as commit")
			}
			if _, ok := e.ReadRaw(1, key); ok {
				t.Fatal("aborted insert visible")
			}
			if e.Counters().Get("aborts.user") != 1 {
				t.Fatalf("aborts.user=%d", e.Counters().Get("aborts.user"))
			}
		})
	}
}

func TestUpdateRollbackRestoresBeforeImage(t *testing.T) {
	for name, mk := range engineFactories(kvTables(), HashScheme(4)) {
		t.Run(name, func(t *testing.T) {
			key := storage.Uint64Key(3)
			setup := func(e Engine) { e.Load(1, key, []byte("original")) }
			e, _ := runOne(t, mk, setup, func(tx Tx) bool {
				tx.Phase(Action{Table: 1, Key: key, Body: func(c AccessCtx) bool {
					return c.Update(1, key, []byte("mutated"))
				}})
				return false // abort
			})
			if v, ok := e.ReadRaw(1, key); !ok || !bytes.Equal(v, []byte("original")) {
				t.Fatalf("rollback failed: %q %v", v, ok)
			}
		})
	}
}

func TestDeleteAndInsertSemantics(t *testing.T) {
	for name, mk := range engineFactories(kvTables(), HashScheme(4)) {
		t.Run(name, func(t *testing.T) {
			key := storage.Uint64Key(5)
			setup := func(e Engine) { e.Load(1, key, []byte("row")) }
			e, committed := runOne(t, mk, setup, func(tx Tx) bool {
				return tx.Phase(Action{Table: 1, Key: key, Body: func(c AccessCtx) bool {
					if c.Insert(1, key, []byte("dup")) {
						return false // duplicate insert must fail
					}
					if !c.Delete(1, key) {
						return false
					}
					if c.Delete(1, key) {
						return false // second delete must fail
					}
					return c.Insert(1, key, []byte("fresh"))
				}})
			})
			if !committed {
				t.Fatal("transaction failed")
			}
			if v, _ := e.ReadRaw(1, key); !bytes.Equal(v, []byte("fresh")) {
				t.Fatalf("final value %q", v)
			}
		})
	}
}

func TestMultiPhaseMultiPartition(t *testing.T) {
	// A transaction spanning two partitions with a data-dependent second
	// phase.
	scheme := HashScheme(4)
	for name, mk := range engineFactories(kvTables(), scheme) {
		t.Run(name, func(t *testing.T) {
			k1 := storage.Uint64Key(100)
			k2 := storage.Uint64Key(200)
			setup := func(e Engine) {
				e.Load(1, k1, storage.Uint64Key(200)) // k1 points at k2
				e.Load(1, k2, []byte("target"))
			}
			var indirect []byte
			e, committed := runOne(t, mk, setup, func(tx Tx) bool {
				var next []byte
				if !tx.Phase(Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool {
					v, ok := c.Read(1, k1)
					if !ok {
						return false
					}
					next = append([]byte(nil), v...)
					return true
				}}) {
					return false
				}
				return tx.Phase(Action{Table: 1, Key: next, Body: func(c AccessCtx) bool {
					v, ok := c.Read(1, next)
					if !ok {
						return false
					}
					indirect = append([]byte(nil), v...)
					return c.Update(1, next, []byte("updated"))
				}})
			})
			if !committed {
				t.Fatal("multi-phase txn failed")
			}
			if !bytes.Equal(indirect, []byte("target")) {
				t.Fatalf("read %q via indirection", indirect)
			}
			if v, _ := e.ReadRaw(1, k2); !bytes.Equal(v, []byte("updated")) {
				t.Fatalf("k2 = %q", v)
			}
		})
	}
}

func TestScanThroughEngines(t *testing.T) {
	for name, mk := range engineFactories(kvTables(), HashScheme(4)) {
		t.Run(name, func(t *testing.T) {
			setup := func(e Engine) {
				for i := 0; i < 50; i++ {
					e.Load(1, storage.Uint64Key(uint64(i)), []byte{byte(i)})
				}
			}
			var got []uint64
			_, committed := runOne(t, mk, setup, func(tx Tx) bool {
				return tx.Phase(Action{Table: 1, Key: storage.Uint64Key(10), Body: func(c AccessCtx) bool {
					c.Scan(1, storage.Uint64Key(10), storage.Uint64Key(20), func(k, v []byte) bool {
						got = append(got, storage.DecodeUint64(k))
						return true
					})
					return true
				}})
			})
			if !committed {
				t.Fatal("scan txn failed")
			}
			if len(got) != 10 || got[0] != 10 || got[9] != 19 {
				t.Fatalf("scan got %v", got)
			}
		})
	}
}

func TestHarnessRunProducesMeasurements(t *testing.T) {
	cfg := RunConfig{Terminals: 8, Warmup: 2 * sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 7}
	for name, mk := range engineFactories(kvTables(), HashScheme(8)) {
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg, kvWorkload{}, mk)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatal("no commits in measurement window")
			}
			if res.TPS <= 0 {
				t.Fatalf("tps=%v", res.TPS)
			}
			if res.JoulesPerTxn <= 0 {
				t.Fatalf("joules/txn=%v", res.JoulesPerTxn)
			}
			if res.Latency.Count() == 0 {
				t.Fatal("no latencies recorded")
			}
			if res.BD.Total() == 0 {
				t.Fatal("empty breakdown")
			}
			if res.Energy.Window != 10*sim.Millisecond {
				t.Fatalf("window %v", res.Energy.Window)
			}
		})
	}
}

func TestHarnessDeterminism(t *testing.T) {
	cfg := RunConfig{Terminals: 4, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 11}
	run := func() *Result {
		res, err := Run(cfg, kvWorkload{}, func(env *sim.Env) Engine {
			return NewDORA(env, platform.HC2(), kvTables(), HashScheme(4))
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Commits != b.Commits || a.TPS != b.TPS {
		t.Fatalf("nondeterministic: %d/%f vs %d/%f", a.Commits, a.TPS, b.Commits, b.TPS)
	}
	if a.BD.Total() != b.BD.Total() {
		t.Fatalf("nondeterministic breakdowns: %v vs %v", a.BD.Total(), b.BD.Total())
	}
}

func TestConventionalChargesLockAndLatchComponents(t *testing.T) {
	cfg := RunConfig{Terminals: 8, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 3}
	res, err := Run(cfg, kvWorkload{}, func(env *sim.Env) Engine {
		return NewConventional(env, platform.HC2(), kvTables())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BD.Get(stats.CompXct) == 0 {
		t.Fatal("conventional run charged no Xct mgmt (locks)")
	}
	if res.BD.Get(stats.CompBpool) == 0 {
		t.Fatal("conventional run charged no Bpool mgmt")
	}
	if res.BD.Get(stats.CompBtree) == 0 {
		t.Fatal("conventional run charged no Btree mgmt")
	}
}

func TestDoraHasNoLockManagerComponent(t *testing.T) {
	// DORA replaces the central lock manager; its Xct charges come only
	// from begin/commit, so Dora component must be present and the engine
	// must report no deadlock retries under a partition-conflict-free
	// workload.
	cfg := RunConfig{Terminals: 8, Warmup: sim.Millisecond, Measure: 5 * sim.Millisecond, Seed: 3}
	res, err := Run(cfg, kvWorkload{}, func(env *sim.Env) Engine {
		return NewDORA(env, platform.HC2(), kvTables(), HashScheme(8))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BD.Get(stats.CompDora) == 0 {
		t.Fatal("DORA run charged no Dora component")
	}
}

func TestBionicOffloadAblationConfigsRun(t *testing.T) {
	cfg := RunConfig{Terminals: 8, Warmup: sim.Millisecond, Measure: 4 * sim.Millisecond, Seed: 5}
	for _, off := range []Offloads{
		{Queue: true},
		{Log: true},
		{Tree: true, Overlay: true},
		AllOffloads(),
	} {
		off := off
		t.Run(off.String(), func(t *testing.T) {
			res, err := Run(cfg, kvWorkload{}, func(env *sim.Env) Engine {
				return NewBionic(env, platform.HC2(), kvTables(), HashScheme(8), off, 8)
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatalf("offloads %v: no commits", off)
			}
		})
	}
}

func TestOffloadsString(t *testing.T) {
	if (Offloads{}).String() != "none" {
		t.Error("zero offloads name")
	}
	if AllOffloads().String() != "tree+log+queue+overlay" {
		t.Errorf("all offloads name %q", AllOffloads().String())
	}
	if (Offloads{Log: true}).String() != "log" {
		t.Error("single offload name")
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	e := NewDORA(env, platform.HC2(), kvTables(), HashScheme(4))
	for i := 0; i < 500; i++ {
		e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("init-%d", i)))
	}
	var meta CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		// Sharp checkpoint of the populated state.
		meta = Checkpoint(p, e.Tables(), e.DiskManager(), e.LogStore())
		// Post-checkpoint transactions: updates, an insert, a delete, and
		// one abort that must NOT survive recovery.
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		for i := 0; i < 50; i++ {
			k := storage.Uint64Key(uint64(i))
			v := []byte(fmt.Sprintf("updated-%d", i))
			e.Submit(term, func(tx Tx) bool {
				return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
					return c.Update(1, k, v)
				}})
			})
		}
		kNew := storage.Uint64Key(9999)
		e.Submit(term, func(tx Tx) bool {
			return tx.Phase(Action{Table: 1, Key: kNew, Body: func(c AccessCtx) bool {
				return c.Insert(1, kNew, []byte("new-row"))
			}})
		})
		kDel := storage.Uint64Key(400)
		e.Submit(term, func(tx Tx) bool {
			return tx.Phase(Action{Table: 1, Key: kDel, Body: func(c AccessCtx) bool {
				return c.Delete(1, kDel)
			}})
		})
		kAbort := storage.Uint64Key(8888)
		e.Submit(term, func(tx Tx) bool {
			tx.Phase(Action{Table: 1, Key: kAbort, Body: func(c AccessCtx) bool {
				return c.Insert(1, kAbort, []byte("uncommitted"))
			}})
			return false // abort
		})
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}

	// CRASH: all volatile state is abandoned; only the disk manager and
	// the durable log survive. Recover in a fresh boot on the same
	// machine.
	env.Spawn("recovery", func(p *sim.Proc) {
		trees, err := Recover(p, kvTables(), meta, e.DiskManager(), e.LogStore().Bytes())
		if err != nil {
			t.Error(err)
			return
		}
		// Compare recovered contents with the live engine's final state.
		live := e.Tables()[1]
		rec := trees[1]
		if rec.Size() != live.Size() {
			t.Errorf("recovered %d rows, live %d", rec.Size(), live.Size())
		}
		mismatch := 0
		live.Scan(nil, nil, nil, func(k, v []byte) bool {
			got, ok := rec.Get(k, nil)
			if !ok || !bytes.Equal(got, v) {
				mismatch++
			}
			return true
		})
		if mismatch != 0 {
			t.Errorf("%d rows diverged after recovery", mismatch)
		}
		if _, ok := rec.Get(storage.Uint64Key(8888), nil); ok {
			t.Error("aborted insert survived recovery")
		}
		if _, ok := rec.Get(storage.Uint64Key(400), nil); ok {
			t.Error("committed delete survived recovery")
		}
		if v, ok := rec.Get(storage.Uint64Key(9999), nil); !ok || !bytes.Equal(v, []byte("new-row")) {
			t.Error("committed insert lost in recovery")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
