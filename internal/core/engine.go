package core

import (
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// AccessCtx is the data interface a transaction-action body programs
// against. Every method charges the engine's cost model; mutating methods
// write WAL records and register undo. Methods return false when the row
// state prevents the operation (missing row, duplicate insert) — the body
// decides whether that is a transaction abort.
type AccessCtx interface {
	// Read returns the row under key.
	Read(table uint16, key []byte) (val []byte, ok bool)
	// Update replaces an existing row; false if it does not exist.
	Update(table uint16, key, val []byte) bool
	// Insert adds a new row; false if the key already exists.
	Insert(table uint16, key, val []byte) bool
	// Delete removes a row; false if it does not exist.
	Delete(table uint16, key []byte) bool
	// Scan iterates rows with keys in [from, to); nil bounds are open.
	Scan(table uint16, from, to []byte, fn func(key, val []byte) bool)
}

// Action is one partition-confined unit of a transaction: the routing key
// decides the owning partition (DORA engines) and the entity lock; Body
// runs on that partition with an engine-appropriate AccessCtx and returns
// false to vote the transaction into abort.
type Action struct {
	Table uint16
	Key   []byte
	// NoLock skips the entity lock (relaxed-isolation reads like TPC-C
	// StockLevel, which the spec allows to run read-committed).
	NoLock bool
	Body   func(c AccessCtx) bool
}

// Tx is the coordinator-side handle a transaction's logic drives.
type Tx interface {
	// Phase runs the actions (in parallel across partitions on the DORA
	// engines, sequentially on the conventional engine) and reports
	// whether all voted to continue. After a false Phase the logic must
	// return false.
	Phase(actions ...Action) bool
}

// TxnLogic is a transaction program: it issues phases and returns whether
// to commit. Returning false rolls the transaction back (a user abort, as
// in TATP's expected failure cases or TPC-C's 1% NewOrder rollbacks).
type TxnLogic func(tx Tx) bool

// Terminal is one closed-loop client: a simulated process with a home core
// for its front-end work and a private random stream.
type Terminal struct {
	ID   int
	P    *sim.Proc
	Core *platform.Core
	R    *sim.Rand

	// Ph accumulates the current transaction's per-phase durations (queue,
	// lock, exec, cross-shard, durability). Engines reset it at Submit
	// entry and fill it as the transaction moves; the harness folds
	// committed in-window values into the run's latency anatomy. Host-side
	// scratch: never read by simulated logic.
	Ph [stats.NumPhases]sim.Duration

	// Rec is the flight-recorder ring of the terminal's home kernel shard,
	// nil when untraced. Engines record submit, durability-wait and
	// cross-shard decision spans into it from the terminal's process.
	Rec *obs.ShardRec
}

// Engine is a complete transaction processing system under one cost model.
type Engine interface {
	// Name identifies the engine in tables ("conventional", "dora",
	// "bionic[...]").
	Name() string
	// Platform exposes the machine model for energy snapshots.
	Platform() *platform.Platform
	// Submit runs one transaction to completion from term: engine-induced
	// aborts (deadlocks) are retried internally; user aborts are not.
	// It returns whether the transaction finally committed (durably).
	Submit(term *Terminal, logic TxnLogic) (committed bool)
	// Load inserts a row during population, bypassing timing and logging.
	Load(table uint16, key, val []byte)
	// ReadRaw reads a row without timing (verification only).
	ReadRaw(table uint16, key []byte) (val []byte, ok bool)
	// ScanRaw iterates rows without timing (verification only).
	ScanRaw(table uint16, from, to []byte, fn func(key, val []byte) bool)
	// Breakdown returns the engine's cumulative Figure 3 component times.
	Breakdown() *stats.Breakdown
	// Counters returns engine event counters (commits, aborts, retries...).
	Counters() *stats.Counter
	// Close quiesces background daemons and partition workers.
	Close()
}

// maxRetries bounds deadlock-retry loops.
const maxRetries = 25

// frontEndInstr is the admission/parse/route cost charged per transaction
// attempt (the Figure 3 "Front-end" component).
const frontEndInstr = 500

// kvPair is one materialized scan row. Scans materialize their rows before
// applying locks and charges (the tree must not be walked across park
// points); the buffers come from an engine-private sim.ScratchPool so the
// steady-state scan path stops allocating.
type kvPair struct{ k, v []byte }
