package core

import (
	"fmt"
	"sort"

	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// Workload is a benchmark: schema, population, partitioning and a
// transaction mix.
type Workload interface {
	// Name identifies the workload in tables.
	Name() string
	// Tables returns the schema.
	Tables() []TableDef
	// Scheme returns the partitioning for the given partition count.
	Scheme(partitions int) PartitionScheme
	// Populate loads the initial database through load.
	Populate(load func(table uint16, key, val []byte), r *sim.Rand)
	// NextTxn draws one transaction from the mix.
	NextTxn(r *sim.Rand) (name string, logic TxnLogic)
}

// RunConfig shapes one measurement.
type RunConfig struct {
	// Terminals is the number of closed-loop clients.
	Terminals int
	// Warmup is discarded simulated time before the measurement window.
	Warmup sim.Duration
	// Measure is the measurement window length.
	Measure sim.Duration
	// Drain bounds how long in-flight transactions get to finish after
	// the window closes (0 uses a default).
	Drain sim.Duration
	// Seed drives population and the transaction mix.
	Seed uint64
	// KernelParallel runs the simulation on the parallel event kernel: one
	// shard per simulated socket, synchronized under the interconnect hop
	// latency as conservative lookahead. Results are bit-identical to the
	// serial kernel (the equivalence matrix in internal/bench enforces it);
	// the flag changes host execution only. Single-socket machines have one
	// shard and stay serial regardless.
	KernelParallel bool
	// Analytics, when non-nil, attaches an analytical subsystem to the run
	// (the HTAP mixed workloads). Nil leaves the run bit-identical to the
	// pre-HTAP harness.
	Analytics Analytics
	// Obs selects the flight recorder's faces (span tracing, telemetry
	// sampling). Observation is strictly out of band: enabling it changes
	// no simulated time, energy, randomness or event order, so every
	// simulated result is bit-identical with it on or off. Nil attaches
	// nothing. The per-transaction latency anatomy is always collected; it
	// needs no option.
	Obs *obs.Options
}

// DefaultRunConfig returns a config suitable for the figure generators.
func DefaultRunConfig() RunConfig {
	return RunConfig{Terminals: 64, Warmup: 30 * sim.Millisecond, Measure: 100 * sim.Millisecond, Seed: 42}
}

// Result is everything one run measures.
type Result struct {
	Engine   string
	Workload string

	Commits int64 // committed transactions in the window
	Aborts  int64 // user aborts in the window
	TPS     float64

	Energy       platform.EnergyReport
	JoulesPerTxn float64

	BD        stats.Breakdown  // CPU component times in the window
	Latency   *stats.Histogram // committed-transaction latency
	TxnCounts map[string]int64 // per-transaction-type completions
	Cache     platform.CacheStats

	// LogShards is per-log-shard activity in the window (bytes written,
	// syncs, arbitration epochs per socket); one entry for a central log.
	LogShards []stats.LogShardStats

	// Scan is the analytical half's window statistics when the run attached
	// an Analytics subsystem; nil on pure-OLTP runs.
	Scan *stats.ScanStats

	// Repl is per-log-shard shipping activity in the window when the engine
	// replicates its log; nil on unreplicated runs.
	Repl []stats.ReplicationStats

	// Events is the kernel event count for the whole run (populate through
	// drain) — the numerator for host events/sec reporting. It is simulated
	// state, identical on the serial and parallel kernels, and deliberately
	// not part of the sweep digest.
	Events uint64

	// EventsByShard is the per-kernel-shard event count of an engine-sharded
	// run — the witness that engine work actually executed off shard 0. Nil
	// on classic runs, and deliberately not part of the sweep digest.
	EventsByShard []uint64

	// Anatomy is the per-phase latency breakdown (queue, lock, exec,
	// cross-shard, durability, replication) of committed in-window
	// transactions: per-terminal recordings merged in terminal-ID order,
	// plus the windowed engine-level replication-wait histogram. Always
	// collected; deliberately not part of the sweep digest.
	Anatomy stats.Anatomy

	// WindowsByShard and StallsByShard are the parallel kernel's
	// self-observability counters for the whole run: window rounds executed
	// and barrier rounds sat out per shard. Nil on serial-kernel runs; not
	// part of the sweep digest.
	WindowsByShard []uint64
	StallsByShard  []uint64

	// Trace is the flight recorder holding the run's spans when
	// RunConfig.Obs enabled tracing; nil otherwise. Export with
	// obs.WriteTrace.
	Trace *obs.Recorder

	// Metrics is the telemetry time series when RunConfig.Obs enabled
	// sampling; nil otherwise.
	Metrics *obs.Telemetry
}

// gaugeReader is implemented by engines exposing instantaneous queue, lock
// and log gauges to the telemetry sampler.
type gaugeReader interface {
	ObsGauges(socket int) obs.Gauges
}

// sampleSocket builds one telemetry sample for socket as seen from shard.
// It only reads state owned by that shard (or by the whole run when the
// classic single-shard layout samples every socket from shard 0).
func sampleSocket(env *sim.Env, pl *platform.Platform, gr gaugeReader, socket, shard int, now sim.Time) obs.Sample {
	smp := obs.Sample{At: now, Socket: socket}
	if gr != nil {
		g := gr.ObsGauges(socket)
		smp.QueueDepth, smp.Deferred, smp.LockWaiters = g.QueueDepth, g.Deferred, g.LockWaiters
		smp.LogBacklog, smp.ReplLag = g.LogBacklog, g.ReplLag
	}
	smp.Instructions, smp.DRAMBytes, smp.LLCHits, smp.LLCMisses = pl.SocketCounters(socket)
	smp.EgressBusy = pl.EgressBusy(socket)
	smp.Events, smp.Windows, smp.Stalls = env.ShardCounters(shard)
	return smp
}

// logStatser is implemented by engines that report per-shard log counters.
type logStatser interface {
	LogStats() []stats.LogShardStats
}

// replStatser is implemented by engines that ship their log to replicas; a
// nil slice means replication is off.
type replStatser interface {
	ReplStats() []stats.ReplicationStats
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%-22s %-6s %9.0f tps  %8.2f uJ/txn  p50=%v p95=%v",
		r.Engine, r.Workload, r.TPS, r.JoulesPerTxn*1e6,
		r.Latency.Percentile(50), r.Latency.Percentile(95))
}

// BreakdownTable renders the Figure 3-style component share table.
func (r *Result) BreakdownTable() *stats.Table {
	t := stats.NewTable("component", ">time", ">share")
	total := r.BD.Total()
	for _, c := range stats.Components() {
		share := 0.0
		if total > 0 {
			share = float64(r.BD.Get(c)) / float64(total) * 100
		}
		t.Row(c.String(), r.BD.Get(c).String(), fmt.Sprintf("%.1f%%", share))
	}
	return t
}

// TxnNames returns the observed transaction types in sorted order.
func (r *Result) TxnNames() []string {
	names := make([]string, 0, len(r.TxnCounts))
	for n := range r.TxnCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one full measurement: build the engine on a fresh
// environment, populate, warm up, measure, and drain. The returned Result
// covers only the measurement window.
func Run(cfg RunConfig, wl Workload, mk func(env *sim.Env) Engine) (*Result, error) {
	env := sim.NewEnv()
	// Reap processes left parked on every exit path: a process panic makes
	// RunUntil return early with workers still blocked on queues and locks,
	// and even a clean run may leave daemons parked on primitives nobody
	// will signal again. Without this, every errored run leaks goroutines.
	defer env.Close()
	eng := mk(env)
	pl := eng.Platform()
	if cfg.KernelParallel {
		if shards, la := pl.KernelShards(); shards > 1 && la > 0 {
			env.EnableParallel(shards, la)
		}
	}
	// Engine-on-shard runs distribute engine and terminal processes over
	// the kernel shards. Snapshots that read engine-wide state move from
	// in-simulation At callbacks to host code at RunUntil barriers (where
	// every shard has quiesced at the same horizon), and per-terminal
	// recording replaces the shared histogram/count map; both are merged
	// deterministically, so serial and concurrent execution agree.
	shardedRun := false
	if es, ok := eng.(interface{ EngineSharded() bool }); ok {
		shardedRun = es.EngineSharded()
	}
	if shardedRun && cfg.Analytics != nil {
		return nil, fmt.Errorf("core: analytics is not supported on an engine-sharded run")
	}

	// Flight recorder: spans into one ring per kernel shard, each written
	// only by its own shard's goroutine. Attached before any event runs;
	// strictly out of band (see RunConfig.Obs).
	var rec *obs.Recorder
	if cfg.Obs.TraceOn() {
		rec = obs.NewRecorder(env.NumShards(), cfg.Obs.Cap())
		if sr, ok := eng.(interface{ SetRecorder(*obs.Recorder) }); ok {
			sr.SetRecorder(rec)
		}
	}
	// Engine-level anatomy (replication ack waits) accumulates from run
	// start; the snapshot closures below window it. The recorder hook rides
	// along when tracing. Always wired: recording is a host-side histogram
	// update per commit-path ack wait.
	engAn := &stats.Anatomy{}
	if rp, ok := eng.(interface{ Replicator() *wal.ReplicaSet }); ok {
		if rs := rp.Replicator(); rs != nil {
			rs.SetObs(rec.Shard(0), engAn)
		}
	}
	// Telemetry: per-socket samplers on a fixed simulated-time tick, fired
	// from the kernel's clock-advance path (no events scheduled). On an
	// engine-sharded run each socket is sampled by its own shard; the
	// classic layout simulates everything on shard 0 and samples every
	// socket from there.
	var tel *obs.Telemetry
	if cfg.Obs.MetricsOn() {
		tel = obs.NewTelemetry(pl.NumSockets(), cfg.Obs.Tick())
		gr, _ := eng.(gaugeReader)
		if shardedRun {
			for s := 0; s < pl.NumSockets(); s++ {
				s := s
				sh := pl.ShardOf(s)
				env.SetSampler(sh, tel.Tick, func(now sim.Time) {
					tel.Append(sampleSocket(env, pl, gr, s, sh, now))
				})
			}
		} else {
			env.SetSampler(0, tel.Tick, func(now sim.Time) {
				for s := 0; s < pl.NumSockets(); s++ {
					tel.Append(sampleSocket(env, pl, gr, s, 0, now))
				}
			})
		}
	}

	root := sim.NewRand(cfg.Seed)
	wl.Populate(eng.Load, root.Split())
	if warmer, ok := eng.(interface{ Warm() }); ok {
		warmer.Warm()
	}

	// The analytical half attaches after population and warmup, before any
	// terminal exists, on its own split stream: a nil Analytics consumes no
	// randomness and schedules no events, keeping pure-OLTP runs
	// bit-identical to the pre-HTAP harness.
	var arun AnalyticsRun
	if cfg.Analytics != nil {
		arun = cfg.Analytics.Attach(env, eng, root.Split())
		if rec != nil {
			if sr, ok := arun.(interface{ SetRecorder(*obs.ShardRec) }); ok {
				sr.SetRecorder(rec.Shard(0))
			}
		}
	}

	warmT := sim.Time(cfg.Warmup)
	endT := warmT + sim.Time(cfg.Measure)

	// The latency reservoir (one flat histogram) and the per-type counts
	// are preallocated here, once per run — nothing on the per-transaction
	// recording path allocates.
	res := &Result{
		Engine:    eng.Name(),
		Workload:  wl.Name(),
		Latency:   &stats.Histogram{},
		TxnCounts: make(map[string]int64, 16),
	}

	var startBD, endBD stats.Breakdown
	var startSnap, endSnap platform.Snapshot
	var startCommits, endCommits, startAborts, endAborts int64
	var startLog, endLog []stats.LogShardStats
	var startRepl, endRepl []stats.ReplicationStats
	var startScan, endScan stats.ScanStats
	var startEngAn, endEngAn stats.Anatomy
	snapStart := func() {
		startEngAn = *engAn
		startBD = *eng.Breakdown()
		startSnap = pl.Snapshot()
		startCommits = eng.Counters().Get("commits")
		startAborts = eng.Counters().Get("aborts.user")
		if ls, ok := eng.(logStatser); ok {
			startLog = ls.LogStats()
		}
		if rs, ok := eng.(replStatser); ok {
			startRepl = rs.ReplStats()
		}
		if arun != nil {
			startScan = arun.Snapshot()
		}
	}
	snapEnd := func() {
		endEngAn = *engAn
		endBD = *eng.Breakdown()
		endSnap = pl.Snapshot()
		endCommits = eng.Counters().Get("commits")
		endAborts = eng.Counters().Get("aborts.user")
		if ls, ok := eng.(logStatser); ok {
			endLog = ls.LogStats()
		}
		if rs, ok := eng.(replStatser); ok {
			endRepl = rs.ReplStats()
		}
		if arun != nil {
			endScan = arun.Snapshot()
		}
	}
	if !shardedRun {
		env.At(warmT, snapStart)
		env.At(endT, snapEnd)
	}

	stop := false
	var termCounts []map[string]int64
	var termLats []*stats.Histogram
	if shardedRun {
		termCounts = make([]map[string]int64, cfg.Terminals)
		termLats = make([]*stats.Histogram, cfg.Terminals)
	}
	// Per-terminal anatomy, merged in terminal-ID order after the run —
	// like the latency reservoir, written only by the terminal's own shard.
	termAns := make([]stats.Anatomy, cfg.Terminals)
	for i := 0; i < cfg.Terminals; i++ {
		i := i
		tr := root.Split()
		core := pl.Cores[i%len(pl.Cores)]
		counts, lat := res.TxnCounts, res.Latency
		if shardedRun {
			termCounts[i] = make(map[string]int64, 16)
			termLats[i] = &stats.Histogram{}
			counts, lat = termCounts[i], termLats[i]
		}
		var termRec *obs.ShardRec
		if rec != nil {
			sh := 0
			if shardedRun {
				sh = pl.ShardOfCore(core)
			}
			termRec = rec.Shard(sh)
		}
		an := &termAns[i]
		body := func(p *sim.Proc) {
			term := &Terminal{ID: i, P: p, Core: core, R: tr, Rec: termRec}
			for !stop {
				name, logic := wl.NextTxn(term.R)
				start := p.Now()
				committed := eng.Submit(term, logic)
				if start >= warmT && p.Now() <= endT {
					counts[name]++
					if committed {
						lat.Record(p.Now().Sub(start))
						for ph := stats.Phase(0); ph < stats.NumPhases; ph++ {
							an.Record(ph, term.Ph[ph])
						}
					}
				}
			}
		}
		if shardedRun {
			env.SpawnOn(pl.ShardOfCore(core), fmt.Sprintf("terminal%d", i), body)
		} else {
			env.Spawn(fmt.Sprintf("terminal%d", i), body)
		}
	}
	if arun != nil {
		arun.Start(&stop)
	}

	if shardedRun {
		if err := env.RunUntil(warmT); err != nil {
			return nil, err
		}
		snapStart()
	}
	if err := env.RunUntil(endT); err != nil {
		return nil, err
	}
	if shardedRun {
		snapEnd()
	}
	// Drain: let in-flight transactions finish within a bounded grace
	// period (background daemons tick forever, so an unbounded Run would
	// never return), then stop daemons and let the event queue empty.
	stop = true
	drain := cfg.Drain
	if drain <= 0 {
		drain = 50 * sim.Millisecond
	}
	if err := env.RunUntil(endT + sim.Time(drain)); err != nil {
		return nil, err
	}
	if arun != nil {
		arun.Close()
	}
	eng.Close()
	if err := env.Run(); err != nil {
		return nil, err
	}

	res.Commits = endCommits - startCommits
	res.Aborts = endAborts - startAborts
	res.TPS = sim.PerSecond(res.Commits, cfg.Measure)
	res.BD = endBD.Sub(&startBD)
	res.Energy = pl.Energy(startSnap, endSnap)
	if res.Commits > 0 {
		res.JoulesPerTxn = res.Energy.Total() / float64(res.Commits)
	}
	res.Cache = pl.CacheStats()
	if len(endLog) == len(startLog) {
		for i := range endLog {
			res.LogShards = append(res.LogShards, endLog[i].Sub(startLog[i]))
		}
	}
	if len(endRepl) > 0 && len(endRepl) == len(startRepl) {
		for i := range endRepl {
			res.Repl = append(res.Repl, endRepl[i].Sub(startRepl[i]))
		}
	}
	if arun != nil {
		sc := endScan.Sub(startScan)
		res.Scan = &sc
	}
	if shardedRun {
		// Merge per-terminal recordings in terminal-ID order — a pure
		// function of the recorded values, independent of host scheduling.
		for i := 0; i < cfg.Terminals; i++ {
			for name, n := range termCounts[i] {
				res.TxnCounts[name] += n
			}
			res.Latency.Merge(termLats[i])
		}
		res.EventsByShard = env.ShardExecuted()
	}
	// Latency anatomy: per-terminal phase histograms merged in terminal-ID
	// order, then the windowed engine-level replication-wait histogram.
	for i := range termAns {
		res.Anatomy.Merge(&termAns[i])
	}
	windowedAn := endEngAn.Sub(&startEngAn)
	res.Anatomy.Merge(&windowedAn)
	if cfg.KernelParallel {
		res.WindowsByShard = env.ShardWindows()
		res.StallsByShard = env.ShardStalls()
	}
	res.Trace = rec
	res.Metrics = tel
	res.Events = env.Executed()
	return res, nil
}
