package core

import (
	"fmt"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// modScheme routes uint64 keys by value mod n, so tests can pick the
// partition — and with it the socket — a key lands on.
func modScheme(n int) PartitionScheme {
	return PartitionScheme{
		Partitions: n,
		Route:      func(table uint16, key []byte) int { return int(storage.DecodeUint64(key) % uint64(n)) },
		Entity:     func(table uint16, key []byte) string { return string(key) },
	}
}

// newTwoSocketDORA builds a DORA engine on a 2-socket machine with one
// partition per core: partitions 0-7 on socket 0, 8-15 on socket 1.
func newTwoSocketDORA(env *sim.Env) *DORAEngine {
	return NewDORA(env, platform.HC2Scaled(2), kvTables(), modScheme(16))
}

// driveTerminal runs fn as a terminal process on core 0 (socket 0),
// closes the engine when fn returns (stopping its background daemons),
// and drains the simulation.
func driveTerminal(t *testing.T, e *DORAEngine, fn func(term *Terminal)) {
	t.Helper()
	e.pl.Env.Spawn("terminal", func(p *sim.Proc) {
		fn(&Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)})
		e.Close()
	})
	if err := e.pl.Env.Run(); err != nil {
		t.Fatal(err)
	}
}

func seedKeys(e Engine) {
	for i := 0; i < 16; i++ {
		e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("init-%d", i)))
	}
}

func updateTwo(a, b uint64, commit bool) TxnLogic {
	ka, kb := storage.Uint64Key(a), storage.Uint64Key(b)
	return func(tx Tx) bool {
		ok := tx.Phase(
			Action{Table: 1, Key: ka, Body: func(c AccessCtx) bool { return c.Update(1, ka, []byte("new-a")) }},
			Action{Table: 1, Key: kb, Body: func(c AccessCtx) bool { return c.Update(1, kb, []byte("new-b")) }},
		)
		return ok && commit
	}
}

// TestCrossShardCommit: a transaction spanning partitions on two sockets
// runs the decision round; a socket-local transaction pays no interconnect
// messages at all.
func TestCrossShardCommit(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	e := newTwoSocketDORA(env)
	seedKeys(e)

	driveTerminal(t, e, func(term *Terminal) {
		// Keys 1 and 9: partitions 1 (socket 0) and 9 (socket 1).
		if !e.Submit(term, updateTwo(1, 9, true)) {
			t.Error("cross-shard transaction did not commit")
		}
		if got := e.Counters().Get("crossshard.commits"); got != 1 {
			t.Errorf("crossshard.commits = %d, want 1", got)
		}
		msgs := e.pl.IC.Messages()
		if msgs == 0 {
			t.Error("cross-shard transaction sent no interconnect messages")
		}

		// Keys 1 and 2 both live on the coordinator's socket: no decision
		// round, no messages.
		if !e.Submit(term, updateTwo(1, 2, true)) {
			t.Error("local transaction did not commit")
		}
		if got := e.Counters().Get("crossshard.commits"); got != 1 {
			t.Errorf("local transaction bumped crossshard.commits to %d", got)
		}
		if got := e.pl.IC.Messages(); got != msgs {
			t.Errorf("socket-local transaction sent %d interconnect messages", got-msgs)
		}
	})
}

// TestCrossShardAbort: a user abort spanning sockets rolls back on both
// shards (undo crosses the interconnect) and broadcasts the abort
// decision.
func TestCrossShardAbort(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	e := newTwoSocketDORA(env)
	seedKeys(e)

	driveTerminal(t, e, func(term *Terminal) {
		if e.Submit(term, updateTwo(1, 9, false)) {
			t.Error("aborting transaction reported commit")
		}
		if got := e.Counters().Get("crossshard.aborts"); got != 1 {
			t.Errorf("crossshard.aborts = %d, want 1", got)
		}
		if got := e.Counters().Get("aborts.user"); got != 1 {
			t.Errorf("aborts.user = %d, want 1", got)
		}
	})
	for _, k := range []uint64{1, 9} {
		want := fmt.Sprintf("init-%d", k)
		if v, ok := e.ReadRaw(1, storage.Uint64Key(k)); !ok || string(v) != want {
			t.Errorf("key %d after cross-shard abort = %q, want %q", k, v, want)
		}
	}
}

// conflictWorkload hammers eight hot entities with two-key transactions:
// on a multi-socket engine most transactions are cross-shard and many
// defer or deadlock, exercising the refused/retry/rollback paths.
type conflictWorkload struct{}

func (conflictWorkload) Name() string                 { return "conflict" }
func (conflictWorkload) Tables() []TableDef           { return kvTables() }
func (conflictWorkload) Scheme(n int) PartitionScheme { return modScheme(n) }
func (conflictWorkload) Populate(load func(t uint16, k, v []byte), r *sim.Rand) {
	for i := 0; i < 16; i++ {
		load(1, storage.Uint64Key(uint64(i)), []byte("x"))
	}
}
func (conflictWorkload) NextTxn(r *sim.Rand) (string, TxnLogic) {
	a := uint64(r.Intn(8))
	b := uint64(r.Intn(8))
	for b == a {
		b = uint64(r.Intn(8))
	}
	return "clash", updateTwo(a, b, true)
}

// TestMultiSocketConflictDeterminism runs a conflict-heavy 4-socket
// measurement twice and requires bit-identical results: the cross-shard
// paths (defers, deadlock refusals, decision rounds, interconnect
// queueing) must be a pure function of the seed.
func TestMultiSocketConflictDeterminism(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(env *sim.Env) Engine
	}{
		{"dora", func(env *sim.Env) Engine {
			return NewDORA(env, platform.HC2Scaled(4), kvTables(), modScheme(32))
		}},
		{"bionic", func(env *sim.Env) Engine {
			return NewBionic(env, platform.HC2Scaled(4), kvTables(), modScheme(32), AllOffloads(), 8)
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			cfg := RunConfig{Terminals: 24, Warmup: sim.Duration(1) * sim.Millisecond,
				Measure: sim.Duration(2) * sim.Millisecond, Seed: 11}
			r1, err := Run(cfg, conflictWorkload{}, mk.make)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(cfg, conflictWorkload{}, mk.make)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Commits == 0 {
				t.Fatal("conflict workload committed nothing")
			}
			if r1.Commits != r2.Commits || r1.Aborts != r2.Aborts {
				t.Errorf("commits/aborts diverge across identical runs: %d/%d vs %d/%d",
					r1.Commits, r1.Aborts, r2.Commits, r2.Aborts)
			}
			if r1.TPS != r2.TPS || r1.JoulesPerTxn != r2.JoulesPerTxn {
				t.Errorf("tps/energy diverge: %v/%v vs %v/%v", r1.TPS, r1.JoulesPerTxn, r2.TPS, r2.JoulesPerTxn)
			}
			if r1.BD != r2.BD {
				t.Error("component breakdown diverges across identical runs")
			}
			if r1.Latency.Percentile(95) != r2.Latency.Percentile(95) {
				t.Error("latency distribution diverges across identical runs")
			}
		})
	}
}

// TestCrossShardDeadlockRefusal forces a waits-for cycle across sockets
// and checks the engine resolves it by refusing one action and retrying —
// no simulated hang, and the final state reflects both transactions.
func TestCrossShardDeadlockRefusal(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	e := newTwoSocketDORA(env)
	seedKeys(e)

	// Two terminals on different sockets lock the same two entities in
	// opposite orders across two phases, the classic cycle.
	locked := func(first, second uint64) TxnLogic {
		ka, kb := storage.Uint64Key(first), storage.Uint64Key(second)
		return func(tx Tx) bool {
			if !tx.Phase(Action{Table: 1, Key: ka, Body: func(c AccessCtx) bool { return c.Update(1, ka, []byte("p1")) }}) {
				return false
			}
			return tx.Phase(Action{Table: 1, Key: kb, Body: func(c AccessCtx) bool { return c.Update(1, kb, []byte("p2")) }})
		}
	}
	results := make([]bool, 2)
	finished := 0
	done := func() {
		// Simulated processes run one at a time, so this is race-free;
		// the last terminal to finish stops the engine's daemons.
		finished++
		if finished == 2 {
			e.Close()
		}
	}
	env.Spawn("t0", func(p *sim.Proc) {
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		results[0] = e.Submit(term, locked(1, 9))
		done()
	})
	env.Spawn("t1", func(p *sim.Proc) {
		term := &Terminal{ID: 1, P: p, Core: e.Platform().Cores[8], R: sim.NewRand(2)}
		results[1] = e.Submit(term, locked(9, 1))
		done()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !results[0] || !results[1] {
		t.Fatalf("both transactions should eventually commit (deadlock retry), got %v", results)
	}
	for _, k := range []uint64{1, 9} {
		if v, ok := e.ReadRaw(1, storage.Uint64Key(k)); !ok || (string(v) != "p1" && string(v) != "p2") {
			t.Errorf("key %d = %q, want p1 or p2", k, v)
		}
	}
}
