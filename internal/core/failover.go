package core

import (
	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
)

// FailoverStats measures one failover: the primary died, the replica
// detected it and replayed the surviving log image through the measured
// recovery path, and is now serving.
type FailoverStats struct {
	Mode   stats.ReplMode
	Detect sim.Duration // failure-detector delay before recovery starts

	Recovery RecoveryStats
	// TimeToServing is the replica's full outage window: detection plus
	// checkpoint restore plus replay.
	TimeToServing sim.Duration

	// Digest is the recovered content digest — compared against a recovery
	// of the primary's shipped prefix to prove the replica serves exactly
	// what survived.
	Digest string
}

// DefaultDetect is the modeled failure-detector timeout: how long the
// replica waits on missed heartbeats before declaring the primary dead and
// starting recovery. A few link round trips of a 2012-era in-rack network.
const DefaultDetect = 500 * sim.Microsecond

// Failover boots the replica machine and promotes it: restore the
// checkpoint, replay the surviving per-shard log image (the longest replica
// copy of each shard, from ReplicaSet.CrashImage) through RecoverMeasured,
// and report time-to-serving. The replica machine is the same hardware as
// the primary but boots unreplicated — after a failover it serves alone.
//
// dm is the crashed primary's checkpoint store; like the recovery sweep,
// failover rebinds it to the replica's disk (checkpoints are assumed
// replicated out-of-band at checkpoint time — they are static page images,
// not part of the shipped stream).
func Failover(cfg *platform.Config, defs []TableDef, meta CheckpointMeta, dm *storage.DiskManager,
	logs [][]byte, detect sim.Duration, parallel bool) ([]map[uint16]*btree.Tree, FailoverStats, error) {
	bootCfg := *cfg
	bootCfg.Replicas = 0
	bootCfg.ReplMode = stats.ReplNone
	env := sim.NewEnv()
	defer env.Close()
	pl := platform.New(env, &bootCfg)
	dm2 := dm.Rebind(pl.Disk)
	fst := FailoverStats{Mode: cfg.ReplMode, Detect: detect}
	var sets []map[uint16]*btree.Tree
	var rerr error
	env.Spawn("failover", func(p *sim.Proc) {
		p.Wait(detect)
		t, rst, err := RecoverMeasured(p, pl, defs, meta, dm2, logs, parallel)
		sets, fst.Recovery, rerr = t, rst, err
	})
	if err := env.Run(); err != nil {
		return nil, fst, err
	}
	if rerr != nil {
		return nil, fst, rerr
	}
	fst.TimeToServing = detect + fst.Recovery.SimTime
	fst.Digest = ContentDigestSets(sets)
	return sets, fst, nil
}
