package core

import (
	"fmt"

	"bionicdb/internal/btree"
	"bionicdb/internal/bufferpool"
	"bionicdb/internal/lockmgr"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/txn"
	"bionicdb/internal/wal"
)

// Conventional is the shared-everything 2PL baseline: every worker may touch
// any datum, so every access pays the full tax the paper's §5.1 enumerates —
// hierarchical locks, page latches, buffer-pool fixes, and a centrally
// latched log.
type Conventional struct {
	pl     *platform.Platform
	defs   map[uint16]TableDef
	trees  map[uint16]*btree.Tree
	pool   *bufferpool.Pool
	lm     *lockmgr.Manager
	tm     *txn.Manager
	logMgr *wal.Manager
	logSet *wal.LogSet
	store  *wal.Store
	dm     *storage.DiskManager

	// latches are page-latch stripes; conventional probes latch every node
	// they visit (crabbing approximated by striped latches).
	latches []*sim.Resource

	bd     *stats.Breakdown
	ctr    *stats.Counter
	traces btree.TracePool
	kvs    sim.ScratchPool[kvPair]

	// tableLocks memoizes lockmgr.TableLock names: two hierarchical lock
	// acquisitions per row access both start with the table lock, and the
	// set of tables is fixed at construction.
	tableLocks map[uint16]string
}

const latchStripes = 64

// NewConventional builds the baseline engine on a fresh platform.
func NewConventional(env *sim.Env, cfg *platform.Config, tables []TableDef) *Conventional {
	pl := platform.New(env, cfg)
	e := &Conventional{
		pl:    pl,
		defs:  make(map[uint16]TableDef),
		trees: make(map[uint16]*btree.Tree),
		bd:    &stats.Breakdown{},
		ctr:   stats.NewCounter(),
	}
	e.tableLocks = make(map[uint16]string, len(tables))
	for _, def := range tables {
		e.tableLocks[def.ID] = lockmgr.TableLock(def.ID)
	}
	e.dm = storage.NewDiskManager(pl.Disk, cfg.PageSize)
	e.pool = bufferpool.New(pl, pl.Disk, bufferpool.DefaultConfig(1<<18, cfg.PageSize))
	e.lm = lockmgr.New(pl, lockmgr.DefaultConfig())
	e.store = wal.NewStore(pl.SSD)
	e.logMgr = wal.NewManager(pl, e.store, wal.DefaultManagerConfig())
	// The shared-everything engine never shards its log, even on a machine
	// with per-socket log devices: without data-oriented routing a key has
	// no home socket, so per-socket streams would leave same-key records
	// with no recoverable order. Its centralized log (and single SSD) stays
	// — that is the scaling wall the sharded engines escape.
	e.logSet = wal.NewLogSet(pl, []wal.LogShard{{App: e.logMgr, Store: e.store}})
	if cfg.Replicated() {
		e.logSet.AttachReplication(wal.NewReplicaSet(e.logSet))
	}
	e.tm = txn.NewManager(env, e.logSet, txn.DefaultConfig())
	for i := 0; i < latchStripes; i++ {
		e.latches = append(e.latches, sim.NewResource(env, fmt.Sprintf("page-latch-%d", i), 1))
	}
	for _, def := range tables {
		def := def
		e.defs[def.ID] = def
		e.trees[def.ID] = btree.New(btree.Config{
			Order:  def.Order,
			NextID: e.dm.Allocate,
			AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocHost(cfg.PageSize) },
		})
	}
	return e
}

// Name implements Engine.
func (e *Conventional) Name() string { return "conventional" }

// Platform implements Engine.
func (e *Conventional) Platform() *platform.Platform { return e.pl }

// Breakdown implements Engine.
func (e *Conventional) Breakdown() *stats.Breakdown { return e.bd }

// Counters implements Engine.
func (e *Conventional) Counters() *stats.Counter { return e.ctr }

// Load implements Engine (population path: no timing, no logging).
func (e *Conventional) Load(table uint16, key, val []byte) {
	e.trees[table].Put(key, val, nil)
}

// ReadRaw implements Engine.
func (e *Conventional) ReadRaw(table uint16, key []byte) ([]byte, bool) {
	return e.trees[table].Get(key, nil)
}

// ScanRaw implements Engine.
func (e *Conventional) ScanRaw(table uint16, from, to []byte, fn func(k, v []byte) bool) {
	e.trees[table].Scan(from, to, nil, fn)
}

// Tables exposes the primary trees for checkpointing.
func (e *Conventional) Tables() map[uint16]*btree.Tree { return e.trees }

// TableSets is the socket-indexed checkpoint surface; a conventional engine
// keeps one shared tree set.
func (e *Conventional) TableSets() []map[uint16]*btree.Tree {
	return []map[uint16]*btree.Tree{e.trees}
}

// Warm marks every tree page buffer-pool resident, as a production system
// would be after its working set is faulted in. The harness calls it after
// population so measurements start from a warm cache.
func (e *Conventional) Warm() {
	for _, id := range sortedKeys(e.trees) {
		e.trees[id].Pages(func(id storage.PageID, leaf bool) { e.pool.Prewarm(id) })
	}
}

// DiskManager exposes the checkpoint page store.
func (e *Conventional) DiskManager() *storage.DiskManager { return e.dm }

// LogStore exposes the durable log for recovery.
func (e *Conventional) LogStore() *wal.Store { return e.store }

// LogSet exposes the (single-shard) log set for checkpointing and recovery.
func (e *Conventional) LogSet() *wal.LogSet { return e.logSet }

// LogStats reports the central log's activity as a one-shard set.
func (e *Conventional) LogStats() []stats.LogShardStats { return e.logSet.Stats() }

// Replicator exposes the log-shipping machinery (nil when unreplicated).
func (e *Conventional) Replicator() *wal.ReplicaSet { return e.logSet.Replication() }

// ReplStats reports log-shipping activity; nil when unreplicated.
func (e *Conventional) ReplStats() []stats.ReplicationStats {
	if rs := e.logSet.Replication(); rs != nil {
		return rs.Stats()
	}
	return nil
}

// ObsGauges implements the telemetry gauge surface. The shared-everything
// engine has no partition queues; its lock table, central log and
// replication stream all live on socket 0, so other sockets read zero.
func (e *Conventional) ObsGauges(socket int) obs.Gauges {
	var g obs.Gauges
	if socket == 0 {
		g.LockWaiters = e.lm.CurWaiters()
		g.LogBacklog = e.logMgr.Backlog()
		if rs := e.logSet.Replication(); rs != nil {
			g.ReplLag = rs.CurLagBytes()
		}
	}
	return g
}

// Close implements Engine.
func (e *Conventional) Close() {
	e.logMgr.Stop()
	if rs := e.logSet.Replication(); rs != nil {
		rs.Stop()
	}
}

// Submit implements Engine.
func (e *Conventional) Submit(term *Terminal, logic TxnLogic) bool {
	term.Ph = [stats.NumPhases]sim.Duration{}
	start := term.P.Now()
	committed, txid := e.submit(term, logic)
	if end := term.P.Now(); end > start {
		term.Rec.Record(obs.Span{Start: start, End: end, Kind: obs.KindSubmit,
			Socket: int32(term.Core.SocketID()), Txn: txid})
	}
	return committed
}

func (e *Conventional) submit(term *Terminal, logic TxnLogic) (bool, uint64) {
	for attempt := 0; ; attempt++ {
		task := e.pl.NewTask(term.P, term.Core, e.bd)
		task.Exec(stats.CompFrontEnd, frontEndInstr)
		tx := e.tm.Begin(task)
		ctx := &convCtx{e: e, task: task, tx: tx, term: term}
		logicStart := term.P.Now()
		ok := logic(&convTx{ctx: ctx})
		// Anatomy: the logic's elapsed time splits into lock-manager time
		// (accumulated by convCtx.lock around acquires, waits included) and
		// everything else, which for this engine is execution.
		term.Ph[stats.PhaseLock] += ctx.lockD
		if d := term.P.Now().Sub(logicStart) - ctx.lockD; d > 0 {
			term.Ph[stats.PhaseExec] += d
		}
		if ctx.err != nil {
			// Engine-induced abort (deadlock victim): roll back and retry.
			e.rollback(task, ctx)
			e.ctr.Inc("aborts.deadlock", 1)
			if attempt < maxRetries {
				continue
			}
			e.ctr.Inc("aborts.giveup", 1)
			return false, tx.ID
		}
		if !ok {
			e.rollback(task, ctx)
			e.ctr.Inc("aborts.user", 1)
			return false, tx.ID
		}
		sig := e.tm.Commit(task, tx)
		task.Flush()
		// Strict 2PL with early lock release at commit-record append; the
		// group-commit wait happens without locks held.
		e.lockTax(task)
		e.lm.ReleaseAll(task, tx.ID)
		task.Flush()
		w0 := term.P.Now()
		sig.Await(term.P)
		if w1 := term.P.Now(); w1 > w0 {
			term.Ph[stats.PhaseDur] += w1.Sub(w0)
			term.Rec.Record(obs.Span{Start: w0, End: w1, Kind: obs.KindDurability,
				Socket: int32(term.Core.SocketID()), Txn: tx.ID})
		}
		e.ctr.Inc("commits", 1)
		return true, tx.ID
	}
}

func (e *Conventional) rollback(task *platform.Task, ctx *convCtx) {
	e.tm.Abort(task, ctx.tx, func(u txn.UndoRec) {
		e.applyUndoRaw(task, u)
	})
	e.lockTax(task)
	e.lm.ReleaseAll(task, ctx.tx.ID)
	task.Flush()
}

// applyUndoRaw reverses one operation without logging (runtime rollback;
// the abort record covers recovery). X locks are still held.
func (e *Conventional) applyUndoRaw(task *platform.Task, u txn.UndoRec) {
	tree := e.trees[u.Table]
	tr := e.traces.Get()
	switch u.Type {
	case wal.RecInsert:
		tree.Delete(u.Key, tr)
	case wal.RecUpdate, wal.RecDelete:
		tree.Put(u.Key, u.Before, tr)
	}
	e.chargeVisits(task, tr, true)
	e.traces.Put(tr)
}

// chargeVisits converts a tree trace into the conventional cost model: a
// page latch, a buffer-pool fix, the node's cache-modelled access and the
// binary-search instructions per visited node, plus software split costs.
func (e *Conventional) chargeVisits(task *platform.Task, tr *btree.Trace, write bool) {
	for _, v := range tr.Visits {
		latch := e.latches[uint64(v.ID)%latchStripes]
		task.Exec(stats.CompBtree, 60) // latch acquire/release pair
		task.Flush()
		latch.Acquire(task.P)
		e.pool.Fix(task, v.ID)
		task.Access(stats.CompBtree, v.Addr, 64)
		for i := 1; i < (v.Cmps+1)/2; i++ {
			task.Access(stats.CompBtree, v.Addr+uint64(64*i), 16)
		}
		task.Exec(stats.CompBtree, 60+14*v.Cmps)
		if v.Leaf {
			// Record locate/copy and slot bookkeeping at the leaf.
			task.Exec(stats.CompBtree, 110)
		}
		e.pool.Unfix(task, v.ID, write && v.Leaf)
		task.Flush()
		latch.Release()
	}
	for _, id := range tr.NewPages {
		// Pages born by splits enter the pool without I/O.
		e.pool.Prewarm(id)
	}
	if tr.Splits > 0 {
		task.Exec(stats.CompBtree, 1500*tr.Splits)
	}
	if tr.Merges+tr.Borrows > 0 {
		task.Exec(stats.CompBtree, 900*(tr.Merges+tr.Borrows))
	}
}

// convTx adapts the conventional engine to the Tx interface: phases run
// sequentially in the caller's process.
type convTx struct {
	ctx *convCtx
}

// Phase implements Tx.
func (t *convTx) Phase(actions ...Action) bool {
	for _, a := range actions {
		if t.ctx.err != nil {
			return false
		}
		if !a.Body(t.ctx) {
			return false
		}
	}
	return t.ctx.err == nil
}

// convCtx is the conventional AccessCtx: hierarchical 2PL plus latched,
// buffer-pooled probes.
type convCtx struct {
	e    *Conventional
	task *platform.Task
	tx   *txn.Txn
	term *Terminal
	err  error

	// lockD accumulates elapsed time inside lock-manager interactions
	// (NUMA tax, acquire CPU and blocked waits) for the latency anatomy.
	lockD sim.Duration
}

// lockTableSocket is where the conventional engine's centralized lock
// table lives. On a multi-socket platform every lock-manager interaction
// from another socket pays a coherence round trip to this socket — the
// shared-everything scaling wall the DORA engines avoid by construction.
const lockTableSocket = 0

// lockTax charges the NUMA cost of reaching the centralized lock table: a
// request line to the home socket and the granted line back. Free on the
// home socket and on single-socket platforms.
func (e *Conventional) lockTax(task *platform.Task) {
	ic := e.pl.IC
	if ic == nil {
		return
	}
	s := task.Core().SocketID()
	if s == lockTableSocket {
		return
	}
	task.Flush()
	ic.Transfer(task.P, s, lockTableSocket, 64)
	ic.Transfer(task.P, lockTableSocket, s, 64)
}

func (c *convCtx) lock(table uint16, key []byte, tableMode, rowMode lockmgr.Mode) bool {
	if c.err != nil {
		return false
	}
	t0 := c.task.P.Now()
	defer c.noteLock(t0)
	c.e.lockTax(c.task)
	if err := c.e.lm.Acquire(c.task, c.tx.ID, c.e.tableLocks[table], tableMode); err != nil {
		c.err = err
		return false
	}
	if err := c.e.lm.Acquire(c.task, c.tx.ID, lockmgr.RowLock(table, key), rowMode); err != nil {
		c.err = err
		return false
	}
	return true
}

// noteLock folds the elapsed time since t0 into the lock phase and, when
// tracing, records it as a lock-wait span.
func (c *convCtx) noteLock(t0 sim.Time) {
	t1 := c.task.P.Now()
	if t1 <= t0 {
		return
	}
	c.lockD += t1.Sub(t0)
	c.term.Rec.Record(obs.Span{Start: t0, End: t1, Kind: obs.KindLockWait,
		Socket: int32(c.task.Core().SocketID()), Txn: c.tx.ID})
}

// Read implements AccessCtx.
func (c *convCtx) Read(table uint16, key []byte) ([]byte, bool) {
	if !c.lock(table, key, lockmgr.IS, lockmgr.S) {
		return nil, false
	}
	tr := c.e.traces.Get()
	val, ok := c.e.trees[table].Get(key, tr)
	c.e.chargeVisits(c.task, tr, false)
	c.e.traces.Put(tr)
	return val, ok
}

// Update implements AccessCtx.
func (c *convCtx) Update(table uint16, key, val []byte) bool {
	if !c.lock(table, key, lockmgr.IX, lockmgr.X) {
		return false
	}
	tr := c.e.traces.Get()
	prev, existed := c.e.trees[table].Put(key, val, tr)
	c.e.chargeVisits(c.task, tr, true)
	c.e.traces.Put(tr)
	if !existed {
		c.e.trees[table].Delete(key, nil) // undo accidental insert
		return false
	}
	c.e.tm.LogUpdate(c.task, c.tx, table, key, prev, val)
	return true
}

// Insert implements AccessCtx.
func (c *convCtx) Insert(table uint16, key, val []byte) bool {
	if !c.lock(table, key, lockmgr.IX, lockmgr.X) {
		return false
	}
	tr := c.e.traces.Get()
	prev, existed := c.e.trees[table].Put(key, val, tr)
	c.e.chargeVisits(c.task, tr, true)
	c.e.traces.Put(tr)
	if existed {
		c.e.trees[table].Put(key, prev, nil) // restore
		return false
	}
	c.e.tm.LogInsert(c.task, c.tx, table, key, val)
	return true
}

// Delete implements AccessCtx.
func (c *convCtx) Delete(table uint16, key []byte) bool {
	if !c.lock(table, key, lockmgr.IX, lockmgr.X) {
		return false
	}
	tr := c.e.traces.Get()
	val, ok := c.e.trees[table].Delete(key, tr)
	c.e.chargeVisits(c.task, tr, true)
	c.e.traces.Put(tr)
	if !ok {
		return false
	}
	c.e.tm.LogDelete(c.task, c.tx, table, key, val)
	return true
}

// Scan implements AccessCtx: results are materialized first (the iterator
// must not observe concurrent splits while this process parks on locks),
// then row locks and charges are applied.
func (c *convCtx) Scan(table uint16, from, to []byte, fn func(k, v []byte) bool) {
	if c.err != nil {
		return
	}
	t0 := c.task.P.Now()
	c.e.lockTax(c.task)
	if err := c.e.lm.Acquire(c.task, c.tx.ID, c.e.tableLocks[table], lockmgr.IS); err != nil {
		c.err = err
		c.noteLock(t0)
		return
	}
	c.noteLock(t0)
	tr := c.e.traces.Get()
	rows := c.e.kvs.Get()
	defer func() { c.e.kvs.Put(rows) }()
	c.e.trees[table].Scan(from, to, tr, func(k, v []byte) bool {
		rows = append(rows, kvPair{k, v})
		return true
	})
	c.e.chargeVisits(c.task, tr, false)
	c.e.traces.Put(tr)
	for _, r := range rows {
		if err := c.e.lm.Acquire(c.task, c.tx.ID, lockmgr.RowLock(table, r.k), lockmgr.S); err != nil {
			c.err = err
			return
		}
		c.task.Exec(stats.CompBtree, 20)
		if !fn(r.k, r.v) {
			return
		}
	}
}
