package core

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
)

// checkpointer is the engine surface recovery needs.
type checkpointer interface {
	Engine
	Tables() map[uint16]*btree.Tree
	DiskManager() *storage.DiskManager
	LogStore() *wal.Store
}

// TestRecoveryAcrossEngines checkpoints, mutates, crashes and recovers each
// engine flavor, verifying the recovered image matches the live state —
// including the hardware log engine's epoch-collected stream.
func TestRecoveryAcrossEngines(t *testing.T) {
	cases := map[string]func(env *sim.Env) checkpointer{
		"conventional": func(env *sim.Env) checkpointer {
			return NewConventional(env, platform.HC2(), kvTables())
		},
		"dora-softlog": func(env *sim.Env) checkpointer {
			return NewDORA(env, platform.HC2(), kvTables(), HashScheme(4))
		},
		"bionic-hwlog": func(env *sim.Env) checkpointer {
			return NewBionic(env, platform.HC2(), kvTables(), HashScheme(4), AllOffloads(), 8)
		},
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			env := sim.NewEnv()
			e := mk(env)
			for i := 0; i < 300; i++ {
				e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("base-%d", i)))
			}
			var meta CheckpointMeta
			env.Spawn("driver", func(p *sim.Proc) {
				meta = Checkpoint(p, e.Tables(), e.DiskManager(), e.LogStore())
				term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
				r := sim.NewRand(uint64(len(name)))
				for i := 0; i < 80; i++ {
					k := storage.Uint64Key(uint64(r.Intn(300)))
					v := []byte(fmt.Sprintf("mut-%d", i))
					op := r.Intn(3)
					e.Submit(term, func(tx Tx) bool {
						return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
							switch op {
							case 0:
								if !c.Update(1, k, v) {
									return c.Insert(1, k, v)
								}
								return true
							case 1:
								c.Delete(1, k)
								return true
							default:
								if !c.Insert(1, k, v) {
									return c.Update(1, k, v)
								}
								return true
							}
						}})
					})
				}
				e.Close()
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
			env.Spawn("recovery", func(p *sim.Proc) {
				trees, err := Recover(p, kvTables(), meta, e.DiskManager(), e.LogStore().Data())
				if err != nil {
					t.Error(err)
					return
				}
				live := e.Tables()[1]
				rec := trees[1]
				if rec.Size() != live.Size() {
					t.Errorf("recovered %d rows, live %d", rec.Size(), live.Size())
				}
				live.Scan(nil, nil, nil, func(k, v []byte) bool {
					got, ok := rec.Get(k, nil)
					if !ok || !bytes.Equal(got, v) {
						t.Errorf("row %x diverged", k)
						return false
					}
					return true
				})
				if err := rec.Validate(); err != nil {
					t.Error(err)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryIgnoresUncommittedTail simulates a crash with a torn log
// tail: the damaged suffix must be skipped and everything before it
// recovered.
func TestRecoveryIgnoresUncommittedTail(t *testing.T) {
	env := sim.NewEnv()
	e := NewDORA(env, platform.HC2(), kvTables(), HashScheme(2))
	for i := 0; i < 100; i++ {
		e.Load(1, storage.Uint64Key(uint64(i)), []byte("base"))
	}
	var meta CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		meta = Checkpoint(p, e.Tables(), e.DiskManager(), e.LogStore())
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		k := storage.Uint64Key(5)
		e.Submit(term, func(tx Tx) bool {
			return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
				return c.Update(1, k, []byte("committed"))
			}})
		})
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Tear the last 5 bytes off the durable log.
	data := e.LogStore().Data()
	torn := data[:len(data)-5]
	env.Spawn("recovery", func(p *sim.Proc) {
		trees, err := Recover(p, kvTables(), meta, e.DiskManager(), torn)
		if err != nil {
			t.Error(err)
			return
		}
		// The committed update's commit record may itself be in the torn
		// region; either way recovery must not corrupt anything.
		if err := trees[1].Validate(); err != nil {
			t.Error(err)
		}
		if trees[1].Size() != 100 {
			t.Errorf("size=%d", trees[1].Size())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
