package core

import (
	"bytes"
	"fmt"
	"testing"

	"bionicdb/internal/btree"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
)

// checkpointer is the engine surface recovery needs.
type checkpointer interface {
	Engine
	Tables() map[uint16]*btree.Tree
	DiskManager() *storage.DiskManager
	LogStore() *wal.Store
}

// TestRecoveryAcrossEngines checkpoints, mutates, crashes and recovers each
// engine flavor, verifying the recovered image matches the live state —
// including the hardware log engine's epoch-collected stream.
func TestRecoveryAcrossEngines(t *testing.T) {
	cases := map[string]func(env *sim.Env) checkpointer{
		"conventional": func(env *sim.Env) checkpointer {
			return NewConventional(env, platform.HC2(), kvTables())
		},
		"dora-softlog": func(env *sim.Env) checkpointer {
			return NewDORA(env, platform.HC2(), kvTables(), HashScheme(4))
		},
		"bionic-hwlog": func(env *sim.Env) checkpointer {
			return NewBionic(env, platform.HC2(), kvTables(), HashScheme(4), AllOffloads(), 8)
		},
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			env := sim.NewEnv()
			e := mk(env)
			for i := 0; i < 300; i++ {
				e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("base-%d", i)))
			}
			var meta CheckpointMeta
			env.Spawn("driver", func(p *sim.Proc) {
				meta = Checkpoint(p, e.Tables(), e.DiskManager(), e.LogStore())
				term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
				r := sim.NewRand(uint64(len(name)))
				for i := 0; i < 80; i++ {
					k := storage.Uint64Key(uint64(r.Intn(300)))
					v := []byte(fmt.Sprintf("mut-%d", i))
					op := r.Intn(3)
					e.Submit(term, func(tx Tx) bool {
						return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
							switch op {
							case 0:
								if !c.Update(1, k, v) {
									return c.Insert(1, k, v)
								}
								return true
							case 1:
								c.Delete(1, k)
								return true
							default:
								if !c.Insert(1, k, v) {
									return c.Update(1, k, v)
								}
								return true
							}
						}})
					})
				}
				e.Close()
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
			env.Spawn("recovery", func(p *sim.Proc) {
				trees, err := Recover(p, kvTables(), meta, e.DiskManager(), e.LogStore().Bytes())
				if err != nil {
					t.Error(err)
					return
				}
				live := e.Tables()[1]
				rec := trees[1]
				if rec.Size() != live.Size() {
					t.Errorf("recovered %d rows, live %d", rec.Size(), live.Size())
				}
				live.Scan(nil, nil, nil, func(k, v []byte) bool {
					got, ok := rec.Get(k, nil)
					if !ok || !bytes.Equal(got, v) {
						t.Errorf("row %x diverged", k)
						return false
					}
					return true
				})
				if err := rec.Validate(); err != nil {
					t.Error(err)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedCrashRecovery pins the sharded durability subsystem's read
// side at 1, 2 and 4 sockets, for both the software and the hardware log
// path: after a clean shutdown (every acknowledged commit durable), the
// recovered table content must be byte-identical to the live engine's
// post-run state — and the measured parallel replay must recover exactly
// the same content as the serial one.
func TestShardedCrashRecovery(t *testing.T) {
	for _, sockets := range []int{1, 2, 4} {
		for _, hw := range []bool{false, true} {
			name := fmt.Sprintf("x%d-soft", sockets)
			if hw {
				name = fmt.Sprintf("x%d-hw", sockets)
			}
			t.Run(name, func(t *testing.T) {
				cfg := platform.HC2ScaledSharded(sockets)
				env := sim.NewEnv()
				defer env.Close()
				scheme := HashScheme(cfg.TotalCores())
				var e *DORAEngine
				if hw {
					e = NewBionic(env, cfg, kvTables(), scheme, Offloads{Log: true}, 8)
				} else {
					e = NewDORA(env, cfg, kvTables(), scheme)
				}
				if got := e.LogSet().NumShards(); (sockets == 1 && got != 1) || (sockets > 1 && got != sockets) {
					t.Fatalf("%d sockets built %d log shards", sockets, got)
				}
				for i := 0; i < 400; i++ {
					e.Load(1, storage.Uint64Key(uint64(i)), []byte(fmt.Sprintf("base-%d", i)))
				}
				var meta CheckpointMeta
				env.Spawn("driver", func(p *sim.Proc) {
					meta = CheckpointAllSets(p, e.TableSets(), e.DiskManager(), e.LogSet())
					term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
					r := sim.NewRand(uint64(7 + sockets))
					for i := 0; i < 150; i++ {
						k1 := storage.Uint64Key(uint64(r.Intn(400)))
						k2 := storage.Uint64Key(uint64(r.Intn(400)))
						v := []byte(fmt.Sprintf("mut-%d", i))
						if i%3 == 0 && !bytes.Equal(k1, k2) {
							// Multi-action transaction: with one partition
							// per core the two keys regularly land on
							// different sockets, exercising the cross-shard
							// commit vector.
							e.Submit(term, func(tx Tx) bool {
								return tx.Phase(
									Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool {
										c.Update(1, k1, v)
										return true
									}},
									Action{Table: 1, Key: k2, Body: func(c AccessCtx) bool {
										c.Update(1, k2, v)
										return true
									}})
							})
							continue
						}
						e.Submit(term, func(tx Tx) bool {
							return tx.Phase(Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool {
								switch i % 5 {
								case 1:
									c.Delete(1, k1)
								case 2:
									if !c.Insert(1, k1, v) {
										c.Update(1, k1, v)
									}
								default:
									if !c.Update(1, k1, v) {
										c.Insert(1, k1, v)
									}
								}
								return true
							}})
						})
					}
					e.Close()
				})
				if err := env.Run(); err != nil {
					t.Fatal(err)
				}
				liveDigest := ContentDigestSets(e.TableSets())
				logs := e.LogSet().Datas()

				// Serial replay (unmeasured path).
				env.Spawn("recover-serial", func(p *sim.Proc) {
					sets, err := RecoverSets(p, kvTables(), meta, e.DiskManager(), logs...)
					if err != nil {
						t.Error(err)
						return
					}
					if got := ContentDigestSets(sets); got != liveDigest {
						t.Errorf("serial recovery diverged from live state:\n got  %s\n want %s", got, liveDigest)
					}
					for _, set := range sets {
						if err := set[1].Validate(); err != nil {
							t.Error(err)
						}
					}
				})
				if err := env.Run(); err != nil {
					t.Fatal(err)
				}

				// Measured replays on a fresh boot: serial and parallel must
				// both reproduce the live content exactly.
				for _, par := range []bool{false, true} {
					env2 := sim.NewEnv()
					pl2 := platform.New(env2, cfg)
					dm2 := e.DiskManager().Rebind(pl2.Disk)
					var st RecoveryStats
					env2.Spawn("recover-measured", func(p *sim.Proc) {
						sets, stats, err := RecoverMeasured(p, pl2, kvTables(), meta, dm2, logs, par)
						st = stats
						if err != nil {
							t.Error(err)
							return
						}
						if got := ContentDigestSets(sets); got != liveDigest {
							t.Errorf("measured replay (parallel=%v) diverged:\n got  %s\n want %s", par, got, liveDigest)
						}
					})
					if err := env2.Run(); err != nil {
						t.Fatal(err)
					}
					env2.Close()
					if st.Shards != len(logs) || st.SimTime <= 0 {
						t.Errorf("recovery stats %+v", st)
					}
				}
			})
		}
	}
}

// TestCrossShardTornVector pins the vector durable point's recovery
// guarantee: a cross-shard transaction whose remote shard's data did not
// survive the crash must not be replayed at all — not even its anchor-shard
// records — because its commit record's vector no longer validates.
func TestCrossShardTornVector(t *testing.T) {
	cfg := platform.HC2ScaledSharded(2)
	env := sim.NewEnv()
	defer env.Close()
	scheme := HashScheme(cfg.TotalCores())
	e := NewDORA(env, cfg, kvTables(), scheme)
	// Find keys homed on sockets 0 and 1 (partition p lives on core p,
	// socket p/Cores).
	var k0, k1 []byte
	for i := uint64(0); k0 == nil || k1 == nil; i++ {
		k := storage.Uint64Key(i)
		if scheme.Route(1, k) < cfg.Cores {
			if k0 == nil {
				k0 = k
			}
		} else if k1 == nil {
			k1 = k
		}
	}
	e.Load(1, k0, []byte("before-0"))
	e.Load(1, k1, []byte("before-1"))
	var meta CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		meta = CheckpointAllSets(p, e.TableSets(), e.DiskManager(), e.LogSet())
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		ok := e.Submit(term, func(tx Tx) bool {
			return tx.Phase(
				Action{Table: 1, Key: k0, Body: func(c AccessCtx) bool { return c.Update(1, k0, []byte("after-0")) }},
				Action{Table: 1, Key: k1, Body: func(c AccessCtx) bool { return c.Update(1, k1, []byte("after-1")) }})
		})
		if !ok {
			t.Error("cross-shard transaction did not commit")
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	logs := e.LogSet().Datas()
	// Tear shard 1 back to its checkpoint position: the transaction's
	// shard-1 data is gone, as after a crash that lost that device's tail.
	torn := make([][]byte, len(logs))
	copy(torn, logs)
	torn[1] = torn[1][:meta.StartLSNs[1]]
	// get finds a key across the recovered socket sets (keys are disjoint).
	get := func(sets []map[uint16]*btree.Tree, k []byte) []byte {
		for _, set := range sets {
			if v, ok := set[1].Get(k, nil); ok {
				return v
			}
		}
		return nil
	}
	env.Spawn("recovery", func(p *sim.Proc) {
		sets, err := RecoverSets(p, kvTables(), meta, e.DiskManager(), torn...)
		if err != nil {
			t.Error(err)
			return
		}
		if v := get(sets, k0); !bytes.Equal(v, []byte("before-0")) {
			t.Errorf("anchor-shard record of a vector-incomplete commit replayed: k0=%q", v)
		}
		if v := get(sets, k1); !bytes.Equal(v, []byte("before-1")) {
			t.Errorf("torn-shard record replayed: k1=%q", v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Sanity: with the full logs, the same recovery replays both sides.
	env.Spawn("recovery-full", func(p *sim.Proc) {
		sets, err := RecoverSets(p, kvTables(), meta, e.DiskManager(), logs...)
		if err != nil {
			t.Error(err)
			return
		}
		if v := get(sets, k0); !bytes.Equal(v, []byte("after-0")) {
			t.Errorf("intact recovery lost k0: %q", v)
		}
		if v := get(sets, k1); !bytes.Equal(v, []byte("after-1")) {
			t.Errorf("intact recovery lost k1: %q", v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryIgnoresUncommittedTail simulates a crash with a torn log
// tail: the damaged suffix must be skipped and everything before it
// recovered.
func TestRecoveryIgnoresUncommittedTail(t *testing.T) {
	env := sim.NewEnv()
	e := NewDORA(env, platform.HC2(), kvTables(), HashScheme(2))
	for i := 0; i < 100; i++ {
		e.Load(1, storage.Uint64Key(uint64(i)), []byte("base"))
	}
	var meta CheckpointMeta
	env.Spawn("driver", func(p *sim.Proc) {
		meta = Checkpoint(p, e.Tables(), e.DiskManager(), e.LogStore())
		term := &Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(1)}
		k := storage.Uint64Key(5)
		e.Submit(term, func(tx Tx) bool {
			return tx.Phase(Action{Table: 1, Key: k, Body: func(c AccessCtx) bool {
				return c.Update(1, k, []byte("committed"))
			}})
		})
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Tear the last 5 bytes off the durable log.
	data := e.LogStore().Bytes()
	torn := data[:len(data)-5]
	env.Spawn("recovery", func(p *sim.Proc) {
		trees, err := Recover(p, kvTables(), meta, e.DiskManager(), torn)
		if err != nil {
			t.Error(err)
			return
		}
		// The committed update's commit record may itself be in the torn
		// region; either way recovery must not corrupt anything.
		if err := trees[1].Validate(); err != nil {
			t.Error(err)
		}
		if trees[1].Size() != 100 {
			t.Errorf("size=%d", trees[1].Size())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
