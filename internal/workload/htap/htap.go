// Package htap implements the CH-benCHmark-style mixed workloads that wake
// the analytics half of the bionic machine: an OLTP transaction mix (TPC-C
// or YCSB) running concurrently with analytical range scans over columnar
// projections of the row store.
//
// A Mixed value is both halves at once. As a core.Workload it delegates to
// the inner OLTP workload; as a core.Analytics it attaches the projection
// mirror (mirror.go) to the run: columnar projections maintained from the
// engine's own write path — the overlay bulk-merge on the bionic engine, an
// ETL-style refresh daemon on the software engines — scanned by per-socket
// scanner engines (bionic) or by the CPU out of host memory (conventional
// and DORA). Scans therefore see a bounded-staleness snapshot whose
// freshness is measured against the durability subsystem's vector durable
// point, the paper's "fresh transactional state meets bulk analysis"
// tension made into a metric.
package htap

import (
	"encoding/binary"

	"bionicdb/internal/columnar"
	"bionicdb/internal/core"
	"bionicdb/internal/hw/scanner"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"
)

// ColSpec extracts one projected uint64 column from a row image.
type ColSpec struct {
	Name    string
	Extract func(key, val []byte) uint64
}

// ProjSpec maps one OLTP table into a columnar projection. The projected
// tables must be delete-free in the transaction mix: the overlay merge path
// propagates upserts only, so a projection over a table with deletes would
// retain ghosts (the staleness contract in DESIGN.md).
type ProjSpec struct {
	Table uint16 // source OLTP table id
	Name  string // projection name
	// Key derives the projection's dense uint64 primary key from the row.
	Key  func(key, val []byte) uint64
	Cols []ColSpec
}

// Query is one analytical query template over a projection.
type Query struct {
	Name string
	Proj string
	// Make draws a predicate instance and the projected column subset from
	// the client's private stream.
	Make func(r *sim.Rand) (scanner.Pred, []string)
}

// Params tunes the analytical half.
type Params struct {
	// ScanTerminalsPerSocket is the closed-loop analytical clients per
	// socket (default 2).
	ScanTerminalsPerSocket int
	// RefreshInterval is the host-path projection refresh cadence (default
	// 10ms, matching the overlay merge interval so both maintenance paths
	// promise the same staleness bound).
	RefreshInterval sim.Duration
	// ScanConfig tunes the scanner engines (zero value uses defaults).
	ScanConfig scanner.Config
}

// DefaultParams returns the calibrated analytical parameters.
func DefaultParams() Params {
	return Params{
		ScanTerminalsPerSocket: 2,
		RefreshInterval:        10 * sim.Millisecond,
		ScanConfig:             scanner.DefaultConfig(),
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.ScanTerminalsPerSocket <= 0 {
		p.ScanTerminalsPerSocket = d.ScanTerminalsPerSocket
	}
	if p.RefreshInterval <= 0 {
		p.RefreshInterval = d.RefreshInterval
	}
	if p.ScanConfig.Slots <= 0 {
		p.ScanConfig = d.ScanConfig
	}
	return p
}

// Mixed is a hybrid workload: the embedded OLTP workload plus the
// analytical half's projections and query mix. It implements both
// core.Workload (by delegation) and core.Analytics.
type Mixed struct {
	core.Workload // the OLTP half

	name    string
	specs   []ProjSpec
	queries []Query
	params  Params

	lastRun *Run // most recent Attach, for post-run test inspection
}

// Name implements core.Workload.
func (m *Mixed) Name() string { return m.name }

// Specs returns the projection specs.
func (m *Mixed) Specs() []ProjSpec { return m.specs }

// LastRun returns the most recently attached analytical run, for tests
// that inspect the mirror after core.Run returns. Each core.Run gets its
// own Mixed (bench.WorkloadSpec.Make), so this is that run's mirror.
func (m *Mixed) LastRun() *Run { return m.lastRun }

// u64at reads a big-endian uint64 field at byte offset off, or 0 when the
// image is too short (the projection never sees such rows in practice).
func u64at(b []byte, off int) uint64 {
	if len(b) < off+8 {
		return 0
	}
	return binary.BigEndian.Uint64(b[off : off+8])
}

// NewYCSB builds the YCSB-backed hybrid: the usertable projected to its key
// plus the first 8 payload bytes as a uint64 measure column ("f0"), scanned
// by key-range queries with a random selectivity threshold on f0.
func NewYCSB(cfg ycsb.Config, p Params) *Mixed {
	inner := ycsb.New(cfg)
	records := uint64(inner.Records())
	specs := []ProjSpec{{
		Table: ycsb.TUser,
		Name:  "usertable",
		Key:   func(key, val []byte) uint64 { return storage.DecodeUint64(key) },
		Cols: []ColSpec{
			{Name: "f0", Extract: func(key, val []byte) uint64 { return u64at(val, 0) }},
		},
	}}
	queries := []Query{{
		Name: "range-f0",
		Proj: "usertable",
		Make: func(r *sim.Rand) (scanner.Pred, []string) {
			span := records / 4
			if span < 1 {
				span = 1
			}
			lo := uint64(r.Intn(int(records)))
			hi := lo + span
			thresh := r.Uint64() // uniform selectivity on the uniform f0
			return func(t *columnar.Table, pos int) bool {
				k := t.U64At("key", pos)
				return k >= lo && k < hi && t.U64At("f0", pos) < thresh
			}, []string{"key", "f0"}
		},
	}}
	return &Mixed{Workload: inner, name: "htap-ycsb", specs: specs, queries: queries, params: p.withDefaults()}
}

// NewTPCC builds the TPC-C-backed hybrid, CH-benCHmark style: stock and
// order-line projected into columnar form, scanned by a low-stock query
// (stock below a drawn quantity threshold) and a revenue query (order
// lines above a drawn amount). Both source tables are delete-free in the
// mix, as the staleness contract requires.
func NewTPCC(cfg tpcc.Config, p Params) *Mixed {
	inner := tpcc.New(cfg)
	specs := []ProjSpec{
		{
			Table: tpcc.TStock,
			Name:  "stock",
			// (wid, iid) packs into one dense uint64: iid < 2^32.
			Key: func(key, val []byte) uint64 {
				row := tpcc.DecodeStock(val)
				return row.WID<<32 | row.IID
			},
			Cols: []ColSpec{
				{Name: "qty", Extract: func(key, val []byte) uint64 { return uint64(tpcc.DecodeStock(val).Qty) }},
				{Name: "ytd", Extract: func(key, val []byte) uint64 { return tpcc.DecodeStock(val).YTD }},
				{Name: "ordercnt", Extract: func(key, val []byte) uint64 { return uint64(tpcc.DecodeStock(val).OrderCnt) }},
			},
		},
		{
			Table: tpcc.TOrderLine,
			Name:  "orderline",
			// (wid, did, oid, ol) packs densely: did<32, oid<2^24, ol<2^8.
			Key: func(key, val []byte) uint64 {
				row := tpcc.DecodeOrderLine(val)
				return ((row.WID*32+row.DID)<<24|row.OID)<<8 | row.OL
			},
			Cols: []ColSpec{
				{Name: "amount", Extract: func(key, val []byte) uint64 { return tpcc.DecodeOrderLine(val).Amount }},
				{Name: "qty", Extract: func(key, val []byte) uint64 { return uint64(tpcc.DecodeOrderLine(val).Qty) }},
			},
		},
	}
	queries := []Query{
		{
			Name: "low-stock",
			Proj: "stock",
			Make: func(r *sim.Rand) (scanner.Pred, []string) {
				thresh := uint64(r.Range(10, 20))
				return func(t *columnar.Table, pos int) bool {
					return t.U64At("qty", pos) < thresh
				}, []string{"key", "qty"}
			},
		},
		{
			Name: "revenue",
			Proj: "orderline",
			Make: func(r *sim.Rand) (scanner.Pred, []string) {
				thresh := uint64(r.Range(5000, 50000)) // cents
				return func(t *columnar.Table, pos int) bool {
					return t.U64At("amount", pos) > thresh
				}, []string{"key", "amount"}
			},
		},
	}
	return &Mixed{Workload: inner, name: "htap-tpcc", specs: specs, queries: queries, params: p.withDefaults()}
}
