package htap

import (
	"fmt"

	"bionicdb/internal/columnar"
	"bionicdb/internal/core"
	"bionicdb/internal/hw/overlay"
	"bionicdb/internal/hw/scanner"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/wal"
)

// refreshInstrPerRow is the host refresh path's CPU cost per re-extracted
// row: decode the row image and write the projected values.
const refreshInstrPerRow = 40

// overlayEngine is the engine surface the merge-fed maintenance path needs.
type overlayEngine interface {
	Overlay() *overlay.Store
}

// logSetEngine is the engine surface the freshness metric needs.
type logSetEngine interface {
	LogSet() *wal.LogSet
}

// projTable is one live projection: the spec plus its columnar table.
type projTable struct {
	spec ProjSpec
	col  *columnar.Table
	vals []any // Upsert scratch, reused across rows
}

// apply upserts one row image into the projection and returns the projected
// bytes written.
func (pt *projTable) apply(key, val []byte) int {
	for i, c := range pt.spec.Cols {
		pt.vals[i] = c.Extract(key, val)
	}
	pt.col.Upsert(pt.spec.Key(key, val), pt.vals...)
	return 8 * (1 + len(pt.spec.Cols))
}

// newProjTable builds an empty projection for spec on pl.
func newProjTable(pl *platform.Platform, spec ProjSpec) *projTable {
	cols := make([]*columnar.Column, 0, 1+len(spec.Cols))
	cols = append(cols, columnar.U64Col("key"))
	for _, c := range spec.Cols {
		cols = append(cols, columnar.U64Col(c.Name))
	}
	return &projTable{
		spec: spec,
		col:  columnar.NewTable(pl, spec.Name, cols...),
		vals: make([]any, len(spec.Cols)),
	}
}

// BuildProjection builds a fresh projection of spec from the rows scan
// yields — the "rebuild from the row store" side of the equivalence tests.
func BuildProjection(pl *platform.Platform, spec ProjSpec, scan func(fn func(k, v []byte) bool)) *columnar.Table {
	pt := newProjTable(pl, spec)
	scan(func(k, v []byte) bool {
		pt.apply(k, v)
		return true
	})
	return pt.col
}

// Run is one run's attached analytical subsystem: the projection mirror,
// its maintenance path, and the scan clients. It implements
// core.AnalyticsRun.
type Run struct {
	m   *Mixed
	env *sim.Env
	eng core.Engine
	pl  *platform.Platform
	log *wal.LogSet // nil when the engine has no log set
	r   *sim.Rand

	hw       bool              // merge-fed projections + hardware scanners
	scanners []*scanner.Engine // per socket, hw mode only
	tables   []*projTable      // spec order
	byName   map[string]*projTable

	// abd is the analytical half's CPU breakdown, kept separate from the
	// engine's Figure 3 breakdown so OLTP component shares stay comparable
	// across HTAP and pure-OLTP runs.
	abd stats.Breakdown

	// Freshness stamp: when the projections were last brought up to date
	// and the durable vector they reflect.
	snapTime  sim.Time
	snapVec   []wal.LSN
	prevStamp sim.Time
	pendBytes int // projected bytes applied since the last stamp (hw path)

	st      stats.ScanStats
	stopped bool

	// rec, when non-nil, records one span per analytical scan pass
	// (SetRecorder; host-side only).
	rec *obs.ShardRec
}

// SetRecorder attaches the flight recorder's ring for the shard the scan
// clients run on; the harness wires it when tracing is enabled. Attaching
// it changes no simulated behavior.
func (mr *Run) SetRecorder(rec *obs.ShardRec) { mr.rec = rec }

// Attach implements core.Analytics: build the projections from the
// populated row store, wire the maintenance path, and remember the run for
// post-run inspection.
func (m *Mixed) Attach(env *sim.Env, eng core.Engine, r *sim.Rand) core.AnalyticsRun {
	mr := &Run{
		m: m, env: env, eng: eng, pl: eng.Platform(), r: r,
		byName: make(map[string]*projTable),
	}
	if le, ok := eng.(logSetEngine); ok {
		mr.log = le.LogSet()
	}
	var ov *overlay.Store
	if oe, ok := eng.(overlayEngine); ok {
		ov = oe.Overlay()
	}
	mr.hw = ov != nil

	for _, spec := range m.specs {
		pt := newProjTable(mr.pl, spec)
		// Initial full build from the freshly-populated row store: like
		// population itself, structural and untimed.
		eng.ScanRaw(spec.Table, nil, nil, func(k, v []byte) bool {
			pt.apply(k, v)
			return true
		})
		mr.tables = append(mr.tables, pt)
		mr.byName[spec.Name] = pt
	}

	if mr.hw {
		// Merge-fed path: the overlay's bulk-merge daemon applies every
		// dirty row to the projection as it merges, and the post-pass hook
		// charges the columnar write-back and stamps freshness — the scans'
		// staleness bound is the merge interval plus one pass.
		for _, pt := range mr.tables {
			pt := pt
			ov.TableByID(pt.spec.Table).MergeFn = func(key, val []byte) {
				mr.pendBytes += pt.apply(key, val)
			}
		}
		ov.AfterMerge = mr.afterMerge
		// Per-socket scanner engines: the scan units scale with the
		// machine; SG-DRAM and PCIe stay the shared devices they are.
		for s := 0; s < mr.pl.Cfg.NumSockets(); s++ {
			mr.scanners = append(mr.scanners, scanner.New(mr.pl, m.params.ScanConfig))
		}
	} else {
		// Host path: an ETL-style refresh daemon re-extracts the projected
		// tables every interval on a core the OLTP side also wants — the
		// conventional machine's HTAP tax.
		env.Spawn("htap-refresh", func(p *sim.Proc) {
			for {
				p.Wait(m.params.RefreshInterval)
				mr.refreshOnce(p)
				if mr.stopped {
					return
				}
			}
		})
	}
	mr.stampFresh(env.Now())
	m.lastRun = mr
	return mr
}

// stampFresh records that the projections now reflect the row store as of
// now, and the durable vector they cover.
func (mr *Run) stampFresh(now sim.Time) {
	if gap := now.Sub(mr.prevStamp); gap > mr.st.GapMax && mr.st.Refreshes > 0 {
		mr.st.GapMax = gap
	}
	mr.prevStamp = now
	mr.snapTime = now
	if mr.log != nil {
		mr.snapVec = mr.log.DurableVector()
	}
	mr.st.Refreshes++
}

// afterMerge runs at the end of every overlay merge pass: charge the
// columnar write-back for the applied projection bytes, then stamp.
func (mr *Run) afterMerge(p *sim.Proc) {
	if mr.pendBytes > 0 {
		mr.pl.SGDRAM.Transfer(p, mr.pendBytes)
		mr.pendBytes = 0
	}
	mr.stampFresh(p.Now())
}

// refreshOnce is one host-path refresh pass: re-extract every projected
// table from the row store, charging CPU per row and one host-memory stream
// for the projection footprint.
func (mr *Run) refreshOnce(p *sim.Proc) {
	task := mr.pl.NewTask(p, mr.pl.Cores[0], &mr.abd)
	rows, bytes := 0, 0
	for _, pt := range mr.tables {
		mr.eng.ScanRaw(pt.spec.Table, nil, nil, func(k, v []byte) bool {
			bytes += pt.apply(k, v)
			rows++
			return true
		})
	}
	task.Exec(stats.CompOther, rows*refreshInstrPerRow)
	task.Flush()
	mr.pl.HostDRAM.Transfer(p, bytes)
	mr.st.RefreshRows += int64(rows)
	mr.stampFresh(p.Now())
}

// vecLE reports a <= b elementwise. Vectors of different lengths (never the
// case within one run) compare false.
func vecLE(a, b []wal.LSN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Start implements core.AnalyticsRun: spawn the closed-loop scan clients,
// spread across sockets (and, within a socket, across cores from the top —
// the OLTP terminals fill cores from the bottom).
func (mr *Run) Start(stop *bool) {
	nSock := mr.pl.Cfg.NumSockets()
	coresPer := mr.pl.Cfg.Cores
	n := mr.m.params.ScanTerminalsPerSocket * nSock
	for i := 0; i < n; i++ {
		i := i
		cr := mr.r.Split()
		mr.env.Spawn(fmt.Sprintf("analyst%d", i), func(p *sim.Proc) {
			socket := i % nSock
			core := mr.pl.Sockets[socket].Cores[coresPer-1-(i/nSock)%coresPer]
			for !*stop {
				mr.scanOnce(p, core, cr, socket)
			}
		})
	}
}

// scanOnce runs one analytical query: observe freshness at scan start, then
// scan the projection through the platform-appropriate path.
func (mr *Run) scanOnce(p *sim.Proc, core *platform.Core, cr *sim.Rand, socket int) {
	q := mr.m.queries[cr.Intn(len(mr.m.queries))]
	pt := mr.byName[q.Proj]
	pred, cols := q.Make(cr)

	// Freshness observation: the snapshot the scan will see, against the
	// machine's durable point right now.
	stale := p.Now().Sub(mr.snapTime)
	mr.st.StaleSum += stale
	if stale > mr.st.StaleMax {
		mr.st.StaleMax = stale
	}
	if mr.log != nil {
		durable := mr.log.DurableVector()
		if !vecLE(mr.snapVec, durable) {
			mr.st.SnapViolations++
		}
		var lag int64
		for i := range durable {
			if i < len(mr.snapVec) {
				lag += int64(durable[i] - mr.snapVec[i])
			}
		}
		if lag > mr.st.LagBytesMax {
			mr.st.LagBytesMax = lag
		}
	}

	task := mr.pl.NewTask(p, core, &mr.abd)
	start := p.Now()
	rows := pt.col.Rows()
	var out []int
	if mr.hw {
		out = mr.scanners[socket].Scan(task, pt.col, pred, cols)
	} else {
		out = scanner.HostScan(task, mr.pl, pt.col, pred, cols, mr.m.params.ScanConfig)
	}
	task.Flush()
	mr.st.Scans++
	mr.st.Rows += int64(rows)
	mr.st.RowsOut += int64(len(out))
	mr.st.Bytes += int64(rows) * int64(pt.col.RowWidth())
	mr.st.ScanTime += p.Now().Sub(start)
	if end := p.Now(); end > start {
		mr.rec.Record(obs.Span{Start: start, End: end, Kind: obs.KindScan,
			Socket: int32(socket)})
	}
}

// Snapshot implements core.AnalyticsRun.
func (mr *Run) Snapshot() stats.ScanStats { return mr.st }

// Close implements core.AnalyticsRun: stop the refresh daemon (it performs
// one final pass on its next tick, mirroring the overlay merge daemon's
// final drain).
func (mr *Run) Close() { mr.stopped = true }

// Stats returns the cumulative scan statistics, for tests.
func (mr *Run) Stats() stats.ScanStats { return mr.st }

// HW reports whether the run used the merge-fed hardware path.
func (mr *Run) HW() bool { return mr.hw }

// Projection returns the named live projection table, for tests.
func (mr *Run) Projection(name string) *columnar.Table { return mr.byName[name].col }
