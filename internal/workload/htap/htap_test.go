package htap

import (
	"fmt"
	"testing"

	"bionicdb/internal/btree"
	"bionicdb/internal/core"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
	"bionicdb/internal/wal"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"
)

func smallYCSBMixed() *Mixed {
	cfg := ycsb.WorkloadA()
	cfg.Records = 2000
	return NewYCSB(cfg, DefaultParams())
}

func smallTPCCMixed() *Mixed {
	return NewTPCC(tpcc.SmallConfig(), DefaultParams())
}

// runMixed runs one small hybrid measurement and returns the result, the
// engine (still readable after the run; ScanRaw is untimed) and the mirror.
func runMixed(t *testing.T, wl *Mixed, mk func(env *sim.Env, wl core.Workload) core.Engine) (*core.Result, core.Engine, *Run) {
	t.Helper()
	var eng core.Engine
	cfg := core.RunConfig{
		Terminals: 8,
		Warmup:    1 * sim.Millisecond,
		Measure:   5 * sim.Millisecond,
		Seed:      42,
		Analytics: wl,
	}
	res, err := core.Run(cfg, wl, func(env *sim.Env) core.Engine {
		eng = mk(env, wl)
		return eng
	})
	if err != nil {
		t.Fatal(err)
	}
	mr := wl.LastRun()
	if mr == nil {
		t.Fatal("analytics never attached")
	}
	return res, eng, mr
}

func conventionalMk(env *sim.Env, wl core.Workload) core.Engine {
	return core.NewConventional(env, platform.HC2(), wl.Tables())
}

func bionicMk(env *sim.Env, wl core.Workload) core.Engine {
	return core.NewBionic(env, platform.HC2(), wl.Tables(), wl.Scheme(4), core.AllOffloads(), 8)
}

// engineCases are the two maintenance paths: host-refresh (conventional)
// and merge-fed hardware (bionic).
func engineCases() []struct {
	name   string
	mk     func(env *sim.Env, wl core.Workload) core.Engine
	wantHW bool
} {
	return []struct {
		name   string
		mk     func(env *sim.Env, wl core.Workload) core.Engine
		wantHW bool
	}{
		{"conventional", conventionalMk, false},
		{"bionic", bionicMk, true},
	}
}

// TestFreshnessInvariants pins the staleness contract on both maintenance
// paths: every scan's observed snapshot vector is elementwise <= the
// durable vector at scan start (zero violations — the projection never gets
// ahead of durability), and observed staleness never exceeds twice the
// maintenance interval (one interval of waiting plus one pass).
func TestFreshnessInvariants(t *testing.T) {
	for _, tc := range engineCases() {
		for _, wl := range []*Mixed{smallYCSBMixed(), smallTPCCMixed()} {
			t.Run(tc.name+"/"+wl.Name(), func(t *testing.T) {
				res, _, mr := runMixed(t, wl, tc.mk)
				if mr.HW() != tc.wantHW {
					t.Fatalf("maintenance path hw=%v, want %v", mr.HW(), tc.wantHW)
				}
				if res.Scan == nil {
					t.Fatal("Result.Scan is nil on an HTAP run")
				}
				if res.Scan.Scans == 0 {
					t.Fatal("no scans completed inside the measurement window")
				}
				st := mr.Stats() // cumulative, covers warmup and drain too
				if st.SnapViolations != 0 {
					t.Errorf("%d snapshot-vector violations; scans saw state ahead of the durable point", st.SnapViolations)
				}
				if st.Refreshes < 2 {
					t.Fatalf("only %d freshness stamps; maintenance path never ran", st.Refreshes)
				}
				if st.StaleMax > st.GapMax {
					t.Errorf("max observed staleness %v exceeds max refresh gap %v", st.StaleMax, st.GapMax)
				}
				bound := 2 * (10 * sim.Millisecond) // interval + one pass, both paths refresh every 10ms
				if st.GapMax > bound {
					t.Errorf("max refresh gap %v exceeds staleness bound %v", st.GapMax, bound)
				}
			})
		}
	}
}

// TestScanEquivalenceAtQuiesce pins projection maintenance against a serial
// rescan: after the run quiesces (final merge/refresh drain included), every
// live projection must hold exactly the rows a fresh rebuild from the row
// store produces — the incremental path loses nothing and invents nothing.
func TestScanEquivalenceAtQuiesce(t *testing.T) {
	for _, tc := range engineCases() {
		for _, mkwl := range []func() *Mixed{smallYCSBMixed, smallTPCCMixed} {
			wl := mkwl()
			t.Run(tc.name+"/"+wl.Name(), func(t *testing.T) {
				_, eng, mr := runMixed(t, wl, tc.mk)
				env2 := sim.NewEnv()
				defer env2.Close()
				pl2 := platform.New(env2, platform.HC2())
				for _, spec := range wl.Specs() {
					live := mr.Projection(spec.Name)
					rebuilt := BuildProjection(pl2, spec, func(fn func(k, v []byte) bool) {
						eng.ScanRaw(spec.Table, nil, nil, fn)
					})
					if live.Rows() == 0 {
						t.Errorf("%s: live projection is empty", spec.Name)
					}
					if got, want := live.ContentDigest(), rebuilt.ContentDigest(); got != want {
						t.Errorf("%s: live projection diverged from serial rescan (%d vs %d rows)\n live    %s\n rescan  %s",
							spec.Name, live.Rows(), rebuilt.Rows(), got, want)
					}
				}
			})
		}
	}
}

// checkpointable is the engine surface the crash variant needs (the same
// contract bench's fig-recovery uses).
type checkpointable interface {
	core.Engine
	Tables() map[uint16]*btree.Tree
	DiskManager() *storage.DiskManager
	LogSet() *wal.LogSet
}

// TestRecoveredProjectionsMatchRebuild is the crash variant: run the hybrid
// workload on a sharded-log bionic machine, crash cold, recover serially
// and in parallel (PR 5's RecoverMeasured), and prove the columnar
// projections rebuilt from either recovered row store are byte-identical —
// parallel shard replay changes nothing the analytics half can see.
func TestRecoveredProjectionsMatchRebuild(t *testing.T) {
	wl := smallYCSBMixed()
	pcfg := platform.HC2Scaled(2)
	pcfg.LogDevPerSocket = true

	env := sim.NewEnv()
	defer env.Close()
	eng := core.NewBionic(env, pcfg, wl.Tables(), wl.Scheme(2*pcfg.Cores), core.AllOffloads(), 8)
	ck, ok := interface{}(eng).(checkpointable)
	if !ok {
		t.Fatal("bionic engine is not checkpointable")
	}
	root := sim.NewRand(42)
	wl.Populate(eng.Load, root.Split())
	if warmer, ok := interface{}(eng).(interface{ Warm() }); ok {
		warmer.Warm()
	}

	// Checkpoint sharp before any terminal exists (adaptive stepping: the
	// checkpoint's simulated duration is not known up front and engine
	// daemons tick forever).
	var meta core.CheckpointMeta
	ckDone := false
	env.Spawn("checkpointer", func(p *sim.Proc) {
		meta = core.CheckpointAll(p, ck.Tables(), ck.DiskManager(), ck.LogSet())
		ckDone = true
	})
	step := sim.Time(1 * sim.Millisecond)
	for !ckDone {
		before := env.Executed()
		if err := env.RunUntil(env.Now() + step); err != nil {
			t.Fatal(err)
		}
		if env.Executed() == before {
			step *= 2
		} else {
			step = sim.Time(1 * sim.Millisecond)
		}
	}

	// Run the mixed load for a fixed window, then crash cold: no drain, no
	// Close — staged log bytes die with the machine.
	endT := env.Now() + sim.Time(6*sim.Millisecond)
	for i := 0; i < 8; i++ {
		i := i
		tr := root.Split()
		env.Spawn(fmt.Sprintf("terminal%d", i), func(tp *sim.Proc) {
			term := &core.Terminal{ID: i, P: tp, Core: eng.Platform().Cores[i%len(eng.Platform().Cores)], R: tr}
			for {
				_, logic := wl.NextTxn(term.R)
				eng.Submit(term, logic)
			}
		})
	}
	if err := env.RunUntil(endT); err != nil {
		t.Fatal(err)
	}
	logs := ck.LogSet().Datas()
	if len(logs) != 2 {
		t.Fatalf("expected 2 log shards on a 2-socket sharded-log machine, got %d", len(logs))
	}
	defs := wl.Tables()

	boot := func(parallel bool) map[uint16]*btree.Tree {
		env2 := sim.NewEnv()
		defer env2.Close()
		pl2 := platform.New(env2, pcfg)
		dm2 := ck.DiskManager().Rebind(pl2.Disk)
		var trees map[uint16]*btree.Tree
		var err error
		env2.Spawn("recovery", func(p *sim.Proc) {
			var sets []map[uint16]*btree.Tree
			sets, _, err = core.RecoverMeasured(p, pl2, defs, meta, dm2, logs, parallel)
			if err == nil {
				trees = sets[0]
			}
		})
		if runErr := env2.Run(); runErr != nil {
			t.Fatal(runErr)
		}
		if err != nil {
			t.Fatal(err)
		}
		return trees
	}
	serialTrees := boot(false)
	parTrees := boot(true)
	if d1, d2 := core.ContentDigest(serialTrees), core.ContentDigest(parTrees); d1 != d2 {
		t.Fatalf("serial and parallel replay diverged before projection: %s vs %s", d1, d2)
	}

	// Rebuild every projection from both recovered row stores and pin the
	// columnar content digests identical.
	env3 := sim.NewEnv()
	defer env3.Close()
	pl3 := platform.New(env3, platform.HC2())
	fromTrees := func(trees map[uint16]*btree.Tree, spec ProjSpec, name string) string {
		pt := newProjTable(pl3, ProjSpec{Table: spec.Table, Name: name, Key: spec.Key, Cols: spec.Cols})
		trees[spec.Table].Scan(nil, nil, nil, func(k, v []byte) bool {
			pt.apply(k, v)
			return true
		})
		if pt.col.Rows() == 0 {
			t.Errorf("%s: recovered projection is empty", name)
		}
		return pt.col.ContentDigest()
	}
	for i, spec := range wl.Specs() {
		ser := fromTrees(serialTrees, spec, fmt.Sprintf("ser%d", i))
		par := fromTrees(parTrees, spec, fmt.Sprintf("par%d", i))
		if ser != par {
			t.Errorf("%s: projection from serial-recovered store %s != parallel-recovered %s", spec.Name, ser, par)
		}
	}
}
