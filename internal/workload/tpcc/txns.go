package tpcc

import (
	"sort"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// NewOrder is the spec's order-entry transaction (45%): read warehouse and
// district, allocate the order id, read+update one stock row per line
// (1% of orders carry an invalid item and roll back), then insert the
// order, its lines, and the new-order queue entry.
func (w *Workload) NewOrder(r *sim.Rand) core.TxnLogic {
	cfg := w.cfg
	wid := uint64(r.Range(1, cfg.Warehouses))
	did := uint64(r.Range(1, cfg.Districts))
	cid := w.randCID(r)
	olCnt := r.Range(5, 15)
	rollback := r.Bool(0.01)

	type line struct {
		iid     uint64
		supplyW uint64
		qty     uint32
	}
	lines := make([]line, olCnt)
	seen := map[uint64]bool{}
	for i := range lines {
		iid := w.randItem(r)
		for seen[iid] {
			iid = w.randItem(r)
		}
		seen[iid] = true
		supply := wid
		if cfg.Warehouses > 1 && r.Bool(0.01) {
			for supply == wid {
				supply = uint64(r.Range(1, cfg.Warehouses))
			}
			// remote line
		}
		lines[i] = line{iid: iid, supplyW: supply, qty: uint32(r.Range(1, 10))}
	}
	if rollback {
		lines[len(lines)-1].iid = uint64(cfg.Items + 1) // unused item id
	}
	entryD := uint64(r.Uint64())

	return func(tx core.Tx) bool {
		var oid uint64
		var amounts = make([]uint64, len(lines))
		// Phase 1: district allocates the order id; customer and
		// warehouse are read for tax/discount. The warehouse tax read
		// takes no entity lock (read-committed suffices, and it keeps the
		// entity-acquisition order warehouse < district cycle-free
		// against Payment).
		ok := tx.Phase(
			core.Action{Table: TDistrict, Key: DistrictKey(wid, did), Body: func(c core.AccessCtx) bool {
				dv, found := c.Read(TDistrict, DistrictKey(wid, did))
				if !found {
					return false
				}
				d := DecodeDistrict(dv)
				oid = d.NextOID
				d.NextOID++
				if !c.Update(TDistrict, DistrictKey(wid, did), d.Encode()) {
					return false
				}
				_, found = c.Read(TCustomer, CustomerKey(wid, did, cid))
				return found
			}},
			core.Action{Table: TWarehouse, Key: WarehouseKey(wid), NoLock: true, Body: func(c core.AccessCtx) bool {
				_, found := c.Read(TWarehouse, WarehouseKey(wid))
				return found
			}},
		)
		if !ok {
			return false
		}
		// Phase 2: one action per order line on its stock partition; the
		// read-only item lookup rides along (items are immutable).
		actions := make([]core.Action, len(lines))
		for i, ln := range lines {
			i, ln := i, ln
			actions[i] = core.Action{Table: TStock, Key: StockKey(ln.supplyW, ln.iid), Body: func(c core.AccessCtx) bool {
				iv, found := c.Read(TItem, ItemKey(ln.iid))
				if !found {
					return false // invalid item: spec rollback
				}
				item := DecodeItem(iv)
				sv, found := c.Read(TStock, StockKey(ln.supplyW, ln.iid))
				if !found {
					return false
				}
				s := DecodeStock(sv)
				if s.Qty >= int64(ln.qty)+10 {
					s.Qty -= int64(ln.qty)
				} else {
					s.Qty = s.Qty - int64(ln.qty) + 91
				}
				s.YTD += uint64(ln.qty)
				s.OrderCnt++
				if ln.supplyW != wid {
					s.RemoteCnt++
				}
				if !c.Update(TStock, StockKey(ln.supplyW, ln.iid), s.Encode()) {
					return false
				}
				amounts[i] = uint64(ln.qty) * uint64(item.Price)
				return true
			}}
		}
		if !tx.Phase(actions...) {
			return false
		}
		// Phase 3: materialize the order in the district partition.
		return tx.Phase(core.Action{Table: TOrder, Key: OrderKey(wid, did, oid), Body: func(c core.AccessCtx) bool {
			allLocal := uint32(1)
			for _, ln := range lines {
				if ln.supplyW != wid {
					allLocal = 0
				}
			}
			o := OrderRow{WID: wid, DID: did, OID: oid, CID: cid, EntryD: entryD, OLCnt: uint32(len(lines)), AllLocal: allLocal}
			if !c.Insert(TOrder, OrderKey(wid, did, oid), o.Encode()) {
				return false
			}
			if !c.Insert(TOrderCustIdx, storage.CompositeKey(wid, did, cid, oid), storage.Uint64Key(oid)) {
				return false
			}
			if !c.Insert(TNewOrder, OrderKey(wid, did, oid), []byte{1}) {
				return false
			}
			for i, ln := range lines {
				olr := OrderLineRow{WID: wid, DID: did, OID: oid, OL: uint64(i + 1), IID: ln.iid,
					SupplyW: ln.supplyW, Qty: ln.qty, Amount: amounts[i], DistInfo: "dist-info-pad"}
				if !c.Insert(TOrderLine, OrderLineKey(wid, did, oid, uint64(i+1)), olr.Encode()) {
					return false
				}
			}
			return true
		}})
	}
}

// Payment is the spec's payment transaction (43%): update warehouse and
// district YTD, select the customer (60% by last name), update the
// customer, and insert a history row. 15% of payments come from a remote
// customer.
func (w *Workload) Payment(r *sim.Rand) core.TxnLogic {
	cfg := w.cfg
	wid := uint64(r.Range(1, cfg.Warehouses))
	did := uint64(r.Range(1, cfg.Districts))
	cwid, cdid := wid, did
	if cfg.Warehouses > 1 && r.Bool(0.15) {
		for cwid == wid {
			cwid = uint64(r.Range(1, cfg.Warehouses))
		}
		cdid = uint64(r.Range(1, cfg.Districts))
	}
	byName := r.Bool(0.6)
	var cid uint64
	var lastName string
	if byName {
		lastName = LastName(w.randLastNum(r) % 1000)
	} else {
		cid = w.randCID(r)
	}
	amount := uint64(r.Range(100, 500000))
	uniq := r.Uint64()

	return func(tx core.Tx) bool {
		// The district and customer phases run first; the warehouse YTD
		// update — TPC-C's hottest row — runs as the final phase so the
		// warehouse entity is held for only one short phase before commit
		// instead of the whole transaction (otherwise every Payment on
		// the warehouse convoys behind whichever holder blocks).
		if !tx.Phase(core.Action{Table: TDistrict, Key: DistrictKey(wid, did), Body: func(c core.AccessCtx) bool {
			dv, found := c.Read(TDistrict, DistrictKey(wid, did))
			if !found {
				return false
			}
			d := DecodeDistrict(dv)
			d.YTD += amount
			return c.Update(TDistrict, DistrictKey(wid, did), d.Encode())
		}}) {
			return false
		}
		// Phase 2: customer selection and update in its home partition.
		custKey := CustomerKey(cwid, cdid, cid)
		if byName {
			custKey = DistrictKey(cwid, cdid) // routing only needs (w, d)
		}
		if !tx.Phase(core.Action{Table: TCustomer, Key: custKey, Body: func(c core.AccessCtx) bool {
			target := cid
			if byName {
				from, to := custNamePrefix(cwid, cdid, lastName)
				var ids []uint64
				c.Scan(TCustNameIdx, from, to, func(k, v []byte) bool {
					ids = append(ids, storage.DecodeUint64(v))
					return true
				})
				if len(ids) == 0 {
					return false // no such customer: spec rollback
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				target = ids[len(ids)/2]
			}
			cv, found := c.Read(TCustomer, CustomerKey(cwid, cdid, target))
			if !found {
				return false
			}
			cr := DecodeCustomer(cv)
			cr.Balance -= int64(amount)
			cr.YTDPayment += amount
			cr.PaymentCnt++
			if cr.Credit == 1 { // bad credit: data trail update
				cr.Data = "bc-trail"
			}
			return c.Update(TCustomer, CustomerKey(cwid, cdid, target), cr.Encode())
		}}) {
			return false
		}
		// Phase 3: history row in the home district partition.
		histKey := storage.CompositeKey(wid, did, cwid, uniq)
		if !tx.Phase(core.Action{Table: THistory, Key: histKey, Body: func(c core.AccessCtx) bool {
			row := storage.NewRecordWriter(48).Uint64(cwid).Uint64(cdid).Uint64(amount).String("payment").Finish()
			return c.Insert(THistory, histKey, row)
		}}) {
			return false
		}
		// Final phase: the warehouse YTD update, held only across commit.
		return tx.Phase(core.Action{Table: TWarehouse, Key: WarehouseKey(wid), Body: func(c core.AccessCtx) bool {
			wv, found := c.Read(TWarehouse, WarehouseKey(wid))
			if !found {
				return false
			}
			wr := DecodeWarehouse(wv)
			wr.YTD += amount
			return c.Update(TWarehouse, WarehouseKey(wid), wr.Encode())
		}})
	}
}

// OrderStatus is the spec's read-only status inquiry (4%): locate the
// customer (60% by last name), find their most recent order, read its
// lines.
func (w *Workload) OrderStatus(r *sim.Rand) core.TxnLogic {
	cfg := w.cfg
	wid := uint64(r.Range(1, cfg.Warehouses))
	did := uint64(r.Range(1, cfg.Districts))
	byName := r.Bool(0.6)
	var cid uint64
	var lastName string
	if byName {
		lastName = LastName(w.randLastNum(r) % 1000)
	} else {
		cid = w.randCID(r)
	}

	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TCustomer, Key: DistrictKey(wid, did), Body: func(c core.AccessCtx) bool {
			target := cid
			if byName {
				from, to := custNamePrefix(wid, did, lastName)
				var ids []uint64
				c.Scan(TCustNameIdx, from, to, func(k, v []byte) bool {
					ids = append(ids, storage.DecodeUint64(v))
					return true
				})
				if len(ids) == 0 {
					return false
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				target = ids[len(ids)/2]
			}
			if _, found := c.Read(TCustomer, CustomerKey(wid, did, target)); !found {
				return false
			}
			// Most recent order via the customer-order index.
			var lastOID uint64
			c.Scan(TOrderCustIdx, storage.CompositeKey(wid, did, target, 0), storage.CompositeKey(wid, did, target+1, 0), func(k, v []byte) bool {
				lastOID = storage.DecodeUint64(v)
				return true
			})
			if lastOID == 0 {
				return true // customer with no orders: still a success
			}
			ov, found := c.Read(TOrder, OrderKey(wid, did, lastOID))
			if !found {
				return false
			}
			o := DecodeOrder(ov)
			count := uint32(0)
			c.Scan(TOrderLine, OrderLineKey(wid, did, lastOID, 0), OrderLineKey(wid, did, lastOID+1, 0), func(k, v []byte) bool {
				count++
				return true
			})
			return count == o.OLCnt
		}})
	}
}

// Delivery is the spec's deferred delivery batch (4%): for every district,
// pop the oldest undelivered order, stamp the carrier, mark its lines
// delivered, and credit the customer.
func (w *Workload) Delivery(r *sim.Rand) core.TxnLogic {
	cfg := w.cfg
	wid := uint64(r.Range(1, cfg.Warehouses))
	carrier := uint32(r.Range(1, 10))
	deliveryD := uint64(r.Uint64())

	return func(tx core.Tx) bool {
		// Districts are delivered in ascending order, one phase each:
		// concurrent Deliveries then acquire district entities in the same
		// canonical order and cannot deadlock each other.
		for d := 1; d <= cfg.Districts; d++ {
			did := uint64(d)
			ok := tx.Phase(core.Action{Table: TNewOrder, Key: DistrictKey(wid, did), Body: func(c core.AccessCtx) bool {
				// Oldest undelivered order in this district.
				var oldest uint64
				c.Scan(TNewOrder, OrderKey(wid, did, 0), OrderKey(wid, did+1, 0), func(k, v []byte) bool {
					oldest = storage.DecodeUint64(k[16:])
					return false // first = oldest
				})
				if oldest == 0 {
					return true // nothing to deliver: skip, not an abort
				}
				if !c.Delete(TNewOrder, OrderKey(wid, did, oldest)) {
					return false
				}
				ov, found := c.Read(TOrder, OrderKey(wid, did, oldest))
				if !found {
					return false
				}
				o := DecodeOrder(ov)
				o.Carrier = carrier
				if !c.Update(TOrder, OrderKey(wid, did, oldest), o.Encode()) {
					return false
				}
				var total uint64
				type olUpd struct {
					key []byte
					row OrderLineRow
				}
				var upds []olUpd
				c.Scan(TOrderLine, OrderLineKey(wid, did, oldest, 0), OrderLineKey(wid, did, oldest+1, 0), func(k, v []byte) bool {
					ol := DecodeOrderLine(v)
					total += ol.Amount
					ol.DeliveryD = deliveryD
					upds = append(upds, olUpd{key: append([]byte(nil), k...), row: ol})
					return true
				})
				for _, u := range upds {
					if !c.Update(TOrderLine, u.key, u.row.Encode()) {
						return false
					}
				}
				cv, found := c.Read(TCustomer, CustomerKey(wid, did, o.CID))
				if !found {
					return false
				}
				cr := DecodeCustomer(cv)
				cr.Balance += int64(total)
				cr.DeliveryCnt++
				return c.Update(TCustomer, CustomerKey(wid, did, o.CID), cr.Encode())
			}})
			if !ok {
				return false
			}
		}
		return true
	}
}

// StockLevel is the spec's warehouse inventory inquiry (4%): read the
// district's order horizon, scan the last 20 orders' lines, and count
// distinct items with stock below a threshold. It is the index-heaviest
// transaction — the right bar of Figure 3 — and may run at relaxed
// isolation, so the stock reads take no entity locks.
func (w *Workload) StockLevel(r *sim.Rand) core.TxnLogic {
	cfg := w.cfg
	wid := uint64(r.Range(1, cfg.Warehouses))
	did := uint64(r.Range(1, cfg.Districts))
	threshold := int64(r.Range(10, 20))

	return func(tx core.Tx) bool {
		// The spec allows StockLevel to run at read-committed isolation,
		// so no action takes entity locks: a long inventory inquiry never
		// camps on the district that NewOrder and Payment need.
		var nextOID uint64
		if !tx.Phase(core.Action{Table: TDistrict, Key: DistrictKey(wid, did), NoLock: true, Body: func(c core.AccessCtx) bool {
			dv, found := c.Read(TDistrict, DistrictKey(wid, did))
			if !found {
				return false
			}
			nextOID = DecodeDistrict(dv).NextOID
			return true
		}}) {
			return false
		}
		lowOID := uint64(1)
		if nextOID > 20 {
			lowOID = nextOID - 20
		}
		// Phase 2: collect the distinct items of the last 20 orders.
		items := map[uint64]bool{}
		if !tx.Phase(core.Action{Table: TOrderLine, Key: DistrictKey(wid, did), NoLock: true, Body: func(c core.AccessCtx) bool {
			c.Scan(TOrderLine, OrderLineKey(wid, did, lowOID, 0), OrderLineKey(wid, did, nextOID, 0), func(k, v []byte) bool {
				items[DecodeOrderLine(v).IID] = true
				return true
			})
			return true
		}}) {
			return false
		}
		if len(items) == 0 {
			return true
		}
		// Phase 3: probe each distinct item's stock row (dirty reads
		// allowed: no entity lock). Probes batch into one action per
		// owning partition, the way a DORA implementation fans this out.
		iids := make([]uint64, 0, len(items))
		for iid := range items {
			iids = append(iids, iid)
		}
		sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
		groups := make(map[int][]uint64)
		for _, iid := range iids {
			p := w.stockPartition(wid, iid)
			groups[p] = append(groups[p], iid)
		}
		parts := make([]int, 0, len(groups))
		for p := range groups {
			parts = append(parts, p)
		}
		sort.Ints(parts)
		lowCount := 0
		actions := make([]core.Action, 0, len(groups))
		for _, p := range parts {
			group := groups[p]
			actions = append(actions, core.Action{Table: TStock, Key: StockKey(wid, group[0]), NoLock: true, Body: func(c core.AccessCtx) bool {
				for _, iid := range group {
					sv, found := c.Read(TStock, StockKey(wid, iid))
					if !found {
						return false
					}
					if DecodeStock(sv).Qty < threshold {
						lowCount++
					}
				}
				return true
			}})
		}
		return tx.Phase(actions...)
	}
}
