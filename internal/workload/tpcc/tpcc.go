// Package tpcc implements the TPC-C benchmark: the nine-table warehouse
// schema, spec population rules (scaled), the NURand input distributions,
// and all five transactions in the standard 45/43/4/4/4 mix. TPC-C
// StockLevel is the right bar of the paper's Figure 3. Routing follows the
// DORA convention: district-owned tables partition by (warehouse,
// district), stock by (warehouse, item), and the district is the entity
// lock granule — the real TPC-C contention point.
package tpcc

import (
	"fmt"
	"strconv"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// Table ids.
const (
	TWarehouse uint16 = iota + 10
	TDistrict
	TCustomer
	TCustNameIdx // (w, d, last, c) -> c
	TItem
	TStock
	TOrder
	TOrderCustIdx // (w, d, c, o) -> o
	TNewOrder
	TOrderLine
	THistory
)

// Config scales the benchmark. The spec values are Districts=10,
// CustomersPerDistrict=3000, Items=100000, InitialOrdersPerDistrict=3000;
// tests shrink them.
type Config struct {
	Warehouses               int
	Districts                int
	CustomersPerDistrict     int
	Items                    int
	InitialOrdersPerDistrict int
}

// DefaultConfig returns the scaled configuration used by the figure
// generators: 4 warehouses at spec ratios, with a reduced initial order
// backlog to keep population tractable.
func DefaultConfig() Config {
	return Config{Warehouses: 4, Districts: 10, CustomersPerDistrict: 3000, Items: 100000, InitialOrdersPerDistrict: 100}
}

// SmallConfig returns a miniature database for unit tests.
func SmallConfig() Config {
	return Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 30, Items: 200, InitialOrdersPerDistrict: 10}
}

// Workload implements core.Workload.
type Workload struct {
	cfg   Config
	cID   uint64 // NURand C constants, fixed per run
	cLast uint64
	cItem uint64

	// parts records the partition count of the last Scheme call so
	// StockLevel can batch its stock probes per partition (8 before any
	// Scheme call).
	parts int
}

// New creates a TPC-C workload.
func New(cfg Config) *Workload {
	return &Workload{cfg: cfg, cID: 259, cLast: 173, cItem: 7911, parts: 8}
}

// stockPartition mirrors Scheme's stock routing for probe batching.
func (w *Workload) stockPartition(wid, iid uint64) int {
	return int((wid*7919 + iid) % uint64(w.parts))
}

// Name implements core.Workload.
func (w *Workload) Name() string { return "tpcc" }

// Config returns the scale parameters.
func (w *Workload) Config() Config { return w.cfg }

// Tables implements core.Workload.
func (w *Workload) Tables() []core.TableDef {
	return []core.TableDef{
		{ID: TWarehouse, Name: "warehouse", Order: 64},
		{ID: TDistrict, Name: "district", Order: 64},
		{ID: TCustomer, Name: "customer", Order: 128},
		{ID: TCustNameIdx, Name: "customer_name_idx", Order: 128},
		{ID: TItem, Name: "item", Order: 128},
		{ID: TStock, Name: "stock", Order: 128},
		{ID: TOrder, Name: "orders", Order: 128},
		{ID: TOrderCustIdx, Name: "order_cust_idx", Order: 128},
		{ID: TNewOrder, Name: "new_order", Order: 128},
		{ID: TOrderLine, Name: "order_line", Order: 128},
		{ID: THistory, Name: "history", Order: 128},
	}
}

// Scheme implements core.Workload.
func (w *Workload) Scheme(partitions int) core.PartitionScheme {
	w.parts = partitions
	return core.PartitionScheme{
		Partitions: partitions,
		Route: func(table uint16, key []byte) int {
			switch table {
			case TItem:
				return int(storage.DecodeUint64(key) % uint64(partitions))
			case TStock:
				wid := storage.DecodeUint64(key)
				iid := storage.DecodeUint64(key[8:])
				return int((wid*7919 + iid) % uint64(partitions))
			case TWarehouse:
				return int(storage.DecodeUint64(key) % uint64(partitions))
			default:
				// District-owned tables: (w, d) are the first two fields.
				wid := storage.DecodeUint64(key)
				did := storage.DecodeUint64(key[8:])
				return int((wid*31 + did) % uint64(partitions))
			}
		},
		Entity: func(table uint16, key []byte) string {
			// Manual builds of the old fmt.Sprintf("%c%d.%d", ...) strings:
			// entities are computed per action, so they must not pay fmt.
			switch table {
			case TItem:
				return "" // read-only after load
			case TStock:
				return entity2('s', storage.DecodeUint64(key), storage.DecodeUint64(key[8:]))
			case TWarehouse:
				buf := make([]byte, 1, 21)
				buf[0] = 'w'
				return string(strconv.AppendUint(buf, storage.DecodeUint64(key), 10))
			default:
				return entity2('d', storage.DecodeUint64(key), storage.DecodeUint64(key[8:]))
			}
		},
	}
}

// entity2 renders prefix + a + "." + b, the two-part entity-lock name.
func entity2(prefix byte, a, b uint64) string {
	buf := make([]byte, 1, 44)
	buf[0] = prefix
	buf = strconv.AppendUint(buf, a, 10)
	buf = append(buf, '.')
	return string(strconv.AppendUint(buf, b, 10))
}

// Keys.

// WarehouseKey returns warehouse w's key (1-based).
func WarehouseKey(wid uint64) []byte { return storage.Uint64Key(wid) }

// DistrictKey returns district (w, d)'s key.
func DistrictKey(wid, did uint64) []byte { return storage.CompositeKey(wid, did) }

// CustomerKey returns customer (w, d, c)'s key.
func CustomerKey(wid, did, cid uint64) []byte { return storage.CompositeKey(wid, did, cid) }

// custNameKey builds the last-name index key (w, d, last, c).
func custNameKey(wid, did uint64, last string, cid uint64) []byte {
	k := storage.CompositeKey(wid, did)
	k = append(k, []byte(last)...)
	k = append(k, 0)
	return storage.EncodeUint64(k, cid)
}

// custNamePrefix bounds a last-name scan.
func custNamePrefix(wid, did uint64, last string) (from, to []byte) {
	base := storage.CompositeKey(wid, did)
	from = append(append(append([]byte(nil), base...), []byte(last)...), 0)
	to = append(append(append([]byte(nil), base...), []byte(last)...), 1)
	return from, to
}

// ItemKey returns item i's key.
func ItemKey(iid uint64) []byte { return storage.Uint64Key(iid) }

// StockKey returns stock (w, i)'s key.
func StockKey(wid, iid uint64) []byte { return storage.CompositeKey(wid, iid) }

// OrderKey returns order (w, d, o)'s key.
func OrderKey(wid, did, oid uint64) []byte { return storage.CompositeKey(wid, did, oid) }

// OrderLineKey returns order line (w, d, o, ol)'s key.
func OrderLineKey(wid, did, oid, ol uint64) []byte {
	return storage.CompositeKey(wid, did, oid, ol)
}

// Rows.

// WarehouseRow is the decoded warehouse tuple.
type WarehouseRow struct {
	WID uint64
	Tax uint32 // basis points
	YTD uint64 // cents
}

// Encode serializes the row.
func (r *WarehouseRow) Encode() []byte {
	return storage.NewRecordWriter(24).Uint64(r.WID).Uint32(r.Tax).Uint64(r.YTD).Finish()
}

// DecodeWarehouse parses a warehouse row.
func DecodeWarehouse(b []byte) WarehouseRow {
	rd := storage.NewRecordReader(b)
	return WarehouseRow{WID: rd.Uint64(), Tax: rd.Uint32(), YTD: rd.Uint64()}
}

// DistrictRow is the decoded district tuple.
type DistrictRow struct {
	WID, DID uint64
	Tax      uint32
	YTD      uint64
	NextOID  uint64
}

// Encode serializes the row.
func (r *DistrictRow) Encode() []byte {
	return storage.NewRecordWriter(40).Uint64(r.WID).Uint64(r.DID).Uint32(r.Tax).Uint64(r.YTD).Uint64(r.NextOID).Finish()
}

// DecodeDistrict parses a district row.
func DecodeDistrict(b []byte) DistrictRow {
	rd := storage.NewRecordReader(b)
	return DistrictRow{WID: rd.Uint64(), DID: rd.Uint64(), Tax: rd.Uint32(), YTD: rd.Uint64(), NextOID: rd.Uint64()}
}

// CustomerRow is the decoded customer tuple.
type CustomerRow struct {
	WID, DID, CID uint64
	Last          string
	Credit        uint32 // 0 = GC, 1 = BC
	Discount      uint32 // basis points
	Balance       int64  // cents
	YTDPayment    uint64
	PaymentCnt    uint32
	DeliveryCnt   uint32
	Data          string
}

// Encode serializes the row.
func (r *CustomerRow) Encode() []byte {
	w := storage.NewRecordWriter(96)
	w.Uint64(r.WID).Uint64(r.DID).Uint64(r.CID).String(r.Last).Uint32(r.Credit).Uint32(r.Discount)
	w.Uint64(uint64(r.Balance)).Uint64(r.YTDPayment).Uint32(r.PaymentCnt).Uint32(r.DeliveryCnt).String(r.Data)
	return w.Finish()
}

// DecodeCustomer parses a customer row.
func DecodeCustomer(b []byte) CustomerRow {
	rd := storage.NewRecordReader(b)
	return CustomerRow{
		WID: rd.Uint64(), DID: rd.Uint64(), CID: rd.Uint64(), Last: rd.String(),
		Credit: rd.Uint32(), Discount: rd.Uint32(), Balance: int64(rd.Uint64()),
		YTDPayment: rd.Uint64(), PaymentCnt: rd.Uint32(), DeliveryCnt: rd.Uint32(), Data: rd.String(),
	}
}

// ItemRow is the decoded item tuple.
type ItemRow struct {
	IID   uint64
	Price uint32 // cents
	Name  string
}

// Encode serializes the row.
func (r *ItemRow) Encode() []byte {
	return storage.NewRecordWriter(40).Uint64(r.IID).Uint32(r.Price).String(r.Name).Finish()
}

// DecodeItem parses an item row.
func DecodeItem(b []byte) ItemRow {
	rd := storage.NewRecordReader(b)
	return ItemRow{IID: rd.Uint64(), Price: rd.Uint32(), Name: rd.String()}
}

// StockRow is the decoded stock tuple.
type StockRow struct {
	WID, IID  uint64
	Qty       int64
	YTD       uint64
	OrderCnt  uint32
	RemoteCnt uint32
}

// Encode serializes the row.
func (r *StockRow) Encode() []byte {
	w := storage.NewRecordWriter(48)
	w.Uint64(r.WID).Uint64(r.IID).Uint64(uint64(r.Qty)).Uint64(r.YTD).Uint32(r.OrderCnt).Uint32(r.RemoteCnt)
	return w.Finish()
}

// DecodeStock parses a stock row.
func DecodeStock(b []byte) StockRow {
	rd := storage.NewRecordReader(b)
	return StockRow{WID: rd.Uint64(), IID: rd.Uint64(), Qty: int64(rd.Uint64()), YTD: rd.Uint64(), OrderCnt: rd.Uint32(), RemoteCnt: rd.Uint32()}
}

// OrderRow is the decoded order tuple.
type OrderRow struct {
	WID, DID, OID, CID uint64
	EntryD             uint64
	Carrier            uint32 // 0 = undelivered
	OLCnt              uint32
	AllLocal           uint32
}

// Encode serializes the row.
func (r *OrderRow) Encode() []byte {
	w := storage.NewRecordWriter(64)
	w.Uint64(r.WID).Uint64(r.DID).Uint64(r.OID).Uint64(r.CID).Uint64(r.EntryD).Uint32(r.Carrier).Uint32(r.OLCnt).Uint32(r.AllLocal)
	return w.Finish()
}

// DecodeOrder parses an order row.
func DecodeOrder(b []byte) OrderRow {
	rd := storage.NewRecordReader(b)
	return OrderRow{WID: rd.Uint64(), DID: rd.Uint64(), OID: rd.Uint64(), CID: rd.Uint64(), EntryD: rd.Uint64(), Carrier: rd.Uint32(), OLCnt: rd.Uint32(), AllLocal: rd.Uint32()}
}

// OrderLineRow is the decoded order-line tuple.
type OrderLineRow struct {
	WID, DID, OID, OL uint64
	IID               uint64
	SupplyW           uint64
	Qty               uint32
	Amount            uint64 // cents
	DeliveryD         uint64 // 0 = undelivered
	DistInfo          string
}

// Encode serializes the row.
func (r *OrderLineRow) Encode() []byte {
	w := storage.NewRecordWriter(96)
	w.Uint64(r.WID).Uint64(r.DID).Uint64(r.OID).Uint64(r.OL).Uint64(r.IID).Uint64(r.SupplyW)
	w.Uint32(r.Qty).Uint64(r.Amount).Uint64(r.DeliveryD).String(r.DistInfo)
	return w.Finish()
}

// DecodeOrderLine parses an order-line row.
func DecodeOrderLine(b []byte) OrderLineRow {
	rd := storage.NewRecordReader(b)
	return OrderLineRow{
		WID: rd.Uint64(), DID: rd.Uint64(), OID: rd.Uint64(), OL: rd.Uint64(), IID: rd.Uint64(),
		SupplyW: rd.Uint64(), Qty: rd.Uint32(), Amount: rd.Uint64(), DeliveryD: rd.Uint64(), DistInfo: rd.String(),
	}
}

// Last-name syllables (spec clause 4.3.2.3).
var syllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName renders the spec last name for a 0-999 number.
func LastName(num int) string {
	return syllables[num/100] + syllables[(num/10)%10] + syllables[num%10]
}

// nuRand is the spec's non-uniform random generator.
func nuRand(r *sim.Rand, a, c, x, y uint64) uint64 {
	return (((r.Uint64()%(a+1))|(x+r.Uint64()%(y-x+1)))+c)%(y-x+1) + x
}

func (w *Workload) randCID(r *sim.Rand) uint64 {
	return nuRand(r, 1023, w.cID, 1, uint64(w.cfg.CustomersPerDistrict))
}

func (w *Workload) randItem(r *sim.Rand) uint64 {
	return nuRand(r, 8191, w.cItem, 1, uint64(w.cfg.Items))
}

func (w *Workload) randLastNum(r *sim.Rand) int {
	span := uint64(w.cfg.CustomersPerDistrict / 3)
	if span < 1 {
		span = 1
	}
	if span > 1000 {
		span = 1000
	}
	return int(nuRand(r, 255, w.cLast, 0, span-1))
}

// Populate implements core.Workload.
func (w *Workload) Populate(load func(table uint16, key, val []byte), r *sim.Rand) {
	cfg := w.cfg
	for i := 1; i <= cfg.Items; i++ {
		row := ItemRow{IID: uint64(i), Price: uint32(r.Range(100, 10000)), Name: fmt.Sprintf("item-%d", i)}
		load(TItem, ItemKey(uint64(i)), row.Encode())
	}
	for wid := 1; wid <= cfg.Warehouses; wid++ {
		wrow := WarehouseRow{WID: uint64(wid), Tax: uint32(r.Intn(2001))}
		load(TWarehouse, WarehouseKey(uint64(wid)), wrow.Encode())
		for i := 1; i <= cfg.Items; i++ {
			srow := StockRow{WID: uint64(wid), IID: uint64(i), Qty: int64(r.Range(10, 100))}
			load(TStock, StockKey(uint64(wid), uint64(i)), srow.Encode())
		}
		for did := 1; did <= cfg.Districts; did++ {
			nOrders := cfg.InitialOrdersPerDistrict
			drow := DistrictRow{WID: uint64(wid), DID: uint64(did), Tax: uint32(r.Intn(2001)), NextOID: uint64(nOrders + 1)}
			load(TDistrict, DistrictKey(uint64(wid), uint64(did)), drow.Encode())
			for cid := 1; cid <= cfg.CustomersPerDistrict; cid++ {
				lastNum := cid - 1
				if cid > 1000 {
					lastNum = int(nuRand(r, 255, w.cLast, 0, 999))
				}
				credit := uint32(0)
				if r.Bool(0.1) {
					credit = 1
				}
				crow := CustomerRow{
					WID: uint64(wid), DID: uint64(did), CID: uint64(cid),
					Last: LastName(lastNum % 1000), Credit: credit,
					Discount: uint32(r.Intn(5001)), Balance: -1000, Data: "initial",
				}
				load(TCustomer, CustomerKey(uint64(wid), uint64(did), uint64(cid)), crow.Encode())
				load(TCustNameIdx, custNameKey(uint64(wid), uint64(did), crow.Last, uint64(cid)), storage.Uint64Key(uint64(cid)))
			}
			// Initial order backlog: the last 1/3 are undelivered.
			for oid := 1; oid <= nOrders; oid++ {
				cid := uint64(r.Range(1, cfg.CustomersPerDistrict))
				olCnt := uint64(r.Range(5, 15))
				carrier := uint32(r.Range(1, 10))
				undelivered := oid > nOrders*2/3
				if undelivered {
					carrier = 0
				}
				orow := OrderRow{WID: uint64(wid), DID: uint64(did), OID: uint64(oid), CID: cid, Carrier: carrier, OLCnt: uint32(olCnt), AllLocal: 1}
				load(TOrder, OrderKey(uint64(wid), uint64(did), uint64(oid)), orow.Encode())
				load(TOrderCustIdx, storage.CompositeKey(uint64(wid), uint64(did), cid, uint64(oid)), storage.Uint64Key(uint64(oid)))
				if undelivered {
					load(TNewOrder, OrderKey(uint64(wid), uint64(did), uint64(oid)), []byte{1})
				}
				for ol := uint64(1); ol <= olCnt; ol++ {
					deliveryD := uint64(1)
					if undelivered {
						deliveryD = 0
					}
					olrow := OrderLineRow{
						WID: uint64(wid), DID: uint64(did), OID: uint64(oid), OL: ol,
						IID: uint64(r.Range(1, cfg.Items)), SupplyW: uint64(wid),
						Qty: 5, Amount: uint64(r.Range(1, 999900)), DeliveryD: deliveryD, DistInfo: "dist-info-pad",
					}
					load(TOrderLine, OrderLineKey(uint64(wid), uint64(did), uint64(oid), ol), olrow.Encode())
				}
			}
		}
	}
}

// Transaction mix (spec minimums, standard configuration).
const (
	pNewOrder    = 45
	pPayment     = 43
	pOrderStatus = 4
	pDelivery    = 4
	// StockLevel takes the remaining 4%.
)

// NextTxn implements core.Workload.
func (w *Workload) NextTxn(r *sim.Rand) (string, core.TxnLogic) {
	p := r.Intn(100)
	switch {
	case p < pNewOrder:
		return "NewOrder", w.NewOrder(r)
	case p < pNewOrder+pPayment:
		return "Payment", w.Payment(r)
	case p < pNewOrder+pPayment+pOrderStatus:
		return "OrderStatus", w.OrderStatus(r)
	case p < pNewOrder+pPayment+pOrderStatus+pDelivery:
		return "Delivery", w.Delivery(r)
	default:
		return "StockLevel", w.StockLevel(r)
	}
}

// StockLevelOnly returns a workload variant emitting only StockLevel — the
// Figure 3 right-bar configuration.
func (w *Workload) StockLevelOnly() core.Workload {
	return &singleTxn{w: w, name: "tpcc-stocklevel", txName: "StockLevel", gen: w.StockLevel}
}

// NewOrderOnly returns a NewOrder-only variant for contention studies.
func (w *Workload) NewOrderOnly() core.Workload {
	return &singleTxn{w: w, name: "tpcc-neworder", txName: "NewOrder", gen: w.NewOrder}
}

type singleTxn struct {
	w      *Workload
	name   string
	txName string
	gen    func(r *sim.Rand) core.TxnLogic
}

// Name implements core.Workload (the variant's own name, e.g. for Figure 3).
func (s *singleTxn) Name() string { return s.name }

// Tables implements core.Workload by delegating to the full mix.
func (s *singleTxn) Tables() []core.TableDef { return s.w.Tables() }

// Scheme implements core.Workload by delegating to the full mix.
func (s *singleTxn) Scheme(partitions int) core.PartitionScheme { return s.w.Scheme(partitions) }

// Populate implements core.Workload: the database is the full benchmark's,
// only the transaction mix narrows.
func (s *singleTxn) Populate(load func(t uint16, k, v []byte), r *sim.Rand) {
	s.w.Populate(load, r)
}

// NextTxn implements core.Workload: always the one wrapped transaction.
func (s *singleTxn) NextTxn(r *sim.Rand) (string, core.TxnLogic) {
	return s.txName, s.gen(r)
}
