package tpcc

import (
	"testing"

	"bionicdb/internal/core"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

func TestLastNameSyllables(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %q", LastName(0))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Errorf("LastName(999) = %q", LastName(999))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Errorf("LastName(371) = %q", LastName(371))
	}
}

func TestRowEncodings(t *testing.T) {
	d := DistrictRow{WID: 2, DID: 5, Tax: 123, YTD: 4567, NextOID: 89}
	if g := DecodeDistrict(d.Encode()); g != d {
		t.Fatalf("district: %+v", g)
	}
	c := CustomerRow{WID: 1, DID: 2, CID: 3, Last: "BARBARBAR", Credit: 1, Discount: 100, Balance: -4200, YTDPayment: 77, PaymentCnt: 3, DeliveryCnt: 1, Data: "d"}
	if g := DecodeCustomer(c.Encode()); g != c {
		t.Fatalf("customer: %+v", g)
	}
	s := StockRow{WID: 1, IID: 9, Qty: -5, YTD: 100, OrderCnt: 7, RemoteCnt: 2}
	if g := DecodeStock(s.Encode()); g != s {
		t.Fatalf("stock: %+v", g)
	}
	o := OrderRow{WID: 1, DID: 2, OID: 3, CID: 4, EntryD: 5, Carrier: 6, OLCnt: 7, AllLocal: 1}
	if g := DecodeOrder(o.Encode()); g != o {
		t.Fatalf("order: %+v", g)
	}
	ol := OrderLineRow{WID: 1, DID: 2, OID: 3, OL: 4, IID: 5, SupplyW: 6, Qty: 7, Amount: 8, DeliveryD: 9, DistInfo: "x"}
	if g := DecodeOrderLine(ol.Encode()); g != ol {
		t.Fatalf("orderline: %+v", g)
	}
}

func TestPopulationShape(t *testing.T) {
	cfg := SmallConfig()
	w := New(cfg)
	rows := map[uint16]int{}
	w.Populate(func(table uint16, key, val []byte) { rows[table]++ }, sim.NewRand(1))
	if rows[TItem] != cfg.Items {
		t.Errorf("items=%d", rows[TItem])
	}
	if rows[TStock] != cfg.Items*cfg.Warehouses {
		t.Errorf("stock=%d", rows[TStock])
	}
	if rows[TWarehouse] != cfg.Warehouses || rows[TDistrict] != cfg.Warehouses*cfg.Districts {
		t.Errorf("warehouses=%d districts=%d", rows[TWarehouse], rows[TDistrict])
	}
	wantCust := cfg.Warehouses * cfg.Districts * cfg.CustomersPerDistrict
	if rows[TCustomer] != wantCust || rows[TCustNameIdx] != wantCust {
		t.Errorf("customers=%d idx=%d", rows[TCustomer], rows[TCustNameIdx])
	}
	wantOrders := cfg.Warehouses * cfg.Districts * cfg.InitialOrdersPerDistrict
	if rows[TOrder] != wantOrders {
		t.Errorf("orders=%d", rows[TOrder])
	}
	if rows[TOrderLine] < wantOrders*5 || rows[TOrderLine] > wantOrders*15 {
		t.Errorf("orderlines=%d", rows[TOrderLine])
	}
	if rows[TNewOrder] == 0 || rows[TNewOrder] >= wantOrders {
		t.Errorf("neworders=%d", rows[TNewOrder])
	}
}

func TestNURandRanges(t *testing.T) {
	w := New(SmallConfig())
	r := sim.NewRand(2)
	for i := 0; i < 5000; i++ {
		if c := w.randCID(r); c < 1 || c > uint64(w.cfg.CustomersPerDistrict) {
			t.Fatalf("cid %d", c)
		}
		if it := w.randItem(r); it < 1 || it > uint64(w.cfg.Items) {
			t.Fatalf("item %d", it)
		}
	}
}

func TestMixProportions(t *testing.T) {
	w := New(SmallConfig())
	r := sim.NewRand(4)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		name, _ := w.NextTxn(r)
		counts[name]++
	}
	expect := map[string]float64{"NewOrder": 0.45, "Payment": 0.43, "OrderStatus": 0.04, "Delivery": 0.04, "StockLevel": 0.04}
	for name, want := range expect {
		got := float64(counts[name]) / n
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%s: %.3f, want ~%.2f", name, got, want)
		}
	}
}

// mixEngine runs nTxns of the mix (or a variant) on an engine and returns it
// for inspection.
func mixEngine(t *testing.T, wl core.Workload, mk func(env *sim.Env) core.Engine, nTxns int, seed uint64) core.Engine {
	t.Helper()
	env := sim.NewEnv()
	e := mk(env)
	wl.Populate(e.Load, sim.NewRand(seed))
	if warmer, ok := e.(interface{ Warm() }); ok {
		warmer.Warm()
	}
	const terminals = 4
	for term := 0; term < terminals; term++ {
		term := term
		r := sim.NewRand(seed + uint64(term) + 100)
		env.Spawn("terminal", func(p *sim.Proc) {
			tm := &core.Terminal{ID: term, P: p, Core: e.Platform().Cores[term%len(e.Platform().Cores)], R: r}
			for i := 0; i < nTxns/terminals; i++ {
				_, logic := wl.NextTxn(tm.R)
				e.Submit(tm, logic)
			}
			if term == 0 {
				// Last terminal out closes; harmless if others still run
				// since Close only stops daemons after drain.
			}
		})
	}
	if err := env.RunUntil(sim.Time(30 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

// checkConsistency verifies the TPC-C consistency conditions the run must
// preserve: C1 (district order counters vs order keys), C2-style order/line
// agreement, and warehouse-vs-district YTD agreement.
func checkConsistency(t *testing.T, w *Workload, e core.Engine) {
	t.Helper()
	cfg := w.cfg
	for wid := uint64(1); wid <= uint64(cfg.Warehouses); wid++ {
		wv, ok := e.ReadRaw(TWarehouse, WarehouseKey(wid))
		if !ok {
			t.Fatalf("warehouse %d missing", wid)
		}
		wytd := DecodeWarehouse(wv).YTD
		var dytdSum uint64
		for did := uint64(1); did <= uint64(cfg.Districts); did++ {
			dv, ok := e.ReadRaw(TDistrict, DistrictKey(wid, did))
			if !ok {
				t.Fatalf("district %d.%d missing", wid, did)
			}
			d := DecodeDistrict(dv)
			dytdSum += d.YTD
			// C1: every order id below NextOID exists; none at/above.
			var maxOID uint64
			orderCount := 0
			e.ScanRaw(TOrder, OrderKey(wid, did, 0), OrderKey(wid, did+1, 0), func(k, v []byte) bool {
				o := DecodeOrder(v)
				if o.OID > maxOID {
					maxOID = o.OID
				}
				orderCount++
				return true
			})
			if maxOID >= d.NextOID {
				t.Errorf("district %d.%d: order %d >= next_o_id %d", wid, did, maxOID, d.NextOID)
			}
			if uint64(orderCount) != d.NextOID-1 {
				t.Errorf("district %d.%d: %d orders for next_o_id %d", wid, did, orderCount, d.NextOID)
			}
			// Order lines agree with o_ol_cnt.
			e.ScanRaw(TOrder, OrderKey(wid, did, 0), OrderKey(wid, did+1, 0), func(k, v []byte) bool {
				o := DecodeOrder(v)
				lines := 0
				e.ScanRaw(TOrderLine, OrderLineKey(wid, did, o.OID, 0), OrderLineKey(wid, did, o.OID+1, 0), func(k2, v2 []byte) bool {
					lines++
					return true
				})
				if uint32(lines) != o.OLCnt {
					t.Errorf("order %d.%d.%d has %d lines, header says %d", wid, did, o.OID, lines, o.OLCnt)
					return false
				}
				return true
			})
		}
		if wytd != dytdSum {
			t.Errorf("warehouse %d: w_ytd %d != sum(d_ytd) %d", wid, wytd, dytdSum)
		}
	}
}

func TestMixConsistencyOnDORA(t *testing.T) {
	w := New(SmallConfig())
	e := mixEngine(t, w, func(env *sim.Env) core.Engine {
		return core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(8))
	}, 400, 21)
	if e.Counters().Get("commits") < 300 {
		t.Fatalf("commits=%d", e.Counters().Get("commits"))
	}
	checkConsistency(t, w, e)
}

func TestMixConsistencyOnBionic(t *testing.T) {
	w := New(SmallConfig())
	e := mixEngine(t, w, func(env *sim.Env) core.Engine {
		return core.NewBionic(env, platform.HC2(), w.Tables(), w.Scheme(8), core.AllOffloads(), 8)
	}, 400, 22)
	if e.Counters().Get("commits") < 300 {
		t.Fatalf("commits=%d", e.Counters().Get("commits"))
	}
	checkConsistency(t, w, e)
}

func TestMixConsistencyOnConventional(t *testing.T) {
	w := New(SmallConfig())
	e := mixEngine(t, w, func(env *sim.Env) core.Engine {
		return core.NewConventional(env, platform.HC2(), w.Tables())
	}, 300, 23)
	if e.Counters().Get("commits") < 200 {
		t.Fatalf("commits=%d", e.Counters().Get("commits"))
	}
	checkConsistency(t, w, e)
}

func TestNewOrderAdvancesDistrictAndStock(t *testing.T) {
	w := New(SmallConfig())
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(4))
	w.Populate(e.Load, sim.NewRand(1))
	before := map[string]uint64{}
	for did := uint64(1); did <= uint64(w.cfg.Districts); did++ {
		dv, _ := e.ReadRaw(TDistrict, DistrictKey(1, did))
		before[string(DistrictKey(1, did))] = DecodeDistrict(dv).NextOID
	}
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(2)}
		commits := 0
		for i := 0; i < 20; i++ {
			if e.Submit(term, w.NewOrder(term.R)) {
				commits++
			}
		}
		if commits < 15 {
			t.Errorf("only %d/20 NewOrders committed", commits)
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	advanced := 0
	for did := uint64(1); did <= uint64(w.cfg.Districts); did++ {
		dv, _ := e.ReadRaw(TDistrict, DistrictKey(1, did))
		if DecodeDistrict(dv).NextOID > before[string(DistrictKey(1, did))] {
			advanced++
		}
	}
	// Warehouse 2 may also receive orders; at least some of warehouse 1's
	// districts must have advanced across 20 orders.
	total := 0
	for wid := uint64(1); wid <= uint64(w.cfg.Warehouses); wid++ {
		for did := uint64(1); did <= uint64(w.cfg.Districts); did++ {
			dv, _ := e.ReadRaw(TDistrict, DistrictKey(wid, did))
			total += int(DecodeDistrict(dv).NextOID)
		}
	}
	if advanced == 0 && total == 0 {
		t.Error("no district advanced")
	}
	checkConsistency(t, w, e)
}

func TestPaymentByNameFindsCustomer(t *testing.T) {
	w := New(SmallConfig())
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(4))
	w.Populate(e.Load, sim.NewRand(1))
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(3)}
		commits := 0
		for i := 0; i < 30; i++ {
			if e.Submit(term, w.Payment(term.R)) {
				commits++
			}
		}
		if commits < 20 {
			t.Errorf("only %d/30 Payments committed", commits)
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, w, e)
}

func TestDeliveryClearsNewOrders(t *testing.T) {
	w := New(SmallConfig())
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(4))
	w.Populate(e.Load, sim.NewRand(1))
	countNewOrders := func() int {
		n := 0
		e.ScanRaw(TNewOrder, nil, nil, func(k, v []byte) bool { n++; return true })
		return n
	}
	beforeCount := countNewOrders()
	if beforeCount == 0 {
		t.Fatal("population created no pending orders")
	}
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(4)}
		for i := 0; i < 5; i++ {
			e.Submit(term, w.Delivery(term.R))
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if after := countNewOrders(); after >= beforeCount {
		t.Fatalf("deliveries did not clear new orders: %d -> %d", beforeCount, after)
	}
	checkConsistency(t, w, e)
}

func TestStockLevelCommitsReadOnly(t *testing.T) {
	w := New(SmallConfig())
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(8))
	w.Populate(e.Load, sim.NewRand(1))
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(5)}
		commits := 0
		for i := 0; i < 10; i++ {
			if e.Submit(term, w.StockLevel(term.R)) {
				commits++
			}
		}
		if commits != 10 {
			t.Errorf("StockLevel commits=%d/10", commits)
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderRollbackLeavesNoTrace(t *testing.T) {
	// Force the 1% rollback path by iterating seeds until one triggers,
	// then verify the district counter and orders are untouched by the
	// aborted transaction (deterministic given the seed).
	w := New(SmallConfig())
	var seed uint64
	found := false
	for s := uint64(0); s < 4000 && !found; s++ {
		r := sim.NewRand(s)
		// Replicate the generator's decision order: wid, did, cid, olCnt, rollback.
		_ = r.Range(1, w.cfg.Warehouses)
		_ = r.Range(1, w.cfg.Districts)
		_ = w.randCID(r)
		_ = r.Range(5, 15)
		if r.Bool(0.01) {
			seed, found = s, true
		}
	}
	if !found {
		t.Fatal("no rollback seed found")
	}
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), w.Tables(), w.Scheme(4))
	w.Populate(e.Load, sim.NewRand(1))
	ordersBefore := 0
	e.ScanRaw(TOrder, nil, nil, func(k, v []byte) bool { ordersBefore++; return true })
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(99)}
		if e.Submit(term, w.NewOrder(sim.NewRand(seed))) {
			t.Error("rollback NewOrder committed")
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ordersAfter := 0
	e.ScanRaw(TOrder, nil, nil, func(k, v []byte) bool { ordersAfter++; return true })
	if ordersAfter != ordersBefore {
		t.Fatalf("aborted NewOrder left orders: %d -> %d", ordersBefore, ordersAfter)
	}
	checkConsistency(t, w, e)
}

func TestSchemeRouting(t *testing.T) {
	w := New(SmallConfig())
	s := w.Scheme(8)
	// District-owned tables colocate.
	if s.Route(TDistrict, DistrictKey(1, 2)) != s.Route(TOrderLine, OrderLineKey(1, 2, 5, 1)) {
		t.Error("order lines not colocated with district")
	}
	if s.Route(TCustomer, CustomerKey(1, 2, 3)) != s.Route(TDistrict, DistrictKey(1, 2)) {
		t.Error("customer not colocated with district")
	}
	// Item is entity-free.
	if s.Entity(TItem, ItemKey(42)) != "" {
		t.Error("item should have no entity lock")
	}
	// Stock entities are per (w, i).
	if s.Entity(TStock, StockKey(1, 2)) == s.Entity(TStock, StockKey(1, 3)) {
		t.Error("stock entities collide")
	}
	_ = storage.DecodeUint64
}
