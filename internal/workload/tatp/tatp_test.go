package tatp

import (
	"bytes"
	"testing"

	"bionicdb/internal/core"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

func TestSubNbrRoundTrip(t *testing.T) {
	for _, sid := range []uint64{1, 42, 99999, 1000000} {
		nbr := SubNbr(sid)
		if len(nbr) != 15 {
			t.Fatalf("sub_nbr %q not 15 digits", nbr)
		}
		if parseSubNbr(nbr) != sid {
			t.Fatalf("round trip failed for %d", sid)
		}
	}
}

func TestRowEncodings(t *testing.T) {
	sub := SubscriberRow{SID: 7, Bits: 0x2aa, Hex: 0x1234567890, Byte2: []byte("0123456789"), MSC: 11, VLR: 22, SubNbr: "000000000000007"}
	got := DecodeSubscriber(sub.Encode())
	if got.SID != 7 || got.Bits != 0x2aa || got.VLR != 22 || got.SubNbr != sub.SubNbr || !bytes.Equal(got.Byte2, sub.Byte2) {
		t.Fatalf("subscriber round trip: %+v", got)
	}
	sf := SpecialFacilityRow{SID: 7, SFType: 3, IsActive: 1, DataA: 99, DataB: "fghij"}
	if g := DecodeSpecialFacility(sf.Encode()); g.SFType != 3 || g.IsActive != 1 || g.DataA != 99 {
		t.Fatalf("sf round trip: %+v", g)
	}
	cf := CallForwardingRow{SID: 7, SFType: 2, StartTime: 8, EndTime: 12, NumberX: "000000000000042"}
	if g := DecodeCallForwarding(cf.Encode()); g.StartTime != 8 || g.EndTime != 12 || g.NumberX != cf.NumberX {
		t.Fatalf("cf round trip: %+v", g)
	}
}

func TestPopulationRules(t *testing.T) {
	w := New(Config{Subscribers: 500})
	rows := map[uint16]int{}
	perSubAI := map[uint64]int{}
	perSubSF := map[uint64]int{}
	cfPerSF := map[string]int{}
	w.Populate(func(table uint16, key, val []byte) {
		rows[table]++
		switch table {
		case TAccessInfo:
			perSubAI[storage.DecodeUint64(key)]++
		case TSpecialFacility:
			perSubSF[storage.DecodeUint64(key)]++
		case TCallForwarding:
			cfPerSF[string(key[:16])]++
		}
	}, sim.NewRand(3))
	if rows[TSubscriber] != 500 || rows[TSubNbrIdx] != 500 {
		t.Fatalf("subscribers=%d idx=%d", rows[TSubscriber], rows[TSubNbrIdx])
	}
	for sid, n := range perSubAI {
		if n < 1 || n > 4 {
			t.Fatalf("subscriber %d has %d access-info rows", sid, n)
		}
	}
	for sid, n := range perSubSF {
		if n < 1 || n > 4 {
			t.Fatalf("subscriber %d has %d special facilities", sid, n)
		}
	}
	for sf, n := range cfPerSF {
		if n > 3 {
			t.Fatalf("facility %x has %d call forwardings", sf, n)
		}
	}
	if rows[TAccessInfo] < 500 || rows[TAccessInfo] > 2000 {
		t.Fatalf("access info rows = %d", rows[TAccessInfo])
	}
}

func TestNuRandInRange(t *testing.T) {
	w := New(Config{Subscribers: 1000})
	r := sim.NewRand(5)
	for i := 0; i < 10000; i++ {
		sid := w.nuRand(r)
		if sid < 1 || sid > 1000 {
			t.Fatalf("nuRand out of range: %d", sid)
		}
	}
}

func TestMixProportions(t *testing.T) {
	w := New(Config{Subscribers: 100})
	r := sim.NewRand(9)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		name, _ := w.NextTxn(r)
		counts[name]++
	}
	expect := map[string]float64{
		"GetSubscriberData":    0.35,
		"GetNewDestination":    0.10,
		"GetAccessData":        0.35,
		"UpdateSubscriberData": 0.02,
		"UpdateLocation":       0.14,
		"InsertCallForwarding": 0.02,
		"DeleteCallForwarding": 0.02,
	}
	for name, want := range expect {
		got := float64(counts[name]) / n
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%s: %.3f of mix, want ~%.2f", name, got, want)
		}
	}
}

func TestSchemeColocatesSubscriberRows(t *testing.T) {
	w := New(Config{Subscribers: 100})
	s := w.Scheme(8)
	for sid := uint64(1); sid <= 100; sid++ {
		p := s.Route(TSubscriber, SubscriberKey(sid))
		if q := s.Route(TSpecialFacility, SFKey(sid, 2)); q != p {
			t.Fatalf("sf of %d routed to %d, subscriber to %d", sid, q, p)
		}
		if q := s.Route(TCallForwarding, CFKey(sid, 1, 8)); q != p {
			t.Fatalf("cf of %d routed elsewhere", sid)
		}
		if q := s.Route(TSubNbrIdx, SubNbr(sid)); q != p {
			t.Fatalf("sub_nbr idx of %d routed elsewhere", sid)
		}
		if e := s.Entity(TSubscriber, SubscriberKey(sid)); e != s.Entity(TAccessInfo, AccessInfoKey(sid, 1)) {
			t.Fatalf("entities differ for subscriber %d", sid)
		}
	}
}

// integration: the full mix on each engine at small scale.
func TestMixRunsOnAllEngines(t *testing.T) {
	wl := New(Config{Subscribers: 1000})
	cfg := core.RunConfig{Terminals: 8, Warmup: 2 * sim.Millisecond, Measure: 10 * sim.Millisecond, Seed: 11}
	factories := map[string]func(env *sim.Env) core.Engine{
		"conventional": func(env *sim.Env) core.Engine {
			return core.NewConventional(env, platform.HC2(), wl.Tables())
		},
		"dora": func(env *sim.Env) core.Engine {
			return core.NewDORA(env, platform.HC2(), wl.Tables(), wl.Scheme(8))
		},
		"bionic": func(env *sim.Env) core.Engine {
			return core.NewBionic(env, platform.HC2(), wl.Tables(), wl.Scheme(8), core.AllOffloads(), 8)
		},
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			res, err := core.Run(cfg, wl, mk)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits < 50 {
				t.Fatalf("only %d commits", res.Commits)
			}
			// Update transactions hit expected TATP failure cases, so some
			// user aborts must appear over a reasonable sample.
			if res.Commits > 500 && res.Aborts == 0 {
				t.Error("no user aborts despite failure-prone transactions")
			}
		})
	}
}

func TestUpdateLocationAppliesVLR(t *testing.T) {
	wl := New(Config{Subscribers: 50})
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), wl.Tables(), wl.Scheme(4))
	wl.Populate(e.Load, sim.NewRand(1))
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(2)}
		// Drive UpdateLocation with a pinned generator so the target is known.
		r := sim.NewRand(77)
		logic := wl.UpdateLocation(r)
		if !e.Submit(term, logic) {
			t.Error("UpdateLocation aborted")
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Determine which subscriber the pinned generator chose and what VLR it
	// wrote, then verify.
	r := sim.NewRand(77)
	sid := wl.nuRand(r)
	wantVLR := uint32(r.Uint64())
	val, ok := e.ReadRaw(TSubscriber, SubscriberKey(sid))
	if !ok {
		t.Fatalf("subscriber %d missing", sid)
	}
	if got := DecodeSubscriber(val).VLR; got != wantVLR {
		t.Fatalf("VLR = %d, want %d", got, wantVLR)
	}
}

func TestInsertThenDeleteCallForwarding(t *testing.T) {
	wl := New(Config{Subscribers: 10})
	env := sim.NewEnv()
	e := core.NewDORA(env, platform.HC2(), wl.Tables(), wl.Scheme(2))
	wl.Populate(e.Load, sim.NewRand(1))
	// Build explicit logic against subscriber 3 with a facility we know
	// exists (scan raw to find one).
	var sfType uint32
	e.ScanRaw(TSpecialFacility, SFKey(3, 0), SFKey(4, 0), func(k, v []byte) bool {
		sfType = DecodeSpecialFacility(v).SFType
		return false
	})
	if sfType == 0 {
		t.Skip("subscriber 3 has no facilities under this seed")
	}
	key := CFKey(3, sfType, 99) // start_time outside populated values
	env.Spawn("term", func(p *sim.Proc) {
		term := &core.Terminal{ID: 0, P: p, Core: e.Platform().Cores[0], R: sim.NewRand(2)}
		row := CallForwardingRow{SID: 3, SFType: sfType, StartTime: 99, EndTime: 100, NumberX: "x"}
		ok := e.Submit(term, func(tx core.Tx) bool {
			return tx.Phase(core.Action{Table: TCallForwarding, Key: key, Body: func(c core.AccessCtx) bool {
				return c.Insert(TCallForwarding, key, row.Encode())
			}})
		})
		if !ok {
			t.Error("insert failed")
		}
		ok = e.Submit(term, func(tx core.Tx) bool {
			return tx.Phase(core.Action{Table: TCallForwarding, Key: key, Body: func(c core.AccessCtx) bool {
				return c.Delete(TCallForwarding, key)
			}})
		})
		if !ok {
			t.Error("delete failed")
		}
		e.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.ReadRaw(TCallForwarding, key); ok {
		t.Fatal("row survived delete")
	}
}

func TestUpdateSubDataOnlyVariant(t *testing.T) {
	wl := New(Config{Subscribers: 200})
	only := wl.UpdateSubDataOnly()
	if only.Name() != "tatp-updsubdata" {
		t.Fatal("variant name")
	}
	r := sim.NewRand(1)
	for i := 0; i < 10; i++ {
		name, logic := only.NextTxn(r)
		if name != "UpdateSubscriberData" || logic == nil {
			t.Fatal("variant emits wrong transactions")
		}
	}
}
