// Package tatp implements the TATP (Telecom Application Transaction
// Processing) benchmark: the Subscriber / Access_Info / Special_Facility /
// Call_Forwarding schema, the non-uniform subscriber distribution, and all
// seven transaction types in the standard 35/35/10/2/14/2/2 mix. TATP
// UpdateSubscriberData is the left bar of the paper's Figure 3.
package tatp

import (
	"strconv"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// Table ids.
const (
	TSubscriber uint16 = iota + 1
	TAccessInfo
	TSpecialFacility
	TCallForwarding
	TSubNbrIdx // secondary index: sub_nbr -> s_id
)

// Config scales the benchmark.
type Config struct {
	// Subscribers is the scale factor (TATP default 100000).
	Subscribers int
}

// DefaultConfig returns the 100k-subscriber configuration used for the
// Figure 3 and Figure 4 experiments.
func DefaultConfig() Config { return Config{Subscribers: 100000} }

// Workload implements core.Workload.
type Workload struct {
	cfg Config
}

// New creates a TATP workload.
func New(cfg Config) *Workload {
	if cfg.Subscribers < 1 {
		cfg.Subscribers = 1
	}
	return &Workload{cfg: cfg}
}

// Name implements core.Workload.
func (w *Workload) Name() string { return "tatp" }

// Subscribers returns the scale factor.
func (w *Workload) Subscribers() int { return w.cfg.Subscribers }

// Tables implements core.Workload.
func (w *Workload) Tables() []core.TableDef {
	return []core.TableDef{
		{ID: TSubscriber, Name: "subscriber", Order: 128},
		{ID: TAccessInfo, Name: "access_info", Order: 128},
		{ID: TSpecialFacility, Name: "special_facility", Order: 128},
		{ID: TCallForwarding, Name: "call_forwarding", Order: 128},
		{ID: TSubNbrIdx, Name: "sub_nbr_idx", Order: 128},
	}
}

// Scheme implements core.Workload: everything routes by subscriber id, so
// a subscriber's rows across all tables colocate in one partition and the
// subscriber is the DORA entity.
func (w *Workload) Scheme(partitions int) core.PartitionScheme {
	return core.PartitionScheme{
		Partitions: partitions,
		Route: func(table uint16, key []byte) int {
			return int(sidOf(table, key) % uint64(partitions))
		},
		Entity: func(table uint16, key []byte) string {
			// Manual build of the old fmt.Sprintf("s%d", sid) string: the
			// entity is computed per action, so it must not pay fmt.
			buf := make([]byte, 1, 21)
			buf[0] = 's'
			return string(strconv.AppendUint(buf, sidOf(table, key), 10))
		},
	}
}

// sidOf extracts the subscriber id from any table's key.
func sidOf(table uint16, key []byte) uint64 {
	if table == TSubNbrIdx {
		return parseSubNbr(key)
	}
	return storage.DecodeUint64(key)
}

// SubNbr renders the 15-digit subscriber number of s_id.
func SubNbr(sid uint64) []byte {
	b := make([]byte, 15)
	for i := 14; i >= 0; i-- {
		b[i] = byte('0' + sid%10)
		sid /= 10
	}
	return b
}

func parseSubNbr(nbr []byte) uint64 {
	var v uint64
	for _, c := range nbr {
		v = v*10 + uint64(c-'0')
	}
	return v
}

// Row encodings. Fixed field order via storage.RecordWriter/Reader.

// SubscriberRow is the decoded Subscriber tuple.
type SubscriberRow struct {
	SID    uint64
	Bits   uint32 // bit_1..bit_10
	Hex    uint64 // hex_1..hex_10, 4 bits each
	Byte2  []byte // byte2_1..byte2_10
	MSC    uint32
	VLR    uint32
	SubNbr string
}

// Encode serializes the row.
func (r *SubscriberRow) Encode() []byte {
	w := storage.NewRecordWriter(64)
	w.Uint64(r.SID).Uint32(r.Bits).Uint64(r.Hex).Bytes(r.Byte2).Uint32(r.MSC).Uint32(r.VLR).String(r.SubNbr)
	return w.Finish()
}

// DecodeSubscriber parses a Subscriber row.
func DecodeSubscriber(b []byte) SubscriberRow {
	rd := storage.NewRecordReader(b)
	return SubscriberRow{
		SID: rd.Uint64(), Bits: rd.Uint32(), Hex: rd.Uint64(),
		Byte2: append([]byte(nil), rd.Bytes()...), MSC: rd.Uint32(), VLR: rd.Uint32(), SubNbr: rd.String(),
	}
}

// SpecialFacilityRow is the decoded Special_Facility tuple.
type SpecialFacilityRow struct {
	SID      uint64
	SFType   uint32
	IsActive uint32
	ErrorCtl uint32
	DataA    uint32
	DataB    string
}

// Encode serializes the row.
func (r *SpecialFacilityRow) Encode() []byte {
	w := storage.NewRecordWriter(40)
	w.Uint64(r.SID).Uint32(r.SFType).Uint32(r.IsActive).Uint32(r.ErrorCtl).Uint32(r.DataA).String(r.DataB)
	return w.Finish()
}

// DecodeSpecialFacility parses a Special_Facility row.
func DecodeSpecialFacility(b []byte) SpecialFacilityRow {
	rd := storage.NewRecordReader(b)
	return SpecialFacilityRow{
		SID: rd.Uint64(), SFType: rd.Uint32(), IsActive: rd.Uint32(),
		ErrorCtl: rd.Uint32(), DataA: rd.Uint32(), DataB: rd.String(),
	}
}

// CallForwardingRow is the decoded Call_Forwarding tuple.
type CallForwardingRow struct {
	SID       uint64
	SFType    uint32
	StartTime uint32 // 0, 8, 16
	EndTime   uint32
	NumberX   string
}

// Encode serializes the row.
func (r *CallForwardingRow) Encode() []byte {
	w := storage.NewRecordWriter(48)
	w.Uint64(r.SID).Uint32(r.SFType).Uint32(r.StartTime).Uint32(r.EndTime).String(r.NumberX)
	return w.Finish()
}

// DecodeCallForwarding parses a Call_Forwarding row.
func DecodeCallForwarding(b []byte) CallForwardingRow {
	rd := storage.NewRecordReader(b)
	return CallForwardingRow{
		SID: rd.Uint64(), SFType: rd.Uint32(), StartTime: rd.Uint32(),
		EndTime: rd.Uint32(), NumberX: rd.String(),
	}
}

// accessInfoRow encodes an Access_Info tuple (only data1 is read back).
func accessInfoRow(sid uint64, aiType uint32, r *sim.Rand) []byte {
	w := storage.NewRecordWriter(32)
	w.Uint64(sid).Uint32(aiType).Uint32(uint32(r.Intn(256))).Uint32(uint32(r.Intn(256)))
	w.String("abc").String("abcde")
	return w.Finish()
}

// Keys.

// SubscriberKey returns the primary key for s_id.
func SubscriberKey(sid uint64) []byte { return storage.Uint64Key(sid) }

// AccessInfoKey returns the (s_id, ai_type) key.
func AccessInfoKey(sid uint64, aiType uint32) []byte {
	return storage.CompositeKey(sid, uint64(aiType))
}

// SFKey returns the (s_id, sf_type) key.
func SFKey(sid uint64, sfType uint32) []byte {
	return storage.CompositeKey(sid, uint64(sfType))
}

// CFKey returns the (s_id, sf_type, start_time) key.
func CFKey(sid uint64, sfType, start uint32) []byte {
	return storage.CompositeKey(sid, uint64(sfType), uint64(start))
}

// Populate implements core.Workload: the spec's population rules — every
// subscriber, 1-4 access-info rows, 1-4 special facilities (85% active),
// 0-3 call forwardings per facility.
func (w *Workload) Populate(load func(table uint16, key, val []byte), r *sim.Rand) {
	n := w.cfg.Subscribers
	for i := 1; i <= n; i++ {
		sid := uint64(i)
		sub := SubscriberRow{
			SID:    sid,
			Bits:   uint32(r.Uint64() & 0x3ff),
			Hex:    r.Uint64() & 0xffffffffff,
			Byte2:  randBytes(r, 10),
			MSC:    uint32(r.Uint64()),
			VLR:    uint32(r.Uint64()),
			SubNbr: string(SubNbr(sid)),
		}
		load(TSubscriber, SubscriberKey(sid), sub.Encode())
		load(TSubNbrIdx, SubNbr(sid), storage.Uint64Key(sid))

		for _, ai := range pickTypes(r) {
			load(TAccessInfo, AccessInfoKey(sid, ai), accessInfoRow(sid, ai, r))
		}
		for _, sf := range pickTypes(r) {
			active := uint32(0)
			if r.Bool(0.85) {
				active = 1
			}
			row := SpecialFacilityRow{SID: sid, SFType: sf, IsActive: active,
				ErrorCtl: uint32(r.Intn(256)), DataA: uint32(r.Intn(256)), DataB: "fghij"}
			load(TSpecialFacility, SFKey(sid, sf), row.Encode())
			nCF := r.Intn(4)
			starts := []uint32{0, 8, 16}
			for c := 0; c < nCF; c++ {
				st := starts[c%3]
				cf := CallForwardingRow{SID: sid, SFType: sf, StartTime: st,
					EndTime: st + uint32(r.Range(1, 8)), NumberX: string(SubNbr(uint64(r.Range(1, n))))}
				load(TCallForwarding, CFKey(sid, sf, st), cf.Encode())
			}
		}
	}
}

// pickTypes returns a random non-empty subset size 1-4 of types {1,2,3,4}
// (the spec's "1 to 4 rows, types distinct").
func pickTypes(r *sim.Rand) []uint32 {
	count := r.Range(1, 4)
	perm := r.Perm(4)
	out := make([]uint32, count)
	for i := 0; i < count; i++ {
		out[i] = uint32(perm[i] + 1)
	}
	return out
}

func randBytes(r *sim.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// nuRand is TATP's non-uniform subscriber id generator.
func (w *Workload) nuRand(r *sim.Rand) uint64 {
	n := uint64(w.cfg.Subscribers)
	a := uint64(65535)
	if n > 1000000 {
		a = 1048575
	}
	return ((r.Uint64()%(a+1))|(1+r.Uint64()%n))%n + 1
}

// Transaction mix percentages (TATP standard).
const (
	pGetSubscriberData = 35
	pGetNewDestination = 10
	pGetAccessData     = 35
	pUpdateSubData     = 2
	pUpdateLocation    = 14
	pInsertCF          = 2
	// DeleteCallForwarding takes the remaining 2%.
)

// NextTxn implements core.Workload.
func (w *Workload) NextTxn(r *sim.Rand) (string, core.TxnLogic) {
	p := r.Intn(100)
	switch {
	case p < pGetSubscriberData:
		return "GetSubscriberData", w.GetSubscriberData(r)
	case p < pGetSubscriberData+pGetNewDestination:
		return "GetNewDestination", w.GetNewDestination(r)
	case p < pGetSubscriberData+pGetNewDestination+pGetAccessData:
		return "GetAccessData", w.GetAccessData(r)
	case p < pGetSubscriberData+pGetNewDestination+pGetAccessData+pUpdateSubData:
		return "UpdateSubscriberData", w.UpdateSubscriberData(r)
	case p < pGetSubscriberData+pGetNewDestination+pGetAccessData+pUpdateSubData+pUpdateLocation:
		return "UpdateLocation", w.UpdateLocation(r)
	case p < pGetSubscriberData+pGetNewDestination+pGetAccessData+pUpdateSubData+pUpdateLocation+pInsertCF:
		return "InsertCallForwarding", w.InsertCallForwarding(r)
	default:
		return "DeleteCallForwarding", w.DeleteCallForwarding(r)
	}
}

// GetSubscriberData reads one subscriber row (read-only, 35%).
func (w *Workload) GetSubscriberData(r *sim.Rand) core.TxnLogic {
	key := SubscriberKey(w.nuRand(r))
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSubscriber, Key: key, Body: func(c core.AccessCtx) bool {
			c.Read(TSubscriber, key)
			return true
		}})
	}
}

// GetAccessData reads one access-info row (read-only, 35%; ~62.5% hit).
func (w *Workload) GetAccessData(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	ai := uint32(r.Range(1, 4))
	key := AccessInfoKey(sid, ai)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TAccessInfo, Key: key, Body: func(c core.AccessCtx) bool {
			c.Read(TAccessInfo, key)
			return true
		}})
	}
}

// GetNewDestination reads a special facility and its active call
// forwardings (read-only, 10%).
func (w *Workload) GetNewDestination(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	sf := uint32(r.Range(1, 4))
	startTime := uint32(r.Intn(3) * 8)
	endTime := uint32(r.Range(1, 24))
	sfKey := SFKey(sid, sf)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSpecialFacility, Key: sfKey, Body: func(c core.AccessCtx) bool {
			val, ok := c.Read(TSpecialFacility, sfKey)
			if !ok {
				return true // unsuccessful but committed
			}
			row := DecodeSpecialFacility(val)
			if row.IsActive == 0 {
				return true
			}
			c.Scan(TCallForwarding, CFKey(sid, sf, 0), CFKey(sid, sf+1, 0), func(k, v []byte) bool {
				cf := DecodeCallForwarding(v)
				_ = cf.StartTime <= startTime && startTime < cf.EndTime && endTime <= cf.EndTime
				return true
			})
			return true
		}})
	}
}

// UpdateSubscriberData updates subscriber bit_1 and a special facility's
// data_a (2%; rolls back when the facility row is absent — the Figure 3
// left bar workload).
func (w *Workload) UpdateSubscriberData(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	sf := uint32(r.Range(1, 4))
	bit := uint32(1) << uint(r.Intn(10))
	dataA := uint32(r.Intn(256))
	subKey := SubscriberKey(sid)
	sfKey := SFKey(sid, sf)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSubscriber, Key: subKey, Body: func(c core.AccessCtx) bool {
			val, ok := c.Read(TSubscriber, subKey)
			if !ok {
				return false
			}
			sub := DecodeSubscriber(val)
			sub.Bits ^= bit
			if !c.Update(TSubscriber, subKey, sub.Encode()) {
				return false
			}
			sfVal, ok := c.Read(TSpecialFacility, sfKey)
			if !ok {
				return false // spec: roll back
			}
			row := DecodeSpecialFacility(sfVal)
			row.DataA = dataA
			return c.Update(TSpecialFacility, sfKey, row.Encode())
		}})
	}
}

// UpdateLocation updates vlr_location, located via the sub_nbr secondary
// index (14%).
func (w *Workload) UpdateLocation(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	nbr := SubNbr(sid)
	vlr := uint32(r.Uint64())
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSubNbrIdx, Key: nbr, Body: func(c core.AccessCtx) bool {
			idxVal, ok := c.Read(TSubNbrIdx, nbr)
			if !ok {
				return false
			}
			target := SubscriberKey(storage.DecodeUint64(idxVal))
			val, ok := c.Read(TSubscriber, target)
			if !ok {
				return false
			}
			sub := DecodeSubscriber(val)
			sub.VLR = vlr
			return c.Update(TSubscriber, target, sub.Encode())
		}})
	}
}

// InsertCallForwarding inserts a call-forwarding row (2%; fails when the
// facility is absent or the row already exists).
func (w *Workload) InsertCallForwarding(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	sf := uint32(r.Range(1, 4))
	start := uint32(r.Intn(3) * 8)
	end := start + uint32(r.Range(1, 8))
	nbr := SubNbr(sid)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSubNbrIdx, Key: nbr, Body: func(c core.AccessCtx) bool {
			idxVal, ok := c.Read(TSubNbrIdx, nbr)
			if !ok {
				return false
			}
			target := storage.DecodeUint64(idxVal)
			if _, ok := c.Read(TSpecialFacility, SFKey(target, sf)); !ok {
				return false
			}
			row := CallForwardingRow{SID: target, SFType: sf, StartTime: start, EndTime: end, NumberX: string(nbr)}
			return c.Insert(TCallForwarding, CFKey(target, sf, start), row.Encode())
		}})
	}
}

// DeleteCallForwarding removes a call-forwarding row (2%; fails when
// absent).
func (w *Workload) DeleteCallForwarding(r *sim.Rand) core.TxnLogic {
	sid := w.nuRand(r)
	sf := uint32(r.Range(1, 4))
	start := uint32(r.Intn(3) * 8)
	nbr := SubNbr(sid)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TSubNbrIdx, Key: nbr, Body: func(c core.AccessCtx) bool {
			idxVal, ok := c.Read(TSubNbrIdx, nbr)
			if !ok {
				return false
			}
			target := storage.DecodeUint64(idxVal)
			return c.Delete(TCallForwarding, CFKey(target, sf, start))
		}})
	}
}

// UpdateSubDataOnly returns a workload variant that issues only
// UpdateSubscriberData transactions — the Figure 3 left-bar configuration.
func (w *Workload) UpdateSubDataOnly() core.Workload {
	return &singleTxn{w: w, name: "tatp-updsubdata", txName: "UpdateSubscriberData",
		gen: w.UpdateSubscriberData}
}

// singleTxn wraps a workload to emit a single transaction type.
type singleTxn struct {
	w      *Workload
	name   string
	txName string
	gen    func(r *sim.Rand) core.TxnLogic
}

// Name implements core.Workload (the variant's own name, e.g. for Figure 3).
func (s *singleTxn) Name() string { return s.name }

// Tables implements core.Workload by delegating to the full mix.
func (s *singleTxn) Tables() []core.TableDef { return s.w.Tables() }

// Scheme implements core.Workload by delegating to the full mix.
func (s *singleTxn) Scheme(partitions int) core.PartitionScheme { return s.w.Scheme(partitions) }

// Populate implements core.Workload: the database is the full benchmark's,
// only the transaction mix narrows.
func (s *singleTxn) Populate(load func(t uint16, k, v []byte), r *sim.Rand) {
	s.w.Populate(load, r)
}

// NextTxn implements core.Workload: always the one wrapped transaction.
func (s *singleTxn) NextTxn(r *sim.Rand) (string, core.TxnLogic) {
	return s.txName, s.gen(r)
}
