// Package ycsb implements the YCSB core workload (Cooper et al., SoCC
// 2010) over the engine family: a single usertable of dense uint64 keys
// and a configurable read/update/scan/read-modify-write operation mix with
// scrambled-zipfian key choice. Where TATP and TPC-C exercise the paper's
// telecom and warehouse shapes, YCSB gives the sweep grid a key-value
// shape whose skew and read/write balance are free parameters — the
// "scenario diversity" axis of the ROADMAP.
package ycsb

import (
	"strconv"

	"bionicdb/internal/core"
	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// TUser is the usertable id.
const TUser uint16 = 1

// Config scales and shapes the workload. The four *Pct fields are relative
// weights (they need not sum to 100); all-zero weights fall back to the
// Workload A 50/50 read/update mix.
type Config struct {
	// Records is the usertable row count (default 100000).
	Records int
	// FieldSize is the value payload in bytes (default 100).
	FieldSize int

	// Operation mix weights.
	ReadPct   int // point read
	UpdatePct int // blind full-value overwrite
	ScanPct   int // short range scan, read-committed like TPC-C StockLevel
	RMWPct    int // read-modify-write on one key

	// MaxScanLen bounds scan length; each scan draws uniformly from
	// [1, MaxScanLen] (default 100).
	MaxScanLen int
	// Theta is the zipfian skew in (0, 1); 0 uses YCSB's default 0.99.
	// Uniform disables skew entirely.
	Theta   float64
	Uniform bool
}

// DefaultConfig returns YCSB Workload A at 100k records: 50/50
// read/update, zipfian theta 0.99.
func DefaultConfig() Config { return WorkloadA() }

// WorkloadA is the update-heavy mix: 50% read, 50% update.
func WorkloadA() Config {
	return Config{Records: 100000, FieldSize: 100, ReadPct: 50, UpdatePct: 50, MaxScanLen: 100, Theta: 0.99}
}

// WorkloadB is the read-mostly mix: 95% read, 5% update.
func WorkloadB() Config {
	c := WorkloadA()
	c.ReadPct, c.UpdatePct = 95, 5
	return c
}

// WorkloadC is read-only: 100% read.
func WorkloadC() Config {
	c := WorkloadA()
	c.ReadPct, c.UpdatePct = 100, 0
	return c
}

// WorkloadE is the short-range mix: 95% scan, 5% update (the standard E
// inserts new rows; over a fixed keyspace the write half becomes updates).
func WorkloadE() Config {
	c := WorkloadA()
	c.ReadPct, c.UpdatePct, c.ScanPct = 0, 5, 95
	return c
}

// WorkloadF is the read-modify-write mix: 50% read, 50% RMW.
func WorkloadF() Config {
	c := WorkloadA()
	c.ReadPct, c.UpdatePct, c.RMWPct = 50, 0, 50
	return c
}

// Workload implements core.Workload. All per-instance state is read-only
// after New, so one Workload may back concurrent runs.
type Workload struct {
	cfg  Config
	zipf *zipfian // nil when Uniform
}

// New creates a YCSB workload, filling zero Config fields with defaults.
func New(cfg Config) *Workload {
	if cfg.Records < 1 {
		cfg.Records = DefaultConfig().Records
	}
	if cfg.FieldSize < 1 {
		cfg.FieldSize = DefaultConfig().FieldSize
	}
	if cfg.MaxScanLen < 1 {
		cfg.MaxScanLen = DefaultConfig().MaxScanLen
	}
	if cfg.ReadPct+cfg.UpdatePct+cfg.ScanPct+cfg.RMWPct <= 0 {
		cfg.ReadPct, cfg.UpdatePct = 50, 50
	}
	if cfg.Theta <= 0 || cfg.Theta >= 1 {
		cfg.Theta = 0.99
	}
	w := &Workload{cfg: cfg}
	if !cfg.Uniform {
		w.zipf = newZipfian(uint64(cfg.Records), cfg.Theta)
	}
	return w
}

// Name implements core.Workload.
func (w *Workload) Name() string { return "ycsb" }

// Config returns the scale and mix parameters.
func (w *Workload) Config() Config { return w.cfg }

// Records returns the usertable row count.
func (w *Workload) Records() int { return w.cfg.Records }

// Tables implements core.Workload.
func (w *Workload) Tables() []core.TableDef {
	return []core.TableDef{{ID: TUser, Name: "usertable", Order: 128}}
}

// Scheme implements core.Workload: keys partition by value, the record is
// the entity.
func (w *Workload) Scheme(partitions int) core.PartitionScheme {
	return core.PartitionScheme{
		Partitions: partitions,
		Route: func(table uint16, key []byte) int {
			return int(storage.DecodeUint64(key) % uint64(partitions))
		},
		Entity: func(table uint16, key []byte) string {
			// Manual build of the old fmt.Sprintf("u%d", id) string: the
			// entity is computed per action, so it must not pay fmt.
			buf := make([]byte, 1, 21)
			buf[0] = 'u'
			return string(strconv.AppendUint(buf, storage.DecodeUint64(key), 10))
		},
	}
}

// Key returns the primary key of record i.
func Key(i uint64) []byte { return storage.Uint64Key(i) }

// Populate implements core.Workload: Records rows of FieldSize random
// bytes.
func (w *Workload) Populate(load func(table uint16, key, val []byte), r *sim.Rand) {
	for i := 0; i < w.cfg.Records; i++ {
		load(TUser, Key(uint64(i)), w.value(r))
	}
}

// value draws a fresh FieldSize payload.
func (w *Workload) value(r *sim.Rand) []byte {
	b := make([]byte, w.cfg.FieldSize)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// nextKey draws the next operation's record id.
func (w *Workload) nextKey(r *sim.Rand) uint64 {
	n := uint64(w.cfg.Records)
	if w.zipf == nil {
		return r.Uint64() % n
	}
	return scramble(w.zipf.Next(r), n)
}

// NextTxn implements core.Workload.
func (w *Workload) NextTxn(r *sim.Rand) (string, core.TxnLogic) {
	c := &w.cfg
	p := r.Intn(c.ReadPct + c.UpdatePct + c.ScanPct + c.RMWPct)
	switch {
	case p < c.ReadPct:
		return "Read", w.Read(r)
	case p < c.ReadPct+c.UpdatePct:
		return "Update", w.Update(r)
	case p < c.ReadPct+c.UpdatePct+c.ScanPct:
		return "Scan", w.Scan(r)
	default:
		return "ReadModifyWrite", w.ReadModifyWrite(r)
	}
}

// Read returns a single-key point read.
func (w *Workload) Read(r *sim.Rand) core.TxnLogic {
	key := Key(w.nextKey(r))
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TUser, Key: key, Body: func(c core.AccessCtx) bool {
			c.Read(TUser, key)
			return true
		}})
	}
}

// Update returns a blind full-value overwrite of one key.
func (w *Workload) Update(r *sim.Rand) core.TxnLogic {
	key := Key(w.nextKey(r))
	val := w.value(r)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TUser, Key: key, Body: func(c core.AccessCtx) bool {
			return c.Update(TUser, key, val)
		}})
	}
}

// Scan returns a short range scan of up to MaxScanLen rows starting at a
// drawn key. Keys are dense, so [start, start+len) covers exactly the
// requested rows (clipped at the keyspace end). Like TPC-C StockLevel it
// runs without the entity lock: the rows it passes may be owned by other
// partitions, which the spec's read-committed scans permit.
func (w *Workload) Scan(r *sim.Rand) core.TxnLogic {
	start := w.nextKey(r)
	n := uint64(r.Range(1, w.cfg.MaxScanLen))
	end := start + n
	if end > uint64(w.cfg.Records) {
		end = uint64(w.cfg.Records)
	}
	startKey, endKey := Key(start), Key(end)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TUser, Key: startKey, NoLock: true, Body: func(c core.AccessCtx) bool {
			c.Scan(TUser, startKey, endKey, func(k, v []byte) bool { return true })
			return true
		}})
	}
}

// ReadModifyWrite returns a read of one key followed by a full-value write
// of the same key inside the same action.
func (w *Workload) ReadModifyWrite(r *sim.Rand) core.TxnLogic {
	key := Key(w.nextKey(r))
	val := w.value(r)
	return func(tx core.Tx) bool {
		return tx.Phase(core.Action{Table: TUser, Key: key, Body: func(c core.AccessCtx) bool {
			if _, ok := c.Read(TUser, key); !ok {
				return false
			}
			return c.Update(TUser, key, val)
		}})
	}
}
