package ycsb

import (
	"testing"

	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

// TestZipfianBoundsAndSkew checks draws stay in range and the distribution
// is actually skewed: the hottest rank must appear far more often than a
// uniform draw would.
func TestZipfianBoundsAndSkew(t *testing.T) {
	const n = 1000
	const draws = 200000
	z := newZipfian(n, 0.99)
	r := sim.NewRand(1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		rank := z.Next(r)
		if rank >= n {
			t.Fatalf("draw %d out of range: %d", i, rank)
		}
		counts[rank]++
	}
	uniform := draws / n
	if counts[0] < 10*uniform {
		t.Errorf("rank 0 drawn %d times, expected heavy skew over uniform %d", counts[0], uniform)
	}
	// Ranks must be monotonically popular in aggregate: the top decile
	// should dominate the bottom decile.
	top, bottom := 0, 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
		bottom += counts[n-1-i]
	}
	if top < 5*bottom {
		t.Errorf("top decile %d not dominating bottom decile %d", top, bottom)
	}
}

// TestScrambleSpreadsHotSet checks scrambling is a deterministic in-range
// permutation-like spread: same input same output, hot ranks land apart.
func TestScrambleSpreadsHotSet(t *testing.T) {
	const n = 100000
	seen := make(map[uint64]bool)
	for rank := uint64(0); rank < 10; rank++ {
		k := scramble(rank, n)
		if k >= n {
			t.Fatalf("scramble out of range: %d", k)
		}
		if k != scramble(rank, n) {
			t.Fatal("scramble not deterministic")
		}
		seen[k] = true
	}
	if len(seen) < 9 {
		t.Errorf("hot ranks collapse onto %d keys", len(seen))
	}
}

// TestConfigDefaults checks zero fields fill in and degenerate mixes fall
// back to 50/50.
func TestConfigDefaults(t *testing.T) {
	w := New(Config{})
	cfg := w.Config()
	if cfg.Records != 100000 || cfg.FieldSize != 100 || cfg.MaxScanLen != 100 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.ReadPct != 50 || cfg.UpdatePct != 50 {
		t.Fatalf("zero mix did not fall back to A: %+v", cfg)
	}
	if cfg.Theta != 0.99 {
		t.Fatalf("theta default not applied: %v", cfg.Theta)
	}
}

// TestMixDeterminismAndShares checks the same seed yields the same txn
// stream and the weights shape the draw shares.
func TestMixDeterminismAndShares(t *testing.T) {
	cfg := Config{Records: 1000, ReadPct: 40, UpdatePct: 30, ScanPct: 20, RMWPct: 10, MaxScanLen: 10}
	w := New(cfg)

	var first []string
	r := sim.NewRand(9)
	for i := 0; i < 200; i++ {
		name, _ := w.NextTxn(r)
		first = append(first, name)
	}
	r = sim.NewRand(9)
	for i := 0; i < 200; i++ {
		name, _ := w.NextTxn(r)
		if name != first[i] {
			t.Fatalf("draw %d differs across identical seeds: %s vs %s", i, name, first[i])
		}
	}

	counts := map[string]int{}
	r = sim.NewRand(10)
	const draws = 20000
	for i := 0; i < draws; i++ {
		name, _ := w.NextTxn(r)
		counts[name]++
	}
	for name, pct := range map[string]int{"Read": 40, "Update": 30, "Scan": 20, "ReadModifyWrite": 10} {
		got := float64(counts[name]) / draws * 100
		if got < float64(pct)-3 || got > float64(pct)+3 {
			t.Errorf("%s share %.1f%%, want ~%d%%", name, got, pct)
		}
	}
}

// TestPopulateLoadsDenseKeys checks population emits exactly Records rows
// with the dense key encoding the scan path depends on.
func TestPopulateLoadsDenseKeys(t *testing.T) {
	cfg := Config{Records: 500, FieldSize: 16, ReadPct: 100}
	w := New(cfg)
	seen := make(map[uint64]int)
	w.Populate(func(table uint16, key, val []byte) {
		if table != TUser {
			t.Fatalf("unexpected table %d", table)
		}
		if len(val) != 16 {
			t.Fatalf("value size %d, want 16", len(val))
		}
		seen[storage.DecodeUint64(key)]++
	}, sim.NewRand(4))
	if len(seen) != 500 {
		t.Fatalf("populated %d distinct keys, want 500", len(seen))
	}
	for i := uint64(0); i < 500; i++ {
		if seen[i] != 1 {
			t.Fatalf("key %d loaded %d times", i, seen[i])
		}
	}
}

// TestSchemeRoutesInRange checks routing and entity naming over the
// keyspace.
func TestSchemeRoutesInRange(t *testing.T) {
	w := New(Config{Records: 1000})
	s := w.Scheme(8)
	if s.Partitions != 8 {
		t.Fatalf("partitions = %d", s.Partitions)
	}
	hit := make([]bool, 8)
	for i := uint64(0); i < 1000; i++ {
		p := s.Route(TUser, Key(i))
		if p < 0 || p >= 8 {
			t.Fatalf("key %d routed to %d", i, p)
		}
		hit[p] = true
		if s.Entity(TUser, Key(i)) == "" {
			t.Fatalf("key %d has empty entity", i)
		}
	}
	for p, ok := range hit {
		if !ok {
			t.Errorf("partition %d never routed", p)
		}
	}
}
