package ycsb

import (
	"math"

	"bionicdb/internal/sim"
)

// zipfian draws ranks in [0, n) with a Zipf(theta) distribution using the
// Gray et al. "Quickly generating billion-record synthetic databases"
// rejection-free formula, the same generator YCSB uses. All state is
// precomputed at construction and read-only afterwards, so one zipfian can
// serve concurrent runs; randomness comes entirely from the caller's
// sim.Rand.
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetaN float64
	eta   float64
	half  float64 // pow(0.5, theta), hoisted out of Next
}

// newZipfian precomputes the constants for n items at skew theta (YCSB's
// default is 0.99; theta must be in (0, 1)).
func newZipfian(n uint64, theta float64) *zipfian {
	if n < 1 {
		n = 1
	}
	zetaN := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return &zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetaN: zetaN,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetaN),
		half:  math.Pow(0.5, theta),
	}
}

// zeta returns the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank in [0, n): rank 0 is the hottest item.
func (z *zipfian) Next(r *sim.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// scramble spreads zipfian ranks across the keyspace (FNV-1a over the rank
// bytes, mod n) so the hot set is not one contiguous key run — YCSB's
// "scrambled zipfian". Hot ranks stay hot; only their key positions move.
func scramble(rank, n uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (rank >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return h % n
}
