package lockmgr

import (
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func fixture() (*sim.Env, *platform.Platform, *Manager) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	return env, pl, New(pl, DefaultConfig())
}

func task(pl *platform.Platform, p *sim.Proc, core int) *platform.Task {
	return pl.NewTask(p, pl.Cores[core%len(pl.Cores)], &stats.Breakdown{})
}

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IS, true}, {IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, IS, true}, {S, IX, false}, {S, S, true}, {S, X, false},
		{X, IS, false}, {X, IX, false}, {X, S, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if IS.String() != "IS" || IX.String() != "IX" || S.String() != "S" || X.String() != "X" {
		t.Error("mode names wrong")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	env, pl, m := fixture()
	var maxConcurrent, holders int
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn("r", func(p *sim.Proc) {
			tk := task(pl, p, i)
			if err := m.Acquire(tk, uint64(i+1), "row", S); err != nil {
				t.Error(err)
				return
			}
			holders++
			if holders > maxConcurrent {
				maxConcurrent = holders
			}
			p.Wait(10 * sim.Microsecond)
			holders--
			m.ReleaseAll(tk, uint64(i+1))
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 4 {
		t.Fatalf("max concurrent S holders = %d, want 4", maxConcurrent)
	}
}

func TestExclusiveBlocksAndFIFO(t *testing.T) {
	env, pl, m := fixture()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("w", func(p *sim.Proc) {
			p.Wait(sim.Duration(i) * sim.Microsecond) // arrive in order
			tk := task(pl, p, i)
			if err := m.Acquire(tk, uint64(i+1), "row", X); err != nil {
				t.Error(err)
				return
			}
			order = append(order, i)
			p.Wait(10 * sim.Microsecond)
			m.ReleaseAll(tk, uint64(i+1))
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v", order)
	}
	if m.Waits() != 2 {
		t.Fatalf("waits=%d", m.Waits())
	}
}

func TestReacquireHeldIsFree(t *testing.T) {
	env, pl, m := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		if err := m.Acquire(tk, 1, "row", X); err != nil {
			t.Error(err)
		}
		if err := m.Acquire(tk, 1, "row", X); err != nil {
			t.Error(err)
		}
		if err := m.Acquire(tk, 1, "row", S); err != nil { // weaker: no-op
			t.Error(err)
		}
		m.ReleaseAll(tk, 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	env, pl, m := fixture()
	env.Spawn("w", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		if err := m.Acquire(tk, 1, "row", S); err != nil {
			t.Error(err)
		}
		if err := m.Acquire(tk, 1, "row", X); err != nil {
			t.Errorf("sole-holder upgrade failed: %v", err)
		}
		m.ReleaseAll(tk, 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	env, pl, m := fixture()
	var upgradedAt sim.Time
	env.Spawn("reader", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		m.Acquire(tk, 2, "row", S)
		p.Wait(50 * sim.Microsecond)
		m.ReleaseAll(tk, 2)
	})
	env.Spawn("upgrader", func(p *sim.Proc) {
		p.Wait(sim.Microsecond)
		tk := task(pl, p, 1)
		m.Acquire(tk, 1, "row", S)
		if err := m.Acquire(tk, 1, "row", X); err != nil {
			t.Errorf("upgrade: %v", err)
			return
		}
		upgradedAt = p.Now()
		m.ReleaseAll(tk, 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if upgradedAt < sim.Time(50*sim.Microsecond) {
		t.Fatalf("upgrade granted at %v, before reader released", upgradedAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	env, pl, m := fixture()
	errs := make([]error, 2)
	// T1: lock A then B. T2: lock B then A.
	env.Spawn("t1", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		m.Acquire(tk, 1, "A", X)
		p.Wait(10 * sim.Microsecond)
		errs[0] = m.Acquire(tk, 1, "B", X)
		p.Wait(10 * sim.Microsecond)
		m.ReleaseAll(tk, 1)
	})
	env.Spawn("t2", func(p *sim.Proc) {
		tk := task(pl, p, 1)
		p.Wait(2 * sim.Microsecond)
		m.Acquire(tk, 2, "B", X)
		p.Wait(10 * sim.Microsecond)
		errs[1] = m.Acquire(tk, 2, "A", X)
		m.ReleaseAll(tk, 2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if (errs[0] == nil) == (errs[1] == nil) {
		t.Fatalf("exactly one transaction should deadlock: %v, %v", errs[0], errs[1])
	}
	if m.Deadlocks() != 1 {
		t.Fatalf("deadlocks=%d", m.Deadlocks())
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	env, pl, m := fixture()
	var deadlocks int
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("u", func(p *sim.Proc) {
			tk := task(pl, p, i)
			m.Acquire(tk, uint64(i+1), "row", S)
			p.Wait(5 * sim.Microsecond)
			if err := m.Acquire(tk, uint64(i+1), "row", X); err == ErrDeadlock {
				deadlocks++
				m.ReleaseAll(tk, uint64(i+1))
				return
			}
			m.ReleaseAll(tk, uint64(i+1))
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if deadlocks == 0 {
		t.Fatal("S->X upgrade race produced no deadlock victim")
	}
}

func TestIntentionLocksAllowRowParallelism(t *testing.T) {
	env, pl, m := fixture()
	done := 0
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn("w", func(p *sim.Proc) {
			tk := task(pl, p, i)
			txn := uint64(i + 1)
			if err := m.Acquire(tk, txn, TableLock(1), IX); err != nil {
				t.Error(err)
				return
			}
			if err := m.Acquire(tk, txn, RowLock(1, []byte{byte(i)}), X); err != nil {
				t.Error(err)
				return
			}
			p.Wait(10 * sim.Microsecond)
			m.ReleaseAll(tk, txn)
			done++
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done=%d", done)
	}
	if m.Waits() != 0 {
		t.Fatalf("row-disjoint writers waited %d times", m.Waits())
	}
	// All should finish in ~one hold period since they don't conflict.
	if env.Now() > sim.Time(30*sim.Microsecond) {
		t.Fatalf("disjoint writers serialized: %v", env.Now())
	}
}

func TestReleaseAllPromotesWaiters(t *testing.T) {
	env, pl, m := fixture()
	granted := 0
	env.Spawn("holder", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		m.Acquire(tk, 1, "row", X)
		p.Wait(20 * sim.Microsecond)
		m.ReleaseAll(tk, 1)
	})
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("reader", func(p *sim.Proc) {
			p.Wait(sim.Microsecond)
			tk := task(pl, p, i+1)
			if err := m.Acquire(tk, uint64(i+10), "row", S); err != nil {
				t.Error(err)
				return
			}
			granted++
			m.ReleaseAll(tk, uint64(i+10))
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if granted != 3 {
		t.Fatalf("granted=%d, want all readers promoted together", granted)
	}
}

func TestLockNamesDistinct(t *testing.T) {
	if RowLock(1, []byte("k")) == RowLock(2, []byte("k")) {
		t.Error("row locks collide across tables")
	}
	if TableLock(1) == TableLock(2) {
		t.Error("table locks collide")
	}
	if RowLock(1, []byte("k")) == TableLock(1) {
		t.Error("row lock collides with table lock")
	}
}

func TestWaitTimeAccumulates(t *testing.T) {
	env, pl, m := fixture()
	env.Spawn("holder", func(p *sim.Proc) {
		tk := task(pl, p, 0)
		m.Acquire(tk, 1, "row", X)
		p.Wait(100 * sim.Microsecond)
		m.ReleaseAll(tk, 1)
	})
	env.Spawn("waiter", func(p *sim.Proc) {
		p.Wait(sim.Microsecond)
		tk := task(pl, p, 1)
		m.Acquire(tk, 2, "row", X)
		m.ReleaseAll(tk, 2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.WaitTime() < 90*sim.Microsecond {
		t.Fatalf("wait time %v", m.WaitTime())
	}
}
