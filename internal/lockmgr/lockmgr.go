// Package lockmgr implements the hierarchical two-phase-locking manager
// used by the conventional shared-everything baseline: table-level
// intention locks, row-level S/X locks with upgrades, FIFO queues with
// compatible-prefix granting, and waits-for-graph deadlock detection at
// block time (the victim receives ErrDeadlock and the engine aborts it).
// DORA eliminates this component entirely — that is the point of §5.1.
package lockmgr

import (
	"errors"
	"fmt"
	"strconv"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes: intention-shared and intention-exclusive at table level,
// shared and exclusive at row level.
const (
	IS Mode = iota + 1
	IX
	S
	X
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ErrDeadlock is returned to a requester whose wait would close a cycle;
// the engine must abort and retry the transaction.
var ErrDeadlock = errors.New("lockmgr: deadlock detected")

// Compatible reports whether two modes can be held concurrently by
// different transactions.
func Compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	}
	return false
}

// stronger reports whether a subsumes b for conversion purposes.
func stronger(a, b Mode) bool {
	if a == b {
		return true
	}
	switch {
	case a == X:
		return true
	case a == IX && b == IS:
		return true
	case a == S && b == IS:
		return true
	}
	return false
}

// Config tunes the manager's CPU costs.
type Config struct {
	// AcquireInstr is the hash-probe + latch + grant bookkeeping cost.
	AcquireInstr int
	// ReleaseInstr is the per-lock release cost.
	ReleaseInstr int
	// LatchStripes is the number of lock-table latch stripes.
	LatchStripes int
}

// DefaultConfig returns calibrated Shore-MT-like costs.
func DefaultConfig() Config {
	return Config{AcquireInstr: 220, ReleaseInstr: 80, LatchStripes: 16}
}

type waiter struct {
	txn     uint64
	mode    Mode
	sig     *sim.Signal
	upgrade bool
}

type lockState struct {
	granted map[uint64]Mode
	queue   []*waiter
}

// Manager is the lock table.
type Manager struct {
	cfg     Config
	env     *sim.Env
	locks   map[string]*lockState
	holds   map[uint64][]string // txn -> lock names, for ReleaseAll
	waiting map[uint64]string   // txn -> lock name it is blocked on
	latches []*sim.Resource
	addr    uint64

	// Free lists and scratch space: lock states and hold lists churn once
	// per lock and per transaction, so steady-state acquire/release cycles
	// reuse their storage instead of reallocating it.
	freeStates []*lockState
	freeHolds  [][]string
	dfsSeen    map[uint64]bool
	dfsBlocked []uint64

	acquires  int64
	waits     int64
	deadlocks int64
	waitTime  sim.Duration
}

// New creates an empty lock manager.
func New(pl *platform.Platform, cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg,
		env:     pl.Env,
		locks:   make(map[string]*lockState),
		holds:   make(map[uint64][]string),
		waiting: make(map[uint64]string),
		dfsSeen: make(map[uint64]bool),
		addr:    pl.AllocHost(1 << 20),
	}
	for i := 0; i < cfg.LatchStripes; i++ {
		m.latches = append(m.latches, sim.NewResource(pl.Env, fmt.Sprintf("lock-latch-%d", i), 1))
	}
	return m
}

func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Acquire takes name in mode for txn, blocking until granted. It returns
// ErrDeadlock when waiting would close a cycle; the caller must abort.
// Re-acquiring a held lock in the same or weaker mode is free; requesting a
// stronger mode converts (upgrades) it.
func (m *Manager) Acquire(t *platform.Task, txn uint64, name string, mode Mode) error {
	m.acquires++
	t.Exec(stats.CompXct, m.cfg.AcquireInstr)
	h := hashName(name)
	t.Access(stats.CompXct, m.addr+(h%(1<<14))*64, 16)
	t.Flush()
	latch := m.latches[h%uint64(len(m.latches))]
	latch.Acquire(t.P)
	ls := m.locks[name]
	if ls == nil {
		if n := len(m.freeStates); n > 0 {
			ls = m.freeStates[n-1]
			m.freeStates = m.freeStates[:n-1]
		} else {
			ls = &lockState{granted: make(map[uint64]Mode)}
		}
		m.locks[name] = ls
	}
	held, holds := ls.granted[txn]
	if holds && stronger(held, mode) {
		latch.Release()
		return nil
	}
	upgrade := holds
	if m.grantable(ls, txn, mode, upgrade) {
		m.grant(ls, txn, name, mode, upgrade)
		latch.Release()
		return nil
	}
	// Must wait: check for a deadlock cycle before enqueueing.
	if m.wouldDeadlock(txn, ls, mode, upgrade) {
		m.deadlocks++
		latch.Release()
		return ErrDeadlock
	}
	w := &waiter{txn: txn, mode: mode, sig: sim.NewSignal(m.env), upgrade: upgrade}
	if upgrade {
		// Upgrades queue ahead of fresh requests.
		ls.queue = append([]*waiter{w}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, w)
	}
	m.waiting[txn] = name
	m.waits++
	latch.Release()
	start := t.P.Now()
	w.sig.Await(t.P)
	m.waitTime += t.P.Now().Sub(start)
	delete(m.waiting, txn)
	if !w.sig.Value().(bool) {
		m.deadlocks++
		return ErrDeadlock
	}
	return nil
}

// grantable reports whether txn can hold mode on ls right now.
func (m *Manager) grantable(ls *lockState, txn uint64, mode Mode, upgrade bool) bool {
	for holder, hm := range ls.granted {
		if holder == txn {
			continue
		}
		if !Compatible(mode, hm) {
			return false
		}
	}
	// Fresh requests also respect the queue (no barging past waiters).
	if !upgrade && len(ls.queue) > 0 {
		return false
	}
	return true
}

func (m *Manager) grant(ls *lockState, txn uint64, name string, mode Mode, upgrade bool) {
	ls.granted[txn] = mode
	if !upgrade {
		held, ok := m.holds[txn]
		if !ok {
			if n := len(m.freeHolds); n > 0 {
				held = m.freeHolds[n-1]
				m.freeHolds = m.freeHolds[:n-1]
			}
		}
		m.holds[txn] = append(held, name)
	}
}

// wouldDeadlock checks whether txn blocking on ls closes a waits-for cycle.
func (m *Manager) wouldDeadlock(txn uint64, ls *lockState, mode Mode, upgrade bool) bool {
	// Blockers: incompatible current holders plus queued waiters (which
	// we would wait behind unless upgrading).
	clear(m.dfsSeen)
	visited := m.dfsSeen
	blocked := m.dfsBlocked[:0]
	defer func() { m.dfsBlocked = blocked[:0] }()
	for holder, hm := range ls.granted {
		if holder != txn && !Compatible(mode, hm) {
			blocked = append(blocked, holder)
		}
	}
	if !upgrade {
		for _, w := range ls.queue {
			if w.txn != txn {
				blocked = append(blocked, w.txn)
			}
		}
	}
	var dfs func(id uint64) bool
	dfs = func(id uint64) bool {
		if id == txn {
			return true
		}
		if visited[id] {
			return false
		}
		visited[id] = true
		waitName, isWaiting := m.waiting[id]
		if !isWaiting {
			return false
		}
		wls := m.locks[waitName]
		if wls == nil {
			return false
		}
		var wmode Mode
		var wupg, found bool
		for _, w := range wls.queue {
			if w.txn == id {
				wmode, wupg, found = w.mode, w.upgrade, true
				break
			}
		}
		if !found {
			// Already granted (wake pending): no longer blocks anyone.
			return false
		}
		for holder, hm := range wls.granted {
			if holder != id && !Compatible(wmode, hm) && dfs(holder) {
				return true
			}
		}
		if !wupg {
			for _, w := range wls.queue {
				if w.txn != id && dfs(w.txn) {
					return true
				}
			}
		}
		return false
	}
	for _, b := range blocked {
		if dfs(b) {
			return true
		}
	}
	return false
}

// ReleaseAll drops every lock txn holds (end of transaction under strict
// 2PL) and grants newly compatible waiters in FIFO order.
func (m *Manager) ReleaseAll(t *platform.Task, txn uint64) {
	names := m.holds[txn]
	delete(m.holds, txn)
	for _, name := range names {
		t.Exec(stats.CompXct, m.cfg.ReleaseInstr)
		h := hashName(name)
		latch := m.latches[h%uint64(len(m.latches))]
		t.Flush()
		latch.Acquire(t.P)
		ls := m.locks[name]
		delete(ls.granted, txn)
		m.promote(ls, name)
		if len(ls.granted) == 0 && len(ls.queue) == 0 {
			delete(m.locks, name)
			ls.queue = nil
			m.freeStates = append(m.freeStates, ls)
		}
		latch.Release()
	}
	if names != nil {
		for i := range names {
			names[i] = ""
		}
		m.freeHolds = append(m.freeHolds, names[:0])
	}
}

// CancelWait removes txn's queued request on its waited lock (used when an
// engine-level timeout aborts it); the waiter's signal fires with false.
func (m *Manager) CancelWait(txn uint64) {
	name, ok := m.waiting[txn]
	if !ok {
		return
	}
	ls := m.locks[name]
	for i, w := range ls.queue {
		if w.txn == txn {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			w.sig.Fire(false)
			return
		}
	}
}

// promote grants the longest compatible prefix of the wait queue.
func (m *Manager) promote(ls *lockState, name string) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		ok := true
		for holder, hm := range ls.granted {
			if holder != w.txn && !Compatible(w.mode, hm) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		ls.queue = ls.queue[1:]
		m.grant(ls, w.txn, name, w.mode, w.upgrade)
		w.sig.Fire(true)
	}
}

// Acquires returns the number of Acquire calls.
func (m *Manager) Acquires() int64 { return m.acquires }

// Waits returns the number of blocking acquisitions.
func (m *Manager) Waits() int64 { return m.waits }

// Deadlocks returns the number of ErrDeadlock results handed out.
func (m *Manager) Deadlocks() int64 { return m.deadlocks }

// WaitTime returns the cumulative blocked time across all transactions.
func (m *Manager) WaitTime() sim.Duration { return m.waitTime }

// CurWaiters returns the number of transactions currently blocked waiting
// for a lock — an instantaneous gauge for the telemetry sampler.
func (m *Manager) CurWaiters() int { return len(m.waiting) }

// RowLock names a row lock for table t and primary key. The name is built
// by hand — identical bytes to the old fmt.Sprintf("r%d:%s", ...) — because
// two lock names are built per row access on the conventional engine's hot
// path and fmt is several allocations per call.
func RowLock(table uint16, key []byte) string {
	buf := make([]byte, 0, 8+len(key))
	buf = append(buf, 'r')
	buf = strconv.AppendUint(buf, uint64(table), 10)
	buf = append(buf, ':')
	buf = append(buf, key...)
	return string(buf)
}

// TableLock names a table-level lock (identical to the old
// fmt.Sprintf("t%d", table)).
func TableLock(table uint16) string {
	buf := make([]byte, 1, 6)
	buf[0] = 't'
	return string(strconv.AppendUint(buf, uint64(table), 10))
}
