// Package darksilicon implements the paper's §2 analytic models: Amdahl's
// law under core scaling (Figure 1's utilization curves for 64-core 2011
// and 1024-core 2018 chips), the shrinking power envelope ("a conservative
// calculation puts perhaps 20% of transistors outside of the 2018 power
// envelope, with the usable fraction shrinking by 30-50% each hardware
// generation after"), and the joules/operation arithmetic behind "making a
// computation use one tenth the power is just as valuable as making it ten
// times faster".
package darksilicon

import "fmt"

// Speedup is Amdahl's law: the speedup of a workload with the given serial
// fraction on n identical cores.
func Speedup(serialFrac float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1.0 / (serialFrac + (1.0-serialFrac)/float64(n))
}

// Utilization is the fraction of an n-core chip doing useful work when
// running a workload with the given serial fraction: speedup divided by
// core count. This is the quantity Figure 1 shades from the top-left.
func Utilization(serialFrac float64, n int) float64 {
	return Speedup(serialFrac, n) / float64(n)
}

// Panel describes one Figure 1 chip generation.
type Panel struct {
	Year     int
	Cores    int
	PowerCap float64 // fraction of the chip inside the power envelope (1 = all)
}

// Figure1Panels returns the two panels of Figure 1: (a) 2011 with 64 cores
// and no power cap, (b) 2018 with 1024 cores and 20% of transistors outside
// the envelope.
func Figure1Panels() []Panel {
	return []Panel{
		{Year: 2011, Cores: 64, PowerCap: 1.0},
		{Year: 2018, Cores: 1024, PowerCap: 0.8},
	}
}

// SerialFractions returns Figure 1's labelled series.
func SerialFractions() []float64 { return []float64{0.10, 0.01, 0.001, 0.0001} }

// PanelUtilization returns the utilized chip fraction for one serial
// fraction on one panel, after applying the power cap: silicon outside the
// envelope can never be utilized regardless of software parallelism.
func PanelUtilization(p Panel, serialFrac float64) float64 {
	u := Utilization(serialFrac, p.Cores)
	if u > p.PowerCap {
		u = p.PowerCap
	}
	return u
}

// EnvelopeGeneration models the post-2018 power envelope: generation 0 is
// 2018 (80% usable); each later generation shrinks the usable fraction by
// the given rate (the paper brackets 30-50%).
func EnvelopeGeneration(gen int, shrinkRate float64) float64 {
	usable := 0.8
	for i := 0; i < gen; i++ {
		usable *= 1 - shrinkRate
	}
	return usable
}

// EnergyPerOp returns joules per operation for a component drawing powerW
// watts while sustaining opsPerSec operations per second.
func EnergyPerOp(powerW, opsPerSec float64) float64 {
	if opsPerSec <= 0 {
		return 0
	}
	return powerW / opsPerSec
}

// EquivalentGains demonstrates the paper's claim: a k-fold power reduction
// and a k-fold speedup produce identical joules/op. It returns the two
// joules/op figures for a baseline (powerW, opsPerSec).
func EquivalentGains(powerW, opsPerSec, k float64) (lowerPower, faster float64) {
	return EnergyPerOp(powerW/k, opsPerSec), EnergyPerOp(powerW, opsPerSec*k)
}

// RequiredSerialFraction inverts the Figure 1 argument: the serial fraction
// needed to reach the target utilization on n cores. It answers the paper's
// observation that a 1024-core chip demands roughly two orders of magnitude
// less serial work than a 64-core chip for the same utilization.
func RequiredSerialFraction(targetUtil float64, n int) float64 {
	// util = 1/(n*s + (1-s)) => s = (1/util - 1) / (n - 1)
	if n <= 1 || targetUtil <= 0 {
		return 1
	}
	s := (1/targetUtil - 1) / float64(n-1)
	if s < 0 {
		return 0
	}
	return s
}

// FormatPct renders a fraction as a percentage with sensible precision.
func FormatPct(f float64) string {
	switch {
	case f >= 0.1:
		return fmt.Sprintf("%.0f%%", f*100)
	case f >= 0.01:
		return fmt.Sprintf("%.1f%%", f*100)
	default:
		return fmt.Sprintf("%.2f%%", f*100)
	}
}
