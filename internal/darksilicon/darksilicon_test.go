package darksilicon

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSpeedupKnownValues(t *testing.T) {
	if s := Speedup(0, 64); s != 64 {
		t.Errorf("perfectly parallel on 64 cores = %v", s)
	}
	if s := Speedup(1, 64); s != 1 {
		t.Errorf("fully serial = %v", s)
	}
	// Amdahl's classic: 10% serial caps speedup near 10.
	if s := Speedup(0.10, 1024); !approx(s, 9.9, 0.2) {
		t.Errorf("10%% serial on 1024 cores = %v, want ~9.9", s)
	}
	if s := Speedup(0.001, 64); !approx(s, 60.2, 0.3) {
		t.Errorf("0.1%% serial on 64 cores = %v, want ~60", s)
	}
}

func TestSpeedupMonotonicInCores(t *testing.T) {
	if err := quick.Check(func(frac uint8, a, b uint16) bool {
		s := float64(frac%100) / 100
		na, nb := int(a%2048)+1, int(b%2048)+1
		if na > nb {
			na, nb = nb, na
		}
		return Speedup(s, na) <= Speedup(s, nb)+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestFigure1PaperClaims verifies the figure's central argument: 0.1%
// serial work suffices for 2011 hardware (high utilization on 64 cores)
// but wastes half or more of a 1024-core 2018 chip, and the serial budget
// for equal utilization drops by roughly two orders of magnitude.
func TestFigure1PaperClaims(t *testing.T) {
	panels := Figure1Panels()
	u2011 := PanelUtilization(panels[0], 0.001)
	if u2011 < 0.9 {
		t.Errorf("0.1%% serial on 2011 chip utilizes %v, want >= 0.9", u2011)
	}
	u2018 := PanelUtilization(panels[1], 0.001)
	if u2018 > 0.55 {
		t.Errorf("0.1%% serial on 2018 chip utilizes %v, want <= 0.55", u2018)
	}
	// Serial budget for 90% utilization.
	s64 := RequiredSerialFraction(0.9, 64)
	s1024 := RequiredSerialFraction(0.9, 1024)
	ratio := s64 / s1024
	if ratio < 10 || ratio > 30 {
		t.Errorf("serial budget ratio 64->1024 cores = %v", ratio)
	}
	// And for matching the 2011 chip's 0.1%-serial utilization, the 2018
	// chip needs ~the paper's "roughly two orders of magnitude" less.
	target := Utilization(0.001, 64)
	sNeeded := RequiredSerialFraction(target, 1024)
	if r := 0.001 / sNeeded; r < 10 || r > 40 {
		t.Errorf("serial reduction factor = %v, want order(s) of magnitude", r)
	}
}

func TestPanelUtilizationPowerCap(t *testing.T) {
	p := Panel{Year: 2018, Cores: 1024, PowerCap: 0.8}
	// Embarrassingly parallel work still cannot exceed the envelope.
	if u := PanelUtilization(p, 0); u != 0.8 {
		t.Errorf("capped utilization = %v, want 0.8", u)
	}
}

func TestEnvelopeGenerationShrinks(t *testing.T) {
	if g0 := EnvelopeGeneration(0, 0.4); g0 != 0.8 {
		t.Errorf("2018 envelope = %v", g0)
	}
	// 30-50% shrink per generation.
	g1lo := EnvelopeGeneration(1, 0.3)
	g1hi := EnvelopeGeneration(1, 0.5)
	if !approx(g1lo, 0.56, 1e-9) || !approx(g1hi, 0.4, 1e-9) {
		t.Errorf("gen-1 envelope = [%v, %v]", g1hi, g1lo)
	}
	prev := 0.8
	for gen := 1; gen < 6; gen++ {
		cur := EnvelopeGeneration(gen, 0.4)
		if cur >= prev {
			t.Fatalf("envelope not shrinking at gen %d", gen)
		}
		prev = cur
	}
}

func TestEnergyEquivalence(t *testing.T) {
	// The paper: 10x less power is worth the same as 10x faster.
	lowerPower, faster := EquivalentGains(100, 1e6, 10)
	if !approx(lowerPower, faster, 1e-12) {
		t.Errorf("joules/op differ: %v vs %v", lowerPower, faster)
	}
	if !approx(lowerPower, 1e-5, 1e-12) {
		t.Errorf("joules/op = %v, want 1e-5", lowerPower)
	}
	if EnergyPerOp(100, 0) != 0 {
		t.Error("zero throughput should yield zero")
	}
}

func TestRequiredSerialFractionInverts(t *testing.T) {
	if err := quick.Check(func(fr uint16, c uint16) bool {
		target := 0.05 + float64(fr%90)/100.0
		n := int(c%2000) + 2
		s := RequiredSerialFraction(target, n)
		if s <= 0 {
			return target >= 1
		}
		return approx(Utilization(s, n), target, 0.01)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatPct(t *testing.T) {
	cases := map[float64]string{0.5: "50%", 0.015: "1.5%", 0.0001: "0.01%"}
	for f, want := range cases {
		if got := FormatPct(f); got != want {
			t.Errorf("FormatPct(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestSerialFractionsMatchFigure(t *testing.T) {
	fr := SerialFractions()
	want := []float64{0.10, 0.01, 0.001, 0.0001}
	if len(fr) != len(want) {
		t.Fatal("wrong series count")
	}
	for i := range want {
		if fr[i] != want[i] {
			t.Errorf("series %d = %v", i, fr[i])
		}
	}
}
