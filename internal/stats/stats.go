// Package stats provides the measurement vocabulary shared by every engine:
// the component taxonomy of the paper's Figure 3, per-component time
// breakdowns, latency histograms with percentile queries, and fixed-width
// table rendering for the figure generators.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"bionicdb/internal/sim"
)

// Component identifies which subsystem a slice of execution time belongs to.
// The values mirror the legend of Figure 3 in the paper: Other, Front-end,
// Dora, Xct mgmt, Log mgmt, Btree mgmt, Bpool mgmt.
type Component uint8

// The Figure 3 component taxonomy.
const (
	CompOther    Component = iota // catch-all: allocation, formatting, misc
	CompFrontEnd                  // terminal handling, txn admission, routing
	CompDora                      // partition queues, RVPs, local locking
	CompXct                       // transaction management: begin/commit/abort, 2PL
	CompLog                       // log manager: record build, insert, flush waits
	CompBtree                     // B+Tree probes, inserts, SMOs
	CompBpool                     // buffer pool / overlay management
	NumComponents
)

var componentNames = [NumComponents]string{
	"Other", "Front-end", "Dora", "Xct mgmt", "Log mgmt", "Btree mgmt", "Bpool mgmt",
}

// String returns the Figure 3 legend name of the component.
func (c Component) String() string {
	if c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Components lists all components in legend order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Breakdown accumulates busy time per component. The zero value is ready to
// use. Breakdowns are written only from simulated processes, which execute
// one at a time, so no synchronization is needed.
type Breakdown struct {
	t [NumComponents]sim.Duration
}

// Add charges d to component c.
func (b *Breakdown) Add(c Component, d sim.Duration) { b.t[c] += d }

// Get returns the time charged to component c.
func (b *Breakdown) Get(c Component) sim.Duration { return b.t[c] }

// Total returns the time charged across all components.
func (b *Breakdown) Total() sim.Duration {
	var sum sim.Duration
	for _, d := range b.t {
		sum += d
	}
	return sum
}

// Fraction returns component c's share of the total, in [0,1].
func (b *Breakdown) Fraction(c Component) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.t[c]) / float64(total)
}

// AddAll merges another breakdown into this one.
func (b *Breakdown) AddAll(o *Breakdown) {
	for i := range b.t {
		b.t[i] += o.t[i]
	}
}

// Sub returns the per-component difference b - o (for measurement windows
// bounded by two snapshots).
func (b *Breakdown) Sub(o *Breakdown) Breakdown {
	var out Breakdown
	for i := range b.t {
		out.t[i] = b.t[i] - o.t[i]
	}
	return out
}

// Reset zeroes all components.
func (b *Breakdown) Reset() { b.t = [NumComponents]sim.Duration{} }

// Histogram records durations in logarithmic buckets (~7% resolution) and
// answers percentile queries. The zero value is ready to use.
type Histogram struct {
	counts [512]int64
	n      int64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// bucketOf maps a duration to a log-scale bucket: 16 buckets per octave.
func bucketOf(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	// Find the position of the highest set bit.
	v := uint64(d)
	msb := 63
	for v&(1<<63) == 0 {
		v <<= 1
		msb--
	}
	// Sub-bucket from the next 4 bits below the MSB.
	var sub uint64
	if msb >= 4 {
		sub = (uint64(d) >> (uint(msb) - 4)) & 15
	} else {
		sub = (uint64(d) << (4 - uint(msb))) & 15
	}
	b := msb*16 + int(sub)
	if b >= len(Histogram{}.counts) {
		b = len(Histogram{}.counts) - 1
	}
	return b
}

// bucketLow returns the smallest duration mapping to bucket b.
func bucketLow(b int) sim.Duration {
	msb := b / 16
	sub := b % 16
	if msb < 4 {
		return sim.Duration(uint64(16+sub) >> (4 - uint(msb)))
	}
	return sim.Duration(uint64(16+sub) << (uint(msb) - 4))
}

// Record adds one observation.
func (h *Histogram) Record(d sim.Duration) {
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
	h.counts[bucketOf(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return sim.Duration(int64(h.sum) / h.n)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile returns an estimate of the p-quantile (p in [0,100]), accurate
// to the ~7% bucket resolution. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum > rank {
			lo := bucketLow(b)
			hi := bucketLow(b + 1)
			if hi > h.max {
				hi = h.max
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return h.max
}

// Merge adds all observations of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Sub returns the windowed difference h - o for measurement windows bounded
// by two snapshots: bucket counts, the observation count and the sum
// subtract; min and max keep h's run-cumulative values (extrema cannot be
// subtracted — same convention as ScanStats.Sub). o must be an earlier
// snapshot of the same histogram.
func (h *Histogram) Sub(o *Histogram) Histogram {
	out := *h
	out.n -= o.n
	out.sum -= o.sum
	for i := range out.counts {
		out.counts[i] -= o.counts[i]
	}
	if out.n == 0 {
		out.min, out.max, out.sum = 0, 0, 0
	}
	return out
}

// Phase identifies where a transaction's latency went: the per-transaction
// anatomy the flight recorder aggregates. Queue and lock waits, execution
// and the cross-shard decision round can overlap across a transaction's
// actions (DORA runs them in parallel on different partitions), so phases
// sum to more than the end-to-end latency on multi-partition transactions;
// each phase is the summed time its kind of wait consumed.
type Phase uint8

const (
	PhaseQueue Phase = iota // partition input-queue wait before first dispatch
	PhaseLock               // lock wait: deferred actions (DORA) or lock-manager blocks (conventional)
	PhaseExec               // transaction-logic execution on the partitions
	PhaseCross              // cross-shard decision round (coordinator rendezvous)
	PhaseDur                // durability fan-in: the vector durable-point wait
	PhaseRepl               // replication ack wait extending the durable point
	NumPhases
)

var phaseNames = [NumPhases]string{"queue", "lock", "exec", "cross-shard", "durability", "replication"}

// String returns the phase's report name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Phases lists all phases in report order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Anatomy is the per-transaction latency breakdown: one log-scale histogram
// per phase. The zero value is ready to use. Like every histogram in this
// package it is written only from simulated processes (one at a time per
// kernel shard) and merged host-side in deterministic order.
type Anatomy struct {
	Phases [NumPhases]Histogram
}

// Record adds one observation of phase p. Zero durations are dropped: a
// phase a transaction never entered (no lock conflict, no cross-shard
// round) contributes no sample rather than a spurious zero.
func (a *Anatomy) Record(p Phase, d sim.Duration) {
	if d <= 0 {
		return
	}
	a.Phases[p].Record(d)
}

// Phase returns phase p's histogram.
func (a *Anatomy) Phase(p Phase) *Histogram { return &a.Phases[p] }

// Merge adds all of o's observations into a.
func (a *Anatomy) Merge(o *Anatomy) {
	for i := range a.Phases {
		a.Phases[i].Merge(&o.Phases[i])
	}
}

// Sub returns the per-phase windowed difference a - o (see Histogram.Sub).
func (a *Anatomy) Sub(o *Anatomy) Anatomy {
	var out Anatomy
	for i := range a.Phases {
		out.Phases[i] = a.Phases[i].Sub(&o.Phases[i])
	}
	return out
}

// Samples returns the total observation count across phases.
func (a *Anatomy) Samples() int64 {
	var n int64
	for i := range a.Phases {
		n += a.Phases[i].Count()
	}
	return n
}

// Table renders aligned text tables for the figure generators.
type Table struct {
	header []string
	rows   [][]string
	align  []bool // true = right-align
}

// NewTable creates a table with the given column headers. Columns whose
// header starts with '>' are right-aligned (the '>' is stripped).
func NewTable(headers ...string) *Table {
	t := &Table{align: make([]bool, len(headers))}
	for i, h := range headers {
		if strings.HasPrefix(h, ">") {
			t.align[i] = true
			h = h[1:]
		}
		t.header = append(t.header, h)
	}
	return t
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// String renders the table with a header rule.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := width[i] - len(c)
			if i < len(t.align) && t.align[i] {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			} else {
				sb.WriteString(c)
				if i < len(cells)-1 {
					sb.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.header))
	for i, h := range t.header {
		cells[i] = esc(h)
	}
	sb.WriteString(strings.Join(cells, ","))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		sb.WriteString(strings.Join(cells, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LogShardStats is one durable-log shard's cumulative activity: the
// per-socket counters the sharded durability subsystem reports (bytes on
// the shard's device, device syncs, hardware arbitration epochs). A
// non-sharded engine reports exactly one entry for its central log; the
// hardware path reports Epochs == Syncs, the software path Epochs == 0.
type LogShardStats struct {
	Shard  int   // owning socket (0 for a central log)
	Bytes  int64 // durable bytes written to the shard's log device
	Syncs  int64 // device flushes (software) or collection epochs (hardware)
	Epochs int64 // hardware arbitration epochs (0 on software shards)
}

// Sub returns the per-field difference s - o, for windowed measurements.
func (s LogShardStats) Sub(o LogShardStats) LogShardStats {
	return LogShardStats{Shard: s.Shard, Bytes: s.Bytes - o.Bytes, Syncs: s.Syncs - o.Syncs, Epochs: s.Epochs - o.Epochs}
}

// ScanStats is the analytical half's measurement surface: what the HTAP
// scan clients observed over a run. Counter fields are cumulative event
// counts; the *Max fields are run-cumulative maxima (a windowed Sub keeps
// the end snapshot's maximum, since a maximum cannot be subtracted).
//
// Freshness is measured against the durability subsystem's vector durable
// point: at every scan start the client reads the projection's snapshot
// stamp (the time and per-shard LSN vector of the merge/refresh pass that
// built it) and compares it with the machine's current durable vector.
// SnapViolations counts scans whose snapshot vector exceeded the durable
// vector — the invariant the freshness tests pin to zero.
type ScanStats struct {
	Scans    int64        // analytical scans issued
	Rows     int64        // rows examined across scans
	RowsOut  int64        // qualifying rows returned
	Bytes    int64        // projection bytes swept (rows x projection row width)
	ScanTime sim.Duration // summed scan latency

	Refreshes   int64 // projection merge/refresh passes (freshness stamps)
	RefreshRows int64 // rows re-extracted by the host refresh path (0 on the merge-fed path)

	StaleSum       sim.Duration // summed snapshot staleness observed at scan start
	StaleMax       sim.Duration // largest observed staleness
	GapMax         sim.Duration // largest interval between consecutive freshness stamps
	LagBytesMax    int64        // largest durable-vector lead over the snapshot vector, in log bytes
	SnapViolations int64        // scans whose snapshot vector exceeded the durable vector
}

// Sub returns the windowed difference s - o: counters subtract, maxima keep
// s's run-cumulative value.
func (s ScanStats) Sub(o ScanStats) ScanStats {
	return ScanStats{
		Scans:    s.Scans - o.Scans,
		Rows:     s.Rows - o.Rows,
		RowsOut:  s.RowsOut - o.RowsOut,
		Bytes:    s.Bytes - o.Bytes,
		ScanTime: s.ScanTime - o.ScanTime,

		Refreshes:   s.Refreshes - o.Refreshes,
		RefreshRows: s.RefreshRows - o.RefreshRows,

		StaleSum:       s.StaleSum - o.StaleSum,
		StaleMax:       s.StaleMax,
		GapMax:         s.GapMax,
		LagBytesMax:    s.LagBytesMax,
		SnapViolations: s.SnapViolations - o.SnapViolations,
	}
}

// StaleMean returns the mean observed staleness, or 0 with no scans.
func (s ScanStats) StaleMean() sim.Duration {
	if s.Scans == 0 {
		return 0
	}
	return sim.Duration(int64(s.StaleSum) / s.Scans)
}

// ReplMode selects how the commit path waits for log replication: not at
// all (async ships in the background), for every replica (sync), or for a
// majority of replicas (quorum). ReplNone means replication is off and the
// engine builds none of the shipping machinery.
type ReplMode uint8

const (
	ReplNone ReplMode = iota
	ReplAsync
	ReplSync
	ReplQuorum
)

// String renders the mode as its flag spelling.
func (m ReplMode) String() string {
	switch m {
	case ReplAsync:
		return "async"
	case ReplSync:
		return "sync"
	case ReplQuorum:
		return "quorum"
	default:
		return "none"
	}
}

// ParseReplMode parses a -replication flag value ("off"/"none" disable).
func ParseReplMode(s string) (ReplMode, error) {
	switch s {
	case "", "off", "none":
		return ReplNone, nil
	case "async":
		return ReplAsync, nil
	case "sync":
		return ReplSync, nil
	case "quorum":
		return ReplQuorum, nil
	default:
		return ReplNone, fmt.Errorf("unknown replication mode %q (want off|async|sync|quorum)", s)
	}
}

// ReplicationStats is one log shard's shipping activity to the replica
// machines, mirroring LogShardStats: counter fields are cumulative event
// counts; the *Max fields are run-cumulative maxima (a windowed Sub keeps
// the end snapshot's maximum). Bytes and ships sum over replicas — with R
// replicas every shard byte ships R times.
type ReplicationStats struct {
	Shard int      // owning socket (0 for a central log)
	Mode  ReplMode // commit-path wait mode

	ShippedBytes int64 // bytes landed durable on replica log devices
	Ships        int64 // ship batches completed (replica write done)
	AckRTTs      int64 // acknowledgement round trips completed

	LagBytesMax int64        // largest primary-durable lead over a replica, observed at ship pickup
	LagTimeSum  sim.Duration // summed ship-pickup-to-ack round-trip time
	LagTimeMax  sim.Duration // largest observed pickup-to-ack round trip
}

// Sub returns the windowed difference s - o: counters subtract, maxima keep
// s's run-cumulative value.
func (s ReplicationStats) Sub(o ReplicationStats) ReplicationStats {
	return ReplicationStats{
		Shard:        s.Shard,
		Mode:         s.Mode,
		ShippedBytes: s.ShippedBytes - o.ShippedBytes,
		Ships:        s.Ships - o.Ships,
		AckRTTs:      s.AckRTTs - o.AckRTTs,
		LagBytesMax:  s.LagBytesMax,
		LagTimeSum:   s.LagTimeSum - o.LagTimeSum,
		LagTimeMax:   s.LagTimeMax,
	}
}

// LagTimeMean returns the mean ship round trip, or 0 with no acks.
func (s ReplicationStats) LagTimeMean() sim.Duration {
	if s.AckRTTs == 0 {
		return 0
	}
	return sim.Duration(int64(s.LagTimeSum) / s.AckRTTs)
}

// Counter is a named monotonic event counter set.
type Counter struct {
	m map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.m[name] += delta }

// Get returns the named counter's value.
func (c *Counter) Get(name string) int64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
