package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"bionicdb/internal/sim"
)

func TestComponentNames(t *testing.T) {
	want := []string{"Other", "Front-end", "Dora", "Xct mgmt", "Log mgmt", "Btree mgmt", "Bpool mgmt"}
	comps := Components()
	if len(comps) != len(want) {
		t.Fatalf("%d components", len(comps))
	}
	for i, c := range comps {
		if c.String() != want[i] {
			t.Errorf("component %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if s := Component(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range component = %q", s)
	}
}

func TestBreakdownAccumulation(t *testing.T) {
	var b Breakdown
	b.Add(CompBtree, 30*sim.Nanosecond)
	b.Add(CompBtree, 10*sim.Nanosecond)
	b.Add(CompLog, 60*sim.Nanosecond)
	if got := b.Get(CompBtree); got != 40*sim.Nanosecond {
		t.Errorf("btree = %v", got)
	}
	if got := b.Total(); got != 100*sim.Nanosecond {
		t.Errorf("total = %v", got)
	}
	if f := b.Fraction(CompLog); f != 0.6 {
		t.Errorf("log fraction = %v", f)
	}
	var c Breakdown
	c.AddAll(&b)
	c.AddAll(&b)
	if c.Total() != 200*sim.Nanosecond {
		t.Errorf("merged total = %v", c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("reset did not zero")
	}
}

func TestBreakdownEmptyFraction(t *testing.T) {
	var b Breakdown
	if f := b.Fraction(CompOther); f != 0 {
		t.Errorf("empty fraction = %v", f)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 49*sim.Microsecond || m > 52*sim.Microsecond {
		t.Errorf("mean = %v, want ~50.5us", m)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	checks := []struct {
		p    float64
		want sim.Duration
	}{
		{50, 500 * sim.Microsecond},
		{90, 900 * sim.Microsecond},
		{99, 990 * sim.Microsecond},
	}
	for _, c := range checks {
		got := h.Percentile(c.p)
		lo := c.want - c.want/8
		hi := c.want + c.want/8
		if got < lo || got > hi {
			t.Errorf("p%v = %v, want within [%v, %v]", c.p, got, lo, hi)
		}
	}
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Error("extremes should return min/max")
	}
}

func TestHistogramBucketMonotonic(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		da, db := sim.Duration(a)+1, sim.Duration(b)+1
		if da > db {
			da, db = db, da
		}
		return bucketOf(da) <= bucketOf(db)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketBoundsContainValue(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		d := sim.Duration(v) + 1
		b := bucketOf(d)
		return bucketLow(b) <= d && d < bucketLow(b+1)*2
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10 * sim.Microsecond)
		b.Record(1000 * sim.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 10*sim.Microsecond || a.Max() != 1000*sim.Microsecond {
		t.Errorf("min=%v max=%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // must not disturb
	if a.Count() != 200 {
		t.Error("merging empty changed count")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", ">value")
	tbl.Row("alpha", 1.5)
	tbl.Row("b", 10)
	out := tbl.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// Right-aligned column: "1.5" and "10" should end at the same column.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("right-aligned rows have different widths:\n%s", out)
	}
}

func TestTableFloatTrimming(t *testing.T) {
	tbl := NewTable("v")
	tbl.Row(2.0)
	tbl.Row(0.125)
	out := tbl.String()
	if !strings.Contains(out, "\n2\n") {
		t.Errorf("2.0 not trimmed to 2:\n%s", out)
	}
	if !strings.Contains(out, "0.125") {
		t.Errorf("0.125 mangled:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.Row("x,y", `quote"d`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quote""d"`) {
		t.Errorf("quote not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("missing header: %s", csv)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("commits", 2)
	c.Inc("commits", 3)
	c.Inc("aborts", 1)
	if c.Get("commits") != 5 || c.Get("aborts") != 1 || c.Get("nope") != 0 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "aborts" || names[1] != "commits" {
		t.Errorf("names = %v", names)
	}
}
