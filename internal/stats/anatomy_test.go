package stats

import (
	"reflect"
	"testing"

	"bionicdb/internal/sim"
)

// The latency-anatomy merge contract: per-terminal anatomies merge in
// terminal-ID order on the host, windowed engine anatomies come from
// snapshot subtraction, and both must be insensitive to how the samples
// were distributed — the properties the flight recorder's determinism
// guarantee leans on.

func TestHistogramSubWindow(t *testing.T) {
	var h Histogram
	h.Record(10 * sim.Microsecond)
	h.Record(20 * sim.Microsecond)
	snap := h // start-of-window snapshot
	h.Record(40 * sim.Microsecond)
	h.Record(80 * sim.Microsecond)
	w := h.Sub(&snap)
	if w.Count() != 2 {
		t.Fatalf("window count = %d, want 2", w.Count())
	}
	if w.Sum() != 120*sim.Microsecond {
		t.Errorf("window sum = %v, want 120us", w.Sum())
	}
	// Extrema keep the cumulative convention (they cannot be subtracted).
	if w.Min() != 10*sim.Microsecond || w.Max() != 80*sim.Microsecond {
		t.Errorf("window extrema = %v/%v, want cumulative 10us/80us", w.Min(), w.Max())
	}
	// Bucket counts subtracted: the window's median sits near the in-window
	// samples, not the pre-window ones.
	if p50 := w.Percentile(50); p50 < 30*sim.Microsecond {
		t.Errorf("window p50 = %v, includes pre-window samples", p50)
	}
}

func TestHistogramSubEmptyWindow(t *testing.T) {
	var h Histogram
	h.Record(5 * sim.Microsecond)
	snap := h
	w := h.Sub(&snap)
	if w.Count() != 0 || w.Sum() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Errorf("empty window not zeroed: %+v", w)
	}
	if w.Percentile(50) != 0 || w.Mean() != 0 {
		t.Error("empty window reports nonzero statistics")
	}
	// An entirely-empty histogram subtracts to itself.
	var e Histogram
	if z := e.Sub(&Histogram{}); z.Count() != 0 {
		t.Error("empty Sub empty produced samples")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := sim.Duration(1) << 62 // beyond any bucket boundary
	h.Record(huge)
	h.Record(huge - 1)
	if h.Count() != 2 || h.Max() != huge {
		t.Fatalf("overflow samples lost: count %d max %v", h.Count(), h.Max())
	}
	// Percentiles of overflow-bucket samples clamp to the observed range
	// rather than the bucket's theoretical top.
	if p := h.Percentile(99); p > huge || p <= 0 {
		t.Errorf("overflow p99 = %v, outside (0, max]", p)
	}
	// Merging two overflow histograms keeps counts and extrema.
	var o Histogram
	o.Record(huge)
	h.Merge(&o)
	if h.Count() != 3 || h.Max() != huge {
		t.Errorf("overflow merge lost samples: count %d max %v", h.Count(), h.Max())
	}
	// And windows subtract cleanly through the overflow bucket.
	snap := h
	h.Record(huge)
	if w := h.Sub(&snap); w.Count() != 1 || w.Sum() != huge {
		t.Errorf("overflow window = count %d sum %v, want 1/%v", w.Count(), w.Sum(), huge)
	}
}

func TestAnatomyRecordDropsZero(t *testing.T) {
	var a Anatomy
	a.Record(PhaseLock, 0)
	a.Record(PhaseLock, -5)
	a.Record(PhaseLock, 3*sim.Microsecond)
	if a.Samples() != 1 || a.Phase(PhaseLock).Count() != 1 {
		t.Errorf("zero/negative observations not dropped: %d samples", a.Samples())
	}
}

// TestAnatomyMergeOrderInvariance models the harness's terminal merge: the
// same per-transaction observations distributed across different terminal
// sets, merged in any order, must produce the identical aggregate — the
// merged anatomy depends only on the multiset of samples.
func TestAnatomyMergeOrderInvariance(t *testing.T) {
	obsSet := []struct {
		ph Phase
		d  sim.Duration
	}{
		{PhaseQueue, 2 * sim.Microsecond},
		{PhaseExec, 10 * sim.Microsecond},
		{PhaseExec, 11 * sim.Microsecond},
		{PhaseLock, 40 * sim.Microsecond},
		{PhaseCross, 7 * sim.Microsecond},
		{PhaseDur, 90 * sim.Microsecond},
		{PhaseRepl, 500 * sim.Microsecond},
	}
	// Split 1: one terminal per observation, merged 0..N.
	terms := make([]Anatomy, len(obsSet))
	for i, o := range obsSet {
		terms[i].Record(o.ph, o.d)
	}
	var fwd Anatomy
	for i := range terms {
		fwd.Merge(&terms[i])
	}
	// Split 2: same observations, merged in reverse terminal order.
	var rev Anatomy
	for i := len(terms) - 1; i >= 0; i-- {
		rev.Merge(&terms[i])
	}
	// Split 3: all observations recorded into a single anatomy.
	var one Anatomy
	for _, o := range obsSet {
		one.Record(o.ph, o.d)
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Error("merge is order-sensitive: forward != reverse")
	}
	if !reflect.DeepEqual(fwd, one) {
		t.Error("merged split differs from single-recorder aggregate")
	}
	if fwd.Samples() != int64(len(obsSet)) {
		t.Errorf("merged samples = %d, want %d", fwd.Samples(), len(obsSet))
	}
}

func TestAnatomySubWindow(t *testing.T) {
	var a Anatomy
	a.Record(PhaseExec, 10*sim.Microsecond)
	a.Record(PhaseRepl, 100*sim.Microsecond)
	snap := a
	a.Record(PhaseRepl, 300*sim.Microsecond)
	w := a.Sub(&snap)
	if w.Samples() != 1 {
		t.Fatalf("window samples = %d, want 1", w.Samples())
	}
	if w.Phase(PhaseExec).Count() != 0 {
		t.Error("pre-window exec sample leaked into the window")
	}
	if w.Phase(PhaseRepl).Count() != 1 || w.Phase(PhaseRepl).Sum() != 300*sim.Microsecond {
		t.Errorf("repl window = count %d sum %v, want 1/300us",
			w.Phase(PhaseRepl).Count(), w.Phase(PhaseRepl).Sum())
	}
	// An idle engine between snapshots yields an all-empty window.
	if idle := a.Sub(&a); idle.Samples() != 0 {
		t.Errorf("identical snapshots produced %d samples", idle.Samples())
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Phases() {
		n := p.String()
		if n == "" || seen[n] {
			t.Errorf("phase %d has empty or duplicate name %q", p, n)
		}
		seen[n] = true
	}
	if Phase(200).String() != "Phase(200)" {
		t.Error("out-of-range phase name not diagnostic")
	}
}
