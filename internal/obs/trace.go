package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bionicdb/internal/sim"
)

// Chrome trace_event export. One process (pid) per socket, one thread (tid)
// per span kind within it, so chrome://tracing / Perfetto renders per-socket
// lanes with the machine's layers stacked inside each. Cross-socket action
// dispatches become flow arrows ("s"/"f" events) from the sender's dispatch
// marker to the receiver's queue-wait span. Timestamps are microseconds
// (the format's unit) computed from the picosecond simulated clock.

// traceEvent is one entry of the trace_event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON object container form of the format.
type traceDoc struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

func usecD(d sim.Duration) float64 { return d.Microseconds() }

// WriteTrace renders the recorder's merged spans as Chrome trace_event JSON.
func WriteTrace(w io.Writer, rec *Recorder) error {
	spans := rec.Merged()
	doc := traceDoc{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]traceEvent, 0, 2*len(spans)+16),
	}
	// Name the lanes: metadata events for every (socket, kind) seen, in
	// ascending (socket, kind) order so the export is deterministic.
	var maxSocket int32 = -1
	lanes := map[[2]int32]bool{}
	for _, sp := range spans {
		if sp.Socket > maxSocket {
			maxSocket = sp.Socket
		}
		lanes[[2]int32{sp.Socket, int32(sp.Kind)}] = true
	}
	for s := int32(0); s <= maxSocket; s++ {
		named := false
		for k := Kind(0); k < NumKinds; k++ {
			if !lanes[[2]int32{s, int32(k)}] {
				continue
			}
			if !named {
				named = true
				doc.TraceEvents = append(doc.TraceEvents, traceEvent{
					Name: "process_name", Ph: "M", PID: s,
					Args: map[string]any{"name": fmt.Sprintf("socket %d", s)},
				})
			}
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: s, TID: int32(k),
				Args: map[string]any{"name": k.String()},
			})
		}
	}
	for _, sp := range spans {
		args := map[string]any{"shard": sp.Shard}
		if sp.Txn != 0 {
			args["txn"] = sp.Txn
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: sp.Kind.String(), Ph: "X", Cat: "sim",
			TS: usec(sp.Start), Dur: usecD(sp.End.Sub(sp.Start)),
			PID: sp.Socket, TID: int32(sp.Kind), Args: args,
		})
		if sp.Flow == 0 {
			continue
		}
		id := fmt.Sprintf("%#x", sp.Flow)
		if sp.FlowOut {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "xsocket", Cat: "flow", Ph: "s", ID: id,
				TS: usec(sp.Start), PID: sp.Socket, TID: int32(sp.Kind),
			})
		} else {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: "xsocket", Cat: "flow", Ph: "f", BP: "e", ID: id,
				TS: usec(sp.Start), PID: sp.Socket, TID: int32(sp.Kind),
			})
		}
	}
	if d := rec.Dropped(); d > 0 {
		doc.OtherData = map[string]any{"dropped_spans": d}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile writes the trace to path.
func WriteTraceFile(path string, rec *Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
