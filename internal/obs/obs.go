// Package obs is the flight recorder: span tracing, time-series telemetry
// and latency-anatomy plumbing for the simulated machine.
//
// Everything in this package is strictly out of band. Recorders and
// telemetry observe the simulation from the host side — they consume no
// simulated time, charge no energy, draw no random numbers and schedule no
// kernel events — so every simulated result (and therefore every pinned
// golden digest) is bit-identical with observation on or off. The package
// imports only internal/sim, and only for its time types and the sampler
// hook; it never touches a heap, queue or process.
//
// Determinism under the parallel kernel: spans are recorded into one ring
// buffer per kernel shard, each written only by that shard's event-loop
// goroutine, and merged at export time by (start time, shard, per-shard
// sequence) — a total order that is a pure function of the simulation,
// never of host scheduling, so traces are identical at GOMAXPROCS=1 and N.
// Telemetry samples live in one slice per socket with the same property.
package obs

import "bionicdb/internal/sim"

// DefaultTraceCap is the per-shard span ring capacity when Options leaves
// TraceCap zero.
const DefaultTraceCap = 1 << 16

// DefaultMetricsTick is the telemetry sampling tick when Options leaves
// MetricsTick zero: fine enough to resolve queue-depth transients inside a
// multi-millisecond run, coarse enough to stay a few hundred samples per
// socket.
const DefaultMetricsTick = 100 * sim.Microsecond

// Options selects which observer faces a run attaches. A nil *Options (the
// default everywhere) attaches nothing and costs nothing.
type Options struct {
	// Trace records spans from the instrumented layers into per-shard ring
	// buffers, exportable as Chrome trace_event JSON.
	Trace bool
	// TraceCap bounds each shard's span ring (default DefaultTraceCap).
	// When a ring is full the oldest spans are overwritten; the exporter
	// reports how many were dropped.
	TraceCap int
	// Metrics attaches the per-socket telemetry samplers.
	Metrics bool
	// MetricsTick is the simulated-time sampling interval (default
	// DefaultMetricsTick).
	MetricsTick sim.Duration
}

// Enabled reports whether the options ask for any observation at all.
func (o *Options) Enabled() bool { return o != nil && (o.Trace || o.Metrics) }

// TraceOn reports whether span tracing is requested (nil-safe).
func (o *Options) TraceOn() bool { return o != nil && o.Trace }

// MetricsOn reports whether telemetry sampling is requested (nil-safe).
func (o *Options) MetricsOn() bool { return o != nil && o.Metrics }

// Cap returns the configured trace ring capacity with the default applied.
func (o *Options) Cap() int {
	if o == nil || o.TraceCap <= 0 {
		return DefaultTraceCap
	}
	return o.TraceCap
}

// Tick returns the configured telemetry tick with the default applied.
func (o *Options) Tick() sim.Duration {
	if o == nil || o.MetricsTick <= 0 {
		return DefaultMetricsTick
	}
	return o.MetricsTick
}
