package obs

import "bionicdb/internal/sim"

// Kind classifies a span: which layer of the machine the interval belongs
// to. Kinds map one-to-one onto trace lanes (tid) in the Chrome export.
type Kind uint8

const (
	// KindSubmit is one whole transaction attempt as the terminal sees it:
	// submit to commit (or abort).
	KindSubmit Kind = iota
	// KindQueueWait is the interval an action spent in a partition's input
	// queue before its first dispatch.
	KindQueueWait
	// KindAction is the execution of one partition action (the transaction
	// logic slice homed on that partition).
	KindAction
	// KindLockWait is the interval a deferred action waited for its
	// partition-local predecessors (DORA) or a transaction waited in the
	// centralized lock manager (conventional).
	KindLockWait
	// KindCross is a cross-shard decision round: the coordinator's
	// rendezvous collecting votes from remote partitions.
	KindCross
	// KindDurability is the commit-time durability fan-in: the wait on the
	// vector durable point across log shards.
	KindDurability
	// KindReplWait is the replication ack wait extending the durable point
	// across machines (sync/quorum commit-wait).
	KindReplWait
	// KindMerge is one overlay merge pass into the home structures.
	KindMerge
	// KindScan is one analytical scanner pass over a columnar projection.
	KindScan
	// KindDispatch is the zero-length send marker of a cross-socket action
	// dispatch; it is the source end of a flow edge whose target is the
	// matching KindQueueWait span on the receiving socket.
	KindDispatch

	// NumKinds is the number of span kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"submit", "queue-wait", "action", "lock-wait", "cross-shard",
	"durability", "repl-ack", "overlay-merge", "scan", "dispatch",
}

// String returns the kind's trace-lane name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one simulated-time interval attributed to a socket and a layer.
// Flow links the two ends of a cross-socket edge: the span recorded with
// FlowOut set is the source, the span carrying the same nonzero Flow
// without it is the target.
type Span struct {
	Start, End sim.Time
	Kind       Kind
	Socket     int32  // lane: the socket the work belongs to
	Shard      int32  // kernel shard that recorded it (merge tiebreak)
	Txn        uint64 // transaction or action serial, 0 when not applicable
	Flow       uint64 // cross-socket edge id, 0 when none
	FlowOut    bool   // this span is the source end of Flow

	seq uint64 // per-shard record order, assigned by ShardRec.Record
}
