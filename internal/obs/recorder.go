package obs

import "sort"

// ShardRec is one kernel shard's span ring. It is written only by code
// executing on that shard (or by the driver between runs), so it needs no
// locking; under the concurrent kernel each shard's event-loop goroutine
// owns exactly one ShardRec. All methods are nil-safe: instrumented layers
// keep a possibly-nil *ShardRec and call Record unconditionally, so the
// untraced hot path costs one nil check.
type ShardRec struct {
	shard   int
	cap     int
	spans   []Span
	next    int    // ring write position once len(spans) == cap
	seq     uint64 // total spans ever recorded
	flowSeq uint64 // flow ids handed out by NextFlow
	dropped uint64 // spans overwritten after the ring filled
}

// Record appends a span to the ring, overwriting the oldest span when full.
func (r *ShardRec) Record(sp Span) {
	if r == nil {
		return
	}
	sp.Shard = int32(r.shard)
	sp.seq = r.seq
	r.seq++
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, sp)
		return
	}
	r.spans[r.next] = sp
	r.next = (r.next + 1) % r.cap
	r.dropped++
}

// NextFlow allocates a flow-edge id unique across shards: the recording
// shard in the high bits, a per-shard counter below. Deterministic because
// each shard's counter advances only with that shard's own event stream.
// Returns 0 (no flow) on a nil receiver.
func (r *ShardRec) NextFlow() uint64 {
	if r == nil {
		return 0
	}
	r.flowSeq++
	return uint64(r.shard+1)<<40 | r.flowSeq
}

// Len reports how many spans the ring currently holds.
func (r *ShardRec) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Dropped reports how many spans were overwritten after the ring filled.
func (r *ShardRec) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Recorder is the per-run trace: one span ring per kernel shard.
type Recorder struct {
	shards []*ShardRec
}

// NewRecorder builds a recorder with one ring of the given capacity per
// kernel shard.
func NewRecorder(shards, cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	rec := &Recorder{shards: make([]*ShardRec, shards)}
	for i := range rec.shards {
		rec.shards[i] = &ShardRec{shard: i, cap: cap}
	}
	return rec
}

// Shard returns shard i's ring. Nil-safe: a nil recorder yields a nil
// *ShardRec, whose Record is a no-op.
func (rec *Recorder) Shard(i int) *ShardRec {
	if rec == nil {
		return nil
	}
	return rec.shards[i]
}

// NumShards reports how many rings the recorder holds.
func (rec *Recorder) NumShards() int {
	if rec == nil {
		return 0
	}
	return len(rec.shards)
}

// Dropped sums the overwritten-span counts across shards.
func (rec *Recorder) Dropped() uint64 {
	var n uint64
	if rec == nil {
		return 0
	}
	for _, r := range rec.shards {
		n += r.Dropped()
	}
	return n
}

// Merged returns every recorded span in the canonical total order
// (start time, shard, per-shard sequence). The order is a pure function of
// the simulation — per-shard sequences follow each shard's deterministic
// event stream — so the merged trace is identical between the serial and
// concurrent kernels and at any GOMAXPROCS.
func (rec *Recorder) Merged() []Span {
	if rec == nil {
		return nil
	}
	var out []Span
	for _, r := range rec.shards {
		out = append(out, r.spans...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.seq < b.seq
	})
	return out
}
