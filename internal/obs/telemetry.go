package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"bionicdb/internal/sim"
)

// Sample is one telemetry observation of one socket at one simulated
// instant. Gauges (queue depth, waiters, backlog, lag) are instantaneous;
// the platform counters (instructions, DRAM, LLC, egress busy) and the
// kernel counters (events, windows, stalls) are cumulative since the start
// of the run, so rates come from differencing adjacent samples.
type Sample struct {
	At     sim.Time `json:"at_ps"`
	Socket int      `json:"socket"`

	// Engine gauges.
	QueueDepth  int   `json:"queue_depth"`  // actions parked in partition input queues
	Deferred    int   `json:"deferred"`     // DORA actions deferred behind lock predecessors
	LockWaiters int   `json:"lock_waiters"` // centralized lock-manager waiters (conventional)
	LogBacklog  int   `json:"log_backlog"`  // log bytes appended but not yet durable
	ReplLag     int64 `json:"repl_lag"`     // primary durable minus slowest replica ack, bytes

	// Platform counters (cumulative).
	Instructions int64        `json:"instructions"`
	DRAMBytes    int64        `json:"dram_bytes"`
	LLCHits      int64        `json:"llc_hits"`
	LLCMisses    int64        `json:"llc_misses"`
	EgressBusy   sim.Duration `json:"egress_busy_ps"` // interconnect egress port busy time

	// Kernel shard counters (cumulative; the shard that sampled this socket).
	Events  uint64 `json:"events"`
	Windows uint64 `json:"windows"`
	Stalls  uint64 `json:"stalls"`
}

// Gauges is one socket's instantaneous engine-side readings, returned by
// engines that support the telemetry sampler. Fields mirror the gauge half
// of Sample.
type Gauges struct {
	QueueDepth  int
	Deferred    int
	LockWaiters int
	LogBacklog  int
	ReplLag     int64
}

// Telemetry is the per-run time series: one sample slice per socket. Each
// slice is appended to only by the kernel shard running that socket's
// sampler, so the concurrent kernel writes race-free without locks.
type Telemetry struct {
	Tick      sim.Duration
	perSocket [][]Sample
}

// NewTelemetry builds an empty series for the given socket count.
func NewTelemetry(sockets int, tick sim.Duration) *Telemetry {
	return &Telemetry{Tick: tick, perSocket: make([][]Sample, sockets)}
}

// Append records one sample for its socket.
func (t *Telemetry) Append(s Sample) {
	if t == nil {
		return
	}
	t.perSocket[s.Socket] = append(t.perSocket[s.Socket], s)
}

// NumSockets reports how many sockets the series covers.
func (t *Telemetry) NumSockets() int {
	if t == nil {
		return 0
	}
	return len(t.perSocket)
}

// Samples returns every sample ordered by (time, socket) — deterministic
// regardless of which shard sampled what when.
func (t *Telemetry) Samples() []Sample {
	if t == nil {
		return nil
	}
	var out []Sample
	for _, ss := range t.perSocket {
		out = append(out, ss...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Socket < b.Socket
	})
	return out
}

// WriteCSV renders the series as CSV, one row per sample.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "at_us,socket,queue_depth,deferred,lock_waiters,log_backlog,repl_lag,instructions,dram_bytes,llc_hits,llc_misses,egress_busy_us,events,windows,stalls"); err != nil {
		return err
	}
	for _, s := range t.Samples() {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%d\n",
			usec(s.At), s.Socket, s.QueueDepth, s.Deferred, s.LockWaiters,
			s.LogBacklog, s.ReplLag, s.Instructions, s.DRAMBytes,
			s.LLCHits, s.LLCMisses, s.EgressBusy.Microseconds(),
			s.Events, s.Windows, s.Stalls); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSON renders the series as a JSON document.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	doc := struct {
		TickPs  int64    `json:"tick_ps"`
		Sockets int      `json:"sockets"`
		Samples []Sample `json:"samples"`
	}{int64(t.Tick), t.NumSockets(), t.Samples()}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMetricsFile writes the series to path — JSON when the path ends in
// .json, CSV otherwise.
func (t *Telemetry) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := error(nil)
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		werr = t.WriteJSON(f)
	} else {
		werr = t.WriteCSV(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}
