package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bionicdb/internal/sim"
)

func TestOptionsNilSafe(t *testing.T) {
	var o *Options
	if o.Enabled() || o.TraceOn() || o.MetricsOn() {
		t.Error("nil options report observation enabled")
	}
	if o.Cap() != DefaultTraceCap {
		t.Errorf("nil options Cap = %d, want default %d", o.Cap(), DefaultTraceCap)
	}
	if o.Tick() != DefaultMetricsTick {
		t.Errorf("nil options Tick = %v, want default %v", o.Tick(), DefaultMetricsTick)
	}
	full := &Options{Trace: true, Metrics: true, TraceCap: 8, MetricsTick: sim.Microsecond}
	if !full.Enabled() || !full.TraceOn() || !full.MetricsOn() {
		t.Error("full options report observation disabled")
	}
	if full.Cap() != 8 || full.Tick() != sim.Microsecond {
		t.Error("explicit cap/tick not honored")
	}
}

func TestShardRecNilSafe(t *testing.T) {
	var r *ShardRec
	r.Record(Span{}) // must not panic
	if r.NextFlow() != 0 {
		t.Error("nil ring handed out a flow id")
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil ring reports contents")
	}
	var rec *Recorder
	if rec.Shard(3) != nil || rec.NumShards() != 0 || rec.Merged() != nil || rec.Dropped() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	rec := NewRecorder(1, 4)
	r := rec.Shard(0)
	for i := 0; i < 10; i++ {
		r.Record(Span{Start: sim.Time(i), End: sim.Time(i + 1), Kind: KindAction})
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d spans, want cap 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	merged := rec.Merged()
	if len(merged) != 4 {
		t.Fatalf("Merged returned %d spans, want 4", len(merged))
	}
	// Overwrite keeps the newest spans: starts 6..9 in order.
	for i, sp := range merged {
		if sp.Start != sim.Time(6+i) {
			t.Errorf("merged[%d].Start = %d, want %d", i, sp.Start, 6+i)
		}
	}
}

func TestMergedCanonicalOrder(t *testing.T) {
	rec := NewRecorder(3, 16)
	// Record interleaved across shards, same timestamps on purpose: ties
	// break by shard, then per-shard sequence.
	rec.Shard(2).Record(Span{Start: 5, End: 6})
	rec.Shard(0).Record(Span{Start: 5, End: 6})
	rec.Shard(1).Record(Span{Start: 3, End: 4})
	rec.Shard(0).Record(Span{Start: 5, End: 7})
	m := rec.Merged()
	if len(m) != 4 {
		t.Fatalf("merged %d spans, want 4", len(m))
	}
	if m[0].Shard != 1 || m[0].Start != 3 {
		t.Errorf("first span should be shard 1 at t=3, got shard %d t=%d", m[0].Shard, m[0].Start)
	}
	if m[1].Shard != 0 || m[1].End != 6 {
		t.Errorf("tie at t=5 should order shard 0 seq 0 first, got shard %d end %d", m[1].Shard, m[1].End)
	}
	if m[2].Shard != 0 || m[2].End != 7 {
		t.Errorf("shard 0's second span should follow its first, got shard %d end %d", m[2].Shard, m[2].End)
	}
	if m[3].Shard != 2 {
		t.Errorf("last of the t=5 tie should be shard 2, got %d", m[3].Shard)
	}
}

func TestNextFlowUniqueAcrossShards(t *testing.T) {
	rec := NewRecorder(4, 8)
	seen := map[uint64]bool{}
	for s := 0; s < 4; s++ {
		for i := 0; i < 100; i++ {
			id := rec.Shard(s).NextFlow()
			if id == 0 {
				t.Fatal("live ring returned the nil flow id")
			}
			if seen[id] {
				t.Fatalf("flow id %#x handed out twice", id)
			}
			seen[id] = true
		}
	}
}

func TestTraceExportValidJSON(t *testing.T) {
	rec := NewRecorder(2, 16)
	flow := rec.Shard(0).NextFlow()
	rec.Shard(0).Record(Span{Start: 10, End: 10, Kind: KindDispatch, Socket: 0, Txn: 7, Flow: flow, FlowOut: true})
	rec.Shard(1).Record(Span{Start: 20, End: 30, Kind: KindQueueWait, Socket: 1, Txn: 7, Flow: flow})
	rec.Shard(1).Record(Span{Start: 30, End: 90, Kind: KindAction, Socket: 1, Txn: 7})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int32   `json:"pid"`
			TID  int32   `json:"tid"`
			TS   float64 `json:"ts"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var procs, xs, flowOut, flowIn int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs++
			}
		case "X":
			xs++
		case "s":
			flowOut++
		case "f":
			flowIn++
		}
	}
	if procs != 2 {
		t.Errorf("trace names %d socket lanes, want 2", procs)
	}
	if xs != 3 {
		t.Errorf("trace carries %d complete events, want 3", xs)
	}
	if flowOut != 1 || flowIn != 1 {
		t.Errorf("flow edge not paired: %d starts, %d finishes", flowOut, flowIn)
	}
}

func TestTelemetryOrderAndExport(t *testing.T) {
	tel := NewTelemetry(2, DefaultMetricsTick)
	// Socket 1's shard happens to append before socket 0's: Samples must
	// still come out (time, socket)-ordered.
	tel.Append(Sample{At: 100, Socket: 1, QueueDepth: 3})
	tel.Append(Sample{At: 100, Socket: 0, QueueDepth: 1})
	tel.Append(Sample{At: 200, Socket: 0, QueueDepth: 2})
	ss := tel.Samples()
	if len(ss) != 3 || ss[0].Socket != 0 || ss[1].Socket != 1 || ss[2].At != 200 {
		t.Fatalf("samples not in (time, socket) order: %+v", ss)
	}

	var csv bytes.Buffer
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at_us,socket,queue_depth,") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}

	var js bytes.Buffer
	if err := tel.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TickPs  int64    `json:"tick_ps"`
		Sockets int      `json:"sockets"`
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("telemetry JSON invalid: %v", err)
	}
	if doc.Sockets != 2 || len(doc.Samples) != 3 || doc.TickPs != int64(DefaultMetricsTick) {
		t.Errorf("telemetry JSON fields wrong: %+v", doc)
	}
}

func TestKindNamesTotal(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		n := k.String()
		if n == "" || seen[n] {
			t.Errorf("kind %d has empty or duplicate name %q", k, n)
		}
		seen[n] = true
	}
}
