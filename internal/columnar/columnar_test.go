package columnar

import (
	"bytes"
	"testing"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
)

func fixture() (*platform.Platform, *Table) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	t := NewTable(pl, "t", U64Col("id"), U64Col("qty"), BytesCol("name"))
	return pl, t
}

func TestUpsertAppendAndReplace(t *testing.T) {
	_, tbl := fixture()
	tbl.Upsert(1, uint64(10), []byte("a"))
	tbl.Upsert(2, uint64(20), []byte("b"))
	if tbl.Rows() != 2 {
		t.Fatalf("rows=%d", tbl.Rows())
	}
	tbl.Upsert(1, uint64(99), []byte("z"))
	if tbl.Rows() != 2 {
		t.Fatalf("replace grew table: %d", tbl.Rows())
	}
	pos, ok := tbl.Get(1)
	if !ok || tbl.U64At("qty", pos) != 99 || !bytes.Equal(tbl.BytesAt("name", pos), []byte("z")) {
		t.Fatal("replace did not land")
	}
	if _, ok := tbl.Get(42); ok {
		t.Fatal("phantom row")
	}
}

func TestColumnsAddressedInFPGASpace(t *testing.T) {
	_, tbl := fixture()
	for _, c := range tbl.Columns() {
		if !platform.IsFPGAAddr(c.Addr()) {
			t.Fatalf("column %s not in FPGA address space", c.Name)
		}
	}
}

func TestWidths(t *testing.T) {
	_, tbl := fixture()
	if tbl.Column("id").Width() != 8 {
		t.Fatal("u64 width")
	}
	if w := tbl.Column("name").Width(); w != 16 { // empty column default
		t.Fatalf("empty bytes width %d", w)
	}
	tbl.Upsert(1, uint64(1), []byte("abcd"))
	if w := tbl.Column("name").Width(); w != 6 {
		t.Fatalf("bytes width %d", w)
	}
	if tbl.RowWidth() != 8+8+6 {
		t.Fatalf("row width %d", tbl.RowWidth())
	}
}

func TestBadUpsertArityPanics(t *testing.T) {
	_, tbl := fixture()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.Upsert(1, uint64(1)) // missing name column
}

func TestDuplicateColumnPanics(t *testing.T) {
	env := sim.NewEnv()
	pl := platform.New(env, platform.HC2())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable(pl, "bad", U64Col("x"), U64Col("x"))
}
