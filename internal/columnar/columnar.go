// Package columnar implements the FPGA-side columnar base store of
// Figure 4: the durable, scan-friendly home of table data that the overlay
// (§5.6) bulk-merges into and the enhanced scanner filters. Columns are
// typed arrays in SG-DRAM address space; the store is append/replace
// oriented — point reads and writes go through the overlay, not here.
package columnar

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"bionicdb/internal/platform"
)

// ColumnKind is a column's physical type.
type ColumnKind uint8

// Column kinds.
const (
	KindUint64 ColumnKind = iota + 1
	KindBytes
)

// Column is one typed column.
type Column struct {
	Name string
	Kind ColumnKind
	U64  []uint64
	Byt  [][]byte
	addr uint64
}

// Addr returns the column's SG-DRAM base address.
func (c *Column) Addr() uint64 { return c.addr }

// Width returns the average encoded width of one value in bytes.
func (c *Column) Width() int {
	if c.Kind == KindUint64 {
		return 8
	}
	if len(c.Byt) == 0 {
		return 16
	}
	total := 0
	for _, b := range c.Byt {
		total += len(b) + 2
	}
	return total / len(c.Byt)
}

// Table is a columnar table: parallel columns keyed by a dense row index,
// plus a primary-key column for merge matching.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]*Column
	keyIdx map[uint64]int // primary key -> row position
	rows   int
	pl     *platform.Platform
}

// NewTable creates an empty columnar table. The first column must be the
// uint64 primary key.
func NewTable(pl *platform.Platform, name string, cols ...*Column) *Table {
	if len(cols) == 0 || cols[0].Kind != KindUint64 {
		panic("columnar: first column must be the uint64 primary key")
	}
	t := &Table{Name: name, cols: cols, byName: make(map[string]*Column), keyIdx: make(map[uint64]int), pl: pl}
	for _, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			panic(fmt.Sprintf("columnar: duplicate column %q", c.Name))
		}
		t.byName[c.Name] = c
		c.addr = pl.AllocFPGA(1 << 20)
	}
	return t
}

// U64Col declares a uint64 column.
func U64Col(name string) *Column { return &Column{Name: name, Kind: KindUint64} }

// BytesCol declares a variable-width column.
func BytesCol(name string) *Column { return &Column{Name: name, Kind: KindBytes} }

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Columns returns the schema in declaration order.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// RowWidth returns the average encoded row width, for scan sizing.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.cols {
		w += c.Width()
	}
	return w
}

// Upsert merges one row by primary key: existing rows are replaced in
// place, new rows appended. vals must match the schema minus the key.
// Upsert is the overlay's bulk-merge entry point; it charges no simulated
// time itself (the merge daemon charges device transfers for the batch).
func (t *Table) Upsert(key uint64, vals ...any) {
	pos, exists := t.keyIdx[key]
	if !exists {
		pos = t.rows
		t.rows++
		t.keyIdx[key] = pos
		t.cols[0].U64 = append(t.cols[0].U64, key)
		for _, c := range t.cols[1:] {
			if c.Kind == KindUint64 {
				c.U64 = append(c.U64, 0)
			} else {
				c.Byt = append(c.Byt, nil)
			}
		}
	}
	if len(vals) != len(t.cols)-1 {
		panic(fmt.Sprintf("columnar: %s: %d values for %d non-key columns", t.Name, len(vals), len(t.cols)-1))
	}
	for i, v := range vals {
		c := t.cols[i+1]
		switch c.Kind {
		case KindUint64:
			c.U64[pos] = v.(uint64)
		case KindBytes:
			c.Byt[pos] = v.([]byte)
		}
	}
}

// Get returns the row position for a primary key.
func (t *Table) Get(key uint64) (pos int, ok bool) {
	pos, ok = t.keyIdx[key]
	return pos, ok
}

// ContentDigest returns a SHA-256 over the table's logical content — every
// column value in primary-key order — independent of physical row order.
// Two tables built by different maintenance paths (incremental merge vs a
// full rebuild) digest identically iff they hold the same rows, which is
// what the HTAP equivalence tests pin.
func (t *Table) ContentDigest() string {
	keys := make([]uint64, 0, t.rows)
	for k := range t.keyIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := sha256.New()
	var b8 [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		h.Write(b8[:])
	}
	for _, k := range keys {
		pos := t.keyIdx[k]
		w64(k)
		for _, c := range t.cols[1:] {
			if c.Kind == KindUint64 {
				w64(c.U64[pos])
			} else {
				w64(uint64(len(c.Byt[pos])))
				h.Write(c.Byt[pos])
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// U64At reads a uint64 cell.
func (t *Table) U64At(col string, pos int) uint64 { return t.byName[col].U64[pos] }

// BytesAt reads a variable-width cell.
func (t *Table) BytesAt(col string, pos int) []byte { return t.byName[col].Byt[pos] }
