package btree

import (
	"encoding/binary"
	"fmt"

	"bionicdb/internal/storage"
)

// Node image format (checkpoint pages):
//
//	u8  kind (0 = inner, 1 = leaf)
//	u16 nkeys
//	leaf:  nkeys × (u16 klen, key, u16 vlen, val)
//	inner: nkeys × (u16 klen, key) then (nkeys+1) × u64 child page id
//
// Leaf chains are rebuilt from in-order traversal at load time, so next
// pointers are not stored.

func appendBytes16(dst, b []byte) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(b)))
	dst = append(dst, l[:]...)
	return append(dst, b...)
}

func readBytes16(b []byte, off int) ([]byte, int) {
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	return b[off : off+n], off + n
}

func serializeNode(n *node) []byte {
	out := make([]byte, 0, 256)
	kind := byte(0)
	if n.leaf {
		kind = 1
	}
	out = append(out, kind)
	var cnt [2]byte
	binary.LittleEndian.PutUint16(cnt[:], uint16(len(n.keys)))
	out = append(out, cnt[:]...)
	for i, k := range n.keys {
		out = appendBytes16(out, k)
		if n.leaf {
			out = appendBytes16(out, n.vals[i])
		}
	}
	if !n.leaf {
		var idb [8]byte
		for _, kid := range n.kids {
			binary.LittleEndian.PutUint64(idb[:], uint64(kid.id))
			out = append(out, idb[:]...)
		}
	}
	return out
}

// Checkpoint walks the tree and hands every node's page id and serialized
// image to write, root first. Together with the root id (RootID) the images
// fully reconstruct the tree via Load.
func (t *Tree) Checkpoint(write func(id storage.PageID, image []byte)) {
	var walk func(n *node)
	walk = func(n *node) {
		write(n.id, serializeNode(n))
		if !n.leaf {
			for _, kid := range n.kids {
				walk(kid)
			}
		}
	}
	walk(t.root)
}

// Load reconstructs a tree from checkpoint images. read must return the
// image for a page id (as written by Checkpoint). The returned tree uses
// cfg for future allocations; its id counter resumes above the largest
// loaded id.
func Load(cfg Config, rootID storage.PageID, read func(id storage.PageID) []byte) (*Tree, error) {
	t := New(cfg)
	maxID := storage.PageID(0)
	var build func(id storage.PageID, depth int) (*node, error)
	build = func(id storage.PageID, depth int) (*node, error) {
		img := read(id)
		if img == nil {
			return nil, fmt.Errorf("btree: missing checkpoint image for page %d", id)
		}
		if id > maxID {
			maxID = id
		}
		n := &node{id: id, leaf: img[0] == 1}
		if t.cfg.AddrOf != nil {
			n.addr = t.cfg.AddrOf(id, t.cfg.Order*32)
		} else {
			n.addr = uint64(id) * 8192
		}
		nkeys := int(binary.LittleEndian.Uint16(img[1:]))
		off := 3
		for i := 0; i < nkeys; i++ {
			var k []byte
			k, off = readBytes16(img, off)
			n.keys = append(n.keys, append([]byte(nil), k...))
			if n.leaf {
				var v []byte
				v, off = readBytes16(img, off)
				n.vals = append(n.vals, append([]byte(nil), v...))
			}
		}
		if n.leaf {
			if depth+1 > t.height {
				t.height = depth + 1
			}
			t.size += nkeys
			return n, nil
		}
		for i := 0; i < nkeys+1; i++ {
			kidID := storage.PageID(binary.LittleEndian.Uint64(img[off:]))
			off += 8
			kid, err := build(kidID, depth+1)
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, kid)
		}
		return n, nil
	}
	t.size = 0
	t.height = 0
	root, err := build(rootID, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	if t.height == 0 {
		t.height = 1
	}
	// Rebuild the leaf chain by in-order traversal.
	var prev *node
	var chain func(n *node)
	chain = func(n *node) {
		if n.leaf {
			if prev != nil {
				prev.next = n
			}
			prev = n
			return
		}
		for _, kid := range n.kids {
			chain(kid)
		}
	}
	chain(t.root)
	t.nextID = maxID + 1
	return t, nil
}
