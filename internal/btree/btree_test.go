package btree

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"bionicdb/internal/sim"
	"bionicdb/internal/storage"
)

func key(i int) []byte  { return storage.Uint64Key(uint64(i)) }
func val(i int) []byte  { return []byte(fmt.Sprintf("v%d", i)) }
func small() *Tree      { return New(Config{Order: 4}) }
func sized(o int) *Tree { return New(Config{Order: o}) }

func TestEmptyTree(t *testing.T) {
	tr := small()
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("size=%d height=%d", tr.Size(), tr.Height())
	}
	if _, ok := tr.Get(key(1), nil); ok {
		t.Fatal("found key in empty tree")
	}
	if _, ok := tr.Delete(key(1), nil); ok {
		t.Fatal("deleted key from empty tree")
	}
	if _, _, ok := tr.Min(nil); ok {
		t.Fatal("min of empty tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	tr := sized(8)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i), nil)
	}
	if tr.Size() != n {
		t.Fatalf("size = %d", tr.Size())
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i), nil)
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d: got %q ok=%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(key(n), nil); ok {
		t.Fatal("found absent key")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutReplaces(t *testing.T) {
	tr := small()
	tr.Put(key(1), []byte("a"), nil)
	prev, existed := tr.Put(key(1), []byte("b"), nil)
	if !existed || string(prev) != "a" {
		t.Fatalf("prev=%q existed=%v", prev, existed)
	}
	if tr.Size() != 1 {
		t.Fatalf("size=%d after replace", tr.Size())
	}
	v, _ := tr.Get(key(1), nil)
	if string(v) != "b" {
		t.Fatalf("v=%q", v)
	}
}

func TestReverseAndRandomInsertOrders(t *testing.T) {
	for name, order := range map[string][]int{
		"reverse": reverseInts(500),
		"shuffle": shuffleInts(500, 7),
	} {
		tr := sized(6)
		for _, i := range order {
			tr.Put(key(i), val(i), nil)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, i := range order {
			if v, ok := tr.Get(key(i), nil); !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("%s: key %d missing", name, i)
			}
		}
	}
}

func reverseInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func shuffleInts(n int, seed uint64) []int {
	r := sim.NewRand(seed)
	out := r.Perm(n)
	return out
}

func TestDeleteEverySecondThenAll(t *testing.T) {
	tr := sized(4)
	const n = 600
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i), nil)
	}
	for i := 0; i < n; i += 2 {
		v, ok := tr.Delete(key(i), nil)
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i), nil)
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	for i := 1; i < n; i += 2 {
		if _, ok := tr.Delete(key(i), nil); !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Size() != 0 || tr.Height() != 1 {
		t.Fatalf("size=%d height=%d after deleting all", tr.Size(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := small()
	tr.Put(key(1), val(1), nil)
	if _, ok := tr.Delete(key(2), nil); ok {
		t.Fatal("deleted absent key")
	}
	if tr.Size() != 1 {
		t.Fatal("size disturbed by absent delete")
	}
}

func TestHeightGrowsAndShrinks(t *testing.T) {
	tr := sized(4)
	for i := 0; i < 200; i++ {
		tr.Put(key(i), val(i), nil)
	}
	grown := tr.Height()
	if grown < 3 {
		t.Fatalf("height %d after 200 inserts at order 4", grown)
	}
	for i := 0; i < 200; i++ {
		tr.Delete(key(i), nil)
	}
	if tr.Height() != 1 {
		t.Fatalf("height %d after deleting all", tr.Height())
	}
}

func TestScanRange(t *testing.T) {
	tr := sized(6)
	for i := 0; i < 100; i++ {
		tr.Put(key(i*2), val(i*2), nil) // even keys 0..198
	}
	var got []int
	tr.Scan(key(10), key(31), nil, func(k, v []byte) bool {
		got = append(got, int(storage.DecodeUint64(k)))
		return true
	})
	want := []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanUnbounded(t *testing.T) {
	tr := sized(5)
	for i := 0; i < 50; i++ {
		tr.Put(key(i), val(i), nil)
	}
	count := 0
	prev := -1
	tr.Scan(nil, nil, nil, func(k, v []byte) bool {
		cur := int(storage.DecodeUint64(k))
		if cur <= prev {
			t.Fatalf("scan out of order: %d after %d", cur, prev)
		}
		prev = cur
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("scanned %d", count)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := sized(5)
	for i := 0; i < 50; i++ {
		tr.Put(key(i), val(i), nil)
	}
	count := 0
	tr.Scan(nil, nil, nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("scanned %d, want 7", count)
	}
}

func TestScanEmptyRange(t *testing.T) {
	tr := sized(5)
	for i := 0; i < 20; i++ {
		tr.Put(key(i*10), val(i), nil)
	}
	count := 0
	tr.Scan(key(11), key(19), nil, func(k, v []byte) bool { count++; return true })
	if count != 0 {
		t.Fatalf("empty range yielded %d", count)
	}
}

func TestMin(t *testing.T) {
	tr := sized(5)
	for i := 100; i > 3; i-- {
		tr.Put(key(i), val(i), nil)
	}
	k, v, ok := tr.Min(nil)
	if !ok || storage.DecodeUint64(k) != 4 || !bytes.Equal(v, val(4)) {
		t.Fatalf("min = %v %q %v", k, v, ok)
	}
}

func TestTraceReportsPath(t *testing.T) {
	tr := sized(4)
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i), nil)
	}
	var trace Trace
	tr.Get(key(250), &trace)
	if trace.Depth() != tr.Height() {
		t.Fatalf("trace depth %d, height %d", trace.Depth(), tr.Height())
	}
	if !trace.Visits[len(trace.Visits)-1].Leaf {
		t.Fatal("last visit not a leaf")
	}
	for _, v := range trace.Visits[:len(trace.Visits)-1] {
		if v.Leaf {
			t.Fatal("interior visit marked leaf")
		}
		if v.Addr == 0 || v.ID == 0 {
			t.Fatal("visit missing identity")
		}
	}
	trace.Reset()
	if trace.Depth() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTraceCountsSplits(t *testing.T) {
	tr := sized(4)
	var total Trace
	for i := 0; i < 100; i++ {
		var trace Trace
		tr.Put(key(i), val(i), &trace)
		total.Splits += trace.Splits
	}
	if total.Splits == 0 {
		t.Fatal("no splits recorded across 100 inserts at order 4")
	}
}

func TestVariableLengthStringKeys(t *testing.T) {
	tr := sized(6)
	words := []string{"a", "ab", "abc", "b", "ba", "z", "zz", "zzz", "m", "mn", "mno", ""}
	for i, w := range words {
		tr.Put([]byte(w), val(i), nil)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		v, ok := tr.Get([]byte(w), nil)
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("word %q missing", w)
		}
	}
	// Lexicographic scan order.
	var got []string
	tr.Scan(nil, nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan order wrong: %q >= %q", got[i-1], got[i])
		}
	}
}

func TestCheckpointLoadRoundTrip(t *testing.T) {
	tr := sized(6)
	const n = 777
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i), nil)
	}
	for i := 0; i < n; i += 3 {
		tr.Delete(key(i), nil)
	}
	images := map[storage.PageID][]byte{}
	tr.Checkpoint(func(id storage.PageID, img []byte) {
		images[id] = append([]byte(nil), img...)
	})
	loaded, err := Load(Config{Order: 6}, tr.RootID(), func(id storage.PageID) []byte { return images[id] })
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != tr.Size() || loaded.Height() != tr.Height() {
		t.Fatalf("loaded size=%d height=%d, want %d/%d", loaded.Size(), loaded.Height(), tr.Size(), tr.Height())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, wantOK := tr.Get(key(i), nil)
		got, gotOK := loaded.Get(key(i), nil)
		if wantOK != gotOK || !bytes.Equal(want, got) {
			t.Fatalf("key %d diverged after load", i)
		}
	}
	// The loaded tree must remain fully functional.
	loaded.Put(key(n+1), val(n+1), nil)
	if _, ok := loaded.Get(key(n+1), nil); !ok {
		t.Fatal("insert into loaded tree failed")
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingPage(t *testing.T) {
	_, err := Load(Config{Order: 6}, 42, func(id storage.PageID) []byte { return nil })
	if err == nil {
		t.Fatal("expected error for missing image")
	}
}

// TestPropertyAgainstMapOracle drives random operation sequences against a
// map and validates structure after every batch.
func TestPropertyAgainstMapOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed uint64, orderSel uint8) bool {
		r := sim.NewRand(seed)
		order := 4 + int(orderSel%12)
		tr := sized(order)
		oracle := map[string]string{}
		for step := 0; step < 800; step++ {
			k := key(r.Intn(200))
			switch r.Intn(3) {
			case 0, 1:
				v := val(r.Intn(1000))
				tr.Put(k, v, nil)
				oracle[string(k)] = string(v)
			case 2:
				_, treeOK := tr.Delete(k, nil)
				_, oracleOK := oracle[string(k)]
				if treeOK != oracleOK {
					return false
				}
				delete(oracle, string(k))
			}
		}
		if tr.Size() != len(oracle) {
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get([]byte(k), nil)
			if !ok || string(got) != v {
				return false
			}
		}
		// Scan must agree with the oracle's sorted key count.
		count := 0
		tr.Scan(nil, nil, nil, func(k, v []byte) bool { count++; return true })
		return count == len(oracle)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyCheckpointEquivalence: load(checkpoint(T)) behaves as T.
func TestPropertyCheckpointEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRand(seed)
		tr := sized(4 + r.Intn(8))
		for i := 0; i < 300; i++ {
			tr.Put(key(r.Intn(150)), val(r.Intn(100)), nil)
			if r.Bool(0.3) {
				tr.Delete(key(r.Intn(150)), nil)
			}
		}
		images := map[storage.PageID][]byte{}
		tr.Checkpoint(func(id storage.PageID, img []byte) { images[id] = img })
		loaded, err := Load(Config{Order: tr.Order()}, tr.RootID(), func(id storage.PageID) []byte { return images[id] })
		if err != nil {
			return false
		}
		if loaded.Validate() != nil || loaded.Size() != tr.Size() {
			return false
		}
		ok := true
		tr.Scan(nil, nil, nil, func(k, v []byte) bool {
			got, found := loaded.Get(k, nil)
			if !found || !bytes.Equal(got, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New(Config{})
	for i := 0; i < 100000; i++ {
		tr.Put(key(i), val(i), nil)
	}
	r := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(r.Intn(100000)), nil)
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i), nil)
	}
}
