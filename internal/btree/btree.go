// Package btree implements the B+Tree used by every engine: byte-string
// keys in lexicographic order (with order-preserving integer encodings from
// package storage), values in the leaves, a linked leaf level for range
// scans, and split/borrow/merge rebalancing. The tree is a pure data
// structure — it charges no simulated time itself. Instead each operation
// can fill a Trace describing the nodes it touched and the comparisons it
// made, and the engines convert traces into CPU, cache or SG-DRAM charges.
// This is what lets one tree serve both the software path (cache-modelled
// probes) and the hardware tree-probe engine (SG-DRAM-modelled probes).
package btree

import (
	"bytes"
	"fmt"

	"bionicdb/internal/storage"
)

// DefaultOrder is the default maximum number of keys per node. With ~32-byte
// keys+values this keeps nodes within an 8 KiB page, giving the "branching
// factors of several hundred" the paper assumes.
const DefaultOrder = 128

// Config parameterizes a tree.
type Config struct {
	// Order is the maximum number of keys per node (min 4); nodes split
	// when they exceed it and rebalance below Order/2.
	Order int
	// AddrOf assigns a timing-model address to a newly allocated node
	// given its page id and approximate byte size. Nil uses a synthetic
	// host address (suitable for unit tests).
	AddrOf func(id storage.PageID, size int) uint64
	// NextID allocates node page ids. Nil uses a private counter.
	NextID func() storage.PageID
}

// Visit records one node touched during an operation.
type Visit struct {
	ID    storage.PageID
	Addr  uint64
	Cmps  int // key comparisons performed in this node
	Leaf  bool
	Bytes int // approximate bytes examined (for hardware transfer sizing)
}

// Trace accumulates the work done by one tree operation so engines can
// charge it to the timing model. Reuse traces across operations via Reset.
type Trace struct {
	Visits  []Visit
	Splits  int
	Merges  int
	Borrows int
	// NewPages lists pages born during this operation (splits, root
	// growth); page caches install them without I/O.
	NewPages []storage.PageID
}

// Reset clears the trace for reuse without freeing its storage.
func (t *Trace) Reset() {
	t.Visits = t.Visits[:0]
	t.Splits, t.Merges, t.Borrows = 0, 0, 0
	t.NewPages = t.NewPages[:0]
}

// TracePool is a free list of traces. Engines draw a trace per tree
// operation and return it after charging, so steady-state operations reuse
// the visit storage instead of growing a fresh slice each time. The pool is
// not safe for concurrent use from multiple goroutines; that matches the
// simulator's execution model (one environment runs one process at a time),
// and each engine owns its own pool.
type TracePool struct {
	free []*Trace
}

// Get returns a reset trace, reusing a returned one when available.
func (p *TracePool) Get() *Trace {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return &Trace{}
}

// Put returns a trace to the pool. The caller must not use it afterwards.
func (p *TracePool) Put(t *Trace) {
	t.Reset()
	p.free = append(p.free, t)
}

// Depth returns the number of nodes visited on the root-to-leaf path.
func (t *Trace) Depth() int { return len(t.Visits) }

type node struct {
	id   storage.PageID
	addr uint64
	leaf bool
	keys [][]byte
	vals [][]byte // leaf only; parallel to keys
	kids []*node  // inner only; len(kids) == len(keys)+1
	next *node    // leaf chain
}

// Tree is a B+Tree. The zero value is not usable; create trees with New.
type Tree struct {
	cfg    Config
	root   *node
	height int
	size   int
	nextID storage.PageID
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Order == 0 {
		cfg.Order = DefaultOrder
	}
	if cfg.Order < 4 {
		cfg.Order = 4
	}
	t := &Tree{cfg: cfg, nextID: 1}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *Tree) newNode(leaf bool) *node {
	var id storage.PageID
	if t.cfg.NextID != nil {
		id = t.cfg.NextID()
	} else {
		id = t.nextID
		t.nextID++
	}
	n := &node{id: id, leaf: leaf}
	if t.cfg.AddrOf != nil {
		n.addr = t.cfg.AddrOf(id, t.cfg.Order*32)
	} else {
		n.addr = uint64(id) * 8192
	}
	return n
}

// Size returns the number of keys stored.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Order returns the configured maximum keys per node.
func (t *Tree) Order() int { return t.cfg.Order }

// RootID returns the page id of the root node, for checkpoint catalogs.
func (t *Tree) RootID() storage.PageID { return t.root.id }

func (t *Tree) minKeys() int { return t.cfg.Order / 2 }

// searchIdx returns the number of keys in n that are <= key (the child
// index to descend into) and the comparisons a binary search performs.
func searchIdx(n *node, key []byte) (idx, cmps int) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		cmps++
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, cmps
}

// leafIdx returns the position of key in leaf n (found) or its insertion
// point (!found), plus comparisons.
func leafIdx(n *node, key []byte) (idx int, found bool, cmps int) {
	idx, cmps = searchIdx(n, key)
	// searchIdx counts keys <= key, so an exact match is at idx-1.
	if idx > 0 && bytes.Equal(n.keys[idx-1], key) {
		return idx - 1, true, cmps
	}
	return idx, false, cmps
}

func (t *Tree) visit(tr *Trace, n *node, cmps int) {
	if tr == nil {
		return
	}
	b := 16 // header
	if cmps > 0 {
		b += cmps * 24 // examined key slots
	}
	tr.Visits = append(tr.Visits, Visit{ID: n.id, Addr: n.addr, Cmps: cmps, Leaf: n.leaf, Bytes: b})
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte, tr *Trace) (val []byte, ok bool) {
	n := t.root
	for !n.leaf {
		idx, cmps := searchIdx(n, key)
		t.visit(tr, n, cmps)
		n = n.kids[idx]
	}
	idx, found, cmps := leafIdx(n, key)
	t.visit(tr, n, cmps)
	if !found {
		return nil, false
	}
	return n.vals[idx], true
}

// Put inserts or replaces key's value and returns the previous value, if
// any. The value slice is stored as-is (callers must not mutate it after).
func (t *Tree) Put(key, val []byte, tr *Trace) (prev []byte, existed bool) {
	prev, existed, splitKey, right := t.insert(t.root, key, val, tr)
	if right != nil {
		newRoot := t.newNode(false)
		newRoot.keys = append(newRoot.keys, splitKey)
		newRoot.kids = append(newRoot.kids, t.root, right)
		t.root = newRoot
		t.height++
		if tr != nil {
			tr.NewPages = append(tr.NewPages, newRoot.id)
		}
	}
	if !existed {
		t.size++
	}
	return prev, existed
}

// insert descends into n; on child split it returns the separator and new
// right sibling for the caller to install.
func (t *Tree) insert(n *node, key, val []byte, tr *Trace) (prev []byte, existed bool, splitKey []byte, right *node) {
	if n.leaf {
		idx, found, cmps := leafIdx(n, key)
		t.visit(tr, n, cmps)
		if found {
			prev = n.vals[idx]
			n.vals[idx] = val
			return prev, true, nil, nil
		}
		n.keys = insertAt(n.keys, idx, key)
		n.vals = insertAt(n.vals, idx, val)
		if len(n.keys) > t.cfg.Order {
			splitKey, right = t.splitLeaf(n, tr)
		}
		return nil, false, splitKey, right
	}
	idx, cmps := searchIdx(n, key)
	t.visit(tr, n, cmps)
	prev, existed, sk, r := t.insert(n.kids[idx], key, val, tr)
	if r != nil {
		n.keys = insertAt(n.keys, idx, sk)
		n.kids = insertAt(n.kids, idx+1, r)
		if len(n.keys) > t.cfg.Order {
			splitKey, right = t.splitInner(n, tr)
		}
	}
	return prev, existed, splitKey, right
}

func (t *Tree) splitLeaf(n *node, tr *Trace) ([]byte, *node) {
	mid := len(n.keys) / 2
	r := t.newNode(true)
	if tr != nil {
		tr.Splits++
		tr.NewPages = append(tr.NewPages, r.id)
	}
	r.keys = append(r.keys, n.keys[mid:]...)
	r.vals = append(r.vals, n.vals[mid:]...)
	n.keys = clip(n.keys[:mid])
	n.vals = clip(n.vals[:mid])
	r.next = n.next
	n.next = r
	return r.keys[0], r
}

func (t *Tree) splitInner(n *node, tr *Trace) ([]byte, *node) {
	mid := len(n.keys) / 2
	pivot := n.keys[mid]
	r := t.newNode(false)
	if tr != nil {
		tr.Splits++
		tr.NewPages = append(tr.NewPages, r.id)
	}
	r.keys = append(r.keys, n.keys[mid+1:]...)
	r.kids = append(r.kids, n.kids[mid+1:]...)
	n.keys = clip(n.keys[:mid])
	n.kids = clip(n.kids[:mid+1])
	return pivot, r
}

// Delete removes key and returns its value, if present.
func (t *Tree) Delete(key []byte, tr *Trace) (val []byte, ok bool) {
	val, ok = t.remove(t.root, key, tr)
	if ok {
		t.size--
	}
	// Collapse a root with a single child.
	for !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.kids[0]
		t.height--
	}
	return val, ok
}

// remove deletes key under n, rebalancing children that underflow.
func (t *Tree) remove(n *node, key []byte, tr *Trace) (val []byte, ok bool) {
	if n.leaf {
		idx, found, cmps := leafIdx(n, key)
		t.visit(tr, n, cmps)
		if !found {
			return nil, false
		}
		val = n.vals[idx]
		n.keys = removeAt(n.keys, idx)
		n.vals = removeAt(n.vals, idx)
		return val, true
	}
	idx, cmps := searchIdx(n, key)
	t.visit(tr, n, cmps)
	val, ok = t.remove(n.kids[idx], key, tr)
	if ok && len(n.kids[idx].keys) < t.minKeys() {
		t.rebalance(n, idx, tr)
	}
	return val, ok
}

// rebalance fixes underflow of n.kids[idx] by borrowing from a sibling or
// merging with one.
func (t *Tree) rebalance(n *node, idx int, tr *Trace) {
	child := n.kids[idx]
	// Try borrowing from the left sibling.
	if idx > 0 {
		left := n.kids[idx-1]
		if len(left.keys) > t.minKeys() {
			if tr != nil {
				tr.Borrows++
			}
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = clip(left.keys[:last])
				left.vals = clip(left.vals[:last])
				n.keys[idx-1] = child.keys[0]
			} else {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, n.keys[idx-1])
				n.keys[idx-1] = left.keys[last]
				child.kids = insertAt(child.kids, 0, left.kids[last+1])
				left.keys = clip(left.keys[:last])
				left.kids = clip(left.kids[:last+1])
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if idx < len(n.kids)-1 {
		rightSib := n.kids[idx+1]
		if len(rightSib.keys) > t.minKeys() {
			if tr != nil {
				tr.Borrows++
			}
			if child.leaf {
				child.keys = append(child.keys, rightSib.keys[0])
				child.vals = append(child.vals, rightSib.vals[0])
				rightSib.keys = removeAt(rightSib.keys, 0)
				rightSib.vals = removeAt(rightSib.vals, 0)
				n.keys[idx] = rightSib.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[idx])
				n.keys[idx] = rightSib.keys[0]
				child.kids = append(child.kids, rightSib.kids[0])
				rightSib.keys = removeAt(rightSib.keys, 0)
				rightSib.kids = removeAt(rightSib.kids, 0)
			}
			return
		}
	}
	// Merge with a sibling.
	if tr != nil {
		tr.Merges++
	}
	if idx > 0 {
		t.merge(n, idx-1)
	} else {
		t.merge(n, idx)
	}
}

// merge folds n.kids[i+1] into n.kids[i] and drops separator n.keys[i].
func (t *Tree) merge(n *node, i int) {
	left, right := n.kids[i], n.kids[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	n.keys = removeAt(n.keys, i)
	n.kids = removeAt(n.kids, i+1)
}

// Scan calls fn for each key in [from, to) in ascending order; a nil to
// means no upper bound, a nil from starts at the smallest key. fn returning
// false stops the scan. The trace records the descent to the first leaf and
// each additional leaf visited.
func (t *Tree) Scan(from, to []byte, tr *Trace, fn func(key, val []byte) bool) {
	n := t.root
	for !n.leaf {
		idx, cmps := searchIdx(n, from)
		t.visit(tr, n, cmps)
		n = n.kids[idx]
	}
	idx := 0
	if from != nil {
		var cmps int
		idx, _, cmps = leafIdx(n, from)
		t.visit(tr, n, cmps)
	} else {
		t.visit(tr, n, 0)
	}
	for n != nil {
		for ; idx < len(n.keys); idx++ {
			if to != nil && bytes.Compare(n.keys[idx], to) >= 0 {
				return
			}
			if !fn(n.keys[idx], n.vals[idx]) {
				return
			}
		}
		n = n.next
		idx = 0
		if n != nil {
			t.visit(tr, n, 0)
		}
	}
}

// Min returns the smallest key and its value.
func (t *Tree) Min(tr *Trace) (key, val []byte, ok bool) {
	n := t.root
	for !n.leaf {
		t.visit(tr, n, 0)
		n = n.kids[0]
	}
	t.visit(tr, n, 0)
	if len(n.keys) == 0 {
		return nil, nil, false
	}
	return n.keys[0], n.vals[0], true
}

// Pages calls fn for every node in the tree (root first), reporting its
// page id and whether it is a leaf. Engines use it to prewarm page caches
// after population.
func (t *Tree) Pages(fn func(id storage.PageID, leaf bool)) {
	var walk func(n *node)
	walk = func(n *node) {
		fn(n.id, n.leaf)
		if !n.leaf {
			for _, kid := range n.kids {
				walk(kid)
			}
		}
	}
	walk(t.root)
}

// Validate checks every structural invariant and returns the first
// violation: key ordering, node occupancy, separator bounds, uniform leaf
// depth, leaf-chain consistency and size agreement. It is the oracle for
// the property-based tests.
func (t *Tree) Validate() error {
	count := 0
	var leaves []*node
	var walk func(n *node, depth int, lo, hi []byte) error
	walk = func(n *node, depth int, lo, hi []byte) error {
		if n != t.root && len(n.keys) < t.minKeys() {
			return fmt.Errorf("node %d underflow: %d keys < min %d", n.id, len(n.keys), t.minKeys())
		}
		if len(n.keys) > t.cfg.Order {
			return fmt.Errorf("node %d overflow: %d keys > order %d", n.id, len(n.keys), t.cfg.Order)
		}
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("node %d keys out of order at %d", n.id, i)
			}
		}
		for _, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("node %d key below separator bound", n.id)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("node %d key above separator bound", n.id)
			}
		}
		if n.leaf {
			if depth != t.height {
				return fmt.Errorf("leaf %d at depth %d, height %d", n.id, depth, t.height)
			}
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("leaf %d has %d vals for %d keys", n.id, len(n.vals), len(n.keys))
			}
			count += len(n.keys)
			leaves = append(leaves, n)
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("inner %d has %d kids for %d keys", n.id, len(n.kids), len(n.keys))
		}
		for i, kid := range n.kids {
			klo, khi := lo, hi
			if i > 0 {
				klo = n.keys[i-1]
			}
			if i < len(n.keys) {
				khi = n.keys[i]
			}
			if err := walk(kid, depth+1, klo, khi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d keys found", t.size, count)
	}
	// Leaf chain must enumerate exactly the in-order leaves.
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for i, leaf := range leaves {
		if n != leaf {
			return fmt.Errorf("leaf chain diverges at leaf %d", i)
		}
		n = n.next
	}
	if n != nil {
		return fmt.Errorf("leaf chain has trailing nodes")
	}
	return nil
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	s[len(s)-1] = zero
	return s[:len(s)-1]
}

// clip re-slices with zeroed tail so dropped references can be collected.
func clip[T any](s []T) []T {
	return s[: len(s) : len(s)+0]
}
