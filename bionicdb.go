// Package bionicdb is a simulation-backed reproduction of "The bionic DBMS
// is coming, but what will it look like?" (Johnson & Pandis, CIDR 2013): a
// complete OLTP engine family — conventional shared-everything 2PL,
// data-oriented execution (DORA), and the paper's "bionic" hybrid that
// offloads B+Tree probes, log insertion, queue management and the overlay
// database to modelled FPGA hardware — running on a deterministic
// discrete-event model of the paper's CPU+FPGA platform, with TATP, TPC-C
// and YCSB workloads, joules-per-transaction as a first-class metric, and a
// parallel experiment-sweep subsystem for evaluating design grids.
//
// The package re-exports the supported API surface; see the examples
// directory for usage and DESIGN.md for the system inventory.
package bionicdb

import (
	"fmt"

	"bionicdb/internal/bench"
	"bionicdb/internal/core"
	"bionicdb/internal/darksilicon"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/workload/htap"
	"bionicdb/internal/workload/tatp"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"
)

// Simulated time.
type (
	// Duration is a span of simulated time in picoseconds.
	Duration = sim.Duration
	// Time is an absolute simulated timestamp.
	Time = sim.Time
)

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Engine API.
type (
	// Engine is a complete transaction-processing system under one cost
	// model (conventional, DORA, or bionic).
	Engine = core.Engine
	// Tx is the coordinator handle a transaction program drives.
	Tx = core.Tx
	// Action is one partition-confined unit of a transaction.
	Action = core.Action
	// AccessCtx is the data interface action bodies program against.
	AccessCtx = core.AccessCtx
	// TxnLogic is a transaction program.
	TxnLogic = core.TxnLogic
	// Terminal is one closed-loop client.
	Terminal = core.Terminal
	// TableDef declares one index-organized table.
	TableDef = core.TableDef
	// PartitionScheme routes keys to DORA partitions and entities.
	PartitionScheme = core.PartitionScheme
	// Offloads selects the bionic engine's hardware units.
	Offloads = core.Offloads
	// Workload is a benchmark: schema, population, mix.
	Workload = core.Workload
	// RunConfig shapes one measurement.
	RunConfig = core.RunConfig
	// Result is one measurement's output: throughput, joules/txn,
	// latency percentiles and the Figure 3 breakdown.
	Result = core.Result
	// PlatformConfig holds every machine-model calibration constant.
	PlatformConfig = platform.Config
	// EnergyReport is a measurement window's joules by hardware domain.
	EnergyReport = platform.EnergyReport
	// Topology is how a multi-socket machine's sockets are wired (ring,
	// full crossbar, or 2D mesh); it sets hops and with them the latency
	// and energy of every cross-socket message.
	Topology = platform.Topology
)

// Interconnect topologies for PlatformConfig.ICTopology.
const (
	TopoRing = platform.TopoRing
	TopoFull = platform.TopoFull
	TopoMesh = platform.TopoMesh
)

// Env is the discrete-event simulation environment engines run in.
type Env = sim.Env

// Proc is a simulated process (a terminal, a daemon, a driver).
type Proc = sim.Proc

// Rand is the deterministic random generator simulations must use.
type Rand = sim.Rand

// NewEnv creates an empty simulation environment.
func NewEnv() *Env { return sim.NewEnv() }

// NewRand creates a seeded deterministic random generator.
func NewRand(seed uint64) *Rand { return sim.NewRand(seed) }

// BreakdownLines renders a Figure 3 component breakdown as aligned text
// lines for quick printing.
func BreakdownLines(bd *stats.Breakdown) []string {
	total := bd.Total()
	out := make([]string, 0, int(stats.NumComponents))
	for _, c := range stats.Components() {
		share := 0.0
		if total > 0 {
			share = float64(bd.Get(c)) / float64(total) * 100
		}
		out = append(out, fmt.Sprintf("%-11s %10v  %5.1f%%", c.String(), bd.Get(c), share))
	}
	return out
}

// HC2 returns the default platform configuration: the Convey HC-2-class
// machine of the paper's Figure 2.
func HC2() *PlatformConfig { return platform.HC2() }

// HC2Scaled returns the HC2 machine scaled out to n sockets joined by the
// default ring interconnect. One socket is exactly HC2(); more sockets add
// cores, per-socket LLCs, and cross-socket message costs (the DORA engines
// shard their partitions across sockets and commit cross-shard
// transactions through an RVP decision round).
func HC2Scaled(sockets int) *PlatformConfig { return platform.HC2Scaled(sockets) }

// HC2ScaledSharded is HC2Scaled with per-socket log devices: every socket
// gets its own log stream and SSD (the sharded durability subsystem), so
// the DORA engines keep one WAL shard per socket, commit cross-shard
// transactions at the vector durable point, and recover by replaying all
// shards in parallel. On one socket it is exactly HC2().
func HC2ScaledSharded(sockets int) *PlatformConfig { return platform.HC2ScaledSharded(sockets) }

// NewConventional builds the shared-everything 2PL baseline engine.
func NewConventional(env *Env, cfg *PlatformConfig, tables []TableDef) Engine {
	return core.NewConventional(env, cfg, tables)
}

// NewDORA builds the software data-oriented engine (the paper's Figure 3
// baseline).
func NewDORA(env *Env, cfg *PlatformConfig, tables []TableDef, scheme PartitionScheme) Engine {
	return core.NewDORA(env, cfg, tables, scheme)
}

// NewBionic builds the bionic engine: DORA plus the selected hardware
// offloads, with an in-flight window per partition (0 uses the default).
func NewBionic(env *Env, cfg *PlatformConfig, tables []TableDef, scheme PartitionScheme, off Offloads, window int) Engine {
	return core.NewBionic(env, cfg, tables, scheme, off, window)
}

// AllOffloads enables every hardware unit — the full Figure 4 system.
func AllOffloads() Offloads { return core.AllOffloads() }

// HashScheme returns a generic hash partitioning scheme.
func HashScheme(partitions int) PartitionScheme { return core.HashScheme(partitions) }

// Run executes one full measurement: build, populate, warm, measure, drain.
func Run(cfg RunConfig, wl Workload, mk func(env *Env) Engine) (*Result, error) {
	return core.Run(cfg, wl, mk)
}

// DefaultRunConfig returns the figure generators' measurement shape.
func DefaultRunConfig() RunConfig { return core.DefaultRunConfig() }

// Workloads.

// TATPConfig scales the TATP benchmark.
type TATPConfig = tatp.Config

// NewTATP creates the TATP workload (Subscribers <= 0 uses the default
// 100k).
func NewTATP(cfg TATPConfig) *tatp.Workload {
	if cfg.Subscribers <= 0 {
		cfg = tatp.DefaultConfig()
	}
	return tatp.New(cfg)
}

// TPCCConfig scales the TPC-C benchmark.
type TPCCConfig = tpcc.Config

// NewTPCC creates the TPC-C workload (zero config uses the default 4
// warehouses).
func NewTPCC(cfg TPCCConfig) *tpcc.Workload {
	if cfg.Warehouses <= 0 {
		cfg = tpcc.DefaultConfig()
	}
	return tpcc.New(cfg)
}

// YCSBConfig scales and shapes the YCSB workload.
type YCSBConfig = ycsb.Config

// NewYCSB creates the YCSB workload (zero fields use the Workload A
// defaults: 100k records, 50/50 read/update, zipfian 0.99). Preset mixes
// are available as YCSBWorkloadA..F configs.
func NewYCSB(cfg YCSBConfig) *ycsb.Workload { return ycsb.New(cfg) }

// YCSB preset mixes (Cooper et al., SoCC 2010).
var (
	YCSBWorkloadA = ycsb.WorkloadA // 50% read / 50% update
	YCSBWorkloadB = ycsb.WorkloadB // 95% read / 5% update
	YCSBWorkloadC = ycsb.WorkloadC // 100% read
	YCSBWorkloadE = ycsb.WorkloadE // 95% scan / 5% update
	YCSBWorkloadF = ycsb.WorkloadF // 50% read / 50% read-modify-write
)

// Experiment sweeps (the internal/bench subsystem).
type (
	// SweepGrid declares a sweep: the cross product of engines, workloads,
	// terminal counts and seeds.
	SweepGrid = bench.Grid
	// SweepPoint is one fully-specified measurement in a grid.
	SweepPoint = bench.Point
	// SweepResult pairs a point with its measurement and wall-clock cost.
	SweepResult = bench.Result
	// SweepOptions shapes sweep execution (worker-pool size, progress).
	SweepOptions = bench.Options
	// EngineSpec names an engine constructor in a sweep grid.
	EngineSpec = bench.EngineSpec
	// WorkloadSpec names a workload constructor in a sweep grid.
	WorkloadSpec = bench.WorkloadSpec
)

// Sweep fans the points out across a worker pool (SweepOptions.Parallel;
// 0 = GOMAXPROCS) and returns results in grid order. Every point runs in
// its own simulation environment, so parallel results are bit-identical to
// a serial sweep of the same grid.
func Sweep(points []SweepPoint, opt SweepOptions) []SweepResult {
	return bench.Run(points, opt)
}

// ConventionalSpec is the sweep-grid spec for the 2PL baseline engine.
func ConventionalSpec() EngineSpec { return bench.Conventional() }

// DORASpec is the sweep-grid spec for the software data-oriented engine.
func DORASpec(partitions int) EngineSpec { return bench.DORA(partitions) }

// BionicSpec is the sweep-grid spec for the bionic engine with the given
// offload subset and in-flight window.
func BionicSpec(partitions int, off Offloads, window int) EngineSpec {
	return bench.Bionic(partitions, off, window)
}

// ConventionalSpecOn is ConventionalSpec on a specific platform config
// (pass HC2Scaled(n) for a multi-socket machine).
func ConventionalSpecOn(cfg *PlatformConfig) EngineSpec { return bench.ConventionalOn(cfg) }

// DORASpecOn is DORASpec on a specific platform config.
func DORASpecOn(cfg *PlatformConfig, partitions int) EngineSpec {
	return bench.DORAOn(cfg, partitions)
}

// BionicSpecOn is BionicSpec on a specific platform config.
func BionicSpecOn(cfg *PlatformConfig, partitions int, off Offloads, window int) EngineSpec {
	return bench.BionicOn(cfg, partitions, off, window)
}

// Multi-socket scaling sweeps (the fig-scaling experiment).
type (
	// ScalingSweep declares a weak-scaling sweep: the engine family on
	// every workload at every socket count, with load and partitions
	// scaling with the machine.
	ScalingSweep = bench.ScalingSpec
	// ScalingEngine builds one engine spec per scaled platform config.
	ScalingEngine = bench.ScalingEngine
)

// Crash-recovery sweeps (the fig-recovery experiment).
type (
	// RecoverySweep declares the crash/recovery experiment: run a workload
	// on a (sharded-log) machine, crash it cold at the end of the window,
	// and measure the time and joules to replay the log shards — serially
	// and one process per shard — at each socket count.
	RecoverySweep = bench.RecoverySpec
	// RecoveryResult is one crash/recovery measurement.
	RecoveryResult = bench.RecoveryResult
)

// RecoveryTable renders recovery results as the fig-recovery table.
func RecoveryTable(results []RecoveryResult) *stats.Table { return bench.RecoveryTable(results) }

// HTAP sweeps (the fig-htap experiment).
type (
	// HTAPSweep declares the hybrid sweep: mixed transactional+analytical
	// workloads on the conventional and bionic machines at every socket
	// count, with the analytical half attached to each run.
	HTAPSweep = bench.HTAPSpec
	// HTAPWorkload is a hybrid workload: an OLTP mix plus analytical
	// scans over columnar projections of the row store.
	HTAPWorkload = htap.Mixed
	// HTAPParams tunes the analytical half (scan clients per socket,
	// host refresh cadence, scanner configuration).
	HTAPParams = htap.Params
)

// DefaultHTAPParams returns the calibrated analytical parameters.
func DefaultHTAPParams() HTAPParams { return htap.DefaultParams() }

// NewHTAPYCSB creates the YCSB-backed hybrid workload: the OLTP mix plus
// key-range scans over a columnar projection of the usertable.
func NewHTAPYCSB(cfg YCSBConfig, p HTAPParams) *HTAPWorkload { return htap.NewYCSB(cfg, p) }

// NewHTAPTPCC creates the TPC-C-backed hybrid workload (CH-benCHmark
// style): the OLTP mix plus low-stock and revenue scans over columnar
// projections of stock and order-line.
func NewHTAPTPCC(cfg TPCCConfig, p HTAPParams) *HTAPWorkload { return htap.NewTPCC(cfg, p) }

// HTAPEngines returns the fig-htap engine axis: conventional and the
// fully-offloaded bionic engine.
func HTAPEngines() []ScalingEngine { return bench.HTAPEngines() }

// HTAPTable renders HTAP results as the fig-htap table: transactional
// throughput and energy next to scan bandwidth and freshness.
func HTAPTable(results []SweepResult) *stats.Table { return bench.HTAPTable(results) }

// DefaultScalingEngines returns the standard scaling engine axis:
// conventional, DORA, and the fully-offloaded bionic engine.
func DefaultScalingEngines() []ScalingEngine { return bench.DefaultScalingEngines() }

// DefaultScalingSockets returns the 1 -> 16 socket axis.
func DefaultScalingSockets() []int { return bench.DefaultScalingSockets() }

// ScalingTable renders scaling results with per-curve speedup columns.
func ScalingTable(results []SweepResult) *stats.Table { return bench.ScalingTable(results) }

// SweepTable renders sweep results as an aligned table.
func SweepTable(results []SweepResult) *stats.Table { return bench.Table(results) }

// SweepJSON marshals sweep results as the bionicbench JSON document.
func SweepJSON(results []SweepResult) ([]byte, error) { return bench.JSON(results) }

// WriteSweepJSON writes sweep results as JSON to path.
func WriteSweepJSON(path string, results []SweepResult) error {
	return bench.WriteJSONFile(path, results)
}

// Dark silicon analytics (the paper's §2 / Figure 1).

// AmdahlSpeedup is Amdahl's law for the given serial fraction and cores.
func AmdahlSpeedup(serialFrac float64, cores int) float64 {
	return darksilicon.Speedup(serialFrac, cores)
}

// ChipUtilization is the utilized fraction of an n-core chip.
func ChipUtilization(serialFrac float64, cores int) float64 {
	return darksilicon.Utilization(serialFrac, cores)
}

// EnergyPerOp returns joules/op for a component at a power and throughput.
func EnergyPerOp(powerW, opsPerSec float64) float64 {
	return darksilicon.EnergyPerOp(powerW, opsPerSec)
}
