// Benchmarks regenerating every figure and quantified claim of the paper,
// one bench per artifact (see DESIGN.md's experiment index). Simulated
// quantities — throughput, joules/txn, latency — are attached to each bench
// via ReportMetric, so `go test -bench=. -benchmem` doubles as the
// experiment harness. cmd/bionicbench prints the same experiments as
// tables.
package bionicdb_test

import (
	"fmt"
	"testing"

	"bionicdb/internal/bench"
	"bionicdb/internal/btree"
	"bionicdb/internal/core"
	"bionicdb/internal/darksilicon"
	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/workload/tatp"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"
)

// benchRunConfig keeps simulation windows small enough for bench iterations.
func benchRunConfig() core.RunConfig {
	return core.RunConfig{
		Terminals: 64,
		Warmup:    5 * sim.Millisecond,
		Measure:   15 * sim.Millisecond,
		Seed:      42,
	}
}

func benchTATP() *tatp.Workload { return tatp.New(tatp.Config{Subscribers: 20000}) }

func benchTPCC() *tpcc.Workload {
	return tpcc.New(tpcc.Config{
		Warehouses: 2, Districts: 10, CustomersPerDistrict: 600,
		Items: 20000, InitialOrdersPerDistrict: 50,
	})
}

func reportRun(b *testing.B, res *core.Result) {
	b.ReportMetric(res.TPS, "tps")
	b.ReportMetric(res.JoulesPerTxn*1e6, "uJ/txn")
	b.ReportMetric(res.Latency.Percentile(95).Microseconds(), "p95-us")
}

// BenchmarkFig1DarkSilicon regenerates the Figure 1 utilization surfaces.
func BenchmarkFig1DarkSilicon(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range darksilicon.Figure1Panels() {
			for n := 1; n <= p.Cores; n *= 2 {
				for _, s := range darksilicon.SerialFractions() {
					sink += darksilicon.PanelUtilization(darksilicon.Panel{Cores: n, PowerCap: p.PowerCap}, s)
				}
			}
		}
	}
	// Attach the paper's two headline points.
	b.ReportMetric(darksilicon.Utilization(0.001, 64)*100, "util64@0.1%")
	b.ReportMetric(darksilicon.Utilization(0.001, 1024)*100, "util1024@0.1%")
	_ = sink
}

// BenchmarkFig2Platform characterizes every Figure 2 component.
func BenchmarkFig2Platform(b *testing.B) {
	var rows []platform.CharRow
	for i := 0; i < b.N; i++ {
		rows = platform.Characterize(platform.HC2())
	}
	for _, r := range rows {
		if r.Name == "sg-dram" {
			b.ReportMetric(r.MeasGBps, "sgdram-GBps")
			b.ReportMetric(r.MeasLat.Nanoseconds(), "sgdram-ns")
		}
	}
}

// BenchmarkFig3Breakdown measures the DORA software breakdown for the two
// Figure 3 workloads and reports the headline shares.
func BenchmarkFig3Breakdown(b *testing.B) {
	cases := []struct {
		name string
		wl   core.Workload
	}{
		{"TATPUpdSubData", benchTATP().UpdateSubDataOnly()},
		{"TPCCStockLevel", benchTPCC().StockLevelOnly()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(benchRunConfig(), c.wl, func(env *sim.Env) core.Engine {
					return core.NewDORA(env, platform.HC2(), c.wl.Tables(), c.wl.Scheme(8))
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, comp := range []struct {
				name string
				c    stats.Component
			}{
				{"btree%", stats.CompBtree}, {"log%", stats.CompLog},
				{"bpool%", stats.CompBpool}, {"dora%", stats.CompDora},
			} {
				b.ReportMetric(res.BD.Fraction(comp.c)*100, comp.name)
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkFig4Engines runs the full engine comparison on both mixes.
func BenchmarkFig4Engines(b *testing.B) {
	type factory struct {
		name string
		mk   func(wl core.Workload) func(env *sim.Env) core.Engine
	}
	factories := []factory{
		{"conventional", func(wl core.Workload) func(env *sim.Env) core.Engine {
			return func(env *sim.Env) core.Engine {
				return core.NewConventional(env, platform.HC2(), wl.Tables())
			}
		}},
		{"dora", func(wl core.Workload) func(env *sim.Env) core.Engine {
			return func(env *sim.Env) core.Engine {
				return core.NewDORA(env, platform.HC2(), wl.Tables(), wl.Scheme(8))
			}
		}},
		{"bionic", func(wl core.Workload) func(env *sim.Env) core.Engine {
			return func(env *sim.Env) core.Engine {
				return core.NewBionic(env, platform.HC2(), wl.Tables(), wl.Scheme(8), core.AllOffloads(), 8)
			}
		}},
	}
	workloads := []core.Workload{benchTATP(), benchTPCC()}
	for _, wl := range workloads {
		for _, f := range factories {
			wl, f := wl, f
			cfg := benchRunConfig()
			if wl.Name() == "tpcc" {
				cfg.Terminals = 40 // 2x the spec's 10 per warehouse at W=2
			}
			b.Run(fmt.Sprintf("%s/%s", wl.Name(), f.name), func(b *testing.B) {
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.Run(cfg, wl, f.mk(wl))
					if err != nil {
						b.Fatal(err)
					}
				}
				reportRun(b, res)
			})
		}
	}
}

// BenchmarkC1ProbeSaturation sweeps the probe engine's outstanding-request
// window — §5.3's "saturate using only perhaps a dozen outstanding
// requests".
func BenchmarkC1ProbeSaturation(b *testing.B) {
	for _, window := range []int{1, 4, 12, 24} {
		window := window
		b.Run(fmt.Sprintf("outstanding-%d", window), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				env := sim.NewEnv()
				pl := platform.New(env, platform.HC2())
				eng := treeprobe.New(pl, treeprobe.DefaultConfig())
				tree := btree.New(btree.Config{
					AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocFPGA(8 << 10) },
				})
				for k := 0; k < 50000; k++ {
					tree.Put(storage.Uint64Key(uint64(k)), []byte("row"), nil)
				}
				r := sim.NewRand(1)
				done := 0
				for w := 0; w < window; w++ {
					keys := make([][]byte, 300)
					for j := range keys {
						keys[j] = storage.Uint64Key(uint64(r.Intn(50000)))
					}
					env.Spawn("stream", func(p *sim.Proc) {
						for _, k := range keys {
							eng.ProbeLocal(p, tree, k)
							done++
						}
					})
				}
				if err := env.Run(); err != nil {
					b.Fatal(err)
				}
				tput = sim.PerSecond(int64(done), sim.Duration(env.Now()))
			}
			b.ReportMetric(tput/1e6, "Mprobes/s")
		})
	}
}

// BenchmarkC2Ablation sweeps the offload lattice on the TATP mix.
func BenchmarkC2Ablation(b *testing.B) {
	wl := benchTATP()
	for _, off := range []core.Offloads{
		{},
		{Queue: true},
		{Log: true},
		{Queue: true, Log: true},
		{Tree: true, Overlay: true},
		core.AllOffloads(),
	} {
		off := off
		b.Run(off.String(), func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(benchRunConfig(), wl, func(env *sim.Env) core.Engine {
					return core.NewBionic(env, platform.HC2(), wl.Tables(), wl.Scheme(8), off, 8)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, res)
		})
	}
}

// BenchmarkYCSBSweep fans the YCSB Workload A grid (three engines) out
// through the internal/bench pool and reports the bionic headline numbers —
// the workload-diversity experiment behind the sweep subsystem.
func BenchmarkYCSBSweep(b *testing.B) {
	grid := bench.Grid{
		Engines: []bench.EngineSpec{
			bench.Conventional(),
			bench.DORA(8),
			bench.Bionic(8, core.AllOffloads(), 8),
		},
		Workloads: []bench.WorkloadSpec{{Name: "ycsb", Make: func() core.Workload {
			cfg := ycsb.WorkloadA()
			cfg.Records = 20000
			return ycsb.New(cfg)
		}}},
		Terminals: []int{64},
		Seeds:     []uint64{42},
		Warmup:    5 * sim.Millisecond,
		Measure:   15 * sim.Millisecond,
	}
	var results []bench.Result
	for i := 0; i < b.N; i++ {
		results = grid.Run(bench.Options{})
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	reportRun(b, results[len(results)-1].Res) // bionic row
	b.ReportMetric(results[len(results)-1].Res.TPS/results[0].Res.TPS, "tps-vs-conv")
}

// BenchmarkC4LatencyShape contrasts DORA and bionic latency distributions:
// the paper predicts throughput and energy improve even when individual
// requests take as long or longer (§3).
func BenchmarkC4LatencyShape(b *testing.B) {
	wl := benchTATP()
	run := func(mk func(env *sim.Env) core.Engine) *core.Result {
		res, err := core.Run(benchRunConfig(), wl, mk)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var dora, bionic *core.Result
	for i := 0; i < b.N; i++ {
		dora = run(func(env *sim.Env) core.Engine {
			return core.NewDORA(env, platform.HC2(), wl.Tables(), wl.Scheme(8))
		})
		bionic = run(func(env *sim.Env) core.Engine {
			return core.NewBionic(env, platform.HC2(), wl.Tables(), wl.Scheme(8), core.AllOffloads(), 8)
		})
	}
	b.ReportMetric(dora.Latency.Percentile(50).Microseconds(), "dora-p50-us")
	b.ReportMetric(bionic.Latency.Percentile(50).Microseconds(), "bionic-p50-us")
	b.ReportMetric(dora.JoulesPerTxn/bionic.JoulesPerTxn, "energy-gain")
	b.ReportMetric(bionic.TPS/dora.TPS, "tps-gain")
}

// BenchmarkFigScaling runs the multi-socket weak-scaling experiment at its
// 1- and 4-socket corners on the TATP mix and reports the sharded engine's
// speedup (fig-scaling's headline quantity; `bionicbench -fig-scaling`
// prints the full 1 -> 16 socket table).
func BenchmarkFigScaling(b *testing.B) {
	spec := bench.ScalingSpec{
		Sockets: []int{1, 4},
		Workloads: []bench.WorkloadSpec{
			{Name: "tatp", Make: func() core.Workload { return benchTATP() }},
		},
		Engines:            bench.DefaultScalingEngines()[1:], // dora + bionic
		TerminalsPerSocket: 16,
		Warmup:             5 * sim.Millisecond,
		Measure:            15 * sim.Millisecond,
	}
	var results []bench.Result
	for i := 0; i < b.N; i++ {
		results = spec.Run(bench.Options{})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	// Grid order: (1,dora) (1,bionic) (4,dora) (4,bionic).
	reportRun(b, results[2].Res) // 4-socket dora row
	b.ReportMetric(results[2].Res.TPS/results[0].Res.TPS, "dora-speedup-4s")
	b.ReportMetric(results[3].Res.TPS/results[1].Res.TPS, "bionic-speedup-4s")
}
