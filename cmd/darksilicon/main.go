// Command darksilicon prints the paper's Figure 1 dark-silicon model for
// custom chip parameters:
//
//	darksilicon -cores 1024 -cap 0.8 -serial 0.10,0.01,0.001
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bionicdb/internal/darksilicon"
	"bionicdb/internal/stats"
)

func main() {
	cores := flag.Int("cores", 1024, "cores on the chip")
	cap := flag.Float64("cap", 0.8, "fraction of the chip inside the power envelope")
	serial := flag.String("serial", "0.10,0.01,0.001,0.0001", "comma-separated serial fractions")
	flag.Parse()

	var fracs []float64
	for _, s := range strings.Split(*serial, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || f < 0 || f > 1 {
			fmt.Fprintf(os.Stderr, "bad serial fraction %q\n", s)
			os.Exit(2)
		}
		fracs = append(fracs, f)
	}

	headers := []string{"cores"}
	for _, f := range fracs {
		headers = append(headers, ">"+darksilicon.FormatPct(f)+" serial")
	}
	t := stats.NewTable(headers...)
	for n := 1; n <= *cores; n *= 2 {
		row := []any{fmt.Sprintf("%d", n)}
		for _, f := range fracs {
			p := darksilicon.Panel{Cores: n, PowerCap: *cap}
			row = append(row, darksilicon.FormatPct(darksilicon.PanelUtilization(p, f)))
		}
		t.Row(row...)
	}
	fmt.Print(t.String())

	fmt.Printf("\nserial fraction needed for 90%% utilization: %s\n",
		darksilicon.FormatPct(darksilicon.RequiredSerialFraction(0.9, *cores)))
}
