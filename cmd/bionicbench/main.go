// Command bionicbench regenerates every figure of the paper and the
// auxiliary claim experiments from the simulated system:
//
//	bionicbench -fig 1          Figure 1: dark-silicon utilization curves
//	bionicbench -fig 2          Figure 2: platform latency/bandwidth check
//	bionicbench -fig 3          Figure 3: DORA time breakdown (TATP
//	                            UpdateSubscriberData, TPC-C StockLevel)
//	bionicbench -fig 4          Figure 4: conventional vs DORA vs bionic
//	bionicbench -ablation       C2: offload lattice on the TATP mix
//	bionicbench -saturation     C1: probe-engine outstanding-request sweep
//	bionicbench -sweep          engine x workload (TATP, TPC-C, YCSB) grid
//	bionicbench -fig-scaling    multi-socket weak scaling, 1 -> 16 sockets
//	bionicbench -fig-htap       hybrid sweep: txn throughput vs scan
//	                            bandwidth vs energy, conventional vs bionic
//	bionicbench -fig-failover   replication sweep: steady-state commit tax
//	                            per mode (async/sync/quorum), then a faulted
//	                            primary kill and the replica's measured
//	                            failover
//	bionicbench -fig-anatomy    per-transaction latency anatomy: p50/p99 per
//	                            phase (queue/lock/exec/cross-shard/
//	                            durability/replication) per engine at
//	                            1/4/16 sockets
//
// The flight recorder rides along with any run-backed experiment:
// -trace-out FILE writes each run's span trace as Chrome trace_event JSON
// (open in chrome://tracing or Perfetto; one lane per socket, cross-socket
// dispatches as flow arrows) and -metrics-out FILE writes the per-socket
// telemetry time series (CSV, or JSON when the path ends in .json). Both
// are strictly out of band: simulated results and digests are bit-identical
// with them on or off.
//
// Every measurement executes through the internal/bench sweep subsystem:
// runs fan out across -parallel workers (default GOMAXPROCS), each in its
// own simulation environment, so parallel results are bit-identical to
// serial ones. -quick shrinks scales for a fast smoke run; -csv emits CSV
// instead of aligned tables; -json FILE additionally writes every
// core.Run-backed measurement of the invocation as structured JSON.
// -sockets N runs the figure/sweep experiments on an N-socket machine
// (and caps the -fig-scaling axis at N); the default 1 is the paper's
// single-socket platform. -replication async|sync|quorum ships the log to
// -replicas replica machines on every run-backed experiment, paying each
// mode's commit-wait tax; the default off builds no replication machinery.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bionicdb/internal/bench"
	"bionicdb/internal/core"
	"bionicdb/internal/darksilicon"
	"bionicdb/internal/hw/treeprobe"
	"bionicdb/internal/obs"
	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
	"bionicdb/internal/storage"
	"bionicdb/internal/workload/htap"
	"bionicdb/internal/workload/tatp"
	"bionicdb/internal/workload/tpcc"
	"bionicdb/internal/workload/ycsb"

	"bionicdb/internal/btree"
)

var (
	figFlag     = flag.Int("fig", 0, "regenerate figure 1..4")
	ablation    = flag.Bool("ablation", false, "run the C2 offload ablation")
	saturation  = flag.Bool("saturation", false, "run the C1 probe saturation sweep")
	latencies   = flag.Bool("latencies", false, "print the Section 3 latency taxonomy")
	sweepFlag   = flag.Bool("sweep", false, "run the engine x workload sweep grid")
	figScaling  = flag.Bool("fig-scaling", false, "run the multi-socket scaling sweep (throughput + joules/txn vs sockets)")
	figRecovery = flag.Bool("fig-recovery", false, "run the crash-recovery sweep (replay time + joules vs sockets)")
	figHTAP     = flag.Bool("fig-htap", false, "run the HTAP sweep (txn throughput + scan bandwidth + freshness vs sockets, conventional vs bionic)")
	figFailover = flag.Bool("fig-failover", false, "run the failover sweep (replication tax per mode, then a faulted primary kill and the replica's measured time-to-serving)")
	figAnatomy  = flag.Bool("fig-anatomy", false, "run the latency-anatomy sweep (per-phase p50/p99 per engine and workload at 1/4/16 sockets)")
	traceOut    = flag.String("trace-out", "", "write each run's span trace as Chrome trace_event JSON to this file (index-suffixed when the invocation runs multiple points)")
	metricsOut  = flag.String("metrics-out", "", "write each run's telemetry time series to this file (.json = JSON, else CSV; index-suffixed when multiple points)")
	shardedLog  = flag.Bool("sharded-log", false, "per-socket log shards: give every socket its own log stream and SSD (multi-socket only); -fig-scaling additionally runs the sharded axis next to the central baseline")
	recJSON     = flag.String("recovery-json", "", "write -fig-recovery results as JSON to this file")
	failJSON    = flag.String("failover-json", "", "write -fig-failover results as JSON to this file")
	replication = flag.String("replication", "off", "log-shipping replication mode for the run-backed experiments: off|async|sync|quorum (-fig-failover sweeps all modes unless this narrows it)")
	kernelPar   = flag.Bool("kernel-parallel", false, "run each simulation on the sharded event kernel: one event loop per simulated socket on host goroutines, interconnect-lookahead windows; results are bit-identical to the serial kernel")
	replicas    = flag.Int("replicas", 2, "replica machines when -replication is on")
	all         = flag.Bool("all", false, "run every experiment")
	quick       = flag.Bool("quick", false, "shrink scales for a fast run")
	csv         = flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut     = flag.String("json", "", "write sweep results as JSON to this file")
	parallel    = flag.Int("parallel", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	seed        = flag.Uint64("seed", 42, "simulation seed")
	seeds       = flag.Int("seeds", 1, "seeds per sweep grid point (seed, seed+1, ...)")
	sockets     = flag.Int("sockets", 1, "CPU sockets: platform size for the figure/sweep experiments, axis cap for -fig-scaling")
	terminals   = flag.Int("terminals", 64, "closed-loop clients")
	measureMs   = flag.Int("measure", 50, "measurement window, simulated ms")
	warmupMs    = flag.Int("warmup", 20, "warmup, simulated ms")
	subscribers = flag.Int("subscribers", 100000, "TATP scale")
	warehouses  = flag.Int("warehouses", 4, "TPC-C scale")
	records     = flag.Int("records", 100000, "YCSB scale")
	cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	benchjson   = flag.String("benchjson", "", "write kernel throughput + per-experiment wall-clock JSON to this file")
)

// collected accumulates every bench result of the invocation for -json.
var collected []bench.Result

// kernelEvents/kernelWall accumulate the event kernel's volume and host
// wall-clock across every run-backed point, for the end-of-run throughput
// line (simulated results never depend on the kernel; events/sec does).
var (
	kernelEvents uint64
	kernelWall   time.Duration
)

// expWalls accumulates host wall-clock per experiment for -benchjson.
var expWalls []expWall

type expWall struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// fatal stops any active CPU profile — so the profile file is complete and
// readable even on error exits — prints the error, and exits 1.
func fatal(v any) {
	pprof.StopCPUProfile()
	fmt.Fprintln(os.Stderr, v)
	os.Exit(1)
}

// timed runs one experiment, recording its host wall-clock.
func timed(name string, fn func()) {
	start := time.Now()
	fn()
	expWalls = append(expWalls, expWall{Name: name, WallMs: float64(time.Since(start).Nanoseconds()) / 1e6})
}

// kernelStats measures the raw event kernel — a closed set of processes
// timer-stepping through interleaved waits, the hot path under every
// experiment — and reports sustained events/sec and allocations per event.
// One warm-up pass lets pools and rings reach steady state, matching how
// the kernel runs under a long sweep.
func kernelStats() (eventsPerSec, allocsPerEvent float64, events uint64) {
	measure := func() (uint64, time.Duration, uint64) {
		env := sim.NewEnv()
		defer env.Close()
		const procs, steps = 16, 20000
		for i := 0; i < procs; i++ {
			i := i
			env.Spawn("kernel", func(p *sim.Proc) {
				for j := 0; j < steps; j++ {
					p.Wait(sim.Duration(1 + (i+j)%7))
				}
			})
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := env.Run(); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		return env.Executed(), wall, m1.Mallocs - m0.Mallocs
	}
	measure() // warm up
	ev, wall, allocs := measure()
	return float64(ev) / wall.Seconds(), float64(allocs) / float64(ev), ev
}

// parallelKernelStorm runs the sharded kernel's throughput microbenchmark:
// `shards` event loops of timer-stepping processes exchanging occasional
// cross-shard posts at the interconnect lookahead — the same shape an
// engine run has under -kernel-parallel on a `shards`-socket machine.
func parallelKernelStorm(shards int, la sim.Duration) (events uint64, wall time.Duration) {
	env := sim.NewEnv()
	defer env.Close()
	if shards > 1 {
		env.EnableParallel(shards, la)
	}
	const procs, steps = 8, 12000
	for s := 0; s < shards; s++ {
		s := s
		for i := 0; i < procs; i++ {
			i := i
			env.SpawnOn(s, "pkernel", func(p *sim.Proc) {
				for j := 0; j < steps; j++ {
					p.Wait(sim.Duration(1 + (i+j)%7))
					if shards > 1 && j%256 == 255 {
						p.CrossAt((s+1)%shards, p.Now().Add(la+sim.Duration(s*8+3)), func() {})
					}
				}
			})
		}
	}
	start := time.Now()
	if err := env.Run(); err != nil {
		panic(err)
	}
	return env.Executed(), time.Since(start)
}

// parallelPoint is one (shards, GOMAXPROCS) cell of the sharded-kernel
// throughput matrix in the -benchjson document.
type parallelPoint struct {
	Shards       int     `json:"shards"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// parallelSection is the -benchjson "parallel" section: the sharded kernel's
// events/sec at 8 and 16 simulated sockets across host-core grants. host_cpus
// records the machine that produced the numbers — speedup columns are only
// meaningful when gomaxprocs <= host_cpus.
type parallelSection struct {
	HostCPUs    int             `json:"host_cpus"`
	LookaheadPs int64           `json:"lookahead_ps"`
	Points      []parallelPoint `json:"points"`
}

// kernelParallelStats measures the sharded kernel at 8 and 16 simulated
// sockets under 1, 4 and 8 host cores, one warm-up pass per cell like
// kernelStats.
func kernelParallelStats() parallelSection {
	la := platform.HC2().ICHopLat
	sec := parallelSection{HostCPUs: runtime.NumCPU(), LookaheadPs: int64(la)}
	for _, shards := range []int{8, 16} {
		for _, gmp := range []int{1, 4, 8} {
			prev := runtime.GOMAXPROCS(gmp)
			parallelKernelStorm(shards, la) // warm up
			ev, wall := parallelKernelStorm(shards, la)
			runtime.GOMAXPROCS(prev)
			sec.Points = append(sec.Points, parallelPoint{
				Shards: shards, GOMAXPROCS: gmp,
				Events: ev, EventsPerSec: float64(ev) / wall.Seconds(),
			})
		}
	}
	return sec
}

// engineParallelSection is the -benchjson "engine_parallel" section: one
// engine-on-shard sweep point — 8-socket sharded-log DORA on YCSB — run end
// to end on the serial and the concurrent kernel. The two runs produce
// bit-identical digests (the equivalence matrix in internal/bench gates
// that); the wall-clock ratio is what engine-on-shard execution buys, and
// only shows a speedup when the host grants multiple cores (see
// parallelSection.HostCPUs).
type engineParallelSection struct {
	Sockets          int     `json:"sockets"`
	SerialWallMs     float64 `json:"serial_wall_ms"`
	ConcurrentWallMs float64 `json:"concurrent_wall_ms"`
	Speedup          float64 `json:"speedup"`
}

// engineParallelStats times the engine-on-shard point on both kernels, one
// warm-up pass first like kernelStats. Fixed windows, independent of
// -quick, so baselines compare across invocations.
func engineParallelStats() engineParallelSection {
	spec := bench.ScalingSpec{
		Sockets:   []int{8},
		Workloads: []bench.WorkloadSpec{ycsbSpec()},
		Engines: []bench.ScalingEngine{{Name: "dora", On: func(cfg *platform.Config, partitions, window int) bench.EngineSpec {
			return bench.DORAOn(cfg, partitions)
		}}},
		TerminalsPerSocket: 8,
		ShardedLog:         true,
		Warmup:             5 * sim.Millisecond,
		Measure:            15 * sim.Millisecond,
	}
	run := func(par bool) float64 {
		s := spec
		s.KernelParallel = par
		start := time.Now()
		for _, r := range s.Run(bench.Options{Parallel: 1}) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / 1e6
	}
	run(false) // warm up
	sec := engineParallelSection{Sockets: 8}
	sec.SerialWallMs = run(false)
	sec.ConcurrentWallMs = run(true)
	if sec.ConcurrentWallMs > 0 {
		sec.Speedup = sec.SerialWallMs / sec.ConcurrentWallMs
	}
	return sec
}

// kernelDoc is the -benchjson document: the perf-trajectory baseline a PR
// compares against (BENCH_kernel.json at the repo root).
type kernelDoc struct {
	Suite  string `json:"suite"`
	Kernel struct {
		EventsPerSec   float64 `json:"events_per_sec"`
		AllocsPerEvent float64 `json:"allocs_per_event"`
		Events         uint64  `json:"events_measured"`
	} `json:"kernel"`
	Parallel       parallelSection       `json:"parallel"`
	EngineParallel engineParallelSection `json:"engine_parallel"`
	Experiments    []expWall             `json:"experiments"`
}

func writeBenchJSON(path string) error {
	var doc kernelDoc
	doc.Suite = "bionicbench-kernel"
	doc.Kernel.EventsPerSec, doc.Kernel.AllocsPerEvent, doc.Kernel.Events = kernelStats()
	doc.Parallel = kernelParallelStats()
	doc.EngineParallel = engineParallelStats()
	doc.Experiments = expWalls
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *quick {
		*subscribers = 10000
		*warehouses = 2
		*records = 10000
		*measureMs = 15
		*warmupMs = 5
	}
	ran := false
	if *all || *figFlag == 1 {
		timed("fig1", fig1)
		ran = true
	}
	if *all || *figFlag == 2 {
		timed("fig2", fig2)
		ran = true
	}
	if *all || *figFlag == 3 {
		timed("fig3", fig3)
		ran = true
	}
	if *all || *figFlag == 4 {
		timed("fig4", fig4)
		ran = true
	}
	if *all || *ablation {
		timed("ablation", runAblation)
		ran = true
	}
	if *all || *saturation {
		timed("saturation", runSaturation)
		ran = true
	}
	if *all || *latencies {
		timed("latencies", runLatencies)
		ran = true
	}
	if *all || *sweepFlag {
		timed("sweep", runSweep)
		ran = true
	}
	if *all || *figScaling {
		timed("fig-scaling", runFigScaling)
		ran = true
	}
	if *all || *figRecovery {
		timed("fig-recovery", runFigRecovery)
		ran = true
	}
	if *all || *figHTAP {
		timed("fig-htap", runFigHTAP)
		ran = true
	}
	if *all || *figFailover {
		timed("fig-failover", runFigFailover)
		ran = true
	}
	if *all || *figAnatomy {
		timed("fig-anatomy", runFigAnatomy)
		ran = true
	}
	if !ran {
		pprof.StopCPUProfile()
		flag.Usage()
		os.Exit(2)
	}
	if kernelEvents > 0 && kernelWall > 0 {
		// Host measurement, so stderr: stdout stays byte-identical across
		// runs (the figure-parity check diffs it).
		fmt.Fprintf(os.Stderr, "kernel: %d simulated events, %.2fs summed run wall, %.2fM events/sec (kernel-parallel=%v)\n",
			kernelEvents, kernelWall.Seconds(), float64(kernelEvents)/kernelWall.Seconds()/1e6, *kernelPar)
	}
	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote kernel bench baseline to %s\n", *benchjson)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if len(collected) == 0 {
			fatal(fmt.Sprintf("-json %s: no results to write (the selected experiments run no measurements; use -fig 3, -fig 4, -ablation or -sweep)", *jsonOut))
		}
		if err := bench.WriteJSONFile(*jsonOut, collected); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d results to %s\n", len(collected), *jsonOut)
	}
}

func emit(title string, t *stats.Table) {
	fmt.Printf("### %s\n", title)
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
	fmt.Println()
}

// obsOpts returns the flight-recorder options the -trace-out/-metrics-out
// flags ask for, or nil (attach nothing) when neither is given.
func obsOpts() *obs.Options {
	if *traceOut == "" && *metricsOut == "" {
		return nil
	}
	return &obs.Options{Trace: *traceOut != "", Metrics: *metricsOut != ""}
}

// obsSeq numbers observability artifacts across the whole invocation, so
// -all with -trace-out never overwrites one experiment's trace with the
// next's.
var obsSeq int

// suffixPath inserts a running index before the path's extension:
// trace.json -> trace.3.json.
func suffixPath(path string, i int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d%s", strings.TrimSuffix(path, ext), i, ext)
}

// writeObsArtifacts exports each result's trace and telemetry to the flag
// paths. A single-point invocation writes the paths verbatim; otherwise
// every artifact carries the point's invocation-wide index.
func writeObsArtifacts(results []bench.Result) {
	if *traceOut == "" && *metricsOut == "" {
		return
	}
	single := obsSeq == 0 && len(results) == 1
	for _, r := range results {
		if *traceOut != "" && r.Res != nil && r.Res.Trace != nil {
			path := *traceOut
			if !single {
				path = suffixPath(path, obsSeq)
			}
			if err := obs.WriteTraceFile(path, r.Res.Trace); err != nil {
				fatal(err)
			}
		}
		if *metricsOut != "" && r.Res != nil && r.Res.Metrics != nil {
			path := *metricsOut
			if !single {
				path = suffixPath(path, obsSeq)
			}
			if err := r.Res.Metrics.WriteMetricsFile(path); err != nil {
				fatal(err)
			}
		}
		obsSeq++
	}
	// Host-side bookkeeping, so stderr: stdout stays byte-identical with
	// the recorder on or off (the figure-parity check diffs it).
	fmt.Fprintf(os.Stderr, "wrote observability artifacts for %d run(s)\n", len(results))
}

// runPoints executes points through the shared pool, records them for
// -json, and fails fast on any run error. When -trace-out/-metrics-out are
// given the flight recorder is attached to every point and its artifacts
// written as the sweep completes.
func runPoints(points []bench.Point) []bench.Result {
	if o := obsOpts(); o != nil {
		for i := range points {
			points[i].Obs = o
		}
	}
	results := bench.Run(points, bench.Options{Parallel: *parallel})
	collected = append(collected, results...)
	for _, r := range results {
		if r.Err != nil {
			fatal(r.Err)
		}
		kernelEvents += r.Res.Events
		kernelWall += r.Wall
	}
	writeObsArtifacts(results)
	return results
}

func windows() (warmup, measure sim.Duration) {
	return sim.Duration(*warmupMs) * sim.Millisecond, sim.Duration(*measureMs) * sim.Millisecond
}

// Workload constructors shared by the figure generators and the sweep.

func tatpSpec() bench.WorkloadSpec {
	n := *subscribers
	return bench.WorkloadSpec{Name: "tatp", Make: func() core.Workload {
		return tatp.New(tatp.Config{Subscribers: n})
	}}
}

func tpccConfig() tpcc.Config {
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = *warehouses
	if *quick {
		cfg.CustomersPerDistrict = 600
		cfg.Items = 20000
	}
	return cfg
}

func tpccSpec() bench.WorkloadSpec {
	cfg := tpccConfig()
	return bench.WorkloadSpec{Name: "tpcc", Make: func() core.Workload { return tpcc.New(cfg) }}
}

func ycsbSpec() bench.WorkloadSpec {
	cfg := ycsb.DefaultConfig()
	cfg.Records = *records
	return bench.WorkloadSpec{Name: "ycsb", Make: func() core.Workload { return ycsb.New(cfg) }}
}

// replMode parses -replication, failing fast on an unknown mode.
func replMode() stats.ReplMode {
	m, err := stats.ParseReplMode(*replication)
	if err != nil {
		fatal(err)
	}
	return m
}

// plCfg returns the platform configuration every run-backed experiment
// builds engines on: the HC2 machine, scaled out when -sockets > 1, log-
// sharded when -sharded-log, and replicated when -replication names a mode.
// At the default flags it is byte-for-byte the paper's machine (the
// sharded-log flag is inert on one socket; replication off builds nothing).
func plCfg() *platform.Config {
	cfg := platform.HC2Scaled(*sockets)
	cfg.LogDevPerSocket = *shardedLog
	if m := replMode(); m != stats.ReplNone {
		cfg.Replicas = *replicas
		cfg.ReplMode = m
	}
	return cfg
}

// partitionCount is one DORA partition per core across the machine.
func partitionCount() int { return plCfg().TotalCores() }

// engineSet is the Figure 4 engine family, built on the -sockets machine.
func engineSet() []bench.EngineSpec {
	cfg := plCfg()
	return []bench.EngineSpec{
		bench.ConventionalOn(cfg),
		bench.DORAOn(cfg, partitionCount()),
		bench.BionicOn(cfg, partitionCount(), core.AllOffloads(), 8),
	}
}

// fig1 prints the dark-silicon utilization curves and the power-envelope
// projection.
func fig1() {
	for _, panel := range darksilicon.Figure1Panels() {
		t := stats.NewTable("cores", ">10% serial", ">1% serial", ">0.1% serial", ">0.01% serial")
		for n := 1; n <= panel.Cores; n *= 2 {
			p := darksilicon.Panel{Year: panel.Year, Cores: n, PowerCap: panel.PowerCap}
			row := []any{fmt.Sprintf("%d", n)}
			for _, s := range darksilicon.SerialFractions() {
				row = append(row, darksilicon.FormatPct(darksilicon.PanelUtilization(p, s)))
			}
			t.Row(row...)
		}
		emit(fmt.Sprintf("Figure 1(%c): fraction of chip utilized, %d (%d cores, power cap %s)",
			'a'+rune(panel.Year-2011)/7, panel.Year, panel.Cores, darksilicon.FormatPct(panel.PowerCap)), t)
	}
	t := stats.NewTable("generation", ">usable (30%/gen)", ">usable (50%/gen)")
	for gen := 0; gen <= 4; gen++ {
		t.Row(fmt.Sprintf("2018+%d", gen*2),
			darksilicon.FormatPct(darksilicon.EnvelopeGeneration(gen, 0.3)),
			darksilicon.FormatPct(darksilicon.EnvelopeGeneration(gen, 0.5)))
	}
	emit("Power envelope projection (Section 2)", t)
	lower, faster := darksilicon.EquivalentGains(10, 100000, 10)
	fmt.Printf("joules/op identity: 10x less power -> %.2e J/op; 10x faster -> %.2e J/op\n\n", lower, faster)
}

// fig2 prints the platform characterization vs Figure 2's numbers.
func fig2() {
	t := stats.NewTable("component", ">spec GB/s", ">meas GB/s", ">spec latency", ">meas latency")
	for _, row := range platform.Characterize(platform.HC2()) {
		t.Row(row.Name,
			fmt.Sprintf("%.2f", row.SpecGBps), fmt.Sprintf("%.2f", row.MeasGBps),
			row.SpecLat.String(), row.MeasLat.String())
	}
	emit("Figure 2: CPU/FPGA platform characterization", t)
}

// fig3 prints the DORA software breakdown for the two Figure 3 workloads.
func fig3() {
	warmup, measure := windows()
	n := *subscribers
	tpccCfg := tpccConfig()
	g := bench.Grid{
		Group:   "fig3",
		Repl:    replMode(),
		Engines: []bench.EngineSpec{bench.DORAOn(plCfg(), partitionCount())},
		Workloads: []bench.WorkloadSpec{
			{Name: "tatp-updsubdata", Make: func() core.Workload {
				return tatp.New(tatp.Config{Subscribers: n}).UpdateSubDataOnly()
			}},
			{Name: "tpcc-stocklevel", Make: func() core.Workload {
				return tpcc.New(tpccCfg).StockLevelOnly()
			}},
		},
		Terminals: []int{*terminals},
		Seeds:     []uint64{*seed},
		Warmup:    warmup, Measure: measure,
		KernelParallel: *kernelPar,
	}
	results := runPoints(g.Points())
	t := stats.NewTable("component", ">TATP UpdSubData", ">TPCC StockLevel")
	shares := make([][]float64, len(results))
	for i, r := range results {
		total := r.Res.BD.Total()
		shares[i] = make([]float64, stats.NumComponents)
		for _, comp := range stats.Components() {
			if total > 0 {
				shares[i][comp] = float64(r.Res.BD.Get(comp)) / float64(total) * 100
			}
		}
	}
	for _, comp := range stats.Components() {
		t.Row(comp.String(),
			fmt.Sprintf("%.1f%%", shares[0][comp]),
			fmt.Sprintf("%.1f%%", shares[1][comp]))
	}
	emit("Figure 3: CPU time breakdown, DORA software engine", t)
}

// fig4 compares the three engines on both workload mixes.
func fig4() {
	warmup, measure := windows()
	// TPC-C concurrency scales with warehouses (the spec mandates 10
	// terminals per warehouse; 2x that keeps pressure without district
	// convoys), so each workload expands as its own grid.
	var points []bench.Point
	for _, wg := range []struct {
		wl        bench.WorkloadSpec
		terminals int
	}{
		{tatpSpec(), *terminals},
		{tpccSpec(), *warehouses * 20},
	} {
		g := bench.Grid{
			Group:     "fig4",
			Repl:      replMode(),
			Engines:   engineSet(),
			Workloads: []bench.WorkloadSpec{wg.wl},
			Terminals: []int{wg.terminals},
			Seeds:     []uint64{*seed},
			Warmup:    warmup, Measure: measure,
			KernelParallel: *kernelPar,
		}
		points = append(points, g.Points()...)
	}
	results := runPoints(points)

	t := stats.NewTable("workload", "engine", ">tps", ">uJ/txn", ">rel J", ">p50", ">p95", ">CPU J", ">FPGA J")
	var baseJ float64
	for _, r := range results {
		res := r.Res
		if res.Engine == "conventional" {
			baseJ = res.JoulesPerTxn
		}
		rel := 1.0
		if baseJ > 0 {
			rel = res.JoulesPerTxn / baseJ
		}
		t.Row(res.Workload, res.Engine,
			fmt.Sprintf("%.0f", res.TPS),
			fmt.Sprintf("%.1f", res.JoulesPerTxn*1e6),
			fmt.Sprintf("%.2f", rel),
			res.Latency.Percentile(50).String(),
			res.Latency.Percentile(95).String(),
			fmt.Sprintf("%.1f", (res.Energy.CPUDynamic+res.Energy.CPUIdle)*1e3),
			fmt.Sprintf("%.1f", res.Energy.FPGA*1e3))
	}
	emit("Figure 4: conventional vs DORA vs bionic (energy in mJ over the window)", t)
}

// runAblation sweeps the offload lattice on the TATP mix.
func runAblation() {
	warmup, measure := windows()
	lattice := []core.Offloads{
		{},
		{Queue: true},
		{Log: true},
		{Queue: true, Log: true},
		{Tree: true, Overlay: true},
		{Tree: true, Overlay: true, Log: true},
		core.AllOffloads(),
	}
	engines := make([]bench.EngineSpec, len(lattice))
	for i, off := range lattice {
		spec := bench.BionicOn(plCfg(), partitionCount(), off, 8)
		spec.Name = off.String() // table rows name the subset, not the engine
		engines[i] = spec
	}
	g := bench.Grid{
		Group:     "ablation",
		Repl:      replMode(),
		Engines:   engines,
		Workloads: []bench.WorkloadSpec{tatpSpec()},
		Terminals: []int{*terminals},
		Seeds:     []uint64{*seed},
		Warmup:    warmup, Measure: measure,
		KernelParallel: *kernelPar,
	}
	results := runPoints(g.Points())
	t := stats.NewTable("offloads", ">tps", ">uJ/txn", ">p50", ">p95")
	for _, r := range results {
		t.Row(r.Point.Engine.Name,
			fmt.Sprintf("%.0f", r.Res.TPS),
			fmt.Sprintf("%.1f", r.Res.JoulesPerTxn*1e6),
			r.Res.Latency.Percentile(50).String(),
			r.Res.Latency.Percentile(95).String())
	}
	emit("C2 ablation: TATP mix, DORA base plus offload subsets", t)
}

// runSweep runs the full engine x workload grid — TATP, TPC-C and YCSB on
// all three engines — the broad-and-cheap experiment surface the figure
// generators sample corners of.
func runSweep() {
	warmup, measure := windows()
	if *seeds < 1 {
		*seeds = 1
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + uint64(i)
	}
	g := bench.Grid{
		Group:     "sweep",
		Repl:      replMode(),
		Engines:   engineSet(),
		Workloads: []bench.WorkloadSpec{tatpSpec(), tpccSpec(), ycsbSpec()},
		Terminals: []int{*terminals},
		Seeds:     seedList,
		Warmup:    warmup, Measure: measure,
		KernelParallel: *kernelPar,
	}
	results := runPoints(g.Points())
	emit(fmt.Sprintf("Sweep: %d grid points (engines x workloads x %d seed(s))",
		len(results), len(seedList)), bench.Table(results))
}

// socketAxis returns the socket counts the scale-out experiments sweep:
// 1 -> 16 by powers of two, capped (and extended) by -sockets when given.
func socketAxis() []int {
	maxSockets := 16
	if *sockets > 1 {
		maxSockets = *sockets
	}
	var socks []int
	for _, n := range []int{1, 2, 4, 8, 16} {
		if n <= maxSockets {
			socks = append(socks, n)
		}
	}
	if socks[len(socks)-1] != maxSockets {
		socks = append(socks, maxSockets)
	}
	return socks
}

// perSocketTerminals is the scale-out experiments' offered load per socket.
func perSocketTerminals() int {
	if *quick {
		return 8
	}
	return 32
}

// runFigScaling measures the scale-out story: all three engines on all
// three workloads at 1 -> 16 sockets (weak scaling: terminals and TPC-C
// warehouses grow with the machine; -sockets > 1 caps the axis). The table
// reports throughput, speedup over one socket and joules/txn — the
// committed BENCH_scaling.json baseline is this experiment's -json output.
func runFigScaling() {
	warmup, measure := windows()
	socks := socketAxis()
	// One spec per socket count so the TPC-C database can grow with the
	// machine (warehouses are TPC-C's unit of parallelism; a fixed-size
	// database would measure contention collapse, not engine scaling).
	// With -sharded-log the sharded axis runs next to the central baseline
	// (only where it is structurally different: 2+ sockets), so the table
	// shows exactly what sharding the log lifts.
	var points []bench.Point
	for _, n := range socks {
		tpccCfg := tpccConfig()
		tpccCfg.Warehouses *= n
		spec := bench.ScalingSpec{
			Sockets: []int{n},
			Workloads: []bench.WorkloadSpec{
				tatpSpec(),
				{Name: "tpcc", Make: func() core.Workload { return tpcc.New(tpccCfg) }},
				ycsbSpec(),
			},
			TerminalsPerSocket: perSocketTerminals(),
			Seeds:              []uint64{*seed},
			Warmup:             warmup, Measure: measure,
			KernelParallel: *kernelPar,
		}
		points = append(points, spec.Points()...)
		if *shardedLog && n > 1 {
			spec.ShardedLog = true
			points = append(points, spec.Points()...)
		}
	}
	results := runPoints(points)
	emit(fmt.Sprintf("fig-scaling: weak scaling over %v sockets (%s interconnect)",
		socks, platform.HC2().ICTopology), bench.ScalingTable(results))
}

// runFigHTAP measures the hybrid story: the mixed workloads (TPC-C and
// YCSB transactions with analytical range scans over columnar projections)
// on the conventional and bionic machines at 1 -> 16 sockets. Weak scaling
// like fig-scaling: terminals, TPC-C warehouses and YCSB records grow with
// the machine. Sharded logs give the freshness vector one entry per
// socket. The table reports transactional throughput and energy next to
// scan bandwidth and staleness — the committed BENCH_htap.json baseline is
// this experiment's -json output.
func runFigHTAP() {
	warmup, measure := windows()
	socks := socketAxis()
	var points []bench.Point
	for _, n := range socks {
		tpccCfg := tpccConfig()
		tpccCfg.Warehouses *= n
		ycsbCfg := ycsb.DefaultConfig()
		ycsbCfg.Records = *records * n
		spec := bench.HTAPSpec{
			Sockets: []int{n},
			Workloads: []bench.WorkloadSpec{
				{Name: "htap-ycsb", Make: func() core.Workload {
					return htap.NewYCSB(ycsbCfg, htap.DefaultParams())
				}},
				{Name: "htap-tpcc", Make: func() core.Workload {
					return htap.NewTPCC(tpccCfg, htap.DefaultParams())
				}},
			},
			TerminalsPerSocket: perSocketTerminals(),
			ShardedLog:         true,
			Seeds:              []uint64{*seed},
			Warmup:             warmup, Measure: measure,
			KernelParallel: *kernelPar,
		}
		points = append(points, spec.Points()...)
	}
	results := runPoints(points)
	emit(fmt.Sprintf("fig-htap: hybrid weak scaling over %v sockets, conventional vs bionic", socks),
		bench.HTAPTable(results))
}

// runFigRecovery measures the durability subsystem's read side: crash a
// sharded-log machine at the end of its measurement window and replay the
// per-socket log shards — serially and one process per shard — timing the
// boot and its joules at each socket count. TPC-C is the workload: it is
// the log-heavy benchmark whose weak scaling the sharded log un-walls.
func runFigRecovery() {
	warmup, measure := windows()
	socks := socketAxis()
	spec := bench.RecoverySpec{
		Sockets: socks,
		Workload: func(n int) bench.WorkloadSpec {
			tpccCfg := tpccConfig()
			tpccCfg.Warehouses *= n
			return bench.WorkloadSpec{Name: "tpcc", Make: func() core.Workload { return tpcc.New(tpccCfg) }}
		},
		ShardedLog:         true,
		TerminalsPerSocket: perSocketTerminals(),
		Seed:               *seed,
		Warmup:             warmup, Measure: measure,
		KernelParallel: *kernelPar,
	}
	results := spec.RunRecovery(bench.Options{Parallel: *parallel})
	for _, r := range results {
		if r.Err != nil {
			fatal(r.Err)
		}
	}
	emit(fmt.Sprintf("fig-recovery: crash at measure end, parallel shard replay over %v sockets", socks),
		bench.RecoveryTable(results))
	if *recJSON != "" {
		if err := bench.WriteRecoveryJSONFile(*recJSON, results); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d recovery results to %s\n", len(results), *recJSON)
	}
}

// runFigFailover measures the robustness story: ship the per-socket log
// shards to replica machines under each commit-wait mode, price the mode in
// steady state against the same-socket unreplicated baseline, then kill the
// primary mid-measure under a seed-deterministic fault plan (link lag, a
// partition window, a replica stall) and boot the replica through measured
// parallel recovery. TPC-C is the workload, like fig-recovery: the
// log-heavy benchmark is the one replication taxes hardest. -replication
// narrows the mode axis to baseline-vs-that-mode; the default sweeps all
// three modes. The committed BENCH_failover.json baseline is this
// experiment's -failover-json output.
func runFigFailover() {
	warmup, measure := windows()
	socks := bench.DefaultFailoverSockets()
	if *sockets > 1 {
		socks = socketAxis()
	}
	spec := bench.FailoverSpec{
		Sockets:  socks,
		Replicas: *replicas,
		Workload: func(n int) bench.WorkloadSpec {
			tpccCfg := tpccConfig()
			tpccCfg.Warehouses *= n
			return bench.WorkloadSpec{Name: "tpcc", Make: func() core.Workload { return tpcc.New(tpccCfg) }}
		},
		ShardedLog:         true,
		TerminalsPerSocket: perSocketTerminals(),
		Seed:               *seed,
		Warmup:             warmup, Measure: measure,
		KernelParallel: *kernelPar,
	}
	if m := replMode(); m != stats.ReplNone {
		spec.Modes = []stats.ReplMode{stats.ReplNone, m}
	}
	spec.Obs = obsOpts()
	fo, steady := spec.RunFailover(bench.Options{Parallel: *parallel})
	collected = append(collected, steady...)
	for _, r := range fo {
		if r.Err != nil {
			fatal(r.Err)
		}
	}
	writeObsArtifacts(steady)
	emit(fmt.Sprintf("fig-failover: replication tax and measured failover over %v sockets, %d replicas",
		socks, spec.Replicas), bench.FailoverTable(fo))
	if *failJSON != "" {
		if err := bench.WriteFailoverJSONFile(*failJSON, fo); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d failover results to %s\n", len(fo), *failJSON)
	}
}

// anatomySockets is the fig-anatomy socket axis: 1, 4 and 16 — the anchor,
// the knee and the scale-out end of the scaling curves. -quick trims the
// 16-socket end; -sockets > 1 caps (and extends) the axis like socketAxis.
func anatomySockets() []int {
	socks := []int{1, 4, 16}
	if *quick {
		socks = []int{1, 4}
	}
	if *sockets > 1 {
		var out []int
		for _, n := range socks {
			if n <= *sockets {
				out = append(out, n)
			}
		}
		if out[len(out)-1] != *sockets {
			out = append(out, *sockets)
		}
		return out
	}
	return socks
}

// runFigAnatomy prints the per-transaction latency anatomy: where committed
// transactions' time went — partition-queue wait, lock wait, execution, the
// cross-shard decision round, durability fan-in and the replication ack
// wait — per engine and workload across the socket axis, p50/p99/mean per
// phase. The anatomy is always collected by the harness (it is pure
// clock-reading, outside every digest); this experiment surfaces it.
// Phases overlap across a transaction's parallel actions, so shares are of
// summed phase time, not of end-to-end latency.
func runFigAnatomy() {
	warmup, measure := windows()
	socks := anatomySockets()
	var points []bench.Point
	for _, n := range socks {
		tpccCfg := tpccConfig()
		tpccCfg.Warehouses *= n
		spec := bench.ScalingSpec{
			Sockets: []int{n},
			Workloads: []bench.WorkloadSpec{
				tatpSpec(),
				{Name: "tpcc", Make: func() core.Workload { return tpcc.New(tpccCfg) }},
				ycsbSpec(),
			},
			TerminalsPerSocket: perSocketTerminals(),
			ShardedLog:         *shardedLog,
			Seeds:              []uint64{*seed},
			Warmup:             warmup, Measure: measure,
			KernelParallel: *kernelPar,
		}
		pts := spec.Points()
		for i := range pts {
			pts[i].Group = "fig-anatomy"
		}
		points = append(points, pts...)
	}
	results := runPoints(points)
	t := stats.NewTable("workload", "engine", ">sockets", "phase",
		">samples", ">p50", ">p99", ">mean", ">share")
	for _, r := range results {
		an := &r.Res.Anatomy
		var total sim.Duration
		for _, ph := range stats.Phases() {
			total += an.Phase(ph).Sum()
		}
		for _, ph := range stats.Phases() {
			h := an.Phase(ph)
			if h.Count() == 0 {
				continue
			}
			share := 0.0
			if total > 0 {
				share = float64(h.Sum()) / float64(total) * 100
			}
			t.Row(r.Point.Workload.Name, r.Point.Engine.Name,
				fmt.Sprintf("%d", r.Point.Sockets), ph.String(),
				fmt.Sprintf("%d", h.Count()),
				h.Percentile(50).String(), h.Percentile(99).String(), h.Mean().String(),
				fmt.Sprintf("%.0f%%", share))
		}
	}
	emit(fmt.Sprintf("fig-anatomy: per-transaction latency anatomy over %v sockets", socks), t)
}

// runSaturation sweeps the probe engine's outstanding-request window. The
// points are independent microbenchmarks, so they fan out through the same
// pool as the grid sweeps.
func runSaturation() {
	windows := []int{1, 2, 4, 8, 12, 16, 24, 32}
	tputs := make([]float64, len(windows))
	utils := make([]float64, len(windows))
	bench.ForEach(len(windows), *parallel, func(i int) {
		tputs[i], utils[i] = probeThroughput(windows[i])
	})
	t := stats.NewTable(">outstanding", ">Mprobes/s", ">pipe util")
	for i, window := range windows {
		t.Row(fmt.Sprintf("%d", window), fmt.Sprintf("%.2f", tputs[i]/1e6), fmt.Sprintf("%.0f%%", utils[i]*100))
	}
	emit("C1: tree-probe engine saturation (Section 5.3: ~a dozen outstanding requests)", t)
}

// runLatencies prints Section 3's latency spectrum — "disk, log, lock wait,
// latch wait, queues, cache miss, jump or branch" — with the modelled value
// of each source and which part of the bionic design addresses it.
func runLatencies() {
	cfg := platform.HC2()
	t := stats.NewTable("latency source", ">modelled", "addressed by (paper section)")
	t.Row("disk I/O", cfg.DiskLat.String(), "FPGA-side files + overlay faulting (5.6)")
	t.Row("log flush (group commit)", (30 * sim.Microsecond).String(), "hw log insertion + async commit (5.4)")
	t.Row("lock wait", "workload-dependent", "DORA entity locks, deferred actions (5.1)")
	t.Row("latch wait", "~node visit", "eliminated by PLP partitioning (5.1)")
	t.Row("queue hop", (2 * sim.Microsecond).String(), "hw queue engine doorbells (5.5)")
	t.Row("interconnect hop (multi-socket)", cfg.ICHopLat.String(), "socket-local routing + RVP cross-shard commit")
	t.Row("PCIe crossing", (2 * cfg.PCIeLat).String(), "asynchrony + posted writes (5.2)")
	t.Row("cache miss (DRAM)", cfg.DRAMMissLat.String(), "moved to pipelined SG-DRAM (5.3)")
	t.Row("LLC hit", cfg.L3Lat.String(), "-")
	t.Row("branch/jump", cfg.CycleTime().String(), "load-compare-branch in fabric (4)")
	emit("Section 3: the OLTP latency spectrum, from 5ms to 400ps", t)
}

func probeThroughput(window int) (perSec float64, util float64) {
	env := sim.NewEnv()
	defer env.Close()
	pl := platform.New(env, platform.HC2())
	eng := treeprobe.New(pl, treeprobe.DefaultConfig())
	tree := btree.New(btree.Config{
		AddrOf: func(id storage.PageID, size int) uint64 { return pl.AllocFPGA(8 << 10) },
	})
	for i := 0; i < 100000; i++ {
		tree.Put(storage.Uint64Key(uint64(i)), []byte("row"), nil)
	}
	const probesPerStream = 400
	r := sim.NewRand(*seed)
	done := 0
	for wdx := 0; wdx < window; wdx++ {
		keys := make([][]byte, probesPerStream)
		for i := range keys {
			keys[i] = storage.Uint64Key(uint64(r.Intn(100000)))
		}
		env.Spawn("stream", func(p *sim.Proc) {
			for _, k := range keys {
				eng.ProbeLocal(p, tree, k)
				done++
			}
		})
	}
	if err := env.Run(); err != nil {
		panic(err)
	}
	return sim.PerSecond(int64(done), sim.Duration(env.Now())), eng.Utilization()
}
