// Command hc2sim characterizes the simulated CPU/FPGA platform against the
// paper's Figure 2 numbers: for every component it reports the configured
// (spec) bandwidth and latency next to what microbenchmarks measure on the
// machine model. Flags override individual spec values to explore
// alternative platforms.
package main

import (
	"flag"
	"fmt"

	"bionicdb/internal/platform"
	"bionicdb/internal/sim"
	"bionicdb/internal/stats"
)

func main() {
	pcieUs := flag.Float64("pcie-us", 1.0, "PCIe one-way latency, microseconds")
	pcieGB := flag.Float64("pcie-gbps", 4.0, "PCIe bandwidth, GB/s")
	sgGB := flag.Float64("sg-gbps", 80.0, "SG-DRAM bandwidth, GB/s")
	cores := flag.Int("cores", 8, "CPU cores")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	cfg := platform.HC2()
	cfg.PCIeLat = sim.Duration(*pcieUs * float64(sim.Microsecond))
	cfg.PCIeBWGBps = *pcieGB
	cfg.SGDRAMBWGBps = *sgGB
	cfg.Cores = *cores

	t := stats.NewTable("component", ">spec GB/s", ">meas GB/s", ">spec latency", ">meas latency")
	for _, row := range platform.Characterize(cfg) {
		t.Row(row.Name,
			fmt.Sprintf("%.2f", row.SpecGBps), fmt.Sprintf("%.2f", row.MeasGBps),
			row.SpecLat.String(), row.MeasLat.String())
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}
